// Replay equivalence across the backend lattice: replaying the checked-in
// golden trace must produce the same result digest and call count under
// every registry family — including composed inner= planes and the ecall
// direction — and two replays of the same (trace, spec) must emit
// byte-identical deterministic JSONL rows.  The spec list is derived from
// the registry, so a newly registered family is replay-checked the moment
// it exists.
//
// The golden trace (tests/data/golden.trace) was synthesized once with
// synthesize_caller_churn:
//   seed=0x601de4, duration_ms=50, base_rate_hz=16000, callers=4,
//   generations=3, work_ns=2000, in/out=64/64,
//   names={trace_read, trace_write, trace_g}
// and its digest/count are pinned below.  It is the v1-format compatibility
// anchor: if the codec ever stops reading these bytes, that is a format
// break, not a test to update.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/backend_registry.hpp"
#include "workload/replay.hpp"
#include "workload/trace.hpp"

namespace zc {
namespace {

using workload::ReplayConfig;
using workload::ReplayMode;
using workload::ReplayResult;
using workload::Trace;

constexpr std::uint64_t kGoldenDigest = 9268081673815080785ull;
constexpr std::size_t kGoldenCalls = 791;
constexpr unsigned kGoldenCallers = 12;

Trace golden() { return Trace::load(ZC_TESTS_DATA_DIR "/golden.trace"); }

ReplayConfig replay_config(const std::string& spec) {
  ReplayConfig cfg;
  cfg.backend_spec = spec;
  cfg.work_scale = 0;     // differential testing wants the call mix, not
                          // 50 ms of burned pauses per replay
  cfg.time_scale = 0.02;  // open-loop replays run the schedule compressed
  cfg.sim.tes_cycles = 200;
  cfg.sim.logical_cpus = 8;
  return cfg;
}

/// The replay spec for each registry key: small planes so the switchless
/// machinery is exercised; intel pins its static set to the golden names.
std::string replay_spec(const std::string& key) {
  if (key == "intel") return "intel:sl=trace_read,trace_write;workers=1";
  if (key == "hotcalls") return "hotcalls:workers=1";
  if (key == "zc") return "zc:workers=2;quantum_us=5000";
  if (key == "zc_sharded") return "zc_sharded:shards=2;workers=1";
  if (key == "zc_batched") return "zc_batched:workers=1;batch=4;flush_us=100";
  if (key == "zc_async") return "zc_async:workers=1;queue=8";
  if (key == "record") return "record:inner=(zc:workers=1)";
  return key;
}

std::vector<std::string> lattice_specs() {
  std::vector<std::string> specs;
  for (const std::string& key : BackendRegistry::instance().keys()) {
    specs.push_back(replay_spec(key));
  }
  // Depth-2 composition (the acceptance bar names one) and the trusted-
  // worker plane: replay maps the whole trace onto whichever boundary the
  // spec serves.
  specs.push_back("zc_sharded:shards=2;inner=(zc_batched:workers=1;batch=4)");
  specs.push_back("zc:direction=ecall;workers=1");
  return specs;
}

TEST(ReplayEquivalence, GoldenTracePinsItsDigestAndShape) {
  const Trace trace = golden();
  EXPECT_EQ(trace.digest(), kGoldenDigest);
  EXPECT_EQ(trace.records.size(), kGoldenCalls);
  EXPECT_EQ(trace.caller_count(), kGoldenCallers);
  EXPECT_EQ(trace.seed, 0x601de4u);
  ASSERT_EQ(trace.names.size(), 3u);
  EXPECT_EQ(trace.names[0], "trace_read");
  // Round trip: the file bytes are the canonical encoding.
  EXPECT_EQ(Trace::decode(trace.encode().data(), trace.encode().size()),
            trace);
}

TEST(ReplayEquivalence, EveryRegistryFamilyHasAReplaySpec) {
  // If this fails a new family was registered without extending
  // replay_spec(); the default bare key keeps it covered, so this only
  // pins that the count keeps growing with the registry.
  EXPECT_GE(BackendRegistry::instance().keys().size(), 8u);
  for (const std::string& spec : lattice_specs()) {
    EXPECT_NO_THROW(BackendRegistry::instance().validate(spec)) << spec;
  }
}

TEST(ReplayEquivalence, IdenticalDigestsAcrossTheWholeLattice) {
  const Trace trace = golden();
  ReplayResult baseline;
  bool have_baseline = false;
  for (const std::string& spec : lattice_specs()) {
    SCOPED_TRACE(spec);
    const ReplayResult r = replay_trace(trace, replay_config(spec));
    EXPECT_EQ(r.calls, kGoldenCalls);
    EXPECT_EQ(r.trace_digest, kGoldenDigest);
    EXPECT_EQ(r.regular + r.switchless + r.fallbacks, r.calls);
    if (!have_baseline) {
      baseline = r;
      have_baseline = true;
      continue;
    }
    EXPECT_EQ(r.result_digest, baseline.result_digest);
  }
}

TEST(ReplayEquivalence, RerunsEmitByteIdenticalDeterministicRows) {
  const Trace trace = golden();
  for (const std::string& spec :
       {std::string("no_sl"), replay_spec("zc"),
        std::string("zc_sharded:shards=2;inner=(zc_batched:workers=1;"
                    "batch=4)")}) {
    SCOPED_TRACE(spec);
    const ReplayResult a = replay_trace(trace, replay_config(spec));
    const ReplayResult b = replay_trace(trace, replay_config(spec));
    EXPECT_EQ(a.deterministic_json(), b.deterministic_json());
    EXPECT_EQ(a.result_digest, b.result_digest);
  }
}

TEST(ReplayEquivalence, OpenLoopAgreesWithClosedLoop) {
  const Trace trace = golden();
  const ReplayResult closed =
      replay_trace(trace, replay_config("zc:workers=2"));
  ReplayConfig open = replay_config("zc:workers=2");
  open.mode = ReplayMode::kOpenLoop;
  const ReplayResult r = replay_trace(trace, open);
  EXPECT_EQ(r.result_digest, closed.result_digest);
  EXPECT_EQ(r.calls, closed.calls);
}

}  // namespace
}  // namespace zc
