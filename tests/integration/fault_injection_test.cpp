// Failure injection: a flaky untrusted world (short reads, failed writes)
// must surface as clean application-level errors — never corruption, hangs
// or crashes — regardless of the installed switchless backend.
#include <gtest/gtest.h>

#include "apps/crypto/file_crypto.hpp"
#include "apps/kissdb/kissdb.hpp"
#include "apps/lmbench/lat_syscall.hpp"
#include "core/backend_registry.hpp"
#include "core/zc_async.hpp"
#include "core/zc_backend.hpp"
#include "sgx/sim_fs.hpp"

#include <fcntl.h>

namespace zc {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimFs::instance().clear();
    SimFs::instance().set_syscall_cycles(0);
    SimConfig cfg;
    cfg.tes_cycles = 100;
    enclave_ = Enclave::create(cfg);
    libc_ = std::make_unique<EnclaveLibc>(*enclave_, IoMode::kSimulated);
  }
  void TearDown() override {
    SimFs::instance().clear();
    SimFs::instance().set_syscall_cycles(250);
  }

  void use_zc() {
    ZcConfig cfg;
    cfg.scheduler_enabled = false;
    cfg.with_initial_workers(2);
    enclave_->set_backend(std::make_unique<ZcBackend>(*enclave_, cfg));
  }

  ZcAsyncBackend* use_zc_async(unsigned queue = 8) {
    ZcAsyncConfig cfg;
    cfg.workers = 2;
    cfg.queue = queue;
    auto backend = make_zc_async_backend(*enclave_, cfg);
    auto* raw = backend.get();
    enclave_->set_backend(std::move(backend));
    return raw;
  }

  std::unique_ptr<Enclave> enclave_;
  std::unique_ptr<EnclaveLibc> libc_;
};

TEST_F(FaultInjectionTest, InjectionCounterDrains) {
  SimFs::instance().fail_next_ops(3);
  EXPECT_EQ(SimFs::instance().pending_failures(), 3u);
  const int fd = libc_->open("/dev/zero", O_RDONLY);
  std::uint64_t word = 0;
  EXPECT_EQ(libc_->read(fd, &word, 8), -1);
  EXPECT_EQ(libc_->read(fd, &word, 8), -1);
  EXPECT_EQ(libc_->read(fd, &word, 8), -1);
  EXPECT_EQ(SimFs::instance().pending_failures(), 0u);
  EXPECT_EQ(libc_->read(fd, &word, 8), 8);  // recovered
  libc_->close(fd);
}

TEST_F(FaultInjectionTest, KissdbPutReportsIoError) {
  app::KissDB db;
  ASSERT_EQ(db.open(*libc_, "faulty.db", {}), app::KissDB::kOk);
  std::uint64_t key = 1;
  std::uint64_t value = 2;
  ASSERT_EQ(db.put(&key, &value), app::KissDB::kOk);

  SimFs::instance().fail_next_ops(1);  // next fwrite fails
  key = 3;
  EXPECT_EQ(db.put(&key, &value), app::KissDB::kErrorIo);

  // The store recovers once the fault clears and old data is intact.
  std::uint64_t out = 0;
  key = 1;
  EXPECT_EQ(db.get(&key, &out), app::KissDB::kOk);
  EXPECT_EQ(out, 2u);
}

TEST_F(FaultInjectionTest, KissdbGetReportsMalformedOnShortRead) {
  app::KissDB db;
  ASSERT_EQ(db.open(*libc_, "faulty.db", {}), app::KissDB::kOk);
  std::uint64_t key = 7;
  std::uint64_t value = 8;
  ASSERT_EQ(db.put(&key, &value), app::KissDB::kOk);
  SimFs::instance().fail_next_ops(1);  // the key fread comes back short
  std::uint64_t out = 0;
  EXPECT_EQ(db.get(&key, &out), app::KissDB::kErrorMalformed);
}

TEST_F(FaultInjectionTest, EncryptFailsCleanlyMidStream) {
  // 64 KiB plaintext via the sim world.
  {
    TFile f = libc_->fopen("plain", "wb");
    std::vector<char> data(64 * 1024, 'p');
    ASSERT_EQ(f.write(data.data(), data.size()), data.size());
  }
  std::uint8_t key[32] = {1};
  std::uint8_t iv[16] = {2};
  const auto warm = app::encrypt_file(*libc_, "plain", "out", key, iv, 4096);
  ASSERT_TRUE(warm.ok);

  // A failing stream (the fread comes back short AND the subsequent final
  // fwrite fails) must abort with ok == false, not fabricate output.
  SimFs::instance().fail_next_ops(4);
  const auto enc = app::encrypt_file(*libc_, "plain", "out2", key, iv, 4096);
  EXPECT_FALSE(enc.ok);
}

TEST_F(FaultInjectionTest, DecryptFailsCleanlyOnShortRead) {
  {
    TFile f = libc_->fopen("plain", "wb");
    std::vector<char> data(32 * 1024, 'q');
    ASSERT_EQ(f.write(data.data(), data.size()), data.size());
  }
  std::uint8_t key[32] = {1};
  std::uint8_t iv[16] = {2};
  ASSERT_TRUE(app::encrypt_file(*libc_, "plain", "cipher", key, iv, 4096).ok);
  SimFs::instance().fail_next_ops(2);
  const auto dec = app::decrypt_file(*libc_, "cipher", "", key, iv, 4096);
  EXPECT_FALSE(dec.ok);
}

TEST_F(FaultInjectionTest, LmbenchLoopsStopOnFailure) {
  const int fd = libc_->open("/dev/zero", O_RDONLY);
  ASSERT_GE(fd, 0);
  SimFs::instance().fail_next_ops(1);
  // The loop detects the failed op and returns how far it got.
  EXPECT_EQ(app::read_words(*libc_, fd, 10), 0u);
  EXPECT_EQ(app::read_words(*libc_, fd, 10), 10u);
  libc_->close(fd);
}

TEST_F(FaultInjectionTest, FaultsBehaveTheSameUnderSwitchlessWorkers) {
  use_zc();
  app::KissDB db;
  ASSERT_EQ(db.open(*libc_, "faulty.db", {}), app::KissDB::kOk);
  std::uint64_t key = 1;
  std::uint64_t value = 2;
  ASSERT_EQ(db.put(&key, &value), app::KissDB::kOk);
  SimFs::instance().fail_next_ops(1);
  key = 3;
  // The failure surfaces identically even though a worker ran the ocall.
  EXPECT_EQ(db.put(&key, &value), app::KissDB::kErrorIo);
  std::uint64_t out = 0;
  key = 1;
  EXPECT_EQ(db.get(&key, &out), app::KissDB::kOk);
  EXPECT_EQ(out, 2u);
}

TEST_F(FaultInjectionTest, FaultsBehaveTheSameUnderStolenCalls) {
  // One worker per shard: kissdb's ocalls are routinely stolen across
  // shards, and an injected fault must surface at exactly the stolen call
  // that drew it — never smear, never crash.
  install_backend_spec(*enclave_,
                       "zc_sharded:shards=2;workers=1;scheduler=off;"
                       "policy=least_loaded;steal=on");
  app::KissDB db;
  ASSERT_EQ(db.open(*libc_, "faulty.db", {}), app::KissDB::kOk);
  std::uint64_t key = 1;
  std::uint64_t value = 2;
  ASSERT_EQ(db.put(&key, &value), app::KissDB::kOk);
  SimFs::instance().fail_next_ops(1);
  key = 3;
  EXPECT_EQ(db.put(&key, &value), app::KissDB::kErrorIo);
  std::uint64_t out = 0;
  key = 1;
  EXPECT_EQ(db.get(&key, &out), app::KissDB::kOk);
  EXPECT_EQ(out, 2u);
}

TEST_F(FaultInjectionTest, FaultsBehaveTheSameUnderFeedbackFlushedBatches) {
  // The failing op executes inside a worker's batch sweep while the
  // feedback controller retunes the window: the error must still reach
  // the right caller, and the store must recover once the fault clears.
  install_backend_spec(
      *enclave_,
      "zc_batched:workers=1;batch=2;flush=feedback;quantum_us=2000");
  app::KissDB db;
  ASSERT_EQ(db.open(*libc_, "faulty.db", {}), app::KissDB::kOk);
  std::uint64_t key = 1;
  std::uint64_t value = 2;
  ASSERT_EQ(db.put(&key, &value), app::KissDB::kOk);
  SimFs::instance().fail_next_ops(1);
  key = 3;
  EXPECT_EQ(db.put(&key, &value), app::KissDB::kErrorIo);
  std::uint64_t out = 0;
  key = 1;
  EXPECT_EQ(db.get(&key, &out), app::KissDB::kOk);
  EXPECT_EQ(out, 2u);
}

TEST_F(FaultInjectionTest, FaultsBehaveTheSameUnderComposedBatchedShards) {
  // A composed plane (batched buffers inside a stealing router): the
  // injected fault executes inside some shard's batch sweep, possibly on a
  // stolen call, and must still surface at exactly the caller that drew it.
  install_backend_spec(
      *enclave_,
      "zc_sharded:shards=2;steal=on;"
      "inner=(zc_batched:workers=1;batch=2;flush_us=50)");
  app::KissDB db;
  ASSERT_EQ(db.open(*libc_, "faulty.db", {}), app::KissDB::kOk);
  std::uint64_t key = 1;
  std::uint64_t value = 2;
  ASSERT_EQ(db.put(&key, &value), app::KissDB::kOk);
  SimFs::instance().fail_next_ops(1);
  key = 3;
  EXPECT_EQ(db.put(&key, &value), app::KissDB::kErrorIo);
  std::uint64_t out = 0;
  key = 1;
  EXPECT_EQ(db.get(&key, &out), app::KissDB::kOk);
  EXPECT_EQ(out, 2u);
}

TEST_F(FaultInjectionTest, FaultsBehaveTheSameUnderComposedAsyncShards) {
  install_backend_spec(
      *enclave_, "zc_sharded:shards=2;inner=(zc_async:workers=1;queue=4)");
  app::KissDB db;
  ASSERT_EQ(db.open(*libc_, "faulty.db", {}), app::KissDB::kOk);
  std::uint64_t key = 1;
  std::uint64_t value = 2;
  ASSERT_EQ(db.put(&key, &value), app::KissDB::kOk);
  SimFs::instance().fail_next_ops(1);
  key = 3;
  EXPECT_EQ(db.put(&key, &value), app::KissDB::kErrorIo);
  std::uint64_t out = 0;
  key = 1;
  EXPECT_EQ(db.get(&key, &out), app::KissDB::kOk);
  EXPECT_EQ(out, 2u);
}

TEST_F(FaultInjectionTest, FaultsBehaveTheSameUnderFutexSleepingCallers) {
  // The failing op's error must reach a caller that slept in the kernel
  // (wait=futex, spin_us=0) exactly as it reaches a spinning one.
  install_backend_spec(
      *enclave_, "zc:wait=futex;spin_us=0;scheduler=off;workers=2");
  app::KissDB db;
  ASSERT_EQ(db.open(*libc_, "faulty.db", {}), app::KissDB::kOk);
  std::uint64_t key = 1;
  std::uint64_t value = 2;
  ASSERT_EQ(db.put(&key, &value), app::KissDB::kOk);
  SimFs::instance().fail_next_ops(1);
  key = 3;
  EXPECT_EQ(db.put(&key, &value), app::KissDB::kErrorIo);
  std::uint64_t out = 0;
  key = 1;
  EXPECT_EQ(db.get(&key, &out), app::KissDB::kOk);
  EXPECT_EQ(out, 2u);
}

TEST_F(FaultInjectionTest, FaultsBehaveTheSameUnderRingSubmits) {
  // The failing op travels through the lock-free MPSC submit ring with
  // coalesced flush wakes: the error must still surface at exactly the
  // caller that drew it, and the store must recover once the fault clears.
  install_backend_spec(*enclave_,
                       "zc_batched:workers=1;batch=2;flush_us=50;ring=on;"
                       "coalesce=on;wait=futex;spin_us=0");
  app::KissDB db;
  ASSERT_EQ(db.open(*libc_, "faulty.db", {}), app::KissDB::kOk);
  std::uint64_t key = 1;
  std::uint64_t value = 2;
  ASSERT_EQ(db.put(&key, &value), app::KissDB::kOk);
  SimFs::instance().fail_next_ops(1);
  key = 3;
  EXPECT_EQ(db.put(&key, &value), app::KissDB::kErrorIo);
  std::uint64_t out = 0;
  key = 1;
  EXPECT_EQ(db.get(&key, &out), app::KissDB::kOk);
  EXPECT_EQ(out, 2u);
}

TEST_F(FaultInjectionTest, FaultsBehaveTheSameUnderRingAsyncWorkers) {
  install_backend_spec(*enclave_,
                       "zc_async:workers=2;queue=8;ring=on;coalesce=on");
  app::KissDB db;
  ASSERT_EQ(db.open(*libc_, "faulty.db", {}), app::KissDB::kOk);
  std::uint64_t key = 1;
  std::uint64_t value = 2;
  ASSERT_EQ(db.put(&key, &value), app::KissDB::kOk);
  SimFs::instance().fail_next_ops(1);
  key = 3;
  EXPECT_EQ(db.put(&key, &value), app::KissDB::kErrorIo);
  std::uint64_t out = 0;
  key = 1;
  EXPECT_EQ(db.get(&key, &out), app::KissDB::kOk);
  EXPECT_EQ(out, 2u);
}

TEST_F(FaultInjectionTest, FaultsBehaveTheSameUnderAsyncWorkers) {
  use_zc_async();
  app::KissDB db;
  ASSERT_EQ(db.open(*libc_, "faulty.db", {}), app::KissDB::kOk);
  std::uint64_t key = 1;
  std::uint64_t value = 2;
  ASSERT_EQ(db.put(&key, &value), app::KissDB::kOk);
  SimFs::instance().fail_next_ops(1);
  key = 3;
  // The failure surfaces identically through the submit()+wait() path.
  EXPECT_EQ(db.put(&key, &value), app::KissDB::kErrorIo);
  std::uint64_t out = 0;
  key = 1;
  EXPECT_EQ(db.get(&key, &out), app::KissDB::kOk);
  EXPECT_EQ(out, 2u);
}

TEST_F(FaultInjectionTest, InjectedFaultSurfacesAtTheFuture) {
  // The failed read's -1 must reach the caller at wait() time, on the
  // right future, with concurrently submitted calls unaffected.
  auto* backend = use_zc_async();
  const int fd = libc_->open("/dev/zero", O_RDONLY);
  ASSERT_GE(fd, 0);
  const auto read_id = enclave_->ocalls().find("read");
  ASSERT_TRUE(read_id.has_value());

  SimFs::instance().fail_next_ops(1);  // exactly one faulty op
  ReadArgs first;
  first.fd = fd;
  first.count = 8;
  std::uint64_t first_word = 0;
  CallDesc first_desc;
  first_desc.fn_id = *read_id;
  first_desc.args = &first;
  first_desc.args_size = sizeof(first);
  first_desc.out_payload = &first_word;
  first_desc.out_size = 8;
  CallFuture first_future = backend->submit(first_desc);

  ReadArgs second;
  second.fd = fd;
  second.count = 8;
  std::uint64_t second_word = 0;
  CallDesc second_desc = first_desc;
  second_desc.args = &second;
  second_desc.out_payload = &second_word;
  CallFuture second_future = backend->submit(second_desc);

  first_future.wait();
  second_future.wait();
  // Exactly one of the two reads drew the injected fault; the other
  // succeeded and delivered its word — the error never smears across
  // futures (which read fails depends on worker scheduling).
  EXPECT_EQ(SimFs::instance().pending_failures(), 0u);
  const int failures = (first.ret == -1 ? 1 : 0) + (second.ret == -1 ? 1 : 0);
  EXPECT_EQ(failures, 1);
  EXPECT_EQ((first.ret == -1 ? second.ret : first.ret), 8);
  libc_->close(fd);
}

}  // namespace
}  // namespace zc
