// Failure injection: a flaky untrusted world (short reads, failed writes)
// must surface as clean application-level errors — never corruption, hangs
// or crashes — regardless of the installed switchless backend.
#include <gtest/gtest.h>

#include "apps/crypto/file_crypto.hpp"
#include "apps/kissdb/kissdb.hpp"
#include "apps/lmbench/lat_syscall.hpp"
#include "core/zc_backend.hpp"
#include "sgx/sim_fs.hpp"

#include <fcntl.h>

namespace zc {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimFs::instance().clear();
    SimFs::instance().set_syscall_cycles(0);
    SimConfig cfg;
    cfg.tes_cycles = 100;
    enclave_ = Enclave::create(cfg);
    libc_ = std::make_unique<EnclaveLibc>(*enclave_, IoMode::kSimulated);
  }
  void TearDown() override {
    SimFs::instance().clear();
    SimFs::instance().set_syscall_cycles(250);
  }

  void use_zc() {
    ZcConfig cfg;
    cfg.scheduler_enabled = false;
    cfg.with_initial_workers(2);
    enclave_->set_backend(std::make_unique<ZcBackend>(*enclave_, cfg));
  }

  std::unique_ptr<Enclave> enclave_;
  std::unique_ptr<EnclaveLibc> libc_;
};

TEST_F(FaultInjectionTest, InjectionCounterDrains) {
  SimFs::instance().fail_next_ops(3);
  EXPECT_EQ(SimFs::instance().pending_failures(), 3u);
  const int fd = libc_->open("/dev/zero", O_RDONLY);
  std::uint64_t word = 0;
  EXPECT_EQ(libc_->read(fd, &word, 8), -1);
  EXPECT_EQ(libc_->read(fd, &word, 8), -1);
  EXPECT_EQ(libc_->read(fd, &word, 8), -1);
  EXPECT_EQ(SimFs::instance().pending_failures(), 0u);
  EXPECT_EQ(libc_->read(fd, &word, 8), 8);  // recovered
  libc_->close(fd);
}

TEST_F(FaultInjectionTest, KissdbPutReportsIoError) {
  app::KissDB db;
  ASSERT_EQ(db.open(*libc_, "faulty.db", {}), app::KissDB::kOk);
  std::uint64_t key = 1;
  std::uint64_t value = 2;
  ASSERT_EQ(db.put(&key, &value), app::KissDB::kOk);

  SimFs::instance().fail_next_ops(1);  // next fwrite fails
  key = 3;
  EXPECT_EQ(db.put(&key, &value), app::KissDB::kErrorIo);

  // The store recovers once the fault clears and old data is intact.
  std::uint64_t out = 0;
  key = 1;
  EXPECT_EQ(db.get(&key, &out), app::KissDB::kOk);
  EXPECT_EQ(out, 2u);
}

TEST_F(FaultInjectionTest, KissdbGetReportsMalformedOnShortRead) {
  app::KissDB db;
  ASSERT_EQ(db.open(*libc_, "faulty.db", {}), app::KissDB::kOk);
  std::uint64_t key = 7;
  std::uint64_t value = 8;
  ASSERT_EQ(db.put(&key, &value), app::KissDB::kOk);
  SimFs::instance().fail_next_ops(1);  // the key fread comes back short
  std::uint64_t out = 0;
  EXPECT_EQ(db.get(&key, &out), app::KissDB::kErrorMalformed);
}

TEST_F(FaultInjectionTest, EncryptFailsCleanlyMidStream) {
  // 64 KiB plaintext via the sim world.
  {
    TFile f = libc_->fopen("plain", "wb");
    std::vector<char> data(64 * 1024, 'p');
    ASSERT_EQ(f.write(data.data(), data.size()), data.size());
  }
  std::uint8_t key[32] = {1};
  std::uint8_t iv[16] = {2};
  const auto warm = app::encrypt_file(*libc_, "plain", "out", key, iv, 4096);
  ASSERT_TRUE(warm.ok);

  // A failing stream (the fread comes back short AND the subsequent final
  // fwrite fails) must abort with ok == false, not fabricate output.
  SimFs::instance().fail_next_ops(4);
  const auto enc = app::encrypt_file(*libc_, "plain", "out2", key, iv, 4096);
  EXPECT_FALSE(enc.ok);
}

TEST_F(FaultInjectionTest, DecryptFailsCleanlyOnShortRead) {
  {
    TFile f = libc_->fopen("plain", "wb");
    std::vector<char> data(32 * 1024, 'q');
    ASSERT_EQ(f.write(data.data(), data.size()), data.size());
  }
  std::uint8_t key[32] = {1};
  std::uint8_t iv[16] = {2};
  ASSERT_TRUE(app::encrypt_file(*libc_, "plain", "cipher", key, iv, 4096).ok);
  SimFs::instance().fail_next_ops(2);
  const auto dec = app::decrypt_file(*libc_, "cipher", "", key, iv, 4096);
  EXPECT_FALSE(dec.ok);
}

TEST_F(FaultInjectionTest, LmbenchLoopsStopOnFailure) {
  const int fd = libc_->open("/dev/zero", O_RDONLY);
  ASSERT_GE(fd, 0);
  SimFs::instance().fail_next_ops(1);
  // The loop detects the failed op and returns how far it got.
  EXPECT_EQ(app::read_words(*libc_, fd, 10), 0u);
  EXPECT_EQ(app::read_words(*libc_, fd, 10), 10u);
  libc_->close(fd);
}

TEST_F(FaultInjectionTest, FaultsBehaveTheSameUnderSwitchlessWorkers) {
  use_zc();
  app::KissDB db;
  ASSERT_EQ(db.open(*libc_, "faulty.db", {}), app::KissDB::kOk);
  std::uint64_t key = 1;
  std::uint64_t value = 2;
  ASSERT_EQ(db.put(&key, &value), app::KissDB::kOk);
  SimFs::instance().fail_next_ops(1);
  key = 3;
  // The failure surfaces identically even though a worker ran the ocall.
  EXPECT_EQ(db.put(&key, &value), app::KissDB::kErrorIo);
  std::uint64_t out = 0;
  key = 1;
  EXPECT_EQ(db.get(&key, &out), app::KissDB::kOk);
  EXPECT_EQ(out, 2u);
}

}  // namespace
}  // namespace zc
