// Concurrency stress: all backends under maximal cross-thread pressure,
// with scheduler churn, backend hot-swap and mixed payload sizes.  These
// tests hunt for lost updates, deadlocks and state-machine races rather
// than performance properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <random>
#include <thread>
#include <vector>

#include "core/backend_registry.hpp"
#include "core/zc_async.hpp"
#include "core/zc_backend.hpp"
#include "core/zc_batched.hpp"
#include "core/zc_sharded.hpp"
#include "intel_sl/intel_backend.hpp"
#include "workload/synthetic.hpp"

namespace zc {
namespace {

using namespace std::chrono_literals;

// The hammers are sized for the paper's 8-wide machine.  With fewer host
// cores every busy-wait hand-off costs a whole scheduler round, so the
// same call counts would take tens of minutes of wall clock without
// exercising any additional interleavings; scale the pressure down, keep
// the structure (always >= 2 threads so races stay possible).
unsigned scaled_threads(unsigned n) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return hw >= 8 ? n : std::max(2u, n * hw / 8);
}

std::uint64_t scaled_calls(std::uint64_t n) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return hw >= 8 ? n : std::max<std::uint64_t>(125, n * hw / 8);
}

struct SumArgs {
  std::uint64_t value = 0;
  std::uint64_t echoed = 0;
};

class StressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 500;  // cheap transitions: maximise call rate
    cfg.logical_cpus = 8;
    enclave_ = Enclave::create(cfg);
    sum_id_ = enclave_->ocalls().register_fn("sum", [this](MarshalledCall& c) {
      auto* a = static_cast<SumArgs*>(c.args);
      a->echoed = a->value;
      total_.fetch_add(a->value, std::memory_order_relaxed);
    });
  }

  // Hammers the installed backend from `threads` threads; verifies no call
  // is lost, duplicated, or corrupted.
  void hammer(unsigned threads, std::uint64_t calls_per_thread) {
    total_.store(0, std::memory_order_relaxed);
    std::atomic<std::uint64_t> expected{0};
    std::atomic<int> corrupt{0};
    {
      std::vector<std::jthread> workers;
      for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          std::mt19937_64 rng(t);
          std::uint64_t local = 0;
          for (std::uint64_t i = 0; i < calls_per_thread; ++i) {
            SumArgs args;
            args.value = rng() % 1000;
            local += args.value;
            enclave_->ocall(sum_id_, args);
            if (args.echoed != args.value) corrupt.fetch_add(1);
          }
          expected.fetch_add(local);
        });
      }
    }
    EXPECT_EQ(corrupt.load(), 0);
    EXPECT_EQ(total_.load(), expected.load());
  }

  std::unique_ptr<Enclave> enclave_;
  std::uint32_t sum_id_ = 0;
  std::atomic<std::uint64_t> total_{0};
};

TEST_F(StressTest, RegularBackendUnderPressure) {
  hammer(scaled_threads(16), scaled_calls(2'000));
}

TEST_F(StressTest, ZcBackendUnderPressure) {
  ZcConfig cfg;
  cfg.quantum = 2ms;  // aggressive scheduler churn during the run
  enclave_->set_backend(std::make_unique<ZcBackend>(*enclave_, cfg));
  hammer(scaled_threads(16), scaled_calls(2'000));
}

TEST_F(StressTest, IntelBackendUnderPressure) {
  intel::IntelSlConfig cfg;
  cfg.num_workers = 3;
  cfg.task_pool_slots = 4;  // smaller than demand: forces fallbacks
  cfg.retries_before_fallback = 50;
  cfg.switchless_fns = {sum_id_};
  enclave_->set_backend(
      std::make_unique<intel::IntelSwitchlessBackend>(*enclave_, cfg));
  hammer(scaled_threads(16), scaled_calls(2'000));
}

TEST_F(StressTest, HotCallsBackendUnderPressure) {
  install_backend_spec(*enclave_, "hotcalls:workers=3");
  hammer(scaled_threads(16), scaled_calls(2'000));
}

TEST_F(StressTest, ZcTinyPoolsForceConstantResets) {
  ZcConfig cfg;
  cfg.scheduler_enabled = false;
  cfg.with_initial_workers(4);
  cfg.worker_pool_bytes = 256;  // every few calls exhausts a pool
  auto backend = std::make_unique<ZcBackend>(*enclave_, cfg);
  auto* raw = backend.get();
  enclave_->set_backend(std::move(backend));
  hammer(scaled_threads(8), scaled_calls(1'000));
  EXPECT_GT(raw->stats().pool_resets.load(), 0u);
}

TEST_F(StressTest, SchedulerChurnWhileCallersRun) {
  // Manual worker-count churn racing live callers: exercises the
  // RESERVED-vs-PAUSE rule of §IV-B continuously.
  ZcConfig cfg;
  cfg.scheduler_enabled = false;
  auto backend = std::make_unique<ZcBackend>(*enclave_, cfg);
  auto* raw = backend.get();
  enclave_->set_backend(std::move(backend));

  std::atomic<bool> stop{false};
  std::jthread churner([&] {
    unsigned m = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      raw->set_active_workers(m % (raw->max_workers() + 1));
      ++m;
      std::this_thread::sleep_for(200us);
    }
  });
  hammer(scaled_threads(8), scaled_calls(2'000));
  stop.store(true);
}

TEST_F(StressTest, MixedPayloadSizesAcrossWorkers) {
  ZcConfig cfg;
  cfg.scheduler_enabled = false;
  cfg.with_initial_workers(4);
  cfg.worker_pool_bytes = 16 * 1024;
  enclave_->set_backend(std::make_unique<ZcBackend>(*enclave_, cfg));

  const auto xor_id =
      enclave_->ocalls().register_fn("xor", [](MarshalledCall& c) {
        auto* p = static_cast<std::uint8_t*>(c.payload);
        for (std::size_t i = 0; i < c.payload_size; ++i) p[i] ^= 0xFF;
      });

  std::atomic<int> corrupt{0};
  {
    const unsigned threads_n = scaled_threads(8);
    const std::uint64_t iters = scaled_calls(300);
    std::vector<std::jthread> threads;
    for (unsigned t = 0; t < threads_n; ++t) {
      threads.emplace_back([&, t] {
        std::mt19937 rng(static_cast<unsigned>(t));
        for (std::uint64_t i = 0; i < iters; ++i) {
          const std::size_t n = 1 + rng() % 8'192;
          std::vector<std::uint8_t> in(n);
          std::vector<std::uint8_t> out(n);
          for (auto& b : in) b = static_cast<std::uint8_t>(rng());
          SumArgs args;
          CallDesc desc;
          desc.fn_id = xor_id;
          desc.args = &args;
          desc.args_size = sizeof(args);
          desc.in_payload = in.data();
          desc.in_size = n;
          desc.out_payload = out.data();
          desc.out_size = n;
          enclave_->ocall(desc);
          for (std::size_t k = 0; k < n; ++k) {
            if (out[k] != static_cast<std::uint8_t>(in[k] ^ 0xFF)) {
              corrupt.fetch_add(1);
              break;
            }
          }
        }
      });
    }
  }
  EXPECT_EQ(corrupt.load(), 0);
}

TEST_F(StressTest, ShardedBackendUnderPressure) {
  // Per-shard schedulers with an aggressive quantum: constant worker-count
  // churn inside every shard while callers hammer both.
  install_backend_spec(*enclave_, "zc_sharded:shards=2;quantum_us=2000");
  hammer(scaled_threads(16), scaled_calls(2'000));
}

TEST_F(StressTest, ShardedCallerAffinityUnderPressure) {
  install_backend_spec(
      *enclave_, "zc_sharded:shards=4;policy=caller_affinity;quantum_us=2000");
  hammer(scaled_threads(16), scaled_calls(2'000));
}

TEST_F(StressTest, LeastLoadedShardedUnderPressure) {
  // Load-aware routing with live per-shard schedulers: the in_flight
  // gauges churn constantly while the selector reads them.
  install_backend_spec(
      *enclave_, "zc_sharded:shards=2;policy=least_loaded;quantum_us=2000");
  hammer(scaled_threads(16), scaled_calls(2'000));
}

TEST_F(StressTest, StealingShardedUnderPressure) {
  // One worker per shard and more callers than workers: the steal probe
  // runs on most calls, racing reservations on every shard at once.  The
  // hammer's invariants (no lost/duplicated/corrupted call) are the
  // equivalence property under maximal cross-shard traffic; quiesced
  // in_flight gauges prove the steal path balances its bookkeeping.
  ZcShardedConfig cfg;
  cfg.shards = 2;
  cfg.steal = ShardSteal::kScan;
  cfg.policy = ShardPolicy::kLeastLoaded;
  cfg.shard.scheduler_enabled = false;
  cfg.shard.with_initial_workers(1);
  auto backend = make_zc_sharded_backend(*enclave_, cfg);
  auto* raw = backend.get();
  enclave_->set_backend(std::move(backend));
  hammer(scaled_threads(8), scaled_calls(2'000));
  for (unsigned s = 0; s < raw->shard_count(); ++s) {
    EXPECT_EQ(raw->shard(s).stats().in_flight.load(), 0u) << s;
  }
}

TEST_F(StressTest, MaxLoadStealingShardedUnderPressure) {
  // Load-ordered victim selection under the same pressure: the probe
  // order is re-derived from churning in_flight gauges on every steal.
  install_backend_spec(*enclave_,
                       "zc_sharded:shards=2;workers=1;scheduler=off;"
                       "policy=affinity_load;load_threshold=1;steal=max_load");
  hammer(scaled_threads(8), scaled_calls(2'000));
}

TEST_F(StressTest, StealingChurnWhileCallersRun) {
  // Stealing racing pause/resume churn on every shard: a probe can land
  // on a shard whose workers are pausing mid-drain.
  ZcShardedConfig cfg;
  cfg.shards = 2;
  cfg.steal = ShardSteal::kScan;
  cfg.shard.scheduler_enabled = false;
  auto backend = make_zc_sharded_backend(*enclave_, cfg);
  auto* raw = backend.get();
  enclave_->set_backend(std::move(backend));

  const unsigned max =
      dynamic_cast<ZcBackend&>(raw->shard(0)).max_workers();
  std::atomic<bool> stop{false};
  std::jthread churner([&] {
    unsigned m = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      raw->set_active_workers(m % (max + 1));
      ++m;
      std::this_thread::sleep_for(200us);
    }
  });
  hammer(scaled_threads(8), scaled_calls(2'000));
  stop.store(true);
}

TEST_F(StressTest, ShardedChurnWhileCallersRun) {
  // Manual all-shard worker churn (0..max per shard) racing live callers:
  // every transition between switchless and fallback paths is crossed on
  // every shard repeatedly.
  ZcShardedConfig cfg;
  cfg.shards = 2;
  cfg.shard.scheduler_enabled = false;
  auto backend = make_zc_sharded_backend(*enclave_, cfg);
  auto* raw = backend.get();
  enclave_->set_backend(std::move(backend));

  const unsigned max =
      dynamic_cast<ZcBackend&>(raw->shard(0)).max_workers();
  std::atomic<bool> stop{false};
  std::jthread churner([&] {
    unsigned m = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      raw->set_active_workers(m % (max + 1));
      ++m;
      std::this_thread::sleep_for(200us);
    }
  });
  hammer(scaled_threads(8), scaled_calls(2'000));
  stop.store(true);
}

TEST_F(StressTest, ComposedShardedBatchedUnderPressure) {
  // The composed lattice under the full hammer: batched buffers inside a
  // stealing router, so the steal probe exercises the generic
  // try_invoke_switchless seam while slots churn.
  install_backend_spec(
      *enclave_,
      "zc_sharded:shards=2;steal=on;"
      "inner=(zc_batched:workers=1;batch=4;flush_us=50)");
  hammer(scaled_threads(8), scaled_calls(2'000));
  const BackendStatsSnapshot rolled = enclave_->backend().stats_snapshot();
  EXPECT_GT(rolled.batch_flushes, 0u);  // the inner layer surfaces rolled up
  EXPECT_EQ(rolled.in_flight, 0u);      // quiesced across every layer
}

TEST_F(StressTest, ComposedShardedAsyncUnderPressure) {
  install_backend_spec(
      *enclave_, "zc_sharded:shards=2;inner=(zc_async:workers=1;queue=8)");
  hammer(scaled_threads(8), scaled_calls(2'000));
  EXPECT_EQ(enclave_->backend().stats_snapshot().in_flight, 0u);
}

TEST_F(StressTest, ComposedChurnWhileCallersRun) {
  // Worker churn forwarded through the router into batched inners while
  // callers hammer: pause/drain inside every shard races the steal probe.
  install_backend_spec(
      *enclave_,
      "zc_sharded:shards=2;steal=max_load;"
      "inner=(zc_batched:workers=2;batch=2;flush_us=50)");
  auto* raw = &enclave_->backend();
  std::atomic<bool> stop{false};
  std::jthread churner([&] {
    unsigned m = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      raw->set_active_workers(m % 3);  // 0, 1, 2 workers per shard
      ++m;
      std::this_thread::sleep_for(200us);
    }
  });
  hammer(scaled_threads(8), scaled_calls(2'000));
  stop.store(true);
}

TEST_F(StressTest, FutexWaitZcUnderPressure) {
  // spin_us=0 + wait=futex: every switchless hand-off puts the caller to
  // sleep in the kernel and the worker must wake it — the gate's futex
  // protocol under maximal contention.
  install_backend_spec(
      *enclave_, "zc:wait=futex;spin_us=0;scheduler=off;workers=2");
  hammer(scaled_threads(8), scaled_calls(2'000));
  const BackendStats& stats = enclave_->backend().stats();
  EXPECT_GT(stats.caller_sleeps.load(), 0u);
  EXPECT_EQ(stats.caller_sleeps.load(), stats.caller_wakeups.load());
}

TEST_F(StressTest, FutexWaitBatchedUnderPressure) {
  install_backend_spec(
      *enclave_,
      "zc_batched:workers=2;batch=4;flush_us=50;wait=futex;spin_us=0");
  hammer(scaled_threads(8), scaled_calls(2'000));
  const BackendStats& stats = enclave_->backend().stats();
  EXPECT_GT(stats.caller_sleeps.load(), 0u);
  EXPECT_EQ(stats.caller_sleeps.load(), stats.caller_wakeups.load());
}

TEST_F(StressTest, FutexWaitAsyncUnderPressure) {
  install_backend_spec(*enclave_, "zc_async:workers=2;queue=8;wait=futex");
  hammer(scaled_threads(8), scaled_calls(2'000));
}

TEST_F(StressTest, BatchedBackendUnderPressure) {
  install_backend_spec(*enclave_, "zc_batched:workers=2;batch=4;flush_us=50");
  hammer(scaled_threads(16), scaled_calls(2'000));
}

TEST_F(StressTest, BatchedPauseResumeChurnWhileCallersRun) {
  // Workers are paused (drain, park) and resumed continuously while the
  // callers run: exercises the publish-vs-park wakeup protocol and the
  // forced fallback window when all workers are parked.
  ZcBatchedConfig cfg;
  cfg.workers = 2;
  cfg.batch = 2;
  cfg.flush = 50us;
  auto backend = make_zc_batched_backend(*enclave_, cfg);
  auto* raw = backend.get();
  enclave_->set_backend(std::move(backend));

  std::atomic<bool> stop{false};
  std::jthread churner([&] {
    unsigned m = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      raw->set_active_workers(m % (raw->max_workers() + 1));
      ++m;
      std::this_thread::sleep_for(200us);
    }
  });
  hammer(scaled_threads(8), scaled_calls(2'000));
  stop.store(true);
}

TEST_F(StressTest, FeedbackFlushBatchedUnderPressure) {
  // The adaptive flush window re-decided every 2ms while callers hammer
  // the buffers: window changes must never lose, duplicate or corrupt a
  // call, under full batches and partial timer flushes alike.
  install_backend_spec(
      *enclave_,
      "zc_batched:workers=2;batch=4;flush=feedback;quantum_us=2000");
  hammer(scaled_threads(16), scaled_calls(2'000));
}

TEST_F(StressTest, FeedbackFlushPauseResumeChurnWhileCallersRun) {
  ZcBatchedConfig cfg;
  cfg.workers = 2;
  cfg.batch = 2;
  cfg.flush = 50us;
  cfg.flush_policy = BatchFlushPolicy::kFeedback;
  cfg.quantum = std::chrono::microseconds(1'000);
  auto backend = make_zc_batched_backend(*enclave_, cfg);
  auto* raw = backend.get();
  enclave_->set_backend(std::move(backend));

  std::atomic<bool> stop{false};
  std::jthread churner([&] {
    unsigned m = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      raw->set_active_workers(m % (raw->max_workers() + 1));
      ++m;
      std::this_thread::sleep_for(200us);
    }
  });
  hammer(scaled_threads(8), scaled_calls(2'000));
  stop.store(true);
}

TEST_F(StressTest, BatchedTinySlotPoolsForceFallbacks) {
  ZcBatchedConfig cfg;
  cfg.workers = 2;
  cfg.batch = 2;
  cfg.flush = 50us;
  cfg.slot_pool_bytes = 16;  // smaller than any frame: every claim overflows
  auto backend = make_zc_batched_backend(*enclave_, cfg);
  auto* raw = backend.get();
  enclave_->set_backend(std::move(backend));
  hammer(scaled_threads(8), scaled_calls(1'000));
  EXPECT_GT(raw->stats().fallback_calls.load(), 0u);
}

TEST_F(StressTest, AsyncBackendUnderPressure) {
  install_backend_spec(*enclave_, "zc_async:workers=2;queue=16");
  hammer(scaled_threads(16), scaled_calls(2'000));
}

TEST_F(StressTest, AsyncTinyQueueForcesBackpressureFallbacks) {
  // A single completion-table slot under concurrent submitters: most calls
  // hit queue-full backpressure and must fall back inline — none may be
  // lost, duplicated or corrupted.
  ZcAsyncConfig cfg;
  cfg.workers = 2;
  cfg.queue = 1;
  auto backend = make_zc_async_backend(*enclave_, cfg);
  auto* raw = backend.get();
  enclave_->set_backend(std::move(backend));
  hammer(scaled_threads(8), scaled_calls(1'000));
  EXPECT_GT(raw->stats().fallback_calls.load(), 0u);
}

TEST_F(StressTest, AsyncConcurrentPipelinedSubmitters) {
  // Every thread keeps a window of in-flight futures over a shared
  // completion table, so slots, generations and completion signals are
  // contended from all sides; every future must resolve to its own call.
  ZcAsyncConfig cfg;
  cfg.workers = 2;
  cfg.queue = 8;
  auto backend = make_zc_async_backend(*enclave_, cfg);
  auto* raw = backend.get();
  enclave_->set_backend(std::move(backend));

  total_.store(0, std::memory_order_relaxed);
  std::atomic<std::uint64_t> expected{0};
  std::atomic<int> corrupt{0};
  const unsigned threads_n = scaled_threads(8);
  const std::uint64_t calls = scaled_calls(1'000);
  {
    std::vector<std::jthread> submitters;
    for (unsigned t = 0; t < threads_n; ++t) {
      submitters.emplace_back([&, t] {
        constexpr unsigned kDepth = 4;
        std::mt19937_64 rng(t);
        std::uint64_t local = 0;
        std::vector<SumArgs> ring(kDepth);
        std::vector<CallFuture> futures(kDepth);
        auto check = [&](std::size_t k) {
          futures[k].wait();
          if (futures[k].valid() && ring[k].echoed != ring[k].value) {
            corrupt.fetch_add(1);
          }
        };
        for (std::uint64_t i = 0; i < calls; ++i) {
          const std::size_t k = i % kDepth;
          check(k);
          ring[k].value = rng() % 1000;
          ring[k].echoed = 0;
          local += ring[k].value;
          CallDesc desc;
          desc.fn_id = sum_id_;
          desc.args = &ring[k];
          desc.args_size = sizeof(ring[k]);
          futures[k] = raw->submit(desc);
        }
        for (std::size_t k = 0; k < kDepth; ++k) check(k);
        expected.fetch_add(local);
      });
    }
  }
  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_EQ(total_.load(), expected.load());
  EXPECT_EQ(raw->stats().total_calls(), calls * threads_n);
}

TEST_F(StressTest, AsyncPauseResumeChurnWhileSubmittersRun) {
  ZcAsyncConfig cfg;
  cfg.workers = 2;
  cfg.queue = 4;
  auto backend = make_zc_async_backend(*enclave_, cfg);
  auto* raw = backend.get();
  enclave_->set_backend(std::move(backend));

  std::atomic<bool> stop{false};
  std::jthread churner([&] {
    unsigned m = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      raw->set_active_workers(m % (raw->max_workers() + 1));
      ++m;
      std::this_thread::sleep_for(200us);
    }
  });
  hammer(scaled_threads(8), scaled_calls(2'000));
  stop.store(true);
}

TEST_F(StressTest, RingBatchedUnderPressure) {
  // The lock-free MPSC submit ring instead of the slot-table CAS scan,
  // under maximal producer contention plus pause/resume churn.
  ZcBatchedConfig cfg;
  cfg.workers = 2;
  cfg.batch = 4;
  cfg.flush = 50us;
  cfg.ring = true;
  auto backend = make_zc_batched_backend(*enclave_, cfg);
  auto* raw = backend.get();
  enclave_->set_backend(std::move(backend));

  std::atomic<bool> stop{false};
  std::jthread churner([&] {
    unsigned m = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      raw->set_active_workers(m % (raw->max_workers() + 1));
      ++m;
      std::this_thread::sleep_for(200us);
    }
  });
  hammer(scaled_threads(8), scaled_calls(2'000));
  stop.store(true);
}

TEST_F(StressTest, RingCoalescedBatchedFutexUnderPressure) {
  // ring=on + coalesce=on + wait=futex + spin_us=0: every blocked caller
  // sleeps on the worker's shared gate and flushes release whole batches
  // with one broadcast.  Sleeps and wakeups must still balance exactly.
  install_backend_spec(*enclave_,
                       "zc_batched:workers=2;batch=4;flush_us=50;ring=on;"
                       "coalesce=on;wait=futex;spin_us=0");
  hammer(scaled_threads(8), scaled_calls(2'000));
  const BackendStats& stats = enclave_->backend().stats();
  EXPECT_GT(stats.caller_sleeps.load(), 0u);
  EXPECT_EQ(stats.caller_sleeps.load(), stats.caller_wakeups.load());
  EXPECT_GT(enclave_->backend().stats_snapshot().wake_batches, 0u);
}

TEST_F(StressTest, RingCoalescedAsyncUnderPressure) {
  install_backend_spec(
      *enclave_, "zc_async:workers=2;queue=16;ring=on;coalesce=on");
  hammer(scaled_threads(16), scaled_calls(2'000));
}

TEST_F(StressTest, RingAsyncPipelinedSubmittersWithChurn) {
  // The async ring under its hardest shape: pipelined futures from every
  // thread while workers pause and resume — ring tickets, straggler
  // drains and the parked-wake protocol all contended at once.
  ZcAsyncConfig cfg;
  cfg.workers = 2;
  cfg.queue = 8;
  cfg.ring = true;
  cfg.coalesce = true;
  auto backend = make_zc_async_backend(*enclave_, cfg);
  auto* raw = backend.get();
  enclave_->set_backend(std::move(backend));

  std::atomic<bool> stop{false};
  std::jthread churner([&] {
    unsigned m = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      raw->set_active_workers(m % (raw->max_workers() + 1));
      ++m;
      std::this_thread::sleep_for(200us);
    }
  });

  total_.store(0, std::memory_order_relaxed);
  std::atomic<std::uint64_t> expected{0};
  std::atomic<int> corrupt{0};
  const unsigned threads_n = scaled_threads(8);
  const std::uint64_t calls = scaled_calls(1'000);
  {
    std::vector<std::jthread> submitters;
    for (unsigned t = 0; t < threads_n; ++t) {
      submitters.emplace_back([&, t] {
        constexpr unsigned kDepth = 4;
        std::mt19937_64 rng(t);
        std::uint64_t local = 0;
        std::vector<SumArgs> ring(kDepth);
        std::vector<CallFuture> futures(kDepth);
        auto check = [&](std::size_t k) {
          futures[k].wait();
          if (futures[k].valid() && ring[k].echoed != ring[k].value) {
            corrupt.fetch_add(1);
          }
        };
        for (std::uint64_t i = 0; i < calls; ++i) {
          const std::size_t k = i % kDepth;
          check(k);
          ring[k].value = rng() % 1000;
          ring[k].echoed = 0;
          local += ring[k].value;
          CallDesc desc;
          desc.fn_id = sum_id_;
          desc.args = &ring[k];
          desc.args_size = sizeof(ring[k]);
          futures[k] = raw->submit(desc);
        }
        for (std::size_t k = 0; k < kDepth; ++k) check(k);
        expected.fetch_add(local);
      });
    }
  }
  stop.store(true);
  churner.join();
  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_EQ(total_.load(), expected.load());
  EXPECT_EQ(raw->stats().total_calls(), calls * threads_n);
}

TEST_F(StressTest, RedundantCommandStormLeavesParkedWorkersAsleep) {
  // Regression: a scheduler that re-issues the same set_active_workers
  // value every probe used to wake every parked worker each time.  A
  // 10k-call storm of redundant commands must leave worker_wakeups flat;
  // the real transitions at the end still restore service.
  ZcBatchedConfig cfg;
  cfg.workers = 2;
  cfg.batch = 2;
  cfg.flush = 50us;
  auto backend = make_zc_batched_backend(*enclave_, cfg);
  auto* raw = backend.get();
  enclave_->set_backend(std::move(backend));

  raw->set_active_workers(0);
  while (raw->stats().worker_sleeps.load() < 2) {
    std::this_thread::sleep_for(100us);
  }
  std::this_thread::sleep_for(2ms);  // absorb the pause transition's wakes
  const std::uint64_t baseline = raw->stats().worker_wakeups.load();
  {
    std::vector<std::jthread> stormers;
    for (int t = 0; t < 4; ++t) {
      stormers.emplace_back([&] {
        for (int i = 0; i < 10'000; ++i) raw->set_active_workers(0);
      });
    }
  }
  std::this_thread::sleep_for(2ms);
  EXPECT_EQ(raw->stats().worker_wakeups.load(), baseline);

  raw->set_active_workers(2);
  hammer(scaled_threads(4), scaled_calls(500));
}

TEST_F(StressTest, BackendHotSwapBetweenBatches) {
  // Swapping backends between batches (never mid-flight) must preserve
  // every call under all four policies in sequence.
  for (int round = 0; round < 3; ++round) {
    enclave_->set_backend(nullptr);
    hammer(scaled_threads(4), scaled_calls(250));
    ZcConfig zcfg;
    zcfg.quantum = 2ms;
    enclave_->set_backend(std::make_unique<ZcBackend>(*enclave_, zcfg));
    hammer(scaled_threads(4), scaled_calls(250));
    intel::IntelSlConfig icfg;
    icfg.num_workers = 2;
    icfg.switchless_fns = {sum_id_};
    enclave_->set_backend(
        std::make_unique<intel::IntelSwitchlessBackend>(*enclave_, icfg));
    hammer(scaled_threads(4), scaled_calls(250));
    install_backend_spec(*enclave_, "hotcalls");
    hammer(scaled_threads(4), scaled_calls(250));
    install_backend_spec(*enclave_, "zc_sharded:shards=2;quantum_us=2000");
    hammer(scaled_threads(4), scaled_calls(250));
    install_backend_spec(
        *enclave_,
        "zc_sharded:shards=2;policy=least_loaded;steal=on;quantum_us=2000");
    hammer(scaled_threads(4), scaled_calls(250));
    install_backend_spec(*enclave_, "zc_batched:workers=2;batch=2;flush_us=50");
    hammer(scaled_threads(4), scaled_calls(250));
    install_backend_spec(
        *enclave_,
        "zc_batched:workers=2;batch=2;flush=feedback;quantum_us=2000");
    hammer(scaled_threads(4), scaled_calls(250));
    install_backend_spec(*enclave_, "zc_async:workers=2;queue=4");
    hammer(scaled_threads(4), scaled_calls(250));
    install_backend_spec(
        *enclave_,
        "zc_sharded:shards=2;steal=on;inner=(zc_batched:workers=1;batch=2)");
    hammer(scaled_threads(4), scaled_calls(250));
  }
}

}  // namespace
}  // namespace zc
