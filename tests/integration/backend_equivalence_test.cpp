// Functional equivalence across backends: the same application run must
// produce identical results under no_sl, Intel switchless, and ZC — the
// backends may only differ in *how* ocalls execute, never in what they do.
#include <gtest/gtest.h>

#include "../test_util.hpp"
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "apps/crypto/file_crypto.hpp"
#include "apps/kissdb/kissdb.hpp"
#include "core/zc_backend.hpp"
#include "tlibc/memcpy.hpp"
#include "workload/harness.hpp"

namespace zc {
namespace {

enum class Backend { kNoSl, kIntel2, kZc };

std::string backend_name(Backend b) {
  switch (b) {
    case Backend::kNoSl:
      return "no_sl";
    case Backend::kIntel2:
      return "intel2";
    case Backend::kZc:
      return "zc";
  }
  return "?";
}

class BackendEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<Backend, tlibc::MemcpyKind>> {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 200;
    enclave_ = Enclave::create(cfg);
    libc_ = std::make_unique<EnclaveLibc>(*enclave_);
    base_ = testutil::unique_tmp_path("zc_equiv");
    install();
  }
  void TearDown() override {
    for (const auto& suffix : {".db", ".plain", ".cipher", ".out"}) {
      std::filesystem::remove(base_.string() + suffix);
    }
  }

  void install() {
    switch (std::get<0>(GetParam())) {
      case Backend::kNoSl:
        break;  // default
      case Backend::kIntel2: {
        intel::IntelSlConfig cfg;
        cfg.num_workers = 2;
        // Make the stdio ocalls switchless, like i-all in the paper.
        for (std::uint32_t id = 0; id < enclave_->ocalls().size(); ++id) {
          cfg.switchless_fns.insert(id);
        }
        enclave_->set_backend(
            std::make_unique<intel::IntelSwitchlessBackend>(*enclave_, cfg));
        break;
      }
      case Backend::kZc: {
        ZcConfig cfg;
        cfg.quantum = std::chrono::microseconds(5'000);
        enclave_->set_backend(std::make_unique<ZcBackend>(*enclave_, cfg));
        break;
      }
    }
  }

  std::unique_ptr<Enclave> enclave_;
  std::unique_ptr<EnclaveLibc> libc_;
  std::filesystem::path base_;
};

TEST_P(BackendEquivalenceTest, KissdbContentsIdentical) {
  tlibc::ScopedMemcpy guard(std::get<1>(GetParam()));
  app::KissDB db;
  app::KissDB::Options opts;
  opts.hash_table_size = 64;
  ASSERT_EQ(db.open(*libc_, base_.string() + ".db", opts), app::KissDB::kOk);
  for (std::uint64_t i = 0; i < 500; ++i) {
    std::uint64_t key = i;
    std::uint64_t value = i * 2654435761u;
    ASSERT_EQ(db.put(&key, &value), app::KissDB::kOk);
  }
  for (std::uint64_t i = 0; i < 500; ++i) {
    std::uint64_t key = i;
    std::uint64_t out = 0;
    ASSERT_EQ(db.get(&key, &out), app::KissDB::kOk) << i;
    EXPECT_EQ(out, i * 2654435761u);
  }
}

TEST_P(BackendEquivalenceTest, FileCryptoRoundTripIdentical) {
  tlibc::ScopedMemcpy guard(std::get<1>(GetParam()));
  const std::string plain = base_.string() + ".plain";
  const std::string cipher = base_.string() + ".cipher";
  const std::string out = base_.string() + ".out";
  std::vector<std::uint8_t> data(60'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  {
    std::ofstream f(plain, std::ios::binary);
    f.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  }
  std::uint8_t key[32] = {0x42};
  std::uint8_t iv[16] = {0x24};
  ASSERT_TRUE(app::encrypt_file(*libc_, plain, cipher, key, iv, 4096).ok);
  ASSERT_TRUE(app::decrypt_file(*libc_, cipher, out, key, iv, 4096).ok);
  std::ifstream f(out, std::ios::binary);
  std::vector<std::uint8_t> back{std::istreambuf_iterator<char>(f),
                                 std::istreambuf_iterator<char>()};
  EXPECT_EQ(back, data);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAndMemcpys, BackendEquivalenceTest,
    ::testing::Combine(::testing::Values(Backend::kNoSl, Backend::kIntel2,
                                         Backend::kZc),
                       ::testing::Values(tlibc::MemcpyKind::kIntel,
                                         tlibc::MemcpyKind::kZc)),
    [](const auto& info) {
      return backend_name(std::get<0>(info.param)) + "_" +
             tlibc::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace zc
