// Functional equivalence across backends: the same application run must
// produce identical results under every registered backend — no_sl, Intel
// switchless, HotCalls and ZC may only differ in *how* ocalls execute,
// never in what they do.  The parameter list is derived from the registry,
// so a newly registered backend is equivalence-checked automatically.
#include <gtest/gtest.h>

#include "../test_util.hpp"
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <thread>
#include <vector>

#include "apps/crypto/file_crypto.hpp"
#include "common/cycles.hpp"
#include "apps/kissdb/kissdb.hpp"
#include "core/backend_registry.hpp"
#include "tlibc/memcpy.hpp"
#include "workload/harness.hpp"

namespace zc {
namespace {

// The equivalence spec for each registry key: small quanta / full static
// sets so the switchless paths are actually exercised.  Unknown keys run
// with their defaults, so future backends are covered the moment they are
// registered.
std::string equivalence_spec(const std::string& key) {
  if (key == "intel") return "intel:sl=all;workers=2";
  if (key == "zc") return "zc:quantum_us=5000";
  if (key == "hotcalls") return "hotcalls:workers=2";
  if (key == "zc_sharded") return "zc_sharded:shards=2;workers=1";
  if (key == "zc_batched") return "zc_batched:workers=2;batch=2;flush_us=100";
  // A tiny completion table so queue-full backpressure fallbacks are part
  // of what equivalence covers.
  if (key == "zc_async") return "zc_async:workers=2;queue=4";
  return key;
}

std::vector<std::string> all_backend_specs() {
  std::vector<std::string> specs;
  for (const auto& key : BackendRegistry::instance().keys()) {
    specs.push_back(equivalence_spec(key));
  }
  // Load-aware variants beyond the per-key defaults: least_loaded routing
  // with bounded stealing (1 worker per shard so steals actually happen)
  // and the feedback-adapted flush window (short quantum so it re-decides
  // mid-run).  Equivalence must hold however calls are routed or flushed.
  specs.push_back(
      "zc_sharded:shards=2;workers=1;scheduler=off;policy=least_loaded;"
      "steal=on");
  specs.push_back("zc_batched:workers=2;batch=2;flush=feedback;quantum_us=2000");
  // Composed planes (nested inner= specs): the router over batched and
  // async shards, and the affinity_load/max_load routing additions.
  // However the lattice routes, batches or queues, results must be
  // identical.
  specs.push_back("zc_sharded:shards=2;inner=(zc_batched:workers=1;batch=4)");
  specs.push_back("zc_sharded:shards=2;inner=(zc_async:workers=1;queue=8)");
  specs.push_back(
      "zc_sharded:shards=2;workers=1;scheduler=off;policy=affinity_load;"
      "load_threshold=1;steal=max_load");
  // Sleeping blocked-caller gates (futex with condvar fallback off Linux):
  // the wait policy may change who sleeps, never what calls compute.
  specs.push_back("zc:scheduler=off;workers=2;spin_us=0;wait=futex");
  // The MPSC submit ring and coalesced flush wakes, each against its
  // table/per-slot twin above: the submit plane and the wake shape may
  // change who queues where and who wakes whom, never what calls compute.
  specs.push_back("zc_batched:workers=2;batch=2;flush_us=100;ring=on");
  specs.push_back(
      "zc_batched:workers=2;batch=4;flush_us=100;ring=on;coalesce=on;"
      "wait=futex;spin_us=0");
  specs.push_back("zc_async:workers=2;queue=4;ring=on");
  specs.push_back("zc_async:workers=2;queue=8;ring=on;coalesce=on");
  specs.push_back("zc_async:workers=2;queue=8;coalesce=on");
  // And composed through the router, where each shard runs its own ring.
  specs.push_back(
      "zc_sharded:shards=2;inner=(zc_batched:workers=1;batch=4;ring=on;"
      "coalesce=on;wait=futex)");
  specs.push_back(
      "zc_sharded:shards=2;inner=(zc_async:workers=1;queue=8;ring=on;"
      "coalesce=on)");
  // The large-payload data plane: size-classed slab frames and the
  // single-copy discipline.  copy=single switches the differential driver
  // onto the in-place producer/consumer path, whose digests must match the
  // double-copy baseline bit for bit.
  specs.push_back("zc:workers=2;pool=slab");
  specs.push_back("zc:workers=2;pool=slab;copy=single");
  specs.push_back(
      "zc_batched:workers=2;batch=2;flush_us=100;pool=slab;copy=single");
  specs.push_back("zc_async:workers=2;queue=4;pool=slab;copy=single");
  specs.push_back(
      "zc_sharded:shards=2;inner=(zc:workers=1;pool=slab;copy=single)");
  return specs;
}

// Trusted-worker twins of the single-copy data-plane specs above.
const char* kSingleCopyEcallSpecs[] = {
    "zc:direction=ecall;scheduler=off;workers=1;pool=slab;copy=single",
    "zc_batched:direction=ecall;workers=1;batch=2;flush_us=100;pool=slab;"
    "copy=single",
    "zc_async:direction=ecall;workers=1;queue=4;pool=slab;copy=single",
};

// Composed ecall-plane specs checked on top of the per-key ecall variants
// (the trusted-worker twins of the composed ocall specs above).
const char* kComposedEcallSpecs[] = {
    "zc_sharded:direction=ecall;shards=2;inner=(zc_batched:workers=1;"
    "batch=4)",
    "zc_sharded:direction=ecall;shards=2;inner=(zc_async:workers=1;"
    "queue=8)",
};

// The ecall-plane twin of equivalence_spec(); empty string = the backend
// has no trusted-worker mode (it is skipped, and the coverage test pins
// the list of such exemptions).
std::string ecall_equivalence_spec(const std::string& key) {
  if (key == "no_sl") return "no_sl:direction=ecall";
  if (key == "intel") return "intel:direction=ecall;sl=all;workers=1";
  if (key == "zc") return "zc:direction=ecall;scheduler=off;workers=1";
  if (key == "zc_sharded") {
    return "zc_sharded:direction=ecall;shards=2;scheduler=off;workers=1";
  }
  if (key == "zc_batched") {
    return "zc_batched:direction=ecall;workers=1;batch=2;flush_us=100";
  }
  if (key == "zc_async") return "zc_async:direction=ecall;workers=1;queue=4";
  if (key == "hotcalls") return "";  // untrusted responders only
  // Future backends: try the generic direction option; create() rejects it
  // cleanly if unsupported, which fails the test and forces a decision.
  return key + ":direction=ecall";
}

TEST(BackendEquivalenceCoverage, EveryRegistryKeyIsChecked) {
  // INSTANTIATE below iterates all_backend_specs(); this guards that the
  // list really spans the registry (incl. hotcalls and the sharded/batched
  // call planes).
  const auto keys = BackendRegistry::instance().keys();
  EXPECT_GE(keys.size(), 7u);
  for (const char* key : {"no_sl", "intel", "hotcalls", "zc", "zc_sharded",
                          "zc_batched", "zc_async"}) {
    EXPECT_TRUE(std::find(keys.begin(), keys.end(), key) != keys.end())
        << key;
  }
}

class BackendEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, tlibc::MemcpyKind>> {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 200;
    enclave_ = Enclave::create(cfg);
    libc_ = std::make_unique<EnclaveLibc>(*enclave_);
    base_ = testutil::unique_tmp_path("zc_equiv");
    install_backend_spec(*enclave_, std::get<0>(GetParam()));
  }
  void TearDown() override {
    enclave_->set_backend(nullptr);  // join worker threads promptly
    for (const auto& suffix : {".db", ".plain", ".cipher", ".out"}) {
      std::filesystem::remove(base_.string() + suffix);
    }
  }

  std::unique_ptr<Enclave> enclave_;
  std::unique_ptr<EnclaveLibc> libc_;
  std::filesystem::path base_;
};

TEST_P(BackendEquivalenceTest, KissdbContentsIdentical) {
  tlibc::ScopedMemcpy guard(std::get<1>(GetParam()));
  app::KissDB db;
  app::KissDB::Options opts;
  opts.hash_table_size = 64;
  ASSERT_EQ(db.open(*libc_, base_.string() + ".db", opts), app::KissDB::kOk);
  for (std::uint64_t i = 0; i < 500; ++i) {
    std::uint64_t key = i;
    std::uint64_t value = i * 2654435761u;
    ASSERT_EQ(db.put(&key, &value), app::KissDB::kOk);
  }
  for (std::uint64_t i = 0; i < 500; ++i) {
    std::uint64_t key = i;
    std::uint64_t out = 0;
    ASSERT_EQ(db.get(&key, &out), app::KissDB::kOk) << i;
    EXPECT_EQ(out, i * 2654435761u);
  }
}

TEST_P(BackendEquivalenceTest, FileCryptoRoundTripIdentical) {
  tlibc::ScopedMemcpy guard(std::get<1>(GetParam()));
  const std::string plain = base_.string() + ".plain";
  const std::string cipher = base_.string() + ".cipher";
  const std::string out = base_.string() + ".out";
  std::vector<std::uint8_t> data(60'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  {
    std::ofstream f(plain, std::ios::binary);
    f.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  }
  std::uint8_t key[32] = {0x42};
  std::uint8_t iv[16] = {0x24};
  ASSERT_TRUE(app::encrypt_file(*libc_, plain, cipher, key, iv, 4096).ok);
  ASSERT_TRUE(app::decrypt_file(*libc_, cipher, out, key, iv, 4096).ok);
  std::ifstream f(out, std::ios::binary);
  std::vector<std::uint8_t> back{std::istreambuf_iterator<char>(f),
                                 std::istreambuf_iterator<char>()};
  EXPECT_EQ(back, data);
}

// --- Randomized differential workload --------------------------------------
//
// The same seeded pseudo-random ocall/ecall stream (mixed payload sizes and
// in-call durations) must produce byte-identical results and identical call
// counts under every registered backend.  The digest is an order-independent
// sum of per-call FNV hashes so concurrent callers don't perturb it.

struct MixArgs {
  std::uint64_t value = 0;
  std::uint64_t echoed = 0;
  std::uint64_t pauses = 0;
};

std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t seed = 1469598103934665603ull) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// Single-copy driver callbacks (plain function pointers, per CallDesc):
// the producer copies the caller's pseudo-random bytes straight into the
// untrusted frame, the consumer reads the handler's result straight out.
struct DiffInplaceCtx {
  const std::uint8_t* in = nullptr;
  std::uint8_t* out = nullptr;
};

void diff_produce(void* dst, std::size_t n, void* ctx) {
  std::memcpy(dst, static_cast<DiffInplaceCtx*>(ctx)->in, n);
}

void diff_consume(const void* src, std::size_t n, void* ctx) {
  std::memcpy(static_cast<DiffInplaceCtx*>(ctx)->out, src, n);
}

struct DifferentialOutcome {
  std::uint64_t digest = 0;        ///< order-independent result digest
  std::uint64_t handler_calls = 0; ///< executions observed by the handler
  std::uint64_t backend_calls = 0; ///< backend counter total
  std::uint64_t issued = 0;        ///< calls issued by the drivers
  std::uint64_t copies_elided = 0; ///< staging copies the data plane skipped
  CopyMode mode = CopyMode::kDouble;
};

// Runs the workload through `spec` on a fresh enclave: `threads` callers,
// each issuing `calls` deterministic pseudo-random requests (sizes 1..4096,
// durations 0..64 pauses).  Direction-aware: ecall specs exercise the
// trusted-function plane.
DifferentialOutcome run_differential(const std::string& spec_text,
                                     unsigned threads, std::uint64_t calls) {
  SimConfig cfg;
  cfg.tes_cycles = 200;
  cfg.logical_cpus = 8;
  auto enclave = Enclave::create(cfg);
  const bool ecall =
      spec_direction(BackendSpec::parse(spec_text)) == CallDirection::kEcall;

  std::atomic<std::uint64_t> handler_calls{0};
  const auto handler = [&handler_calls](MarshalledCall& call) {
    auto* a = static_cast<MixArgs*>(call.args);
    a->echoed = a->value * 2654435761ull + 1;
    pause_n(a->pauses);
    auto* payload = static_cast<std::uint8_t*>(call.payload);
    for (std::size_t i = 0; i < call.payload_size; ++i) {
      payload[i] = static_cast<std::uint8_t>(payload[i] ^ 0x5A);
    }
    handler_calls.fetch_add(1, std::memory_order_relaxed);
  };
  // The mix handler works on call.payload in place, so it is safe for the
  // single-copy discipline; declare that so copy=single specs exercise it.
  const HandlerTraits traits{/*in_place_capable=*/true};
  const std::uint32_t fn_id =
      ecall ? enclave->ecalls().register_fn("mix", handler, traits)
            : enclave->ocalls().register_fn("mix", handler, traits);
  install_backend_spec(*enclave, spec_text);

  DifferentialOutcome out;
  out.mode = ecall ? enclave->ecall_backend().copy_mode()
                   : enclave->backend().copy_mode();
  const CopyMode mode = out.mode;
  std::atomic<std::uint64_t> digest{0};
  std::atomic<std::uint64_t> issued{0};
  {
    std::vector<std::jthread> callers;
    for (unsigned t = 0; t < threads; ++t) {
      callers.emplace_back([&, t] {
        std::mt19937_64 rng(0xD1F5ull * (t + 1));  // same stream per backend
        std::uint64_t local_digest = 0;
        for (std::uint64_t i = 0; i < calls; ++i) {
          MixArgs args;
          args.value = rng();
          args.pauses = rng() % 64;
          const std::size_t n = 1 + rng() % 4'096;
          std::vector<std::uint8_t> in(n);
          std::vector<std::uint8_t> out_buf(n);
          for (auto& b : in) b = static_cast<std::uint8_t>(rng());
          CallDesc desc;
          desc.fn_id = fn_id;
          desc.args = &args;
          desc.args_size = sizeof(args);
          DiffInplaceCtx ctx{in.data(), out_buf.data()};
          if (mode == CopyMode::kSingle) {
            desc.in_size = n;
            desc.out_size = n;
            desc.produce_in = &diff_produce;
            desc.consume_out = &diff_consume;
            desc.inplace_ctx = &ctx;
          } else {
            desc.in_payload = in.data();
            desc.in_size = n;
            desc.out_payload = out_buf.data();
            desc.out_size = n;
          }
          if (ecall) {
            enclave->ecall_fn(desc);
          } else {
            enclave->ocall(desc);
          }
          local_digest += fnv1a(out_buf.data(), n, fnv1a(&args.echoed, 8));
        }
        digest.fetch_add(local_digest, std::memory_order_relaxed);
        issued.fetch_add(calls, std::memory_order_relaxed);
      });
    }
  }
  out.digest = digest.load();
  out.handler_calls = handler_calls.load();
  out.issued = issued.load();
  out.backend_calls = ecall ? enclave->ecall_backend().stats().total_calls()
                            : enclave->backend().stats().total_calls();
  out.copies_elided = ecall
                          ? enclave->ecall_backend().stats_snapshot().copies_elided
                          : enclave->backend().stats_snapshot().copies_elided;
  if (ecall) {
    enclave->set_ecall_backend(nullptr);
  } else {
    enclave->set_backend(nullptr);
  }
  return out;
}

TEST(BackendDifferentialTest, RandomizedOcallWorkloadIsIdenticalEverywhere) {
  const unsigned threads = 2;
  const std::uint64_t calls = 150;
  const DifferentialOutcome ref = run_differential("no_sl", threads, calls);
  ASSERT_EQ(ref.handler_calls, ref.issued);
  for (const auto& spec : all_backend_specs()) {
    if (spec == "no_sl") continue;
    const DifferentialOutcome got = run_differential(spec, threads, calls);
    EXPECT_EQ(got.digest, ref.digest) << spec;
    EXPECT_EQ(got.handler_calls, ref.handler_calls)
        << spec << ": lost or duplicated calls";
    EXPECT_EQ(got.backend_calls, got.issued)
        << spec << ": backend counters disagree with issued calls";
    if (spec.find("copy=single") != std::string::npos) {
      // The single-copy discipline really ran: two staging copies (one per
      // direction) were elided for every issued call.
      EXPECT_EQ(got.mode, CopyMode::kSingle) << spec;
      EXPECT_EQ(got.copies_elided, 2 * got.issued) << spec;
    } else {
      EXPECT_EQ(got.copies_elided, 0u) << spec;
    }
  }
}

TEST(BackendDifferentialTest, RandomizedEcallWorkloadIsIdenticalEverywhere) {
  const unsigned threads = 2;
  const std::uint64_t calls = 100;
  const DifferentialOutcome ref =
      run_differential("no_sl:direction=ecall", threads, calls);
  ASSERT_EQ(ref.handler_calls, ref.issued);
  unsigned skipped = 0;
  for (const auto& key : BackendRegistry::instance().keys()) {
    const std::string spec = ecall_equivalence_spec(key);
    if (spec.empty()) {
      ++skipped;
      continue;
    }
    if (key == "no_sl") continue;
    const DifferentialOutcome got = run_differential(spec, threads, calls);
    EXPECT_EQ(got.digest, ref.digest) << spec;
    EXPECT_EQ(got.handler_calls, ref.handler_calls)
        << spec << ": lost or duplicated calls";
    EXPECT_EQ(got.backend_calls, got.issued)
        << spec << ": backend counters disagree with issued calls";
  }
  // Only hotcalls is exempt from the trusted-worker plane.
  EXPECT_EQ(skipped, 1u);
  // Composed planes serve trusted functions identically too.
  for (const char* spec : kComposedEcallSpecs) {
    const DifferentialOutcome got = run_differential(spec, threads, calls);
    EXPECT_EQ(got.digest, ref.digest) << spec;
    EXPECT_EQ(got.handler_calls, ref.handler_calls)
        << spec << ": lost or duplicated calls";
    EXPECT_EQ(got.backend_calls, got.issued)
        << spec << ": backend counters disagree with issued calls";
  }
  // And the single-copy data plane on the trusted side: identical digests,
  // with both staging copies elided per call.
  for (const char* spec : kSingleCopyEcallSpecs) {
    const DifferentialOutcome got = run_differential(spec, threads, calls);
    EXPECT_EQ(got.digest, ref.digest) << spec;
    EXPECT_EQ(got.handler_calls, ref.handler_calls)
        << spec << ": lost or duplicated calls";
    EXPECT_EQ(got.mode, CopyMode::kSingle) << spec;
    EXPECT_EQ(got.copies_elided, 2 * got.issued) << spec;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAndMemcpys, BackendEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(all_backend_specs()),
                       ::testing::Values(tlibc::MemcpyKind::kIntel,
                                         tlibc::MemcpyKind::kZc)),
    [](const auto& info) {
      // Spec strings carry ':=;,' — flatten to a valid gtest name.
      std::string name = std::get<0>(info.param) + "_" +
                         tlibc::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace zc
