// Functional equivalence across backends: the same application run must
// produce identical results under every registered backend — no_sl, Intel
// switchless, HotCalls and ZC may only differ in *how* ocalls execute,
// never in what they do.  The parameter list is derived from the registry,
// so a newly registered backend is equivalence-checked automatically.
#include <gtest/gtest.h>

#include "../test_util.hpp"
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>

#include "apps/crypto/file_crypto.hpp"
#include "apps/kissdb/kissdb.hpp"
#include "core/backend_registry.hpp"
#include "tlibc/memcpy.hpp"
#include "workload/harness.hpp"

namespace zc {
namespace {

// The equivalence spec for each registry key: small quanta / full static
// sets so the switchless paths are actually exercised.  Unknown keys run
// with their defaults, so future backends are covered the moment they are
// registered.
std::string equivalence_spec(const std::string& key) {
  if (key == "intel") return "intel:sl=all;workers=2";
  if (key == "zc") return "zc:quantum_us=5000";
  if (key == "hotcalls") return "hotcalls:workers=2";
  return key;
}

std::vector<std::string> all_backend_specs() {
  std::vector<std::string> specs;
  for (const auto& key : BackendRegistry::instance().keys()) {
    specs.push_back(equivalence_spec(key));
  }
  return specs;
}

TEST(BackendEquivalenceCoverage, EveryRegistryKeyIsChecked) {
  // INSTANTIATE below iterates all_backend_specs(); this guards that the
  // list really spans the registry (incl. hotcalls).
  const auto keys = BackendRegistry::instance().keys();
  EXPECT_GE(keys.size(), 4u);
  for (const char* key : {"no_sl", "intel", "hotcalls", "zc"}) {
    EXPECT_TRUE(std::find(keys.begin(), keys.end(), key) != keys.end())
        << key;
  }
}

class BackendEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, tlibc::MemcpyKind>> {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 200;
    enclave_ = Enclave::create(cfg);
    libc_ = std::make_unique<EnclaveLibc>(*enclave_);
    base_ = testutil::unique_tmp_path("zc_equiv");
    install_backend_spec(*enclave_, std::get<0>(GetParam()));
  }
  void TearDown() override {
    enclave_->set_backend(nullptr);  // join worker threads promptly
    for (const auto& suffix : {".db", ".plain", ".cipher", ".out"}) {
      std::filesystem::remove(base_.string() + suffix);
    }
  }

  std::unique_ptr<Enclave> enclave_;
  std::unique_ptr<EnclaveLibc> libc_;
  std::filesystem::path base_;
};

TEST_P(BackendEquivalenceTest, KissdbContentsIdentical) {
  tlibc::ScopedMemcpy guard(std::get<1>(GetParam()));
  app::KissDB db;
  app::KissDB::Options opts;
  opts.hash_table_size = 64;
  ASSERT_EQ(db.open(*libc_, base_.string() + ".db", opts), app::KissDB::kOk);
  for (std::uint64_t i = 0; i < 500; ++i) {
    std::uint64_t key = i;
    std::uint64_t value = i * 2654435761u;
    ASSERT_EQ(db.put(&key, &value), app::KissDB::kOk);
  }
  for (std::uint64_t i = 0; i < 500; ++i) {
    std::uint64_t key = i;
    std::uint64_t out = 0;
    ASSERT_EQ(db.get(&key, &out), app::KissDB::kOk) << i;
    EXPECT_EQ(out, i * 2654435761u);
  }
}

TEST_P(BackendEquivalenceTest, FileCryptoRoundTripIdentical) {
  tlibc::ScopedMemcpy guard(std::get<1>(GetParam()));
  const std::string plain = base_.string() + ".plain";
  const std::string cipher = base_.string() + ".cipher";
  const std::string out = base_.string() + ".out";
  std::vector<std::uint8_t> data(60'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  {
    std::ofstream f(plain, std::ios::binary);
    f.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  }
  std::uint8_t key[32] = {0x42};
  std::uint8_t iv[16] = {0x24};
  ASSERT_TRUE(app::encrypt_file(*libc_, plain, cipher, key, iv, 4096).ok);
  ASSERT_TRUE(app::decrypt_file(*libc_, cipher, out, key, iv, 4096).ok);
  std::ifstream f(out, std::ios::binary);
  std::vector<std::uint8_t> back{std::istreambuf_iterator<char>(f),
                                 std::istreambuf_iterator<char>()};
  EXPECT_EQ(back, data);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAndMemcpys, BackendEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(all_backend_specs()),
                       ::testing::Values(tlibc::MemcpyKind::kIntel,
                                         tlibc::MemcpyKind::kZc)),
    [](const auto& info) {
      // Spec strings carry ':=;,' — flatten to a valid gtest name.
      std::string name = std::get<0>(info.param) + "_" +
                         tlibc::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace zc
