// End-to-end behavioural checks: the paper's headline *mechanisms* must be
// visible in the simulator (transition avoidance, immediate fallback,
// adaptation).  Thresholds are deliberately loose — these are smoke-level
// shape checks, not the figure reproductions (see bench/ for those).
#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <thread>

#include "../test_util.hpp"

#include "common/cycles.hpp"
#include "core/zc_backend.hpp"
#include "intel_sl/intel_backend.hpp"
#include "workload/harness.hpp"
#include "workload/synthetic.hpp"

namespace zc {
namespace {

using namespace std::chrono_literals;
using workload::SyntheticRunConfig;

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig sim;
    sim.tes_cycles = 13'500;  // paper's measured transition cost
    sim.logical_cpus = 8;
    enclave_ = Enclave::create(sim);
    ids_ = workload::register_synthetic_ocalls(enclave_->ocalls());
  }

  std::unique_ptr<Enclave> enclave_;
  workload::SyntheticOcalls ids_;
};

TEST_F(EndToEndTest, ZcEliminatesTransitionsForHotCalls) {
  ZcConfig cfg;
  cfg.scheduler_enabled = false;
  cfg.with_initial_workers(2);
  enclave_->set_backend(std::make_unique<ZcBackend>(*enclave_, cfg));

  SyntheticRunConfig run;
  run.total_calls = 4'000;
  run.enclave_threads = 1;
  const auto result = run_synthetic(*enclave_, ids_, run);
  // Single caller + idle workers: everything switchless, zero ocall
  // transitions (the thread's single ecall is counted separately).
  EXPECT_EQ(result.switchless, 4'000u);
  EXPECT_EQ(enclave_->transitions().eexit_count(), 0u);
}

TEST_F(EndToEndTest, ZcOutperformsNoSlForShortCalls) {
  ZC_SKIP_IF_FEWER_CORES_THAN(4);
  // Take-away 2: switchless wins when calls are short relative to Tes.
  SyntheticRunConfig run;
  run.total_calls = 20'000;
  run.enclave_threads = 2;
  run.g_pauses = 0;

  const auto t_no_sl = run_synthetic(*enclave_, ids_, run).seconds;

  ZcConfig cfg;
  cfg.scheduler_enabled = false;
  cfg.with_initial_workers(2);
  enclave_->set_backend(std::make_unique<ZcBackend>(*enclave_, cfg));
  const auto t_zc = run_synthetic(*enclave_, ids_, run).seconds;

  // The paper reports 1.22x for kissdb; require any clear win here.
  EXPECT_LT(t_zc, t_no_sl * 0.95)
      << "no_sl=" << t_no_sl << "s zc=" << t_zc << "s";
}

TEST_F(EndToEndTest, ZcFallbackLatencyIsBoundedUnlikeIntelRbf) {
  // §III-C: an Intel caller can busy-wait rbf * pause before falling back.
  // ZC must fall back in O(Tes) instead. Compare the latency of calls
  // issued while every worker is busy.  Wall clock + min-of-N filters out
  // scheduler preemption and cross-core TSC noise.
  const double tes_ns = cycles_to_ns(enclave_->transitions().tes_cycles());

  auto measure_blocked_call = [&](auto make_backend) -> std::uint64_t {
    enclave_->set_backend(make_backend());
    // Warm up this thread's scratch arena before measuring.
    {
      workload::FArgs warm;
      enclave_->ocall(ids_.f_a, warm);
    }
    std::atomic<bool> started{false};
    std::jthread occupier([&] {
      workload::GArgs args;
      args.pauses = 30'000'000;  // worker busy for the whole measurement
      started.store(true);
      enclave_->ocall(ids_.g_a, args);
    });
    while (!started.load()) std::this_thread::yield();
    std::this_thread::sleep_for(20ms);
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (int i = 0; i < 10; ++i) {
      workload::FArgs args;
      const std::uint64_t t0 = wall_ns();
      enclave_->ocall(ids_.f_a, args);
      best = std::min(best, wall_ns() - t0);
    }
    return best;
  };

  const std::uint64_t zc_ns = measure_blocked_call([&] {
    ZcConfig cfg;
    cfg.scheduler_enabled = false;
    cfg.with_initial_workers(1);
    return std::make_unique<ZcBackend>(*enclave_, cfg);
  });

  const std::uint64_t intel_ns = measure_blocked_call([&] {
    intel::IntelSlConfig cfg;
    cfg.num_workers = 1;
    cfg.retries_before_fallback = 20'000;  // SDK default
    cfg.switchless_fns = {ids_.f_a, ids_.g_a};
    return std::make_unique<intel::IntelSwitchlessBackend>(*enclave_, cfg);
  });

  // ZC: immediate fallback ≈ Tes + marshalling. Intel: rbf pauses first.
  EXPECT_LT(static_cast<double>(zc_ns), 20.0 * tes_ns)
      << "zc fallback not immediate";
  EXPECT_GT(intel_ns, zc_ns * 5) << "intel=" << intel_ns << " zc=" << zc_ns;
}

TEST_F(EndToEndTest, SchedulerAdaptsAcrossLoadSwings) {
  ZcConfig cfg;
  cfg.quantum = 5ms;
  auto backend = std::make_unique<ZcBackend>(*enclave_, cfg);
  auto* raw = backend.get();
  enclave_->set_backend(std::move(backend));

  // Load burst: scheduler should keep workers.
  std::atomic<bool> stop{false};
  std::vector<std::jthread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      workload::FArgs args;
      while (!stop.load(std::memory_order_relaxed)) {
        enclave_->ocall(ids_.f_a, args);
      }
    });
  }
  unsigned busy_decision = 0;
  const auto deadline1 = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline1) {
    busy_decision = raw->scheduler()->last_decision();
    if (raw->scheduler()->config_phases() >= 5 && busy_decision > 0) break;
    std::this_thread::sleep_for(5ms);
  }
  stop.store(true);
  callers.clear();
  EXPECT_GT(busy_decision, 0u);

  // Idle: scheduler should shed all workers.
  const auto deadline2 = std::chrono::steady_clock::now() + 5s;
  unsigned idle_decision = 99;
  while (std::chrono::steady_clock::now() < deadline2) {
    idle_decision = raw->scheduler()->last_decision();
    if (idle_decision == 0) break;
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(idle_decision, 0u);
  EXPECT_EQ(raw->active_workers(), 0u);
}

TEST_F(EndToEndTest, MisconfiguredIntelWastesTransitions) {
  // C2 (only g switchless) leaves the frequent f calls paying transitions.
  intel::IntelSlConfig cfg;
  cfg.num_workers = 2;
  const auto set = workload::intel_switchless_set(
      workload::SynthConfig::kC2, ids_);
  cfg.switchless_fns.insert(set.begin(), set.end());
  enclave_->set_backend(
      std::make_unique<intel::IntelSwitchlessBackend>(*enclave_, cfg));

  SyntheticRunConfig run;
  run.total_calls = 4'000;
  run.enclave_threads = 2;
  run.config = workload::SynthConfig::kC2;
  const auto result = run_synthetic(*enclave_, ids_, run);
  // All 3,000 f calls pay a transition under C2.
  EXPECT_GE(enclave_->transitions().eexit_count(), result.f_calls);
}

TEST_F(EndToEndTest, CpuMeterSeesZcWorkerSpin) {
  CpuUsageMeter meter(8);
  ZcConfig cfg;
  cfg.scheduler_enabled = false;
  cfg.with_initial_workers(2);
  cfg.meter = &meter;
  enclave_->set_backend(std::make_unique<ZcBackend>(*enclave_, cfg));
  meter.begin_window();
  std::this_thread::sleep_for(100ms);
  // Two spinning workers on an 8-wide machine: ~25% expected.
  const double pct = meter.window_usage_percent();
  EXPECT_GT(pct, 10.0);
  EXPECT_LT(pct, 60.0);
  // The meter is local: detach the backend's threads from it before it
  // goes out of scope.
  enclave_->set_backend(nullptr);
}

}  // namespace
}  // namespace zc
