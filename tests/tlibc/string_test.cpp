#include "tlibc/string.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

namespace zc::tlibc {
namespace {

TEST(TString, StrlenMatchesLibc) {
  for (const char* s : {"", "a", "hello", "with\ttabs", "longer string ..."}) {
    EXPECT_EQ(tstrlen(s), std::strlen(s)) << s;
  }
}

TEST(TString, StrnlenStopsAtMax) {
  EXPECT_EQ(tstrnlen("hello", 10), 5u);
  EXPECT_EQ(tstrnlen("hello", 3), 3u);
  EXPECT_EQ(tstrnlen("hello", 0), 0u);
  EXPECT_EQ(tstrnlen("", 8), 0u);
}

TEST(TString, StrnlenNeverReadsPastMax) {
  // Unterminated buffer: only valid because max caps the scan.
  char buf[4] = {'a', 'b', 'c', 'd'};
  EXPECT_EQ(tstrnlen(buf, 4), 4u);
}

TEST(TString, StrcmpOrdering) {
  EXPECT_EQ(tstrcmp("abc", "abc"), 0);
  EXPECT_LT(tstrcmp("abc", "abd"), 0);
  EXPECT_GT(tstrcmp("abd", "abc"), 0);
  EXPECT_LT(tstrcmp("ab", "abc"), 0);   // prefix sorts first
  EXPECT_GT(tstrcmp("abc", "ab"), 0);
  EXPECT_EQ(tstrcmp("", ""), 0);
}

TEST(TString, StrcmpIsUnsigned) {
  // 0x80 must compare greater than 0x7f (libc compares unsigned chars).
  const char hi[] = {static_cast<char>(0x80), 0};
  const char lo[] = {0x7f, 0};
  EXPECT_GT(tstrcmp(hi, lo), 0);
}

TEST(TString, StrncmpHonoursLimit) {
  EXPECT_EQ(tstrncmp("abcX", "abcY", 3), 0);
  EXPECT_LT(tstrncmp("abcX", "abcY", 4), 0);
  EXPECT_EQ(tstrncmp("abc", "abcdef", 3), 0);
  EXPECT_EQ(tstrncmp("a", "b", 0), 0);
  EXPECT_EQ(tstrncmp("same\0extra", "same\0other", 10), 0);  // stops at NUL
}

TEST(TString, StrncpyPadsAndTruncatesLikeLibc) {
  char ours[8];
  char theirs[8];
  for (const char* src : {"", "ab", "exactly7", "this is too long"}) {
    std::memset(ours, 0x55, sizeof(ours));
    std::memset(theirs, 0x55, sizeof(theirs));
    tstrncpy(ours, src, sizeof(ours));
    std::strncpy(theirs, src, sizeof(theirs));
    EXPECT_EQ(std::memcmp(ours, theirs, sizeof(ours)), 0) << src;
  }
}

TEST(TString, MemchrFindsFirstOccurrence) {
  const char data[] = "abcabc";
  EXPECT_EQ(tmemchr(data, 'b', 6), data + 1);
  EXPECT_EQ(tmemchr(data, 'z', 6), nullptr);
  EXPECT_EQ(tmemchr(data, 'c', 2), nullptr);  // out of range
  EXPECT_EQ(tmemchr(data, 'a', 0), nullptr);
}

TEST(TString, MemchrMatchesLibcOnRandomBuffers) {
  std::mt19937 rng(5);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<unsigned char> buf(257);
    for (auto& b : buf) b = static_cast<unsigned char>(rng() % 8);
    const int needle = static_cast<int>(rng() % 8);
    EXPECT_EQ(tmemchr(buf.data(), needle, buf.size()),
              std::memchr(buf.data(), needle, buf.size()));
  }
}

TEST(TString, MemmoveHandlesOverlapBothWays) {
  std::vector<unsigned char> ours(64);
  std::vector<unsigned char> theirs(64);
  for (std::size_t i = 0; i < 64; ++i) {
    ours[i] = theirs[i] = static_cast<unsigned char>(i);
  }
  tmemmove(ours.data() + 10, ours.data(), 40);
  std::memmove(theirs.data() + 10, theirs.data(), 40);
  EXPECT_EQ(ours, theirs);

  tmemmove(ours.data(), ours.data() + 5, 40);
  std::memmove(theirs.data(), theirs.data() + 5, 40);
  EXPECT_EQ(ours, theirs);
}

}  // namespace
}  // namespace zc::tlibc
