#include "tlibc/printf.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

namespace zc::tlibc {
namespace {

// Formats with both tsnprintf and the host snprintf and compares.
#define EXPECT_SAME_FORMAT(fmt, ...)                                     \
  do {                                                                   \
    char ours[128];                                                      \
    char theirs[128];                                                    \
    const int n_ours = tsnprintf(ours, sizeof(ours), fmt, __VA_ARGS__);  \
    const int n_theirs =                                                 \
        std::snprintf(theirs, sizeof(theirs), fmt, __VA_ARGS__);        \
    EXPECT_STREQ(ours, theirs);                                          \
    EXPECT_EQ(n_ours, n_theirs);                                         \
  } while (0)

TEST(Tsnprintf, PlainTextPassesThrough) {
  char buf[32];
  EXPECT_EQ(tsnprintf(buf, sizeof(buf), "hello enclave"), 13);
  EXPECT_STREQ(buf, "hello enclave");
}

TEST(Tsnprintf, SignedDecimal) {
  EXPECT_SAME_FORMAT("%d", 0);
  EXPECT_SAME_FORMAT("%d", 42);
  EXPECT_SAME_FORMAT("%d", -42);
  EXPECT_SAME_FORMAT("%i", 2147483647);
  EXPECT_SAME_FORMAT("%d", -2147483647 - 1);  // INT_MIN
}

TEST(Tsnprintf, UnsignedAndHex) {
  EXPECT_SAME_FORMAT("%u", 0u);
  EXPECT_SAME_FORMAT("%u", 4294967295u);
  EXPECT_SAME_FORMAT("%x", 0xdeadbeefu);
  EXPECT_SAME_FORMAT("%X", 0xdeadbeefu);
  EXPECT_SAME_FORMAT("%x", 0u);
}

TEST(Tsnprintf, LengthModifiers) {
  EXPECT_SAME_FORMAT("%ld", 1234567890123L);
  EXPECT_SAME_FORMAT("%lld", -9007199254740993LL);
  EXPECT_SAME_FORMAT("%lu", 18446744073709551615UL);
  EXPECT_SAME_FORMAT("%llx", 0xfedcba9876543210ULL);
}

TEST(Tsnprintf, WidthAndFlags) {
  EXPECT_SAME_FORMAT("[%5d]", 42);
  EXPECT_SAME_FORMAT("[%-5d]", 42);
  EXPECT_SAME_FORMAT("[%05d]", 42);
  EXPECT_SAME_FORMAT("[%05d]", -42);
  EXPECT_SAME_FORMAT("[%8x]", 0xabcu);
  EXPECT_SAME_FORMAT("[%08X]", 0xabcu);
  EXPECT_SAME_FORMAT("[%3d]", 123456);  // width smaller than the value
}

TEST(Tsnprintf, StringsAndChars) {
  EXPECT_SAME_FORMAT("%s", "kissdb");
  EXPECT_SAME_FORMAT("[%10s]", "pad");
  EXPECT_SAME_FORMAT("[%-10s]", "pad");
  EXPECT_SAME_FORMAT("%c%c%c", 'z', 'c', '!');
  EXPECT_SAME_FORMAT("%s=%d", "workers", 4);
}

TEST(Tsnprintf, NullStringPrintsPlaceholder) {
  char buf[16];
  tsnprintf(buf, sizeof(buf), "%s", static_cast<const char*>(nullptr));
  EXPECT_STREQ(buf, "(null)");
}

TEST(Tsnprintf, PercentLiteral) {
  EXPECT_SAME_FORMAT("100%%%d", 5);
}

TEST(Tsnprintf, PointerHasHexPrefix) {
  char buf[32];
  int probe = 0;
  tsnprintf(buf, sizeof(buf), "%p", static_cast<void*>(&probe));
  EXPECT_EQ(std::strncmp(buf, "0x", 2), 0);
  EXPECT_GT(std::strlen(buf), 2u);
}

TEST(Tsnprintf, UnknownConversionEmittedVerbatim) {
  char buf[16];
  tsnprintf(buf, sizeof(buf), "a%qb", 0);
  EXPECT_STREQ(buf, "a%qb");
}

TEST(Tsnprintf, TruncationKeepsNulAndReportsFullLength) {
  char buf[6];
  const int n = tsnprintf(buf, sizeof(buf), "%s", "longer-than-buffer");
  EXPECT_EQ(n, 18);           // untruncated length, like C snprintf
  EXPECT_STREQ(buf, "longe");  // 5 chars + NUL
}

TEST(Tsnprintf, ZeroSizeWritesNothing) {
  char guard = 'G';
  const int n = tsnprintf(&guard, 0, "%d", 12345);
  EXPECT_EQ(n, 5);
  EXPECT_EQ(guard, 'G');  // untouched
}

TEST(Tsnprintf, ComposedMessage) {
  char buf[128];
  tsnprintf(buf, sizeof(buf), "worker %u: served %lld calls (%s) [%08x]", 3u,
            123456789LL, "switchless", 0xcafeu);
  EXPECT_STREQ(buf, "worker 3: served 123456789 calls (switchless) [0000cafe]");
}

}  // namespace
}  // namespace zc::tlibc
