#include "tlibc/memcpy.hpp"

#include <gtest/gtest.h>

#include "common/cycles.hpp"

#include <cstring>
#include <random>
#include <tuple>
#include <vector>

namespace zc::tlibc {
namespace {

using CopyFn = void* (*)(void*, const void*, std::size_t) noexcept;

// Parameterized over (implementation, size, src offset, dst offset): both
// implementations must match libc memcpy for every alignment combination —
// in particular the unaligned cases where Intel's algorithm degrades to a
// byte copy (the paper's Fig. 7 pathology) must still be *correct*.
class MemcpyCorrectness
    : public ::testing::TestWithParam<
          std::tuple<int, std::size_t, std::size_t, std::size_t>> {
 protected:
  static CopyFn fn() {
    switch (std::get<0>(GetParam())) {
      case 0: return &intel_memcpy;
      case 1: return &zc_memcpy;
      default: return &zc_memcpy_nt;
    }
  }
};

TEST_P(MemcpyCorrectness, MatchesReference) {
  const auto [impl, size, src_off, dst_off] = GetParam();
  (void)impl;
  std::vector<std::uint8_t> src_buf(size + src_off + 64, 0);
  std::vector<std::uint8_t> dst_buf(size + dst_off + 64, 0xEE);
  std::vector<std::uint8_t> expect_buf(dst_buf);

  std::mt19937 rng(static_cast<unsigned>(size * 31 + src_off * 7 + dst_off));
  for (auto& b : src_buf) b = static_cast<std::uint8_t>(rng());

  void* ret = fn()(dst_buf.data() + dst_off, src_buf.data() + src_off, size);
  std::memcpy(expect_buf.data() + dst_off, src_buf.data() + src_off, size);

  EXPECT_EQ(ret, dst_buf.data() + dst_off);
  EXPECT_EQ(dst_buf, expect_buf);
}

INSTANTIATE_TEST_SUITE_P(
    AlignmentSweep, MemcpyCorrectness,
    ::testing::Combine(::testing::Values(0, 1, 2),  // intel, zc, zc_nt
                       ::testing::Values(0u, 1u, 7u, 8u, 15u, 64u, 511u,
                                         4096u, 32'768u),
                       ::testing::Values(0u, 1u, 3u, 7u),   // src offset
                       ::testing::Values(0u, 1u, 4u, 7u)),  // dst offset
    [](const auto& info) {
      const int impl = std::get<0>(info.param);
      return std::string(impl == 0 ? "intel" : impl == 1 ? "zc" : "zc_nt") +
             "_n" + std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param)) + "_d" +
             std::to_string(std::get<3>(info.param));
    });

class MemcpyOverlap : public ::testing::TestWithParam<int> {
 protected:
  static CopyFn fn() {
    switch (GetParam()) {
      case 0: return &intel_memcpy;
      case 1: return &zc_memcpy;
      default: return &zc_memcpy_nt;  // overlap must fall back safely
    }
  }
};

TEST_P(MemcpyOverlap, ForwardOverlapCopiesBackwards) {
  // dst > src, ranges overlap: must behave like memmove.
  std::vector<std::uint8_t> buf(64);
  std::vector<std::uint8_t> expect(64);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i);
    expect[i] = static_cast<std::uint8_t>(i);
  }
  fn()(buf.data() + 8, buf.data(), 32);
  std::memmove(expect.data() + 8, expect.data(), 32);
  EXPECT_EQ(buf, expect);
}

TEST_P(MemcpyOverlap, BackwardOverlap) {
  // dst < src, overlapping: forward copy must be safe.
  std::vector<std::uint8_t> buf(64);
  std::vector<std::uint8_t> expect(64);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 3);
    expect[i] = static_cast<std::uint8_t>(i * 3);
  }
  fn()(buf.data(), buf.data() + 8, 32);
  std::memmove(expect.data(), expect.data() + 8, 32);
  EXPECT_EQ(buf, expect);
}

TEST_P(MemcpyOverlap, SelfCopyIsNoop) {
  std::vector<std::uint8_t> buf{1, 2, 3, 4, 5};
  fn()(buf.data(), buf.data(), buf.size());
  EXPECT_EQ(buf, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
}

TEST_P(MemcpyOverlap, ZeroLengthTouchesNothing) {
  std::vector<std::uint8_t> buf{7, 7, 7};
  fn()(buf.data(), buf.data() + 1, 0);
  EXPECT_EQ(buf, (std::vector<std::uint8_t>{7, 7, 7}));
}

INSTANTIATE_TEST_SUITE_P(AllImpls, MemcpyOverlap, ::testing::Values(0, 1, 2),
                         [](const auto& info) {
                           return info.param == 0   ? std::string("intel")
                                  : info.param == 1 ? std::string("zc")
                                                    : std::string("zc_nt");
                         });

TEST(Tmemset, FillsExactRange) {
  std::vector<std::uint8_t> buf(32, 0xAA);
  tmemset(buf.data() + 8, 0x11, 16);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(buf[i], 0xAA);
  for (std::size_t i = 8; i < 24; ++i) EXPECT_EQ(buf[i], 0x11);
  for (std::size_t i = 24; i < 32; ++i) EXPECT_EQ(buf[i], 0xAA);
}

TEST(Tmemset, TruncatesValueToByte) {
  std::uint8_t b = 0;
  tmemset(&b, 0x1FF, 1);
  EXPECT_EQ(b, 0xFF);
}

TEST(Tmemcmp, OrdersLikeLibc) {
  const char a[] = "abcdef";
  const char b[] = "abcdeg";
  EXPECT_EQ(tmemcmp(a, a, 6), 0);
  EXPECT_LT(tmemcmp(a, b, 6), 0);
  EXPECT_GT(tmemcmp(b, a, 6), 0);
  EXPECT_EQ(tmemcmp(a, b, 5), 0);  // differ only at index 5
  EXPECT_EQ(tmemcmp(a, b, 0), 0);
}

TEST(ActiveMemcpy, DefaultIsIntel) {
  // Tests may run in any order; normalise first.
  set_active_memcpy(MemcpyKind::kIntel);
  EXPECT_EQ(active_memcpy_kind(), MemcpyKind::kIntel);
}

TEST(ActiveMemcpy, SwitchTakesEffect) {
  set_active_memcpy(MemcpyKind::kZc);
  EXPECT_EQ(active_memcpy_kind(), MemcpyKind::kZc);
  std::uint8_t src[16] = {1, 2, 3};
  std::uint8_t dst[16] = {};
  active_memcpy(dst, src, sizeof(src));
  EXPECT_EQ(std::memcmp(dst, src, sizeof(src)), 0);
  set_active_memcpy(MemcpyKind::kIntel);
}

TEST(ActiveMemcpy, ScopedGuardRestores) {
  set_active_memcpy(MemcpyKind::kIntel);
  {
    ScopedMemcpy guard(MemcpyKind::kZc);
    EXPECT_EQ(active_memcpy_kind(), MemcpyKind::kZc);
  }
  EXPECT_EQ(active_memcpy_kind(), MemcpyKind::kIntel);
}

TEST(ActiveMemcpy, Names) {
  EXPECT_STREQ(to_string(MemcpyKind::kIntel), "intel");
  EXPECT_STREQ(to_string(MemcpyKind::kZc), "zc");
  EXPECT_STREQ(to_string(MemcpyKind::kZcNt), "zc_nt");
}

TEST(ActiveMemcpy, ZcNtKindCopiesThroughStreamingPath) {
  ScopedMemcpy guard(MemcpyKind::kZcNt);
  EXPECT_EQ(active_memcpy_kind(), MemcpyKind::kZcNt);
  std::vector<std::uint8_t> src(200'000);
  std::vector<std::uint8_t> dst(200'000, 0);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(i * 13 + 1);
  }
  active_memcpy(dst.data() + 1, src.data() + 3, src.size() - 3);
  EXPECT_EQ(std::memcmp(dst.data() + 1, src.data() + 3, src.size() - 3), 0);
}

// --- Streaming auto-threshold ------------------------------------------------
//
// Mutating tests restore the compile-time default (256 KB) so the default
// assertion holds regardless of execution order.

TEST(NtThreshold, DefaultIs256K) {
  EXPECT_EQ(memcpy_nt_threshold(), 256u * 1024u);
}

TEST(NtThreshold, SetterIsObservable) {
  set_memcpy_nt_threshold(4096);
  EXPECT_EQ(memcpy_nt_threshold(), 4096u);
  set_memcpy_nt_threshold(0);
  EXPECT_EQ(memcpy_nt_threshold(), 0u);
  set_memcpy_nt_threshold(256 * 1024);
}

TEST(NtThreshold, ZcRoutesLargeCopiesCorrectlyAboveThreshold) {
  // kZc copies at/above the threshold take the non-temporal path; the
  // observable contract is byte-exactness either side of the boundary.
  ScopedMemcpy guard(MemcpyKind::kZc);
  set_memcpy_nt_threshold(1024);
  std::vector<std::uint8_t> src(8192);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(i ^ (i >> 5));
  }
  for (const std::size_t n : {512u, 1023u, 1024u, 1025u, 8000u}) {
    std::vector<std::uint8_t> dst(n + 8, 0xAB);
    active_memcpy(dst.data() + 5, src.data() + 2, n);  // unaligned both ends
    EXPECT_EQ(std::memcmp(dst.data() + 5, src.data() + 2, n), 0) << n;
    EXPECT_EQ(dst[n + 5], 0xAB) << n;  // no overrun
  }
  set_memcpy_nt_threshold(256 * 1024);
}

TEST(NtThreshold, ZeroDisablesAutoRouting) {
  ScopedMemcpy guard(MemcpyKind::kZc);
  set_memcpy_nt_threshold(0);
  std::vector<std::uint8_t> src(512 * 1024, 0x3C);
  std::vector<std::uint8_t> dst(512 * 1024, 0);
  active_memcpy(dst.data(), src.data(), src.size());
  EXPECT_EQ(dst, src);
  set_memcpy_nt_threshold(256 * 1024);
}

TEST(MemcpyPerformance, IntelUnalignedIsSlowerThanAligned) {
  // The root cause of Fig. 7: Intel's byte-by-byte path. Compare cycles for
  // a large copy, aligned vs misaligned-by-one. Ratios are machine
  // dependent; require only a conservative 1.5x gap.
  constexpr std::size_t kN = 1 << 20;
  std::vector<std::uint8_t> src(kN + 1);
  std::vector<std::uint8_t> dst(kN + 1);

  auto time_copy = [&](std::size_t src_off) {
    const std::uint64_t t0 = zc::rdtsc();
    for (int i = 0; i < 8; ++i) {
      intel_memcpy(dst.data(), src.data() + src_off, kN);
    }
    return zc::rdtsc() - t0;
  };
  const std::uint64_t aligned = time_copy(0);
  const std::uint64_t unaligned = time_copy(1);
  EXPECT_GT(static_cast<double>(unaligned),
            1.5 * static_cast<double>(aligned));
}

TEST(MemcpyPerformance, ZcCloseGapBetweenAlignments) {
  // rep movsb should be nearly alignment-insensitive (within 3x).
  constexpr std::size_t kN = 1 << 20;
  std::vector<std::uint8_t> src(kN + 1);
  std::vector<std::uint8_t> dst(kN + 1);

  auto time_copy = [&](std::size_t src_off) {
    const std::uint64_t t0 = zc::rdtsc();
    for (int i = 0; i < 8; ++i) {
      zc_memcpy(dst.data(), src.data() + src_off, kN);
    }
    return zc::rdtsc() - t0;
  };
  const std::uint64_t aligned = time_copy(0);
  const std::uint64_t unaligned = time_copy(1);
  EXPECT_LT(static_cast<double>(unaligned),
            3.0 * static_cast<double>(aligned));
}

}  // namespace
}  // namespace zc::tlibc
