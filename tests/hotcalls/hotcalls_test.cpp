#include "hotcalls/hotcalls.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "../test_util.hpp"
#include "common/cpu_meter.hpp"
#include "common/cycles.hpp"

namespace zc::hotcalls {
namespace {

struct IncArgs {
  int x = 0;
};

class HotCallsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 5'000;
    enclave_ = Enclave::create(cfg);
    inc_id_ = enclave_->ocalls().register_fn("inc", [](MarshalledCall& call) {
      static_cast<IncArgs*>(call.args)->x += 1;
    });
  }

  HotCallsBackend* install(HotCallsConfig cfg = {}) {
    auto backend = std::make_unique<HotCallsBackend>(*enclave_, cfg);
    auto* raw = backend.get();
    enclave_->set_backend(std::move(backend));
    return raw;
  }

  std::unique_ptr<Enclave> enclave_;
  std::uint32_t inc_id_ = 0;
};

TEST_F(HotCallsTest, EveryCallIsSwitchless) {
  auto* backend = install();
  IncArgs args;
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(enclave_->ocall(inc_id_, args), CallPath::kSwitchless);
  }
  EXPECT_EQ(args.x, 100);
  EXPECT_EQ(backend->stats().switchless_calls.load(), 100u);
  EXPECT_EQ(enclave_->transitions().eexit_count(), 0u);  // never transitions
}

TEST_F(HotCallsTest, ZeroWorkersDegradesToRegular) {
  HotCallsConfig cfg;
  cfg.num_workers = 0;
  install(cfg);
  IncArgs args;
  EXPECT_EQ(enclave_->ocall(inc_id_, args), CallPath::kRegular);
  EXPECT_EQ(args.x, 1);
}

TEST_F(HotCallsTest, OversizedFrameFallsBack) {
  HotCallsConfig cfg;
  cfg.slot_frame_bytes = 64;
  install(cfg);
  IncArgs args;
  std::vector<char> big(4096, 'x');
  EXPECT_EQ(enclave_->ocall_in(inc_id_, args, big.data(), big.size()),
            CallPath::kFallback);
  EXPECT_EQ(args.x, 1);
}

TEST_F(HotCallsTest, ContendedCallersAllComplete) {
  HotCallsConfig cfg;
  cfg.num_workers = 2;
  auto* backend = install(cfg);
  std::atomic<int> executed{0};
  const auto count_id = enclave_->ocalls().register_fn(
      "count", [&executed](MarshalledCall&) { executed.fetch_add(1); });

  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        IncArgs args;
        for (int i = 0; i < kPerThread; ++i) enclave_->ocall(count_id, args);
      });
    }
  }
  EXPECT_EQ(executed.load(), kThreads * kPerThread);
  // HotCalls never falls back on contention: everything was switchless.
  EXPECT_EQ(backend->stats().switchless_calls.load(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(backend->stats().fallback_calls.load(), 0u);
}

TEST_F(HotCallsTest, RespondersNeverSleep) {
  CpuUsageMeter meter(8);
  HotCallsConfig cfg;
  cfg.num_workers = 2;
  cfg.meter = &meter;
  install(cfg);
  meter.begin_window();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Two always-hot responders on an 8-wide machine: ~25% CPU while idle —
  // the CPU-waste profile ZC's scheduler exists to avoid.
  EXPECT_GT(meter.window_usage_percent(), 10.0);
  enclave_->set_backend(nullptr);  // detach before the meter dies
}

TEST_F(HotCallsTest, PayloadRoundTrip) {
  install();
  const auto upper_id = enclave_->ocalls().register_fn(
      "upper", [](MarshalledCall& call) {
        auto* p = static_cast<char*>(call.payload);
        for (std::size_t i = 0; i < call.payload_size; ++i) {
          p[i] = static_cast<char>(p[i] - 'a' + 'A');
        }
      });
  IncArgs args;
  std::string in = "hotcalls";
  std::string out(in.size(), '\0');
  CallDesc desc;
  desc.fn_id = upper_id;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.in_payload = in.data();
  desc.in_size = in.size();
  desc.out_payload = out.data();
  desc.out_size = out.size();
  EXPECT_EQ(enclave_->ocall(desc), CallPath::kSwitchless);
  EXPECT_EQ(out, "HOTCALLS");
}

TEST_F(HotCallsTest, StopIsIdempotentAndRoutesRegular) {
  auto* backend = install();
  backend->stop();
  backend->stop();
  IncArgs args;
  EXPECT_EQ(enclave_->ocall(inc_id_, args), CallPath::kRegular);
  EXPECT_EQ(backend->active_workers(), 0u);
}

TEST_F(HotCallsTest, FasterThanRegularForShortCalls) {
  ZC_SKIP_IF_FEWER_CORES_THAN(4);
  IncArgs args;
  // Best-case single-call latency: the minimum over many calls is robust
  // to scheduler noise from parallel test binaries.
  auto best_call_ns = [&]() {
    enclave_->ocall(inc_id_, args);  // warm
    std::uint64_t best = ~0ULL;
    for (int i = 0; i < 500; ++i) {
      const std::uint64_t t0 = wall_ns();
      enclave_->ocall(inc_id_, args);
      best = std::min(best, wall_ns() - t0);
    }
    return best;
  };
  const std::uint64_t regular = best_call_ns();
  install();
  const std::uint64_t hot = best_call_ns();
  // A hot call skips the 5,000-cycle transition; its floor must be lower.
  EXPECT_LT(hot, regular) << "hot=" << hot << "ns regular=" << regular << "ns";
}

}  // namespace
}  // namespace zc::hotcalls
