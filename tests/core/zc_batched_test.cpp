// Batched ZC backend: slot life cycle, flush triggers (batch fill, timer
// and the feedback-adapted window), pause/resume draining, fallback paths
// and the ecall direction.
#include "core/zc_batched.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "core/backend_registry.hpp"

namespace zc {
namespace {

using namespace std::chrono_literals;

struct EchoArgs {
  std::uint64_t in = 0;
  std::uint64_t out = 0;
};

class ZcBatchedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 200;
    cfg.logical_cpus = 8;
    enclave_ = Enclave::create(cfg);
    echo_id_ =
        enclave_->ocalls().register_fn("echo", [](MarshalledCall& call) {
          auto* a = static_cast<EchoArgs*>(call.args);
          a->out = a->in + 1;
        });
  }

  ZcBatchedBackend* install(ZcBatchedConfig cfg) {
    auto backend = make_zc_batched_backend(*enclave_, cfg);
    auto* raw = backend.get();
    enclave_->set_backend(std::move(backend));
    return raw;
  }

  std::unique_ptr<Enclave> enclave_;
  std::uint32_t echo_id_ = 0;
};

TEST_F(ZcBatchedTest, LoneCallIsFlushedByTheTimer) {
  ZcBatchedConfig cfg;
  cfg.workers = 1;
  cfg.batch = 8;  // never fills with a single sequential caller
  cfg.flush = 100us;
  auto* backend = install(cfg);

  EchoArgs args;
  args.in = 41;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 42u);
  EXPECT_GE(backend->flushes(), 1u);
  EXPECT_EQ(backend->stats().switchless_calls.load(), 1u);
}

TEST_F(ZcBatchedTest, EveryCallIsServedAndCounted) {
  ZcBatchedConfig cfg;
  cfg.workers = 2;
  cfg.batch = 4;
  cfg.flush = 50us;
  auto* backend = install(cfg);

  const std::uint64_t calls = 500;
  for (std::uint64_t i = 0; i < calls; ++i) {
    EchoArgs args;
    args.in = i;
    enclave_->ocall(echo_id_, args);
    ASSERT_EQ(args.out, i + 1);
  }
  EXPECT_EQ(backend->stats().total_calls(), calls);
  EXPECT_GE(backend->flushes(), 1u);
  // Flushes can never exceed served calls (each flush serves >= 1).
  EXPECT_LE(backend->flushes(), backend->stats().switchless_calls.load());
}

TEST_F(ZcBatchedTest, ConcurrentCallersShareBatches) {
  ZcBatchedConfig cfg;
  cfg.workers = 1;
  cfg.batch = 4;
  cfg.flush = 2000us;  // long timer: concurrent arrivals batch together
  auto* backend = install(cfg);

  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> callers;
    for (int t = 0; t < 4; ++t) {
      callers.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < 200; ++i) {
          EchoArgs args;
          args.in = static_cast<std::uint64_t>(t) * 10'000 + i;
          enclave_->ocall(echo_id_, args);
          if (args.out != args.in + 1) failures.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
  const std::uint64_t switchless = backend->stats().switchless_calls.load();
  const std::uint64_t fallbacks = backend->stats().fallback_calls.load();
  EXPECT_EQ(switchless + fallbacks, 800u);
}

TEST_F(ZcBatchedTest, ConcurrentPublishesShareAFlush) {
  // Amortisation evidence: four callers publish in lockstep into one
  // 4-slot buffer with a long flush timer, so the worker's sweep must
  // serve multiple calls per flush — flushes < switchless calls.
  ZcBatchedConfig cfg;
  cfg.workers = 1;
  cfg.batch = 4;
  cfg.flush = std::chrono::microseconds(50'000);
  auto* backend = install(cfg);

  std::barrier sync(4);
  {
    std::vector<std::jthread> callers;
    for (int t = 0; t < 4; ++t) {
      callers.emplace_back([&, t] {
        sync.arrive_and_wait();
        EchoArgs args;
        args.in = static_cast<std::uint64_t>(t);
        enclave_->ocall(echo_id_, args);
        EXPECT_EQ(args.out, args.in + 1);
      });
    }
  }
  const std::uint64_t switchless = backend->stats().switchless_calls.load();
  if (switchless < 2) {
    GTEST_SKIP() << "transient slot contention left <2 switchless calls; "
                    "amortisation not observable this run";
  }
  EXPECT_LT(backend->flushes(), switchless);
}

TEST_F(ZcBatchedTest, NoFreeSlotFallsBackImmediately) {
  ZcBatchedConfig cfg;
  cfg.workers = 1;
  cfg.batch = 1;  // one slot total: concurrent callers must fall back
  auto* backend = install(cfg);

  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> callers;
    for (int t = 0; t < 4; ++t) {
      callers.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < 200; ++i) {
          EchoArgs args;
          args.in = static_cast<std::uint64_t>(t) * 10'000 + i;
          enclave_->ocall(echo_id_, args);
          if (args.out != args.in + 1) failures.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(backend->stats().total_calls(), 800u);
}

TEST_F(ZcBatchedTest, OversizedRequestFallsBack) {
  ZcBatchedConfig cfg;
  cfg.workers = 1;
  cfg.batch = 2;
  cfg.slot_pool_bytes = 256;
  auto* backend = install(cfg);

  std::vector<std::uint8_t> payload(4'096, 0xAB);
  EchoArgs args;
  args.in = 1;
  CallDesc desc;
  desc.fn_id = echo_id_;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.in_payload = payload.data();
  desc.in_size = payload.size();
  EXPECT_EQ(enclave_->ocall(desc), CallPath::kFallback);
  EXPECT_EQ(args.out, 2u);
  EXPECT_EQ(backend->stats().fallback_calls.load(), 1u);
}

TEST_F(ZcBatchedTest, PauseDrainsAndResumeRestoresService) {
  ZcBatchedConfig cfg;
  cfg.workers = 2;
  cfg.batch = 2;
  cfg.flush = 50us;
  auto* backend = install(cfg);

  EchoArgs args;
  args.in = 1;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);

  backend->set_active_workers(0);
  EXPECT_EQ(backend->active_workers(), 0u);
  args.in = 2;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kFallback);
  EXPECT_EQ(args.out, 3u);

  // Both workers eventually park (the sleep counter is written as they do).
  while (backend->stats().worker_sleeps.load() < 2) {
    std::this_thread::sleep_for(100us);
  }

  backend->set_active_workers(2);
  args.in = 3;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 4u);
  EXPECT_GE(backend->stats().worker_sleeps.load(), 1u);
  EXPECT_GE(backend->stats().worker_wakeups.load(), 1u);
}

TEST_F(ZcBatchedTest, PauseResumeChurnLosesNoCalls) {
  ZcBatchedConfig cfg;
  cfg.workers = 2;
  cfg.batch = 2;
  cfg.flush = 50us;
  auto* backend = install(cfg);

  std::atomic<bool> stop{false};
  std::jthread churner([&] {
    unsigned m = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      backend->set_active_workers(m % 3);  // 0, 1, 2, 0, ...
      ++m;
      std::this_thread::sleep_for(200us);
    }
  });

  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> issued{0};
  {
    std::vector<std::jthread> callers;
    for (int t = 0; t < 2; ++t) {
      callers.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < 400; ++i) {
          EchoArgs args;
          args.in = static_cast<std::uint64_t>(t) * 10'000 + i;
          enclave_->ocall(echo_id_, args);
          issued.fetch_add(1);
          if (args.out != args.in + 1) failures.fetch_add(1);
        }
      });
    }
  }
  stop.store(true);
  churner.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(backend->stats().total_calls(), issued.load());
}

TEST_F(ZcBatchedTest, SpinZeroMeansYieldImmediately) {
  // spin_us=0 disables the caller's spin budget: every poll that finds the
  // result not ready donates the quantum (observable via caller_yields).
  ZcBatchedConfig cfg;
  cfg.workers = 1;
  cfg.batch = 8;
  cfg.flush = 100us;
  cfg.spin = 0us;
  auto* backend = install(cfg);

  for (std::uint64_t i = 0; i < 100; ++i) {
    EchoArgs args;
    args.in = i;
    enclave_->ocall(echo_id_, args);
    ASSERT_EQ(args.out, i + 1);
  }
  // The flush timer makes every lone call wait ~100us: with a zero spin
  // budget those waits can only be spent yielding.
  EXPECT_GT(backend->stats().caller_yields.load(), 0u);
}

TEST_F(ZcBatchedTest, LargeSpinBudgetNeverYields) {
  ZcBatchedConfig cfg;
  cfg.workers = 1;
  cfg.batch = 8;
  cfg.flush = 100us;
  cfg.spin = std::chrono::microseconds(10'000'000);  // outlasts any call
  auto* backend = install(cfg);

  for (std::uint64_t i = 0; i < 20; ++i) {
    EchoArgs args;
    args.in = i;
    enclave_->ocall(echo_id_, args);
    ASSERT_EQ(args.out, i + 1);
  }
  EXPECT_EQ(backend->stats().caller_yields.load(), 0u);
}

TEST_F(ZcBatchedTest, SpinOptionReachesTheBackendFromTheSpecPlane) {
  install_backend_spec(*enclave_,
                       "zc_batched:workers=1;batch=2;flush_us=50;spin_us=0");
  auto* backend = dynamic_cast<ZcBatchedBackend*>(&enclave_->backend());
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->config().spin.count(), 0);
  EchoArgs args;
  args.in = 1;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 2u);
}

TEST_F(ZcBatchedTest, FeedbackFlushServesLoneCallsPromptly) {
  // flush=feedback replaces the fixed timer, but a lone partial batch must
  // still flush within the clamped window — a stranded batch would hang
  // this sequential loop.
  ZcBatchedConfig cfg;
  cfg.workers = 1;
  cfg.batch = 8;  // never fills with a single sequential caller
  cfg.flush = 100us;
  cfg.flush_policy = BatchFlushPolicy::kFeedback;
  cfg.quantum = std::chrono::microseconds(2'000);
  auto* backend = install(cfg);

  for (std::uint64_t i = 0; i < 200; ++i) {
    EchoArgs args;
    args.in = i;
    EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
    ASSERT_EQ(args.out, i + 1);
  }
  EXPECT_GE(backend->flushes(), 1u);
  EXPECT_EQ(backend->stats().switchless_calls.load(), 200u);
}

TEST_F(ZcBatchedTest, FeedbackControllerWidensTheWindowUnderSparseLoad) {
  // A lone sequential caller flushes 1-call batches (fill 1 of 8, below
  // half): each quantum the controller must double the window until it
  // hits the 8x clamp.  The window never exceeds the clamp, so no caller
  // is ever stranded longer than 8x the base window.
  ZcBatchedConfig cfg;
  cfg.workers = 1;
  cfg.batch = 8;
  cfg.flush = 100us;
  cfg.flush_policy = BatchFlushPolicy::kFeedback;
  cfg.quantum = std::chrono::microseconds(2'000);
  auto* backend = install(cfg);

  const std::uint64_t base_ns = 100'000;
  EXPECT_EQ(backend->flush_window_ns(), base_ns);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (backend->flush_window_ns() < base_ns * 8 &&
         std::chrono::steady_clock::now() < deadline) {
    EchoArgs args;
    args.in = 1;
    enclave_->ocall(echo_id_, args);
    ASSERT_EQ(args.out, 2u);
  }
  EXPECT_EQ(backend->flush_window_ns(), base_ns * 8);
  EXPECT_GT(backend->flush_decisions(), 0u);
}

TEST_F(ZcBatchedTest, FeedbackFlushNeverStrandsABatchAcrossPauseResume) {
  // Pause/resume churn while the adaptive window is live: a pausing
  // worker drains its published slots regardless of the window, so no
  // call may be lost, duplicated or stranded mid-batch.
  ZcBatchedConfig cfg;
  cfg.workers = 2;
  cfg.batch = 4;
  cfg.flush = 50us;
  cfg.flush_policy = BatchFlushPolicy::kFeedback;
  cfg.quantum = std::chrono::microseconds(1'000);
  auto* backend = install(cfg);

  std::atomic<bool> stop{false};
  std::jthread churner([&] {
    unsigned m = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      backend->set_active_workers(m % 3);  // 0, 1, 2, 0, ...
      ++m;
      std::this_thread::sleep_for(200us);
    }
  });

  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> issued{0};
  {
    std::vector<std::jthread> callers;
    for (int t = 0; t < 2; ++t) {
      callers.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < 400; ++i) {
          EchoArgs args;
          args.in = static_cast<std::uint64_t>(t) * 10'000 + i;
          enclave_->ocall(echo_id_, args);
          issued.fetch_add(1);
          if (args.out != args.in + 1) failures.fetch_add(1);
        }
      });
    }
  }
  stop.store(true);
  churner.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(backend->stats().total_calls(), issued.load());
}

TEST_F(ZcBatchedTest, FeedbackPolicyReachesTheBackendFromTheSpecPlane) {
  install_backend_spec(
      *enclave_, "zc_batched:workers=1;batch=4;flush=feedback;quantum_us=2000");
  auto* backend = dynamic_cast<ZcBatchedBackend*>(&enclave_->backend());
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->config().flush_policy, BatchFlushPolicy::kFeedback);
  EXPECT_STREQ(to_string(backend->config().flush_policy), "feedback");
  EXPECT_EQ(backend->config().quantum.count(), 2'000);
  EchoArgs args;
  args.in = 1;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 2u);
}

TEST_F(ZcBatchedTest, EcallDirectionServesTrustedFunctions) {
  const auto square_id =
      enclave_->ecalls().register_fn("square", [](MarshalledCall& call) {
        auto* a = static_cast<EchoArgs*>(call.args);
        a->out = a->in * a->in;
      });
  ZcBatchedConfig cfg;
  cfg.workers = 1;
  cfg.batch = 2;
  cfg.flush = 100us;
  cfg.direction = CallDirection::kEcall;
  enclave_->set_ecall_backend(make_zc_batched_backend(*enclave_, cfg));
  EXPECT_STREQ(enclave_->ecall_backend().name(), "zc_batched-ecall");

  EchoArgs args;
  args.in = 6;
  EXPECT_EQ(enclave_->ecall_fn(square_id, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 36u);
  EXPECT_EQ(enclave_->transitions().ecall_count(), 0u);
}

// --- MPSC submit ring & coalesced wakes ------------------------------------

// Every submit-plane combination the spec grammar allows: the table scan
// (the historical claim path), the lock-free MPSC ring, and each with
// coalesced flush wakes under a sleeping wait policy.
struct SubmitPlane {
  const char* tag;
  bool ring;
  bool coalesce;
  GateWaitPolicy wait;
};

class ZcBatchedPlaneTest : public ZcBatchedTest,
                           public ::testing::WithParamInterface<SubmitPlane> {
 protected:
  ZcBatchedConfig plane_config() {
    ZcBatchedConfig cfg;
    cfg.ring = GetParam().ring;
    cfg.coalesce = GetParam().coalesce;
    cfg.wait = GetParam().wait;
    return cfg;
  }
};

TEST_P(ZcBatchedPlaneTest, ConcurrentCallersAreAllServed) {
  ZcBatchedConfig cfg = plane_config();
  cfg.workers = 2;
  cfg.batch = 4;
  cfg.flush = 50us;
  auto* backend = install(cfg);

  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> callers;
    for (int t = 0; t < 4; ++t) {
      callers.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < 200; ++i) {
          EchoArgs args;
          args.in = static_cast<std::uint64_t>(t) * 10'000 + i;
          enclave_->ocall(echo_id_, args);
          if (args.out != args.in + 1) failures.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(backend->stats().total_calls(), 800u);
  if (GetParam().coalesce) {
    // Sleeping callers released by flush broadcasts, not per-slot wakes.
    EXPECT_GE(backend->stats().wake_batches.load(), 1u);
  }
}

TEST_P(ZcBatchedPlaneTest, PauseResumeChurnLosesNoCalls) {
  ZcBatchedConfig cfg = plane_config();
  cfg.workers = 2;
  cfg.batch = 2;
  cfg.flush = 50us;
  auto* backend = install(cfg);

  std::atomic<bool> stop{false};
  std::jthread churner([&] {
    unsigned m = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      backend->set_active_workers(m % 3);
      ++m;
      std::this_thread::sleep_for(200us);
    }
  });

  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> issued{0};
  {
    std::vector<std::jthread> callers;
    for (int t = 0; t < 2; ++t) {
      callers.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < 400; ++i) {
          EchoArgs args;
          args.in = static_cast<std::uint64_t>(t) * 10'000 + i;
          enclave_->ocall(echo_id_, args);
          issued.fetch_add(1);
          if (args.out != args.in + 1) failures.fetch_add(1);
        }
      });
    }
  }
  stop.store(true);
  churner.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(backend->stats().total_calls(), issued.load());
}

INSTANTIATE_TEST_SUITE_P(
    SubmitPlanes, ZcBatchedPlaneTest,
    ::testing::Values(
        SubmitPlane{"table_yield", false, false, GateWaitPolicy::kYield},
        SubmitPlane{"ring_yield", true, false, GateWaitPolicy::kYield},
        SubmitPlane{"table_futex", false, false, GateWaitPolicy::kFutex},
        SubmitPlane{"ring_futex", true, false, GateWaitPolicy::kFutex},
        SubmitPlane{"table_coalesce", false, true, GateWaitPolicy::kFutex},
        SubmitPlane{"ring_coalesce", true, true, GateWaitPolicy::kFutex},
        SubmitPlane{"ring_coalesce_condvar", true, true,
                    GateWaitPolicy::kCondvar}),
    [](const auto& info) { return std::string(info.param.tag); });

TEST_F(ZcBatchedTest, RingOptionsReachTheBackendFromTheSpecPlane) {
  install_backend_spec(*enclave_,
                       "zc_batched:workers=1;batch=4;flush_us=50;ring=on;"
                       "coalesce=on;wait=futex;spin_us=0");
  auto* backend = dynamic_cast<ZcBatchedBackend*>(&enclave_->backend());
  ASSERT_NE(backend, nullptr);
  EXPECT_TRUE(backend->config().ring);
  EXPECT_TRUE(backend->config().coalesce);
  EchoArgs args;
  args.in = 1;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 2u);
}

TEST_F(ZcBatchedTest, TableClaimRotationSurvivesThe32BitBoundary) {
  // Regression: the rotating worker-claim counter used to be a 32-bit
  // fetch_add; planting it just below 2^32 forces the wrap mid-run.
  ZcBatchedConfig cfg;
  cfg.workers = 2;
  cfg.batch = 2;
  cfg.flush = 50us;
  auto* backend = install(cfg);
  backend->set_claim_rotation_for_test((std::uint64_t{1} << 32) - 50);

  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> callers;
    for (int t = 0; t < 2; ++t) {
      callers.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < 200; ++i) {
          EchoArgs args;
          args.in = static_cast<std::uint64_t>(t) * 10'000 + i;
          enclave_->ocall(echo_id_, args);
          if (args.out != args.in + 1) failures.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(backend->stats().total_calls(), 400u);
}

TEST_F(ZcBatchedTest, RedundantSetActiveWorkersWakesNobody) {
  // Regression: set_active_workers re-issued kPause to already-paused
  // workers on every call, turning each scheduler probe into a spurious
  // wake for every parked worker.  Re-asserting the current command must
  // leave worker_wakeups untouched.
  ZcBatchedConfig cfg;
  cfg.workers = 2;
  cfg.batch = 2;
  cfg.flush = 50us;
  auto* backend = install(cfg);

  backend->set_active_workers(0);
  while (backend->stats().worker_sleeps.load() < 2) {
    std::this_thread::sleep_for(100us);
  }
  // Parked workers may still absorb the wakes of their own pause
  // transition; let the count settle first.
  std::this_thread::sleep_for(2ms);
  const std::uint64_t baseline = backend->stats().worker_wakeups.load();
  for (int i = 0; i < 1'000; ++i) backend->set_active_workers(0);
  std::this_thread::sleep_for(2ms);
  EXPECT_EQ(backend->stats().worker_wakeups.load(), baseline);

  // An actual transition still wakes and restores service.
  backend->set_active_workers(2);
  EchoArgs args;
  args.in = 5;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 6u);
  EXPECT_GT(backend->stats().worker_wakeups.load(), baseline);
}

TEST_F(ZcBatchedTest, StoppedBackendExecutesRegularly) {
  ZcBatchedConfig cfg;
  cfg.workers = 1;
  auto backend = make_zc_batched_backend(*enclave_, cfg);
  // Never started: invoke takes the regular path.
  EchoArgs args;
  args.in = 10;
  EXPECT_EQ(backend->invoke([&] {
    CallDesc desc;
    desc.fn_id = echo_id_;
    desc.args = &args;
    desc.args_size = sizeof(args);
    return desc;
  }()), CallPath::kRegular);
  EXPECT_EQ(args.out, 11u);
}

}  // namespace
}  // namespace zc
