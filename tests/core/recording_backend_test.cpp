// Functional tests for the `record:` trace tap: live capture over a real
// inner backend, stop()-time dumps, and the full record -> replay loop.
#include "core/recording_backend.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "core/backend_registry.hpp"
#include "sgx/enclave.hpp"
#include "workload/replay.hpp"

namespace zc {
namespace {

struct EchoArgs {
  std::uint64_t value = 0;
  std::uint64_t echoed = 0;
};

class RecordingBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 200;
    enclave_ = Enclave::create(cfg);
    echo_id_ = enclave_->ocalls().register_fn("rec_echo", [](MarshalledCall& c) {
      auto* a = static_cast<EchoArgs*>(c.args);
      a->echoed = a->value + 1;
    });
    blob_id_ = enclave_->ocalls().register_fn("rec_blob", [](MarshalledCall& c) {
      auto* p = static_cast<std::uint8_t*>(c.payload);
      for (std::size_t i = 0; i < c.payload_size; ++i) p[i] ^= 0xA5;
    });
  }

  void TearDown() override {
    // Restore the regular backend first so the recording tap stops (and
    // dumps) before the enclave goes away.
    enclave_->set_backend(nullptr);
  }

  std::unique_ptr<Enclave> enclave_;
  std::uint32_t echo_id_ = 0;
  std::uint32_t blob_id_ = 0;
};

TEST_F(RecordingBackendTest, CapturesNamesSizesAndDenseCallerIds) {
  install_backend_spec(*enclave_, "record:inner=(zc:workers=1)");
  auto* tap = dynamic_cast<RecordingBackend*>(&enclave_->backend());
  ASSERT_NE(tap, nullptr);
  EXPECT_EQ(std::string(tap->name()), "record[zc]");

  constexpr int kCallsPerThread = 40;
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      std::vector<std::uint8_t> blob(128, 7);
      for (int i = 0; i < kCallsPerThread; ++i) {
        EchoArgs args;
        args.value = static_cast<std::uint64_t>(i);
        enclave_->ocall(echo_id_, args);
        ASSERT_EQ(args.echoed, args.value + 1);
        CallDesc desc;
        desc.fn_id = blob_id_;
        desc.args = &args;
        desc.args_size = sizeof(args);
        desc.in_payload = blob.data();
        desc.in_size = blob.size();
        desc.out_payload = blob.data();
        desc.out_size = 64;
        enclave_->ocall(desc);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const workload::Trace trace = tap->trace_snapshot();
  ASSERT_EQ(trace.records.size(), 3u * 2u * kCallsPerThread);
  EXPECT_EQ(trace.caller_count(), 3u);
  ASSERT_EQ(trace.names.size(), 2u);
  std::uint64_t blob_calls = 0;
  for (const workload::TraceRecord& r : trace.records) {
    EXPECT_LT(r.caller, 3u);
    EXPECT_EQ(r.direction, CallDirection::kOcall);
    if (trace.names[r.name_idx] == "rec_blob") {
      ++blob_calls;
      EXPECT_EQ(r.in_size, 128u);
      EXPECT_EQ(r.out_size, 64u);
    } else {
      EXPECT_EQ(trace.names[r.name_idx], "rec_echo");
      EXPECT_EQ(r.in_size, 0u);
    }
    EXPECT_EQ(r.args_size, sizeof(EchoArgs));
  }
  EXPECT_EQ(blob_calls, 3u * kCallsPerThread);
  // The tap mirrors the inner plane's accounting.
  EXPECT_EQ(tap->stats().total_calls(), trace.records.size());
  EXPECT_EQ(tap->stats_snapshot().total_calls(), trace.records.size());
}

TEST_F(RecordingBackendTest, DumpsFileAndJsonlOnStop) {
  const std::string bin = ::testing::TempDir() + "record_dump.trace";
  const std::string jsonl = ::testing::TempDir() + "record_dump.jsonl";
  install_backend_spec(
      *enclave_, "record:file=" + bin + ";jsonl=" + jsonl + ";inner=(no_sl)");
  EchoArgs args;
  args.value = 5;
  enclave_->ocall(echo_id_, args);
  enclave_->set_backend(nullptr);  // stops the tap -> dump fires

  const workload::Trace loaded = workload::Trace::load(bin);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.names[loaded.records[0].name_idx], "rec_echo");
  EXPECT_EQ(loaded.seed, 0u);  // live recordings carry no synthesizer seed

  std::ifstream in(jsonl);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::getline(in, line);
  EXPECT_NE(line.find("\"trace\":\"header\""), std::string::npos);
  std::remove(bin.c_str());
  std::remove(jsonl.c_str());
}

TEST_F(RecordingBackendTest, RecordsTheEcallPlane) {
  const std::uint32_t fn =
      enclave_->ecalls().register_fn("rec_trusted", [](MarshalledCall& c) {
        static_cast<EchoArgs*>(c.args)->echoed = 99;
      });
  install_backend_spec(*enclave_, "record:direction=ecall;inner=(zc:workers=1)");
  auto* tap = dynamic_cast<RecordingBackend*>(&enclave_->ecall_backend());
  ASSERT_NE(tap, nullptr);
  EchoArgs args;
  enclave_->ecall_fn(fn, args);
  EXPECT_EQ(args.echoed, 99u);
  const workload::Trace trace = tap->trace_snapshot();
  ASSERT_EQ(trace.records.size(), 1u);
  EXPECT_EQ(trace.names[trace.records[0].name_idx], "rec_trusted");
  EXPECT_EQ(trace.records[0].direction, CallDirection::kEcall);
  enclave_->set_ecall_backend(nullptr);
}

TEST_F(RecordingBackendTest, RecordedTraceReplaysDeterministically) {
  // The full loop the CI lane runs: record live traffic, then replay the
  // capture against two specs and expect identical digests.
  install_backend_spec(*enclave_, "record:inner=(zc:workers=1)");
  auto* tap = dynamic_cast<RecordingBackend*>(&enclave_->backend());
  ASSERT_NE(tap, nullptr);
  std::vector<std::uint8_t> blob(96, 3);
  for (int i = 0; i < 50; ++i) {
    EchoArgs args;
    args.value = static_cast<std::uint64_t>(i);
    CallDesc desc;
    desc.fn_id = blob_id_;
    desc.args = &args;
    desc.args_size = sizeof(args);
    desc.in_payload = blob.data();
    desc.in_size = blob.size();
    enclave_->ocall(desc);
    enclave_->ocall(echo_id_, args);
  }
  const workload::Trace trace = tap->trace_snapshot();
  ASSERT_EQ(trace.records.size(), 100u);

  workload::ReplayConfig cfg;
  cfg.work_scale = 0;
  cfg.sim.tes_cycles = 200;
  cfg.backend_spec = "no_sl";
  const workload::ReplayResult a = workload::replay_trace(trace, cfg);
  cfg.backend_spec = "zc:workers=2";
  const workload::ReplayResult b = workload::replay_trace(trace, cfg);
  EXPECT_EQ(a.result_digest, b.result_digest);
  EXPECT_EQ(a.calls, 100u);
  EXPECT_EQ(b.calls, 100u);
}

}  // namespace
}  // namespace zc
