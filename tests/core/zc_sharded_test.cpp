// Sharded switchless router: shard routing policies (incl. load-aware
// least_loaded and affinity_load), bounded cross-shard stealing (scan and
// max_load victim selection), per-shard isolation, fallback behaviour,
// generic inner-backend composition (nested `inner=` specs) and the
// trusted-worker (ecall) direction.
#include "core/zc_sharded.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "core/backend_registry.hpp"
#include "core/zc_async.hpp"
#include "core/zc_batched.hpp"

namespace zc {
namespace {

struct EchoArgs {
  std::uint64_t in = 0;
  std::uint64_t out = 0;
};

class ZcShardedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 200;
    cfg.logical_cpus = 8;
    enclave_ = Enclave::create(cfg);
    echo_id_ =
        enclave_->ocalls().register_fn("echo", [](MarshalledCall& call) {
          auto* a = static_cast<EchoArgs*>(call.args);
          a->out = a->in + 1;
        });
    gate_id_ = enclave_->ocalls().register_fn("gate", [this](MarshalledCall&) {
      gate_entered_.fetch_add(1, std::memory_order_acq_rel);
      while (!gate_open_.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  }

  // Installs a scheduler-off sharded backend and returns the raw pointer.
  ZcShardedBackend* install(unsigned shards, ShardPolicy policy,
                            unsigned workers_per_shard,
                            ShardSteal steal = ShardSteal::kOff,
                            std::uint64_t load_threshold = 0) {
    ZcShardedConfig cfg;
    cfg.shards = shards;
    cfg.policy = policy;
    cfg.steal = steal;
    cfg.load_threshold = load_threshold;
    cfg.shard.scheduler_enabled = false;
    cfg.shard.with_initial_workers(workers_per_shard);
    auto backend = make_zc_sharded_backend(*enclave_, cfg);
    auto* raw = backend.get();
    enclave_->set_backend(std::move(backend));
    return raw;
  }

  // Occupies one worker of `shard` with a gate call issued directly at
  // that shard (bypassing routing), and returns once the worker is inside
  // the handler — i.e. once the shard's in_flight gauge reflects the
  // stall.  Stackable (each stall pins one more worker); release_stall()
  // lets every gate call finish.
  std::jthread stall_shard(ZcShardedBackend& backend, unsigned shard) {
    const unsigned target = ++stalls_issued_;
    std::jthread holder([this, &backend, shard] {
      EchoArgs args;
      CallDesc desc;
      desc.fn_id = gate_id_;
      desc.args = &args;
      desc.args_size = sizeof(args);
      backend.shard(shard).invoke(desc);
    });
    while (gate_entered_.load(std::memory_order_acquire) < target) {
      std::this_thread::yield();
    }
    return holder;
  }

  void release_stall() { gate_open_.store(true, std::memory_order_release); }

  std::unique_ptr<Enclave> enclave_;
  std::uint32_t echo_id_ = 0;
  std::uint32_t gate_id_ = 0;
  std::atomic<unsigned> gate_entered_{0};
  std::atomic<bool> gate_open_{false};
  unsigned stalls_issued_ = 0;
};

TEST_F(ZcShardedTest, RoundRobinSpreadsCallsAcrossShards) {
  auto* backend = install(2, ShardPolicy::kRoundRobin, 1);
  for (std::uint64_t i = 0; i < 200; ++i) {
    EchoArgs args;
    args.in = i;
    EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
    EXPECT_EQ(args.out, i + 1);
  }
  const auto served = backend->per_shard_served();
  ASSERT_EQ(served.size(), 2u);
  // A single caller alternates deterministically: both shards serve half.
  EXPECT_EQ(served[0], 100u);
  EXPECT_EQ(served[1], 100u);
  EXPECT_EQ(backend->stats().switchless_calls.load(), 200u);
}

TEST_F(ZcShardedTest, CallerAffinityPinsAThreadToOneShard) {
  auto* backend = install(4, ShardPolicy::kCallerAffinity, 1);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EchoArgs args;
    args.in = i;
    EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  }
  const auto served = backend->per_shard_served();
  // Every call from this thread hashed to the same shard.
  std::uint64_t total = 0;
  std::uint64_t max_shard = 0;
  for (const std::uint64_t s : served) {
    total += s;
    max_shard = std::max(max_shard, s);
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(max_shard, 100u);
}

TEST_F(ZcShardedTest, AggregatesActiveWorkersAcrossShards) {
  auto* backend = install(3, ShardPolicy::kRoundRobin, 2);
  EXPECT_EQ(backend->shard_count(), 3u);
  EXPECT_EQ(backend->active_workers(), 6u);
  backend->set_active_workers(1);
  EXPECT_EQ(backend->active_workers(), 3u);
}

TEST_F(ZcShardedTest, ZeroActiveWorkersFallsBackEverywhere) {
  auto* backend = install(2, ShardPolicy::kRoundRobin, 0);
  EchoArgs args;
  args.in = 7;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kFallback);
  EXPECT_EQ(args.out, 8u);  // fallback still executes the call
  EXPECT_EQ(backend->stats().fallback_calls.load(), 1u);
}

TEST_F(ZcShardedTest, ResultsSurviveConcurrentCallers) {
  install(2, ShardPolicy::kRoundRobin, 2);
  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> callers;
    for (int t = 0; t < 4; ++t) {
      callers.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < 300; ++i) {
          EchoArgs args;
          args.in = static_cast<std::uint64_t>(t) * 1'000 + i;
          enclave_->ocall(echo_id_, args);
          if (args.out != args.in + 1) failures.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ZcShardedTest, LeastLoadedIdleTiesBreakToTheLowestShard) {
  auto* backend = install(3, ShardPolicy::kLeastLoaded, 1);
  for (std::uint64_t i = 0; i < 50; ++i) {
    EchoArgs args;
    args.in = i;
    EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
    EXPECT_EQ(args.out, i + 1);
  }
  // A sequential caller never observes load anywhere: every call routes
  // to shard 0 deterministically.
  const auto served = backend->per_shard_served();
  EXPECT_EQ(served[0], 50u);
  EXPECT_EQ(served[1] + served[2], 0u);
}

TEST_F(ZcShardedTest, LeastLoadedRoutesAwayFromAStalledShard) {
  auto* backend = install(2, ShardPolicy::kLeastLoaded, 1);
  // Occupy shard 0's only worker with a long call: its in_flight gauge
  // stays at 1 while the gate is closed.
  std::jthread holder = stall_shard(*backend, 0);
  EXPECT_EQ(backend->shard(0).stats().in_flight.load(), 1u);

  // Every routed call must now pick shard 1 — no fallbacks, no calls
  // queued behind the stalled worker (a count-blind policy would send
  // half of them to shard 0 and pay a fallback transition for each).
  for (std::uint64_t i = 0; i < 100; ++i) {
    EchoArgs args;
    args.in = i;
    EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
    EXPECT_EQ(args.out, i + 1);
  }
  const auto served = backend->per_shard_served();
  EXPECT_EQ(served[1], 100u);
  EXPECT_EQ(backend->stats().fallback_calls.load(), 0u);

  release_stall();
  holder.join();
  EXPECT_EQ(backend->shard(0).stats().in_flight.load(), 0u);
}

TEST_F(ZcShardedTest, AffinityLoadStaysHomeWithinTheThreshold) {
  auto* backend = install(2, ShardPolicy::kAffinityLoad, 1,
                          ShardSteal::kOff, /*load_threshold=*/5);
  // Discover this thread's home shard with one call.
  EchoArgs args;
  args.in = 1;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  const auto first = backend->per_shard_served();
  const unsigned home = first[0] == 1 ? 0 : 1;

  // Stall the home shard: in_flight = 1 <= threshold 5, so affinity holds
  // and the call (finding the only worker busy) must *fall back*, not
  // reroute — the threshold really gates the escape hatch.
  std::jthread holder = stall_shard(*backend, home);
  args.in = 2;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kFallback);
  EXPECT_EQ(args.out, 3u);
  const auto served = backend->per_shard_served();
  EXPECT_EQ(served[1 - home], 0u);
  release_stall();
  holder.join();
}

TEST_F(ZcShardedTest, AffinityLoadRoutesAwayBeyondTheThreshold) {
  auto* backend = install(2, ShardPolicy::kAffinityLoad, 1,
                          ShardSteal::kOff, /*load_threshold=*/0);
  EchoArgs args;
  args.in = 1;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  const auto first = backend->per_shard_served();
  const unsigned home = first[0] == 1 ? 0 : 1;

  // threshold=0: any in-flight call on the home shard trips the escape
  // hatch, so every call routes to the (least-loaded) other shard and
  // stays switchless — warm-pool affinity with a load guarantee.
  std::jthread holder = stall_shard(*backend, home);
  for (std::uint64_t i = 0; i < 50; ++i) {
    args.in = i;
    EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
    EXPECT_EQ(args.out, i + 1);
  }
  const auto served = backend->per_shard_served();
  EXPECT_EQ(served[1 - home], 50u);
  EXPECT_EQ(backend->stats().fallback_calls.load(), 0u);
  release_stall();
  holder.join();
}

TEST_F(ZcShardedTest, StealServesFromANonPrimaryShard) {
  // Round-robin tickets start at shard 0, whose only worker is stalled:
  // with steal=on the first call must be served by shard 1's idle worker
  // instead of falling back.
  auto* backend =
      install(2, ShardPolicy::kRoundRobin, 1, ShardSteal::kScan);
  std::jthread holder = stall_shard(*backend, 0);

  EchoArgs args;
  args.in = 7;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 8u);
  EXPECT_EQ(backend->stats().steals.load(), 1u);
  EXPECT_EQ(backend->stats().fallback_calls.load(), 0u);

  release_stall();
  holder.join();
}

TEST_F(ZcShardedTest, MaxLoadStealPicksTheBusiestVictim) {
  // Shard 0 (the round-robin primary) is fully stalled; shard 2 is busy
  // (in_flight 1 of 2 workers) and shard 1 idle.  Scan order would probe
  // shard 1 first; steal=max_load must probe the *busiest* other shard
  // first — the one whose workers are provably awake — so the call is
  // served by shard 2.
  auto* backend =
      install(3, ShardPolicy::kRoundRobin, 2, ShardSteal::kMaxLoad);
  std::jthread s0a = stall_shard(*backend, 0);
  std::jthread s0b = stall_shard(*backend, 0);
  std::jthread s2 = stall_shard(*backend, 2);
  EXPECT_EQ(backend->shard(0).stats().in_flight.load(), 2u);
  EXPECT_EQ(backend->shard(2).stats().in_flight.load(), 1u);

  const auto before = backend->per_shard_served();
  EchoArgs args;
  args.in = 7;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 8u);
  EXPECT_EQ(backend->stats().steals.load(), 1u);
  const auto after = backend->per_shard_served();
  EXPECT_EQ(after[2] - before[2], 1u);  // busiest victim served the steal
  EXPECT_EQ(after[1] - before[1], 0u);  // the idle shard was not probed first

  release_stall();
  s0a.join();
  s0b.join();
  s2.join();
}

TEST_F(ZcShardedTest, StealOffPreservesStrictIsolation) {
  // Identical situation without steal=on: the call routed to the stalled
  // shard falls back immediately (§IV-C per shard) and never probes the
  // idle neighbour.
  auto* backend =
      install(2, ShardPolicy::kRoundRobin, 1, ShardSteal::kOff);
  std::jthread holder = stall_shard(*backend, 0);

  EchoArgs args;
  args.in = 7;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kFallback);
  EXPECT_EQ(args.out, 8u);  // the fallback still executed the call
  EXPECT_EQ(backend->stats().steals.load(), 0u);
  const auto served = backend->per_shard_served();
  EXPECT_EQ(served[1], 0u);

  release_stall();
  holder.join();
}

TEST_F(ZcShardedTest, StealFallsBackWhenNoShardIsIdle) {
  auto* backend =
      install(1, ShardPolicy::kRoundRobin, 1, ShardSteal::kScan);
  std::jthread holder = stall_shard(*backend, 0);
  EchoArgs args;
  args.in = 1;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kFallback);
  EXPECT_EQ(args.out, 2u);
  EXPECT_EQ(backend->stats().steals.load(), 0u);
  release_stall();
  holder.join();
}

TEST_F(ZcShardedTest, MaxLoadStealOnOneShardNeverProbesThePrimaryTwice) {
  // A one-shard router has no victims: the refused call must fall back
  // without re-probing the primary as its own "busiest victim" (and
  // without ever reporting a cross-shard steal).
  auto* backend =
      install(1, ShardPolicy::kRoundRobin, 1, ShardSteal::kMaxLoad);
  std::jthread holder = stall_shard(*backend, 0);
  for (int i = 0; i < 20; ++i) {
    EchoArgs args;
    args.in = 1;
    EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kFallback);
    EXPECT_EQ(args.out, 2u);
  }
  EXPECT_EQ(backend->stats().steals.load(), 0u);
  release_stall();
  holder.join();
}

TEST_F(ZcShardedTest, StealPreservesResultsUnderChurn) {
  // Work stealing racing worker pause/resume churn: every call must still
  // return its own result exactly once (the equivalence property), with
  // path counters agreeing with the issue count.
  auto* backend =
      install(2, ShardPolicy::kLeastLoaded, 2, ShardSteal::kScan);
  std::atomic<bool> stop{false};
  std::jthread churner([&] {
    unsigned m = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      backend->set_active_workers(m % 3);  // 0, 1, 2 workers per shard
      ++m;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> issued{0};
  {
    std::vector<std::jthread> callers;
    for (int t = 0; t < 4; ++t) {
      callers.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < 300; ++i) {
          EchoArgs args;
          args.in = static_cast<std::uint64_t>(t) * 10'000 + i;
          enclave_->ocall(echo_id_, args);
          issued.fetch_add(1);
          if (args.out != args.in + 1) failures.fetch_add(1);
        }
      });
    }
  }
  stop.store(true);
  churner.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(backend->stats().total_calls(), issued.load());
  // Quiesced: no call is still counted as occupying a worker anywhere.
  for (unsigned s = 0; s < backend->shard_count(); ++s) {
    EXPECT_EQ(backend->shard(s).stats().in_flight.load(), 0u) << s;
  }
}

TEST_F(ZcShardedTest, PolicyAndStealReachTheBackendFromTheSpecPlane) {
  install_backend_spec(
      *enclave_,
      "zc_sharded:shards=2;policy=least_loaded;steal=on;scheduler=off;"
      "workers=1");
  auto* backend = dynamic_cast<ZcShardedBackend*>(&enclave_->backend());
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->config().policy, ShardPolicy::kLeastLoaded);
  EXPECT_EQ(backend->config().steal, ShardSteal::kScan);
  EXPECT_STREQ(to_string(backend->config().policy), "least_loaded");
  EXPECT_STREQ(to_string(backend->config().steal), "scan");
  EchoArgs args;
  args.in = 1;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 2u);
}

TEST_F(ZcShardedTest, AffinityLoadAndMaxLoadReachTheBackendFromTheSpecPlane) {
  install_backend_spec(
      *enclave_,
      "zc_sharded:shards=2;policy=affinity_load;load_threshold=3;"
      "steal=max_load;scheduler=off;workers=1");
  auto* backend = dynamic_cast<ZcShardedBackend*>(&enclave_->backend());
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->config().policy, ShardPolicy::kAffinityLoad);
  EXPECT_EQ(backend->config().load_threshold, 3u);
  EXPECT_EQ(backend->config().steal, ShardSteal::kMaxLoad);
  EchoArgs args;
  args.in = 1;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 2u);
}

TEST_F(ZcShardedTest, EcallDirectionServesTrustedFunctions) {
  const auto square_id =
      enclave_->ecalls().register_fn("square", [](MarshalledCall& call) {
        auto* a = static_cast<EchoArgs*>(call.args);
        a->out = a->in * a->in;
      });
  ZcShardedConfig cfg;
  cfg.shards = 2;
  cfg.shard.direction = CallDirection::kEcall;
  cfg.shard.scheduler_enabled = false;
  cfg.shard.with_initial_workers(1);
  enclave_->set_ecall_backend(make_zc_sharded_backend(*enclave_, cfg));
  EXPECT_STREQ(enclave_->ecall_backend().name(), "zc_sharded-ecall");

  EchoArgs args;
  args.in = 9;
  EXPECT_EQ(enclave_->ecall_fn(square_id, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 81u);
  EXPECT_EQ(enclave_->transitions().ecall_count(), 0u);
}

TEST_F(ZcShardedTest, PerShardSchedulersRunIndependently) {
  ZcShardedConfig cfg;
  cfg.shards = 2;
  cfg.shard.quantum = std::chrono::microseconds(2'000);
  auto backend = make_zc_sharded_backend(*enclave_, cfg);
  auto* raw = backend.get();
  enclave_->set_backend(std::move(backend));
  for (std::uint64_t i = 0; i < 500; ++i) {
    EchoArgs args;
    args.in = i;
    enclave_->ocall(echo_id_, args);
    ASSERT_EQ(args.out, i + 1);
  }
  // Both shards own a live scheduler instance.
  EXPECT_NE(dynamic_cast<ZcBackend&>(raw->shard(0)).scheduler(), nullptr);
  EXPECT_NE(dynamic_cast<ZcBackend&>(raw->shard(1)).scheduler(), nullptr);
  EXPECT_EQ(raw->stats().total_calls(), 500u);
}

// --- Composition: nested inner= backends ------------------------------------

TEST_F(ZcShardedTest, ComposedBatchedInnerServesSwitchlessly) {
  install_backend_spec(
      *enclave_, "zc_sharded:shards=2;inner=(zc_batched:workers=1;batch=1)");
  auto* backend = dynamic_cast<ZcShardedBackend*>(&enclave_->backend());
  ASSERT_NE(backend, nullptr);
  EXPECT_STREQ(backend->name(), "zc_sharded[zc_batched]");
  ASSERT_NE(dynamic_cast<ZcBatchedBackend*>(&backend->shard(0)), nullptr);
  for (std::uint64_t i = 0; i < 200; ++i) {
    EchoArgs args;
    args.in = i;
    EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
    EXPECT_EQ(args.out, i + 1);
  }
  // Round-robin routing spreads over the batched shards like any other.
  const auto served = backend->per_shard_served();
  EXPECT_EQ(served[0], 100u);
  EXPECT_EQ(served[1], 100u);
}

TEST_F(ZcShardedTest, ComposedAsyncInnerServesSwitchlessly) {
  install_backend_spec(
      *enclave_, "zc_sharded:shards=2;inner=(zc_async:workers=1;queue=4)");
  auto* backend = dynamic_cast<ZcShardedBackend*>(&enclave_->backend());
  ASSERT_NE(backend, nullptr);
  EXPECT_STREQ(backend->name(), "zc_sharded[zc_async]");
  ASSERT_NE(dynamic_cast<ZcAsyncBackend*>(&backend->shard(0)), nullptr);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EchoArgs args;
    args.in = i;
    EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
    EXPECT_EQ(args.out, i + 1);
  }
  EXPECT_EQ(backend->stats().switchless_calls.load(), 100u);
}

TEST_F(ZcShardedTest, ComposedEcallPlaneInheritsTheOuterDirection) {
  const auto square_id =
      enclave_->ecalls().register_fn("square", [](MarshalledCall& call) {
        auto* a = static_cast<EchoArgs*>(call.args);
        a->out = a->in * a->in;
      });
  install_backend_spec(
      *enclave_,
      "zc_sharded:direction=ecall;shards=2;inner=(zc_batched:workers=1;"
      "batch=2)");
  EXPECT_STREQ(enclave_->ecall_backend().name(), "zc_sharded[zc_batched]-ecall");
  EchoArgs args;
  args.in = 9;
  EXPECT_EQ(enclave_->ecall_fn(square_id, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 81u);
  EXPECT_EQ(enclave_->transitions().ecall_count(), 0u);
  enclave_->set_ecall_backend(nullptr);
}

TEST_F(ZcShardedTest, ComposedStealServesThroughTheInnerProbe) {
  // Batched inner shards with a single slot each: stall shard 0's buffer
  // and the steal probe must serve the call from shard 1's batched buffer
  // through the generic try_invoke_switchless seam.
  install_backend_spec(
      *enclave_,
      "zc_sharded:shards=2;steal=on;inner=(zc_batched:workers=1;batch=1)");
  auto* backend = dynamic_cast<ZcShardedBackend*>(&enclave_->backend());
  ASSERT_NE(backend, nullptr);
  std::jthread holder = stall_shard(*backend, 0);

  EchoArgs args;
  args.in = 7;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 8u);
  EXPECT_EQ(backend->stats().steals.load(), 1u);
  release_stall();
  holder.join();
}

TEST_F(ZcShardedTest, SnapshotRollsUpComposedLayers) {
  install_backend_spec(
      *enclave_, "zc_sharded:shards=2;inner=(zc_batched:workers=1;batch=1)");
  auto* backend = dynamic_cast<ZcShardedBackend*>(&enclave_->backend());
  ASSERT_NE(backend, nullptr);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EchoArgs args;
    args.in = i;
    enclave_->ocall(echo_id_, args);
  }
  // The rolled-up snapshot agrees with the router's live mirror on call
  // counts and surfaces the inner layer's batch_flushes.
  const BackendStatsSnapshot rolled = backend->stats_snapshot();
  EXPECT_EQ(rolled.switchless_calls,
            backend->stats().switchless_calls.load());
  EXPECT_EQ(rolled.total_calls(), 100u);
  EXPECT_GT(rolled.batch_flushes, 0u);
  EXPECT_EQ(rolled.in_flight, 0u);
  // Per-layer views stay accessible: the shard snapshots partition the
  // rolled-up counters.
  const BackendStatsSnapshot s0 = backend->shard(0).stats_snapshot();
  const BackendStatsSnapshot s1 = backend->shard(1).stats_snapshot();
  EXPECT_EQ(s0.switchless_calls + s1.switchless_calls,
            rolled.switchless_calls);
  EXPECT_EQ(s0.batch_flushes + s1.batch_flushes, rolled.batch_flushes);
}

TEST_F(ZcShardedTest, ComposedSpecRoundTripsThroughTheRegistry) {
  const std::string canon =
      "zc_sharded:shards=2;inner=(zc_batched:workers=1;batch=4)";
  const BackendSpec spec = BackendSpec::parse(canon);
  EXPECT_EQ(spec.to_string(), canon);
  const BackendSpec again = BackendSpec::parse(spec.to_string());
  EXPECT_EQ(again.to_string(), canon);
  EXPECT_EQ(again.get_string("inner", ""), "zc_batched:workers=1;batch=4");
  BackendRegistry::instance().validate(canon);
  auto backend = BackendRegistry::instance().create(*enclave_, canon);
  ASSERT_NE(backend, nullptr);
  EXPECT_STREQ(backend->name(), "zc_sharded[zc_batched]");
}

TEST_F(ZcShardedTest, DepthTwoLoadAwareRoutingSeesInnerRouterGauges) {
  // A router shard maintains its own in_flight gauge and capacity probe,
  // so an *outer* least_loaded router over two inner routers routes away
  // from the one whose (single) leaf worker is stalled — the contract
  // that keeps load-aware policies meaningful at depth 2.
  install_backend_spec(
      *enclave_,
      "zc_sharded:shards=2;policy=least_loaded;"
      "inner=(zc_sharded:shards=1;workers=1;scheduler=off)");
  auto* backend = dynamic_cast<ZcShardedBackend*>(&enclave_->backend());
  ASSERT_NE(backend, nullptr);
  std::jthread holder = stall_shard(*backend, 0);
  EXPECT_EQ(backend->shard(0).stats().in_flight.load(), 1u);

  for (std::uint64_t i = 0; i < 50; ++i) {
    EchoArgs args;
    args.in = i;
    EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
    EXPECT_EQ(args.out, i + 1);
  }
  EXPECT_EQ(backend->shard(1).stats().switchless_calls.load(), 50u);
  EXPECT_EQ(backend->stats().fallback_calls.load(), 0u);
  release_stall();
  holder.join();
  EXPECT_EQ(backend->shard(0).stats().in_flight.load(), 0u);
}

TEST_F(ZcShardedTest, DepthTwoStealProbesThroughTheInnerRouter) {
  // The outer steal probe lands on an inner *router*, whose own
  // try_invoke_switchless must forward to its leaf — a steal across two
  // routing layers.
  install_backend_spec(
      *enclave_,
      "zc_sharded:shards=2;steal=on;"
      "inner=(zc_sharded:shards=1;workers=1;scheduler=off)");
  auto* backend = dynamic_cast<ZcShardedBackend*>(&enclave_->backend());
  ASSERT_NE(backend, nullptr);
  std::jthread holder = stall_shard(*backend, 0);

  EchoArgs args;
  args.in = 7;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 8u);
  EXPECT_EQ(backend->stats().steals.load(), 1u);
  EXPECT_EQ(backend->shard(1).stats().switchless_calls.load(), 1u);
  release_stall();
  holder.join();
}

TEST_F(ZcShardedTest, DepthTwoCompositionRoutesEndToEnd) {
  // A sharded-of-sharded lattice over batched leaves: the deepest spec the
  // registry accepts, exercised end to end.
  install_backend_spec(
      *enclave_,
      "zc_sharded:shards=2;inner=(zc_sharded:shards=2;"
      "inner=(zc_batched:workers=1;batch=2))");
  auto* backend = dynamic_cast<ZcShardedBackend*>(&enclave_->backend());
  ASSERT_NE(backend, nullptr);
  EXPECT_STREQ(backend->name(), "zc_sharded[zc_sharded]");
  EXPECT_STREQ(backend->shard(0).name(), "zc_sharded[zc_batched]");
  for (std::uint64_t i = 0; i < 100; ++i) {
    EchoArgs args;
    args.in = i;
    EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
    EXPECT_EQ(args.out, i + 1);
  }
  EXPECT_EQ(backend->stats_snapshot().switchless_calls, 100u);
}

}  // namespace
}  // namespace zc
