// Sharded ZC backend: shard routing policies, per-shard isolation,
// fallback behaviour and the trusted-worker (ecall) direction.
#include "core/zc_sharded.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "core/backend_registry.hpp"

namespace zc {
namespace {

struct EchoArgs {
  std::uint64_t in = 0;
  std::uint64_t out = 0;
};

class ZcShardedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 200;
    cfg.logical_cpus = 8;
    enclave_ = Enclave::create(cfg);
    echo_id_ =
        enclave_->ocalls().register_fn("echo", [](MarshalledCall& call) {
          auto* a = static_cast<EchoArgs*>(call.args);
          a->out = a->in + 1;
        });
  }

  // Installs a scheduler-off sharded backend and returns the raw pointer.
  ZcShardedBackend* install(unsigned shards, ShardPolicy policy,
                            unsigned workers_per_shard) {
    ZcShardedConfig cfg;
    cfg.shards = shards;
    cfg.policy = policy;
    cfg.shard.scheduler_enabled = false;
    cfg.shard.with_initial_workers(workers_per_shard);
    auto backend = make_zc_sharded_backend(*enclave_, cfg);
    auto* raw = backend.get();
    enclave_->set_backend(std::move(backend));
    return raw;
  }

  std::unique_ptr<Enclave> enclave_;
  std::uint32_t echo_id_ = 0;
};

TEST_F(ZcShardedTest, RoundRobinSpreadsCallsAcrossShards) {
  auto* backend = install(2, ShardPolicy::kRoundRobin, 1);
  for (std::uint64_t i = 0; i < 200; ++i) {
    EchoArgs args;
    args.in = i;
    EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
    EXPECT_EQ(args.out, i + 1);
  }
  const auto served = backend->per_shard_served();
  ASSERT_EQ(served.size(), 2u);
  // A single caller alternates deterministically: both shards serve half.
  EXPECT_EQ(served[0], 100u);
  EXPECT_EQ(served[1], 100u);
  EXPECT_EQ(backend->stats().switchless_calls.load(), 200u);
}

TEST_F(ZcShardedTest, CallerAffinityPinsAThreadToOneShard) {
  auto* backend = install(4, ShardPolicy::kCallerAffinity, 1);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EchoArgs args;
    args.in = i;
    EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  }
  const auto served = backend->per_shard_served();
  // Every call from this thread hashed to the same shard.
  std::uint64_t total = 0;
  std::uint64_t max_shard = 0;
  for (const std::uint64_t s : served) {
    total += s;
    max_shard = std::max(max_shard, s);
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(max_shard, 100u);
}

TEST_F(ZcShardedTest, AggregatesActiveWorkersAcrossShards) {
  auto* backend = install(3, ShardPolicy::kRoundRobin, 2);
  EXPECT_EQ(backend->shard_count(), 3u);
  EXPECT_EQ(backend->active_workers(), 6u);
  backend->set_active_workers(1);
  EXPECT_EQ(backend->active_workers(), 3u);
}

TEST_F(ZcShardedTest, ZeroActiveWorkersFallsBackEverywhere) {
  auto* backend = install(2, ShardPolicy::kRoundRobin, 0);
  EchoArgs args;
  args.in = 7;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kFallback);
  EXPECT_EQ(args.out, 8u);  // fallback still executes the call
  EXPECT_EQ(backend->stats().fallback_calls.load(), 1u);
}

TEST_F(ZcShardedTest, ResultsSurviveConcurrentCallers) {
  install(2, ShardPolicy::kRoundRobin, 2);
  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> callers;
    for (int t = 0; t < 4; ++t) {
      callers.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < 300; ++i) {
          EchoArgs args;
          args.in = static_cast<std::uint64_t>(t) * 1'000 + i;
          enclave_->ocall(echo_id_, args);
          if (args.out != args.in + 1) failures.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ZcShardedTest, EcallDirectionServesTrustedFunctions) {
  const auto square_id =
      enclave_->ecalls().register_fn("square", [](MarshalledCall& call) {
        auto* a = static_cast<EchoArgs*>(call.args);
        a->out = a->in * a->in;
      });
  ZcShardedConfig cfg;
  cfg.shards = 2;
  cfg.shard.direction = CallDirection::kEcall;
  cfg.shard.scheduler_enabled = false;
  cfg.shard.with_initial_workers(1);
  enclave_->set_ecall_backend(make_zc_sharded_backend(*enclave_, cfg));
  EXPECT_STREQ(enclave_->ecall_backend().name(), "zc_sharded-ecall");

  EchoArgs args;
  args.in = 9;
  EXPECT_EQ(enclave_->ecall_fn(square_id, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 81u);
  EXPECT_EQ(enclave_->transitions().ecall_count(), 0u);
}

TEST_F(ZcShardedTest, PerShardSchedulersRunIndependently) {
  ZcShardedConfig cfg;
  cfg.shards = 2;
  cfg.shard.quantum = std::chrono::microseconds(2'000);
  auto backend = make_zc_sharded_backend(*enclave_, cfg);
  auto* raw = backend.get();
  enclave_->set_backend(std::move(backend));
  for (std::uint64_t i = 0; i < 500; ++i) {
    EchoArgs args;
    args.in = i;
    enclave_->ocall(echo_id_, args);
    ASSERT_EQ(args.out, i + 1);
  }
  // Both shards own a live scheduler instance.
  EXPECT_NE(raw->shard(0).scheduler(), nullptr);
  EXPECT_NE(raw->shard(1).scheduler(), nullptr);
  EXPECT_EQ(raw->stats().total_calls(), 500u);
}

}  // namespace
}  // namespace zc
