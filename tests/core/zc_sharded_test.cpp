// Sharded ZC backend: shard routing policies (incl. load-aware
// least_loaded), bounded cross-shard stealing, per-shard isolation,
// fallback behaviour and the trusted-worker (ecall) direction.
#include "core/zc_sharded.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "core/backend_registry.hpp"

namespace zc {
namespace {

struct EchoArgs {
  std::uint64_t in = 0;
  std::uint64_t out = 0;
};

class ZcShardedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 200;
    cfg.logical_cpus = 8;
    enclave_ = Enclave::create(cfg);
    echo_id_ =
        enclave_->ocalls().register_fn("echo", [](MarshalledCall& call) {
          auto* a = static_cast<EchoArgs*>(call.args);
          a->out = a->in + 1;
        });
    gate_id_ = enclave_->ocalls().register_fn("gate", [this](MarshalledCall&) {
      gate_entered_.store(true, std::memory_order_release);
      while (!gate_open_.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  }

  // Installs a scheduler-off sharded backend and returns the raw pointer.
  ZcShardedBackend* install(unsigned shards, ShardPolicy policy,
                            unsigned workers_per_shard, bool steal = false) {
    ZcShardedConfig cfg;
    cfg.shards = shards;
    cfg.policy = policy;
    cfg.steal = steal;
    cfg.shard.scheduler_enabled = false;
    cfg.shard.with_initial_workers(workers_per_shard);
    auto backend = make_zc_sharded_backend(*enclave_, cfg);
    auto* raw = backend.get();
    enclave_->set_backend(std::move(backend));
    return raw;
  }

  // Occupies one worker of `shard` with a gate call issued directly at
  // that shard (bypassing routing), and returns once the worker is inside
  // the handler — i.e. once the shard's in_flight gauge reflects the
  // stall.  release_stall() lets the gate call finish.
  std::jthread stall_shard(ZcShardedBackend& backend, unsigned shard) {
    std::jthread holder([this, &backend, shard] {
      EchoArgs args;
      CallDesc desc;
      desc.fn_id = gate_id_;
      desc.args = &args;
      desc.args_size = sizeof(args);
      backend.shard(shard).invoke(desc);
    });
    while (!gate_entered_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return holder;
  }

  void release_stall() { gate_open_.store(true, std::memory_order_release); }

  std::unique_ptr<Enclave> enclave_;
  std::uint32_t echo_id_ = 0;
  std::uint32_t gate_id_ = 0;
  std::atomic<bool> gate_entered_{false};
  std::atomic<bool> gate_open_{false};
};

TEST_F(ZcShardedTest, RoundRobinSpreadsCallsAcrossShards) {
  auto* backend = install(2, ShardPolicy::kRoundRobin, 1);
  for (std::uint64_t i = 0; i < 200; ++i) {
    EchoArgs args;
    args.in = i;
    EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
    EXPECT_EQ(args.out, i + 1);
  }
  const auto served = backend->per_shard_served();
  ASSERT_EQ(served.size(), 2u);
  // A single caller alternates deterministically: both shards serve half.
  EXPECT_EQ(served[0], 100u);
  EXPECT_EQ(served[1], 100u);
  EXPECT_EQ(backend->stats().switchless_calls.load(), 200u);
}

TEST_F(ZcShardedTest, CallerAffinityPinsAThreadToOneShard) {
  auto* backend = install(4, ShardPolicy::kCallerAffinity, 1);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EchoArgs args;
    args.in = i;
    EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  }
  const auto served = backend->per_shard_served();
  // Every call from this thread hashed to the same shard.
  std::uint64_t total = 0;
  std::uint64_t max_shard = 0;
  for (const std::uint64_t s : served) {
    total += s;
    max_shard = std::max(max_shard, s);
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(max_shard, 100u);
}

TEST_F(ZcShardedTest, AggregatesActiveWorkersAcrossShards) {
  auto* backend = install(3, ShardPolicy::kRoundRobin, 2);
  EXPECT_EQ(backend->shard_count(), 3u);
  EXPECT_EQ(backend->active_workers(), 6u);
  backend->set_active_workers(1);
  EXPECT_EQ(backend->active_workers(), 3u);
}

TEST_F(ZcShardedTest, ZeroActiveWorkersFallsBackEverywhere) {
  auto* backend = install(2, ShardPolicy::kRoundRobin, 0);
  EchoArgs args;
  args.in = 7;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kFallback);
  EXPECT_EQ(args.out, 8u);  // fallback still executes the call
  EXPECT_EQ(backend->stats().fallback_calls.load(), 1u);
}

TEST_F(ZcShardedTest, ResultsSurviveConcurrentCallers) {
  install(2, ShardPolicy::kRoundRobin, 2);
  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> callers;
    for (int t = 0; t < 4; ++t) {
      callers.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < 300; ++i) {
          EchoArgs args;
          args.in = static_cast<std::uint64_t>(t) * 1'000 + i;
          enclave_->ocall(echo_id_, args);
          if (args.out != args.in + 1) failures.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ZcShardedTest, LeastLoadedIdleTiesBreakToTheLowestShard) {
  auto* backend = install(3, ShardPolicy::kLeastLoaded, 1);
  for (std::uint64_t i = 0; i < 50; ++i) {
    EchoArgs args;
    args.in = i;
    EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
    EXPECT_EQ(args.out, i + 1);
  }
  // A sequential caller never observes load anywhere: every call routes
  // to shard 0 deterministically.
  const auto served = backend->per_shard_served();
  EXPECT_EQ(served[0], 50u);
  EXPECT_EQ(served[1] + served[2], 0u);
}

TEST_F(ZcShardedTest, LeastLoadedRoutesAwayFromAStalledShard) {
  auto* backend = install(2, ShardPolicy::kLeastLoaded, 1);
  // Occupy shard 0's only worker with a long call: its in_flight gauge
  // stays at 1 while the gate is closed.
  std::jthread holder = stall_shard(*backend, 0);
  EXPECT_EQ(backend->shard(0).stats().in_flight.load(), 1u);

  // Every routed call must now pick shard 1 — no fallbacks, no calls
  // queued behind the stalled worker (a count-blind policy would send
  // half of them to shard 0 and pay a fallback transition for each).
  for (std::uint64_t i = 0; i < 100; ++i) {
    EchoArgs args;
    args.in = i;
    EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
    EXPECT_EQ(args.out, i + 1);
  }
  const auto served = backend->per_shard_served();
  EXPECT_EQ(served[1], 100u);
  EXPECT_EQ(backend->stats().fallback_calls.load(), 0u);

  release_stall();
  holder.join();
  EXPECT_EQ(backend->shard(0).stats().in_flight.load(), 0u);
}

TEST_F(ZcShardedTest, StealServesFromANonPrimaryShard) {
  // Round-robin tickets start at shard 0, whose only worker is stalled:
  // with steal=on the first call must be served by shard 1's idle worker
  // instead of falling back.
  auto* backend = install(2, ShardPolicy::kRoundRobin, 1, /*steal=*/true);
  std::jthread holder = stall_shard(*backend, 0);

  EchoArgs args;
  args.in = 7;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 8u);
  EXPECT_EQ(backend->stats().steals.load(), 1u);
  EXPECT_EQ(backend->stats().fallback_calls.load(), 0u);

  release_stall();
  holder.join();
}

TEST_F(ZcShardedTest, StealOffPreservesStrictIsolation) {
  // Identical situation without steal=on: the call routed to the stalled
  // shard falls back immediately (§IV-C per shard) and never probes the
  // idle neighbour.
  auto* backend = install(2, ShardPolicy::kRoundRobin, 1, /*steal=*/false);
  std::jthread holder = stall_shard(*backend, 0);

  EchoArgs args;
  args.in = 7;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kFallback);
  EXPECT_EQ(args.out, 8u);  // the fallback still executed the call
  EXPECT_EQ(backend->stats().steals.load(), 0u);
  const auto served = backend->per_shard_served();
  EXPECT_EQ(served[1], 0u);

  release_stall();
  holder.join();
}

TEST_F(ZcShardedTest, StealFallsBackWhenNoShardIsIdle) {
  auto* backend = install(1, ShardPolicy::kRoundRobin, 1, /*steal=*/true);
  std::jthread holder = stall_shard(*backend, 0);
  EchoArgs args;
  args.in = 1;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kFallback);
  EXPECT_EQ(args.out, 2u);
  EXPECT_EQ(backend->stats().steals.load(), 0u);
  release_stall();
  holder.join();
}

TEST_F(ZcShardedTest, StealPreservesResultsUnderChurn) {
  // Work stealing racing worker pause/resume churn: every call must still
  // return its own result exactly once (the equivalence property), with
  // path counters agreeing with the issue count.
  auto* backend =
      install(2, ShardPolicy::kLeastLoaded, 2, /*steal=*/true);
  std::atomic<bool> stop{false};
  std::jthread churner([&] {
    unsigned m = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      backend->set_active_workers(m % 3);  // 0, 1, 2 workers per shard
      ++m;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> issued{0};
  {
    std::vector<std::jthread> callers;
    for (int t = 0; t < 4; ++t) {
      callers.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < 300; ++i) {
          EchoArgs args;
          args.in = static_cast<std::uint64_t>(t) * 10'000 + i;
          enclave_->ocall(echo_id_, args);
          issued.fetch_add(1);
          if (args.out != args.in + 1) failures.fetch_add(1);
        }
      });
    }
  }
  stop.store(true);
  churner.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(backend->stats().total_calls(), issued.load());
  // Quiesced: no call is still counted as occupying a worker anywhere.
  for (unsigned s = 0; s < backend->shard_count(); ++s) {
    EXPECT_EQ(backend->shard(s).stats().in_flight.load(), 0u) << s;
  }
}

TEST_F(ZcShardedTest, PolicyAndStealReachTheBackendFromTheSpecPlane) {
  install_backend_spec(
      *enclave_,
      "zc_sharded:shards=2;policy=least_loaded;steal=on;scheduler=off;"
      "workers=1");
  auto* backend = dynamic_cast<ZcShardedBackend*>(&enclave_->backend());
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->config().policy, ShardPolicy::kLeastLoaded);
  EXPECT_TRUE(backend->config().steal);
  EXPECT_STREQ(to_string(backend->config().policy), "least_loaded");
  EchoArgs args;
  args.in = 1;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 2u);
}

TEST_F(ZcShardedTest, EcallDirectionServesTrustedFunctions) {
  const auto square_id =
      enclave_->ecalls().register_fn("square", [](MarshalledCall& call) {
        auto* a = static_cast<EchoArgs*>(call.args);
        a->out = a->in * a->in;
      });
  ZcShardedConfig cfg;
  cfg.shards = 2;
  cfg.shard.direction = CallDirection::kEcall;
  cfg.shard.scheduler_enabled = false;
  cfg.shard.with_initial_workers(1);
  enclave_->set_ecall_backend(make_zc_sharded_backend(*enclave_, cfg));
  EXPECT_STREQ(enclave_->ecall_backend().name(), "zc_sharded-ecall");

  EchoArgs args;
  args.in = 9;
  EXPECT_EQ(enclave_->ecall_fn(square_id, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 81u);
  EXPECT_EQ(enclave_->transitions().ecall_count(), 0u);
}

TEST_F(ZcShardedTest, PerShardSchedulersRunIndependently) {
  ZcShardedConfig cfg;
  cfg.shards = 2;
  cfg.shard.quantum = std::chrono::microseconds(2'000);
  auto backend = make_zc_sharded_backend(*enclave_, cfg);
  auto* raw = backend.get();
  enclave_->set_backend(std::move(backend));
  for (std::uint64_t i = 0; i < 500; ++i) {
    EchoArgs args;
    args.in = i;
    enclave_->ocall(echo_id_, args);
    ASSERT_EQ(args.out, i + 1);
  }
  // Both shards own a live scheduler instance.
  EXPECT_NE(raw->shard(0).scheduler(), nullptr);
  EXPECT_NE(raw->shard(1).scheduler(), nullptr);
  EXPECT_EQ(raw->stats().total_calls(), 500u);
}

}  // namespace
}  // namespace zc
