#include "core/worker.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "sgx/marshal.hpp"

namespace zc {
namespace {

using namespace std::chrono_literals;

struct IncArgs {
  int x = 0;
};

class ZcWorkerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig sim;
    sim.tes_cycles = 2'000;
    enclave_ = Enclave::create(sim);
    inc_id_ = enclave_->ocalls().register_fn("inc", [](MarshalledCall& call) {
      static_cast<IncArgs*>(call.args)->x += 1;
    });
    cfg_.worker_pool_bytes = 4096;
    worker_ = std::make_unique<ZcWorker>(*enclave_, cfg_, stats_, 0);
  }

  // Drives one full switchless call through the worker by hand.
  CallPath drive_call(IncArgs& args) {
    if (!worker_->try_reserve()) return CallPath::kFallback;
    CallDesc desc;
    desc.fn_id = inc_id_;
    desc.args = &args;
    desc.args_size = sizeof(args);
    void* mem = worker_->alloc_frame(frame_bytes(desc));
    if (mem == nullptr) {
      worker_->cancel_reservation();
      return CallPath::kFallback;
    }
    MarshalledCall call = marshal_into(mem, desc);
    worker_->submit(mem);
    worker_->wait_done();
    unmarshal_from(call, desc);
    worker_->release();
    return CallPath::kSwitchless;
  }

  bool wait_state(WorkerState s, std::chrono::milliseconds timeout = 2000ms) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (worker_->state() != s) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::yield();
    }
    return true;
  }

  std::unique_ptr<Enclave> enclave_;
  std::uint32_t inc_id_ = 0;
  ZcConfig cfg_;
  BackendStats stats_;
  std::unique_ptr<ZcWorker> worker_;
};

TEST_F(ZcWorkerTest, StartsUnused) {
  EXPECT_EQ(worker_->state(), WorkerState::kUnused);
  EXPECT_EQ(worker_->current_command(), SchedCmd::kRun);
}

TEST_F(ZcWorkerTest, ReserveIsExclusive) {
  EXPECT_TRUE(worker_->try_reserve());
  EXPECT_EQ(worker_->state(), WorkerState::kReserved);
  EXPECT_FALSE(worker_->try_reserve());  // already reserved
  worker_->cancel_reservation();
  EXPECT_EQ(worker_->state(), WorkerState::kUnused);
  EXPECT_TRUE(worker_->try_reserve());
  worker_->cancel_reservation();
}

TEST_F(ZcWorkerTest, FullCallCycleExecutesRequest) {
  worker_->start();
  IncArgs args;
  EXPECT_EQ(drive_call(args), CallPath::kSwitchless);
  EXPECT_EQ(args.x, 1);
  EXPECT_EQ(worker_->calls_served(), 1u);
  EXPECT_EQ(worker_->state(), WorkerState::kUnused);
  // No enclave transition was charged.
  EXPECT_EQ(enclave_->transitions().eexit_count(), 0u);
}

TEST_F(ZcWorkerTest, ServesManySequentialCalls) {
  worker_->start();
  IncArgs args;
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(drive_call(args), CallPath::kSwitchless);
  }
  EXPECT_EQ(args.x, 500);
  EXPECT_EQ(worker_->calls_served(), 500u);
}

TEST_F(ZcWorkerTest, PoolExhaustionResetsViaOcall) {
  worker_->start();
  IncArgs args;
  // 4 KiB pool, each frame is ~sizeof(header)+16, aligned to 64 -> 64 bytes;
  // after ~64 calls the pool must reset at least once.
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(drive_call(args), CallPath::kSwitchless);
  }
  EXPECT_GE(stats_.pool_resets.load(), 1u);
  // Each reset is "an ocall": one eexit+eenter pair, with no dispatch.
  EXPECT_EQ(enclave_->transitions().eexit_count(), stats_.pool_resets.load());
}

TEST_F(ZcWorkerTest, OversizedFrameReturnsNull) {
  worker_->start();
  ASSERT_TRUE(worker_->try_reserve());
  EXPECT_EQ(worker_->alloc_frame(1 << 20), nullptr);  // bigger than the pool
  worker_->cancel_reservation();
}

TEST_F(ZcWorkerTest, PauseParksTheWorker) {
  worker_->start();
  worker_->command(SchedCmd::kPause);
  ASSERT_TRUE(wait_state(WorkerState::kPaused));
  EXPECT_GE(stats_.worker_sleeps.load(), 1u);
  // Paused workers are not reservable.
  EXPECT_FALSE(worker_->try_reserve());
}

TEST_F(ZcWorkerTest, ResumeAfterPauseServesAgain) {
  worker_->start();
  worker_->command(SchedCmd::kPause);
  ASSERT_TRUE(wait_state(WorkerState::kPaused));
  worker_->command(SchedCmd::kRun);
  ASSERT_TRUE(wait_state(WorkerState::kUnused));
  EXPECT_GE(stats_.worker_wakeups.load(), 1u);
  IncArgs args;
  EXPECT_EQ(drive_call(args), CallPath::kSwitchless);
  EXPECT_EQ(args.x, 1);
}

TEST_F(ZcWorkerTest, PauseDoesNotInterruptReservedWorker) {
  worker_->start();
  ASSERT_TRUE(worker_->try_reserve());
  worker_->command(SchedCmd::kPause);
  // Paper: the worker pauses only "if ... no caller thread has reserved
  // (or is using) the worker".
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(worker_->state(), WorkerState::kReserved);

  // The in-flight call still completes.
  CallDesc desc;
  IncArgs args;
  desc.fn_id = inc_id_;
  desc.args = &args;
  desc.args_size = sizeof(args);
  void* mem = worker_->alloc_frame(frame_bytes(desc));
  ASSERT_NE(mem, nullptr);
  MarshalledCall call = marshal_into(mem, desc);
  worker_->submit(mem);
  worker_->wait_done();
  unmarshal_from(call, desc);
  worker_->release();
  EXPECT_EQ(args.x, 1);
  // ...and only then does the worker park.
  ASSERT_TRUE(wait_state(WorkerState::kPaused));
}

TEST_F(ZcWorkerTest, ExitFromPausedTerminates) {
  worker_->start();
  worker_->command(SchedCmd::kPause);
  ASSERT_TRUE(wait_state(WorkerState::kPaused));
  worker_->shutdown();
  EXPECT_EQ(worker_->state(), WorkerState::kExit);
}

TEST_F(ZcWorkerTest, ShutdownIsIdempotent) {
  worker_->start();
  worker_->shutdown();
  worker_->shutdown();
  EXPECT_EQ(worker_->state(), WorkerState::kExit);
}

TEST_F(ZcWorkerTest, StateNamesAreStable) {
  EXPECT_STREQ(to_string(WorkerState::kUnused), "UNUSED");
  EXPECT_STREQ(to_string(WorkerState::kReserved), "RESERVED");
  EXPECT_STREQ(to_string(WorkerState::kProcessing), "PROCESSING");
  EXPECT_STREQ(to_string(WorkerState::kWaiting), "WAITING");
  EXPECT_STREQ(to_string(WorkerState::kPaused), "PAUSED");
  EXPECT_STREQ(to_string(WorkerState::kExit), "EXIT");
}

TEST_F(ZcWorkerTest, ConcurrentReserveHasOneWinner) {
  worker_->start();
  std::atomic<int> winners{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        if (worker_->try_reserve()) winners.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(winners.load(), 1);
  worker_->cancel_reservation();
}

}  // namespace
}  // namespace zc
