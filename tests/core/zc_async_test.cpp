// Future-based ZC backend: submit()/wait()/poll() semantics, completion
// ordering under out-of-order worker finishes, generation-counter ABA
// protection, double-wait and drop-without-wait future lifetime,
// queue-full backpressure and pause/resume churn with in-flight futures.
#include "core/zc_async.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/backend_registry.hpp"

namespace zc {
namespace {

using namespace std::chrono_literals;

struct EchoArgs {
  std::uint64_t in = 0;
  std::uint64_t out = 0;
};

class ZcAsyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 200;
    cfg.logical_cpus = 8;
    enclave_ = Enclave::create(cfg);
    echo_id_ =
        enclave_->ocalls().register_fn("echo", [](MarshalledCall& call) {
          auto* a = static_cast<EchoArgs*>(call.args);
          a->out = a->in + 1;
        });
    // A handler that parks until the test opens the gate — the tool for
    // deterministically holding one call in flight.
    gate_id_ = enclave_->ocalls().register_fn("gated", [this](
                                                  MarshalledCall& call) {
      auto* a = static_cast<EchoArgs*>(call.args);
      while (!gate_.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      a->out = a->in * 10;
      gated_runs_.fetch_add(1, std::memory_order_relaxed);
    });
  }

  ZcAsyncBackend* install(ZcAsyncConfig cfg) {
    auto backend = make_zc_async_backend(*enclave_, cfg);
    auto* raw = backend.get();
    enclave_->set_backend(std::move(backend));
    return raw;
  }

  CallDesc echo_desc(EchoArgs& args) const {
    CallDesc desc;
    desc.fn_id = echo_id_;
    desc.args = &args;
    desc.args_size = sizeof(args);
    return desc;
  }

  CallDesc gated_desc(EchoArgs& args) const {
    CallDesc desc;
    desc.fn_id = gate_id_;
    desc.args = &args;
    desc.args_size = sizeof(args);
    return desc;
  }

  std::unique_ptr<Enclave> enclave_;
  std::uint32_t echo_id_ = 0;
  std::uint32_t gate_id_ = 0;
  std::atomic<bool> gate_{false};
  std::atomic<std::uint64_t> gated_runs_{0};
};

TEST_F(ZcAsyncTest, SynchronousInvokeIsSubmitPlusWait) {
  ZcAsyncConfig cfg;
  cfg.workers = 1;
  cfg.queue = 4;
  auto* backend = install(cfg);

  EchoArgs args;
  args.in = 41;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 42u);
  EXPECT_EQ(backend->stats().switchless_calls.load(), 1u);
  EXPECT_EQ(backend->stats().total_calls(), 1u);
}

TEST_F(ZcAsyncTest, SubmitWaitRoundTripWithPayload) {
  ZcAsyncConfig cfg;
  cfg.workers = 1;
  cfg.queue = 4;
  auto* backend = install(cfg);

  const auto xor_id =
      enclave_->ocalls().register_fn("xor", [](MarshalledCall& c) {
        auto* p = static_cast<std::uint8_t*>(c.payload);
        for (std::size_t i = 0; i < c.payload_size; ++i) p[i] ^= 0xFF;
      });
  std::vector<std::uint8_t> in(1'024);
  std::vector<std::uint8_t> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::uint8_t>(i);
  }
  EchoArgs args;
  CallDesc desc;
  desc.fn_id = xor_id;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.in_payload = in.data();
  desc.in_size = in.size();
  desc.out_payload = out.data();
  desc.out_size = out.size();

  CallFuture future = backend->submit(desc);
  ASSERT_TRUE(future.valid());
  EXPECT_EQ(future.wait(), CallPath::kSwitchless);
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<std::uint8_t>(in[i] ^ 0xFF)) << i;
  }
}

TEST_F(ZcAsyncTest, OutOfOrderCompletionResolvesTheRightFutures) {
  // Two workers: the gated call holds one while the echo call finishes on
  // the other — the *second* submission completes first, and each future
  // still resolves to its own call's results.
  ZcAsyncConfig cfg;
  cfg.workers = 2;
  cfg.queue = 4;
  auto* backend = install(cfg);

  EchoArgs slow;
  slow.in = 7;
  CallFuture slow_future = backend->submit(gated_desc(slow));
  EchoArgs fast;
  fast.in = 1;
  CallFuture fast_future = backend->submit(echo_desc(fast));

  EXPECT_EQ(fast_future.wait(), CallPath::kSwitchless);
  EXPECT_EQ(fast.out, 2u);
  EXPECT_FALSE(slow_future.poll());  // still gated: genuinely out of order

  gate_.store(true, std::memory_order_release);
  EXPECT_EQ(slow_future.wait(), CallPath::kSwitchless);
  EXPECT_EQ(slow.out, 70u);
  EXPECT_EQ(backend->stats().switchless_calls.load(), 2u);
}

TEST_F(ZcAsyncTest, WaitingInReverseSubmissionOrderIsCorrect) {
  ZcAsyncConfig cfg;
  cfg.workers = 2;
  cfg.queue = 16;
  auto* backend = install(cfg);

  constexpr std::size_t kCalls = 12;
  std::vector<EchoArgs> args(kCalls);
  std::vector<CallFuture> futures;
  futures.reserve(kCalls);
  for (std::size_t i = 0; i < kCalls; ++i) {
    args[i].in = 100 + i;
    futures.push_back(backend->submit(echo_desc(args[i])));
  }
  for (std::size_t i = kCalls; i-- > 0;) {
    EXPECT_EQ(futures[i].wait(), CallPath::kSwitchless) << i;
    EXPECT_EQ(args[i].out, 101 + i) << i;
  }
  EXPECT_EQ(backend->stats().total_calls(), kCalls);
}

TEST_F(ZcAsyncTest, GenerationCounterProtectsAgainstSlotReuseAba) {
  // queue=1 forces the second call into the first call's slot.  The stale
  // handle (old generation) must read as completed and never reflect the
  // live call now occupying the slot.
  ZcAsyncConfig cfg;
  cfg.workers = 1;
  cfg.queue = 1;
  auto* backend = install(cfg);

  EchoArgs first;
  first.in = 1;
  CallFuture f1 = backend->submit(echo_desc(first));
  const FutureHandle h1 = f1.handle();
  ASSERT_NE(h1.slot, FutureHandle::kInline);
  EXPECT_EQ(f1.wait(), CallPath::kSwitchless);
  EXPECT_EQ(first.out, 2u);

  // Reoccupy the same slot with a call held in flight by the gate.
  EchoArgs second;
  second.in = 3;
  CallFuture f2 = backend->submit(gated_desc(second));
  const FutureHandle h2 = f2.handle();
  ASSERT_EQ(h2.slot, h1.slot);  // single slot: guaranteed reuse
  EXPECT_GT(h2.generation, h1.generation);

  // The old handle reports completed (its call IS done) even though the
  // slot's current occupant is still executing; the live handle reports
  // not-done.  This is exactly the ABA case the generation counter kills.
  EXPECT_TRUE(backend->handle_completed(h1));
  EXPECT_FALSE(backend->handle_completed(h2));
  EXPECT_FALSE(f2.poll());

  gate_.store(true, std::memory_order_release);
  EXPECT_EQ(f2.wait(), CallPath::kSwitchless);
  EXPECT_EQ(second.out, 30u);
  EXPECT_TRUE(backend->handle_completed(h2));
}

TEST_F(ZcAsyncTest, DoubleWaitIsIdempotent) {
  ZcAsyncConfig cfg;
  cfg.workers = 1;
  cfg.queue = 2;
  auto* backend = install(cfg);

  EchoArgs args;
  args.in = 5;
  CallFuture future = backend->submit(echo_desc(args));
  const CallPath first = future.wait();
  EXPECT_EQ(first, CallPath::kSwitchless);
  EXPECT_EQ(args.out, 6u);
  args.out = 0;  // a second wait must not re-unmarshal or touch the slot
  EXPECT_EQ(future.wait(), first);
  EXPECT_EQ(args.out, 0u);
  EXPECT_TRUE(future.poll());
  // The backend still serves fresh calls through the same slot.
  EchoArgs next;
  next.in = 9;
  EXPECT_EQ(enclave_->ocall(echo_id_, next), CallPath::kSwitchless);
  EXPECT_EQ(next.out, 10u);
}

TEST_F(ZcAsyncTest, DroppedFutureStillExecutesAndReleasesItsSlot) {
  ZcAsyncConfig cfg;
  cfg.workers = 1;
  cfg.queue = 1;
  auto* backend = install(cfg);

  gate_.store(true, std::memory_order_release);  // gated calls run freely
  {
    EchoArgs args;
    args.in = 4;
    CallFuture dropped = backend->submit(gated_desc(args));
    ASSERT_NE(dropped.handle().slot, FutureHandle::kInline);
    // `args` stays alive past the drop: an abandoned call may still be
    // executing and only result *collection* is cancelled.
  }
  // The abandoned call still runs (submission promises its side effects).
  while (gated_runs_.load(std::memory_order_acquire) < 1) {
    std::this_thread::sleep_for(100us);
  }
  // And its slot comes back: with queue=1, a fresh submission can only go
  // switchless once the abandoned slot has been released.
  EchoArgs args;
  for (;;) {
    args.in = 8;
    CallFuture future = backend->submit(echo_desc(args));
    const bool slot_backed = future.handle().slot != FutureHandle::kInline;
    future.wait();
    EXPECT_EQ(args.out, 9u);
    if (slot_backed) break;
    std::this_thread::sleep_for(100us);
  }
  EXPECT_EQ(gated_runs_.load(), 1u);
}

TEST_F(ZcAsyncTest, DropAfterCompletionThenReuseServesTheSuccessor) {
  // Dropping a future whose call already completed (kDone) makes the
  // abandoner release the slot; the very next occupant of that slot must
  // be served normally — a stale abandon mark or a worker's late reclaim
  // must never touch the successor (the generation checks in
  // execute_slot/abandon).
  ZcAsyncConfig cfg;
  cfg.workers = 1;
  cfg.queue = 1;
  auto* backend = install(cfg);

  for (int round = 0; round < 200; ++round) {
    {
      EchoArgs dropped;
      dropped.in = 1;
      CallFuture f = backend->submit(echo_desc(dropped));
      while (!f.poll()) {
        std::this_thread::yield();
      }
      // Completed but never collected: dropped here.
    }
    EchoArgs args;
    for (;;) {
      args.in = 5;
      args.out = 0;
      CallFuture next = backend->submit(echo_desc(args));
      const bool slot_backed = next.handle().slot != FutureHandle::kInline;
      next.wait();
      ASSERT_EQ(args.out, 6u) << round;
      if (slot_backed) break;  // the successor reused the dropped slot
    }
  }
}

TEST_F(ZcAsyncTest, QueueFullBackpressureFallsBackInline) {
  // One slot, held in flight by the gated call: the next submission finds
  // the table full and completes inline as a fallback — never queued
  // without a slot, never lost, never spinning.
  ZcAsyncConfig cfg;
  cfg.workers = 1;
  cfg.queue = 1;
  auto* backend = install(cfg);

  EchoArgs held;
  held.in = 2;
  CallFuture held_future = backend->submit(gated_desc(held));
  ASSERT_NE(held_future.handle().slot, FutureHandle::kInline);

  EchoArgs args;
  args.in = 20;
  CallFuture inline_future = backend->submit(echo_desc(args));
  EXPECT_EQ(inline_future.handle().slot, FutureHandle::kInline);
  EXPECT_TRUE(inline_future.poll());  // already complete
  EXPECT_EQ(args.out, 21u);           // executed before submit returned
  EXPECT_EQ(inline_future.wait(), CallPath::kFallback);
  EXPECT_EQ(backend->stats().fallback_calls.load(), 1u);

  gate_.store(true, std::memory_order_release);
  EXPECT_EQ(held_future.wait(), CallPath::kSwitchless);
  EXPECT_EQ(held.out, 20u);
}

TEST_F(ZcAsyncTest, NoActiveWorkersFallsBackAndResumeRestoresService) {
  ZcAsyncConfig cfg;
  cfg.workers = 2;
  cfg.queue = 4;
  auto* backend = install(cfg);

  backend->set_active_workers(0);
  EXPECT_EQ(backend->active_workers(), 0u);
  EchoArgs args;
  args.in = 1;
  CallFuture future = backend->submit(echo_desc(args));
  EXPECT_EQ(future.handle().slot, FutureHandle::kInline);
  EXPECT_EQ(future.wait(), CallPath::kFallback);
  EXPECT_EQ(args.out, 2u);

  backend->set_active_workers(2);
  args.in = 3;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 4u);
}

TEST_F(ZcAsyncTest, PauseResumeChurnWithInFlightFuturesLosesNothing) {
  ZcAsyncConfig cfg;
  cfg.workers = 2;
  cfg.queue = 8;
  auto* backend = install(cfg);

  std::atomic<bool> stop{false};
  std::jthread churner([&] {
    unsigned m = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      backend->set_active_workers(m % 3);  // 0, 1, 2, 0, ...
      ++m;
      std::this_thread::sleep_for(200us);
    }
  });

  constexpr unsigned kDepth = 4;
  constexpr std::uint64_t kCalls = 600;
  std::uint64_t failures = 0;
  std::vector<EchoArgs> ring(kDepth);
  std::vector<CallFuture> futures(kDepth);
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    const std::size_t k = i % kDepth;
    futures[k].wait();  // no-op on a fresh future
    if (i >= kDepth && ring[k].out != ring[k].in + 1) ++failures;
    ring[k].in = i;
    ring[k].out = 0;
    futures[k] = backend->submit(echo_desc(ring[k]));
  }
  for (std::size_t k = 0; k < kDepth; ++k) {
    futures[k].wait();
    if (ring[k].out != ring[k].in + 1) ++failures;
  }
  stop.store(true);
  churner.join();
  EXPECT_EQ(failures, 0u);
  EXPECT_EQ(backend->stats().total_calls(), kCalls);
}

TEST_F(ZcAsyncTest, StopDrainsInFlightFutures) {
  ZcAsyncConfig cfg;
  cfg.workers = 2;
  cfg.queue = 4;
  auto backend = make_zc_async_backend(*enclave_, cfg);
  backend->start();

  EchoArgs gated_args;
  gated_args.in = 6;
  CallFuture gated_future = backend->submit(gated_desc(gated_args));
  EchoArgs echo_args;
  echo_args.in = 8;
  CallFuture echo_future = backend->submit(echo_desc(echo_args));

  std::jthread opener([&] {
    std::this_thread::sleep_for(1ms);
    gate_.store(true, std::memory_order_release);
  });
  backend->stop();  // exit drains the completion table before joining
  EXPECT_EQ(gated_future.wait(), CallPath::kSwitchless);
  EXPECT_EQ(gated_args.out, 60u);
  EXPECT_EQ(echo_future.wait(), CallPath::kSwitchless);
  EXPECT_EQ(echo_args.out, 9u);

  // Stopped: new calls take the regular path, inline.
  EchoArgs after;
  after.in = 1;
  CallFuture regular = backend->submit(echo_desc(after));
  EXPECT_EQ(regular.wait(), CallPath::kRegular);
  EXPECT_EQ(after.out, 2u);
}

TEST_F(ZcAsyncTest, EcallDirectionServesTrustedFunctions) {
  const auto square_id =
      enclave_->ecalls().register_fn("square", [](MarshalledCall& call) {
        auto* a = static_cast<EchoArgs*>(call.args);
        a->out = a->in * a->in;
      });
  ZcAsyncConfig cfg;
  cfg.workers = 1;
  cfg.queue = 4;
  cfg.direction = CallDirection::kEcall;
  enclave_->set_ecall_backend(make_zc_async_backend(*enclave_, cfg));
  EXPECT_STREQ(enclave_->ecall_backend().name(), "zc_async-ecall");

  EchoArgs args;
  args.in = 6;
  EXPECT_EQ(enclave_->ecall_fn(square_id, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 36u);
  EXPECT_EQ(enclave_->transitions().ecall_count(), 0u);
  enclave_->set_ecall_backend(nullptr);
}

// --- MPSC submit ring & coalesced wakes ------------------------------------

struct AsyncPlane {
  const char* tag;
  bool ring;
  bool coalesce;
  GateWaitPolicy wait;
};

class ZcAsyncPlaneTest : public ZcAsyncTest,
                         public ::testing::WithParamInterface<AsyncPlane> {
 protected:
  ZcAsyncConfig plane_config() {
    ZcAsyncConfig cfg;
    cfg.ring = GetParam().ring;
    cfg.coalesce = GetParam().coalesce;
    cfg.wait = GetParam().wait;
    return cfg;
  }
};

TEST_P(ZcAsyncPlaneTest, SubmitWaitRoundTrips) {
  ZcAsyncConfig cfg = plane_config();
  cfg.workers = 2;
  cfg.queue = 8;
  auto* backend = install(cfg);

  for (std::uint64_t i = 0; i < 200; ++i) {
    EchoArgs args;
    args.in = i;
    CallFuture future = backend->submit(echo_desc(args));
    future.wait();
    ASSERT_EQ(args.out, i + 1) << i;
  }
  EXPECT_EQ(backend->stats().total_calls(), 200u);
}

TEST_P(ZcAsyncPlaneTest, OutOfOrderCompletionResolvesTheRightFutures) {
  ZcAsyncConfig cfg = plane_config();
  cfg.workers = 2;
  cfg.queue = 4;
  auto* backend = install(cfg);

  EchoArgs slow;
  slow.in = 7;
  CallFuture slow_future = backend->submit(gated_desc(slow));
  EchoArgs fast;
  fast.in = 1;
  CallFuture fast_future = backend->submit(echo_desc(fast));

  EXPECT_EQ(fast_future.wait(), CallPath::kSwitchless);
  EXPECT_EQ(fast.out, 2u);
  EXPECT_FALSE(slow_future.poll());

  gate_.store(true, std::memory_order_release);
  EXPECT_EQ(slow_future.wait(), CallPath::kSwitchless);
  EXPECT_EQ(slow.out, 70u);
}

TEST_P(ZcAsyncPlaneTest, PauseResumeChurnWithInFlightFuturesLosesNothing) {
  ZcAsyncConfig cfg = plane_config();
  cfg.workers = 2;
  cfg.queue = 8;
  auto* backend = install(cfg);

  std::atomic<bool> stop{false};
  std::jthread churner([&] {
    unsigned m = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      backend->set_active_workers(m % 3);
      ++m;
      std::this_thread::sleep_for(200us);
    }
  });

  constexpr unsigned kDepth = 4;
  constexpr std::uint64_t kCalls = 600;
  std::uint64_t failures = 0;
  std::vector<EchoArgs> ring(kDepth);
  std::vector<CallFuture> futures(kDepth);
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    const std::size_t k = i % kDepth;
    futures[k].wait();
    if (i >= kDepth && ring[k].out != ring[k].in + 1) ++failures;
    ring[k].in = i;
    ring[k].out = 0;
    futures[k] = backend->submit(echo_desc(ring[k]));
  }
  for (std::size_t k = 0; k < kDepth; ++k) {
    futures[k].wait();
    if (ring[k].out != ring[k].in + 1) ++failures;
  }
  stop.store(true);
  churner.join();
  EXPECT_EQ(failures, 0u);
  EXPECT_EQ(backend->stats().total_calls(), kCalls);
}

INSTANTIATE_TEST_SUITE_P(
    SubmitPlanes, ZcAsyncPlaneTest,
    ::testing::Values(
        AsyncPlane{"table_futex", false, false, GateWaitPolicy::kFutex},
        AsyncPlane{"ring_futex", true, false, GateWaitPolicy::kFutex},
        AsyncPlane{"table_coalesce", false, true, GateWaitPolicy::kFutex},
        AsyncPlane{"ring_coalesce", true, true, GateWaitPolicy::kFutex},
        AsyncPlane{"ring_coalesce_condvar", true, true,
                   GateWaitPolicy::kCondvar}),
    [](const auto& info) { return std::string(info.param.tag); });

TEST_F(ZcAsyncTest, TicketCounterSurvivesThe32BitBoundary) {
  // Regression: ticket_ was a 32-bit fetch_add.  A long-lived backend
  // wrapping it mid-run corrupted the rotation (and, had generations been
  // derived from it, the ABA protection).  Plant the counter just below
  // 2^32 and drive enough traffic through to cross the boundary.
  ZcAsyncConfig cfg;
  cfg.workers = 2;
  cfg.queue = 8;
  auto* backend = install(cfg);
  backend->set_claim_rotation_for_test((std::uint64_t{1} << 32) - 100);

  for (std::uint64_t i = 0; i < 400; ++i) {
    EchoArgs args;
    args.in = i;
    CallFuture future = backend->submit(echo_desc(args));
    future.wait();
    ASSERT_EQ(args.out, i + 1) << i;
  }
  EXPECT_EQ(backend->stats().total_calls(), 400u);
}

TEST_F(ZcAsyncTest, RingTicketsProtectStaleHandles) {
  // Ring-mode ABA: a cell is reused by later tickets, but a stale handle
  // carries its original ticket — which can never be handed out again —
  // so it must keep reading "completed" forever, and never alias the
  // cell's current occupant.
  ZcAsyncConfig cfg;
  cfg.workers = 1;
  cfg.queue = 2;
  cfg.ring = true;
  auto* backend = install(cfg);

  EchoArgs first;
  first.in = 1;
  CallFuture f1 = backend->submit(echo_desc(first));
  const FutureHandle h1 = f1.handle();
  ASSERT_NE(h1.slot, FutureHandle::kInline);
  EXPECT_EQ(f1.wait(), CallPath::kSwitchless);

  // Cycle the ring many times so h1's cell is reoccupied repeatedly.
  for (std::uint64_t i = 0; i < 50; ++i) {
    EchoArgs args;
    args.in = i;
    CallFuture f = backend->submit(echo_desc(args));
    f.wait();
    ASSERT_EQ(args.out, i + 1);
    EXPECT_TRUE(backend->handle_completed(h1)) << i;
  }

  // And a live in-flight occupant of the same cell still reads not-done
  // while the stale handle reads done.
  EchoArgs held;
  held.in = 3;
  CallFuture f2 = backend->submit(gated_desc(held));
  EXPECT_TRUE(backend->handle_completed(h1));
  EXPECT_FALSE(f2.poll());
  gate_.store(true, std::memory_order_release);
  EXPECT_EQ(f2.wait(), CallPath::kSwitchless);
  EXPECT_EQ(held.out, 30u);
}

TEST_F(ZcAsyncTest, RingFullBackpressureFallsBackInline) {
  // workers=1, queue=1 gives a per-worker ring of capacity 2 (the ring
  // minimum).  Hold both cells in flight; the next submission must fall
  // back inline exactly like the table's queue-full path.
  ZcAsyncConfig cfg;
  cfg.workers = 1;
  cfg.queue = 1;
  cfg.ring = true;
  auto* backend = install(cfg);

  EchoArgs held_a, held_b;
  held_a.in = 2;
  held_b.in = 4;
  CallFuture fa = backend->submit(gated_desc(held_a));
  CallFuture fb = backend->submit(gated_desc(held_b));
  ASSERT_NE(fa.handle().slot, FutureHandle::kInline);
  ASSERT_NE(fb.handle().slot, FutureHandle::kInline);

  EchoArgs args;
  args.in = 20;
  CallFuture inline_future = backend->submit(echo_desc(args));
  EXPECT_EQ(inline_future.handle().slot, FutureHandle::kInline);
  EXPECT_EQ(args.out, 21u);
  EXPECT_EQ(inline_future.wait(), CallPath::kFallback);

  gate_.store(true, std::memory_order_release);
  EXPECT_EQ(fa.wait(), CallPath::kSwitchless);
  EXPECT_EQ(held_a.out, 20u);
  EXPECT_EQ(fb.wait(), CallPath::kSwitchless);
  EXPECT_EQ(held_b.out, 40u);
}

TEST_F(ZcAsyncTest, RingStopDrainsInFlightFutures) {
  ZcAsyncConfig cfg;
  cfg.workers = 2;
  cfg.queue = 4;
  cfg.ring = true;
  cfg.coalesce = true;
  auto backend = make_zc_async_backend(*enclave_, cfg);
  backend->start();

  EchoArgs gated_args;
  gated_args.in = 6;
  CallFuture gated_future = backend->submit(gated_desc(gated_args));
  EchoArgs echo_args;
  echo_args.in = 8;
  CallFuture echo_future = backend->submit(echo_desc(echo_args));

  std::jthread opener([&] {
    std::this_thread::sleep_for(1ms);
    gate_.store(true, std::memory_order_release);
  });
  backend->stop();
  EXPECT_EQ(gated_future.wait(), CallPath::kSwitchless);
  EXPECT_EQ(gated_args.out, 60u);
  EXPECT_EQ(echo_future.wait(), CallPath::kSwitchless);
  EXPECT_EQ(echo_args.out, 9u);
}

TEST_F(ZcAsyncTest, RingOptionsReachTheBackendFromTheSpecPlane) {
  install_backend_spec(
      *enclave_, "zc_async:workers=1;queue=4;ring=on;coalesce=on;wait=futex");
  auto* backend = dynamic_cast<ZcAsyncBackend*>(&enclave_->backend());
  ASSERT_NE(backend, nullptr);
  EXPECT_TRUE(backend->config().ring);
  EXPECT_TRUE(backend->config().coalesce);
  EchoArgs args;
  args.in = 1;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 2u);
}

TEST_F(ZcAsyncTest, RedundantSetActiveWorkersWakesNobody) {
  ZcAsyncConfig cfg;
  cfg.workers = 2;
  cfg.queue = 4;
  auto* backend = install(cfg);

  backend->set_active_workers(0);
  while (backend->stats().worker_sleeps.load() < 2) {
    std::this_thread::sleep_for(100us);
  }
  std::this_thread::sleep_for(2ms);
  const std::uint64_t baseline = backend->stats().worker_wakeups.load();
  for (int i = 0; i < 1'000; ++i) backend->set_active_workers(0);
  std::this_thread::sleep_for(2ms);
  EXPECT_EQ(backend->stats().worker_wakeups.load(), baseline);

  backend->set_active_workers(2);
  EchoArgs args;
  args.in = 5;
  EXPECT_EQ(enclave_->ocall(echo_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 6u);
}

TEST_F(ZcAsyncTest, NeverStartedBackendExecutesRegularly) {
  ZcAsyncConfig cfg;
  cfg.workers = 1;
  auto backend = make_zc_async_backend(*enclave_, cfg);
  EchoArgs args;
  args.in = 10;
  EXPECT_EQ(backend->invoke(echo_desc(args)), CallPath::kRegular);
  EXPECT_EQ(args.out, 11u);
  EXPECT_EQ(backend->stats().regular_calls.load(), 1u);
}

TEST_F(ZcAsyncTest, OversizedRequestFallsBack) {
  ZcAsyncConfig cfg;
  cfg.workers = 1;
  cfg.queue = 2;
  cfg.slot_pool_bytes = 256;
  auto* backend = install(cfg);

  std::vector<std::uint8_t> payload(4'096, 0xAB);
  EchoArgs args;
  args.in = 1;
  CallDesc desc = echo_desc(args);
  desc.in_payload = payload.data();
  desc.in_size = payload.size();
  CallFuture future = backend->submit(desc);
  EXPECT_EQ(future.handle().slot, FutureHandle::kInline);
  EXPECT_EQ(future.wait(), CallPath::kFallback);
  EXPECT_EQ(args.out, 2u);
}

}  // namespace
}  // namespace zc
