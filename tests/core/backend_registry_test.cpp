#include "core/backend_registry.hpp"

#include <gtest/gtest.h>

#include "core/zc_batched.hpp"
#include "sgx/enclave.hpp"
#include "workload/synthetic.hpp"

namespace zc {
namespace {

// --- Spec parsing ----------------------------------------------------------

TEST(BackendSpecTest, KeyOnly) {
  const auto spec = BackendSpec::parse("no_sl");
  EXPECT_EQ(spec.key, "no_sl");
  EXPECT_TRUE(spec.options.empty());
  EXPECT_EQ(spec.to_string(), "no_sl");
}

TEST(BackendSpecTest, ScalarOptions) {
  const auto spec = BackendSpec::parse("zc:workers=4,quantum_us=10000");
  EXPECT_EQ(spec.key, "zc");
  ASSERT_EQ(spec.options.size(), 2u);
  EXPECT_EQ(spec.get_unsigned("workers", 0), 4u);
  EXPECT_EQ(spec.get_u64("quantum_us", 0), 10'000u);
  EXPECT_EQ(spec.get_u64("absent", 7), 7u);
}

TEST(BackendSpecTest, BareValuesExtendThePreviousOptionList) {
  const auto spec =
      BackendSpec::parse("intel:sl=read,write;workers=2;rbf=20000");
  EXPECT_EQ(spec.key, "intel");
  ASSERT_EQ(spec.options.size(), 3u);
  EXPECT_EQ(spec.get_list("sl"),
            (std::vector<std::string>{"read", "write"}));
  EXPECT_EQ(spec.get_unsigned("workers", 0), 2u);
  EXPECT_EQ(spec.get_u64("rbf", 0), 20'000u);
}

TEST(BackendSpecTest, ToStringRoundTrips) {
  for (const char* text :
       {"no_sl", "zc:workers=4,quantum_us=10000",
        "intel:sl=read,write;workers=2;rbf=20000", "hotcalls:workers=2",
        "zc:scheduler=off,mu=0.01",
        "zc_sharded:shards=2;inner=(zc_batched:workers=1;batch=4)",
        "zc_sharded:shards=2;inner=(zc_sharded:shards=2;inner=(zc))"}) {
    const auto spec = BackendSpec::parse(text);
    const std::string canon = spec.to_string();
    const auto again = BackendSpec::parse(canon);
    EXPECT_EQ(again.to_string(), canon) << text;
    EXPECT_EQ(again.key, spec.key) << text;
    ASSERT_EQ(again.options.size(), spec.options.size()) << text;
    for (std::size_t i = 0; i < spec.options.size(); ++i) {
      EXPECT_EQ(again.options[i].name, spec.options[i].name) << text;
      EXPECT_EQ(again.options[i].values, spec.options[i].values) << text;
    }
  }
}

TEST(BackendSpecTest, WhitespaceIsTrimmed) {
  const auto spec = BackendSpec::parse("  zc : workers = 4 , quantum_us=1 ");
  EXPECT_EQ(spec.key, "zc");
  EXPECT_EQ(spec.get_unsigned("workers", 0), 4u);
  EXPECT_EQ(spec.to_string(), "zc:workers=4;quantum_us=1");
}

TEST(BackendSpecTest, GrammarViolationsThrow) {
  EXPECT_THROW(BackendSpec::parse(""), BackendSpecError);
  EXPECT_THROW(BackendSpec::parse("  "), BackendSpecError);
  EXPECT_THROW(BackendSpec::parse("Bad Key"), BackendSpecError);
  EXPECT_THROW(BackendSpec::parse("zc:"), BackendSpecError);
  EXPECT_THROW(BackendSpec::parse("zc:,workers=1"), BackendSpecError);
  EXPECT_THROW(BackendSpec::parse("zc:workers"), BackendSpecError);  // bare
  EXPECT_THROW(BackendSpec::parse("zc:=4"), BackendSpecError);
  EXPECT_THROW(BackendSpec::parse("zc:workers="), BackendSpecError);
  EXPECT_THROW(BackendSpec::parse("zc:workers=1;workers=2"),
               BackendSpecError);
  // Only ',' continues a value list: a bare value after ';' is a typo'd
  // option, not a silent extension of the previous list.
  EXPECT_THROW(BackendSpec::parse("zc:workers=2;4"), BackendSpecError);
  EXPECT_THROW(BackendSpec::parse("intel:sl=f;g"), BackendSpecError);
}

TEST(BackendSpecTest, TypedAccessorsRejectBadValues) {
  const auto spec = BackendSpec::parse("zc:workers=abc,mu=x,flag=maybe");
  EXPECT_THROW(spec.get_unsigned("workers", 0), BackendSpecError);
  EXPECT_THROW(spec.get_double("mu", 0.5), BackendSpecError);
  EXPECT_THROW(spec.get_bool("flag", true), BackendSpecError);
  const auto list = BackendSpec::parse("intel:sl=a,b");
  EXPECT_THROW(list.get_string("sl", ""), BackendSpecError);  // not scalar
}

TEST(BackendSpecTest, ParenthesisedValuesCarryNestedSpecs) {
  // A '('-quoted value keeps its separators: the inner= composition
  // mechanism at the grammar level (the registry interprets it later).
  const auto spec = BackendSpec::parse(
      "zc_sharded:shards=4;inner=(zc_batched:batch=8;flush=feedback)");
  EXPECT_EQ(spec.get_unsigned("shards", 0), 4u);
  EXPECT_EQ(spec.get_string("inner", ""), "zc_batched:batch=8;flush=feedback");
  // Nested parens stay balanced inside the payload.
  const auto nested = BackendSpec::parse(
      "zc_sharded:inner=(zc_sharded:shards=2;inner=(zc:workers=1))");
  EXPECT_EQ(nested.get_string("inner", ""),
            "zc_sharded:shards=2;inner=(zc:workers=1)");
  // Whitespace around the payload is trimmed like any other value.
  EXPECT_EQ(BackendSpec::parse("zc_sharded:inner=( zc )").get_string("inner",
                                                                     ""),
            "zc");
  // A ','-joined list continuation unwraps parens exactly like a named
  // value, so to_string()'s re-wrapping round-trips list values too.
  const auto list = BackendSpec::parse("intel:sl=(read),(write;x=1)");
  EXPECT_EQ(list.get_list("sl"),
            (std::vector<std::string>{"read", "write;x=1"}));
  EXPECT_EQ(BackendSpec::parse(list.to_string()).get_list("sl"),
            list.get_list("sl"));
}

TEST(BackendSpecTest, UnbalancedParensAreRejected) {
  EXPECT_THROW(BackendSpec::parse("zc_sharded:inner=(zc"), BackendSpecError);
  EXPECT_THROW(BackendSpec::parse("zc_sharded:inner=zc)"), BackendSpecError);
  EXPECT_THROW(BackendSpec::parse("zc_sharded:inner=((zc)"),
               BackendSpecError);
  EXPECT_THROW(BackendSpec::parse("zc_sharded:inner=(zc)x"),
               BackendSpecError);
  EXPECT_THROW(BackendSpec::parse("zc_sharded:inner=()"), BackendSpecError);
  EXPECT_THROW(BackendSpec::parse("zc_sharded:inner=(zc));shards=2"),
               BackendSpecError);
}

TEST(BackendSpecTest, BoolSpellings) {
  EXPECT_TRUE(BackendSpec::parse("zc:scheduler=on").get_bool("scheduler",
                                                             false));
  EXPECT_TRUE(BackendSpec::parse("zc:scheduler=1").get_bool("scheduler",
                                                            false));
  EXPECT_FALSE(BackendSpec::parse("zc:scheduler=off").get_bool("scheduler",
                                                               true));
  EXPECT_FALSE(BackendSpec::parse("zc:scheduler=no").get_bool("scheduler",
                                                              true));
}

// --- Registry creation -----------------------------------------------------

class BackendRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 200;
    enclave_ = Enclave::create(cfg);
    ids_ = workload::register_synthetic_ocalls(enclave_->ocalls());
  }

  std::unique_ptr<Enclave> enclave_;
  workload::SyntheticOcalls ids_;
};

TEST_F(BackendRegistryTest, KnowsThePaperBackends) {
  auto& registry = BackendRegistry::instance();
  for (const char* key : {"no_sl", "intel", "hotcalls", "zc", "zc_sharded",
                          "zc_batched", "zc_async"}) {
    EXPECT_TRUE(registry.contains(key)) << key;
  }
  EXPECT_FALSE(registry.contains("warp_drive"));
  EXPECT_NE(registry.help().find("zc"), std::string::npos);
}

TEST_F(BackendRegistryTest, CreatesEachBuiltin) {
  auto& registry = BackendRegistry::instance();
  const std::pair<const char*, const char*> expect[] = {
      {"no_sl", "no_sl"},
      {"intel:sl=all;workers=2", "intel_sl"},
      {"hotcalls:workers=2", "hotcalls"},
      {"zc", "zc"},
      {"zc_sharded:shards=2;workers=1", "zc_sharded"},
      {"zc_batched:workers=1;batch=2", "zc_batched"},
      {"zc_async:workers=1;queue=4", "zc_async"},
  };
  for (const auto& [spec, name] : expect) {
    auto backend = registry.create(*enclave_, spec);
    ASSERT_NE(backend, nullptr) << spec;
    EXPECT_STREQ(backend->name(), name) << spec;
  }
}

TEST_F(BackendRegistryTest, SpecOptionsReachTheBackend) {
  install_backend_spec(*enclave_, "zc:scheduler=off,workers=3");
  EXPECT_EQ(enclave_->backend().active_workers(), 3u);

  // rbf effectively unbounded: on few-core hosts the default budget
  // expires before a worker is scheduled, and this asserts the path.
  install_backend_spec(*enclave_, "intel:sl=f;workers=2;rbf=2000000000");
  workload::FArgs fargs;
  EXPECT_EQ(enclave_->ocall(ids_.f_a, fargs), CallPath::kSwitchless);
  // g is outside the static set: regular path.
  workload::GArgs gargs;
  gargs.pauses = 0;
  EXPECT_EQ(enclave_->ocall(ids_.g_a, gargs), CallPath::kRegular);
  enclave_->set_backend(nullptr);
}

TEST_F(BackendRegistryTest, IntelSlAcceptsNamesIdsAndAll) {
  auto& registry = BackendRegistry::instance();
  // By name and by numeric id.
  const std::string rbf = ";rbf=2000000000";  // wait out slow hosts
  const std::string specs[] = {"intel:sl=g" + rbf,
                               "intel:sl=" + std::to_string(ids_.g_a) + rbf};
  for (const std::string& spec : specs) {
    install_backend_spec(*enclave_, spec);
    workload::GArgs gargs;
    gargs.pauses = 0;
    EXPECT_EQ(enclave_->ocall(ids_.g_a, gargs), CallPath::kSwitchless)
        << spec;
    enclave_->set_backend(nullptr);
  }
  // Unknown name / out-of-range id.
  EXPECT_THROW(registry.create(*enclave_, "intel:sl=nope"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "intel:sl=999"), BackendSpecError);
}

TEST_F(BackendRegistryTest, UnknownKeysAndOptionsAreRejected) {
  auto& registry = BackendRegistry::instance();
  EXPECT_THROW(registry.create(*enclave_, "warp_drive"), BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc:rbf=7"), BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "no_sl:workers=2"),
               BackendSpecError);
  EXPECT_THROW(registry.validate("zc:bogus=1"), BackendSpecError);
  registry.validate("zc:workers=2");  // value errors surface at create()
}

TEST_F(BackendRegistryTest, BadOptionValuesAreRejectedAtCreate) {
  auto& registry = BackendRegistry::instance();
  EXPECT_THROW(registry.create(*enclave_, "zc:quantum_us=0"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc:mu=1.5"), BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc:mu=abc"), BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc:pool_bytes=0"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "hotcalls:workers=0"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "intel:pool_slots=0"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "intel:rbf=99999999999"),
               BackendSpecError);
}

TEST_F(BackendRegistryTest, ShardedAndBatchedValueErrorsAreTyped) {
  auto& registry = BackendRegistry::instance();
  // Sharded: shard count and policy validation.
  EXPECT_THROW(registry.create(*enclave_, "zc_sharded:shards=0"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_sharded:policy=warp_drive"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_sharded:quantum_us=0"),
               BackendSpecError);
  // Batched: batch/flush validation, incl. conflicting combinations.
  EXPECT_THROW(registry.create(*enclave_, "zc_batched:batch=0"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_batched:workers=0"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_batched:pool_bytes=0"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_batched:batch=1;flush_us=10"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_batched:batch=4;flush_us=0"),
               BackendSpecError);
  // Defaults and explicit non-conflicting combinations are accepted.
  EXPECT_NE(registry.create(*enclave_, "zc_batched:batch=1"), nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc_batched:batch=4;flush_us=50"),
            nullptr);
}

TEST_F(BackendRegistryTest, LoadAwareShardOptionsAreValidated) {
  auto& registry = BackendRegistry::instance();
  // least_loaded is a first-class policy value; steal takes on/off.
  EXPECT_NE(registry.create(*enclave_, "zc_sharded:policy=least_loaded"),
            nullptr);
  EXPECT_NE(registry.create(*enclave_,
                            "zc_sharded:shards=4;policy=least_loaded;"
                            "steal=on;scheduler=off;workers=1"),
            nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc_sharded:steal=off"), nullptr);
  EXPECT_THROW(registry.create(*enclave_, "zc_sharded:steal=banana"),
               BackendSpecError);
  // steal/policy belong to zc_sharded only.
  EXPECT_THROW(registry.create(*enclave_, "zc:steal=on"), BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_batched:policy=least_loaded"),
               BackendSpecError);
}

TEST_F(BackendRegistryTest, BatchedFlushPolicyIsValidated) {
  auto& registry = BackendRegistry::instance();
  // The two policies and their knobs.
  EXPECT_NE(registry.create(*enclave_, "zc_batched:flush=timer"), nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc_batched:flush=feedback"), nullptr);
  EXPECT_NE(registry.create(
                *enclave_, "zc_batched:batch=4;flush=feedback;quantum_us=2000"),
            nullptr);
  EXPECT_THROW(registry.create(*enclave_, "zc_batched:flush=bogus"),
               BackendSpecError);
  // flush_us belongs to the timer policy, quantum_us to feedback: mixing
  // them (or feedback with batch=1, which has no window to adapt) is a
  // conflict, not a silent preference.
  EXPECT_THROW(
      registry.create(*enclave_, "zc_batched:flush=feedback;flush_us=100"),
      BackendSpecError);
  EXPECT_THROW(
      registry.create(*enclave_, "zc_batched:flush=feedback;batch=1"),
      BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_batched:quantum_us=2000"),
               BackendSpecError);
  EXPECT_THROW(
      registry.create(*enclave_, "zc_batched:flush=feedback;quantum_us=0"),
      BackendSpecError);
}

TEST_F(BackendRegistryTest, BatchedSpinBudgetIsValidated) {
  auto& registry = BackendRegistry::instance();
  // Malformed spin budgets: empty value (grammar), non-numeric value.
  EXPECT_THROW(registry.create(*enclave_, "zc_batched:spin_us="),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_batched:spin_us=abc"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_batched:spin_us=-1"),
               BackendSpecError);
  // The spin budget is uniform across the ZC family's spinning callers
  // (zc and zc_sharded take it too); zc_async never spins by design, so
  // there it stays an unknown option.
  EXPECT_NE(registry.create(*enclave_, "zc:spin_us=10"), nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc_sharded:spin_us=10"), nullptr);
  EXPECT_THROW(registry.create(*enclave_, "zc_async:spin_us=10"),
               BackendSpecError);
  // spin_us=0 is valid and means yield-immediately.
  auto yielder = registry.create(*enclave_, "zc_batched:spin_us=0");
  ASSERT_NE(yielder, nullptr);
  EXPECT_EQ(dynamic_cast<ZcBatchedBackend*>(yielder.get())
                ->config().spin.count(), 0);
}

TEST_F(BackendRegistryTest, RingAndCoalesceOptionsAreValidated) {
  auto& registry = BackendRegistry::instance();
  // Both planes accept the submit-ring and coalesced-wake switches.
  EXPECT_NE(registry.create(*enclave_, "zc_batched:ring=on"), nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc_batched:ring=off"), nullptr);
  EXPECT_NE(registry.create(
                *enclave_, "zc_batched:ring=on;coalesce=on;wait=futex"),
            nullptr);
  EXPECT_NE(registry.create(
                *enclave_, "zc_batched:coalesce=on;wait=condvar"),
            nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc_async:ring=on;coalesce=on"),
            nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc_async:ring=off;coalesce=off"),
            nullptr);
  // Malformed booleans fail like any other bad value.
  EXPECT_THROW(registry.create(*enclave_, "zc_batched:ring=banana"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_async:coalesce=banana"),
               BackendSpecError);
  // Coalescing batches *sleeper* wakes: zc_batched with a polling wait
  // policy has no sleepers, so the combination is rejected, not ignored.
  EXPECT_THROW(registry.create(*enclave_, "zc_batched:coalesce=on"),
               BackendSpecError);  // default wait=yield never sleeps
  EXPECT_THROW(
      registry.create(*enclave_, "zc_batched:coalesce=on;wait=spin"),
      BackendSpecError);
  EXPECT_THROW(
      registry.create(*enclave_, "zc_batched:coalesce=on;wait=yield"),
      BackendSpecError);
  // The options belong to the batched/async planes only.
  EXPECT_THROW(registry.create(*enclave_, "zc:ring=on"), BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_sharded:coalesce=on"),
               BackendSpecError);
  // And they compose through the sharded router's inner= spec.
  EXPECT_NE(registry.create(*enclave_,
                            "zc_sharded:shards=2;inner=(zc_batched:workers=1;"
                            "batch=4;ring=on;coalesce=on;wait=futex)"),
            nullptr);
  // (create, not validate: the coalesce/wait cross-check lives in the
  // builder, and the router builds its shards eagerly.)
  EXPECT_THROW(
      registry.create(*enclave_,
                      "zc_sharded:inner=(zc_batched:coalesce=on;wait=spin)"),
      BackendSpecError);
}

TEST_F(BackendRegistryTest, NestedInnerSpecsAreValidated) {
  auto& registry = BackendRegistry::instance();
  // Happy paths: any registered family composes as the inner backend.
  EXPECT_NE(registry.create(*enclave_, "zc_sharded:shards=2;inner=(zc)"),
            nullptr);
  EXPECT_NE(registry.create(
                *enclave_,
                "zc_sharded:shards=2;inner=(zc_batched:workers=1;batch=4)"),
            nullptr);
  EXPECT_NE(registry.create(
                *enclave_,
                "zc_sharded:shards=2;inner=(zc_async:workers=1;queue=8)"),
            nullptr);
  // validate() checks the nested spec without an enclave, recursively.
  registry.validate("zc_sharded:inner=(zc_batched:batch=8;flush=feedback)");
  EXPECT_THROW(registry.validate("zc_sharded:inner=(warp_drive)"),
               BackendSpecError);
  EXPECT_THROW(registry.validate("zc_sharded:inner=(zc:rbf=7)"),
               BackendSpecError);
  // inner= belongs to the sharded router only.
  EXPECT_THROW(registry.validate("zc:inner=(no_sl)"), BackendSpecError);
  EXPECT_THROW(registry.validate("zc_batched:inner=(zc)"), BackendSpecError);
  EXPECT_THROW(registry.validate("zc_async:inner=(zc)"), BackendSpecError);
  // Composition nests at most two levels.
  registry.validate("zc_sharded:inner=(zc_sharded:inner=(zc))");
  EXPECT_THROW(
      registry.validate(
          "zc_sharded:inner=(zc_sharded:inner=(zc_sharded:inner=(zc)))"),
      BackendSpecError);
  // The inner spec inherits the outer direction and must not spell its
  // own; flat per-shard zc options conflict with an explicit inner=.
  EXPECT_THROW(
      registry.create(*enclave_, "zc_sharded:inner=(zc:direction=ecall)"),
      BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_sharded:inner=(zc);workers=2"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_sharded:inner=(zc);spin_us=10"),
               BackendSpecError);
  // An ecall composition over an inner family without a trusted-worker
  // plane is rejected in the user's terms (not by blaming the inherited
  // direction option they never wrote).
  try {
    registry.create(*enclave_,
                    "zc_sharded:direction=ecall;inner=(hotcalls:workers=2)");
    FAIL() << "ecall composition over hotcalls should be rejected";
  } catch (const BackendSpecError& e) {
    EXPECT_NE(std::string(e.what()).find("trusted-worker plane"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(BackendRegistryTest, RecordFamilyWrapsAnyInnerSpec) {
  auto& registry = BackendRegistry::instance();
  // The trace-recording tap composes over any family, both directions.
  EXPECT_NE(registry.create(*enclave_, "record"), nullptr);  // inner=no_sl
  EXPECT_NE(registry.create(*enclave_, "record:inner=(zc:workers=2)"),
            nullptr);
  EXPECT_NE(registry.create(
                *enclave_,
                "record:inner=(zc_sharded:shards=2;inner=(zc_batched:"
                "workers=1;batch=4))"),
            nullptr);
  EXPECT_NE(registry.create(*enclave_, "record:direction=ecall"), nullptr);
  // The composed name surfaces the wrapped backend.
  const auto tap = registry.create(*enclave_, "record:inner=(zc:workers=1)");
  EXPECT_EQ(std::string(tap->name()), "record[zc]");

  // Unknown inner families and options fail like any nested spec.
  EXPECT_THROW(registry.validate("record:inner=(warp_drive)"),
               BackendSpecError);
  EXPECT_THROW(registry.validate("record:inner=(zc:rbf=7)"),
               BackendSpecError);
  // The inner spec inherits the outer direction and must not spell its
  // own (same contract as the sharded router).
  try {
    registry.create(*enclave_, "record:inner=(zc:direction=ecall)");
    FAIL() << "inner direction accepted";
  } catch (const BackendSpecError& e) {
    EXPECT_NE(std::string(e.what()).find("outer spec"), std::string::npos)
        << e.what();
  }
  // Recording the ecall plane needs an inner family that can serve it;
  // hotcalls cannot, and the error says so in the user's terms.
  try {
    registry.create(*enclave_,
                    "record:direction=ecall;inner=(hotcalls:workers=1)");
    FAIL() << "ecall recording over hotcalls accepted";
  } catch (const BackendSpecError& e) {
    EXPECT_NE(std::string(e.what()).find("trusted-worker plane"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(BackendRegistryTest, AffinityLoadOptionsAreValidated) {
  auto& registry = BackendRegistry::instance();
  EXPECT_NE(registry.create(*enclave_, "zc_sharded:policy=affinity_load"),
            nullptr);
  EXPECT_NE(registry.create(
                *enclave_,
                "zc_sharded:policy=affinity_load;load_threshold=4;shards=2"),
            nullptr);
  // load_threshold without the policy it gates is a conflict, not a
  // silently ignored knob.
  EXPECT_THROW(registry.create(*enclave_, "zc_sharded:load_threshold=4"),
               BackendSpecError);
  EXPECT_THROW(
      registry.create(*enclave_,
                      "zc_sharded:policy=least_loaded;load_threshold=4"),
      BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_sharded:load_threshold=abc;"
                                          "policy=affinity_load"),
               BackendSpecError);
}

TEST_F(BackendRegistryTest, StealVictimPoliciesAreValidated) {
  auto& registry = BackendRegistry::instance();
  // steal=on stays the documented alias for scan-order victim selection.
  EXPECT_NE(registry.create(*enclave_, "zc_sharded:steal=on"), nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc_sharded:steal=scan"), nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc_sharded:steal=max_load"), nullptr);
  EXPECT_THROW(registry.create(*enclave_, "zc_sharded:steal=banana"),
               BackendSpecError);
}

TEST_F(BackendRegistryTest, GateWaitPoliciesAreValidated) {
  auto& registry = BackendRegistry::instance();
  // The ZC family takes wait= (the CompletionGate policy after spin_us).
  EXPECT_NE(registry.create(*enclave_, "zc:wait=futex"), nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc:wait=condvar;spin_us=0"), nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc:wait=spin"), nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc:wait=yield"), nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc_sharded:wait=futex"), nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc_batched:wait=futex;spin_us=0"),
            nullptr);
  EXPECT_THROW(registry.create(*enclave_, "zc:wait=banana"),
               BackendSpecError);
  // The async plane never spins: only the sleeping policies make sense.
  EXPECT_NE(registry.create(*enclave_, "zc_async:wait=futex"), nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc_async:wait=condvar"), nullptr);
  EXPECT_THROW(registry.create(*enclave_, "zc_async:wait=yield"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_async:wait=spin"),
               BackendSpecError);
  // wait= is a ZC-family option; the fixed-policy baselines reject it.
  EXPECT_THROW(registry.create(*enclave_, "hotcalls:wait=futex"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "no_sl:wait=futex"),
               BackendSpecError);
}

TEST_F(BackendRegistryTest, PoolAndCopyOptionsAreValidated) {
  auto& registry = BackendRegistry::instance();
  // The whole ZC family takes the data-plane knobs, including the sharded
  // router's flat per-shard options.
  EXPECT_NE(registry.create(*enclave_, "zc:pool=slab"), nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc:pool=bump"), nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc:pool=slab;copy=single"), nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc_batched:pool=slab;copy=single"),
            nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc_async:pool=slab;copy=single"),
            nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc_sharded:pool=slab;copy=single"),
            nullptr);
  EXPECT_NE(registry.create(
                *enclave_,
                "zc_sharded:shards=2;inner=(zc_batched:workers=1;batch=4;"
                "pool=slab;copy=single)"),
            nullptr);

  // The chosen discipline surfaces through CallBackend::copy_mode().
  EXPECT_EQ(registry.create(*enclave_, "zc:workers=1")->copy_mode(),
            CopyMode::kDouble);
  EXPECT_EQ(registry.create(*enclave_, "zc:copy=single")->copy_mode(),
            CopyMode::kSingle);
  EXPECT_EQ(registry.create(*enclave_, "zc_async:copy=single")->copy_mode(),
            CopyMode::kSingle);
  EXPECT_EQ(registry
                .create(*enclave_,
                        "zc_sharded:shards=2;inner=(zc:copy=single)")
                ->copy_mode(),
            CopyMode::kSingle);

  // Bad values name the accepted set.
  for (const char* bad : {"zc:pool=banana", "zc_batched:pool=0",
                          "zc_async:pool=arena"}) {
    try {
      registry.create(*enclave_, bad);
      FAIL() << bad << " accepted";
    } catch (const BackendSpecError& e) {
      EXPECT_NE(std::string(e.what()).find("bump"), std::string::npos)
          << e.what();
    }
  }
  for (const char* bad : {"zc:copy=banana", "zc_batched:copy=2",
                          "zc_async:copy=zero"}) {
    try {
      registry.create(*enclave_, bad);
      FAIL() << bad << " accepted";
    } catch (const BackendSpecError& e) {
      EXPECT_NE(std::string(e.what()).find("double"), std::string::npos)
          << e.what();
    }
  }

  // The fixed-policy baselines take neither knob.
  EXPECT_THROW(registry.create(*enclave_, "no_sl:pool=slab"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "hotcalls:copy=single"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "intel:sl=all;pool=slab"),
               BackendSpecError);
}

TEST_F(BackendRegistryTest, AsyncValueErrorsAreTyped) {
  auto& registry = BackendRegistry::instance();
  EXPECT_THROW(registry.create(*enclave_, "zc_async:workers=0"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_async:queue=0"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_async:pool_bytes=0"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_async:workers=abc"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_async:direction=sideways"),
               BackendSpecError);
  // Unknown options (incl. other backends' knobs) are rejected by name.
  EXPECT_THROW(registry.create(*enclave_, "zc_async:batch=4"),
               BackendSpecError);
  EXPECT_THROW(registry.create(*enclave_, "zc_async:warp=1"),
               BackendSpecError);
  // Valid shapes, both directions.
  EXPECT_NE(registry.create(*enclave_, "zc_async"), nullptr);
  EXPECT_NE(registry.create(*enclave_, "zc_async:workers=2;queue=16"),
            nullptr);
  EXPECT_NE(
      registry.create(*enclave_, "zc_async:direction=ecall;workers=1;queue=4"),
      nullptr);
}

TEST_F(BackendRegistryTest, DirectionOptionIsValidatedAndScoped) {
  auto& registry = BackendRegistry::instance();
  EXPECT_THROW(registry.create(*enclave_, "zc:direction=sideways"),
               BackendSpecError);
  // hotcalls has no trusted-worker mode: the option itself is unknown.
  EXPECT_THROW(registry.create(*enclave_, "hotcalls:direction=ecall"),
               BackendSpecError);
}

TEST_F(BackendRegistryTest, EcallDirectionInstallsOnTheTrustedPlane) {
  enclave_->ecalls().register_fn("tnop", [](MarshalledCall&) {});
  install_backend_spec(*enclave_, "zc:direction=ecall;scheduler=off;workers=1");
  // The ocall backend is untouched; the ecall plane got the ZC backend.
  EXPECT_STREQ(enclave_->backend().name(), "no_sl");
  EXPECT_STREQ(enclave_->ecall_backend().name(), "zc-ecall");

  install_backend_spec(*enclave_,
                       "zc_batched:direction=ecall;workers=1;batch=2");
  EXPECT_STREQ(enclave_->ecall_backend().name(), "zc_batched-ecall");

  // An ocall-direction spec then only replaces the ocall plane.
  install_backend_spec(*enclave_, "zc_sharded:shards=2;scheduler=off");
  EXPECT_STREQ(enclave_->backend().name(), "zc_sharded");
  EXPECT_STREQ(enclave_->ecall_backend().name(), "zc_batched-ecall");
  enclave_->set_ecall_backend(nullptr);
  enclave_->set_backend(nullptr);
}

TEST_F(BackendRegistryTest, IntelEcallDirectionResolvesTrustedNames) {
  const auto tid = enclave_->ecalls().register_fn("square",
                                                  [](MarshalledCall&) {});
  (void)tid;
  // `sl=square` only exists in the *ecall* table: resolution must follow
  // the direction option.
  install_backend_spec(*enclave_,
                       "intel:direction=ecall;sl=square;workers=1");
  EXPECT_STREQ(enclave_->ecall_backend().name(), "intel_sl-ecall");
  // Same spec without direction=ecall must fail: no such ocall.
  EXPECT_THROW(
      BackendRegistry::instance().create(*enclave_, "intel:sl=square"),
      BackendSpecError);
  enclave_->set_ecall_backend(nullptr);
}

TEST_F(BackendRegistryTest, CustomBackendsPlugIntoTheSpecPlane) {
  auto& registry = BackendRegistry::instance();
  if (!registry.contains("echo_test")) {
    registry.register_backend(
        {"echo_test", "no_sl clone used by the registry unit test",
         {"tag"},
         [](Enclave& enclave, const BackendSpec& spec, CpuUsageMeter*) {
           spec.get_string("tag", "");  // typed access works for customs
           return std::make_unique<RegularBackend>(enclave);
         }});
  }
  auto backend = registry.create(*enclave_, "echo_test:tag=x");
  ASSERT_NE(backend, nullptr);
  EXPECT_STREQ(backend->name(), "no_sl");
  // Duplicate registration is rejected.
  EXPECT_THROW(registry.register_backend({"zc", "dup", {}, nullptr}),
               BackendSpecError);
}

}  // namespace
}  // namespace zc
