#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <thread>

#include "core/zc_backend.hpp"
#include "workload/synthetic.hpp"

namespace zc {
namespace {

using namespace std::chrono_literals;

TEST(AdaptFlushWindow, GrowsOnMostlyEmptyTimerFlushes) {
  // Mean fill 1 of batch 8 (below half): double, clamped at max.
  EXPECT_EQ(adapt_flush_window(100'000, 10, 10, 8, 12'500, 800'000),
            200'000u);
  EXPECT_EQ(adapt_flush_window(500'000, 10, 10, 8, 12'500, 800'000),
            800'000u);  // clamp
  EXPECT_EQ(adapt_flush_window(800'000, 10, 10, 8, 12'500, 800'000),
            800'000u);  // already at max
}

TEST(AdaptFlushWindow, ShrinksOnFullBatches) {
  // Mean fill == batch (demand fills buffers alone): halve, clamped at min.
  EXPECT_EQ(adapt_flush_window(100'000, 10, 80, 8, 12'500, 800'000),
            50'000u);
  EXPECT_EQ(adapt_flush_window(20'000, 10, 80, 8, 12'500, 800'000),
            12'500u);  // clamp
  // 90% of batch is already "full": 7.2 of 8.
  EXPECT_EQ(adapt_flush_window(100'000, 10, 72, 8, 12'500, 800'000),
            50'000u);
}

TEST(AdaptFlushWindow, HoldsInTheMidBandAndWithoutSignal) {
  // Mean fill 4 of 8: between the half and 90% thresholds — keep.
  EXPECT_EQ(adapt_flush_window(100'000, 10, 40, 8, 12'500, 800'000),
            100'000u);
  // No flushes observed (idle quantum): no signal, keep.
  EXPECT_EQ(adapt_flush_window(100'000, 0, 0, 8, 12'500, 800'000), 100'000u);
  // Degenerate batch guard.
  EXPECT_EQ(adapt_flush_window(100'000, 10, 10, 0, 12'500, 800'000),
            100'000u);
}

TEST(WastedCycles, MatchesPaperFormula) {
  // U_i = F_i * T_es + i * window_cycles
  EXPECT_EQ(ZcScheduler::wasted_cycles(0, 13'500, 0, 1'000'000), 0u);
  EXPECT_EQ(ZcScheduler::wasted_cycles(10, 13'500, 0, 1'000'000), 135'000u);
  EXPECT_EQ(ZcScheduler::wasted_cycles(0, 13'500, 3, 1'000'000), 3'000'000u);
  EXPECT_EQ(ZcScheduler::wasted_cycles(2, 10'000, 4, 500'000),
            2u * 10'000u + 4u * 500'000u);
}

TEST(WastedCycles, TradeoffPicksWorkersOnlyUnderLoad) {
  // With zero fallbacks, adding workers only adds waste: U is increasing
  // in i, so argmin is 0 workers.
  const std::uint64_t window = 1'000'000;
  std::uint64_t prev = 0;
  for (unsigned i = 1; i <= 4; ++i) {
    const std::uint64_t u = ZcScheduler::wasted_cycles(0, 13'500, i, window);
    EXPECT_GT(u, prev);
    prev = u;
  }
  // With many fallbacks eliminated per worker, workers pay for themselves:
  // suppose each worker absorbs 200 fallbacks (200*13500 = 2.7M > 1M).
  const std::uint64_t u0 = ZcScheduler::wasted_cycles(400, 13'500, 0, window);
  const std::uint64_t u2 = ZcScheduler::wasted_cycles(0, 13'500, 2, window);
  EXPECT_LT(u2, u0);
}

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig sim;
    sim.tes_cycles = 13'500;
    sim.logical_cpus = 8;
    enclave_ = Enclave::create(sim);
    ids_ = workload::register_synthetic_ocalls(enclave_->ocalls());
  }

  ZcBackend* install(ZcConfig cfg) {
    auto backend = std::make_unique<ZcBackend>(*enclave_, cfg);
    auto* raw = backend.get();
    enclave_->set_backend(std::move(backend));
    return raw;
  }

  std::unique_ptr<Enclave> enclave_;
  workload::SyntheticOcalls ids_;
};

TEST_F(SchedulerTest, MaxWorkersDefaultsToHalfTheCpus) {
  auto* backend = install(ZcConfig{});
  EXPECT_EQ(backend->max_workers(), 4u);  // 8 logical cpus / 2
}

TEST_F(SchedulerTest, InitialWorkersDefaultToMax) {
  auto* backend = install(ZcConfig{});
  EXPECT_EQ(backend->active_workers(), 4u);
}

TEST_F(SchedulerTest, ExplicitInitialWorkersRespected) {
  ZcConfig cfg;
  cfg.scheduler_enabled = false;
  cfg.with_initial_workers(1);
  auto* backend = install(cfg);
  EXPECT_EQ(backend->active_workers(), 1u);
}

TEST_F(SchedulerTest, SetActiveClampsToMax) {
  ZcConfig cfg;
  cfg.scheduler_enabled = false;
  auto* backend = install(cfg);
  backend->set_active_workers(100);
  EXPECT_EQ(backend->active_workers(), backend->max_workers());
  backend->set_active_workers(0);
  EXPECT_EQ(backend->active_workers(), 0u);
}

TEST_F(SchedulerTest, IdleWorkloadConvergesToZeroWorkers) {
  ZcConfig cfg;
  cfg.quantum = 5ms;
  auto* backend = install(cfg);
  // No calls at all: every probe sees F_i = 0, so U_i = i*window and the
  // scheduler must settle on 0 workers.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (backend->scheduler()->config_phases() >= 3 &&
        backend->active_workers() == 0) {
      break;
    }
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_GE(backend->scheduler()->config_phases(), 3u);
  EXPECT_EQ(backend->active_workers(), 0u);
  EXPECT_EQ(backend->scheduler()->last_decision(), 0u);
}

TEST_F(SchedulerTest, BusyWorkloadKeepsWorkers) {
  ZcConfig cfg;
  cfg.quantum = 5ms;
  auto* backend = install(cfg);

  // Hammer the backend from several threads while the scheduler probes.
  std::atomic<bool> stop{false};
  std::vector<std::jthread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      workload::FArgs args;
      while (!stop.load(std::memory_order_relaxed)) {
        enclave_->ocall(ids_.f_a, args);
      }
    });
  }
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  unsigned decision = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    if (backend->scheduler()->config_phases() >= 5) {
      decision = backend->scheduler()->last_decision();
      if (decision > 0) break;
    }
    std::this_thread::sleep_for(5ms);
  }
  stop.store(true);
  callers.clear();
  // Under saturation, fallbacks are expensive: the scheduler must keep at
  // least one worker.
  EXPECT_GT(decision, 0u);
}

TEST_F(SchedulerTest, OccupancyHistogramSumsToElapsedTime) {
  ZcConfig cfg;
  cfg.quantum = 5ms;
  auto* backend = install(cfg);
  std::this_thread::sleep_for(100ms);
  const auto occ = backend->scheduler()->occupancy_ns();
  ASSERT_EQ(occ.size(), backend->max_workers() + 1);
  const std::uint64_t total =
      std::accumulate(occ.begin(), occ.end(), std::uint64_t{0});
  // The histogram covers at least ~80% of the elapsed window.
  EXPECT_GT(total, 80'000'000u);
}

TEST_F(SchedulerTest, ConfigPhasesAdvance) {
  ZcConfig cfg;
  cfg.quantum = 5ms;
  auto* backend = install(cfg);
  std::this_thread::sleep_for(200ms);
  // Q=5ms + 5 probes of 50µs: ≥ 10 phases in 200 ms comfortably.
  EXPECT_GE(backend->scheduler()->config_phases(), 5u);
}

TEST_F(SchedulerTest, DisabledSchedulerNeverChangesWorkers) {
  ZcConfig cfg;
  cfg.scheduler_enabled = false;
  cfg.with_initial_workers(2);
  auto* backend = install(cfg);
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(backend->active_workers(), 2u);
  EXPECT_EQ(backend->scheduler()->config_phases(), 0u);
}

TEST_F(SchedulerTest, StopIsIdempotentAndRestartable) {
  ZcConfig cfg;
  cfg.quantum = 5ms;
  auto* backend = install(cfg);
  backend->scheduler()->stop();
  backend->scheduler()->stop();
  // Manual control still works after the feedback loop stops.
  backend->set_active_workers(1);
  EXPECT_EQ(backend->active_workers(), 1u);
}

}  // namespace
}  // namespace zc
