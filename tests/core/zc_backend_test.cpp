#include "core/zc_backend.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "common/cycles.hpp"

namespace zc {
namespace {

using namespace std::chrono_literals;

struct IncArgs {
  int x = 0;
};

struct SpinArgs {
  std::uint64_t cycles = 0;
};

class ZcBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig sim;
    sim.tes_cycles = 5'000;
    sim.logical_cpus = 8;
    enclave_ = Enclave::create(sim);
    inc_id_ = enclave_->ocalls().register_fn("inc", [](MarshalledCall& call) {
      static_cast<IncArgs*>(call.args)->x += 1;
    });
    spin_id_ =
        enclave_->ocalls().register_fn("spin", [](MarshalledCall& call) {
          burn_cycles(static_cast<SpinArgs*>(call.args)->cycles);
        });
  }

  ZcBackend* install(ZcConfig cfg) {
    auto backend = std::make_unique<ZcBackend>(*enclave_, cfg);
    auto* raw = backend.get();
    enclave_->set_backend(std::move(backend));
    return raw;
  }

  ZcConfig manual(unsigned workers) {
    ZcConfig cfg;
    cfg.scheduler_enabled = false;
    cfg.with_initial_workers(workers);
    return cfg;
  }

  std::unique_ptr<Enclave> enclave_;
  std::uint32_t inc_id_ = 0;
  std::uint32_t spin_id_ = 0;
};

TEST_F(ZcBackendTest, AnyOcallIsSwitchlessWhenWorkerIdle) {
  auto* backend = install(manual(2));
  IncArgs args;
  // No static selection: the id was never "configured" anywhere.
  EXPECT_EQ(enclave_->ocall(inc_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.x, 1);
  EXPECT_EQ(backend->stats().switchless_calls.load(), 1u);
  EXPECT_EQ(enclave_->transitions().eexit_count(), 0u);
}

TEST_F(ZcBackendTest, ZeroActiveWorkersFallsBackImmediately) {
  auto* backend = install(manual(0));
  IncArgs args;
  // Warm up thread-local state (scratch arena, lazy calibrations) so the
  // measurement isolates the fallback path itself.
  enclave_->ocall(inc_id_, args);
  const std::uint64_t t0 = rdtsc();
  EXPECT_EQ(enclave_->ocall(inc_id_, args), CallPath::kFallback);
  const std::uint64_t elapsed = rdtsc() - t0;
  EXPECT_EQ(args.x, 2);
  EXPECT_EQ(backend->stats().fallback_calls.load(), 2u);
  // "Immediately falls back ... without any busy waiting": the only cost is
  // the transition itself (plus marshalling). Budget 10x Tes.
  EXPECT_LT(elapsed, 50'000u);
}

TEST_F(ZcBackendTest, BusyWorkersCauseImmediateFallback) {
  auto* backend = install(manual(1));
  std::atomic<bool> started{false};
  std::jthread occupier([&] {
    SpinArgs args;
    args.cycles = 200'000'000;  // ~50 ms
    started.store(true);
    enclave_->ocall(spin_id_, args);
  });
  while (!started.load()) std::this_thread::yield();
  std::this_thread::sleep_for(5ms);

  IncArgs args;
  EXPECT_EQ(enclave_->ocall(inc_id_, args), CallPath::kFallback);
  EXPECT_EQ(args.x, 1);
  EXPECT_GE(backend->stats().fallback_calls.load(), 1u);
}

TEST_F(ZcBackendTest, ManyCallsAllExecuteExactlyOnce) {
  auto* backend = install(manual(4));
  std::atomic<int> executed{0};
  const auto count_id = enclave_->ocalls().register_fn(
      "count", [&executed](MarshalledCall&) { executed.fetch_add(1); });

  constexpr int kThreads = 8;
  constexpr int kPerThread = 1'000;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        IncArgs args;
        for (int i = 0; i < kPerThread; ++i) enclave_->ocall(count_id, args);
      });
    }
  }
  EXPECT_EQ(executed.load(), kThreads * kPerThread);
  EXPECT_EQ(backend->stats().total_calls(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // With 8 hammering threads and 4 workers, both paths must have been used.
  EXPECT_GT(backend->stats().switchless_calls.load(), 0u);
}

TEST_F(ZcBackendTest, PayloadRoundTripThroughWorker) {
  install(manual(1));
  const auto rev_id = enclave_->ocalls().register_fn(
      "reverse", [](MarshalledCall& call) {
        auto* p = static_cast<char*>(call.payload);
        std::reverse(p, p + call.payload_size);
      });
  IncArgs args;
  std::string in = "abcdef";
  std::string out(in.size(), '\0');
  CallDesc desc;
  desc.fn_id = rev_id;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.in_payload = in.data();
  desc.in_size = in.size();
  desc.out_payload = out.data();
  desc.out_size = out.size();
  EXPECT_EQ(enclave_->ocall(desc), CallPath::kSwitchless);
  EXPECT_EQ(out, "fedcba");
}

TEST_F(ZcBackendTest, OversizedRequestFallsBack) {
  ZcConfig cfg = manual(1);
  cfg.worker_pool_bytes = 1024;
  auto* backend = install(cfg);
  IncArgs args;
  std::vector<char> big(8192, 'x');
  EXPECT_EQ(enclave_->ocall_in(inc_id_, args, big.data(), big.size()),
            CallPath::kFallback);
  EXPECT_EQ(args.x, 1);
  EXPECT_GE(backend->stats().fallback_calls.load(), 1u);
}

TEST_F(ZcBackendTest, PoolResetsShowUpInStats) {
  ZcConfig cfg = manual(1);
  cfg.worker_pool_bytes = 2048;
  auto* backend = install(cfg);
  IncArgs args;
  for (int i = 0; i < 500; ++i) enclave_->ocall(inc_id_, args);
  EXPECT_GE(backend->stats().pool_resets.load(), 1u);
  EXPECT_EQ(args.x, 500);
}

TEST_F(ZcBackendTest, WorkScanPrefersLowWorkerIds) {
  auto* backend = install(manual(4));
  IncArgs args;
  for (int i = 0; i < 100; ++i) enclave_->ocall(inc_id_, args);
  const auto served = backend->per_worker_served();
  ASSERT_EQ(served.size(), 4u);
  // A single sequential caller always finds worker 0 idle.
  EXPECT_EQ(served[0], 100u);
  EXPECT_EQ(std::accumulate(served.begin(), served.end(), std::uint64_t{0}),
            100u);
}

TEST_F(ZcBackendTest, StoppedBackendRoutesRegular) {
  auto* backend = install(manual(2));
  backend->stop();
  IncArgs args;
  EXPECT_EQ(enclave_->ocall(inc_id_, args), CallPath::kRegular);
  EXPECT_EQ(args.x, 1);
  EXPECT_EQ(backend->stats().regular_calls.load(), 1u);
}

TEST_F(ZcBackendTest, StopIsIdempotent) {
  auto* backend = install(manual(2));
  backend->stop();
  backend->stop();
  EXPECT_EQ(backend->active_workers(), 0u);
}

TEST_F(ZcBackendTest, NameIsZc) {
  auto* backend = install(manual(1));
  EXPECT_STREQ(backend->name(), "zc");
}

TEST_F(ZcBackendTest, FallbackStillPaysTransition) {
  install(manual(0));
  IncArgs args;
  enclave_->ocall(inc_id_, args);
  EXPECT_EQ(enclave_->transitions().eexit_count(), 1u);
  EXPECT_EQ(enclave_->transitions().eenter_count(), 1u);
}

TEST_F(ZcBackendTest, SwitchlessPathNeverTransitions) {
  install(manual(2));
  IncArgs args;
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(enclave_->ocall(inc_id_, args), CallPath::kSwitchless);
  }
  EXPECT_EQ(enclave_->transitions().eexit_count(), 0u);
  EXPECT_EQ(enclave_->transitions().eenter_count(), 0u);
}

TEST_F(ZcBackendTest, MakeFactoryProducesWorkingBackend) {
  enclave_->set_backend(make_zc_backend(*enclave_, manual(1)));
  IncArgs args;
  EXPECT_EQ(enclave_->ocall(inc_id_, args), CallPath::kSwitchless);
}

}  // namespace
}  // namespace zc
