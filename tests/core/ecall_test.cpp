// Switchless ecalls: the paper's techniques applied in the opposite
// direction (§II) — trusted workers inside the enclave serve calls from
// untrusted client threads.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/zc_backend.hpp"
#include "intel_sl/intel_backend.hpp"

namespace zc {
namespace {

struct SquareArgs {
  int in = 0;
  int out = 0;
};

class EcallTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 5'000;
    cfg.logical_cpus = 8;
    enclave_ = Enclave::create(cfg);
    square_id_ =
        enclave_->ecalls().register_fn("square", [](MarshalledCall& call) {
          auto* a = static_cast<SquareArgs*>(call.args);
          a->out = a->in * a->in;
        });
  }

  std::unique_ptr<Enclave> enclave_;
  std::uint32_t square_id_ = 0;
};

TEST_F(EcallTest, EcallAndOcallTablesAreIndependent) {
  EXPECT_EQ(enclave_->ecalls().size(), 1u);
  EXPECT_EQ(enclave_->ocalls().size(), 0u);
  EXPECT_EQ(enclave_->ecalls().name(square_id_), "square");
}

TEST_F(EcallTest, RegularEcallPaysOneRoundTrip) {
  SquareArgs args;
  args.in = 12;
  EXPECT_EQ(enclave_->ecall_fn(square_id_, args), CallPath::kRegular);
  EXPECT_EQ(args.out, 144);
  EXPECT_EQ(enclave_->transitions().ecall_count(), 1u);
  EXPECT_STREQ(enclave_->ecall_backend().name(), "no_sl-ecall");
}

TEST_F(EcallTest, ZcEcallBackendServesSwitchlessly) {
  ZcConfig cfg;
  cfg.direction = CallDirection::kEcall;
  cfg.scheduler_enabled = false;
  cfg.with_initial_workers(2);
  enclave_->set_ecall_backend(std::make_unique<ZcBackend>(*enclave_, cfg));
  EXPECT_STREQ(enclave_->ecall_backend().name(), "zc-ecall");

  SquareArgs args;
  args.in = 9;
  EXPECT_EQ(enclave_->ecall_fn(square_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 81);
  // No transition at all: trusted workers served the request.
  EXPECT_EQ(enclave_->transitions().ecall_count(), 0u);
  EXPECT_EQ(enclave_->transitions().eenter_count(), 0u);
}

TEST_F(EcallTest, ZcEcallFallsBackWhenNoWorkers) {
  ZcConfig cfg;
  cfg.direction = CallDirection::kEcall;
  cfg.scheduler_enabled = false;
  cfg.with_initial_workers(0);
  enclave_->set_ecall_backend(std::make_unique<ZcBackend>(*enclave_, cfg));
  SquareArgs args;
  args.in = 3;
  EXPECT_EQ(enclave_->ecall_fn(square_id_, args), CallPath::kFallback);
  EXPECT_EQ(args.out, 9);
  EXPECT_EQ(enclave_->transitions().ecall_count(), 1u);  // fallback paid
}

TEST_F(EcallTest, IntelSwitchlessEcallsWork) {
  intel::IntelSlConfig cfg;
  cfg.direction = CallDirection::kEcall;
  cfg.num_workers = 2;  // num_tworkers
  // Unbounded rbf: on few-core hosts the default budget expires before a
  // trusted worker is scheduled, and this test asserts the switchless path.
  cfg.retries_before_fallback = 2'000'000'000;
  cfg.switchless_fns = {square_id_};
  enclave_->set_ecall_backend(
      std::make_unique<intel::IntelSwitchlessBackend>(*enclave_, cfg));
  SquareArgs args;
  args.in = 7;
  EXPECT_EQ(enclave_->ecall_fn(square_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 49);
  EXPECT_EQ(enclave_->transitions().ecall_count(), 0u);
}

TEST_F(EcallTest, IntelEcallOutsideStaticSetPaysTransition) {
  const auto other_id =
      enclave_->ecalls().register_fn("nop", [](MarshalledCall&) {});
  intel::IntelSlConfig cfg;
  cfg.direction = CallDirection::kEcall;
  cfg.num_workers = 2;
  cfg.switchless_fns = {square_id_};  // nop is not selected
  enclave_->set_ecall_backend(
      std::make_unique<intel::IntelSwitchlessBackend>(*enclave_, cfg));
  SquareArgs args;
  EXPECT_EQ(enclave_->ecall_fn(other_id, args), CallPath::kRegular);
  EXPECT_EQ(enclave_->transitions().ecall_count(), 1u);
}

TEST_F(EcallTest, ConcurrentUntrustedClients) {
  ZcConfig cfg;
  cfg.direction = CallDirection::kEcall;
  cfg.scheduler_enabled = false;
  cfg.with_initial_workers(4);
  enclave_->set_ecall_backend(std::make_unique<ZcBackend>(*enclave_, cfg));

  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> clients;
    for (int t = 0; t < 8; ++t) {
      clients.emplace_back([&, t] {
        for (int i = 0; i < 500; ++i) {
          SquareArgs args;
          args.in = t + i;
          enclave_->ecall_fn(square_id_, args);
          if (args.out != (t + i) * (t + i)) failures.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(EcallTest, BothDirectionsCoexist) {
  // Switchless ocalls and switchless ecalls on the same enclave.
  const auto echo_id =
      enclave_->ocalls().register_fn("echo", [](MarshalledCall& call) {
        static_cast<SquareArgs*>(call.args)->out = 1;
      });
  ZcConfig out_cfg;
  out_cfg.scheduler_enabled = false;
  out_cfg.with_initial_workers(1);
  enclave_->set_backend(std::make_unique<ZcBackend>(*enclave_, out_cfg));

  ZcConfig in_cfg;
  in_cfg.direction = CallDirection::kEcall;
  in_cfg.scheduler_enabled = false;
  in_cfg.with_initial_workers(1);
  enclave_->set_ecall_backend(std::make_unique<ZcBackend>(*enclave_, in_cfg));

  SquareArgs args;
  args.in = 5;
  EXPECT_EQ(enclave_->ecall_fn(square_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 25);
  EXPECT_EQ(enclave_->ocall(echo_id, args), CallPath::kSwitchless);
  EXPECT_EQ(args.out, 1);
  EXPECT_EQ(enclave_->transitions().eexit_count(), 0u);
  EXPECT_EQ(enclave_->transitions().ecall_count(), 0u);
}

TEST_F(EcallTest, SetEcallBackendNullRestoresRegular) {
  ZcConfig cfg;
  cfg.direction = CallDirection::kEcall;
  enclave_->set_ecall_backend(std::make_unique<ZcBackend>(*enclave_, cfg));
  enclave_->set_ecall_backend(nullptr);
  EXPECT_STREQ(enclave_->ecall_backend().name(), "no_sl-ecall");
  SquareArgs args;
  args.in = 2;
  EXPECT_EQ(enclave_->ecall_fn(square_id_, args), CallPath::kRegular);
  EXPECT_EQ(args.out, 4);
}

}  // namespace
}  // namespace zc
