// Doc-snippet conformance: every spec string quoted in
// docs/backend-specs.md, docs/architecture.md and docs/trace-replay.md
// (fenced blocks tagged `spec`) must parse and validate against the live
// registry, and every registered backend family must have at least one
// runnable example in the spec reference.  This is the
// machine check that keeps the documentation from drifting away from
// BackendSpec::parse and the registered option lists.
//
// ZC_DOCS_DIR is injected by CMakeLists.txt and points at the source
// tree's docs/ directory, so the test reads the same file a reader does.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/backend_registry.hpp"

namespace zc {
namespace {

#ifndef ZC_DOCS_DIR
#error "ZC_DOCS_DIR must point at the repo's docs/ directory"
#endif

std::string trimmed(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// Every line of every ```spec fenced block, in file order.
std::vector<std::string> extract_doc_specs(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::vector<std::string> specs;
  std::string line;
  bool in_spec_block = false;
  while (std::getline(in, line)) {
    const std::string t = trimmed(line);
    if (!in_spec_block) {
      in_spec_block = t == "```spec";
      continue;
    }
    if (t.rfind("```", 0) == 0) {
      in_spec_block = false;
      continue;
    }
    if (!t.empty()) specs.push_back(t);
  }
  EXPECT_FALSE(in_spec_block) << path << ": unterminated ```spec block";
  return specs;
}

const std::string kSpecsDoc = std::string(ZC_DOCS_DIR) + "/backend-specs.md";
const std::string kArchDoc = std::string(ZC_DOCS_DIR) + "/architecture.md";
const std::string kTraceDoc = std::string(ZC_DOCS_DIR) + "/trace-replay.md";

TEST(DocSpecsTest, EveryQuotedSpecValidatesAgainstTheRegistry) {
  for (const std::string& doc : {kSpecsDoc, kArchDoc, kTraceDoc}) {
    const auto specs = extract_doc_specs(doc);
    ASSERT_FALSE(specs.empty())
        << doc << " has no ```spec blocks — the reference lost its "
        << "runnable examples";
    for (const std::string& spec : specs) {
      // Grammar + backend key + option names (recursively through nested
      // inner= specs).  Option *values* are checked at create() time
      // against a concrete enclave (e.g. intel sl= name resolution) and
      // are intentionally out of scope here.
      EXPECT_NO_THROW(BackendRegistry::instance().validate(spec))
          << "documented spec does not validate: '" << spec << "'";
    }
  }
}

TEST(DocSpecsTest, EveryRegisteredFamilyHasARunnableExample) {
  std::set<std::string> documented;
  for (const std::string& spec : extract_doc_specs(kSpecsDoc)) {
    try {
      documented.insert(BackendSpec::parse(spec).key);
    } catch (const BackendSpecError&) {
      // The validation test reports the broken spec with a better message.
    }
  }
  for (const std::string& key : BackendRegistry::instance().keys()) {
    // Test-local registrations (e.g. the registry unit test's echo_test
    // clone) are not part of the documented surface.
    if (key.find("test") != std::string::npos) continue;
    EXPECT_TRUE(documented.contains(key))
        << "backend '" << key << "' has no ```spec example in " << kSpecsDoc;
  }
}

TEST(DocSpecsTest, DocumentedLoadAwareOptionsExist) {
  // The load-aware tuning surface this reference exists to teach must
  // stay real: these strings appear verbatim in the prose and must keep
  // validating even if the example blocks are rearranged.
  for (const char* spec :
       {"zc_sharded:policy=least_loaded;steal=on",
        "zc_batched:flush=feedback;quantum_us=2000",
        "zc_batched:flush=timer;flush_us=100"}) {
    EXPECT_NO_THROW(BackendRegistry::instance().validate(spec)) << spec;
  }
}

TEST(DocSpecsTest, DocumentedCompositionAndGateOptionsExist) {
  // The composition/wait surface added with the CompletionGate refactor:
  // nested inner= specs, the affinity_load escape hatch, load-ordered
  // steal victims and the four gate policies.
  for (const char* spec :
       {"zc_sharded:shards=2;inner=(zc_batched:workers=1;batch=4)",
        "zc_sharded:shards=2;inner=(zc_async:workers=1;queue=8)",
        "zc_sharded:shards=2;inner=(zc_sharded:shards=2;inner=(zc))",
        "zc_sharded:policy=affinity_load;load_threshold=2",
        "zc_sharded:steal=max_load",
        "zc:wait=futex;spin_us=0", "zc:wait=spin", "zc:wait=condvar",
        "zc_batched:wait=futex", "zc_async:wait=futex"}) {
    EXPECT_NO_THROW(BackendRegistry::instance().validate(spec)) << spec;
  }
  // And the documented validate-time negatives stay negative (value-level
  // ones like zc_async:wait=spin surface at create() and are covered by
  // the registry unit tests).
  for (const char* spec :
       {"zc:inner=(no_sl)",
        "zc_sharded:inner=(zc_sharded:inner=(zc_sharded:inner=(zc)))"}) {
    EXPECT_THROW(BackendRegistry::instance().validate(spec),
                 BackendSpecError)
        << spec;
  }
}

}  // namespace
}  // namespace zc
