#include "intel_sl/task_pool.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

namespace zc::intel {
namespace {

TEST(TaskPool, ZeroSlotsThrows) {
  EXPECT_THROW(TaskPool(0, 64), std::invalid_argument);
}

TEST(TaskPool, SlotsStartFreeWithFrames) {
  TaskPool pool(4, 128);
  EXPECT_EQ(pool.size(), 4u);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(pool.slot(i).status.load(), TaskStatus::kFree);
    EXPECT_NE(pool.slot(i).frame, nullptr);
    EXPECT_EQ(pool.slot(i).frame_capacity, 128u);
  }
}

TEST(TaskPool, ClaimTakesEachSlotOnce) {
  TaskPool pool(3, 64);
  std::vector<TaskSlot*> claimed;
  for (int i = 0; i < 3; ++i) {
    TaskSlot* s = pool.claim();
    ASSERT_NE(s, nullptr);
    claimed.push_back(s);
  }
  EXPECT_EQ(pool.claim(), nullptr);  // full
  // All distinct.
  EXPECT_NE(claimed[0], claimed[1]);
  EXPECT_NE(claimed[1], claimed[2]);
  EXPECT_NE(claimed[0], claimed[2]);
}

TEST(TaskPool, AcceptOnlySeesSubmitted) {
  TaskPool pool(2, 64);
  EXPECT_EQ(pool.accept(), nullptr);  // nothing submitted
  TaskSlot* s = pool.claim();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(pool.accept(), nullptr);  // claimed is not submitted
  s->status.store(TaskStatus::kSubmitted);
  TaskSlot* got = pool.accept();
  EXPECT_EQ(got, s);
  EXPECT_EQ(got->status.load(), TaskStatus::kAccepted);
  EXPECT_EQ(pool.accept(), nullptr);  // accepted exactly once
}

TEST(TaskPool, PendingCountsSubmittedOnly) {
  TaskPool pool(4, 64);
  EXPECT_EQ(pool.pending(), 0u);
  pool.slot(0).status.store(TaskStatus::kSubmitted);
  pool.slot(1).status.store(TaskStatus::kSubmitted);
  pool.slot(2).status.store(TaskStatus::kAccepted);
  EXPECT_EQ(pool.pending(), 2u);
}

TEST(TaskPool, FreeingASlotMakesItClaimableAgain) {
  TaskPool pool(1, 64);
  TaskSlot* s = pool.claim();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(pool.claim(), nullptr);
  s->status.store(TaskStatus::kFree);
  EXPECT_EQ(pool.claim(), s);
}

TEST(TaskPool, ConcurrentClaimsNeverAlias) {
  TaskPool pool(8, 64);
  std::vector<TaskSlot*> results(16, nullptr);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 16; ++t) {
      threads.emplace_back([&pool, &results, t] {
        results[static_cast<std::size_t>(t)] = pool.claim();
      });
    }
  }
  int claimed = 0;
  std::vector<TaskSlot*> seen;
  for (TaskSlot* s : results) {
    if (s != nullptr) {
      ++claimed;
      for (TaskSlot* other : seen) EXPECT_NE(s, other);
      seen.push_back(s);
    }
  }
  EXPECT_EQ(claimed, 8);  // exactly the pool size
}

TEST(TaskPool, ConcurrentAcceptsAreExclusive) {
  TaskPool pool(4, 64);
  for (std::size_t i = 0; i < 4; ++i) {
    pool.slot(i).status.store(TaskStatus::kSubmitted);
  }
  std::vector<TaskSlot*> results(8, nullptr);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&pool, &results, t] {
        results[static_cast<std::size_t>(t)] = pool.accept();
      });
    }
  }
  int accepted = 0;
  for (TaskSlot* s : results) {
    if (s != nullptr) ++accepted;
  }
  EXPECT_EQ(accepted, 4);
}

TEST(TaskPool, SlotsAreCacheLineAligned) {
  EXPECT_EQ(alignof(TaskSlot) % 64, 0u);
}

}  // namespace
}  // namespace zc::intel
