#include "intel_sl/intel_backend.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "../test_util.hpp"
#include "common/cycles.hpp"
#include "sgx/enclave.hpp"

namespace zc::intel {
namespace {

using namespace std::chrono_literals;

struct NopArgs {
  int x = 0;
};

struct SpinArgs {
  std::uint64_t cycles = 0;
};

// On few-core hosts the SDK's default rbf budget (20k pauses) expires
// before a worker thread is ever scheduled, turning every switchless
// attempt into a fallback.  Tests asserting the switchless *path* use an
// effectively unbounded rbf so the caller waits out the scheduler; the
// rbf-expiry behaviour itself is covered by RbfExpiryFallsBackWhenWorkersBusy.
constexpr std::uint32_t kWaitForWorker = 2'000'000'000;

class IntelBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 5'000;
    enclave_ = Enclave::create(cfg);
    nop_id_ = enclave_->ocalls().register_fn(
        "nop", [this](MarshalledCall& call) {
          auto* a = static_cast<NopArgs*>(call.args);
          a->x += 1;
          executions_.fetch_add(1);
        });
    spin_id_ = enclave_->ocalls().register_fn(
        "spin", [](MarshalledCall& call) {
          burn_cycles(static_cast<SpinArgs*>(call.args)->cycles);
        });
  }

  IntelSwitchlessBackend* install(IntelSlConfig cfg) {
    auto backend = std::make_unique<IntelSwitchlessBackend>(*enclave_, cfg);
    auto* raw = backend.get();
    enclave_->set_backend(std::move(backend));
    return raw;
  }

  std::unique_ptr<Enclave> enclave_;
  std::uint32_t nop_id_ = 0;
  std::uint32_t spin_id_ = 0;
  std::atomic<int> executions_{0};
};

TEST_F(IntelBackendTest, NonSwitchlessIdTakesRegularPath) {
  IntelSlConfig cfg;
  cfg.num_workers = 2;
  // switchless set is empty
  auto* backend = install(cfg);
  NopArgs args;
  EXPECT_EQ(enclave_->ocall(nop_id_, args), CallPath::kRegular);
  EXPECT_EQ(args.x, 1);
  EXPECT_EQ(backend->stats().regular_calls.load(), 1u);
  EXPECT_EQ(backend->stats().switchless_calls.load(), 0u);
  EXPECT_EQ(enclave_->transitions().eexit_count(), 1u);
}

TEST_F(IntelBackendTest, SwitchlessCallAvoidsTransition) {
  IntelSlConfig cfg;
  cfg.num_workers = 2;
  cfg.retries_before_fallback = kWaitForWorker;
  cfg.switchless_fns = {nop_id_};
  auto* backend = install(cfg);
  NopArgs args;
  const CallPath path = enclave_->ocall(nop_id_, args);
  EXPECT_EQ(path, CallPath::kSwitchless);
  EXPECT_EQ(args.x, 1);
  EXPECT_EQ(backend->stats().switchless_calls.load(), 1u);
  EXPECT_EQ(enclave_->transitions().eexit_count(), 0u);  // no transition!
}

TEST_F(IntelBackendTest, ZeroWorkersDisablesSwitchless) {
  IntelSlConfig cfg;
  cfg.num_workers = 0;
  cfg.switchless_fns = {nop_id_};
  install(cfg);
  NopArgs args;
  EXPECT_EQ(enclave_->ocall(nop_id_, args), CallPath::kRegular);
  EXPECT_EQ(args.x, 1);
}

TEST_F(IntelBackendTest, ManySwitchlessCallsAllExecute) {
  IntelSlConfig cfg;
  cfg.num_workers = 2;
  cfg.switchless_fns = {nop_id_};
  auto* backend = install(cfg);
  NopArgs args;
  constexpr int kCalls = 2'000;
  for (int i = 0; i < kCalls; ++i) enclave_->ocall(nop_id_, args);
  EXPECT_EQ(args.x, kCalls);
  EXPECT_EQ(executions_.load(), kCalls);
  EXPECT_EQ(backend->stats().total_calls(), static_cast<unsigned>(kCalls));
}

TEST_F(IntelBackendTest, RbfExpiryFallsBackWhenWorkersBusy) {
  // Needs the worker to *accept* the occupier's long call concurrently;
  // with one shared core that acceptance is a scheduler coin-flip.
  ZC_SKIP_IF_FEWER_CORES_THAN(2);
  IntelSlConfig cfg;
  cfg.num_workers = 1;
  cfg.retries_before_fallback = 100;  // short rbf for the test
  cfg.switchless_fns = {nop_id_, spin_id_};
  auto* backend = install(cfg);

  // Occupy the single worker with a long call from another thread.
  std::atomic<bool> long_call_started{false};
  std::jthread occupier([&] {
    SpinArgs args;
    args.cycles = 400'000'000;  // ~100 ms
    long_call_started.store(true);
    enclave_->ocall(spin_id_, args);
  });
  while (!long_call_started.load()) std::this_thread::yield();
  std::this_thread::sleep_for(10ms);  // ensure the worker picked it up

  NopArgs args;
  const CallPath path = enclave_->ocall(nop_id_, args);
  EXPECT_EQ(path, CallPath::kFallback);
  EXPECT_EQ(args.x, 1);  // still executed, via the regular path
  EXPECT_GE(backend->stats().fallback_calls.load(), 1u);
}

TEST_F(IntelBackendTest, OversizedFrameFallsBack) {
  IntelSlConfig cfg;
  cfg.num_workers = 1;
  cfg.slot_frame_bytes = 64;  // tiny slots
  cfg.switchless_fns = {nop_id_};
  install(cfg);
  NopArgs args;
  std::vector<char> big(4096, 'a');
  const CallPath path =
      enclave_->ocall_in(nop_id_, args, big.data(), big.size());
  EXPECT_EQ(path, CallPath::kFallback);
  EXPECT_EQ(args.x, 1);
}

TEST_F(IntelBackendTest, WorkersSleepAfterRbsAndWakeOnSubmit) {
  IntelSlConfig cfg;
  cfg.num_workers = 2;
  cfg.retries_before_fallback = kWaitForWorker;
  cfg.retries_before_sleep = 200;  // sleep almost immediately when idle
  cfg.switchless_fns = {nop_id_};
  auto* backend = install(cfg);

  // Idle long enough for both workers to park.
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (backend->sleeping_workers() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(backend->sleeping_workers(), 2u);
  EXPECT_GE(backend->stats().worker_sleeps.load(), 2u);

  // A switchless call must wake a worker and still complete.
  NopArgs args;
  EXPECT_EQ(enclave_->ocall(nop_id_, args), CallPath::kSwitchless);
  EXPECT_EQ(args.x, 1);
  EXPECT_GE(backend->stats().worker_wakeups.load(), 1u);
}

TEST_F(IntelBackendTest, PayloadsFlowThroughWorkers) {
  const auto echo_id = enclave_->ocalls().register_fn(
      "echo", [](MarshalledCall& call) {
        auto* p = static_cast<char*>(call.payload);
        for (std::size_t i = 0; i < call.payload_size; ++i) {
          p[i] = static_cast<char>(p[i] + 1);
        }
      });
  IntelSlConfig cfg;
  cfg.num_workers = 1;
  cfg.retries_before_fallback = kWaitForWorker;
  cfg.switchless_fns = {echo_id};
  install(cfg);

  NopArgs args;
  std::string data = "abc";
  std::string out(3, '\0');
  CallDesc desc;
  desc.fn_id = echo_id;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.in_payload = data.data();
  desc.in_size = data.size();
  desc.out_payload = out.data();
  desc.out_size = out.size();
  EXPECT_EQ(enclave_->ocall(desc), CallPath::kSwitchless);
  EXPECT_EQ(out, "bcd");
}

TEST_F(IntelBackendTest, StopDrainsAndFurtherCallsAreRegular) {
  IntelSlConfig cfg;
  cfg.num_workers = 2;
  cfg.switchless_fns = {nop_id_};
  auto* backend = install(cfg);
  NopArgs args;
  enclave_->ocall(nop_id_, args);
  backend->stop();
  EXPECT_EQ(backend->active_workers(), 0u);
  EXPECT_EQ(enclave_->ocall(nop_id_, args), CallPath::kRegular);
  EXPECT_EQ(args.x, 2);
}

TEST_F(IntelBackendTest, StartStopAreIdempotent) {
  IntelSlConfig cfg;
  cfg.num_workers = 1;
  cfg.switchless_fns = {nop_id_};
  auto* backend = install(cfg);
  backend->start();  // second start: no-op
  backend->stop();
  backend->stop();  // second stop: no-op
  NopArgs args;
  EXPECT_EQ(enclave_->ocall(nop_id_, args), CallPath::kRegular);
}

TEST_F(IntelBackendTest, ConcurrentCallersAreAllServed) {
  IntelSlConfig cfg;
  cfg.num_workers = 4;
  cfg.switchless_fns = {nop_id_};
  auto* backend = install(cfg);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        NopArgs args;
        for (int i = 0; i < kPerThread; ++i) enclave_->ocall(nop_id_, args);
      });
    }
  }
  EXPECT_EQ(executions_.load(), kThreads * kPerThread);
  EXPECT_EQ(backend->stats().total_calls(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(IntelBackendTest, DefaultsMatchSdkV214) {
  IntelSlConfig cfg;
  EXPECT_EQ(cfg.retries_before_fallback, 20'000u);
  EXPECT_EQ(cfg.retries_before_sleep, 20'000u);
  EXPECT_EQ(cfg.num_workers, 2u);
}

}  // namespace
}  // namespace zc::intel
