// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <thread>

namespace zc::testutil {

/// Logical CPUs of the host running the tests (not the simulated machine).
inline unsigned host_cpus() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace zc::testutil

/// Skips performance-comparison tests on hosts too narrow to run
/// switchless calls concurrently.  Every switchless design hands the call
/// to a busy-waiting worker thread; when caller and worker share one core
/// the hand-off costs a whole scheduler round instead of a cache-line
/// bounce, inverting every "switchless is faster" property the paper
/// (and these tests) assert.
#define ZC_SKIP_IF_FEWER_CORES_THAN(n)                                   \
  do {                                                                   \
    if (zc::testutil::host_cpus() < (n)) {                               \
      GTEST_SKIP() << "performance comparison needs >= " << (n)          \
                   << " host CPUs for concurrent busy-wait hand-offs; "  \
                   << "this host has " << zc::testutil::host_cpus();     \
    }                                                                    \
  } while (false)

namespace zc::testutil {

/// Unique temp path derived from the current test's full name.
/// Parameterized test names contain '/', which must not leak into paths.
inline std::filesystem::path unique_tmp_path(const std::string& prefix) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = std::string(info->test_suite_name()) + "_" + info->name();
  std::replace(name.begin(), name.end(), '/', '_');
  return std::filesystem::temp_directory_path() /
         (prefix + "_" + std::to_string(::getpid()) + "_" + name);
}

}  // namespace zc::testutil
