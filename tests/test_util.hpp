// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>

namespace zc::testutil {

/// Unique temp path derived from the current test's full name.
/// Parameterized test names contain '/', which must not leak into paths.
inline std::filesystem::path unique_tmp_path(const std::string& prefix) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = std::string(info->test_suite_name()) + "_" + info->name();
  std::replace(name.begin(), name.end(), '/', '_');
  return std::filesystem::temp_directory_path() /
         (prefix + "_" + std::to_string(::getpid()) + "_" + name);
}

}  // namespace zc::testutil
