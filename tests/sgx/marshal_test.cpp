#include "sgx/marshal.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "tlibc/memcpy.hpp"

namespace zc {
namespace {

struct DemoArgs {
  std::int32_t x = 0;
  std::int64_t ret = 0;
};

TEST(Marshal, FrameBytesCoversHeaderArgsAndPayload) {
  DemoArgs args;
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  EXPECT_GE(frame_bytes(desc), sizeof(FrameHeader) + sizeof(args));

  desc.in_size = 100;
  static char buf[100];
  desc.in_payload = buf;
  EXPECT_GE(frame_bytes(desc), sizeof(FrameHeader) + sizeof(args) + 100);
}

TEST(Marshal, PayloadCapacityIsMaxOfInOut) {
  CallDesc desc;
  desc.in_size = 64;
  desc.out_size = 256;
  EXPECT_EQ(desc.payload_capacity(), 256u);
  desc.in_size = 512;
  EXPECT_EQ(desc.payload_capacity(), 512u);
}

TEST(Marshal, ArgsRoundTrip) {
  DemoArgs args;
  args.x = 7;
  CallDesc desc;
  desc.fn_id = 3;
  desc.args = &args;
  desc.args_size = sizeof(args);

  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem.data(), desc);

  // The marshalled copy is a *copy*: mutating it must not touch trusted
  // memory until unmarshal.
  auto* umargs = static_cast<DemoArgs*>(call.args);
  EXPECT_EQ(umargs->x, 7);
  umargs->ret = 99;
  EXPECT_EQ(args.ret, 0);

  unmarshal_from(call, desc);
  EXPECT_EQ(args.ret, 99);
}

TEST(Marshal, InPayloadIsCopiedOut) {
  DemoArgs args;
  const std::string payload = "sensitive-plaintext";
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.in_payload = payload.data();
  desc.in_size = payload.size();

  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem.data(), desc);
  ASSERT_NE(call.payload, nullptr);
  EXPECT_EQ(call.payload_size, payload.size());
  EXPECT_EQ(std::memcmp(call.payload, payload.data(), payload.size()), 0);
}

TEST(Marshal, OutPayloadIsCopiedBack) {
  DemoArgs args;
  std::vector<char> out(32, '\0');
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.out_payload = out.data();
  desc.out_size = out.size();

  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem.data(), desc);
  std::memset(call.payload, 'Z', call.payload_size);
  unmarshal_from(call, desc);
  for (char c : out) EXPECT_EQ(c, 'Z');
}

TEST(Marshal, BidirectionalPayloadSharesOneArea) {
  DemoArgs args;
  const std::string in = "ping";
  std::vector<char> out(in.size(), '\0');
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.in_payload = in.data();
  desc.in_size = in.size();
  desc.out_payload = out.data();
  desc.out_size = out.size();

  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem.data(), desc);
  // Handler upper-cases in place.
  auto* p = static_cast<char*>(call.payload);
  for (std::size_t i = 0; i < call.payload_size; ++i) {
    p[i] = static_cast<char>(p[i] - 'a' + 'A');
  }
  unmarshal_from(call, desc);
  EXPECT_EQ(std::string(out.begin(), out.end()), "PING");
}

TEST(Marshal, FrameViewReconstructsMarshalledLayout) {
  DemoArgs args;
  args.x = 123;
  const std::string payload = "payload-bytes";
  CallDesc desc;
  desc.fn_id = 9;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.in_payload = payload.data();
  desc.in_size = payload.size();

  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall original = marshal_into(mem.data(), desc);
  MarshalledCall view = frame_view(mem.data());
  EXPECT_EQ(view.args, original.args);
  EXPECT_EQ(view.args_size, original.args_size);
  EXPECT_EQ(view.payload, original.payload);
  EXPECT_EQ(view.payload_size, original.payload_size);

  auto* header = reinterpret_cast<FrameHeader*>(mem.data());
  EXPECT_EQ(header->fn_id, 9u);
  EXPECT_EQ(header->args_size, sizeof(args));
}

TEST(Marshal, NoPayloadYieldsNullPayloadPointer) {
  DemoArgs args;
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem.data(), desc);
  EXPECT_EQ(call.payload, nullptr);
  EXPECT_EQ(call.payload_size, 0u);
}

TEST(Marshal, ArgsAreAlignedTo16) {
  DemoArgs args;
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  alignas(64) std::byte mem[256];
  MarshalledCall call = marshal_into(mem, desc);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(call.args) % 16, 0u);
}

class MarshalMemcpyKind : public ::testing::TestWithParam<tlibc::MemcpyKind> {};

TEST_P(MarshalMemcpyKind, RoundTripIdenticalUnderBothMemcpys) {
  tlibc::ScopedMemcpy guard(GetParam());
  DemoArgs args;
  args.x = -5;
  std::vector<char> out(1031, '\0');  // odd size: exercises unaligned paths
  std::vector<char> in(1031);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<char>(i * 17);
  }
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.in_payload = in.data();
  desc.in_size = in.size();
  desc.out_payload = out.data();
  desc.out_size = out.size();

  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem.data(), desc);
  unmarshal_from(call, desc);
  EXPECT_EQ(out, in);
}

INSTANTIATE_TEST_SUITE_P(BothKinds, MarshalMemcpyKind,
                         ::testing::Values(tlibc::MemcpyKind::kIntel,
                                           tlibc::MemcpyKind::kZc),
                         [](const auto& info) {
                           return std::string(tlibc::to_string(info.param));
                         });

}  // namespace
}  // namespace zc
