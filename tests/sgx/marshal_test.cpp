#include "sgx/marshal.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "tlibc/memcpy.hpp"

namespace zc {
namespace {

struct DemoArgs {
  std::int32_t x = 0;
  std::int64_t ret = 0;
};

TEST(Marshal, FrameBytesCoversHeaderArgsAndPayload) {
  DemoArgs args;
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  EXPECT_GE(frame_bytes(desc), sizeof(FrameHeader) + sizeof(args));

  desc.in_size = 100;
  static char buf[100];
  desc.in_payload = buf;
  EXPECT_GE(frame_bytes(desc), sizeof(FrameHeader) + sizeof(args) + 100);
}

TEST(Marshal, PayloadCapacityIsMaxOfInOut) {
  CallDesc desc;
  desc.in_size = 64;
  desc.out_size = 256;
  EXPECT_EQ(desc.payload_capacity(), 256u);
  desc.in_size = 512;
  EXPECT_EQ(desc.payload_capacity(), 512u);
}

TEST(Marshal, ArgsRoundTrip) {
  DemoArgs args;
  args.x = 7;
  CallDesc desc;
  desc.fn_id = 3;
  desc.args = &args;
  desc.args_size = sizeof(args);

  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem.data(), desc);

  // The marshalled copy is a *copy*: mutating it must not touch trusted
  // memory until unmarshal.
  auto* umargs = static_cast<DemoArgs*>(call.args);
  EXPECT_EQ(umargs->x, 7);
  umargs->ret = 99;
  EXPECT_EQ(args.ret, 0);

  unmarshal_from(call, desc);
  EXPECT_EQ(args.ret, 99);
}

TEST(Marshal, InPayloadIsCopiedOut) {
  DemoArgs args;
  const std::string payload = "sensitive-plaintext";
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.in_payload = payload.data();
  desc.in_size = payload.size();

  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem.data(), desc);
  ASSERT_NE(call.payload, nullptr);
  EXPECT_EQ(call.payload_size, payload.size());
  EXPECT_EQ(std::memcmp(call.payload, payload.data(), payload.size()), 0);
}

TEST(Marshal, OutPayloadIsCopiedBack) {
  DemoArgs args;
  std::vector<char> out(32, '\0');
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.out_payload = out.data();
  desc.out_size = out.size();

  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem.data(), desc);
  std::memset(call.payload, 'Z', call.payload_size);
  unmarshal_from(call, desc);
  for (char c : out) EXPECT_EQ(c, 'Z');
}

TEST(Marshal, BidirectionalPayloadSharesOneArea) {
  DemoArgs args;
  const std::string in = "ping";
  std::vector<char> out(in.size(), '\0');
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.in_payload = in.data();
  desc.in_size = in.size();
  desc.out_payload = out.data();
  desc.out_size = out.size();

  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem.data(), desc);
  // Handler upper-cases in place.
  auto* p = static_cast<char*>(call.payload);
  for (std::size_t i = 0; i < call.payload_size; ++i) {
    p[i] = static_cast<char>(p[i] - 'a' + 'A');
  }
  unmarshal_from(call, desc);
  EXPECT_EQ(std::string(out.begin(), out.end()), "PING");
}

TEST(Marshal, FrameViewReconstructsMarshalledLayout) {
  DemoArgs args;
  args.x = 123;
  const std::string payload = "payload-bytes";
  CallDesc desc;
  desc.fn_id = 9;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.in_payload = payload.data();
  desc.in_size = payload.size();

  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall original = marshal_into(mem.data(), desc);
  MarshalledCall view = frame_view(mem.data());
  EXPECT_EQ(view.args, original.args);
  EXPECT_EQ(view.args_size, original.args_size);
  EXPECT_EQ(view.payload, original.payload);
  EXPECT_EQ(view.payload_size, original.payload_size);

  auto* header = reinterpret_cast<FrameHeader*>(mem.data());
  EXPECT_EQ(header->fn_id, 9u);
  EXPECT_EQ(header->args_size, sizeof(args));
}

TEST(Marshal, NoPayloadYieldsNullPayloadPointer) {
  DemoArgs args;
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem.data(), desc);
  EXPECT_EQ(call.payload, nullptr);
  EXPECT_EQ(call.payload_size, 0u);
}

TEST(Marshal, ArgsAreAlignedTo16) {
  DemoArgs args;
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  alignas(64) std::byte mem[256];
  MarshalledCall call = marshal_into(mem, desc);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(call.args) % 16, 0u);
}

// --- Scatter-gather payloads -------------------------------------------------

TEST(MarshalScatterGather, GathersInSegmentsIntoOneContiguousPayload) {
  DemoArgs args;
  const std::string a = "alpha-", b = "beta-", c = "gamma";
  const IoVec segs[3] = {{a.data(), a.size()},
                         {b.data(), b.size()},
                         {c.data(), c.size()}};
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.in_segs = segs;
  desc.in_seg_count = 3;
  EXPECT_EQ(desc.total_in_size(), a.size() + b.size() + c.size());

  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem.data(), desc);
  ASSERT_NE(call.payload, nullptr);
  ASSERT_EQ(call.payload_size, desc.total_in_size());
  EXPECT_EQ(std::memcmp(call.payload, "alpha-beta-gamma", call.payload_size),
            0);
}

TEST(MarshalScatterGather, ScattersOutBytesAcrossSegments) {
  DemoArgs args;
  std::vector<char> head(4, '\0');
  std::vector<char> tail(12, '\0');
  const IoVecMut segs[2] = {{head.data(), head.size()},
                            {tail.data(), tail.size()}};
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.out_segs = segs;
  desc.out_seg_count = 2;
  EXPECT_EQ(desc.total_out_size(), 16u);

  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem.data(), desc);
  ASSERT_EQ(call.payload_size, 16u);
  std::memcpy(call.payload, "HEADtail-payload", 16);
  unmarshal_from(call, desc);
  EXPECT_EQ(std::string(head.begin(), head.end()), "HEAD");
  EXPECT_EQ(std::string(tail.begin(), tail.end()), "tail-payload");
}

TEST(MarshalScatterGather, ZeroLengthSegmentsAreSkipped) {
  DemoArgs args;
  const std::string a = "xy", b = "z";
  const IoVec in_segs[4] = {{nullptr, 0},
                            {a.data(), a.size()},
                            {nullptr, 0},
                            {b.data(), b.size()}};
  std::vector<char> out(3, '\0');
  const IoVecMut out_segs[3] = {{nullptr, 0},
                                {out.data(), out.size()},
                                {nullptr, 0}};
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.in_segs = in_segs;
  desc.in_seg_count = 4;
  desc.out_segs = out_segs;
  desc.out_seg_count = 3;
  EXPECT_EQ(desc.total_in_size(), 3u);
  EXPECT_EQ(desc.total_out_size(), 3u);

  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem.data(), desc);
  ASSERT_EQ(call.payload_size, 3u);
  EXPECT_EQ(std::memcmp(call.payload, "xyz", 3), 0);
  std::memcpy(call.payload, "ZYX", 3);
  unmarshal_from(call, desc);
  EXPECT_EQ(std::string(out.begin(), out.end()), "ZYX");
}

TEST(MarshalScatterGather, SegmentedRoundTripMatchesContiguous) {
  // The same logical payload marshalled segmented and contiguous must
  // produce identical frames, and the frame capacity must be reusable
  // across descriptor forms.
  DemoArgs args;
  std::vector<char> in(4096);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<char>(i * 31 + 7);
  }
  const IoVec segs[3] = {{in.data(), 1000},
                         {in.data() + 1000, 1},
                         {in.data() + 1001, in.size() - 1001}};
  CallDesc seg_desc;
  seg_desc.args = &args;
  seg_desc.args_size = sizeof(args);
  seg_desc.in_segs = segs;
  seg_desc.in_seg_count = 3;

  CallDesc flat_desc;
  flat_desc.args = &args;
  flat_desc.args_size = sizeof(args);
  flat_desc.in_payload = in.data();
  flat_desc.in_size = in.size();

  ASSERT_EQ(frame_bytes(seg_desc), frame_bytes(flat_desc));
  std::vector<std::byte> mem(frame_bytes(seg_desc));
  MarshalledCall seg_call = marshal_into(mem.data(), seg_desc);
  std::vector<std::byte> seg_frame(mem);  // snapshot

  // Reuse the same memory for the contiguous form.
  MarshalledCall flat_call = marshal_into(mem.data(), flat_desc);
  EXPECT_EQ(seg_call.payload_size, flat_call.payload_size);
  EXPECT_EQ(seg_frame, mem);
}

// --- Single-copy (in-place producer/consumer) --------------------------------

namespace single_copy {

struct ProduceCtx {
  const char* src;
  int calls = 0;
};

void fill_upper(void* dst, std::size_t n, void* ctx) {
  auto* c = static_cast<ProduceCtx*>(ctx);
  ++c->calls;
  for (std::size_t i = 0; i < n; ++i) {
    static_cast<char*>(dst)[i] =
        static_cast<char>(c->src[i] - 'a' + 'A');
  }
}

struct ConsumeCtx {
  std::vector<char> seen;
  int calls = 0;
};

void capture(const void* src, std::size_t n, void* ctx) {
  auto* c = static_cast<ConsumeCtx*>(ctx);
  ++c->calls;
  c->seen.assign(static_cast<const char*>(src),
                 static_cast<const char*>(src) + n);
}

}  // namespace single_copy

TEST(MarshalSingleCopy, ProducerWritesPayloadDirectlyIntoFrame) {
  DemoArgs args;
  single_copy::ProduceCtx ctx{"abcdef"};
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.in_size = 6;
  desc.produce_in = &single_copy::fill_upper;
  desc.inplace_ctx = &ctx;
  EXPECT_TRUE(desc.single_copy());
  EXPECT_EQ(copies_elided_by(desc), 1u);
  EXPECT_EQ(desc.total_in_size(), 6u);

  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem.data(), desc);
  ASSERT_EQ(call.payload_size, 6u);
  EXPECT_EQ(std::memcmp(call.payload, "ABCDEF", 6), 0);
  EXPECT_EQ(ctx.calls, 1);
  EXPECT_NE(call.flags & MarshalledCall::kSingleCopy, 0u);

  auto* header = reinterpret_cast<FrameHeader*>(mem.data());
  EXPECT_NE(header->flags & MarshalledCall::kSingleCopy, 0u);
  EXPECT_NE(frame_view(mem.data()).flags & MarshalledCall::kSingleCopy, 0u);
}

TEST(MarshalSingleCopy, ConsumerReadsPayloadDirectlyFromFrame) {
  DemoArgs args;
  single_copy::ConsumeCtx ctx;
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.out_size = 8;
  desc.consume_out = &single_copy::capture;
  desc.inplace_ctx = &ctx;
  EXPECT_EQ(copies_elided_by(desc), 1u);

  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem.data(), desc);
  ASSERT_EQ(call.payload_size, 8u);
  std::memcpy(call.payload, "RESULTS!", 8);
  unmarshal_from(call, desc);
  EXPECT_EQ(ctx.calls, 1);
  EXPECT_EQ(std::string(ctx.seen.begin(), ctx.seen.end()), "RESULTS!");
}

TEST(MarshalSingleCopy, BidirectionalElidesBothStagingCopies) {
  DemoArgs args;
  single_copy::ProduceCtx pctx{"hello"};
  single_copy::ConsumeCtx cctx;
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.in_size = 5;
  desc.out_size = 5;
  desc.produce_in = &single_copy::fill_upper;
  desc.consume_out = &single_copy::capture;
  desc.inplace_ctx = &pctx;  // producer runs first...
  EXPECT_EQ(copies_elided_by(desc), 2u);

  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem.data(), desc);
  EXPECT_EQ(std::memcmp(call.payload, "HELLO", 5), 0);
  desc.inplace_ctx = &cctx;  // ...then the consumer reads the echo back
  unmarshal_from(call, desc);
  EXPECT_EQ(std::string(cctx.seen.begin(), cctx.seen.end()), "HELLO");
}

TEST(MarshalSingleCopy, DoubleCopyDescriptorElidesNothing) {
  CallDesc desc;
  static char buf[8];
  desc.in_payload = buf;
  desc.in_size = sizeof(buf);
  EXPECT_FALSE(desc.single_copy());
  EXPECT_EQ(copies_elided_by(desc), 0u);
}

class MarshalMemcpyKind : public ::testing::TestWithParam<tlibc::MemcpyKind> {};

TEST_P(MarshalMemcpyKind, RoundTripIdenticalUnderBothMemcpys) {
  tlibc::ScopedMemcpy guard(GetParam());
  DemoArgs args;
  args.x = -5;
  std::vector<char> out(1031, '\0');  // odd size: exercises unaligned paths
  std::vector<char> in(1031);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<char>(i * 17);
  }
  CallDesc desc;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.in_payload = in.data();
  desc.in_size = in.size();
  desc.out_payload = out.data();
  desc.out_size = out.size();

  std::vector<std::byte> mem(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem.data(), desc);
  unmarshal_from(call, desc);
  EXPECT_EQ(out, in);
}

INSTANTIATE_TEST_SUITE_P(BothKinds, MarshalMemcpyKind,
                         ::testing::Values(tlibc::MemcpyKind::kIntel,
                                           tlibc::MemcpyKind::kZc),
                         [](const auto& info) {
                           return std::string(tlibc::to_string(info.param));
                         });

}  // namespace
}  // namespace zc
