#include "sgx/ocall_table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace zc {
namespace {

TEST(OcallTable, RegistersSequentialIds) {
  OcallTable table;
  const auto a = table.register_fn("a", [](MarshalledCall&) {});
  const auto b = table.register_fn("b", [](MarshalledCall&) {});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(table.size(), 2u);
}

TEST(OcallTable, RejectsNullHandler) {
  OcallTable table;
  EXPECT_THROW(table.register_fn("bad", OcallHandler{}),
               std::invalid_argument);
}

TEST(OcallTable, DispatchInvokesHandlerWithCall) {
  OcallTable table;
  int hits = 0;
  const auto id = table.register_fn("probe", [&hits](MarshalledCall& call) {
    ++hits;
    *static_cast<int*>(call.args) += 1;
  });
  int value = 41;
  MarshalledCall call;
  call.args = &value;
  call.args_size = sizeof(value);
  table.dispatch(id, call);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(value, 42);
}

TEST(OcallTable, DispatchOutOfRangeThrows) {
  OcallTable table;
  MarshalledCall call;
  EXPECT_THROW(table.dispatch(0, call), std::out_of_range);
  table.register_fn("x", [](MarshalledCall&) {});
  EXPECT_THROW(table.dispatch(1, call), std::out_of_range);
}

TEST(OcallTable, NameLookup) {
  OcallTable table;
  const auto id = table.register_fn("fseeko", [](MarshalledCall&) {});
  EXPECT_EQ(table.name(id), "fseeko");
  EXPECT_THROW(table.name(id + 1), std::out_of_range);
}

TEST(OcallTable, HandlersAreIndependent) {
  OcallTable table;
  int a_hits = 0;
  int b_hits = 0;
  const auto a = table.register_fn("a", [&](MarshalledCall&) { ++a_hits; });
  const auto b = table.register_fn("b", [&](MarshalledCall&) { ++b_hits; });
  MarshalledCall call;
  table.dispatch(b, call);
  table.dispatch(b, call);
  table.dispatch(a, call);
  EXPECT_EQ(a_hits, 1);
  EXPECT_EQ(b_hits, 2);
}

}  // namespace
}  // namespace zc
