#include "sgx/tlibc_stdio.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>

#include "../test_util.hpp"
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

namespace zc {
namespace {

class TlibcStdioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 500;
    enclave_ = Enclave::create(cfg);
    libc_ = std::make_unique<EnclaveLibc>(*enclave_);
    tmp_ = testutil::unique_tmp_path("zc_stdio");
  }
  void TearDown() override { std::filesystem::remove(tmp_); }

  std::unique_ptr<Enclave> enclave_;
  std::unique_ptr<EnclaveLibc> libc_;
  std::filesystem::path tmp_;
};

TEST_F(TlibcStdioTest, PosixReadWrite) {
  const int wfd = libc_->open("/dev/null", O_WRONLY);
  ASSERT_GE(wfd, 0);
  const std::uint64_t word = 1;
  EXPECT_EQ(libc_->write(wfd, &word, sizeof(word)),
            static_cast<std::int64_t>(sizeof(word)));
  EXPECT_EQ(libc_->close(wfd), 0);

  const int rfd = libc_->open("/dev/zero", O_RDONLY);
  ASSERT_GE(rfd, 0);
  std::uint64_t in = 99;
  EXPECT_EQ(libc_->read(rfd, &in, sizeof(in)),
            static_cast<std::int64_t>(sizeof(in)));
  EXPECT_EQ(in, 0u);
  EXPECT_EQ(libc_->close(rfd), 0);
}

TEST_F(TlibcStdioTest, EveryStdioOpIsAnOcall) {
  const std::uint64_t before = enclave_->transitions().eexit_count();
  TFile f = libc_->fopen(tmp_.c_str(), "w+b");
  ASSERT_TRUE(f);
  f.write("abc", 3);
  f.seek(0, SEEK_SET);
  char buf[3];
  f.read(buf, 3);
  f.close();
  // fopen + fwrite + fseeko + fread + fclose = 5 ocalls.
  EXPECT_EQ(enclave_->transitions().eexit_count() - before, 5u);
}

TEST_F(TlibcStdioTest, FopenFailureIsFalsy) {
  TFile f = libc_->fopen("/nonexistent/file", "rb");
  EXPECT_FALSE(f);
}

TEST_F(TlibcStdioTest, WriteSeekReadRoundTrip) {
  TFile f = libc_->fopen(tmp_.c_str(), "w+b");
  ASSERT_TRUE(f);
  const std::string data = "the quick brown fox";
  EXPECT_EQ(f.write(data.data(), data.size()), data.size());
  EXPECT_EQ(f.tell(), static_cast<std::int64_t>(data.size()));
  EXPECT_EQ(f.seek(4, SEEK_SET), 0);
  std::vector<char> buf(5);
  EXPECT_EQ(f.read(buf.data(), buf.size()), buf.size());
  EXPECT_EQ(std::string(buf.begin(), buf.end()), "quick");
}

TEST_F(TlibcStdioTest, SeekEndAndTellReportSize) {
  TFile f = libc_->fopen(tmp_.c_str(), "w+b");
  ASSERT_TRUE(f);
  f.write("12345678", 8);
  EXPECT_EQ(f.seek(0, SEEK_END), 0);
  EXPECT_EQ(f.tell(), 8);
}

TEST_F(TlibcStdioTest, CloseIsIdempotent) {
  TFile f = libc_->fopen(tmp_.c_str(), "wb");
  ASSERT_TRUE(f);
  EXPECT_EQ(f.close(), 0);
  EXPECT_EQ(f.close(), 0);  // second close is a no-op
  EXPECT_FALSE(f);
}

TEST_F(TlibcStdioTest, DestructorClosesFile) {
  const std::uint64_t before = enclave_->transitions().eexit_count();
  {
    TFile f = libc_->fopen(tmp_.c_str(), "wb");
    ASSERT_TRUE(f);
  }
  // fopen + destructor's fclose.
  EXPECT_EQ(enclave_->transitions().eexit_count() - before, 2u);
}

TEST_F(TlibcStdioTest, MoveTransfersOwnership) {
  TFile a = libc_->fopen(tmp_.c_str(), "wb");
  ASSERT_TRUE(a);
  TFile b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): checking moved-from
  EXPECT_TRUE(b);
  EXPECT_EQ(b.write("x", 1), 1u);
}

TEST_F(TlibcStdioTest, MoveAssignClosesPrevious) {
  const auto tmp2 = tmp_.string() + ".second";
  TFile a = libc_->fopen(tmp_.c_str(), "wb");
  TFile b = libc_->fopen(tmp2.c_str(), "wb");
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  a = std::move(b);
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);  // NOLINT(bugprone-use-after-move)
  a.close();
  std::filesystem::remove(tmp2);
}

TEST_F(TlibcStdioTest, FlushSucceedsOnOpenFile) {
  TFile f = libc_->fopen(tmp_.c_str(), "wb");
  ASSERT_TRUE(f);
  f.write("data", 4);
  EXPECT_EQ(f.flush(), 0);
}

TEST_F(TlibcStdioTest, LargePayloadRoundTrip) {
  // Forces the scratch arena to grow beyond its initial reservation.
  const std::size_t n = 1 << 20;
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(i);
  TFile f = libc_->fopen(tmp_.c_str(), "w+b");
  ASSERT_TRUE(f);
  ASSERT_EQ(f.write(out.data(), n), n);
  ASSERT_EQ(f.seek(0, SEEK_SET), 0);
  std::vector<std::uint8_t> in(n, 0);
  ASSERT_EQ(f.read(in.data(), n), n);
  EXPECT_EQ(in, out);
}

}  // namespace
}  // namespace zc
