#include "sgx/enclave.hpp"

#include <gtest/gtest.h>

#include <new>

#include "common/cycles.hpp"

namespace zc {
namespace {

SimConfig cheap_config() {
  SimConfig cfg;
  cfg.tes_cycles = 2'000;  // keep tests fast
  return cfg;
}

struct AddArgs {
  int a = 0;
  int b = 0;
  int sum = 0;
};

TEST(Enclave, CreateInstallsRegularBackendByDefault) {
  auto enclave = Enclave::create(cheap_config());
  EXPECT_STREQ(enclave->backend().name(), "no_sl");
  EXPECT_EQ(enclave->backend().active_workers(), 0u);
}

TEST(Enclave, EcallChargesOneRoundTrip) {
  auto enclave = Enclave::create(cheap_config());
  const int out = enclave->ecall([] { return 7; });
  EXPECT_EQ(out, 7);
  EXPECT_EQ(enclave->transitions().ecall_count(), 1u);
}

TEST(Enclave, TypedOcallDispatchesAndReturns) {
  auto enclave = Enclave::create(cheap_config());
  const auto id =
      enclave->ocalls().register_fn("add", [](MarshalledCall& call) {
        auto* a = static_cast<AddArgs*>(call.args);
        a->sum = a->a + a->b;
      });
  AddArgs args;
  args.a = 20;
  args.b = 22;
  const CallPath path = enclave->ocall(id, args);
  EXPECT_EQ(path, CallPath::kRegular);
  EXPECT_EQ(args.sum, 42);
  EXPECT_EQ(enclave->transitions().eexit_count(), 1u);
  EXPECT_EQ(enclave->transitions().eenter_count(), 1u);
}

TEST(Enclave, RegularOcallBurnsTransitionCycles) {
  SimConfig cfg = cheap_config();
  cfg.tes_cycles = 100'000;
  auto enclave = Enclave::create(cfg);
  const auto id = enclave->ocalls().register_fn("nop", [](MarshalledCall&) {});
  AddArgs args;
  const std::uint64_t c0 = rdtsc();
  enclave->ocall(id, args);
  EXPECT_GE(rdtsc() - c0, 100'000u);
}

TEST(Enclave, OcallInPayloadReachesHandler) {
  auto enclave = Enclave::create(cheap_config());
  std::string seen;
  const auto id =
      enclave->ocalls().register_fn("sink", [&seen](MarshalledCall& call) {
        seen.assign(static_cast<const char*>(call.payload),
                    call.payload_size);
      });
  AddArgs args;
  const std::string data = "hello-enclave";
  enclave->ocall_in(id, args, data.data(), data.size());
  EXPECT_EQ(seen, data);
}

TEST(Enclave, OcallOutPayloadComesBack) {
  auto enclave = Enclave::create(cheap_config());
  const auto id =
      enclave->ocalls().register_fn("fill", [](MarshalledCall& call) {
        auto* p = static_cast<char*>(call.payload);
        for (std::size_t i = 0; i < call.payload_size; ++i) p[i] = 'x';
      });
  AddArgs args;
  std::vector<char> buf(64, '\0');
  enclave->ocall_out(id, args, buf.data(), buf.size());
  for (char c : buf) EXPECT_EQ(c, 'x');
}

TEST(Enclave, BackendStatsCountRegularCalls) {
  auto enclave = Enclave::create(cheap_config());
  const auto id = enclave->ocalls().register_fn("nop", [](MarshalledCall&) {});
  AddArgs args;
  for (int i = 0; i < 5; ++i) enclave->ocall(id, args);
  EXPECT_EQ(enclave->backend().stats().regular_calls.load(), 5u);
  EXPECT_EQ(enclave->backend().stats().total_calls(), 5u);
}

TEST(Enclave, SetBackendNullRestoresRegular) {
  auto enclave = Enclave::create(cheap_config());
  enclave->set_backend(nullptr);
  EXPECT_STREQ(enclave->backend().name(), "no_sl");
}

TEST(EnclaveHeap, TracksUsageAndPeak) {
  auto enclave = Enclave::create(cheap_config());
  enclave->trusted_alloc(1000);
  enclave->trusted_alloc(500);
  EXPECT_EQ(enclave->trusted_heap_used(), 1500u);
  enclave->trusted_free(700);
  EXPECT_EQ(enclave->trusted_heap_used(), 800u);
  EXPECT_EQ(enclave->trusted_heap_peak(), 1500u);
}

TEST(EnclaveHeap, ThrowsOnHeapExhaustion) {
  SimConfig cfg = cheap_config();
  cfg.enclave_heap_bytes = 1024;
  auto enclave = Enclave::create(cfg);
  enclave->trusted_alloc(1024);
  EXPECT_THROW(enclave->trusted_alloc(1), std::bad_alloc);
}

TEST(EnclaveHeap, FreeBelowZeroClampsToZero) {
  auto enclave = Enclave::create(cheap_config());
  enclave->trusted_alloc(10);
  enclave->trusted_free(100);
  EXPECT_EQ(enclave->trusted_heap_used(), 0u);
}

TEST(EnclaveHeap, ChargesEpcFaultsBeyondUsableEpc) {
  SimConfig cfg = cheap_config();
  cfg.epc_usable_bytes = 8192;
  cfg.enclave_heap_bytes = 1 << 20;
  cfg.epc_page_fault_cycles = 1'000;
  auto enclave = Enclave::create(cfg);
  enclave->trusted_alloc(8192);
  EXPECT_EQ(enclave->epc_faults(), 0u);
  enclave->trusted_alloc(4096);  // one page over
  EXPECT_EQ(enclave->epc_faults(), 1u);
  enclave->trusted_alloc(8192);  // two more pages
  EXPECT_EQ(enclave->epc_faults(), 3u);
}

TEST(EnclaveHeap, DefaultBudgetsMatchPaperSetup) {
  SimConfig cfg;
  EXPECT_EQ(cfg.enclave_heap_bytes, std::size_t{1} << 30);  // 1 GB heap
  // 93.5 MB usable EPC (to within rounding of the constant).
  EXPECT_NEAR(static_cast<double>(cfg.epc_usable_bytes), 93.5 * 1024 * 1024,
              5.0 * 1024 * 1024);
  EXPECT_EQ(cfg.logical_cpus, 8u);
}

TEST(CallPathNames, AreStable) {
  EXPECT_STREQ(to_string(CallPath::kRegular), "regular");
  EXPECT_STREQ(to_string(CallPath::kSwitchless), "switchless");
  EXPECT_STREQ(to_string(CallPath::kFallback), "fallback");
}

}  // namespace
}  // namespace zc
