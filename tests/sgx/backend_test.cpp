#include "sgx/backend.hpp"

#include <gtest/gtest.h>

namespace zc {
namespace {

TEST(CallPathNames, CoverEveryPath) {
  EXPECT_STREQ(to_string(CallPath::kRegular), "regular");
  EXPECT_STREQ(to_string(CallPath::kSwitchless), "switchless");
  EXPECT_STREQ(to_string(CallPath::kFallback), "fallback");
}

TEST(CallDirectionNames, CoverBothDirections) {
  EXPECT_STREQ(to_string(CallDirection::kOcall), "ocall");
  EXPECT_STREQ(to_string(CallDirection::kEcall), "ecall");
}

TEST(BackendStats, TotalSumsAllThreePaths) {
  BackendStats stats;
  stats.regular_calls.add();
  stats.switchless_calls.add();
  stats.switchless_calls.add();
  stats.fallback_calls.add();
  EXPECT_EQ(stats.total_calls(), 4u);
}

}  // namespace
}  // namespace zc
