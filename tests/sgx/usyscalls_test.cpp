#include "sgx/usyscalls.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>

#include "../test_util.hpp"
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/cpu_meter.hpp"
#include "sgx/enclave.hpp"

namespace zc {
namespace {

class UsyscallsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 500;
    enclave_ = Enclave::create(cfg);
    ids_ = register_std_ocalls(enclave_->ocalls());
    tmp_ = testutil::unique_tmp_path("zc_usys");
  }
  void TearDown() override { std::filesystem::remove(tmp_); }

  std::unique_ptr<Enclave> enclave_;
  StdOcallIds ids_;
  std::filesystem::path tmp_;
};

TEST_F(UsyscallsTest, RegistersDistinctIds) {
  EXPECT_NE(ids_.read, ids_.write);
  EXPECT_NE(ids_.fopen, ids_.fclose);
  EXPECT_EQ(enclave_->ocalls().name(ids_.fseeko), "fseeko");
  EXPECT_EQ(enclave_->ocalls().name(ids_.usleep), "usleep");
}

TEST_F(UsyscallsTest, ReadFromDevZero) {
  OpenArgs open_args;
  std::snprintf(open_args.path, sizeof(open_args.path), "/dev/zero");
  open_args.flags = O_RDONLY;
  enclave_->ocall(ids_.open, open_args);
  ASSERT_GE(open_args.ret, 0);

  ReadArgs args;
  args.fd = open_args.ret;
  args.count = 8;
  std::uint64_t word = 0xFFFFFFFFFFFFFFFFULL;
  enclave_->ocall_out(ids_.read, args, &word, sizeof(word));
  EXPECT_EQ(args.ret, 8);
  EXPECT_EQ(word, 0u);  // /dev/zero delivers zeroes

  CloseArgs close_args;
  close_args.fd = open_args.ret;
  enclave_->ocall(ids_.close, close_args);
  EXPECT_EQ(close_args.ret, 0);
}

TEST_F(UsyscallsTest, WriteToDevNull) {
  OpenArgs open_args;
  std::snprintf(open_args.path, sizeof(open_args.path), "/dev/null");
  open_args.flags = O_WRONLY;
  enclave_->ocall(ids_.open, open_args);
  ASSERT_GE(open_args.ret, 0);

  WriteArgs args;
  args.fd = open_args.ret;
  args.count = 8;
  const std::uint64_t word = 42;
  enclave_->ocall_in(ids_.write, args, &word, sizeof(word));
  EXPECT_EQ(args.ret, 8);

  CloseArgs close_args;
  close_args.fd = open_args.ret;
  enclave_->ocall(ids_.close, close_args);
}

TEST_F(UsyscallsTest, OpenNonexistentPathFails) {
  OpenArgs args;
  std::snprintf(args.path, sizeof(args.path), "/nonexistent/dir/file");
  args.flags = O_RDONLY;
  enclave_->ocall(ids_.open, args);
  EXPECT_EQ(args.ret, -1);
}

TEST_F(UsyscallsTest, FopenMissingFileReturnsNullHandle) {
  FopenArgs args;
  std::snprintf(args.path, sizeof(args.path), "%s", tmp_.c_str());
  std::snprintf(args.mode, sizeof(args.mode), "rb");
  enclave_->ocall(ids_.fopen, args);
  EXPECT_EQ(args.handle, 0u);
}

TEST_F(UsyscallsTest, StdioWriteSeekReadRoundTrip) {
  FopenArgs fopen_args;
  std::snprintf(fopen_args.path, sizeof(fopen_args.path), "%s", tmp_.c_str());
  std::snprintf(fopen_args.mode, sizeof(fopen_args.mode), "w+b");
  enclave_->ocall(ids_.fopen, fopen_args);
  ASSERT_NE(fopen_args.handle, 0u);

  const std::string data = "0123456789";
  FwriteArgs fwrite_args;
  fwrite_args.handle = fopen_args.handle;
  fwrite_args.size = data.size();
  enclave_->ocall_in(ids_.fwrite, fwrite_args, data.data(), data.size());
  EXPECT_EQ(fwrite_args.ret, data.size());

  FtelloArgs ftello_args;
  ftello_args.handle = fopen_args.handle;
  enclave_->ocall(ids_.ftello, ftello_args);
  EXPECT_EQ(ftello_args.ret, static_cast<std::int64_t>(data.size()));

  FseekoArgs fseeko_args;
  fseeko_args.handle = fopen_args.handle;
  fseeko_args.offset = 3;
  fseeko_args.whence = SEEK_SET;
  enclave_->ocall(ids_.fseeko, fseeko_args);
  EXPECT_EQ(fseeko_args.ret, 0);

  FreadArgs fread_args;
  fread_args.handle = fopen_args.handle;
  fread_args.size = 4;
  char buf[4];
  enclave_->ocall_out(ids_.fread, fread_args, buf, sizeof(buf));
  EXPECT_EQ(fread_args.ret, 4u);
  EXPECT_EQ(std::string(buf, 4), "3456");

  FflushArgs fflush_args;
  fflush_args.handle = fopen_args.handle;
  enclave_->ocall(ids_.fflush, fflush_args);
  EXPECT_EQ(fflush_args.ret, 0);

  FcloseArgs fclose_args;
  fclose_args.handle = fopen_args.handle;
  enclave_->ocall(ids_.fclose, fclose_args);
  EXPECT_EQ(fclose_args.ret, 0);
}

TEST_F(UsyscallsTest, FcloseNullHandleIsError) {
  FcloseArgs args;
  args.handle = 0;
  enclave_->ocall(ids_.fclose, args);
  EXPECT_EQ(args.ret, -1);
}

TEST_F(UsyscallsTest, UsleepSleepsRoughly) {
  UsleepArgs args;
  args.usec = 20'000;
  const std::uint64_t t0 = wall_ns();
  enclave_->ocall(ids_.usleep, args);
  EXPECT_GE(wall_ns() - t0, 15'000'000u);  // >= 15 ms
}

}  // namespace
}  // namespace zc
