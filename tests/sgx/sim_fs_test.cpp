#include "sgx/sim_fs.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/cycles.hpp"
#include "sgx/tlibc_stdio.hpp"

namespace zc {
namespace {

class SimFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs().clear();
    fs().set_syscall_cycles(0);  // timing-free unit tests
  }
  void TearDown() override {
    fs().clear();
    fs().set_syscall_cycles(250);
  }
  static SimFs& fs() { return SimFs::instance(); }
};

TEST_F(SimFsTest, FopenRbOnMissingFileFails) {
  EXPECT_EQ(fs().fopen("nofile", "rb"), 0u);
  EXPECT_EQ(fs().fopen("nofile", "r+b"), 0u);
}

TEST_F(SimFsTest, FopenWbCreatesAndTruncates) {
  const auto h1 = fs().fopen("f", "wb");
  ASSERT_NE(h1, 0u);
  EXPECT_EQ(fs().fwrite("abcdef", 6, h1), 6u);
  fs().fclose(h1);
  EXPECT_EQ(fs().file_size("f"), 6u);

  const auto h2 = fs().fopen("f", "wb");  // truncates
  ASSERT_NE(h2, 0u);
  EXPECT_EQ(fs().file_size("f"), 0u);
  fs().fclose(h2);
}

TEST_F(SimFsTest, WriteSeekReadRoundTrip) {
  const auto h = fs().fopen("f", "w+b");
  ASSERT_NE(h, 0u);
  EXPECT_EQ(fs().fwrite("0123456789", 10, h), 10u);
  EXPECT_EQ(fs().ftello(h), 10);
  EXPECT_EQ(fs().fseeko(h, 3, SEEK_SET), 0);
  char buf[4];
  EXPECT_EQ(fs().fread(buf, 4, h), 4u);
  EXPECT_EQ(std::string(buf, 4), "3456");
  fs().fclose(h);
}

TEST_F(SimFsTest, SeekWhencesMatchStdio) {
  const auto h = fs().fopen("f", "w+b");
  fs().fwrite("abcdefgh", 8, h);
  EXPECT_EQ(fs().fseeko(h, -2, SEEK_END), 0);
  EXPECT_EQ(fs().ftello(h), 6);
  EXPECT_EQ(fs().fseeko(h, -3, SEEK_CUR), 0);
  EXPECT_EQ(fs().ftello(h), 3);
  EXPECT_EQ(fs().fseeko(h, -10, SEEK_SET), -1);  // negative target
  EXPECT_EQ(fs().fseeko(h, 0, 99), -1);          // bad whence
  fs().fclose(h);
}

TEST_F(SimFsTest, ReadAtEofReturnsZero) {
  const auto h = fs().fopen("f", "w+b");
  fs().fwrite("xy", 2, h);
  char buf[8];
  EXPECT_EQ(fs().fread(buf, 8, h), 0u);  // pos is at EOF after the write
  fs().fseeko(h, 0, SEEK_SET);
  EXPECT_EQ(fs().fread(buf, 8, h), 2u);  // short read at EOF
  fs().fclose(h);
}

TEST_F(SimFsTest, WriteBeyondEofZeroFills) {
  const auto h = fs().fopen("f", "w+b");
  fs().fseeko(h, 4, SEEK_SET);
  fs().fwrite("Z", 1, h);
  EXPECT_EQ(fs().file_size("f"), 5u);
  fs().fseeko(h, 0, SEEK_SET);
  char buf[5];
  EXPECT_EQ(fs().fread(buf, 5, h), 5u);
  EXPECT_EQ(buf[0], 0);
  EXPECT_EQ(buf[4], 'Z');
  fs().fclose(h);
}

TEST_F(SimFsTest, AppendModeAlwaysWritesAtEnd) {
  const auto h1 = fs().fopen("f", "wb");
  fs().fwrite("head", 4, h1);
  fs().fclose(h1);
  const auto h2 = fs().fopen("f", "ab");
  fs().fwrite("tail", 4, h2);
  fs().fclose(h2);
  EXPECT_EQ(fs().file_size("f"), 8u);
}

TEST_F(SimFsTest, ReadOnlyStreamRejectsWrites) {
  const auto w = fs().fopen("f", "wb");
  fs().fwrite("x", 1, w);
  fs().fclose(w);
  const auto r = fs().fopen("f", "rb");
  EXPECT_EQ(fs().fwrite("y", 1, r), 0u);
  fs().fclose(r);
}

TEST_F(SimFsTest, TwoStreamsShareOneFile) {
  const auto w = fs().fopen("f", "wb");
  const auto r = fs().fopen("f", "rb");
  ASSERT_NE(r, 0u);
  fs().fwrite("live", 4, w);
  char buf[4];
  EXPECT_EQ(fs().fread(buf, 4, r), 4u);
  EXPECT_EQ(std::string(buf, 4), "live");
  fs().fclose(w);
  fs().fclose(r);
}

TEST_F(SimFsTest, CloseIsNotIdempotentOnHandle) {
  const auto h = fs().fopen("f", "wb");
  EXPECT_EQ(fs().fclose(h), 0);
  EXPECT_EQ(fs().fclose(h), EOF);
  EXPECT_EQ(fs().fflush(h), EOF);
}

TEST_F(SimFsTest, DevZeroReadsZeroes) {
  const int fd = fs().open("/dev/zero", O_RDONLY);
  ASSERT_GE(fd, 0);
  std::uint64_t word = ~0ULL;
  EXPECT_EQ(fs().read(fd, &word, 8), 8);
  EXPECT_EQ(word, 0u);
  EXPECT_EQ(fs().close(fd), 0);
}

TEST_F(SimFsTest, DevNullSwallowsWrites) {
  const int fd = fs().open("/dev/null", O_WRONLY);
  ASSERT_GE(fd, 0);
  const std::uint64_t word = 42;
  EXPECT_EQ(fs().write(fd, &word, 8), 8);
  EXPECT_EQ(fs().close(fd), 0);
}

TEST_F(SimFsTest, FdPermissionsEnforced) {
  const int fd = fs().open("/dev/zero", O_RDONLY);
  std::uint64_t word = 0;
  EXPECT_EQ(fs().write(fd, &word, 8), -1);
  fs().close(fd);
  const int wfd = fs().open("/dev/null", O_WRONLY);
  EXPECT_EQ(fs().read(wfd, &word, 8), -1);
  fs().close(wfd);
}

TEST_F(SimFsTest, FdFileIoNeedsOCreat) {
  EXPECT_EQ(fs().open("newfile", O_RDWR), -1);
  const int fd = fs().open("newfile", O_RDWR | O_CREAT);
  ASSERT_GE(fd, 0);
  const char data[4] = {'d', 'a', 't', 'a'};
  EXPECT_EQ(fs().write(fd, data, 4), 4);
  fs().close(fd);
  EXPECT_TRUE(fs().exists("newfile"));
}

TEST_F(SimFsTest, BadFdAndBadHandleFail) {
  char buf[1];
  EXPECT_EQ(fs().read(12345, buf, 1), -1);
  EXPECT_EQ(fs().write(12345, buf, 1), -1);
  EXPECT_EQ(fs().close(12345), -1);
  EXPECT_EQ(fs().fread(buf, 1, 999), 0u);
  EXPECT_EQ(fs().fseeko(999, 0, SEEK_SET), -1);
  EXPECT_EQ(fs().ftello(999), -1);
}

TEST_F(SimFsTest, RemoveAndClear) {
  fs().fclose(fs().fopen("a", "wb"));
  fs().fclose(fs().fopen("b", "wb"));
  fs().remove("a");
  EXPECT_FALSE(fs().exists("a"));
  EXPECT_TRUE(fs().exists("b"));
  fs().clear();
  EXPECT_FALSE(fs().exists("b"));
}

TEST_F(SimFsTest, SyscallCostIsCharged) {
  fs().set_syscall_cycles(200'000);
  const std::uint64_t t0 = rdtsc();
  fs().fclose(fs().fopen("f", "wb"));  // two charged operations
  EXPECT_GE(rdtsc() - t0, 400'000u);
}

TEST_F(SimFsTest, ConcurrentWritersOnDistinctFiles) {
  std::vector<std::jthread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      const std::string path = "file" + std::to_string(t);
      const auto h = fs().fopen(path, "wb");
      for (int i = 0; i < 500; ++i) {
        fs().fwrite(&i, sizeof(i), h);
      }
      fs().fclose(h);
    });
  }
  threads.clear();
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(fs().file_size("file" + std::to_string(t)),
              500 * sizeof(int));
  }
}

TEST_F(SimFsTest, EnclaveLibcRoundTripThroughSimulatedWorld) {
  SimConfig cfg;
  cfg.tes_cycles = 100;
  auto enclave = Enclave::create(cfg);
  EnclaveLibc libc(*enclave, IoMode::kSimulated);
  EXPECT_EQ(libc.io_mode(), IoMode::kSimulated);

  TFile f = libc.fopen("sim_file", "w+b");
  ASSERT_TRUE(f);
  const std::string data = "through the enclave boundary";
  EXPECT_EQ(f.write(data.data(), data.size()), data.size());
  EXPECT_EQ(f.seek(0, SEEK_SET), 0);
  std::vector<char> buf(data.size());
  EXPECT_EQ(f.read(buf.data(), buf.size()), buf.size());
  EXPECT_EQ(std::string(buf.begin(), buf.end()), data);
  f.close();
  EXPECT_TRUE(fs().exists("sim_file"));

  const int zfd = libc.open("/dev/zero", O_RDONLY);
  std::uint64_t word = 7;
  EXPECT_EQ(libc.read(zfd, &word, 8), 8);
  EXPECT_EQ(word, 0u);
  libc.close(zfd);
}

}  // namespace
}  // namespace zc
