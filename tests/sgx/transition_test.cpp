#include "sgx/transition.hpp"

#include <gtest/gtest.h>

#include "common/cycles.hpp"

namespace zc {
namespace {

SimConfig small_config(std::uint64_t tes = 10'000) {
  SimConfig cfg;
  cfg.tes_cycles = tes;
  return cfg;
}

TEST(Transition, DefaultTesMatchesPaper) {
  SimConfig cfg;
  TransitionModel model(cfg);
  EXPECT_EQ(model.tes_cycles(), 13'500u);
}

TEST(Transition, CountsEexitAndEenter) {
  TransitionModel model(small_config());
  model.eexit();
  model.eexit();
  model.eenter();
  EXPECT_EQ(model.eexit_count(), 2u);
  EXPECT_EQ(model.eenter_count(), 1u);
  EXPECT_EQ(model.ecall_count(), 0u);
}

TEST(Transition, FullOcallBurnsTesCycles) {
  TransitionModel model(small_config(50'000));
  const std::uint64_t c0 = rdtsc();
  model.eexit();
  model.eenter();
  const std::uint64_t elapsed = rdtsc() - c0;
  EXPECT_GE(elapsed, 50'000u);
  EXPECT_EQ(model.burned_cycles(), 50'000u);
}

TEST(Transition, EexitFractionSplitsBudget) {
  SimConfig cfg = small_config(10'000);
  cfg.eexit_fraction = 0.8;
  TransitionModel model(cfg);
  const std::uint64_t c0 = rdtsc();
  model.eexit();
  const std::uint64_t exit_cycles = rdtsc() - c0;
  // 80% of 10k = 8k; allow calibration slack.
  EXPECT_GE(exit_cycles, 8'000u);
  model.eenter();
  EXPECT_EQ(model.burned_cycles(), 10'000u);  // halves always sum to Tes
}

TEST(Transition, FractionIsClamped) {
  SimConfig cfg = small_config(10'000);
  cfg.eexit_fraction = 7.0;  // out of range -> clamped to 1.0
  TransitionModel model(cfg);
  model.eexit();
  model.eenter();
  EXPECT_EQ(model.burned_cycles(), 10'000u);
}

TEST(Transition, EcallRoundtripChargesTes) {
  TransitionModel model(small_config(20'000));
  const std::uint64_t c0 = rdtsc();
  model.ecall_roundtrip();
  EXPECT_GE(rdtsc() - c0, 20'000u);
  EXPECT_EQ(model.ecall_count(), 1u);
  EXPECT_EQ(model.burned_cycles(), 20'000u);
}

TEST(Transition, ZeroCostModelIsFree) {
  TransitionModel model(small_config(0));
  model.eexit();
  model.eenter();
  model.ecall_roundtrip();
  EXPECT_EQ(model.burned_cycles(), 0u);
  EXPECT_EQ(model.eexit_count(), 1u);
}

}  // namespace
}  // namespace zc
