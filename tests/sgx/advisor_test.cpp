#include "sgx/advisor.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace zc {
namespace {

constexpr std::uint64_t kTes = 13'500;

OcallTable three_fns() {
  OcallTable t;
  t.register_fn("hot_short", [](MarshalledCall&) {});
  t.register_fn("hot_long", [](MarshalledCall&) {});
  t.register_fn("rare_short", [](MarshalledCall&) {});
  return t;
}

TEST(Advisor, EmptyProfileYieldsEmptyReport) {
  CallProfiler prof;
  const auto names = three_fns();
  const auto report = advise_switchless(prof, names, kTes);
  EXPECT_TRUE(report.per_fn.empty());
  EXPECT_TRUE(report.switchless_set.empty());
  EXPECT_EQ(report.workers_hint, 0u);
}

TEST(Advisor, RecommendsShortFrequentCalls) {
  CallProfiler prof;
  const auto names = three_fns();
  // fn 0: 1000 regular calls, ~Tes + 500 cycles each -> body ≈ 500 (short).
  for (int i = 0; i < 1000; ++i) {
    prof.record(0, CallPath::kRegular, kTes + 500);
  }
  // fn 1: 1000 regular calls with a 100k-cycle body (long).
  for (int i = 0; i < 1000; ++i) {
    prof.record(1, CallPath::kRegular, kTes + 100'000);
  }
  // fn 2: 5 short calls (rare: 0.25% of total).
  for (int i = 0; i < 5; ++i) {
    prof.record(2, CallPath::kRegular, kTes + 100);
  }
  const auto report = advise_switchless(prof, names, kTes);
  ASSERT_EQ(report.per_fn.size(), 3u);
  EXPECT_EQ(report.switchless_set, std::vector<std::uint32_t>{0});
  EXPECT_TRUE(report.per_fn[0].make_switchless);
  EXPECT_FALSE(report.per_fn[1].make_switchless);
  EXPECT_FALSE(report.per_fn[2].make_switchless);
  EXPECT_NE(report.per_fn[1].reason.find("too long"), std::string::npos);
  EXPECT_NE(report.per_fn[2].reason.find("rare"), std::string::npos);
  EXPECT_GE(report.workers_hint, 1u);
}

TEST(Advisor, SubtractsTransitionCostForSwitchlessSamples) {
  // Calls observed *switchless* have no transition baked into their cost:
  // mean 12,000 cycles of pure body is NOT short relative to Tes=13,500
  // times a 0.5 ratio policy.
  CallProfiler prof;
  const auto names = three_fns();
  for (int i = 0; i < 100; ++i) {
    prof.record(0, CallPath::kSwitchless, 12'000);
  }
  AdvisorPolicy strict;
  strict.short_call_tes_ratio = 0.5;  // bar: 6,750 cycles
  const auto report = advise_switchless(prof, names, kTes, strict);
  EXPECT_FALSE(report.per_fn[0].make_switchless);

  // The same observed mean on *regular* calls implies body ≈ 0: short.
  CallProfiler prof2;
  for (int i = 0; i < 100; ++i) {
    prof2.record(0, CallPath::kRegular, 12'000);
  }
  const auto report2 = advise_switchless(prof2, names, kTes, strict);
  EXPECT_TRUE(report2.per_fn[0].make_switchless);
}

TEST(Advisor, CallShareThresholdIsConfigurable) {
  CallProfiler prof;
  const auto names = three_fns();
  for (int i = 0; i < 99; ++i) prof.record(0, CallPath::kRegular, kTes);
  prof.record(2, CallPath::kRegular, kTes);  // 1% of calls
  AdvisorPolicy lenient;
  lenient.min_call_share = 0.005;
  const auto report = advise_switchless(prof, names, kTes, lenient);
  EXPECT_EQ(report.switchless_set.size(), 2u);

  AdvisorPolicy strict;
  strict.min_call_share = 0.05;
  const auto strict_report = advise_switchless(prof, names, kTes, strict);
  EXPECT_EQ(strict_report.switchless_set,
            std::vector<std::uint32_t>{0});
}

TEST(Advisor, WorkersHintIsCappedByPolicy) {
  CallProfiler prof;
  const auto names = three_fns();
  for (int i = 0; i < 1000; ++i) prof.record(0, CallPath::kRegular, kTes);
  AdvisorPolicy policy;
  policy.max_workers_hint = 2;
  const auto report = advise_switchless(prof, names, kTes, policy);
  EXPECT_GE(report.workers_hint, 1u);
  EXPECT_LE(report.workers_hint, 2u);
}

TEST(Advisor, NamesResolveFromTable) {
  CallProfiler prof;
  const auto names = three_fns();
  prof.record(1, CallPath::kRegular, kTes);
  const auto report = advise_switchless(prof, names, kTes);
  ASSERT_EQ(report.per_fn.size(), 1u);
  EXPECT_EQ(report.per_fn[0].name, "hot_long");
}

}  // namespace
}  // namespace zc
