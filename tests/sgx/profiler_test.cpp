#include "sgx/profiler.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "core/zc_backend.hpp"
#include "sgx/enclave.hpp"

namespace zc {
namespace {

TEST(CallProfiler, StartsEmpty) {
  CallProfiler prof;
  EXPECT_EQ(prof.total_calls(), 0u);
  EXPECT_TRUE(prof.active_ids().empty());
  EXPECT_EQ(prof.stats(0).calls, 0u);
  EXPECT_EQ(prof.stats(0).min_cycles, 0u);
}

TEST(CallProfiler, RecordsPerPathCounts) {
  CallProfiler prof;
  prof.record(3, CallPath::kSwitchless, 100);
  prof.record(3, CallPath::kSwitchless, 200);
  prof.record(3, CallPath::kFallback, 5'000);
  prof.record(3, CallPath::kRegular, 14'000);
  const auto s = prof.stats(3);
  EXPECT_EQ(s.calls, 4u);
  EXPECT_EQ(s.switchless, 2u);
  EXPECT_EQ(s.fallback, 1u);
  EXPECT_EQ(s.regular, 1u);
  EXPECT_EQ(s.total_cycles, 19'300u);
  EXPECT_EQ(s.min_cycles, 100u);
  EXPECT_EQ(s.max_cycles, 14'000u);
  EXPECT_DOUBLE_EQ(s.mean_cycles(), 19'300.0 / 4.0);
  EXPECT_DOUBLE_EQ(s.switchless_ratio(), 0.5);
}

TEST(CallProfiler, IdsAreIndependent) {
  CallProfiler prof;
  prof.record(1, CallPath::kRegular, 10);
  prof.record(7, CallPath::kSwitchless, 20);
  EXPECT_EQ(prof.stats(1).calls, 1u);
  EXPECT_EQ(prof.stats(7).calls, 1u);
  EXPECT_EQ(prof.stats(2).calls, 0u);
  EXPECT_EQ(prof.active_ids(), (std::vector<std::uint32_t>{1, 7}));
  EXPECT_EQ(prof.total_calls(), 2u);
}

TEST(CallProfiler, OverflowIdsGoToOverflowBucket) {
  CallProfiler prof;
  prof.record(CallProfiler::kMaxFns + 5, CallPath::kRegular, 1);
  prof.record(CallProfiler::kMaxFns + 9, CallPath::kRegular, 1);
  EXPECT_EQ(prof.total_calls(), 2u);
  EXPECT_EQ(prof.stats(CallProfiler::kMaxFns + 123).calls, 2u);
}

TEST(CallProfiler, ResetClearsEverything) {
  CallProfiler prof;
  prof.record(0, CallPath::kRegular, 42);
  prof.reset();
  EXPECT_EQ(prof.total_calls(), 0u);
  EXPECT_EQ(prof.stats(0).min_cycles, 0u);
  EXPECT_EQ(prof.stats(0).max_cycles, 0u);
}

TEST(CallProfiler, ConcurrentRecordsAreLossless) {
  CallProfiler prof;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&prof, t] {
        for (int i = 0; i < kPerThread; ++i) {
          prof.record(static_cast<std::uint32_t>(t % 4),
                      CallPath::kSwitchless, 7);
        }
      });
    }
  }
  EXPECT_EQ(prof.total_calls(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(CallProfiler, ReportRendersNamesAndSorts) {
  OcallTable names;
  const auto cheap = names.register_fn("cheap", [](MarshalledCall&) {});
  const auto costly = names.register_fn("costly", [](MarshalledCall&) {});
  CallProfiler prof;
  prof.record(cheap, CallPath::kSwitchless, 10);
  prof.record(costly, CallPath::kRegular, 100'000);
  const Table report = prof.report(names);
  EXPECT_EQ(report.rows(), 2u);
  std::ostringstream os;
  report.print(os);
  const std::string out = os.str();
  // Sorted by total cycles: "costly" must appear before "cheap".
  EXPECT_LT(out.find("costly"), out.find("cheap"));
}

TEST(EnclaveProfiler, ObservesOcallsWhenAttached) {
  SimConfig cfg;
  cfg.tes_cycles = 1'000;
  auto enclave = Enclave::create(cfg);
  const auto id = enclave->ocalls().register_fn("probe", [](MarshalledCall&) {});

  CallProfiler prof;
  enclave->set_profiler(&prof);
  struct A {
    int x;
  } args{0};
  for (int i = 0; i < 10; ++i) enclave->ocall(id, args);
  EXPECT_EQ(prof.stats(id).calls, 10u);
  EXPECT_EQ(prof.stats(id).regular, 10u);
  // Each regular call costs at least the transition.
  EXPECT_GE(prof.stats(id).min_cycles, 1'000u);

  enclave->set_profiler(nullptr);
  enclave->ocall(id, args);
  EXPECT_EQ(prof.stats(id).calls, 10u);  // detached: no new records
}

TEST(EnclaveProfiler, SeparatesPathsUnderZcBackend) {
  SimConfig cfg;
  cfg.tes_cycles = 1'000;
  auto enclave = Enclave::create(cfg);
  const auto id = enclave->ocalls().register_fn("probe", [](MarshalledCall&) {});
  CallProfiler prof;
  enclave->set_profiler(&prof);

  ZcConfig zcfg;
  zcfg.scheduler_enabled = false;
  zcfg.with_initial_workers(1);
  enclave->set_backend(std::make_unique<ZcBackend>(*enclave, zcfg));
  struct A {
    int x;
  } args{0};
  for (int i = 0; i < 5; ++i) enclave->ocall(id, args);

  auto* backend = static_cast<ZcBackend*>(&enclave->backend());
  backend->set_active_workers(0);
  for (int i = 0; i < 3; ++i) enclave->ocall(id, args);

  const auto s = prof.stats(id);
  EXPECT_EQ(s.switchless, 5u);
  EXPECT_EQ(s.fallback, 3u);
  EXPECT_EQ(s.calls, 8u);
}

TEST(EnclaveProfiler, ObservesEcalls) {
  SimConfig cfg;
  cfg.tes_cycles = 1'000;
  auto enclave = Enclave::create(cfg);
  const auto id = enclave->ecalls().register_fn("tfn", [](MarshalledCall&) {});
  CallProfiler prof;
  enclave->set_profiler(&prof);
  struct A {
    int x;
  } args{0};
  enclave->ecall_fn(id, args);
  EXPECT_EQ(prof.stats(id).calls, 1u);
  EXPECT_EQ(prof.stats(id).regular, 1u);
}

}  // namespace
}  // namespace zc
