#include "sgx/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

namespace zc {
namespace {

TEST(ScratchArena, ProvidesRequestedCapacity) {
  ScratchArena arena(1024);
  EXPECT_EQ(arena.capacity(), 1024u);
  void* p = arena.acquire(512);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 512);  // must be writable
}

TEST(ScratchArena, GrowsBeyondInitialReservation) {
  ScratchArena arena(64);
  void* p = arena.acquire(10'000);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(arena.capacity(), 10'000u);
  std::memset(p, 0, 10'000);
}

TEST(ScratchArena, GrowthIsGeometric) {
  ScratchArena arena(100);
  arena.acquire(101);
  const std::size_t first_growth = arena.capacity();
  EXPECT_GE(first_growth, 200u);  // at least doubles
}

TEST(ScratchArena, ReusesBufferForSmallerRequests) {
  ScratchArena arena(4096);
  void* a = arena.acquire(1000);
  void* b = arena.acquire(500);
  EXPECT_EQ(a, b);  // same buffer, no reallocation
  EXPECT_EQ(arena.capacity(), 4096u);
}

TEST(ScratchArena, AcquireIsCacheLineAligned) {
  // Frames must keep 64-byte alignment (slab pool parity), both from the
  // initial reservation and after every growth reallocation.
  ScratchArena arena(256);
  for (const std::size_t n : {1u, 64u, 257u, 4096u, 100'000u}) {
    void* p = arena.acquire(n);
    ASSERT_NE(p, nullptr) << n;
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u) << n;
  }
}

TEST(ScratchArena, GrowCountTracksReallocationsOnly) {
  ScratchArena arena(1024);
  EXPECT_EQ(arena.grow_count(), 0u);
  arena.acquire(512);  // within reservation
  arena.acquire(1024);
  EXPECT_EQ(arena.grow_count(), 0u);
  arena.acquire(2048);  // first growth
  EXPECT_EQ(arena.grow_count(), 1u);
  const std::size_t high_water = arena.capacity();
  arena.acquire(1500);  // below the high-water mark: reuse, no growth
  arena.acquire(high_water);
  EXPECT_EQ(arena.grow_count(), 1u);
  EXPECT_EQ(arena.capacity(), high_water);
  arena.acquire(high_water + 1);  // watermark rises again
  EXPECT_EQ(arena.grow_count(), 2u);
}

TEST(ScratchArena, ThreadLocalInstancesAreDistinct) {
  void* main_ptr = ScratchArena::for_current_thread().acquire(64);
  void* other_ptr = nullptr;
  std::jthread t([&other_ptr] {
    other_ptr = ScratchArena::for_current_thread().acquire(64);
  });
  t.join();
  EXPECT_NE(main_ptr, nullptr);
  EXPECT_NE(other_ptr, nullptr);
  EXPECT_NE(main_ptr, other_ptr);
}

TEST(ScratchArena, ThreadLocalPersistsAcrossCalls) {
  void* a = ScratchArena::for_current_thread().acquire(128);
  void* b = ScratchArena::for_current_thread().acquire(128);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace zc
