#include "sgx/arena.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace zc {
namespace {

TEST(ScratchArena, ProvidesRequestedCapacity) {
  ScratchArena arena(1024);
  EXPECT_EQ(arena.capacity(), 1024u);
  void* p = arena.acquire(512);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 512);  // must be writable
}

TEST(ScratchArena, GrowsBeyondInitialReservation) {
  ScratchArena arena(64);
  void* p = arena.acquire(10'000);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(arena.capacity(), 10'000u);
  std::memset(p, 0, 10'000);
}

TEST(ScratchArena, GrowthIsGeometric) {
  ScratchArena arena(100);
  arena.acquire(101);
  const std::size_t first_growth = arena.capacity();
  EXPECT_GE(first_growth, 200u);  // at least doubles
}

TEST(ScratchArena, ReusesBufferForSmallerRequests) {
  ScratchArena arena(4096);
  void* a = arena.acquire(1000);
  void* b = arena.acquire(500);
  EXPECT_EQ(a, b);  // same buffer, no reallocation
  EXPECT_EQ(arena.capacity(), 4096u);
}

TEST(ScratchArena, ThreadLocalInstancesAreDistinct) {
  void* main_ptr = ScratchArena::for_current_thread().acquire(64);
  void* other_ptr = nullptr;
  std::jthread t([&other_ptr] {
    other_ptr = ScratchArena::for_current_thread().acquire(64);
  });
  t.join();
  EXPECT_NE(main_ptr, nullptr);
  EXPECT_NE(other_ptr, nullptr);
  EXPECT_NE(main_ptr, other_ptr);
}

TEST(ScratchArena, ThreadLocalPersistsAcrossCalls) {
  void* a = ScratchArena::for_current_thread().acquire(128);
  void* b = ScratchArena::for_current_thread().acquire(128);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace zc
