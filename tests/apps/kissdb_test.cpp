#include "apps/kissdb/kissdb.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include <unistd.h>

#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>

namespace zc::app {
namespace {

class KissDBTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 200;  // keep the many-op tests quick
    enclave_ = Enclave::create(cfg);
    libc_ = std::make_unique<EnclaveLibc>(*enclave_);
    path_ = testutil::unique_tmp_path("zc_kissdb");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  static std::array<std::uint8_t, 8> key8(std::uint64_t v) {
    std::array<std::uint8_t, 8> k{};
    std::memcpy(k.data(), &v, sizeof(v));
    return k;
  }

  std::unique_ptr<Enclave> enclave_;
  std::unique_ptr<EnclaveLibc> libc_;
  std::filesystem::path path_;
};

TEST_F(KissDBTest, RejectsZeroedOptions) {
  KissDB db;
  KissDB::Options bad;
  bad.hash_table_size = 0;
  EXPECT_EQ(db.open(*libc_, path_.string(), bad), KissDB::kErrorInvalid);
}

TEST_F(KissDBTest, OpsOnClosedDbFail) {
  KissDB db;
  std::uint64_t v = 0;
  EXPECT_EQ(db.put(&v, &v), KissDB::kErrorInvalid);
  EXPECT_EQ(db.get(&v, &v), KissDB::kErrorInvalid);
}

TEST_F(KissDBTest, CreatesFreshDatabase) {
  KissDB db;
  ASSERT_EQ(db.open(*libc_, path_.string(), {}), KissDB::kOk);
  EXPECT_TRUE(db.is_open());
  EXPECT_EQ(db.pages(), 0u);
}

TEST_F(KissDBTest, PutThenGetRoundTrips) {
  KissDB db;
  ASSERT_EQ(db.open(*libc_, path_.string(), {}), KissDB::kOk);
  const auto key = key8(42);
  const auto value = key8(0xDEADBEEF);
  ASSERT_EQ(db.put(key.data(), value.data()), KissDB::kOk);
  std::array<std::uint8_t, 8> out{};
  ASSERT_EQ(db.get(key.data(), out.data()), KissDB::kOk);
  EXPECT_EQ(out, value);
}

TEST_F(KissDBTest, MissingKeyIsNotFound) {
  KissDB db;
  ASSERT_EQ(db.open(*libc_, path_.string(), {}), KissDB::kOk);
  const auto key = key8(1);
  std::array<std::uint8_t, 8> out{};
  EXPECT_EQ(db.get(key.data(), out.data()), KissDB::kNotFound);
  const auto other = key8(2);
  ASSERT_EQ(db.put(other.data(), other.data()), KissDB::kOk);
  EXPECT_EQ(db.get(key.data(), out.data()), KissDB::kNotFound);
}

TEST_F(KissDBTest, OverwriteReplacesValueInPlace) {
  KissDB db;
  ASSERT_EQ(db.open(*libc_, path_.string(), {}), KissDB::kOk);
  const auto key = key8(7);
  ASSERT_EQ(db.put(key.data(), key8(1).data()), KissDB::kOk);
  ASSERT_EQ(db.put(key.data(), key8(2).data()), KissDB::kOk);
  std::array<std::uint8_t, 8> out{};
  ASSERT_EQ(db.get(key.data(), out.data()), KissDB::kOk);
  EXPECT_EQ(out, key8(2));
  EXPECT_EQ(db.pages(), 1u);  // overwrite must not add pages
}

TEST_F(KissDBTest, CollisionsChainNewPages) {
  KissDB db;
  KissDB::Options opts;
  opts.hash_table_size = 4;  // tiny table to force collisions
  ASSERT_EQ(db.open(*libc_, path_.string(), opts), KissDB::kOk);
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto key = key8(i);
    ASSERT_EQ(db.put(key.data(), key.data()), KissDB::kOk) << i;
  }
  EXPECT_GT(db.pages(), 1u);
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto key = key8(i);
    std::array<std::uint8_t, 8> out{};
    ASSERT_EQ(db.get(key.data(), out.data()), KissDB::kOk) << i;
    EXPECT_EQ(out, key);
  }
}

TEST_F(KissDBTest, PersistsAcrossReopen) {
  KissDB::Options opts;
  opts.hash_table_size = 16;
  {
    KissDB db;
    ASSERT_EQ(db.open(*libc_, path_.string(), opts), KissDB::kOk);
    for (std::uint64_t i = 0; i < 100; ++i) {
      const auto key = key8(i);
      const auto value = key8(i * 31);
      ASSERT_EQ(db.put(key.data(), value.data()), KissDB::kOk);
    }
  }
  KissDB db;
  ASSERT_EQ(db.open(*libc_, path_.string(), opts), KissDB::kOk);
  EXPECT_GT(db.pages(), 0u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto key = key8(i);
    std::array<std::uint8_t, 8> out{};
    ASSERT_EQ(db.get(key.data(), out.data()), KissDB::kOk) << i;
    EXPECT_EQ(out, key8(i * 31));
  }
}

TEST_F(KissDBTest, ReopenWithDifferentGeometryFails) {
  {
    KissDB db;
    ASSERT_EQ(db.open(*libc_, path_.string(), {}), KissDB::kOk);
  }
  KissDB db;
  KissDB::Options other;
  other.hash_table_size = 999;
  EXPECT_EQ(db.open(*libc_, path_.string(), other), KissDB::kErrorInvalid);
}

TEST_F(KissDBTest, OpenGarbageFileIsMalformed) {
  {
    std::ofstream out(path_);
    out << "this is not a kissdb file, definitely long enough to read";
  }
  KissDB db;
  EXPECT_EQ(db.open(*libc_, path_.string(), {}), KissDB::kErrorMalformed);
}

TEST_F(KissDBTest, DoubleOpenFails) {
  KissDB db;
  ASSERT_EQ(db.open(*libc_, path_.string(), {}), KissDB::kOk);
  EXPECT_EQ(db.open(*libc_, path_.string(), {}), KissDB::kErrorInvalid);
}

TEST_F(KissDBTest, WideKeysAndValues) {
  KissDB db;
  KissDB::Options opts;
  opts.key_size = 32;
  opts.value_size = 128;
  ASSERT_EQ(db.open(*libc_, path_.string(), opts), KissDB::kOk);
  std::vector<std::uint8_t> key(32, 0x5A);
  std::vector<std::uint8_t> value(128);
  for (std::size_t i = 0; i < value.size(); ++i) {
    value[i] = static_cast<std::uint8_t>(i);
  }
  ASSERT_EQ(db.put(key.data(), value.data()), KissDB::kOk);
  std::vector<std::uint8_t> out(128, 0);
  ASSERT_EQ(db.get(key.data(), out.data()), KissDB::kOk);
  EXPECT_EQ(out, value);
}

TEST_F(KissDBTest, EveryOperationGoesThroughOcalls) {
  KissDB db;
  ASSERT_EQ(db.open(*libc_, path_.string(), {}), KissDB::kOk);
  const std::uint64_t before = enclave_->transitions().eexit_count();
  const auto key = key8(123);
  ASSERT_EQ(db.put(key.data(), key.data()), KissDB::kOk);
  // A fresh-key put issues at least seek+write+write+seek+write = 5 ocalls.
  EXPECT_GE(enclave_->transitions().eexit_count() - before, 4u);
}

TEST_F(KissDBTest, HashIsDeterministicAndSpreads) {
  const auto a = key8(1);
  const auto b = key8(2);
  EXPECT_EQ(KissDB::hash(a.data(), 8), KissDB::hash(a.data(), 8));
  EXPECT_NE(KissDB::hash(a.data(), 8), KissDB::hash(b.data(), 8));
}

// Property test: random puts/overwrites/gets must agree with std::map.
class KissDBPropertyTest : public KissDBTest,
                           public ::testing::WithParamInterface<unsigned> {};

TEST_P(KissDBPropertyTest, AgreesWithReferenceMap) {
  KissDB db;
  KissDB::Options opts;
  opts.hash_table_size = 32;
  ASSERT_EQ(db.open(*libc_, path_.string(), opts), KissDB::kOk);

  std::mt19937_64 rng(GetParam());
  std::map<std::uint64_t, std::uint64_t> reference;
  for (int op = 0; op < 400; ++op) {
    const std::uint64_t k = rng() % 64;  // small key space: overwrites happen
    const auto key = key8(k);
    if (rng() % 3 == 0 && !reference.empty()) {
      std::array<std::uint8_t, 8> out{};
      const int rc = db.get(key.data(), out.data());
      if (reference.contains(k)) {
        ASSERT_EQ(rc, KissDB::kOk);
        EXPECT_EQ(out, key8(reference[k]));
      } else {
        EXPECT_EQ(rc, KissDB::kNotFound);
      }
    } else {
      const std::uint64_t v = rng();
      ASSERT_EQ(db.put(key.data(), key8(v).data()), KissDB::kOk);
      reference[k] = v;
    }
  }
  for (const auto& [k, v] : reference) {
    std::array<std::uint8_t, 8> out{};
    ASSERT_EQ(db.get(key8(k).data(), out.data()), KissDB::kOk);
    EXPECT_EQ(out, key8(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KissDBPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u));

}  // namespace
}  // namespace zc::app
