#include "apps/crypto/sector_store.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <vector>

#include "core/backend_registry.hpp"

namespace zc::app {
namespace {

class SectorStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 200;
    enclave_ = Enclave::create(cfg);
    libc_ = std::make_unique<EnclaveLibc>(*enclave_);
    path_ = testutil::unique_tmp_path("zc_sectors").string() + ".bin";
    for (std::size_t i = 0; i < sizeof(key_); ++i) {
      key_[i] = static_cast<std::uint8_t>(i * 11 + 3);
    }
  }
  void TearDown() override {
    enclave_->set_backend(nullptr);
    std::filesystem::remove(path_);
  }

  std::vector<std::uint8_t> sector_pattern(std::size_t n, unsigned seed) {
    std::mt19937 rng(seed);
    std::vector<std::uint8_t> data(n);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    return data;
  }

  std::vector<std::uint8_t> read_file_bytes() {
    std::ifstream in(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  // Writes `sectors` sectors in `write_mode`, reads them back in
  // `read_mode`, and checks the decrypted plaintext round-trips.  Returns
  // the on-disk ciphertext for cross-mode comparison.
  std::vector<std::uint8_t> round_trip(std::size_t sector_bytes,
                                       std::uint64_t sectors,
                                       CopyMode write_mode,
                                       CopyMode read_mode) {
    SectorStore store(*libc_, path_, sector_bytes, key_);
    EXPECT_TRUE(store.valid());
    EXPECT_TRUE(store.open_for_write());
    std::vector<std::vector<std::uint8_t>> plains;
    for (std::uint64_t i = 0; i < sectors; ++i) {
      plains.push_back(
          sector_pattern(sector_bytes, static_cast<unsigned>(i + 1)));
      EXPECT_TRUE(store.write_sector(i, plains.back().data(), write_mode))
          << i;
    }
    store.close();

    EXPECT_TRUE(store.open_for_read());
    std::vector<std::uint8_t> out(sector_bytes);
    for (std::uint64_t i = 0; i < sectors; ++i) {
      EXPECT_TRUE(store.read_sector(i, out.data(), read_mode)) << i;
      EXPECT_EQ(out, plains[i]) << "sector " << i;
    }
    store.close();
    return read_file_bytes();
  }

  std::unique_ptr<Enclave> enclave_;
  std::unique_ptr<EnclaveLibc> libc_;
  std::string path_;
  std::uint8_t key_[32];
};

TEST_F(SectorStoreTest, DoubleCopyRoundTrips) {
  round_trip(4096, 8, CopyMode::kDouble, CopyMode::kDouble);
}

TEST_F(SectorStoreTest, SingleCopyRoundTrips) {
  round_trip(4096, 8, CopyMode::kSingle, CopyMode::kSingle);
}

TEST_F(SectorStoreTest, ModesInteroperateEitherWay) {
  // A file written with the staging discipline must read back through the
  // in-place consumer, and vice versa: same ciphertext, same plaintext.
  round_trip(512, 6, CopyMode::kDouble, CopyMode::kSingle);
  round_trip(512, 6, CopyMode::kSingle, CopyMode::kDouble);
}

TEST_F(SectorStoreTest, CiphertextFilesAreIdenticalAcrossModes) {
  const auto double_copy =
      round_trip(2048, 5, CopyMode::kDouble, CopyMode::kDouble);
  const auto single_copy =
      round_trip(2048, 5, CopyMode::kSingle, CopyMode::kSingle);
  EXPECT_FALSE(double_copy.empty());
  EXPECT_EQ(double_copy.size(), 5u * 2048u);
  EXPECT_EQ(double_copy, single_copy);
}

TEST_F(SectorStoreTest, DistinctSectorsGetDistinctCiphertext) {
  // Same plaintext in two sectors: the per-sector IV must make the
  // ciphertext blocks differ.
  SectorStore store(*libc_, path_, 256, key_);
  ASSERT_TRUE(store.open_for_write());
  const auto plain = sector_pattern(256, 7);
  ASSERT_TRUE(store.write_sector(0, plain.data(), CopyMode::kDouble));
  ASSERT_TRUE(store.write_sector(1, plain.data(), CopyMode::kDouble));
  store.close();
  const auto bytes = read_file_bytes();
  ASSERT_EQ(bytes.size(), 512u);
  EXPECT_NE(std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + 256),
            std::vector<std::uint8_t>(bytes.begin() + 256, bytes.end()));
}

TEST_F(SectorStoreTest, SingleCopyDrivesTheBackendElisionCounter) {
  install_backend_spec(*enclave_, "zc:workers=1;pool=slab;copy=single");
  EXPECT_EQ(enclave_->backend().copy_mode(), CopyMode::kSingle);
  const CopyMode mode = enclave_->backend().copy_mode();
  SectorStore store(*libc_, path_, 1024, key_);
  ASSERT_TRUE(store.open_for_write());
  const auto plain = sector_pattern(1024, 3);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.write_sector(i, plain.data(), mode));
  }
  store.close();
  ASSERT_TRUE(store.open_for_read());
  std::vector<std::uint8_t> out(1024);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.read_sector(i, out.data(), mode));
    EXPECT_EQ(out, plain);
  }
  store.close();
  // One elided staging copy per sector transfer (producer on writes,
  // consumer on reads): 8 transfers -> at least 8.
  EXPECT_GE(enclave_->backend().stats_snapshot().copies_elided, 8u);
}

TEST_F(SectorStoreTest, InvalidSectorSizesAreRefused) {
  for (const std::size_t bad : {0u, 100u, 513u}) {
    SectorStore store(*libc_, path_, bad, key_);
    EXPECT_FALSE(store.valid()) << bad;
    EXPECT_FALSE(store.open_for_write()) << bad;
    std::uint8_t buf[513] = {};
    EXPECT_FALSE(store.write_sector(0, buf, CopyMode::kDouble)) << bad;
    EXPECT_FALSE(store.read_sector(0, buf, CopyMode::kSingle)) << bad;
  }
}

TEST_F(SectorStoreTest, OperationsWithoutOpenFail) {
  SectorStore store(*libc_, path_, 256, key_);
  ASSERT_TRUE(store.valid());
  std::uint8_t buf[256] = {};
  EXPECT_FALSE(store.write_sector(0, buf, CopyMode::kDouble));
  EXPECT_FALSE(store.read_sector(0, buf, CopyMode::kDouble));
}

}  // namespace
}  // namespace zc::app
