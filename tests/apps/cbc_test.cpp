#include "apps/crypto/cbc.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

namespace zc::app {
namespace {

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(
        std::stoul(hex.substr(2 * i, 2), nullptr, 16));
  }
  return out;
}

struct Sp80038AF25 {
  // NIST SP 800-38A F.2.5: CBC-AES256 encryption.
  std::vector<std::uint8_t> key = from_hex(
      "603deb1015ca71be2b73aef0857d7781"
      "1f352c073b6108d72d9810a30914dff4");
  std::vector<std::uint8_t> iv = from_hex("000102030405060708090a0b0c0d0e0f");
  std::vector<std::uint8_t> plain = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  std::vector<std::uint8_t> cipher = from_hex(
      "f58c4c04d6e5f1ba779eabfb5f7bfbd6"
      "9cfc4e967edb808d679f777bc6702c7d"
      "39f23369a9d9bacfa530e26304231461"
      "b2eb05e2c39be9fcda6c19078c6a9d1b");
};

TEST(Cbc, NistSp80038AEncryptVector) {
  Sp80038AF25 v;
  CbcEncryptor enc(v.key.data(), v.iv.data());
  std::vector<std::uint8_t> out(v.plain.size());
  enc.update(v.plain.data(), v.plain.size(), out.data());
  EXPECT_EQ(out, v.cipher);
}

TEST(Cbc, NistSp80038ADecryptVector) {
  Sp80038AF25 v;
  CbcDecryptor dec(v.key.data(), v.iv.data());
  std::vector<std::uint8_t> out(v.cipher.size());
  dec.update(v.cipher.data(), v.cipher.size(), out.data());
  EXPECT_EQ(out, v.plain);
}

TEST(Cbc, ChunkedUpdatesMatchOneShot) {
  Sp80038AF25 v;
  // Process 16 bytes at a time: the chained IV must carry across calls.
  CbcEncryptor enc(v.key.data(), v.iv.data());
  std::vector<std::uint8_t> out(v.plain.size());
  for (std::size_t off = 0; off < v.plain.size(); off += 16) {
    enc.update(v.plain.data() + off, 16, out.data() + off);
  }
  EXPECT_EQ(out, v.cipher);
}

TEST(Cbc, FinalPadsPkcs7) {
  Sp80038AF25 v;
  CbcEncryptor enc(v.key.data(), v.iv.data());
  std::uint8_t out[16];
  const std::uint8_t tail[5] = {'h', 'e', 'l', 'l', 'o'};
  enc.final(tail, 5, out);

  // Decrypting must recover "hello" + 11 bytes of 0x0B.
  CbcDecryptor dec(v.key.data(), v.iv.data());
  std::uint8_t plain[16];
  dec.update(out, 16, plain);
  EXPECT_EQ(std::memcmp(plain, tail, 5), 0);
  for (int i = 5; i < 16; ++i) EXPECT_EQ(plain[i], 11);
  EXPECT_EQ(CbcDecryptor::unpad(plain), 5);
}

TEST(Cbc, EmptyFinalIsFullPaddingBlock) {
  Sp80038AF25 v;
  CbcEncryptor enc(v.key.data(), v.iv.data());
  std::uint8_t out[16];
  enc.final(nullptr, 0, out);
  CbcDecryptor dec(v.key.data(), v.iv.data());
  std::uint8_t plain[16];
  dec.update(out, 16, plain);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(plain[i], 16);
  EXPECT_EQ(CbcDecryptor::unpad(plain), 0);
}

TEST(Cbc, UnpadRejectsMalformedPadding) {
  std::uint8_t block[16] = {};
  block[15] = 0;  // pad length 0 is invalid
  EXPECT_EQ(CbcDecryptor::unpad(block), -1);
  block[15] = 17;  // > block size
  EXPECT_EQ(CbcDecryptor::unpad(block), -1);
  block[15] = 3;
  block[14] = 3;
  block[13] = 4;  // inconsistent padding bytes
  EXPECT_EQ(CbcDecryptor::unpad(block), -1);
}

class CbcRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CbcRoundTrip, OneShotHelpersForEveryLengthClass) {
  const std::size_t n = GetParam();
  std::mt19937 rng(static_cast<unsigned>(n) + 1);
  std::uint8_t key[32];
  std::uint8_t iv[16];
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  for (auto& b : iv) b = static_cast<std::uint8_t>(rng());
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());

  const auto cipher = cbc_encrypt(key, iv, data.data(), data.size());
  // Ciphertext is padded to the next block boundary.
  EXPECT_EQ(cipher.size(), (n / 16 + 1) * 16);
  const auto back = cbc_decrypt(key, iv, cipher.data(), cipher.size());
  EXPECT_EQ(back, data);
}

INSTANTIATE_TEST_SUITE_P(Lengths, CbcRoundTrip,
                         ::testing::Values(0u, 1u, 15u, 16u, 17u, 31u, 32u,
                                           33u, 255u, 256u, 1000u, 4096u));

TEST(Cbc, DecryptRejectsNonBlockLengths) {
  std::uint8_t key[32] = {};
  std::uint8_t iv[16] = {};
  std::uint8_t junk[10] = {};
  EXPECT_TRUE(cbc_decrypt(key, iv, junk, sizeof(junk)).empty());
  EXPECT_TRUE(cbc_decrypt(key, iv, junk, 0).empty());
}

TEST(Cbc, WrongKeyFailsPaddingWithHighProbability) {
  std::uint8_t key[32] = {1};
  std::uint8_t wrong[32] = {2};
  std::uint8_t iv[16] = {};
  std::vector<std::uint8_t> data(64, 0xAB);
  const auto cipher = cbc_encrypt(key, iv, data.data(), data.size());
  const auto back = cbc_decrypt(wrong, iv, cipher.data(), cipher.size());
  // Either padding check fails (empty) or the content differs.
  if (!back.empty()) EXPECT_NE(back, data);
}

TEST(Cbc, IdenticalPlaintextBlocksEncryptDifferently) {
  std::uint8_t key[32] = {9};
  std::uint8_t iv[16] = {3};
  std::vector<std::uint8_t> data(32, 0x77);  // two identical blocks
  const auto cipher = cbc_encrypt(key, iv, data.data(), data.size());
  EXPECT_NE(std::memcmp(cipher.data(), cipher.data() + 16, 16), 0);
}

}  // namespace
}  // namespace zc::app
