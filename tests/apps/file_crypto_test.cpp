#include "apps/crypto/file_crypto.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <vector>

namespace zc::app {
namespace {

class FileCryptoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 200;
    enclave_ = Enclave::create(cfg);
    libc_ = std::make_unique<EnclaveLibc>(*enclave_);
    base_ = testutil::unique_tmp_path("zc_fc");
    plain_path_ = base_.string() + ".plain";
    cipher_path_ = base_.string() + ".cipher";
    out_path_ = base_.string() + ".out";
    for (auto& b : key_) b = 0x11;
    for (auto& b : iv_) b = 0x22;
  }
  void TearDown() override {
    std::filesystem::remove(plain_path_);
    std::filesystem::remove(cipher_path_);
    std::filesystem::remove(out_path_);
  }

  std::vector<std::uint8_t> write_plaintext(std::size_t n, unsigned seed = 1) {
    std::mt19937 rng(seed);
    std::vector<std::uint8_t> data(n);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    std::ofstream out(plain_path_, std::ios::binary);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    return data;
  }

  std::vector<std::uint8_t> read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  std::unique_ptr<Enclave> enclave_;
  std::unique_ptr<EnclaveLibc> libc_;
  std::filesystem::path base_;
  std::string plain_path_, cipher_path_, out_path_;
  std::uint8_t key_[32];
  std::uint8_t iv_[16];
};

TEST_F(FileCryptoTest, EncryptThenDecryptRecoversContent) {
  const auto data = write_plaintext(100'000);
  const auto enc =
      encrypt_file(*libc_, plain_path_, cipher_path_, key_, iv_, 4096);
  ASSERT_TRUE(enc.ok);
  EXPECT_EQ(enc.bytes_in, data.size());
  // Padded to the next 16-byte boundary.
  EXPECT_EQ(enc.bytes_out, (data.size() / 16 + 1) * 16);

  const auto dec =
      decrypt_file(*libc_, cipher_path_, out_path_, key_, iv_, 4096);
  ASSERT_TRUE(dec.ok);
  EXPECT_EQ(read_file(out_path_), data);
}

TEST_F(FileCryptoTest, CiphertextDiffersFromPlaintext) {
  const auto data = write_plaintext(4096);
  ASSERT_TRUE(
      encrypt_file(*libc_, plain_path_, cipher_path_, key_, iv_, 1024).ok);
  const auto cipher = read_file(cipher_path_);
  EXPECT_NE(cipher, data);
  EXPECT_EQ(cipher.size(), data.size() + 16);  // exact multiple: full pad block
}

TEST_F(FileCryptoTest, DiscardingDecryptStillValidates) {
  write_plaintext(10'000);
  ASSERT_TRUE(
      encrypt_file(*libc_, plain_path_, cipher_path_, key_, iv_, 2048).ok);
  const auto dec = decrypt_file(*libc_, cipher_path_, "", key_, iv_, 2048);
  EXPECT_TRUE(dec.ok);
  EXPECT_EQ(dec.bytes_out, 0u);
  EXPECT_GT(dec.bytes_in, 0u);
}

TEST_F(FileCryptoTest, EmptyInputYieldsOnePaddingBlock) {
  write_plaintext(0);
  const auto enc =
      encrypt_file(*libc_, plain_path_, cipher_path_, key_, iv_, 4096);
  ASSERT_TRUE(enc.ok);
  EXPECT_EQ(enc.bytes_out, 16u);
  const auto dec =
      decrypt_file(*libc_, cipher_path_, out_path_, key_, iv_, 4096);
  ASSERT_TRUE(dec.ok);
  EXPECT_TRUE(read_file(out_path_).empty());
}

TEST_F(FileCryptoTest, ChunkSizeDoesNotAffectCiphertext) {
  write_plaintext(50'000);
  ASSERT_TRUE(
      encrypt_file(*libc_, plain_path_, cipher_path_, key_, iv_, 1024).ok);
  const auto small_chunks = read_file(cipher_path_);
  ASSERT_TRUE(
      encrypt_file(*libc_, plain_path_, cipher_path_, key_, iv_, 16384).ok);
  EXPECT_EQ(read_file(cipher_path_), small_chunks);
}

TEST_F(FileCryptoTest, WrongKeyFailsCleanly) {
  write_plaintext(5'000);
  ASSERT_TRUE(
      encrypt_file(*libc_, plain_path_, cipher_path_, key_, iv_, 4096).ok);
  std::uint8_t wrong[32] = {};
  const auto dec =
      decrypt_file(*libc_, cipher_path_, out_path_, wrong, iv_, 4096);
  EXPECT_FALSE(dec.ok);  // padding check fails
}

TEST_F(FileCryptoTest, RejectsBadChunkSize) {
  write_plaintext(100);
  EXPECT_FALSE(
      encrypt_file(*libc_, plain_path_, cipher_path_, key_, iv_, 0).ok);
  EXPECT_FALSE(
      encrypt_file(*libc_, plain_path_, cipher_path_, key_, iv_, 100).ok);
}

TEST_F(FileCryptoTest, MissingInputFails) {
  EXPECT_FALSE(
      encrypt_file(*libc_, "/nonexistent", cipher_path_, key_, iv_).ok);
  EXPECT_FALSE(decrypt_file(*libc_, "/nonexistent", "", key_, iv_).ok);
}

TEST_F(FileCryptoTest, TruncatedCiphertextFails) {
  write_plaintext(5'000);
  ASSERT_TRUE(
      encrypt_file(*libc_, plain_path_, cipher_path_, key_, iv_, 4096).ok);
  // Chop 7 bytes off: no longer a block multiple.
  std::filesystem::resize_file(cipher_path_,
                               std::filesystem::file_size(cipher_path_) - 7);
  EXPECT_FALSE(decrypt_file(*libc_, cipher_path_, "", key_, iv_, 4096).ok);
}

TEST_F(FileCryptoTest, PipelineIssuesFreadFwriteOcalls) {
  write_plaintext(64 * 1024);
  const std::uint64_t before = enclave_->transitions().eexit_count();
  ASSERT_TRUE(
      encrypt_file(*libc_, plain_path_, cipher_path_, key_, iv_, 4096).ok);
  // 16 chunks: >= 16 freads + >= 16 fwrites + fopen/fclose pairs.
  EXPECT_GE(enclave_->transitions().eexit_count() - before, 32u);
}

}  // namespace
}  // namespace zc::app
