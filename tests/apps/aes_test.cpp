#include "apps/crypto/aes.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

namespace zc::app {
namespace {

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(
        std::stoul(hex.substr(2 * i, 2), nullptr, 16));
  }
  return out;
}

TEST(Aes256, Fips197AppendixC3KnownAnswer) {
  // FIPS-197 Appendix C.3: AES-256 example vector.
  const auto key = from_hex(
      "000102030405060708090a0b0c0d0e0f"
      "101112131415161718191a1b1c1d1e1f");
  const auto plain = from_hex("00112233445566778899aabbccddeeff");
  const auto expected = from_hex("8ea2b7ca516745bfeafc49904b496089");

  Aes256 aes(key.data());
  std::uint8_t cipher[16];
  aes.encrypt_block(plain.data(), cipher);
  EXPECT_EQ(std::memcmp(cipher, expected.data(), 16), 0);

  std::uint8_t back[16];
  aes.decrypt_block(cipher, back);
  EXPECT_EQ(std::memcmp(back, plain.data(), 16), 0);
}

TEST(Aes256, Sp80038ACbcBlockCipherVectors) {
  // NIST SP 800-38A F.1.5/F.1.6 use ECB; the underlying block transforms
  // appear in the F.2.5 CBC vectors' first block (P1 XOR IV).
  const auto key = from_hex(
      "603deb1015ca71be2b73aef0857d7781"
      "1f352c073b6108d72d9810a30914dff4");
  // ECB vectors for the same key (F.1.5):
  const auto p1 = from_hex("6bc1bee22e409f96e93d7e117393172a");
  const auto c1 = from_hex("f3eed1bdb5d2a03c064b5a7e3db181f8");
  Aes256 aes(key.data());
  std::uint8_t out[16];
  aes.encrypt_block(p1.data(), out);
  EXPECT_EQ(std::memcmp(out, c1.data(), 16), 0);
}

TEST(Aes256, EncryptDecryptRoundTripRandomBlocks) {
  std::mt19937 rng(7);
  std::uint8_t key[32];
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  Aes256 aes(key);
  for (int i = 0; i < 256; ++i) {
    std::uint8_t block[16];
    for (auto& b : block) b = static_cast<std::uint8_t>(rng());
    std::uint8_t cipher[16];
    std::uint8_t back[16];
    aes.encrypt_block(block, cipher);
    aes.decrypt_block(cipher, back);
    ASSERT_EQ(std::memcmp(back, block, 16), 0) << "iteration " << i;
  }
}

TEST(Aes256, InPlaceEncryptionWorks) {
  const auto key = from_hex(
      "000102030405060708090a0b0c0d0e0f"
      "101112131415161718191a1b1c1d1e1f");
  Aes256 aes(key.data());
  auto block = from_hex("00112233445566778899aabbccddeeff");
  const auto expected = from_hex("8ea2b7ca516745bfeafc49904b496089");
  aes.encrypt_block(block.data(), block.data());  // out aliases in
  EXPECT_EQ(block, expected);
}

TEST(Aes256, DifferentKeysProduceDifferentCiphertext) {
  std::uint8_t key_a[32] = {};
  std::uint8_t key_b[32] = {};
  key_b[31] = 1;  // single-bit key difference
  const std::uint8_t plain[16] = {};
  std::uint8_t ca[16];
  std::uint8_t cb[16];
  Aes256(key_a).encrypt_block(plain, ca);
  Aes256(key_b).encrypt_block(plain, cb);
  EXPECT_NE(std::memcmp(ca, cb, 16), 0);
}

TEST(Aes256, HardwareAndSoftwarePathsAgree) {
  // When AES-NI is available the default path is hardware; it must produce
  // byte-identical results to the portable implementation.
  std::mt19937 rng(99);
  std::uint8_t key[32];
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  Aes256 aes(key);
  for (int i = 0; i < 64; ++i) {
    std::uint8_t block[16];
    for (auto& b : block) b = static_cast<std::uint8_t>(rng());
    std::uint8_t hw[16];
    std::uint8_t sw[16];
    aes.encrypt_block(block, hw);
    aes.encrypt_block_sw(block, sw);
    ASSERT_EQ(std::memcmp(hw, sw, 16), 0) << "encrypt divergence at " << i;
    aes.decrypt_block(hw, block);
    aes.decrypt_block_sw(sw, block);  // reuse buffers; compare below
    std::uint8_t hw_d[16];
    std::uint8_t sw_d[16];
    aes.decrypt_block(hw, hw_d);
    aes.decrypt_block_sw(hw, sw_d);
    ASSERT_EQ(std::memcmp(hw_d, sw_d, 16), 0) << "decrypt divergence at " << i;
  }
}

TEST(Aes256, SoftwarePathPassesFips197Kat) {
  const auto key = from_hex(
      "000102030405060708090a0b0c0d0e0f"
      "101112131415161718191a1b1c1d1e1f");
  const auto plain = from_hex("00112233445566778899aabbccddeeff");
  const auto expected = from_hex("8ea2b7ca516745bfeafc49904b496089");
  Aes256 aes(key.data());
  std::uint8_t cipher[16];
  aes.encrypt_block_sw(plain.data(), cipher);
  EXPECT_EQ(std::memcmp(cipher, expected.data(), 16), 0);
  std::uint8_t back[16];
  aes.decrypt_block_sw(cipher, back);
  EXPECT_EQ(std::memcmp(back, plain.data(), 16), 0);
}

TEST(Aes256, AvalancheOnPlaintextBit) {
  std::uint8_t key[32] = {0x42};
  std::uint8_t p0[16] = {};
  std::uint8_t p1[16] = {};
  p1[0] = 0x01;
  std::uint8_t c0[16];
  std::uint8_t c1[16];
  Aes256 aes(key);
  aes.encrypt_block(p0, c0);
  aes.encrypt_block(p1, c1);
  int differing_bits = 0;
  for (int i = 0; i < 16; ++i) {
    differing_bits += __builtin_popcount(c0[i] ^ c1[i]);
  }
  // A healthy block cipher flips roughly half of the 128 bits.
  EXPECT_GT(differing_bits, 30);
  EXPECT_LT(differing_bits, 98);
}

}  // namespace
}  // namespace zc::app
