#include "apps/lmbench/lat_syscall.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>

#include <algorithm>

#include "core/zc_backend.hpp"
#include "workload/harness.hpp"

namespace zc::app {
namespace {

class LmbenchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.tes_cycles = 1'000;
    cfg.logical_cpus = 8;
    enclave_ = Enclave::create(cfg);
    libc_ = std::make_unique<EnclaveLibc>(*enclave_);
  }

  std::unique_ptr<Enclave> enclave_;
  std::unique_ptr<EnclaveLibc> libc_;
};

TEST_F(LmbenchTest, ReadWordsReadsFromDevZero) {
  const int fd = libc_->open("/dev/zero", O_RDONLY);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(read_words(*libc_, fd, 100), 100u);
  libc_->close(fd);
}

TEST_F(LmbenchTest, WriteWordsWritesToDevNull) {
  const int fd = libc_->open("/dev/null", O_WRONLY);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(write_words(*libc_, fd, 100), 100u);
  libc_->close(fd);
}

TEST_F(LmbenchTest, ReadFromBadFdStopsEarly) {
  EXPECT_EQ(read_words(*libc_, -1, 10), 0u);
  EXPECT_EQ(write_words(*libc_, -1, 10), 0u);
}

TEST_F(LmbenchTest, EachOpIsOneOcall) {
  const int fd = libc_->open("/dev/null", O_WRONLY);
  ASSERT_GE(fd, 0);
  const std::uint64_t before = enclave_->transitions().eexit_count();
  write_words(*libc_, fd, 50);
  EXPECT_EQ(enclave_->transitions().eexit_count() - before, 50u);
  libc_->close(fd);
}

TEST_F(LmbenchTest, DynamicRunProducesOneSamplePerPeriod) {
  workload::PhasedPlan plan;
  plan.tau_seconds = 0.1;
  plan.total_seconds = 1.2;  // 12 periods, 4 per phase
  plan.initial_ops = 50;

  CpuUsageMeter meter(8);
  const auto result = run_dynamic_syscall_bench(*libc_, plan, meter);
  ASSERT_EQ(result.samples.size(), 12u);
  EXPECT_GT(result.total_reads, 0u);
  EXPECT_GT(result.total_writes, 0u);
  for (const auto& s : result.samples) {
    EXPECT_GE(s.read_kops, 0.0);
    EXPECT_GE(s.cpu_percent, 0.0);
    EXPECT_LE(s.cpu_percent, 200.0);
  }
  // Sample timestamps advance by tau.
  EXPECT_NEAR(result.samples[1].t_seconds - result.samples[0].t_seconds,
              plan.tau_seconds, 1e-9);
}

TEST_F(LmbenchTest, ThroughputFollowsTheRampWhileUnderCapacity) {
  workload::PhasedPlan plan;
  plan.tau_seconds = 0.1;
  plan.total_seconds = 0.9;
  plan.initial_ops = 20;  // tiny: always under capacity

  CpuUsageMeter meter(8);
  const auto result = run_dynamic_syscall_bench(*libc_, plan, meter);
  ASSERT_GE(result.samples.size(), 3u);
  // Phase 1 doubles the target each period; delivered throughput must grow.
  // Compare against the best of the two follow-up periods: on a loaded
  // host the scheduler can starve the reader for one whole 100 ms period,
  // and a single zeroed sample must not fail the ramp property.
  const double later_best =
      std::max(result.samples[1].read_kops, result.samples[2].read_kops);
  EXPECT_GT(later_best, result.samples[0].read_kops);
}

TEST_F(LmbenchTest, DynamicRunWorksUnderZcBackend) {
  ZcConfig cfg;
  cfg.quantum = std::chrono::microseconds(10'000);
  CpuUsageMeter meter(8);
  cfg.meter = &meter;
  enclave_->set_backend(std::make_unique<ZcBackend>(*enclave_, cfg));

  workload::PhasedPlan plan;
  plan.tau_seconds = 0.1;
  plan.total_seconds = 0.6;
  plan.initial_ops = 100;
  const auto result = run_dynamic_syscall_bench(*libc_, plan, meter);
  EXPECT_EQ(result.samples.size(), 6u);
  EXPECT_GT(result.total_reads + result.total_writes, 0u);
  // The backend reports worker counts in range.
  for (const auto& s : result.samples) {
    EXPECT_LE(s.workers, 4u);
  }
  // Detach backend threads from the local meter before it is destroyed.
  enclave_->set_backend(nullptr);
}

}  // namespace
}  // namespace zc::app
