#include "workload/harness.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "workload/synthetic.hpp"

namespace zc::workload {
namespace {

class HarnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig sim;
    sim.tes_cycles = 2'000;
    sim.logical_cpus = 8;
    enclave_ = Enclave::create(sim);
    ids_ = register_synthetic_ocalls(enclave_->ocalls());
  }

  std::unique_ptr<Enclave> enclave_;
  SyntheticOcalls ids_;
};

TEST_F(HarnessTest, NoSlSpecInstallsRegularBackend) {
  install_backend(*enclave_, ModeSpec::no_sl());
  EXPECT_STREQ(enclave_->backend().name(), "no_sl");
}

TEST_F(HarnessTest, IntelSpecInstallsConfiguredBackend) {
  EXPECT_EQ(ModeSpec::intel("i-f-2", {"f", "f#alias"}, 2).spec,
            "intel:sl=f,f#alias;workers=2");
  // Installed with an effectively unbounded rbf so the switchless-path
  // assertions hold on few-core hosts too.
  const auto spec =
      ModeSpec::parse("intel:sl=f,f#alias;workers=2;rbf=2000000000", "i-f-2");
  install_backend(*enclave_, spec);
  EXPECT_STREQ(enclave_->backend().name(), "intel_sl");
  EXPECT_EQ(enclave_->backend().active_workers(), 2u);
  // Configured ids go switchless.
  FArgs args;
  EXPECT_EQ(enclave_->ocall(ids_.f_a, args), CallPath::kSwitchless);
  GArgs gargs;
  gargs.pauses = 0;
  EXPECT_EQ(enclave_->ocall(ids_.g_a, gargs), CallPath::kRegular);
}

TEST_F(HarnessTest, ZcSpecInstallsZcBackend) {
  install_backend(*enclave_, ModeSpec::zc_mode("scheduler=off,workers=1"));
  EXPECT_STREQ(enclave_->backend().name(), "zc");
  FArgs args;
  EXPECT_EQ(enclave_->ocall(ids_.f_a, args), CallPath::kSwitchless);
}

TEST_F(HarnessTest, HotcallsIsAFirstClassMode) {
  install_backend(*enclave_, ModeSpec::hotcalls(2));
  EXPECT_STREQ(enclave_->backend().name(), "hotcalls");
  EXPECT_EQ(enclave_->backend().active_workers(), 2u);
  FArgs args;
  EXPECT_EQ(enclave_->ocall(ids_.f_a, args), CallPath::kSwitchless);
  enclave_->set_backend(nullptr);
}

TEST_F(HarnessTest, MeterReachesIntelWorkers) {
  CpuUsageMeter meter(8);
  // rbs = 1e9 keeps workers spinning (never sleep).
  auto spec = ModeSpec::parse("intel:sl=f;workers=2;rbs=1000000000");
  install_backend(*enclave_, spec, &meter);
  meter.begin_window();
  // Busy-waiting workers accumulate CPU even with no calls.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_GT(meter.window_cpu_ns(), 10'000'000u);  // >=10ms of worker spin
  // Detach worker threads from the local meter before it is destroyed.
  install_backend(*enclave_, ModeSpec::no_sl());
}

TEST_F(HarnessTest, MeasureReportsWallAndCpu) {
  CpuUsageMeter meter(1);
  const auto slot = meter.register_current_thread();
  const Measured m = measure(meter, [&] {
    const std::uint64_t start = wall_ns();
    volatile std::uint64_t sink = 0;
    while (wall_ns() - start < 30'000'000) sink += 1;
    meter.checkpoint(slot);
  });
  EXPECT_GT(m.seconds, 0.025);
  EXPECT_GT(m.cpu_percent, 40.0);
}

TEST_F(HarnessTest, SimThreadScopeRegistersWithMeter) {
  CpuUsageMeter meter(1);
  meter.begin_window();
  {
    std::jthread t([&] {
      SimThreadScope scope(*enclave_, &meter);
      const std::uint64_t start = wall_ns();
      volatile std::uint64_t sink = 0;
      while (wall_ns() - start < 30'000'000) sink += 1;
      scope.checkpoint();
    });
  }
  EXPECT_GT(meter.window_cpu_ns(), 15'000'000u);
}

TEST_F(HarnessTest, ModeLabelsRoundTrip) {
  EXPECT_EQ(ModeSpec::no_sl().label, "no_sl");
  EXPECT_EQ(ModeSpec::intel("i-frw-4", {}, 4).label, "i-frw-4");
  EXPECT_EQ(ModeSpec::intel("i-frw-4", {}, 4).spec, "intel:workers=4");
  EXPECT_EQ(ModeSpec::zc_mode().label, "zc");
  EXPECT_EQ(ModeSpec::zc_mode("workers=4").spec, "zc:workers=4");
  EXPECT_EQ(ModeSpec::hotcalls(3).spec, "hotcalls:workers=3");
}

TEST_F(HarnessTest, ParseValidatesAgainstRegistry) {
  const auto mode = ModeSpec::parse("zc:workers=2", "zc-2");
  EXPECT_EQ(mode.label, "zc-2");
  EXPECT_EQ(ModeSpec::parse("zc:workers=2").label, "zc:workers=2");
  EXPECT_THROW(ModeSpec::parse("warp_drive"), BackendSpecError);
  EXPECT_THROW(ModeSpec::parse("zc:rbf=7"), BackendSpecError);
}

}  // namespace
}  // namespace zc::workload
