// Trace codec property tests: randomized encode/decode round trips and
// rejection of corrupt or foreign files in the user's terms.
#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <sstream>

namespace zc::workload {
namespace {

Trace random_trace(std::mt19937_64& rng) {
  Trace t;
  t.seed = rng();
  std::uniform_int_distribution<int> name_count(1, 6);
  std::uniform_int_distribution<int> name_len(1, 24);
  std::uniform_int_distribution<int> ch('a', 'z');
  const int names = name_count(rng);
  for (int i = 0; i < names; ++i) {
    std::string name;
    const int len = name_len(rng);
    for (int j = 0; j < len; ++j) name += static_cast<char>(ch(rng));
    name += std::to_string(i);  // ensure uniqueness for intern()
    t.intern(name);
  }
  std::uniform_int_distribution<int> record_count(0, 200);
  std::uniform_int_distribution<std::uint32_t> u32val;
  std::uniform_int_distribution<std::uint64_t> u64val;
  const int records = record_count(rng);
  std::uint64_t vtime = 0;
  for (int i = 0; i < records; ++i) {
    TraceRecord r;
    vtime += u32val(rng) % 1'000'000;
    r.vtime_ns = vtime;
    r.work_ns = u64val(rng) % 10'000'000;
    r.caller = u32val(rng) % 64;
    r.name_idx = u32val(rng) % static_cast<std::uint32_t>(t.names.size());
    r.args_size = u32val(rng) % 256;
    r.in_size = u32val(rng) % 8192;
    r.out_size = u32val(rng) % 8192;
    r.direction = (u32val(rng) & 1) != 0 ? CallDirection::kEcall
                                         : CallDirection::kOcall;
    t.records.push_back(r);
  }
  return t;
}

TEST(TraceCodec, RandomizedRoundTripAndReencodeByteEquality) {
  std::mt19937_64 rng(0xC0DEC);
  for (int iter = 0; iter < 50; ++iter) {
    const Trace original = random_trace(rng);
    const std::vector<std::uint8_t> bytes = original.encode();
    const Trace decoded = Trace::decode(bytes.data(), bytes.size());
    EXPECT_EQ(original, decoded) << "iteration " << iter;
    // encode(decode(bytes)) must reproduce the input bytes exactly — the
    // format has one canonical serialization.
    EXPECT_EQ(bytes, decoded.encode()) << "iteration " << iter;
    EXPECT_EQ(original.digest(), decoded.digest());
  }
}

TEST(TraceCodec, HeaderAndRecordSizesArePinned) {
  Trace t;
  t.intern("g");
  TraceRecord r;
  r.name_idx = 0;
  t.records.push_back(r);
  // 32-byte header, u32 len + 1 name byte, 40-byte record.  A layout
  // change is a format change and must bump kTraceVersion.
  EXPECT_EQ(t.encode().size(), kTraceHeaderBytes + 4 + 1 + kTraceRecordBytes);
}

TEST(TraceCodec, RejectsBadMagic) {
  Trace t;
  std::vector<std::uint8_t> bytes = t.encode();
  bytes[0] ^= 0xFF;
  try {
    Trace::decode(bytes.data(), bytes.size());
    FAIL() << "bad magic accepted";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("not a ZC trace file"),
              std::string::npos)
        << e.what();
  }
}

TEST(TraceCodec, RejectsNewerVersionInUsersTerms) {
  Trace t;
  std::vector<std::uint8_t> bytes = t.encode();
  bytes[4] = 2;  // version field, little-endian
  try {
    Trace::decode(bytes.data(), bytes.size());
    FAIL() << "future version accepted";
  } catch (const TraceError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("version 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("1..1"), std::string::npos) << msg;
  }
  bytes[4] = 0;
  EXPECT_THROW(Trace::decode(bytes.data(), bytes.size()), TraceError);
}

TEST(TraceCodec, RejectsTruncationAtEveryBoundary) {
  std::mt19937_64 rng(0x7E57);
  Trace t = random_trace(rng);
  while (t.records.empty()) t = random_trace(rng);
  const std::vector<std::uint8_t> bytes = t.encode();
  // Every strict prefix must be rejected, never crash or mis-parse.  Step
  // a few bytes at a time to keep the sweep fast.
  for (std::size_t cut = 0; cut < bytes.size(); cut += 3) {
    EXPECT_THROW(Trace::decode(bytes.data(), cut), TraceError)
        << "prefix of " << cut << " bytes accepted";
  }
}

TEST(TraceCodec, RejectsRecordCountBeyondRemainingBytes) {
  Trace t;
  t.intern("g");
  TraceRecord r;
  t.records.push_back(r);
  std::vector<std::uint8_t> bytes = t.encode();
  bytes[16] = 0xFF;  // record_count low byte: promise 255 records
  try {
    Trace::decode(bytes.data(), bytes.size());
    FAIL() << "overlong record count accepted";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST(TraceCodec, RejectsDanglingNameIndex) {
  Trace t;
  t.intern("g");
  TraceRecord r;
  r.name_idx = 0;
  t.records.push_back(r);
  std::vector<std::uint8_t> bytes = t.encode();
  // name_idx sits 20 bytes into the record (after vtime, work, caller).
  bytes[kTraceHeaderBytes + 4 + 1 + 20] = 9;
  try {
    Trace::decode(bytes.data(), bytes.size());
    FAIL() << "dangling name index accepted";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("name table"), std::string::npos)
        << e.what();
  }
}

TEST(TraceCodec, RejectsUnknownDirectionByte) {
  Trace t;
  t.intern("g");
  TraceRecord r;
  t.records.push_back(r);
  std::vector<std::uint8_t> bytes = t.encode();
  bytes[kTraceHeaderBytes + 4 + 1 + 36] = 0xFF;  // direction byte
  EXPECT_THROW(Trace::decode(bytes.data(), bytes.size()), TraceError);
}

TEST(TraceCodec, SaveLoadRoundTripsThroughAFile) {
  std::mt19937_64 rng(0xF11E);
  const Trace t = random_trace(rng);
  const std::string path = ::testing::TempDir() + "trace_test_roundtrip.bin";
  t.save(path);
  const Trace loaded = Trace::load(path);
  EXPECT_EQ(t, loaded);
  std::remove(path.c_str());
  EXPECT_THROW(Trace::load(path + ".does-not-exist"), TraceError);
}

TEST(TraceHelpers, InternDeduplicatesAndCountsCallers) {
  Trace t;
  EXPECT_EQ(t.intern("read"), 0u);
  EXPECT_EQ(t.intern("write"), 1u);
  EXPECT_EQ(t.intern("read"), 0u);
  EXPECT_EQ(t.names.size(), 2u);
  EXPECT_EQ(t.caller_count(), 0u);
  EXPECT_EQ(t.duration_ns(), 0u);
  TraceRecord r;
  r.caller = 7;
  r.vtime_ns = 42;
  t.records.push_back(r);
  r.caller = 3;
  r.vtime_ns = 99;
  t.records.push_back(r);
  t.records.push_back(r);
  EXPECT_EQ(t.caller_count(), 2u);
  EXPECT_EQ(t.duration_ns(), 99u);
}

TEST(TraceHelpers, JsonlExportHasHeaderAndOneLinePerRecord) {
  Trace t;
  t.seed = 5;
  const std::uint32_t g = t.intern("g");
  TraceRecord r;
  r.name_idx = g;
  r.vtime_ns = 10;
  t.records.push_back(r);
  r.vtime_ns = 20;
  t.records.push_back(r);
  std::ostringstream out;
  t.export_jsonl(out);
  const std::string text = out.str();
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 3u) << text;
  EXPECT_NE(text.find("\"trace\":\"header\""), std::string::npos);
  EXPECT_NE(text.find("\"seed\":5"), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"g\""), std::string::npos);
}

}  // namespace
}  // namespace zc::workload
