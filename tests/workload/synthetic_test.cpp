#include "workload/synthetic.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/zc_backend.hpp"
#include "intel_sl/intel_backend.hpp"

namespace zc::workload {
namespace {

class SyntheticTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig sim;
    sim.tes_cycles = 2'000;
    sim.logical_cpus = 8;
    enclave_ = Enclave::create(sim);
    ids_ = register_synthetic_ocalls(enclave_->ocalls());
  }

  std::unique_ptr<Enclave> enclave_;
  SyntheticOcalls ids_;
};

TEST_F(SyntheticTest, RegistersFourDistinctIds) {
  std::vector<std::uint32_t> all{ids_.f_a, ids_.f_b, ids_.g_a, ids_.g_b};
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end());
  EXPECT_EQ(enclave_->ocalls().name(ids_.f_a), "f");
  EXPECT_EQ(enclave_->ocalls().name(ids_.g_a), "g");
}

TEST_F(SyntheticTest, ConfigNamesMatchPaper) {
  EXPECT_STREQ(to_string(SynthConfig::kC1), "C1");
  EXPECT_STREQ(to_string(SynthConfig::kC5), "C5");
}

TEST_F(SyntheticTest, SwitchlessSetsEncodeTheFiveConfigs) {
  const auto c1 = intel_switchless_set(SynthConfig::kC1, ids_);
  EXPECT_EQ(c1.size(), 2u);  // both f ids
  EXPECT_NE(std::find(c1.begin(), c1.end(), ids_.f_a), c1.end());
  EXPECT_EQ(std::find(c1.begin(), c1.end(), ids_.g_a), c1.end());

  const auto c2 = intel_switchless_set(SynthConfig::kC2, ids_);
  EXPECT_NE(std::find(c2.begin(), c2.end(), ids_.g_a), c2.end());
  EXPECT_EQ(std::find(c2.begin(), c2.end(), ids_.f_a), c2.end());

  const auto c3 = intel_switchless_set(SynthConfig::kC3, ids_);
  EXPECT_EQ(c3.size(), 2u);  // primary ids only: half the calls
  EXPECT_NE(std::find(c3.begin(), c3.end(), ids_.f_a), c3.end());
  EXPECT_NE(std::find(c3.begin(), c3.end(), ids_.g_a), c3.end());

  EXPECT_EQ(intel_switchless_set(SynthConfig::kC4, ids_).size(), 4u);
  EXPECT_TRUE(intel_switchless_set(SynthConfig::kC5, ids_).empty());
}

TEST_F(SyntheticTest, AlphaIsThreeBeta) {
  SyntheticRunConfig run;
  run.total_calls = 8'000;
  run.enclave_threads = 4;
  run.g_pauses = 0;
  const auto result = run_synthetic(*enclave_, ids_, run);
  EXPECT_EQ(result.f_calls + result.g_calls, 8'000u);
  EXPECT_EQ(result.f_calls, 6'000u);  // α = 3β
  EXPECT_EQ(result.g_calls, 2'000u);
}

TEST_F(SyntheticTest, AllCallsAreRegularUnderNoSl) {
  SyntheticRunConfig run;
  run.total_calls = 1'000;
  run.enclave_threads = 2;
  const auto result = run_synthetic(*enclave_, ids_, run);
  EXPECT_EQ(result.regular, 1'000u);
  EXPECT_EQ(result.switchless, 0u);
  EXPECT_GT(result.seconds, 0.0);
}

TEST_F(SyntheticTest, C1UnderIntelMakesOnlyFSwitchless) {
  intel::IntelSlConfig cfg;
  cfg.num_workers = 2;
  const auto set = intel_switchless_set(SynthConfig::kC1, ids_);
  cfg.switchless_fns.insert(set.begin(), set.end());
  enclave_->set_backend(
      std::make_unique<intel::IntelSwitchlessBackend>(*enclave_, cfg));

  SyntheticRunConfig run;
  run.total_calls = 2'000;
  run.enclave_threads = 2;
  run.config = SynthConfig::kC1;
  const auto result = run_synthetic(*enclave_, ids_, run);
  // All g calls (500) are regular; f calls are switchless or fell back.
  EXPECT_EQ(result.regular, result.g_calls);
  EXPECT_EQ(result.switchless + result.fallbacks, result.f_calls);
  EXPECT_GT(result.switchless, 0u);
}

TEST_F(SyntheticTest, C3SplitsCallsHalfAndHalf) {
  intel::IntelSlConfig cfg;
  cfg.num_workers = 4;
  const auto set = intel_switchless_set(SynthConfig::kC3, ids_);
  cfg.switchless_fns.insert(set.begin(), set.end());
  enclave_->set_backend(
      std::make_unique<intel::IntelSwitchlessBackend>(*enclave_, cfg));

  SyntheticRunConfig run;
  run.total_calls = 4'000;
  run.enclave_threads = 1;  // deterministic single-thread split
  run.config = SynthConfig::kC3;
  const auto result = run_synthetic(*enclave_, ids_, run);
  // Exactly half of all calls target the alias (regular) ids.
  EXPECT_EQ(result.regular, 2'000u);
  EXPECT_EQ(result.switchless + result.fallbacks, 2'000u);
}

TEST_F(SyntheticTest, ZcServesEverythingWithWorkers) {
  ZcConfig cfg;
  cfg.scheduler_enabled = false;
  cfg.with_initial_workers(2);
  enclave_->set_backend(std::make_unique<ZcBackend>(*enclave_, cfg));

  SyntheticRunConfig run;
  run.total_calls = 2'000;
  run.enclave_threads = 1;
  const auto result = run_synthetic(*enclave_, ids_, run);
  // Single caller, idle workers: everything goes switchless.
  EXPECT_EQ(result.switchless, 2'000u);
  EXPECT_EQ(result.fallbacks, 0u);
}

TEST_F(SyntheticTest, GDurationIncreasesRuntime) {
  SyntheticRunConfig fast;
  fast.total_calls = 2'000;
  fast.enclave_threads = 2;
  fast.g_pauses = 0;
  SyntheticRunConfig slow = fast;
  slow.g_pauses = 2'000;
  const double t_fast = run_synthetic(*enclave_, ids_, fast).seconds;
  const double t_slow = run_synthetic(*enclave_, ids_, slow).seconds;
  EXPECT_GT(t_slow, t_fast);
}

TEST_F(SyntheticTest, ZeroThreadsIsTreatedAsOne) {
  SyntheticRunConfig run;
  run.total_calls = 100;
  run.enclave_threads = 0;
  const auto result = run_synthetic(*enclave_, ids_, run);
  EXPECT_EQ(result.f_calls + result.g_calls, 100u);
}

TEST_F(SyntheticTest, ZipfRankPermutationIsSeededAndValid) {
  const auto a = zipf_rank_permutation(8, 42);
  const auto b = zipf_rank_permutation(8, 42);
  EXPECT_EQ(a, b);  // same seed, same heavy-caller placement
  EXPECT_NE(a, zipf_rank_permutation(8, 43));
  // Always a permutation of 0..threads-1.
  auto sorted = a;
  std::sort(sorted.begin(), sorted.end());
  for (unsigned i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  EXPECT_TRUE(zipf_rank_permutation(0, 1).empty());
}

TEST_F(SyntheticTest, RunsReportAnEffectiveNonzeroSeed) {
  SyntheticRunConfig run;
  run.total_calls = 100;
  run.enclave_threads = 2;
  run.skew = CallerSkew::kZipf;
  // Default (seed=0) draws fresh entropy but always reports the value.
  EXPECT_NE(run_synthetic(*enclave_, ids_, run).seed, 0u);
  // A pinned seed is passed through verbatim.
  run.seed = 0xfeedull;
  EXPECT_EQ(run_synthetic(*enclave_, ids_, run).seed, 0xfeedull);
}

}  // namespace
}  // namespace zc::workload
