#include "workload/phased.hpp"

#include <gtest/gtest.h>

namespace zc::workload {
namespace {

PhasedPlan paper_plan() {
  PhasedPlan plan;
  plan.tau_seconds = 0.5;
  plan.total_seconds = 60.0;
  plan.initial_ops = 1'000;
  return plan;
}

TEST(PhasedPlan, PaperPlanHas120Periods) {
  EXPECT_EQ(paper_plan().periods(), 120u);
}

TEST(PhasedPlan, Phase1DoublesEveryPeriod) {
  const auto plan = paper_plan();
  EXPECT_EQ(plan.ops_for_period(0), 1'000u);
  EXPECT_EQ(plan.ops_for_period(1), 2'000u);
  EXPECT_EQ(plan.ops_for_period(2), 4'000u);
  EXPECT_EQ(plan.ops_for_period(10), 1'000u * 1024u);
}

TEST(PhasedPlan, Phase2HoldsThePeak) {
  const auto plan = paper_plan();
  const std::uint64_t peak = plan.peak_ops();
  EXPECT_EQ(plan.ops_for_period(40), peak);  // first period of phase 2
  EXPECT_EQ(plan.ops_for_period(60), peak);
  EXPECT_EQ(plan.ops_for_period(79), peak);  // last period of phase 2
  EXPECT_EQ(peak, plan.ops_for_period(39));  // peak is the end of phase 1
}

TEST(PhasedPlan, Phase3HalvesEveryPeriod) {
  const auto plan = paper_plan();
  const std::uint64_t peak = plan.peak_ops();
  EXPECT_EQ(plan.ops_for_period(80), peak / 2);
  EXPECT_EQ(plan.ops_for_period(81), peak / 4);
}

TEST(PhasedPlan, DecreaseFloorsAtOne) {
  PhasedPlan plan;
  plan.tau_seconds = 1.0;
  plan.total_seconds = 90.0;
  plan.initial_ops = 2;
  const std::uint64_t last = plan.ops_for_period(89);
  EXPECT_GE(last, 1u);
}

TEST(PhasedPlan, DoublingSaturatesWithoutOverflow) {
  PhasedPlan plan;
  plan.tau_seconds = 0.1;
  plan.total_seconds = 60.0;  // 200 doubling periods in phase 1
  plan.initial_ops = 1'000'000;
  // Must not wrap around; a saturated value is fine.
  EXPECT_GT(plan.peak_ops(), 0u);
}

TEST(PhasedPlan, ScheduleMatchesPerPeriodQueries) {
  const auto plan = paper_plan();
  const auto schedule = plan.schedule();
  ASSERT_EQ(schedule.size(), plan.periods());
  for (std::uint64_t p = 0; p < plan.periods(); p += 13) {
    EXPECT_EQ(schedule[p], plan.ops_for_period(p)) << "period " << p;
  }
}

TEST(PhasedPlan, ScheduleIsSymmetricInShape) {
  // Increase then steady then decrease: first period of phase 3 is below
  // the peak, and the schedule ends below where phase 2 sat.
  const auto plan = paper_plan();
  const auto schedule = plan.schedule();
  const std::uint64_t peak = plan.peak_ops();
  EXPECT_LT(schedule.back(), peak);
  EXPECT_LT(schedule.front(), peak);
}

TEST(PhasedPlan, TinyPlanDegradesGracefully) {
  PhasedPlan plan;
  plan.tau_seconds = 0.5;
  plan.total_seconds = 1.0;  // 2 periods -> phase_len == 0
  plan.initial_ops = 10;
  EXPECT_EQ(plan.periods(), 2u);
  EXPECT_EQ(plan.ops_for_period(0), 10u);
  EXPECT_EQ(plan.ops_for_period(1), 10u);
}

}  // namespace
}  // namespace zc::workload
