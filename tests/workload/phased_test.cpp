#include "workload/phased.hpp"

#include <gtest/gtest.h>

namespace zc::workload {
namespace {

PhasedPlan paper_plan() {
  PhasedPlan plan;
  plan.tau_seconds = 0.5;
  plan.total_seconds = 60.0;
  plan.initial_ops = 1'000;
  return plan;
}

TEST(PhasedPlan, PaperPlanHas120Periods) {
  EXPECT_EQ(paper_plan().periods(), 120u);
}

TEST(PhasedPlan, Phase1DoublesEveryPeriod) {
  const auto plan = paper_plan();
  EXPECT_EQ(plan.ops_for_period(0), 1'000u);
  EXPECT_EQ(plan.ops_for_period(1), 2'000u);
  EXPECT_EQ(plan.ops_for_period(2), 4'000u);
  EXPECT_EQ(plan.ops_for_period(10), 1'000u * 1024u);
}

TEST(PhasedPlan, Phase2HoldsThePeak) {
  const auto plan = paper_plan();
  const std::uint64_t peak = plan.peak_ops();
  EXPECT_EQ(plan.ops_for_period(40), peak);  // first period of phase 2
  EXPECT_EQ(plan.ops_for_period(60), peak);
  EXPECT_EQ(plan.ops_for_period(79), peak);  // last period of phase 2
  EXPECT_EQ(peak, plan.ops_for_period(39));  // peak is the end of phase 1
}

TEST(PhasedPlan, Phase3HalvesEveryPeriod) {
  const auto plan = paper_plan();
  const std::uint64_t peak = plan.peak_ops();
  EXPECT_EQ(plan.ops_for_period(80), peak / 2);
  EXPECT_EQ(plan.ops_for_period(81), peak / 4);
}

TEST(PhasedPlan, DecreaseFloorsAtOne) {
  PhasedPlan plan;
  plan.tau_seconds = 1.0;
  plan.total_seconds = 90.0;
  plan.initial_ops = 2;
  const std::uint64_t last = plan.ops_for_period(89);
  EXPECT_GE(last, 1u);
}

TEST(PhasedPlan, DoublingSaturatesWithoutOverflow) {
  PhasedPlan plan;
  plan.tau_seconds = 0.1;
  plan.total_seconds = 60.0;  // 200 doubling periods in phase 1
  plan.initial_ops = 1'000'000;
  // Must not wrap around; a saturated value is fine.
  EXPECT_GT(plan.peak_ops(), 0u);
}

TEST(PhasedPlan, ScheduleMatchesPerPeriodQueries) {
  const auto plan = paper_plan();
  const auto schedule = plan.schedule();
  ASSERT_EQ(schedule.size(), plan.periods());
  for (std::uint64_t p = 0; p < plan.periods(); p += 13) {
    EXPECT_EQ(schedule[p], plan.ops_for_period(p)) << "period " << p;
  }
}

TEST(PhasedPlan, ScheduleIsSymmetricInShape) {
  // Increase then steady then decrease: first period of phase 3 is below
  // the peak, and the schedule ends below where phase 2 sat.
  const auto plan = paper_plan();
  const auto schedule = plan.schedule();
  const std::uint64_t peak = plan.peak_ops();
  EXPECT_LT(schedule.back(), peak);
  EXPECT_LT(schedule.front(), peak);
}

TEST(PhasedPlan, TinyPlanDegradesGracefully) {
  PhasedPlan plan;
  plan.tau_seconds = 0.5;
  plan.total_seconds = 1.0;  // 2 periods -> phase_len == 0
  plan.initial_ops = 10;
  EXPECT_EQ(plan.periods(), 2u);
  EXPECT_EQ(plan.ops_for_period(0), 10u);
  EXPECT_EQ(plan.ops_for_period(1), 10u);
}

// --- Trace synthesizers ------------------------------------------------------

SynthesizerConfig synth_config() {
  SynthesizerConfig cfg;
  cfg.seed = 99;
  cfg.duration_ms = 40.0;
  cfg.base_rate_hz = 20'000.0;
  cfg.callers = 4;
  return cfg;
}

TEST(Synthesizers, SameSeedSameTraceDifferentSeedDifferentTrace) {
  const SynthesizerConfig cfg = synth_config();
  const Trace a = synthesize_burst_storm(cfg);
  const Trace b = synthesize_burst_storm(cfg);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.encode(), b.encode());
  SynthesizerConfig other = cfg;
  other.seed = 100;
  EXPECT_NE(a.digest(), synthesize_burst_storm(other).digest());
}

TEST(Synthesizers, RecordsArriveInVtimeOrderWithValidIndices) {
  for (const Trace& t :
       {synthesize_diurnal(synth_config()),
        synthesize_burst_storm(synth_config()),
        synthesize_caller_churn(synth_config())}) {
    ASSERT_FALSE(t.records.empty());
    EXPECT_EQ(t.seed, 99u);
    std::uint64_t prev = 0;
    for (const TraceRecord& r : t.records) {
      EXPECT_GE(r.vtime_ns, prev);
      prev = r.vtime_ns;
      ASSERT_LT(r.name_idx, t.names.size());
    }
  }
}

TEST(Synthesizers, DiurnalPeaksMidTrace) {
  const Trace t = synthesize_diurnal(synth_config(), /*trough_fraction=*/0.1);
  const std::uint64_t span = static_cast<std::uint64_t>(40.0 * 1e6);
  std::uint64_t first_third = 0, mid_third = 0;
  for (const TraceRecord& r : t.records) {
    if (r.vtime_ns < span / 3) ++first_third;
    if (r.vtime_ns >= span / 3 && r.vtime_ns < 2 * span / 3) ++mid_third;
  }
  EXPECT_GT(mid_third, first_third * 2) << "day curve should peak mid-trace";
}

TEST(Synthesizers, BurstStormConcentratesArrivalsInStormWindows) {
  const SynthesizerConfig cfg = synth_config();
  const Trace t = synthesize_burst_storm(cfg, /*bursts=*/2,
                                         /*burst_multiplier=*/20.0,
                                         /*duty=*/0.1);
  // Two slots of 20 ms; each 2 ms storm window sits centred at 9-11 ms
  // into its slot.  With a 20x multiplier, the 10% of time spent storming
  // must hold the majority of arrivals.
  std::uint64_t storm = 0;
  for (const TraceRecord& r : t.records) {
    const std::uint64_t in_slot = r.vtime_ns % 20'000'000;
    if (in_slot >= 9'000'000 && in_slot < 11'000'000) ++storm;
  }
  EXPECT_GT(storm * 2, t.records.size())
      << storm << " of " << t.records.size() << " arrivals in storms";
}

TEST(Synthesizers, CallerChurnReplacesThePopulation) {
  const SynthesizerConfig cfg = synth_config();
  const Trace t = synthesize_caller_churn(cfg, /*generations=*/3);
  EXPECT_GT(t.caller_count(), cfg.callers);
  EXPECT_LE(t.caller_count(), cfg.callers * 3);
  // Early records come from generation 0, late ones from generation 2.
  EXPECT_LT(t.records.front().caller, cfg.callers);
  EXPECT_GE(t.records.back().caller, 2 * cfg.callers);
}

TEST(Synthesizers, PhasedCurveFollowsThePlan) {
  PhasedPlan plan;
  plan.tau_seconds = 1.0;
  plan.total_seconds = 12.0;
  plan.initial_ops = 50;
  SynthesizerConfig cfg = synth_config();
  const Trace t = synthesize_phased(plan, cfg);
  ASSERT_FALSE(t.records.empty());
  // Phase 2 (the plateau) must be denser than the first phase-1 period.
  const std::uint64_t period_ns =
      static_cast<std::uint64_t>(40.0 * 1e6) / 12;
  std::uint64_t first_period = 0, plateau_period = 0;
  for (const TraceRecord& r : t.records) {
    if (r.vtime_ns < period_ns) ++first_period;
    if (r.vtime_ns >= 5 * period_ns && r.vtime_ns < 6 * period_ns) {
      ++plateau_period;
    }
  }
  EXPECT_GT(plateau_period, first_period);
}

TEST(Synthesizers, RejectsDegenerateConfigs) {
  SynthesizerConfig cfg = synth_config();
  cfg.duration_ms = 0;
  EXPECT_THROW(synthesize_diurnal(cfg), TraceError);
  cfg = synth_config();
  cfg.names.clear();
  EXPECT_THROW(synthesize_burst_storm(cfg), TraceError);
  cfg = synth_config();
  cfg.callers = 0;
  EXPECT_THROW(synthesize_caller_churn(cfg), TraceError);
  cfg = synth_config();
  cfg.base_rate_hz = 1e12;  // would blow the record cap
  EXPECT_THROW(synthesize_diurnal(cfg), TraceError);
  EXPECT_THROW(synthesize_diurnal(synth_config(), -0.5), TraceError);
  EXPECT_THROW(synthesize_burst_storm(synth_config(), 0), TraceError);
  EXPECT_THROW(synthesize_caller_churn(synth_config(), 0), TraceError);
  EXPECT_THROW(synthesize_phased(PhasedPlan{.total_seconds = 0},
                                 synth_config()),
               TraceError);
}

}  // namespace
}  // namespace zc::workload
