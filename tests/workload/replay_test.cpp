// Replay driver tests: determinism of the payload/digest machinery across
// modes, specs and thread counts, plus the open-loop collapse regression —
// a burst storm above a tiny batched plane's capacity must degrade into
// accounted-for queueing/fallbacks, never a deadlock or a lost call.
#include "workload/replay.hpp"

#include <gtest/gtest.h>

#include "core/backend_registry.hpp"
#include "workload/phased.hpp"

namespace zc::workload {
namespace {

SimConfig tiny_machine() {
  SimConfig sim;
  sim.tes_cycles = 200;  // cheap transitions keep the suite fast
  sim.logical_cpus = 8;
  return sim;
}

Trace small_trace() {
  SynthesizerConfig cfg;
  cfg.seed = 7;
  cfg.duration_ms = 10.0;
  cfg.base_rate_hz = 20'000.0;
  cfg.callers = 4;
  cfg.names = {"replay_f", "replay_g"};
  return synthesize_caller_churn(cfg, 2);
}

ReplayConfig base_config(const std::string& spec) {
  ReplayConfig cfg;
  cfg.backend_spec = spec;
  cfg.work_scale = 0;     // the call mix matters here, not the work
  cfg.time_scale = 0.05;  // open-loop runs replay a compressed schedule
  cfg.sim = tiny_machine();
  return cfg;
}

TEST(Replay, TwoReplaysOfSameSpecAreByteIdenticalModuloWallClock) {
  const Trace trace = small_trace();
  const ReplayConfig cfg = base_config("zc:workers=1");
  const ReplayResult a = replay_trace(trace, cfg);
  const ReplayResult b = replay_trace(trace, cfg);
  EXPECT_EQ(a.deterministic_json(), b.deterministic_json());
  EXPECT_EQ(a.result_digest, b.result_digest);
  EXPECT_EQ(a.calls, trace.records.size());
  // The full row carries the same deterministic prefix.
  EXPECT_EQ(a.json().rfind(a.deterministic_json().substr(
                0, a.deterministic_json().size() - 1), 0),
            0u);
}

TEST(Replay, DigestIsInvariantAcrossSpecsModesAndThreadCounts) {
  const Trace trace = small_trace();
  const ReplayResult baseline =
      replay_trace(trace, base_config("no_sl"));
  EXPECT_EQ(baseline.calls, trace.records.size());
  EXPECT_EQ(baseline.trace_digest, trace.digest());

  for (const char* spec :
       {"zc:workers=2", "zc_batched:workers=1;batch=4",
        "zc:direction=ecall;workers=1"}) {
    ReplayConfig cfg = base_config(spec);
    const ReplayResult r = replay_trace(trace, cfg);
    EXPECT_EQ(r.result_digest, baseline.result_digest) << spec;
    EXPECT_EQ(r.calls, baseline.calls) << spec;
  }

  ReplayConfig open = base_config("zc:workers=1");
  open.mode = ReplayMode::kOpenLoop;
  EXPECT_EQ(replay_trace(trace, open).result_digest, baseline.result_digest);

  ReplayConfig narrow = base_config("no_sl");
  narrow.threads = 1;
  EXPECT_EQ(replay_trace(trace, narrow).result_digest,
            baseline.result_digest);
}

TEST(Replay, SeedIsPartOfTheWorkloadIdentity) {
  const Trace trace = small_trace();
  ReplayConfig cfg = base_config("no_sl");
  const std::uint64_t digest_a = replay_trace(trace, cfg).result_digest;
  cfg.seed = cfg.seed + 1;
  EXPECT_NE(replay_trace(trace, cfg).result_digest, digest_a);
}

TEST(Replay, EveryCallIsAccountedForInThePathCounters) {
  const Trace trace = small_trace();
  for (const char* spec : {"no_sl", "zc:workers=2"}) {
    const ReplayResult r = replay_trace(trace, base_config(spec));
    EXPECT_EQ(r.regular + r.switchless + r.fallbacks, r.calls) << spec;
  }
}

TEST(Replay, RejectsEmptyTracesAndBadSpecs) {
  EXPECT_THROW(replay_trace(Trace{}, base_config("no_sl")), TraceError);
  EXPECT_THROW(replay_trace(small_trace(), base_config("no_such_backend")),
               BackendSpecError);
}

TEST(Replay, PayloadBytesFlowThroughTheDigest) {
  // A trace whose records carry no payloads digests differently from the
  // same schedule with payloads — the digest covers content, not counts.
  SynthesizerConfig cfg;
  cfg.seed = 11;
  cfg.duration_ms = 5.0;
  cfg.base_rate_hz = 10'000.0;
  cfg.callers = 2;
  Trace with = synthesize_diurnal(cfg);
  Trace without = with;
  for (TraceRecord& r : without.records) {
    r.in_size = 0;
    r.out_size = 0;
  }
  const std::uint64_t d_with =
      replay_trace(with, base_config("no_sl")).result_digest;
  const std::uint64_t d_without =
      replay_trace(without, base_config("no_sl")).result_digest;
  EXPECT_NE(d_with, d_without);
}

// --- The open-loop collapse regression --------------------------------------
//
// Closed-loop replay can never overload a backend: offered load tracks
// completion rate by construction.  Open-loop replay of a burst storm
// above a tiny zc_batched plane's capacity is exactly the case the mode
// exists for — the run must terminate with every call accounted for and
// visibly degraded service, not deadlock under the backlog.
TEST(Replay, OpenLoopBurstStormAboveCapacityDegradesInsteadOfDeadlocking) {
  SynthesizerConfig synth;
  synth.seed = 23;
  synth.duration_ms = 60.0;
  synth.base_rate_hz = 4'000.0;
  synth.callers = 6;
  synth.work_ns = 1'000'000;  // ~0.8 CPU-seconds of work in a 60 ms
                              // schedule: far beyond what one batch=2
                              // worker (or two fallback-running
                              // dispatchers) can serve on time
  const Trace storm = synthesize_burst_storm(synth, /*bursts=*/2,
                                             /*burst_multiplier=*/25.0,
                                             /*duty=*/0.1);

  ReplayConfig overloaded;
  overloaded.backend_spec = "zc_batched:workers=1;batch=2;spin_us=0";
  overloaded.mode = ReplayMode::kOpenLoop;
  overloaded.time_scale = 1.0;
  overloaded.work_scale = 1.0;
  overloaded.threads = 2;
  overloaded.sim = tiny_machine();

  ReplayConfig healthy = overloaded;
  healthy.work_scale = 0;  // same arrivals, negligible service demand

  const ReplayResult sick = replay_trace(storm, overloaded);
  const ReplayResult fine = replay_trace(storm, healthy);

  // Terminated (we got here) with nothing lost or duplicated: the queue
  // growth was bounded by inline fallbacks / blocking, not ignored.
  EXPECT_EQ(sick.calls, storm.records.size());
  EXPECT_EQ(sick.regular + sick.switchless + sick.fallbacks, sick.calls);
  EXPECT_EQ(sick.result_digest, fine.result_digest);

  // The overload is visible: the saturated replay takes far longer than
  // the virtual schedule and its tail sojourn dwarfs the healthy run's.
  EXPECT_GT(sick.seconds, 0.3);
  EXPECT_GT(sick.p999_us, fine.p999_us);
  EXPECT_GE(sick.late_calls, fine.late_calls);
  EXPECT_GT(sick.max_late_us, 1'000.0)  // >1 ms behind schedule at peak
      << "a 16x-overloaded plane should fall visibly behind its schedule";
}

}  // namespace
}  // namespace zc::workload
