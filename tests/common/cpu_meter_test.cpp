#include "common/cpu_meter.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace zc {
namespace {

TEST(ProcStat, ParsesAggregateCpuLine) {
  const auto t = ProcStatSampler::parse_cpu_line(
      "cpu  74608 2520 24433 1117073 6176 4054 0 0 0 0");
  EXPECT_EQ(t.user, 74608u);
  EXPECT_EQ(t.nice, 2520u);
  EXPECT_EQ(t.system, 24433u);
  EXPECT_EQ(t.idle, 1117073u);
  EXPECT_EQ(t.busy(), 74608u + 2520u + 24433u);
}

TEST(ProcStat, RejectsMalformedLine) {
  EXPECT_THROW(ProcStatSampler::parse_cpu_line("bogus 1 2 3 4"),
               std::runtime_error);
  EXPECT_THROW(ProcStatSampler::parse_cpu_line("cpu"), std::runtime_error);
}

TEST(ProcStat, UsagePercentMatchesPaperFormula) {
  ProcStatTimes before{100, 0, 50, 850};   // busy 150, total 1000
  ProcStatTimes after{200, 0, 100, 1700};  // busy 300, total 2000
  // delta busy = 150, delta total = 1000 -> 15%
  EXPECT_DOUBLE_EQ(ProcStatSampler::usage_percent(before, after), 15.0);
}

TEST(ProcStat, UsagePercentZeroWhenNoTimePassed) {
  ProcStatTimes t{1, 2, 3, 4};
  EXPECT_EQ(ProcStatSampler::usage_percent(t, t), 0.0);
}

TEST(ProcStat, SamplesLiveSystem) {
  // Must parse without throwing. Some containers report all-zero jiffies,
  // so only sanity-check the value when the kernel provides one.
  const auto t = ProcStatSampler::sample();
  if (t.total() != 0) {
    EXPECT_GE(t.total(), t.busy());
  }
}

TEST(ThreadCpu, AdvancesUnderLoad) {
  const std::uint64_t before = thread_cpu_ns();
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 20'000'000; ++i) sink += i;
  const std::uint64_t after = thread_cpu_ns();
  EXPECT_GT(after, before);
}

TEST(WallClock, IsMonotonic) {
  const std::uint64_t a = wall_ns();
  const std::uint64_t b = wall_ns();
  EXPECT_GE(b, a);
}

TEST(CpuUsageMeter, ZeroCpusClampsToOne) {
  CpuUsageMeter meter(0);
  EXPECT_EQ(meter.logical_cpus(), 1u);
}

TEST(CpuUsageMeter, FreshRegistrationContributesNothing) {
  CpuUsageMeter meter(4);
  meter.begin_window();
  // Register after burning CPU: pre-existing time must not count.
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 10'000'000; ++i) sink += i;
  const auto slot = meter.register_current_thread();
  meter.checkpoint(slot);
  // Small slack: the register->checkpoint gap itself burns a sliver of CPU
  // (clock granularity), but the 10M-iteration burn must not appear.
  EXPECT_LT(meter.window_cpu_ns(), 1'000'000u);
}

TEST(CpuUsageMeter, CapturesBusyThread) {
  CpuUsageMeter meter(1);
  const auto slot = meter.register_current_thread();
  meter.begin_window();
  const std::uint64_t start = wall_ns();
  volatile std::uint64_t sink = 0;
  while (wall_ns() - start < 50'000'000) sink += 1;  // ~50 ms busy
  meter.checkpoint(slot);
  const double pct = meter.window_usage_percent();
  // A spinning thread on a 1-cpu "machine" should be near 100%.
  EXPECT_GT(pct, 50.0);
  EXPECT_LT(pct, 130.0);
}

TEST(CpuUsageMeter, IdleThreadReportsNearZero) {
  CpuUsageMeter meter(1);
  const auto slot = meter.register_current_thread();
  meter.begin_window();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  meter.checkpoint(slot);
  EXPECT_LT(meter.window_usage_percent(), 15.0);
}

TEST(CpuUsageMeter, NormalisesBySimulatedWidth) {
  CpuUsageMeter meter(8);
  const auto slot = meter.register_current_thread();
  meter.begin_window();
  const std::uint64_t start = wall_ns();
  volatile std::uint64_t sink = 0;
  while (wall_ns() - start < 50'000'000) sink += 1;
  meter.checkpoint(slot);
  // One busy thread on an 8-wide machine: ~12.5%.
  const double pct = meter.window_usage_percent();
  EXPECT_GT(pct, 5.0);
  EXPECT_LT(pct, 25.0);
}

TEST(CpuUsageMeter, AggregatesMultipleThreads) {
  CpuUsageMeter meter(2);
  meter.begin_window();
  std::atomic<bool> stop{false};
  auto busy = [&] {
    const auto slot = meter.register_current_thread();
    volatile std::uint64_t sink = 0;
    while (!stop.load(std::memory_order_relaxed)) sink += 1;
    meter.unregister_current_thread(slot);
  };
  std::jthread t1(busy);
  std::jthread t2(busy);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  stop.store(true);
  t1.join();
  t2.join();
  // Two busy threads on a 2-wide machine: close to 100% — but on a
  // single-core host they share the core and can only total ~50%, so the
  // aggregation threshold must sit below that.
  EXPECT_GT(meter.window_usage_percent(), 40.0);
}

TEST(CpuUsageMeter, WindowResetsBase) {
  CpuUsageMeter meter(1);
  const auto slot = meter.register_current_thread();
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 10'000'000; ++i) sink += i;
  meter.checkpoint(slot);
  meter.begin_window();
  meter.checkpoint(slot);
  // Work done before the window must not appear in it (small slack for the
  // checkpoint itself).
  EXPECT_LT(meter.window_cpu_ns(), 5'000'000u);
}

}  // namespace
}  // namespace zc
