// MpscSlotRing: the lock-free submit ring under zc_batched/zc_async
// ring=on — claim/publish/consume lifecycle, full-ring refusal,
// out-of-band consumption (the stop-path self-serve), straggler lookups
// past a head gap, and ticket wraparound across the 2^32 and 2^64
// boundaries.
#include "common/mpsc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace zc {
namespace {

struct TestSlot {
  explicit TestSlot(int tag_in = 0) : tag(tag_in) {}
  int tag = 0;
  std::uint64_t value = 0;
};

TEST(MpscSlotRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscSlotRing<TestSlot>(1).capacity(), 2u);
  EXPECT_EQ(MpscSlotRing<TestSlot>(2).capacity(), 2u);
  EXPECT_EQ(MpscSlotRing<TestSlot>(3).capacity(), 4u);
  EXPECT_EQ(MpscSlotRing<TestSlot>(8).capacity(), 8u);
  EXPECT_EQ(MpscSlotRing<TestSlot>(9).capacity(), 16u);
}

TEST(MpscSlotRingTest, SlotConstructorArgumentsReachEveryCell) {
  MpscSlotRing<TestSlot> ring(4, 0, 42);
  for (std::uint64_t t = 0; t < 4; ++t) EXPECT_EQ(ring.at(t).tag, 42);
}

TEST(MpscSlotRingTest, ClaimPublishConsumeRecycleRoundTrips) {
  MpscSlotRing<TestSlot> ring(4);
  for (std::uint64_t round = 0; round < 3; ++round) {
    std::uint64_t t = 0;
    TestSlot* s = ring.try_claim(t);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(t, round);
    // Claimed but unpublished: invisible to the consumer.
    std::uint64_t front_ticket = 0;
    EXPECT_EQ(ring.front(front_ticket), nullptr);
    s->value = 100 + round;
    ring.publish(t);
    TestSlot* f = ring.front(front_ticket);
    ASSERT_EQ(f, s);
    EXPECT_EQ(front_ticket, t);
    EXPECT_EQ(f->value, 100 + round);
    ring.pop();
    ring.recycle(t);
  }
}

TEST(MpscSlotRingTest, FullRingRefusesClaims) {
  MpscSlotRing<TestSlot> ring(2);
  std::uint64_t t0 = 0, t1 = 0, t2 = 0;
  ASSERT_NE(ring.try_claim(t0), nullptr);
  ASSERT_NE(ring.try_claim(t1), nullptr);
  EXPECT_EQ(ring.try_claim(t2), nullptr);  // full: both cells live
  ring.publish(t0);
  EXPECT_EQ(ring.try_claim(t2), nullptr);  // published != recycled
  std::uint64_t f = 0;
  ASSERT_NE(ring.front(f), nullptr);
  ring.pop();
  ring.recycle(t0);
  TestSlot* s = ring.try_claim(t2);
  ASSERT_NE(s, nullptr);  // recycle freed the cell for ticket+capacity
  EXPECT_EQ(t2, t0 + ring.capacity());
}

TEST(MpscSlotRingTest, OutOfBandConsumptionIsSkippedByFront) {
  // The stop-path shape: tickets 0 and 1 are published, ticket 0 is then
  // served out of band (recycled without a front/pop pass).  front() must
  // skip the dead cell and land on ticket 1.
  MpscSlotRing<TestSlot> ring(4);
  std::uint64_t t0 = 0, t1 = 0;
  ASSERT_NE(ring.try_claim(t0), nullptr);
  ASSERT_NE(ring.try_claim(t1), nullptr);
  ring.publish(t0);
  ring.publish(t1);
  ring.recycle(t0);  // consumed elsewhere (producer self-serve)
  std::uint64_t f = 0;
  TestSlot* s = ring.front(f);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(f, t1);
}

TEST(MpscSlotRingTest, PublishedAtSeesPastAHeadGap) {
  // Ticket 0 is claimed but never published (a producer mid-marshal);
  // ticket 1 is published.  front() blocks on the gap, published_at()
  // finds the straggler — the drain path's whole reason to exist.
  MpscSlotRing<TestSlot> ring(4);
  std::uint64_t t0 = 0, t1 = 0;
  ASSERT_NE(ring.try_claim(t0), nullptr);
  TestSlot* s1 = ring.try_claim(t1);
  ASSERT_NE(s1, nullptr);
  ring.publish(t1);
  std::uint64_t f = 0;
  EXPECT_EQ(ring.front(f), nullptr);  // gap at the head
  EXPECT_TRUE(ring.any_published());
  unsigned found = 0;
  for (std::size_t i = 0; i < ring.capacity(); ++i) {
    std::uint64_t ticket = 0;
    TestSlot* s = ring.published_at(i, ticket);
    if (s == nullptr) continue;
    ++found;
    EXPECT_EQ(s, s1);
    EXPECT_EQ(ticket, t1);
  }
  EXPECT_EQ(found, 1u);
  ring.publish(t0);  // gap resolves; head order restored
  ASSERT_NE(ring.front(f), nullptr);
  EXPECT_EQ(f, t0);
}

TEST(MpscSlotRingTest, PublishedRunCountsContiguousPrefix) {
  MpscSlotRing<TestSlot> ring(8);
  std::uint64_t t[4];
  for (auto& ticket : t) ASSERT_NE(ring.try_claim(ticket), nullptr);
  EXPECT_EQ(ring.published_run(), 0u);
  ring.publish(t[0]);
  ring.publish(t[1]);
  ring.publish(t[3]);  // hole at t[2]
  EXPECT_EQ(ring.published_run(), 2u);
  ring.publish(t[2]);
  EXPECT_EQ(ring.published_run(), 4u);
}

class MpscSlotRingWrapTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MpscSlotRingWrapTest, TicketsCrossTheBoundaryCorrectly) {
  // Start the ticket counter just below the boundary and push enough
  // traffic through that every comparison in the ring sees mixed
  // before/after values.  The signed-difference encoding must keep
  // claim, front, published_at and recycle all consistent.
  const std::uint64_t start = GetParam();
  MpscSlotRing<TestSlot> ring(4, start);
  for (std::uint64_t i = 0; i < 64; ++i) {
    std::uint64_t t = 0;
    TestSlot* s = ring.try_claim(t);
    ASSERT_NE(s, nullptr) << "i=" << i;
    EXPECT_EQ(t, start + i);
    s->value = i;
    ring.publish(t);
    std::uint64_t f = 0;
    TestSlot* got = ring.front(f);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(f, t);
    EXPECT_EQ(got->value, i);
    // Straggler lookup agrees across the boundary too.
    std::uint64_t pt = 0;
    EXPECT_EQ(ring.published_at(t & (ring.capacity() - 1), pt), got);
    EXPECT_EQ(pt, t);
    ring.pop();
    ring.recycle(t);
  }
  EXPECT_EQ(ring.head(), start + 64);
  EXPECT_EQ(ring.tail(), start + 64);
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, MpscSlotRingWrapTest,
    ::testing::Values(
        // The old 32-bit ticket counter died here; the ring must not.
        (std::uint64_t{1} << 32) - 8,
        // Full 64-bit wrap: tickets pass 2^64 - 1 and wrap to small values.
        ~std::uint64_t{0} - 7),
    [](const auto& info) {
      return info.index == 0 ? "Near2e32" : "Near2e64";
    });

TEST(MpscSlotRingTest, ConcurrentProducersSingleConsumer) {
  // 4 producers hammer claims while one consumer front/pop/recycles.
  // Every published value must be consumed exactly once, in claim order.
  constexpr unsigned kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5'000;
  MpscSlotRing<TestSlot> ring(8);
  std::atomic<std::uint64_t> consumed{0};
  std::vector<std::uint64_t> order;
  order.reserve(kProducers * kPerProducer);
  std::jthread consumer([&] {
    while (consumed.load(std::memory_order_relaxed) <
           kProducers * kPerProducer) {
      std::uint64_t t = 0;
      TestSlot* s = ring.front(t);
      if (s == nullptr) {
        std::this_thread::yield();
        continue;
      }
      order.push_back(s->value);
      ring.pop();
      ring.recycle(t);
      consumed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  {
    std::vector<std::jthread> producers;
    for (unsigned p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (std::uint64_t i = 0; i < kPerProducer; ++i) {
          std::uint64_t t = 0;
          TestSlot* s = nullptr;
          while ((s = ring.try_claim(t)) == nullptr) {
            std::this_thread::yield();
          }
          s->value = (std::uint64_t{p} << 32) | i;
          ring.publish(t);
        }
      });
    }
  }
  consumer.join();
  ASSERT_EQ(order.size(), kProducers * kPerProducer);
  // Per-producer FIFO: claims are ticket-ordered and the consumer walks
  // tickets in order, so each producer's values appear in sequence.
  std::vector<std::uint64_t> next(kProducers, 0);
  for (const std::uint64_t v : order) {
    const unsigned p = static_cast<unsigned>(v >> 32);
    const std::uint64_t i = v & 0xFFFF'FFFF;
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(i, next[p]);
    next[p] = i + 1;
  }
}

}  // namespace
}  // namespace zc
