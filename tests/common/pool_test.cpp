#include "common/pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

namespace zc {
namespace {

TEST(BumpPool, ZeroCapacityThrows) {
  EXPECT_THROW(BumpPool(0), std::invalid_argument);
}

TEST(BumpPool, AllocatesWithinCapacity) {
  BumpPool pool(1024);
  void* p = pool.allocate(100);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(pool.owns(p));
  EXPECT_GE(pool.used(), 100u);
  EXPECT_LE(pool.used(), pool.capacity());
}

TEST(BumpPool, RespectsAlignment) {
  BumpPool pool(4096);
  ASSERT_NE(pool.allocate(1), nullptr);  // misalign the cursor
  for (const std::size_t align : {8u, 16u, 64u, 256u}) {
    void* p = pool.allocate(16, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
}

TEST(BumpPool, FailsWhenFull) {
  BumpPool pool(256);
  ASSERT_NE(pool.allocate(200), nullptr);
  EXPECT_EQ(pool.allocate(200), nullptr);
  EXPECT_EQ(pool.failed_allocs(), 1u);
}

TEST(BumpPool, FailsOnOversizedRequest) {
  BumpPool pool(128);
  EXPECT_EQ(pool.allocate(1024), nullptr);
}

TEST(BumpPool, RejectsZeroSizeAndBadAlignment) {
  BumpPool pool(128);
  EXPECT_EQ(pool.allocate(0), nullptr);
  EXPECT_EQ(pool.allocate(8, 0), nullptr);
  EXPECT_EQ(pool.allocate(8, 3), nullptr);  // non power of two
  EXPECT_EQ(pool.failed_allocs(), 3u);
}

TEST(BumpPool, ResetReclaimsEverything) {
  BumpPool pool(256);
  ASSERT_NE(pool.allocate(200), nullptr);
  ASSERT_EQ(pool.allocate(200), nullptr);
  pool.reset();
  EXPECT_EQ(pool.used(), 0u);
  EXPECT_EQ(pool.reset_count(), 1u);
  EXPECT_NE(pool.allocate(200), nullptr);
}

TEST(BumpPool, SequentialAllocationsDoNotOverlap) {
  BumpPool pool(4096);
  auto* a = static_cast<std::uint8_t*>(pool.allocate(64));
  auto* b = static_cast<std::uint8_t*>(pool.allocate(64));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_GE(b, a + 64);
}

TEST(BumpPool, OwnsRejectsForeignPointers) {
  BumpPool pool(128);
  int local = 0;
  EXPECT_FALSE(pool.owns(&local));
}

TEST(BumpPool, RemainingTracksUsage) {
  BumpPool pool(1000);
  EXPECT_EQ(pool.remaining(), 1000u);
  pool.allocate(100, 1);
  EXPECT_EQ(pool.remaining(), 900u);
}

TEST(BumpPool, ExhaustiveFillWithSmallAllocations) {
  BumpPool pool(1 << 16);
  std::size_t count = 0;
  while (pool.allocate(64, 64) != nullptr) ++count;
  // The buffer's own base alignment may cost one 64-byte slot.
  EXPECT_GE(count, (1u << 16) / 64 - 1);
  EXPECT_LE(count, (1u << 16) / 64);
}

}  // namespace
}  // namespace zc
