#include "common/pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/stats.hpp"

namespace zc {
namespace {

TEST(BumpPool, ZeroCapacityThrows) {
  EXPECT_THROW(BumpPool(0), std::invalid_argument);
}

TEST(BumpPool, AllocatesWithinCapacity) {
  BumpPool pool(1024);
  void* p = pool.allocate(100);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(pool.owns(p));
  EXPECT_GE(pool.used(), 100u);
  EXPECT_LE(pool.used(), pool.capacity());
}

TEST(BumpPool, RespectsAlignment) {
  BumpPool pool(4096);
  ASSERT_NE(pool.allocate(1), nullptr);  // misalign the cursor
  for (const std::size_t align : {8u, 16u, 64u, 256u}) {
    void* p = pool.allocate(16, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
}

TEST(BumpPool, FailsWhenFull) {
  BumpPool pool(256);
  ASSERT_NE(pool.allocate(200), nullptr);
  EXPECT_EQ(pool.allocate(200), nullptr);
  EXPECT_EQ(pool.failed_allocs(), 1u);
}

TEST(BumpPool, FailsOnOversizedRequest) {
  BumpPool pool(128);
  EXPECT_EQ(pool.allocate(1024), nullptr);
}

TEST(BumpPool, RejectsZeroSizeAndBadAlignment) {
  BumpPool pool(128);
  EXPECT_EQ(pool.allocate(0), nullptr);
  EXPECT_EQ(pool.allocate(8, 0), nullptr);
  EXPECT_EQ(pool.allocate(8, 3), nullptr);  // non power of two
  EXPECT_EQ(pool.failed_allocs(), 3u);
}

TEST(BumpPool, ResetReclaimsEverything) {
  BumpPool pool(256);
  ASSERT_NE(pool.allocate(200), nullptr);
  ASSERT_EQ(pool.allocate(200), nullptr);
  pool.reset();
  EXPECT_EQ(pool.used(), 0u);
  EXPECT_EQ(pool.reset_count(), 1u);
  EXPECT_NE(pool.allocate(200), nullptr);
}

TEST(BumpPool, SequentialAllocationsDoNotOverlap) {
  BumpPool pool(4096);
  auto* a = static_cast<std::uint8_t*>(pool.allocate(64));
  auto* b = static_cast<std::uint8_t*>(pool.allocate(64));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_GE(b, a + 64);
}

TEST(BumpPool, OwnsRejectsForeignPointers) {
  BumpPool pool(128);
  int local = 0;
  EXPECT_FALSE(pool.owns(&local));
}

TEST(BumpPool, RemainingTracksUsage) {
  BumpPool pool(1000);
  EXPECT_EQ(pool.remaining(), 1000u);
  pool.allocate(100, 1);
  EXPECT_EQ(pool.remaining(), 900u);
}

TEST(BumpPool, ExhaustiveFillWithSmallAllocations) {
  BumpPool pool(1 << 16);
  std::size_t count = 0;
  while (pool.allocate(64, 64) != nullptr) ++count;
  // The buffer's own base alignment may cost one 64-byte slot.
  EXPECT_GE(count, (1u << 16) / 64 - 1);
  EXPECT_LE(count, (1u << 16) / 64);
}

// --- SlabPool ----------------------------------------------------------------

TEST(SlabPool, ClassSizesArePowersOfTwoFromMinBlock) {
  SlabPool pool;
  ASSERT_GT(pool.class_count(), 0u);
  EXPECT_EQ(pool.class_size(0), SlabPool::kMinBlock);
  for (unsigned i = 1; i < pool.class_count(); ++i) {
    EXPECT_EQ(pool.class_size(i), pool.class_size(i - 1) * 2);
  }
  EXPECT_GE(pool.class_size(pool.class_count() - 1), pool.max_block());
}

TEST(SlabPool, AllocationsAreCacheLineAlignedAndWritable) {
  SlabPool pool;
  for (const std::size_t n : {1u, 200u, 256u, 300u, 70'000u}) {
    void* p = pool.allocate(n);
    ASSERT_NE(p, nullptr) << n;
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % SlabPool::kBlockAlign, 0u)
        << n;
    std::memset(p, 0xCD, n);
    pool.free(p);
  }
}

TEST(SlabPool, FreeThenAllocateReusesBlocks) {
  SlabPool pool;
  void* a = pool.allocate(1000);
  pool.free(a);
  // Same thread, same class: the magazine must serve the freed block back.
  void* b = pool.allocate(1000);
  EXPECT_EQ(a, b);
  pool.free(b);
}

TEST(SlabPool, CountsHitsMissesAndGrows) {
  SlabPool pool;
  EXPECT_EQ(pool.hit_count() + pool.miss_count(), 0u);
  void* first = pool.allocate(512);  // cold class: miss + grow
  EXPECT_EQ(pool.miss_count(), 1u);
  EXPECT_GE(pool.grow_count(), 1u);
  // The carve put sibling blocks on the free list: subsequent allocs hit.
  void* second = pool.allocate(512);
  EXPECT_GE(pool.hit_count(), 1u);
  pool.free(first);
  pool.free(second);
  void* third = pool.allocate(512);  // magazine hit
  const std::uint64_t hits = pool.hit_count();
  EXPECT_GE(hits, 2u);
  pool.free(third);
}

TEST(SlabPool, MirrorsCountersIntoExternalPaddedCounters) {
  PaddedCounter hits, misses, grows;
  SlabPool pool;
  pool.set_counters(SlabPool::Counters{&hits, &misses, &grows});
  void* p = pool.allocate(4096);
  pool.free(p);
  p = pool.allocate(4096);
  pool.free(p);
  EXPECT_EQ(hits.load(), pool.hit_count());
  EXPECT_EQ(misses.load(), pool.miss_count());
  EXPECT_EQ(grows.load(), pool.grow_count());
  EXPECT_GE(hits.load(), 1u);
  EXPECT_GE(misses.load(), 1u);
}

TEST(SlabPool, OversizeRequestsNeverRefuse) {
  SlabPool pool(/*max_block=*/64 * 1024);
  void* p = pool.allocate(10u << 20);  // far past the largest class
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % SlabPool::kBlockAlign, 0u);
  std::memset(p, 0x5A, 10u << 20);
  pool.free(p);
}

TEST(SlabPool, OwnsTracksSlabMemoryNotOversize) {
  SlabPool pool;
  void* small = pool.allocate(256);
  EXPECT_TRUE(pool.owns(small));
  int local = 0;
  EXPECT_FALSE(pool.owns(&local));
  pool.free(small);
}

TEST(SlabPool, CrossThreadFreeReturnsBlocksToThePool) {
  SlabPool pool;
  void* p = pool.allocate(2048);
  ASSERT_NE(p, nullptr);
  std::jthread t([&] { pool.free(p); });
  t.join();
  // The block went to the freeing thread's magazine or the central list;
  // either way this thread can keep allocating without issue.
  void* q = pool.allocate(2048);
  ASSERT_NE(q, nullptr);
  pool.free(q);
}

TEST(SlabPool, ConcurrentAllocFreeStress) {
  SlabPool pool;
  PaddedCounter hits, misses, grows;
  pool.set_counters(SlabPool::Counters{&hits, &misses, &grows});
  constexpr int kThreads = 4;
  constexpr int kIters = 2'000;
  std::vector<std::jthread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      std::vector<void*> held;
      held.reserve(8);
      for (int i = 0; i < kIters; ++i) {
        const std::size_t n = 256u << ((i + t) % 5);
        void* p = pool.allocate(n);
        ASSERT_NE(p, nullptr);
        static_cast<std::uint8_t*>(p)[0] = static_cast<std::uint8_t>(i);
        static_cast<std::uint8_t*>(p)[n - 1] = static_cast<std::uint8_t>(t);
        held.push_back(p);
        if (held.size() == 8) {
          for (void* h : held) pool.free(h);
          held.clear();
        }
      }
      for (void* h : held) pool.free(h);
    });
  }
  threads.clear();  // join
  EXPECT_GE(hits.load() + misses.load(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace zc
