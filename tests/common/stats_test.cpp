#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

namespace zc {
namespace {

TEST(PaddedCounter, StartsAtZeroAndAdds) {
  PaddedCounter c;
  EXPECT_EQ(c.load(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.load(), 42u);
}

TEST(PaddedCounter, IsCacheLinePadded) {
  EXPECT_EQ(alignof(PaddedCounter) % 64, 0u);
  EXPECT_GE(sizeof(PaddedCounter), 64u);
}

TEST(PaddedCounter, ConcurrentAddsAreLossless) {
  PaddedCounter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&c] {
        for (int i = 0; i < kPerThread; ++i) c.add();
      });
    }
  }
  EXPECT_EQ(c.load(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.add(3.25);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.25);
}

TEST(RunningStat, ResetClears) {
  RunningStat s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStat, HandlesNegativeValues) {
  RunningStat s;
  s.add(-10.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -10.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(SampleSeries, PercentileOfEmptyThrows) {
  SampleSeries s;
  EXPECT_THROW(s.percentile(50), std::logic_error);
}

TEST(SampleSeries, PercentileOutOfRangeThrows) {
  SampleSeries s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), std::invalid_argument);
  EXPECT_THROW(s.percentile(101), std::invalid_argument);
}

TEST(SampleSeries, NearestRankPercentiles) {
  SampleSeries s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
}

TEST(SampleSeries, MeanAndSum) {
  SampleSeries s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(SampleSeries, MeanOfEmptyIsZero) {
  SampleSeries s;
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleSeries, ClearEmpties) {
  SampleSeries s;
  s.add(1.0);
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(SampleSeries, PercentileDoesNotMutateOrder) {
  SampleSeries s;
  s.add(3.0);
  s.add(1.0);
  s.add(2.0);
  (void)s.median();
  EXPECT_EQ(s.raw()[0], 3.0);
  EXPECT_EQ(s.raw()[1], 1.0);
  EXPECT_EQ(s.raw()[2], 2.0);
}

}  // namespace
}  // namespace zc
