// CompletionGate: the shared caller-wait primitive — spin/yield/futex/
// condvar policies, spurious-wake robustness, stop-while-blocked, and the
// counter wiring the backends rely on for caller_yields/sleeps/wakeups.
#include "common/completion_gate.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "sgx/backend.hpp"

namespace zc {
namespace {

using namespace std::chrono_literals;

constexpr std::chrono::microseconds kNoSpin{0};

struct CountedGate {
  std::atomic<std::uint32_t> word{0};
  CompletionGate gate;
  BackendStats stats;

  GateCounters counters() {
    return GateCounters{&stats.caller_yields, &stats.caller_sleeps,
                        &stats.caller_wakeups};
  }
};

TEST(CompletionGateTest, PolicyStringsRoundTrip) {
  for (const GateWaitPolicy policy :
       {GateWaitPolicy::kSpin, GateWaitPolicy::kYield, GateWaitPolicy::kFutex,
        GateWaitPolicy::kCondvar}) {
    GateWaitPolicy parsed;
    ASSERT_TRUE(gate_policy_from_string(to_string(policy), parsed))
        << to_string(policy);
    EXPECT_EQ(parsed, policy);
  }
  GateWaitPolicy out;
  EXPECT_FALSE(gate_policy_from_string("banana", out));
  EXPECT_FALSE(gate_policy_from_string("", out));
  EXPECT_TRUE(gate_can_sleep(GateWaitPolicy::kFutex));
  EXPECT_TRUE(gate_can_sleep(GateWaitPolicy::kCondvar));
  EXPECT_FALSE(gate_can_sleep(GateWaitPolicy::kSpin));
  EXPECT_FALSE(gate_can_sleep(GateWaitPolicy::kYield));
}

TEST(CompletionGateTest, SatisfiedPredicateReturnsWithoutBlocking) {
  CountedGate g;
  g.word.store(7);
  for (const GateWaitPolicy policy :
       {GateWaitPolicy::kSpin, GateWaitPolicy::kYield, GateWaitPolicy::kFutex,
        GateWaitPolicy::kCondvar}) {
    g.gate.await(
        g.word, [](std::uint32_t v) { return v == 7; }, policy, kNoSpin,
        g.counters());
  }
  EXPECT_EQ(g.stats.caller_yields.load(), 0u);
  EXPECT_EQ(g.stats.caller_sleeps.load(), 0u);
  EXPECT_EQ(g.stats.caller_wakeups.load(), 0u);
}

TEST(CompletionGateTest, SpinPhaseCatchesAFastCompletion) {
  // A completion inside the spin budget never yields or sleeps, whatever
  // the policy — the paper's pure completion spin is the common fast path.
  for (const GateWaitPolicy policy :
       {GateWaitPolicy::kYield, GateWaitPolicy::kFutex,
        GateWaitPolicy::kCondvar}) {
    CountedGate g;
    std::jthread setter([&] { g.word.store(1, std::memory_order_seq_cst); });
    g.gate.await(
        g.word, [](std::uint32_t v) { return v == 1; }, policy,
        std::chrono::microseconds{200'000}, g.counters());
    setter.join();
    EXPECT_EQ(g.stats.caller_sleeps.load(), 0u) << to_string(policy);
  }
}

TEST(CompletionGateTest, YieldPolicyCountsYields) {
  CountedGate g;
  std::jthread waiter([&] {
    g.gate.await(
        g.word, [](std::uint32_t v) { return v == 1; },
        GateWaitPolicy::kYield, kNoSpin, g.counters());
  });
  std::this_thread::sleep_for(2ms);
  g.word.store(1, std::memory_order_seq_cst);
  // Yielding waiters poll; no notify required.
  waiter.join();
  EXPECT_GT(g.stats.caller_yields.load(), 0u);
  EXPECT_EQ(g.stats.caller_sleeps.load(), 0u);
}

class CompletionGateSleepTest
    : public ::testing::TestWithParam<GateWaitPolicy> {};

TEST_P(CompletionGateSleepTest, BlockedWaiterSleepsAndWakes) {
  CountedGate g;
  std::atomic<bool> done{false};
  std::jthread waiter([&] {
    g.gate.await(
        g.word, [](std::uint32_t v) { return v == 1; }, GetParam(), kNoSpin,
        g.counters());
    done.store(true, std::memory_order_seq_cst);
  });
  // Wait until the waiter has committed to sleeping.
  while (g.stats.caller_sleeps.load() == 0) std::this_thread::yield();
  EXPECT_FALSE(done.load());
  g.word.store(1, std::memory_order_seq_cst);
  g.gate.notify(g.word);
  waiter.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(g.stats.caller_sleeps.load(), 1u);
  EXPECT_EQ(g.stats.caller_wakeups.load(), 1u);
}

TEST_P(CompletionGateSleepTest, SpuriousNotifyDoesNotRelease) {
  // A notify without the word change re-evaluates the predicate and goes
  // back to sleep — the same robustness the kernel demands for spurious
  // futex returns.
  CountedGate g;
  std::atomic<bool> done{false};
  std::jthread waiter([&] {
    g.gate.await(
        g.word, [](std::uint32_t v) { return v == 2; }, GetParam(), kNoSpin,
        g.counters());
    done.store(true, std::memory_order_seq_cst);
  });
  while (g.stats.caller_sleeps.load() == 0) std::this_thread::yield();
  g.gate.notify(g.word);                   // word still 0: spurious
  g.word.store(1, std::memory_order_seq_cst);  // wrong value: still blocked
  g.gate.notify(g.word);
  std::this_thread::sleep_for(5ms);
  EXPECT_FALSE(done.load());
  g.word.store(2, std::memory_order_seq_cst);
  g.gate.notify(g.word);
  waiter.join();
  EXPECT_TRUE(done.load());
}

TEST_P(CompletionGateSleepTest, StopFlagReleasesABlockedWaiter) {
  // The stop-while-blocked shape every backend needs: the predicate also
  // watches a stop flag, and the stopping thread flips it + notifies.
  CountedGate g;
  std::atomic<bool> stop{false};
  std::atomic<bool> done{false};
  std::jthread waiter([&] {
    g.gate.await(
        g.word,
        [&](std::uint32_t v) {
          return v == 1 || stop.load(std::memory_order_seq_cst);
        },
        GetParam(), kNoSpin, g.counters());
    done.store(true, std::memory_order_seq_cst);
  });
  while (g.stats.caller_sleeps.load() == 0) std::this_thread::yield();
  stop.store(true, std::memory_order_seq_cst);
  g.gate.notify(g.word);
  waiter.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(g.word.load(), 0u);  // released by the flag, not the word
}

TEST_P(CompletionGateSleepTest, ManySleepersAllWake) {
  CountedGate g;
  std::atomic<unsigned> done{0};
  {
    std::vector<std::jthread> waiters;
    for (int t = 0; t < 4; ++t) {
      waiters.emplace_back([&] {
        g.gate.await(
            g.word, [](std::uint32_t v) { return v == 1; }, GetParam(),
            kNoSpin, g.counters());
        done.fetch_add(1);
      });
    }
    while (g.stats.caller_sleeps.load() < 4) std::this_thread::yield();
    g.word.store(1, std::memory_order_seq_cst);
    g.gate.notify(g.word);
  }
  EXPECT_EQ(done.load(), 4u);
  EXPECT_EQ(g.stats.caller_wakeups.load(), 4u);
}

INSTANTIATE_TEST_SUITE_P(FutexAndCondvar, CompletionGateSleepTest,
                         ::testing::Values(GateWaitPolicy::kFutex,
                                           GateWaitPolicy::kCondvar),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

#if defined(__linux__)
TEST(CompletionGateTest, FutexIsAvailableOnLinux) {
  EXPECT_TRUE(CompletionGate::futex_available());
}
#endif

TEST(CompletionGateTest, SpinCheckScheduleRampsThenStrides) {
  // The clock-read ramp: 1, 2, 4, ..., 64, then a flat 64-poll stride.
  // Before the ramp existed the first check happened at poll 64, so a
  // 1-2 µs budget overshot by a whole pause block on a loaded host.
  EXPECT_EQ(gate_spin_next_check(1), 2u);
  EXPECT_EQ(gate_spin_next_check(2), 4u);
  EXPECT_EQ(gate_spin_next_check(4), 8u);
  EXPECT_EQ(gate_spin_next_check(32), 64u);
  EXPECT_EQ(gate_spin_next_check(63), 126u);
  EXPECT_EQ(gate_spin_next_check(64), 128u);
  EXPECT_EQ(gate_spin_next_check(128), 192u);
  EXPECT_EQ(gate_spin_next_check(640), 704u);
  // Walking the schedule from the first check: monotonic, and the early
  // checks land within the first handful of polls.
  std::uint32_t at = 1;
  unsigned checks_before_poll_16 = 0;
  for (int i = 0; i < 1000 && at < 100'000; ++i) {
    if (at < 16) ++checks_before_poll_16;
    const std::uint32_t next = gate_spin_next_check(at);
    ASSERT_GT(next, at);
    at = next;
  }
  EXPECT_GE(checks_before_poll_16, 4u);  // checks at 1, 2, 4, 8 at least
}

TEST(CompletionGateTest, TinySpinBudgetStillReachesTheSleepPhase) {
  // A 1 µs budget must expire after a few polls — not spin a whole 64-pause
  // block first — so wait=futex with a tiny spin_us actually sleeps when
  // the completion is slow.
  CountedGate g;
  std::atomic<bool> done{false};
  std::jthread waiter([&] {
    g.gate.await(
        g.word, [](std::uint32_t v) { return v == 1; }, GateWaitPolicy::kFutex,
        std::chrono::microseconds{1}, g.counters());
    done.store(true, std::memory_order_seq_cst);
  });
  while (g.stats.caller_sleeps.load() == 0) std::this_thread::yield();
  EXPECT_FALSE(done.load());
  g.word.store(1, std::memory_order_seq_cst);
  g.gate.notify(g.word);
  waiter.join();
  EXPECT_EQ(g.stats.caller_sleeps.load(), 1u);
}

// --- Coalesced wakes (await_coalesced / notify_batch) ---------------------

class CompletionGateCoalesceTest
    : public ::testing::TestWithParam<GateWaitPolicy> {};

TEST_P(CompletionGateCoalesceTest, OneBatchNotifyReleasesEverySleeper) {
  // The batched-flush shape: N callers each wait on a *private* state word
  // through one shared gate; the worker completes all N words and issues a
  // single notify_batch().  Every sleeper must wake exactly once.
  constexpr unsigned kWaiters = 6;
  CompletionGate gate;
  BackendStats stats;
  GateCounters counters{&stats.caller_yields, &stats.caller_sleeps,
                        &stats.caller_wakeups};
  std::array<std::atomic<std::uint32_t>, kWaiters> words{};
  std::atomic<unsigned> done{0};
  {
    std::vector<std::jthread> waiters;
    for (unsigned t = 0; t < kWaiters; ++t) {
      waiters.emplace_back([&, t] {
        gate.await_coalesced(
            words[t], [](std::uint32_t v) { return v == 1; }, GetParam(),
            kNoSpin, counters);
        done.fetch_add(1);
      });
    }
    while (stats.caller_sleeps.load() < kWaiters) std::this_thread::yield();
    EXPECT_EQ(done.load(), 0u);
    for (auto& w : words) w.store(1, std::memory_order_seq_cst);
    gate.notify_batch();  // ONE wake for the whole batch
  }
  EXPECT_EQ(done.load(), kWaiters);
  // Exactly once each: every blocked wait slept once and returned once.
  EXPECT_EQ(stats.caller_sleeps.load(), kWaiters);
  EXPECT_EQ(stats.caller_wakeups.load(), kWaiters);
}

TEST_P(CompletionGateCoalesceTest, UnsatisfiedSleeperReparksOnNewEpoch) {
  // Partial batch: a notify_batch that completes only caller A must not
  // release caller B — B re-checks its predicate and parks on the bumped
  // epoch until a later batch completes it.
  CompletionGate gate;
  BackendStats stats;
  GateCounters counters{&stats.caller_yields, &stats.caller_sleeps,
                        &stats.caller_wakeups};
  std::atomic<std::uint32_t> word_a{0};
  std::atomic<std::uint32_t> word_b{0};
  std::atomic<bool> done_a{false};
  std::atomic<bool> done_b{false};
  std::jthread ta([&] {
    gate.await_coalesced(
        word_a, [](std::uint32_t v) { return v == 1; }, GetParam(), kNoSpin,
        counters);
    done_a.store(true, std::memory_order_seq_cst);
  });
  std::jthread tb([&] {
    gate.await_coalesced(
        word_b, [](std::uint32_t v) { return v == 1; }, GetParam(), kNoSpin,
        counters);
    done_b.store(true, std::memory_order_seq_cst);
  });
  while (stats.caller_sleeps.load() < 2) std::this_thread::yield();
  word_a.store(1, std::memory_order_seq_cst);
  gate.notify_batch();
  ta.join();
  EXPECT_TRUE(done_a.load());
  std::this_thread::sleep_for(5ms);
  EXPECT_FALSE(done_b.load());  // woke spuriously, re-parked
  word_b.store(1, std::memory_order_seq_cst);
  gate.notify_batch();
  tb.join();
  EXPECT_TRUE(done_b.load());
}

TEST_P(CompletionGateCoalesceTest, BatchCompletedBeforeSleepNeverBlocks) {
  // The publish/park race: the word is already complete when the waiter
  // arrives — await_coalesced must return without sleeping (the epoch
  // observed-before-predicate ordering makes the sleep a kernel-side
  // no-op even if notify_batch has already run).
  CompletionGate gate;
  BackendStats stats;
  GateCounters counters{&stats.caller_yields, &stats.caller_sleeps,
                        &stats.caller_wakeups};
  std::atomic<std::uint32_t> word{1};
  gate.notify_batch();
  gate.await_coalesced(
      word, [](std::uint32_t v) { return v == 1; }, GetParam(), kNoSpin,
      counters);
  EXPECT_EQ(stats.caller_sleeps.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(FutexAndCondvar, CompletionGateCoalesceTest,
                         ::testing::Values(GateWaitPolicy::kFutex,
                                           GateWaitPolicy::kCondvar),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(CompletionGateTest, EnumWordsWork) {
  // The backends wait on 32-bit enum-class state words; the gate must take
  // them directly (the futex sleeps on the word's own address).
  enum class State : std::uint32_t { kIdle = 0, kDone = 1 };
  std::atomic<State> word{State::kIdle};
  CompletionGate gate;
  std::jthread setter([&] {
    std::this_thread::sleep_for(1ms);
    word.store(State::kDone, std::memory_order_seq_cst);
    gate.notify(word);
  });
  gate.await(
      word, [](State s) { return s == State::kDone; }, GateWaitPolicy::kFutex,
      kNoSpin, GateCounters{});
  EXPECT_EQ(word.load(), State::kDone);
}

}  // namespace
}  // namespace zc
