// CompletionGate: the shared caller-wait primitive — spin/yield/futex/
// condvar policies, spurious-wake robustness, stop-while-blocked, and the
// counter wiring the backends rely on for caller_yields/sleeps/wakeups.
#include "common/completion_gate.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "sgx/backend.hpp"

namespace zc {
namespace {

using namespace std::chrono_literals;

constexpr std::chrono::microseconds kNoSpin{0};

struct CountedGate {
  std::atomic<std::uint32_t> word{0};
  CompletionGate gate;
  BackendStats stats;

  GateCounters counters() {
    return GateCounters{&stats.caller_yields, &stats.caller_sleeps,
                        &stats.caller_wakeups};
  }
};

TEST(CompletionGateTest, PolicyStringsRoundTrip) {
  for (const GateWaitPolicy policy :
       {GateWaitPolicy::kSpin, GateWaitPolicy::kYield, GateWaitPolicy::kFutex,
        GateWaitPolicy::kCondvar}) {
    GateWaitPolicy parsed;
    ASSERT_TRUE(gate_policy_from_string(to_string(policy), parsed))
        << to_string(policy);
    EXPECT_EQ(parsed, policy);
  }
  GateWaitPolicy out;
  EXPECT_FALSE(gate_policy_from_string("banana", out));
  EXPECT_FALSE(gate_policy_from_string("", out));
  EXPECT_TRUE(gate_can_sleep(GateWaitPolicy::kFutex));
  EXPECT_TRUE(gate_can_sleep(GateWaitPolicy::kCondvar));
  EXPECT_FALSE(gate_can_sleep(GateWaitPolicy::kSpin));
  EXPECT_FALSE(gate_can_sleep(GateWaitPolicy::kYield));
}

TEST(CompletionGateTest, SatisfiedPredicateReturnsWithoutBlocking) {
  CountedGate g;
  g.word.store(7);
  for (const GateWaitPolicy policy :
       {GateWaitPolicy::kSpin, GateWaitPolicy::kYield, GateWaitPolicy::kFutex,
        GateWaitPolicy::kCondvar}) {
    g.gate.await(
        g.word, [](std::uint32_t v) { return v == 7; }, policy, kNoSpin,
        g.counters());
  }
  EXPECT_EQ(g.stats.caller_yields.load(), 0u);
  EXPECT_EQ(g.stats.caller_sleeps.load(), 0u);
  EXPECT_EQ(g.stats.caller_wakeups.load(), 0u);
}

TEST(CompletionGateTest, SpinPhaseCatchesAFastCompletion) {
  // A completion inside the spin budget never yields or sleeps, whatever
  // the policy — the paper's pure completion spin is the common fast path.
  for (const GateWaitPolicy policy :
       {GateWaitPolicy::kYield, GateWaitPolicy::kFutex,
        GateWaitPolicy::kCondvar}) {
    CountedGate g;
    std::jthread setter([&] { g.word.store(1, std::memory_order_seq_cst); });
    g.gate.await(
        g.word, [](std::uint32_t v) { return v == 1; }, policy,
        std::chrono::microseconds{200'000}, g.counters());
    setter.join();
    EXPECT_EQ(g.stats.caller_sleeps.load(), 0u) << to_string(policy);
  }
}

TEST(CompletionGateTest, YieldPolicyCountsYields) {
  CountedGate g;
  std::jthread waiter([&] {
    g.gate.await(
        g.word, [](std::uint32_t v) { return v == 1; },
        GateWaitPolicy::kYield, kNoSpin, g.counters());
  });
  std::this_thread::sleep_for(2ms);
  g.word.store(1, std::memory_order_seq_cst);
  // Yielding waiters poll; no notify required.
  waiter.join();
  EXPECT_GT(g.stats.caller_yields.load(), 0u);
  EXPECT_EQ(g.stats.caller_sleeps.load(), 0u);
}

class CompletionGateSleepTest
    : public ::testing::TestWithParam<GateWaitPolicy> {};

TEST_P(CompletionGateSleepTest, BlockedWaiterSleepsAndWakes) {
  CountedGate g;
  std::atomic<bool> done{false};
  std::jthread waiter([&] {
    g.gate.await(
        g.word, [](std::uint32_t v) { return v == 1; }, GetParam(), kNoSpin,
        g.counters());
    done.store(true, std::memory_order_seq_cst);
  });
  // Wait until the waiter has committed to sleeping.
  while (g.stats.caller_sleeps.load() == 0) std::this_thread::yield();
  EXPECT_FALSE(done.load());
  g.word.store(1, std::memory_order_seq_cst);
  g.gate.notify(g.word);
  waiter.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(g.stats.caller_sleeps.load(), 1u);
  EXPECT_EQ(g.stats.caller_wakeups.load(), 1u);
}

TEST_P(CompletionGateSleepTest, SpuriousNotifyDoesNotRelease) {
  // A notify without the word change re-evaluates the predicate and goes
  // back to sleep — the same robustness the kernel demands for spurious
  // futex returns.
  CountedGate g;
  std::atomic<bool> done{false};
  std::jthread waiter([&] {
    g.gate.await(
        g.word, [](std::uint32_t v) { return v == 2; }, GetParam(), kNoSpin,
        g.counters());
    done.store(true, std::memory_order_seq_cst);
  });
  while (g.stats.caller_sleeps.load() == 0) std::this_thread::yield();
  g.gate.notify(g.word);                   // word still 0: spurious
  g.word.store(1, std::memory_order_seq_cst);  // wrong value: still blocked
  g.gate.notify(g.word);
  std::this_thread::sleep_for(5ms);
  EXPECT_FALSE(done.load());
  g.word.store(2, std::memory_order_seq_cst);
  g.gate.notify(g.word);
  waiter.join();
  EXPECT_TRUE(done.load());
}

TEST_P(CompletionGateSleepTest, StopFlagReleasesABlockedWaiter) {
  // The stop-while-blocked shape every backend needs: the predicate also
  // watches a stop flag, and the stopping thread flips it + notifies.
  CountedGate g;
  std::atomic<bool> stop{false};
  std::atomic<bool> done{false};
  std::jthread waiter([&] {
    g.gate.await(
        g.word,
        [&](std::uint32_t v) {
          return v == 1 || stop.load(std::memory_order_seq_cst);
        },
        GetParam(), kNoSpin, g.counters());
    done.store(true, std::memory_order_seq_cst);
  });
  while (g.stats.caller_sleeps.load() == 0) std::this_thread::yield();
  stop.store(true, std::memory_order_seq_cst);
  g.gate.notify(g.word);
  waiter.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(g.word.load(), 0u);  // released by the flag, not the word
}

TEST_P(CompletionGateSleepTest, ManySleepersAllWake) {
  CountedGate g;
  std::atomic<unsigned> done{0};
  {
    std::vector<std::jthread> waiters;
    for (int t = 0; t < 4; ++t) {
      waiters.emplace_back([&] {
        g.gate.await(
            g.word, [](std::uint32_t v) { return v == 1; }, GetParam(),
            kNoSpin, g.counters());
        done.fetch_add(1);
      });
    }
    while (g.stats.caller_sleeps.load() < 4) std::this_thread::yield();
    g.word.store(1, std::memory_order_seq_cst);
    g.gate.notify(g.word);
  }
  EXPECT_EQ(done.load(), 4u);
  EXPECT_EQ(g.stats.caller_wakeups.load(), 4u);
}

INSTANTIATE_TEST_SUITE_P(FutexAndCondvar, CompletionGateSleepTest,
                         ::testing::Values(GateWaitPolicy::kFutex,
                                           GateWaitPolicy::kCondvar),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

#if defined(__linux__)
TEST(CompletionGateTest, FutexIsAvailableOnLinux) {
  EXPECT_TRUE(CompletionGate::futex_available());
}
#endif

TEST(CompletionGateTest, EnumWordsWork) {
  // The backends wait on 32-bit enum-class state words; the gate must take
  // them directly (the futex sleeps on the word's own address).
  enum class State : std::uint32_t { kIdle = 0, kDone = 1 };
  std::atomic<State> word{State::kIdle};
  CompletionGate gate;
  std::jthread setter([&] {
    std::this_thread::sleep_for(1ms);
    word.store(State::kDone, std::memory_order_seq_cst);
    gate.notify(word);
  });
  gate.await(
      word, [](State s) { return s == State::kDone; }, GateWaitPolicy::kFutex,
      kNoSpin, GateCounters{});
  EXPECT_EQ(word.load(), State::kDone);
}

}  // namespace
}  // namespace zc
