#include "common/cycles.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace zc {
namespace {

TEST(Cycles, RdtscIsMonotonicOnOneThread) {
  std::uint64_t prev = rdtsc();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = rdtsc();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(Cycles, TscFrequencyIsPlausible) {
  const std::uint64_t hz = tsc_hz();
  // Any machine this runs on clocks between 0.5 and 10 GHz.
  EXPECT_GT(hz, 500'000'000ULL);
  EXPECT_LT(hz, 10'000'000'000ULL);
}

TEST(Cycles, TscFrequencyIsMemoised) {
  EXPECT_EQ(tsc_hz(), tsc_hz());
}

TEST(Cycles, CyclesToNsRoundTrip) {
  const std::uint64_t cycles = 1'000'000;
  const double ns = cycles_to_ns(cycles);
  const std::uint64_t back = ns_to_cycles(ns);
  EXPECT_NEAR(static_cast<double>(back), static_cast<double>(cycles),
              static_cast<double>(cycles) * 0.01);
}

TEST(Cycles, NsToCyclesOfNonPositiveIsZero) {
  EXPECT_EQ(ns_to_cycles(0.0), 0u);
  EXPECT_EQ(ns_to_cycles(-5.0), 0u);
}

TEST(Cycles, BurnCyclesBurnsAtLeastRequested) {
  for (const std::uint64_t target : {1'000ULL, 13'500ULL, 100'000ULL}) {
    const std::uint64_t c0 = rdtsc();
    burn_cycles(target);
    const std::uint64_t elapsed = rdtsc() - c0;
    EXPECT_GE(elapsed, target);
  }
}

TEST(Cycles, BurnZeroCyclesReturnsImmediately) {
  const std::uint64_t c0 = rdtsc();
  burn_cycles(0);
  // Should cost well under a microsecond.
  EXPECT_LT(cycles_to_ns(rdtsc() - c0), 10'000.0);
}

TEST(Cycles, BurnIsReasonablyTight) {
  // burn_cycles should not overshoot by more than ~30% for sizeable burns
  // (one pause granularity of slack for small ones).
  const std::uint64_t target = 1'000'000;
  const std::uint64_t c0 = rdtsc();
  burn_cycles(target);
  const std::uint64_t elapsed = rdtsc() - c0;
  EXPECT_LT(elapsed, target + target / 3 + 10'000);
}

TEST(Cycles, PauseNExecutes) {
  const std::uint64_t c0 = rdtsc();
  pause_n(10'000);
  const std::uint64_t elapsed = rdtsc() - c0;
  // 10k pauses cost at least 10k cycles on any x86.
  EXPECT_GT(elapsed, 10'000u);
}

TEST(Cycles, MeasuredPauseCostIsPlausible) {
  const std::uint64_t cost = measured_pause_cycles();
  // Paper: up to 140 cycles on Skylake; anywhere in [1, 1000] is sane.
  EXPECT_GE(cost, 1u);
  EXPECT_LT(cost, 1'000u);
}

TEST(Cycles, MeasuredPauseCostIsMemoised) {
  EXPECT_EQ(measured_pause_cycles(), measured_pause_cycles());
}

TEST(Cycles, BurnScalesRoughlyLinearly) {
  const std::uint64_t c0 = rdtsc();
  burn_cycles(100'000);
  const std::uint64_t small = rdtsc() - c0;
  const std::uint64_t c1 = rdtsc();
  burn_cycles(1'000'000);
  const std::uint64_t large = rdtsc() - c1;
  EXPECT_GT(large, small * 5);
}

}  // namespace
}  // namespace zc
