#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace zc {
namespace {

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, PrintsHeaderRuleAndRows) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // header + rule + 2 rows = 4 lines
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"h"});
  t.add_row({"wiiiiiide"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // The rule line must be at least as wide as the widest cell.
  const auto rule_start = out.find('\n') + 1;
  const auto rule_end = out.find('\n', rule_start);
  EXPECT_GE(rule_end - rule_start, std::string("wiiiiiide").size());
}

TEST(Table, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 0), "1");
  EXPECT_EQ(Table::num(-0.5, 3), "-0.500");
}

TEST(Table, CountsRowsAndCols) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace zc
