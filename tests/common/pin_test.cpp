#include "common/pin.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace zc {
namespace {

TEST(Pin, HostReportsAtLeastOneCpu) {
  EXPECT_GE(host_logical_cpus(), 1u);
}

TEST(Pin, PinToCpuZeroSucceeds) {
  std::jthread t([] {
    EXPECT_TRUE(pin_current_thread(0));
    const auto cpu = current_cpu();
    ASSERT_TRUE(cpu.has_value());
    EXPECT_EQ(*cpu, 0u);
  });
}

TEST(Pin, PinWrapsModuloHostCpus) {
  std::jthread t([] {
    // A huge index must wrap rather than fail.
    EXPECT_TRUE(pin_current_thread(host_logical_cpus() * 3));
  });
}

TEST(Pin, WindowOfZeroWidthFails) {
  EXPECT_FALSE(pin_current_thread_to_window(0, 0));
}

TEST(Pin, WindowPinKeepsThreadInside) {
  const unsigned width = std::min(host_logical_cpus(), 4u);
  std::jthread t([width] {
    ASSERT_TRUE(pin_current_thread_to_window(0, width));
    for (int i = 0; i < 100; ++i) {
      const auto cpu = current_cpu();
      ASSERT_TRUE(cpu.has_value());
      EXPECT_LT(*cpu, width);
    }
  });
}

TEST(Pin, WindowWiderThanHostStillSucceeds) {
  std::jthread t([] {
    EXPECT_TRUE(pin_current_thread_to_window(0, host_logical_cpus() + 16));
  });
}

}  // namespace
}  // namespace zc
