// Configuration of ZC-Switchless (paper §IV).
//
// Note what is *not* here: no list of switchless routines (every ocall is a
// candidate, §IV-C) and no fixed worker count (the scheduler adapts it at
// run time, §IV-A).  The constants below are the paper's own empirical
// choices, kept as knobs only for the ablation benches.
#pragma once

#include <chrono>
#include <cstddef>

#include "common/completion_gate.hpp"
#include "common/cpu_meter.hpp"
#include "sgx/backend.hpp"

namespace zc {

struct ZcConfig {
  /// Scheduler quantum Q ("set empirically to 10 ms").
  std::chrono::microseconds quantum{10'000};

  /// Micro-quantum factor µ ("we empirically set µ = 1/100"): each probe of
  /// the configuration phase lasts µ·Q.
  double mu = 0.01;

  /// Upper bound on worker threads. 0 means logical_cpus / 2, the paper's
  /// probe range (the scheduler explores 0..N/2 inclusive).
  unsigned max_workers = 0;

  /// Workers active before the first configuration phase. The paper's
  /// benchmarks start at logical_cpus / 2 (0 keeps that default).
  unsigned initial_workers_plus_one = 0;  ///< 0 = default, else value-1

  /// Per-worker preallocated untrusted request pool (§IV-B). Small enough
  /// that realistic workloads occasionally exhaust it and pay the
  /// reset-via-ocall (the latency spikes discussed under Fig. 8).
  std::size_t worker_pool_bytes = std::size_t{1} << 20;

  /// Caller-side wait policy while a worker executes the request: spin
  /// (`pause`) for at most this budget, then yield between result polls
  /// (every yield bumps BackendStats::caller_yields).  The paper's design
  /// spins for the whole wait — on a machine with a core per busy-waiting
  /// thread the budget never expires and behaviour is identical — but on
  /// narrower hosts an unbounded spin burns whole scheduler timeslices
  /// per hand-off (the same pragmatism as ZcBatchedConfig::spin).
  std::chrono::microseconds spin{50};

  /// What the caller does once the spin budget expires (CompletionGate):
  /// kYield keeps the historical spin-then-yield loop; kFutex/kCondvar put
  /// the blocked caller to sleep until the worker publishes completion
  /// (counted in BackendStats::caller_sleeps/caller_wakeups); kSpin never
  /// stops spinning (the hotcalls-style ablation baseline).  The batched
  /// and async planes additionally accept coalesce=on, which reroutes the
  /// sleeping policies through CompletionGate::await_coalesced /
  /// notify_batch so one wake releases a whole flushed batch; plain ZC
  /// hands off 1:1 and has nothing to coalesce.
  GateWaitPolicy wait = GateWaitPolicy::kYield;

  /// Which allocator backs the untrusted call frames (`pool=` option).
  /// kBump is the paper's per-worker bump pool: frames above
  /// worker_pool_bytes always fall back to regular calls.  kSlab routes
  /// frames through a shared size-classed SlabPool (per-frame free,
  /// thread-local magazines), removing the large-payload cliff.
  FramePoolKind pool = FramePoolKind::kBump;

  /// Payload copy discipline advertised to callers (`copy=` option).
  /// kSingle lets apps build/consume payloads directly in the untrusted
  /// frame (CallDesc producers/consumers, marshal.hpp) against handlers
  /// registered in_place_capable.
  CopyMode copy = CopyMode::kDouble;

  /// Disable the feedback scheduler and keep `initial workers` forever
  /// (ablation: isolates the call path from the adaptation policy).
  bool scheduler_enabled = true;

  /// Optional CPU accounting for worker + scheduler threads.
  CpuUsageMeter* meter = nullptr;

  /// Boundary direction: untrusted workers serving ocalls (default) or
  /// trusted workers serving ecalls.
  CallDirection direction = CallDirection::kOcall;

  unsigned resolved_max_workers(unsigned logical_cpus) const noexcept {
    return max_workers != 0 ? max_workers
                            : (logical_cpus / 2 == 0 ? 1 : logical_cpus / 2);
  }

  unsigned resolved_initial_workers(unsigned logical_cpus) const noexcept {
    const unsigned max = resolved_max_workers(logical_cpus);
    if (initial_workers_plus_one == 0) return max;
    const unsigned w = initial_workers_plus_one - 1;
    return w > max ? max : w;
  }

  /// Sets an explicit initial worker count (0 is a valid choice).
  ZcConfig& with_initial_workers(unsigned w) noexcept {
    initial_workers_plus_one = w + 1;
    return *this;
  }
};

}  // namespace zc
