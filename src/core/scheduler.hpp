// ZC-Switchless feedback scheduler (paper §IV-A, Fig. 5).
//
// The scheduler alternates between two phases:
//  - a *scheduling phase* of one quantum Q (10 ms) during which the chosen
//    number of workers M serves calls, and
//  - a *configuration phase* of N/2+1 micro-quanta of µ·Q each, probing
//    every worker count i in 0..N/2 and recording the fallback count F_i
//    observed under each.
// It then keeps the M' minimising the wasted-cycle estimate
//    U_i = F_i * T_es + i * µ * Q * f_CPU
// (first term: transitions paid by fallbacks; second: cycles monopolised by
// i busy-waiting workers during the probe window).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/worker.hpp"
#include "core/zc_config.hpp"

namespace zc {

/// Feedback rule for the batched backend's partial-flush window
/// (`zc_batched:flush=feedback`): the same grow/shrink-by-quantum idea the
/// scheduler applies to worker counts, applied to the flush grace period.
/// Called once per quantum with the flush/call deltas observed during it:
///  - mean fill < batch/2  -> the timer is firing on mostly-empty buffers;
///    double the window (toward `max_ns`) so arrivals get longer to
///    coalesce and each sweep amortises more calls;
///  - mean fill >= 90% of batch -> demand fills buffers on its own; halve
///    the window (toward `min_ns`) so a straggler published right after a
///    full flush is not stranded behind a long grace period;
///  - otherwise, or with no flushes observed, keep the window.
/// Pure and single-threaded by contract (exposed for unit tests); the
/// batched backend's controller thread applies the result to the live
/// window atomically.
std::uint64_t adapt_flush_window(std::uint64_t window_ns,
                                 std::uint64_t flushes_delta,
                                 std::uint64_t calls_delta, unsigned batch,
                                 std::uint64_t min_ns,
                                 std::uint64_t max_ns) noexcept;

class ZcScheduler {
 public:
  /// `workers`, `stats` and `active_count` must outlive the scheduler.
  /// `stats` is the backend's shared counter block: during a configuration
  /// phase the scheduler samples its fallback counter at each probe-window
  /// boundary and uses the per-window difference as F_i in the wasted-cycle
  /// objective U_i.  `active_count` is the callers' scan bound, published
  /// via set_active().
  ZcScheduler(Enclave& enclave, const ZcConfig& cfg,
              std::vector<std::unique_ptr<ZcWorker>>& workers,
              BackendStats& stats, std::atomic<unsigned>& active_count);
  ~ZcScheduler();

  ZcScheduler(const ZcScheduler&) = delete;
  ZcScheduler& operator=(const ZcScheduler&) = delete;

  void start();
  void stop();

  /// Applies a worker count: commands workers [0,m) to run and [m,max) to
  /// pause, and publishes `m` to the callers' scan bound.  Also used
  /// directly by tests/ablations when the feedback loop is disabled.
  void set_active(unsigned m);

  /// Wall-clock nanoseconds spent at each worker count since start
  /// (index = worker count).  The paper reports this distribution for the
  /// OpenSSL benchmark (§V-B: "0,1,2,3,4 workers for 9.4%, 4.6%, ...").
  std::vector<std::uint64_t> occupancy_ns() const;

  /// Completed configuration phases so far.
  std::uint64_t config_phases() const noexcept {
    return config_phases_.load(std::memory_order_relaxed);
  }

  /// Worker count chosen by the most recent configuration phase.
  unsigned last_decision() const noexcept {
    return last_decision_.load(std::memory_order_relaxed);
  }

  /// The wasted-cycle objective (exposed for tests and ablations):
  /// fallbacks*T_es + workers*window_cycles.
  static std::uint64_t wasted_cycles(std::uint64_t fallbacks,
                                     std::uint64_t tes_cycles,
                                     unsigned workers,
                                     std::uint64_t window_cycles) noexcept {
    return fallbacks * tes_cycles +
           static_cast<std::uint64_t>(workers) * window_cycles;
  }

 private:
  void main(const std::stop_token& st);
  bool interruptible_sleep(std::chrono::microseconds d,
                           const std::stop_token& st);
  void note_occupancy_change(unsigned new_count);

  Enclave& enclave_;
  const ZcConfig& cfg_;
  std::vector<std::unique_ptr<ZcWorker>>& workers_;
  BackendStats& stats_;
  std::atomic<unsigned>& active_count_;

  std::atomic<std::uint64_t> config_phases_{0};
  std::atomic<unsigned> last_decision_{0};

  mutable std::mutex occupancy_mu_;
  std::vector<std::uint64_t> occupancy_ns_;
  unsigned occupancy_current_ = 0;
  std::uint64_t occupancy_since_ = 0;

  std::mutex sleep_mu_;
  std::condition_variable_any sleep_cv_;
  std::jthread thread_;
};

}  // namespace zc
