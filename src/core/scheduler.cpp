#include "core/scheduler.hpp"

#include <limits>

#include "common/cycles.hpp"
#include "common/pin.hpp"

namespace zc {

std::uint64_t adapt_flush_window(std::uint64_t window_ns,
                                 std::uint64_t flushes_delta,
                                 std::uint64_t calls_delta, unsigned batch,
                                 std::uint64_t min_ns,
                                 std::uint64_t max_ns) noexcept {
  if (flushes_delta == 0 || batch == 0) return window_ns;  // no signal
  // Integer comparisons of the mean fill calls_delta / flushes_delta
  // against batch/2 and 0.9*batch, without division.
  if (calls_delta * 2 < flushes_delta * batch) {
    const std::uint64_t grown = window_ns * 2;
    return grown > max_ns ? max_ns : grown;
  }
  if (calls_delta * 10 >= flushes_delta * batch * 9) {
    const std::uint64_t shrunk = window_ns / 2;
    return shrunk < min_ns ? min_ns : shrunk;
  }
  return window_ns;
}

ZcScheduler::ZcScheduler(Enclave& enclave, const ZcConfig& cfg,
                         std::vector<std::unique_ptr<ZcWorker>>& workers,
                         BackendStats& stats,
                         std::atomic<unsigned>& active_count)
    : enclave_(enclave),
      cfg_(cfg),
      workers_(workers),
      stats_(stats),
      active_count_(active_count),
      occupancy_ns_(workers.size() + 1, 0),
      occupancy_since_(wall_ns()) {}

ZcScheduler::~ZcScheduler() { stop(); }

void ZcScheduler::start() {
  if (thread_.joinable()) return;
  occupancy_since_ = wall_ns();
  occupancy_current_ = active_count_.load(std::memory_order_relaxed);
  thread_ = std::jthread([this](std::stop_token st) { main(st); });
}

void ZcScheduler::stop() {
  if (!thread_.joinable()) return;
  thread_.request_stop();
  sleep_cv_.notify_all();
  thread_.join();
}

void ZcScheduler::note_occupancy_change(unsigned new_count) {
  const std::uint64_t now = wall_ns();
  std::lock_guard lock(occupancy_mu_);
  if (occupancy_current_ < occupancy_ns_.size()) {
    occupancy_ns_[occupancy_current_] += now - occupancy_since_;
  }
  occupancy_current_ = new_count;
  occupancy_since_ = now;
}

void ZcScheduler::set_active(unsigned m) {
  if (m > workers_.size()) m = static_cast<unsigned>(workers_.size());
  // Publish the scan bound first so callers stop reserving soon-to-pause
  // workers, then deliver per-worker commands (paper: "the scheduler sets a
  // value in the worker's buffer").
  active_count_.store(m, std::memory_order_release);
  for (unsigned i = 0; i < workers_.size(); ++i) {
    workers_[i]->command(i < m ? SchedCmd::kRun : SchedCmd::kPause);
  }
  note_occupancy_change(m);
}

std::vector<std::uint64_t> ZcScheduler::occupancy_ns() const {
  const std::uint64_t now = wall_ns();
  std::lock_guard lock(occupancy_mu_);
  std::vector<std::uint64_t> out = occupancy_ns_;
  if (occupancy_current_ < out.size()) {
    out[occupancy_current_] += now - occupancy_since_;
  }
  return out;
}

bool ZcScheduler::interruptible_sleep(std::chrono::microseconds d,
                                      const std::stop_token& st) {
  std::unique_lock lock(sleep_mu_);
  return !sleep_cv_.wait_for(lock, st, d, [] { return false; });
  // wait_for returns false on timeout (predicate still false) => slept
  // fully; returns true only when stop was requested.
}

void ZcScheduler::main(const std::stop_token& st) {
  const SimConfig& sim = enclave_.config();
  if (sim.pin_threads) {
    pin_current_thread_to_window(sim.pin_base_cpu, sim.logical_cpus);
  }
  std::size_t meter_slot = 0;
  if (cfg_.meter != nullptr) {
    meter_slot = cfg_.meter->register_current_thread();
  }

  const std::uint64_t tes = enclave_.transitions().tes_cycles();
  const auto micro_quantum = std::chrono::microseconds(static_cast<long>(
      static_cast<double>(cfg_.quantum.count()) * cfg_.mu));
  const std::uint64_t micro_cycles = ns_to_cycles(
      static_cast<double>(micro_quantum.count()) * 1000.0);
  const unsigned probe_max = static_cast<unsigned>(workers_.size());

  while (!st.stop_requested()) {
    // --- Scheduling phase: run the chosen configuration for one quantum.
    if (!interruptible_sleep(cfg_.quantum, st)) break;
    if (cfg_.meter != nullptr) cfg_.meter->checkpoint(meter_slot);

    // --- Configuration phase: probe every worker count i in 0..N/2 for
    // µ·Q each and record the fallback calls F_i under each.
    std::uint64_t best_u = std::numeric_limits<std::uint64_t>::max();
    unsigned best_m = 0;
    bool aborted = false;
    for (unsigned i = 0; i <= probe_max; ++i) {
      set_active(i);
      const std::uint64_t f_before = stats_.fallback_calls.load();
      if (!interruptible_sleep(micro_quantum, st)) {
        aborted = true;
        break;
      }
      const std::uint64_t f_i = stats_.fallback_calls.load() - f_before;
      const std::uint64_t u_i = wasted_cycles(f_i, tes, i, micro_cycles);
      if (u_i < best_u) {
        best_u = u_i;
        best_m = i;
      }
    }
    if (aborted) break;

    last_decision_.store(best_m, std::memory_order_relaxed);
    config_phases_.fetch_add(1, std::memory_order_relaxed);
    set_active(best_m);
  }

  if (cfg_.meter != nullptr) cfg_.meter->unregister_current_thread(meter_slot);
}

}  // namespace zc
