// ZC-Switchless worker thread and its shared buffer (paper §IV-B).
//
// Each worker owns a `buffer` with the four fields of the paper: a
// preallocated untrusted memory pool for requests, the most recent
// switchless request, a status word, and a scheduler-communication word.
// The status word implements the state machine of Fig. 6:
//
//        +-> RESERVED -> PROCESSING -> WAITING -+
//   UNUSED <------------------------------------+
//        +-> PAUSED (scheduler)   +-> EXIT (termination)
//
// Callers drive UNUSED->RESERVED->PROCESSING and WAITING->UNUSED; the worker
// drives PROCESSING->WAITING; the scheduler drives UNUSED<->PAUSED and
// ->EXIT.  Synchronisation is lock-free on the hot path (atomic CAS /
// release-acquire), with a condition variable only for PAUSED sleep.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/completion_gate.hpp"
#include "common/pool.hpp"
#include "core/zc_config.hpp"
#include "sgx/enclave.hpp"

namespace zc {

enum class WorkerState : std::uint32_t {
  kUnused = 0,   ///< idle, reservable by callers
  kReserved,     ///< a caller is marshalling its request
  kProcessing,   ///< the worker executes the request
  kWaiting,      ///< results ready, waiting for the caller to collect
  kPaused,       ///< deactivated by the scheduler (sleeping, no CPU)
  kExit,         ///< terminated
};

enum class SchedCmd : std::uint32_t {
  kRun = 0,  ///< serve calls
  kPause,    ///< park as soon as not reserved
  kExit,     ///< clean up and terminate
};

const char* to_string(WorkerState s) noexcept;

class ZcWorker {
 public:
  ZcWorker(Enclave& enclave, const ZcConfig& cfg, BackendStats& stats,
           unsigned index);
  ~ZcWorker();

  ZcWorker(const ZcWorker&) = delete;
  ZcWorker& operator=(const ZcWorker&) = delete;

  /// Spawns the worker thread (state stays UNUSED until commanded).
  void start();

  /// Asks the thread to exit and joins it.
  void shutdown();

  // --- caller side (enclave threads) --------------------------------------

  /// Attempts UNUSED -> RESERVED. Wait-free.
  bool try_reserve() noexcept;

  /// Allocates frame memory from the worker's request pool.  When the pool
  /// is full it is freed and re-allocated via a (regular) ocall — the
  /// caller pays one enclave transition — then allocation is retried.
  /// Returns nullptr if `bytes` exceed the pool outright.
  void* alloc_frame(std::size_t bytes);

  /// Publishes the marshalled request and moves RESERVED -> PROCESSING.
  void submit(void* frame) noexcept;

  /// Waits until the worker reports WAITING: spins for the configured
  /// budget, then yields or sleeps per ZcConfig::wait (CompletionGate).
  void wait_done() noexcept;

  /// Returns the buffer to UNUSED after unmarshalling (WAITING -> UNUSED).
  void release() noexcept;

  /// Abandons a reservation without submitting (RESERVED -> UNUSED).
  void cancel_reservation() noexcept;

  // --- scheduler side ------------------------------------------------------

  /// Posts a scheduler command and wakes the worker if parked.
  void command(SchedCmd cmd) noexcept;

  WorkerState state() const noexcept {
    return status_.load(std::memory_order_acquire);
  }
  SchedCmd current_command() const noexcept {
    return cmd_.load(std::memory_order_acquire);
  }
  unsigned index() const noexcept { return index_; }

  /// Calls served by this worker (lifetime).
  std::uint64_t calls_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void main();

  Enclave& enclave_;
  const ZcConfig& cfg_;
  BackendStats& stats_;
  unsigned index_;

  // The paper's worker buffer (§IV-B): status + scheduler word + request +
  // preallocated pool.
  std::atomic<WorkerState> status_{WorkerState::kUnused};
  std::atomic<SchedCmd> cmd_{SchedCmd::kRun};
  void* request_ = nullptr;  ///< most recent request; ordered by status_
  BumpPool pool_;
  CompletionGate done_gate_;  ///< the caller's hand-off wait on status_

  std::atomic<std::uint64_t> served_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  std::jthread thread_;
};

}  // namespace zc
