#include "core/zc_async.hpp"

#include "common/cycles.hpp"
#include "common/pin.hpp"
#include "sgx/marshal.hpp"

namespace zc {

// --- CallFuture --------------------------------------------------------------

bool CallFuture::poll() const noexcept {
  if (!engaged_) return false;
  if (!pending_) return true;
  return backend_->handle_completed(handle_);
}

CallPath CallFuture::wait() {
  if (pending_) {
    path_ = backend_->collect(handle_);
    pending_ = false;
    backend_ = nullptr;
  }
  return path_;
}

void CallFuture::drop() noexcept {
  if (pending_) {
    backend_->abandon(handle_);
    pending_ = false;
    backend_ = nullptr;
  }
}

// --- ZcAsyncBackend ----------------------------------------------------------

// Wakes a possibly-parked worker.  The empty lock/unlock orders this
// notify after the worker's predicate evaluation: a worker between its
// predicate check and cv.wait() holds the mutex, so acquiring it here
// guarantees the notify lands after the wait began (no lost wakeup).
void ZcAsyncBackend::wake(Worker& w) {
  {
    std::lock_guard lock(w.mu);
  }
  w.cv.notify_one();
}

void ZcAsyncBackend::wake_a_worker() {
  // Prefer a parked worker (it will re-check the table); a spinning worker
  // discovers the published slot on its next sweep anyway.
  for (auto& w : workers_) {
    if (w->parked.load(std::memory_order_seq_cst)) {
      wake(*w);
      return;
    }
  }
}

ZcAsyncBackend::ZcAsyncBackend(Enclave& enclave, ZcAsyncConfig cfg)
    : enclave_(enclave), cfg_(std::move(cfg)) {
  if (cfg_.pool == FramePoolKind::kSlab) {
    slab_ = std::make_unique<SlabPool>();
    slab_->set_counters(SlabPool::Counters{
        &stats_.slab_hits, &stats_.slab_misses, &stats_.slab_grows});
  }
  if (!cfg_.ring) {
    slots_.reserve(cfg_.queue);
    for (unsigned i = 0; i < cfg_.queue; ++i) {
      slots_.push_back(std::make_unique<Slot>(cfg_.slot_pool_bytes));
    }
  }
  workers_.reserve(cfg_.workers);
  const unsigned workers = cfg_.workers == 0 ? 1 : cfg_.workers;
  // Ring mode: the completion table becomes one submit ring per worker,
  // splitting `queue` evenly (shares round up to powers of two, so the
  // effective depth — queue_depth() — may exceed the request).
  const unsigned per_ring =
      (cfg_.queue + workers - 1) / workers < 2
          ? 2
          : (cfg_.queue + workers - 1) / workers;
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    auto w = std::make_unique<Worker>();
    if (cfg_.ring) {
      w->ring = std::make_unique<MpscSlotRing<Slot>>(per_ring, 0,
                                                     cfg_.slot_pool_bytes);
    }
    workers_.push_back(std::move(w));
  }
}

unsigned ZcAsyncBackend::queue_depth() const noexcept {
  if (!cfg_.ring) return static_cast<unsigned>(slots_.size());
  unsigned total = 0;
  for (const auto& w : workers_) {
    total += static_cast<unsigned>(w->ring->capacity());
  }
  return total;
}

ZcAsyncBackend::~ZcAsyncBackend() { stop(); }

void ZcAsyncBackend::start() {
  if (running_.exchange(true)) return;
  for (auto& w : workers_) {
    w->cmd.store(WorkerCmd::kRun, std::memory_order_release);
    w->thread = std::jthread([this, worker = w.get()] { worker_main(*worker); });
  }
  active_count_.store(static_cast<unsigned>(workers_.size()),
                      std::memory_order_release);
}

void ZcAsyncBackend::stop() {
  if (!running_.exchange(false)) return;
  active_count_.store(0, std::memory_order_release);
  for (auto& w : workers_) {
    w->cmd.store(WorkerCmd::kExit, std::memory_order_seq_cst);
    wake(*w);
    if (w->thread.joinable()) w->thread.join();
  }
}

void ZcAsyncBackend::set_active_workers(unsigned m) {
  if (!running_.load(std::memory_order_relaxed)) return;
  const auto max = static_cast<unsigned>(workers_.size());
  if (m > max) m = max;
  // Publish the claim bound first so submit() stops queueing new work when
  // everyone is about to pause; queued slots are still drained (paused
  // workers wake for them).
  active_count_.store(m, std::memory_order_release);
  for (unsigned i = 0; i < max; ++i) {
    Worker& w = *workers_[i];
    // kExit is terminal: a churn thread racing stop() must never overwrite
    // it, or the worker would park/run forever and stop()'s join would
    // hang.  CAS from any non-exit command only.
    const WorkerCmd desired = i < m ? WorkerCmd::kRun : WorkerCmd::kPause;
    WorkerCmd cur = w.cmd.load(std::memory_order_seq_cst);
    bool changed = false;
    while (cur != WorkerCmd::kExit && cur != desired) {
      if (w.cmd.compare_exchange_weak(cur, desired,
                                      std::memory_order_seq_cst)) {
        changed = true;
        break;
      }
    }
    // Only an actual command transition needs the worker's attention —
    // re-applying the current count must not turn scheduler churn into a
    // spurious-wake storm (same fix as ZcBatchedBackend; pinned by the
    // churn stress test's worker_wakeups assertions).
    if (changed) wake(w);
  }
}

void ZcAsyncBackend::execute_regular(const CallDesc& desc) {
  if (cfg_.direction == CallDirection::kOcall) {
    execute_regular_ocall(enclave_, desc);
  } else {
    execute_regular_ecall(enclave_, desc);
  }
}

CallFuture ZcAsyncBackend::inline_fallback(const CallDesc& desc) {
  execute_regular(desc);
  const std::uint64_t elided = copies_elided_by(desc);
  if (elided != 0) stats_.copies_elided.add(elided);
  stats_.fallback_calls.add();
  return CallFuture(CallPath::kFallback);
}

bool ZcAsyncBackend::try_submit(const CallDesc& desc, FutureHandle& out) {
  if (!running_.load(std::memory_order_relaxed)) return false;

  const unsigned m = active_count_.load(std::memory_order_acquire);
  if (m == 0) return false;

  if (cfg_.ring) return try_submit_ring(desc, m, out);

  // Claim a free completion-table slot, starting from a rotating index so
  // concurrent submitters spread across the table.  Table full: immediate
  // refusal — backpressure without busy waiting, as in plain ZC.
  Slot* slot = nullptr;
  std::uint32_t index = 0;
  const auto n = static_cast<std::uint32_t>(slots_.size());
  const std::uint64_t first = ticket_.fetch_add(1, std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto probe = static_cast<std::uint32_t>((first + i) % n);
    Slot& candidate = *slots_[probe];
    SlotState expected = SlotState::kFree;
    if (candidate.state.compare_exchange_strong(expected, SlotState::kClaimed,
                                                std::memory_order_acquire,
                                                std::memory_order_relaxed)) {
      slot = &candidate;
      index = probe;
      break;
    }
  }
  if (slot == nullptr) return false;

  void* mem = nullptr;
  if (slab_ != nullptr) {
    // Shared slab: per-frame blocks, freed at release — no per-claim
    // reset and no size cliff (the slab never refuses).
    mem = slab_->allocate(frame_bytes(desc));
  } else {
    slot->pool.reset();  // single-request pool: fresh for every claim
    mem = slot->pool.allocate(frame_bytes(desc), 64);
  }
  if (mem == nullptr) {
    // Request larger than the slot pool: cannot go switchless.
    slot->state.store(SlotState::kFree, std::memory_order_release);
    return false;
  }

  // The gauge covers publish through release: occupied table slots are
  // the per-layer load signal the sharded router's selectors read.
  stats_.in_flight.add();
  marshal_into(mem, desc);
  if (desc.produce_in != nullptr) stats_.copies_elided.add();
  slot->desc = desc;
  slot->frame = mem;
  slot->abandoned.store(false, std::memory_order_relaxed);
  out = FutureHandle{index,
                     slot->generation.load(std::memory_order_relaxed)};
  // seq_cst publish pairs with the workers' seq_cst park/sweep sequence:
  // either this submitter observes parked==true and wakes a worker, or a
  // worker's pre-sleep sweep observes this QUEUED slot.
  slot->state.store(SlotState::kQueued, std::memory_order_seq_cst);
  wake_a_worker();

  // stop() race: if the backend stopped between our running_ check and the
  // publish, the exiting workers' final drain sweep may have already
  // passed this slot.  Reclaim and execute it ourselves; the CAS decides
  // ownership, so the call runs exactly once either way.
  if (!running_.load(std::memory_order_seq_cst)) {
    SlotState expected = SlotState::kQueued;
    if (slot->state.compare_exchange_strong(expected, SlotState::kExecuting,
                                            std::memory_order_seq_cst)) {
      // No deferred notify: the future has not been handed out yet, so no
      // collector can be sleeping — kDone is observed by the predicate
      // check at collect() entry.
      execute_slot(*slot, /*defer_notify=*/cfg_.coalesce);
    }
  }
  return true;
}

// Ring-mode submit: one CAS on the target worker's ring tail claims a
// cell — no table scan, no contended sweep.  The handle becomes
// {worker index, ring ticket}; the ticket's monotonicity supplies the
// generation check's ABA protection.
bool ZcAsyncBackend::try_submit_ring(const CallDesc& desc, unsigned m,
                                     FutureHandle& out) {
  Slot* slot = nullptr;
  Worker* worker = nullptr;
  std::uint32_t windex = 0;
  std::uint64_t ticket = 0;
  const std::uint64_t first = ticket_.fetch_add(1, std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < m && slot == nullptr; ++i) {
    const auto probe = static_cast<std::uint32_t>((first + i) % m);
    slot = workers_[probe]->ring->try_claim(ticket);
    if (slot != nullptr) {
      worker = workers_[probe].get();
      windex = probe;
    }
  }
  if (slot == nullptr) return false;

  void* mem = nullptr;
  if (slab_ != nullptr) {
    // Shared slab: per-frame blocks, freed at release — never refuses.
    mem = slab_->allocate(frame_bytes(desc));
  } else {
    slot->pool.reset();  // single-request pool: fresh for every claim
    mem = slot->pool.allocate(frame_bytes(desc), 64);
  }
  if (mem == nullptr) {
    // Request larger than the slot pool: cannot go switchless.  A claimed
    // ring cell cannot be un-claimed, so retire it empty — publish +
    // recycle moves its seq past this ticket; the consumer skips it
    // without ever seeing a kQueued state.
    slot->state.store(SlotState::kFree, std::memory_order_release);
    worker->ring->publish(ticket);
    worker->ring->recycle(ticket);
    return false;
  }

  stats_.in_flight.add();
  marshal_into(mem, desc);
  if (desc.produce_in != nullptr) stats_.copies_elided.add();
  slot->desc = desc;
  slot->frame = mem;
  slot->abandoned.store(false, std::memory_order_relaxed);
  slot->ring_ticket = ticket;
  slot->ring_owner = windex;
  // The occupancy's generation IS the ring ticket: unrepeatable for this
  // cell, so the seqlock probes (handle_completed) and the abandon-path
  // generation checks carry over from the table design unchanged.
  slot->generation.store(ticket, std::memory_order_seq_cst);
  out = FutureHandle{windex, ticket};
  // State before seq: once publish() lands the owning worker may act on
  // the slot; seq_cst pairs with the worker's park/sweep sequence.
  slot->state.store(SlotState::kQueued, std::memory_order_seq_cst);
  worker->ring->publish(ticket);
  if (worker->parked.load(std::memory_order_seq_cst)) wake(*worker);

  // stop() race: same self-serve arbitration as the table path — the
  // QUEUED -> EXECUTING CAS decides between us and the exiting worker's
  // final drain, so the call runs exactly once.
  if (!running_.load(std::memory_order_seq_cst)) {
    SlotState expected = SlotState::kQueued;
    if (slot->state.compare_exchange_strong(expected, SlotState::kExecuting,
                                            std::memory_order_seq_cst)) {
      execute_slot(*slot, /*defer_notify=*/cfg_.coalesce);
    }
  }
  return true;
}

CallFuture ZcAsyncBackend::submit(const CallDesc& desc) {
  if (!running_.load(std::memory_order_relaxed)) {
    execute_regular(desc);
    const std::uint64_t elided = copies_elided_by(desc);
    if (elided != 0) stats_.copies_elided.add(elided);
    stats_.regular_calls.add();
    return CallFuture(CallPath::kRegular);
  }
  FutureHandle handle;
  if (!try_submit(desc, handle)) return inline_fallback(desc);
  return CallFuture(this, handle);
}

CallPath ZcAsyncBackend::invoke(const CallDesc& desc) {
  CallFuture future = submit(desc);
  return future.wait();
}

bool ZcAsyncBackend::try_invoke_switchless(const CallDesc& desc) {
  FutureHandle handle;
  if (!try_submit(desc, handle)) return false;
  collect(handle);
  return true;
}

// Table mode: handles index slots_.  Ring mode: h.slot is the owning
// worker and h.generation the ring ticket, which maps straight to a cell.
ZcAsyncBackend::Slot& ZcAsyncBackend::handle_slot(
    FutureHandle h) const noexcept {
  if (cfg_.ring) return workers_[h.slot]->ring->at(h.generation);
  return *slots_[h.slot];
}

bool ZcAsyncBackend::handle_completed(FutureHandle h) const noexcept {
  if (h.slot == FutureHandle::kInline) return true;
  if (h.slot >= (cfg_.ring ? workers_.size() : slots_.size())) return true;
  const Slot& slot = handle_slot(h);
  // Seqlock-style probe: only a state read bracketed by two matching
  // generation reads describes *this* handle's call.  Any generation
  // mismatch means the call completed and its slot was released (possibly
  // reused) — report completed, never the reused slot's state (ABA).
  const std::uint64_t g0 = slot.generation.load(std::memory_order_seq_cst);
  const SlotState state = slot.state.load(std::memory_order_seq_cst);
  const std::uint64_t g1 = slot.generation.load(std::memory_order_seq_cst);
  if (g0 != h.generation || g1 != h.generation) return true;
  return state == SlotState::kDone;
}

void ZcAsyncBackend::release_slot(Slot& slot) {
  const std::uint64_t ticket = slot.ring_ticket;
  const std::uint32_t owner = slot.ring_owner;
  if (slab_ != nullptr && slot.frame != nullptr) slab_->free(slot.frame);
  slot.frame = nullptr;
  stats_.in_flight.sub();
  // Clear the abandon mark with the occupancy it belonged to, so a stale
  // post-release read can only ever see `true` transiently (and the
  // generation checks below make even that harmless).
  slot.abandoned.store(false, std::memory_order_seq_cst);
  // Bump the generation before freeing the slot so a stale handle's
  // seqlock probe can never match the next occupant.  (Ring mode: the
  // bump lands between this occupancy's ticket and every future one —
  // later tickets for the cell advance by at least the ring capacity.)
  slot.generation.fetch_add(1, std::memory_order_seq_cst);
  slot.state.store(SlotState::kFree, std::memory_order_seq_cst);
  // Recycle last: the instant the cell re-enters the ring a new claimant
  // may own it, so no field above may be touched after this.
  if (cfg_.ring) workers_[owner]->ring->recycle(ticket);
}

CallPath ZcAsyncBackend::collect(FutureHandle h) {
  Slot& slot = handle_slot(h);
  // Short grace spin for calls that complete immediately, then sleep on
  // the slot's gate (condvar by default, futex with wait=futex) — the
  // caller never busy-waits for a slow call.  Under coalesce= every
  // collector shares the backend gate instead, and one worker-side
  // notify_batch() per drain run releases them all.
  constexpr std::chrono::microseconds kCollectGrace{1};
  const auto done = [](SlotState s) { return s == SlotState::kDone; };
  const GateCounters counters{&stats_.caller_yields, &stats_.caller_sleeps,
                              &stats_.caller_wakeups};
  if (cfg_.coalesce) {
    coalesce_gate_.await_coalesced(slot.state, done, cfg_.wait, kCollectGrace,
                                   counters);
  } else {
    slot.gate.await(slot.state, done, cfg_.wait, kCollectGrace, counters);
  }
  MarshalledCall call = frame_view(slot.frame);
  unmarshal_from(call, slot.desc);
  if (slot.desc.consume_out != nullptr) stats_.copies_elided.add();
  release_slot(slot);
  return CallPath::kSwitchless;
}

void ZcAsyncBackend::abandon(FutureHandle h) noexcept {
  Slot& slot = handle_slot(h);
  // The call must still execute (submission promised its side effects to
  // the handler); only result collection is dropped.  Whoever finishes
  // last — the worker or this abandoner — releases the slot; the CAS on
  // kDone decides, so the release happens exactly once.
  //
  // All abandoned-slot bookkeeping is serialised by the slot mutex, and
  // the generation check comes first: a delayed abandoner whose call the
  // worker already reclaimed (and submit() has possibly reused) must not
  // mark — let alone release — the slot's next occupant (ABA).  Inside
  // the mutex the generation cannot advance under us, because every
  // release an abandon can race (the worker's abandoned-slot paths) also
  // takes this mutex; collect() never races abandon — both belong to the
  // single future owner.
  std::lock_guard lock(slot.mu);
  if (slot.generation.load(std::memory_order_seq_cst) != h.generation) {
    return;  // already completed and released; the slot is no longer ours
  }
  slot.abandoned.store(true, std::memory_order_seq_cst);
  SlotState expected = SlotState::kDone;
  if (slot.state.compare_exchange_strong(expected, SlotState::kReclaiming,
                                         std::memory_order_seq_cst)) {
    release_slot(slot);
  }
}

ZcAsyncBackend::Slot* ZcAsyncBackend::sweep_claim() {
  for (auto& s : slots_) {
    if (s->state.load(std::memory_order_seq_cst) != SlotState::kQueued) {
      continue;
    }
    SlotState expected = SlotState::kQueued;
    if (s->state.compare_exchange_strong(expected, SlotState::kExecuting,
                                         std::memory_order_seq_cst)) {
      return s.get();
    }
  }
  return nullptr;
}

// Cold-path ring drain serving publishes *out of claim order*: a gap at
// the ring front (a submitter still marshalling) must not block a
// pausing/exiting worker from completing later published calls.  The gap
// cells resolve through their submitters (publish wakes a parked owner;
// stop-racing submitters self-serve).
unsigned ZcAsyncBackend::drain_ring_stragglers(Worker& w) {
  unsigned completed = 0;
  for (std::size_t i = 0; i < w.ring->capacity(); ++i) {
    std::uint64_t ticket = 0;
    Slot* s = w.ring->published_at(i, ticket);
    if (s == nullptr) continue;
    SlotState expected = SlotState::kQueued;
    if (!s->state.compare_exchange_strong(expected, SlotState::kExecuting,
                                          std::memory_order_seq_cst)) {
      continue;  // self-served or retired empty; front() will skip it
    }
    if (execute_slot(*s, cfg_.coalesce)) ++completed;
  }
  if (completed > 0 && cfg_.coalesce) {
    coalesce_gate_.notify_batch();
    stats_.wake_batches.add();
  }
  return completed;
}

bool ZcAsyncBackend::any_queued() const {
  for (const auto& s : slots_) {
    if (s->state.load(std::memory_order_seq_cst) == SlotState::kQueued) {
      return true;
    }
  }
  return false;
}

bool ZcAsyncBackend::execute_slot(Slot& slot, bool defer_notify) {
  // The generation of the occupancy we are executing.  It cannot advance
  // during execution (release requires kDone, or this worker's own
  // abandoned path below), so it identifies "our" call in the post-kDone
  // re-check — a stale flag read can never make us release a successor.
  const std::uint64_t occupancy =
      slot.generation.load(std::memory_order_seq_cst);
  const OcallTable& table = cfg_.direction == CallDirection::kOcall
                                ? enclave_.ocalls()
                                : enclave_.ecalls();
  auto* header = static_cast<FrameHeader*>(slot.frame);
  MarshalledCall call = frame_view(slot.frame);
  table.dispatch(header->fn_id, call);
  stats_.switchless_calls.add();

  if (slot.abandoned.load(std::memory_order_seq_cst)) {
    // Abandoned before completion was published: nobody will collect, and
    // the abandoner's kDone CAS cannot fire on a non-kDone state — this
    // worker is the sole releaser.  The mutex orders the release after
    // the abandoner's critical section (see abandon()).
    std::lock_guard lock(slot.mu);
    release_slot(slot);
    return false;
  }
  slot.state.store(SlotState::kDone, std::memory_order_seq_cst);
  // Coalescing drains broadcast once for the whole run instead of waking
  // each collector here (defer_notify); abandoned calls above have no
  // collector to wake either way.
  if (!defer_notify) slot.gate.notify(slot.state);
  // Abandon may have raced the kDone publish; under the mutex the
  // generation check plus the CAS decide who releases.  If the abandoner
  // already released (generation moved — possibly with the slot reused by
  // a live successor), this worker must not touch the slot again.
  if (slot.abandoned.load(std::memory_order_seq_cst)) {
    std::lock_guard lock(slot.mu);
    if (slot.generation.load(std::memory_order_seq_cst) == occupancy) {
      SlotState expected = SlotState::kDone;
      if (slot.state.compare_exchange_strong(expected, SlotState::kReclaiming,
                                             std::memory_order_seq_cst)) {
        release_slot(slot);
      }
    }
  }
  return true;
}

void ZcAsyncBackend::worker_main(Worker& w) {
  const SimConfig& sim = enclave_.config();
  if (sim.pin_threads) {
    pin_current_thread_to_window(sim.pin_base_cpu, sim.logical_cpus);
  }
  std::size_t meter_slot = 0;
  if (cfg_.meter != nullptr) {
    meter_slot = cfg_.meter->register_current_thread();
  }

  // Parks under w.mu until `ready` holds.  Every resume — spurious ones
  // included — counts a worker_wakeup, so wake storms are visible in the
  // stats (the churn stress test pins the set_active_workers fix on this).
  const auto park = [&](auto&& ready) {
    std::unique_lock lock(w.mu);
    w.parked.store(true, std::memory_order_seq_cst);
    stats_.worker_sleeps.add();
    if (cfg_.meter != nullptr) cfg_.meter->checkpoint(meter_slot);
    while (!ready()) {
      w.cv.wait(lock);
      stats_.worker_wakeups.add();
    }
    w.parked.store(false, std::memory_order_seq_cst);
  };
  // After a burst of completions, one coalesced broadcast releases every
  // collector the burst completed (in place of per-slot notifies inside
  // execute_slot).
  const auto broadcast = [&](unsigned completed) {
    if (completed == 0 || !cfg_.coalesce) return;
    coalesce_gate_.notify_batch();
    stats_.wake_batches.add();
  };

  std::uint64_t iterations = 0;
  for (;;) {
    const WorkerCmd cmd = w.cmd.load(std::memory_order_acquire);

    if (cfg_.ring) {
      // Drain the published run in claim order; the QUEUED -> EXECUTING
      // CAS arbitrates against stop-racing submitters serving their own
      // slot (failure: the occupant is no longer ours — drop it).
      unsigned completed = 0;
      for (;;) {
        std::uint64_t ticket = 0;
        Slot* s = w.ring->front(ticket);
        if (s == nullptr) break;
        SlotState expected = SlotState::kQueued;
        if (!s->state.compare_exchange_strong(expected, SlotState::kExecuting,
                                              std::memory_order_seq_cst)) {
          w.ring->pop();
          continue;
        }
        w.ring->pop();
        if (execute_slot(*s, cfg_.coalesce)) ++completed;
      }
      if (completed > 0) {
        broadcast(completed);
        continue;
      }

      if (cmd == WorkerCmd::kExit) {
        // The seq_cst flag read orders this final drain after every
        // publish whose producer still observed the backend running
        // (later publishers self-serve), so no future is stranded.
        (void)running_.load(std::memory_order_seq_cst);
        drain_ring_stragglers(w);
        break;
      }
      if (cmd == WorkerCmd::kPause) {
        if (w.ring->any_published()) {
          // Drain out of claim order before parking — a gap at the front
          // (a submitter mid-marshal) must not stall the pause.
          drain_ring_stragglers(w);
          continue;
        }
        park([&] {
          // Paused workers still wake to drain their ring, so a future
          // submitted just before the pause command is never stranded.
          return w.cmd.load(std::memory_order_acquire) != WorkerCmd::kPause ||
                 w.ring->any_published();
        });
        continue;
      }
      if ((iterations & 0x3FF) == 0x3FF && w.ring->any_published()) {
        // Publish-order gap while running: serve stragglers occasionally
        // so their futures are not held hostage by a slow marshal.
        drain_ring_stragglers(w);
        continue;
      }
    } else {
      if (Slot* job = sweep_claim(); job != nullptr) {
        // Burst-drain: keep claiming while queued work exists, then (under
        // coalesce=) one broadcast wakes every collector of the burst.
        unsigned completed = 0;
        do {
          if (execute_slot(*job, cfg_.coalesce)) ++completed;
        } while ((job = sweep_claim()) != nullptr);
        broadcast(completed);
        continue;
      }

      if (cmd == WorkerCmd::kExit) break;  // table drained: safe to leave
      if (cmd == WorkerCmd::kPause) {
        park([&] {
          // Paused workers still wake to drain queued slots, so a future
          // submitted just before the pause command is never stranded.
          return w.cmd.load(std::memory_order_acquire) != WorkerCmd::kPause ||
                 any_queued();
        });
        continue;
      }
    }

    cpu_pause();
    // Narrow-host courtesy: an idle worker yields periodically so the
    // submitters (and the other workers) can actually run.
    if ((++iterations & 0x3FF) == 0) std::this_thread::yield();
    if (cfg_.meter != nullptr && (iterations & 0x3FFF) == 0) {
      cfg_.meter->checkpoint(meter_slot);
    }
  }

  if (cfg_.meter != nullptr) cfg_.meter->unregister_current_thread(meter_slot);
}

std::unique_ptr<ZcAsyncBackend> make_zc_async_backend(Enclave& enclave,
                                                      ZcAsyncConfig cfg) {
  return std::make_unique<ZcAsyncBackend>(enclave, std::move(cfg));
}

}  // namespace zc
