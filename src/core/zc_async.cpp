#include "core/zc_async.hpp"

#include "common/cycles.hpp"
#include "common/pin.hpp"
#include "sgx/marshal.hpp"

namespace zc {

// --- CallFuture --------------------------------------------------------------

bool CallFuture::poll() const noexcept {
  if (!engaged_) return false;
  if (!pending_) return true;
  return backend_->handle_completed(handle_);
}

CallPath CallFuture::wait() {
  if (pending_) {
    path_ = backend_->collect(handle_);
    pending_ = false;
    backend_ = nullptr;
  }
  return path_;
}

void CallFuture::drop() noexcept {
  if (pending_) {
    backend_->abandon(handle_);
    pending_ = false;
    backend_ = nullptr;
  }
}

// --- ZcAsyncBackend ----------------------------------------------------------

// Wakes a possibly-parked worker.  The empty lock/unlock orders this
// notify after the worker's predicate evaluation: a worker between its
// predicate check and cv.wait() holds the mutex, so acquiring it here
// guarantees the notify lands after the wait began (no lost wakeup).
void ZcAsyncBackend::wake(Worker& w) {
  {
    std::lock_guard lock(w.mu);
  }
  w.cv.notify_one();
}

void ZcAsyncBackend::wake_a_worker() {
  // Prefer a parked worker (it will re-check the table); a spinning worker
  // discovers the published slot on its next sweep anyway.
  for (auto& w : workers_) {
    if (w->parked.load(std::memory_order_seq_cst)) {
      wake(*w);
      return;
    }
  }
}

ZcAsyncBackend::ZcAsyncBackend(Enclave& enclave, ZcAsyncConfig cfg)
    : enclave_(enclave), cfg_(std::move(cfg)) {
  slots_.reserve(cfg_.queue);
  for (unsigned i = 0; i < cfg_.queue; ++i) {
    slots_.push_back(std::make_unique<Slot>(cfg_.slot_pool_bytes));
  }
  workers_.reserve(cfg_.workers);
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
}

ZcAsyncBackend::~ZcAsyncBackend() { stop(); }

void ZcAsyncBackend::start() {
  if (running_.exchange(true)) return;
  for (auto& w : workers_) {
    w->cmd.store(WorkerCmd::kRun, std::memory_order_release);
    w->thread = std::jthread([this, worker = w.get()] { worker_main(*worker); });
  }
  active_count_.store(static_cast<unsigned>(workers_.size()),
                      std::memory_order_release);
}

void ZcAsyncBackend::stop() {
  if (!running_.exchange(false)) return;
  active_count_.store(0, std::memory_order_release);
  for (auto& w : workers_) {
    w->cmd.store(WorkerCmd::kExit, std::memory_order_seq_cst);
    wake(*w);
    if (w->thread.joinable()) w->thread.join();
  }
}

void ZcAsyncBackend::set_active_workers(unsigned m) {
  if (!running_.load(std::memory_order_relaxed)) return;
  const auto max = static_cast<unsigned>(workers_.size());
  if (m > max) m = max;
  // Publish the claim bound first so submit() stops queueing new work when
  // everyone is about to pause; queued slots are still drained (paused
  // workers wake for them).
  active_count_.store(m, std::memory_order_release);
  for (unsigned i = 0; i < max; ++i) {
    Worker& w = *workers_[i];
    // kExit is terminal: a churn thread racing stop() must never overwrite
    // it, or the worker would park/run forever and stop()'s join would
    // hang.  CAS from any non-exit command only.
    const WorkerCmd desired = i < m ? WorkerCmd::kRun : WorkerCmd::kPause;
    WorkerCmd cur = w.cmd.load(std::memory_order_seq_cst);
    while (cur != WorkerCmd::kExit &&
           !w.cmd.compare_exchange_weak(cur, desired,
                                        std::memory_order_seq_cst)) {
    }
    wake(w);
  }
}

void ZcAsyncBackend::execute_regular(const CallDesc& desc) {
  if (cfg_.direction == CallDirection::kOcall) {
    execute_regular_ocall(enclave_, desc);
  } else {
    execute_regular_ecall(enclave_, desc);
  }
}

CallFuture ZcAsyncBackend::inline_fallback(const CallDesc& desc) {
  execute_regular(desc);
  stats_.fallback_calls.add();
  return CallFuture(CallPath::kFallback);
}

bool ZcAsyncBackend::try_submit(const CallDesc& desc, FutureHandle& out) {
  if (!running_.load(std::memory_order_relaxed)) return false;

  const unsigned m = active_count_.load(std::memory_order_acquire);
  if (m == 0) return false;

  // Claim a free completion-table slot, starting from a rotating index so
  // concurrent submitters spread across the table.  Table full: immediate
  // refusal — backpressure without busy waiting, as in plain ZC.
  Slot* slot = nullptr;
  std::uint32_t index = 0;
  const auto n = static_cast<std::uint32_t>(slots_.size());
  const std::uint32_t first = ticket_.fetch_add(1, std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < n; ++i) {
    Slot& candidate = *slots_[(first + i) % n];
    SlotState expected = SlotState::kFree;
    if (candidate.state.compare_exchange_strong(expected, SlotState::kClaimed,
                                                std::memory_order_acquire,
                                                std::memory_order_relaxed)) {
      slot = &candidate;
      index = (first + i) % n;
      break;
    }
  }
  if (slot == nullptr) return false;

  slot->pool.reset();  // single-request pool: fresh for every claim
  void* mem = slot->pool.allocate(frame_bytes(desc), 64);
  if (mem == nullptr) {
    // Request larger than the slot pool: cannot go switchless.
    slot->state.store(SlotState::kFree, std::memory_order_release);
    return false;
  }

  // The gauge covers publish through release: occupied table slots are
  // the per-layer load signal the sharded router's selectors read.
  stats_.in_flight.add();
  marshal_into(mem, desc);
  slot->desc = desc;
  slot->frame = mem;
  slot->abandoned.store(false, std::memory_order_relaxed);
  out = FutureHandle{index,
                     slot->generation.load(std::memory_order_relaxed)};
  // seq_cst publish pairs with the workers' seq_cst park/sweep sequence:
  // either this submitter observes parked==true and wakes a worker, or a
  // worker's pre-sleep sweep observes this QUEUED slot.
  slot->state.store(SlotState::kQueued, std::memory_order_seq_cst);
  wake_a_worker();

  // stop() race: if the backend stopped between our running_ check and the
  // publish, the exiting workers' final drain sweep may have already
  // passed this slot.  Reclaim and execute it ourselves; the CAS decides
  // ownership, so the call runs exactly once either way.
  if (!running_.load(std::memory_order_seq_cst)) {
    SlotState expected = SlotState::kQueued;
    if (slot->state.compare_exchange_strong(expected, SlotState::kExecuting,
                                            std::memory_order_seq_cst)) {
      execute_slot(*slot);
    }
  }
  return true;
}

CallFuture ZcAsyncBackend::submit(const CallDesc& desc) {
  if (!running_.load(std::memory_order_relaxed)) {
    execute_regular(desc);
    stats_.regular_calls.add();
    return CallFuture(CallPath::kRegular);
  }
  FutureHandle handle;
  if (!try_submit(desc, handle)) return inline_fallback(desc);
  return CallFuture(this, handle);
}

CallPath ZcAsyncBackend::invoke(const CallDesc& desc) {
  CallFuture future = submit(desc);
  return future.wait();
}

bool ZcAsyncBackend::try_invoke_switchless(const CallDesc& desc) {
  FutureHandle handle;
  if (!try_submit(desc, handle)) return false;
  collect(handle);
  return true;
}

bool ZcAsyncBackend::handle_completed(FutureHandle h) const noexcept {
  if (h.slot == FutureHandle::kInline) return true;
  if (h.slot >= slots_.size()) return true;
  const Slot& slot = *slots_[h.slot];
  // Seqlock-style probe: only a state read bracketed by two matching
  // generation reads describes *this* handle's call.  Any generation
  // mismatch means the call completed and its slot was released (possibly
  // reused) — report completed, never the reused slot's state (ABA).
  const std::uint64_t g0 = slot.generation.load(std::memory_order_seq_cst);
  const SlotState state = slot.state.load(std::memory_order_seq_cst);
  const std::uint64_t g1 = slot.generation.load(std::memory_order_seq_cst);
  if (g0 != h.generation || g1 != h.generation) return true;
  return state == SlotState::kDone;
}

void ZcAsyncBackend::release_slot(Slot& slot) {
  slot.frame = nullptr;
  stats_.in_flight.sub();
  // Clear the abandon mark with the occupancy it belonged to, so a stale
  // post-release read can only ever see `true` transiently (and the
  // generation checks below make even that harmless).
  slot.abandoned.store(false, std::memory_order_seq_cst);
  // Bump the generation before freeing the slot so a stale handle's
  // seqlock probe can never match the next occupant.
  slot.generation.fetch_add(1, std::memory_order_seq_cst);
  slot.state.store(SlotState::kFree, std::memory_order_seq_cst);
}

CallPath ZcAsyncBackend::collect(FutureHandle h) {
  Slot& slot = *slots_[h.slot];
  // Short grace spin for calls that complete immediately, then sleep on
  // the slot's gate (condvar by default, futex with wait=futex) — the
  // caller never busy-waits for a slow call.
  constexpr std::chrono::microseconds kCollectGrace{1};
  slot.gate.await(
      slot.state, [](SlotState s) { return s == SlotState::kDone; },
      cfg_.wait, kCollectGrace,
      GateCounters{&stats_.caller_yields, &stats_.caller_sleeps,
                   &stats_.caller_wakeups});
  MarshalledCall call = frame_view(slot.frame);
  unmarshal_from(call, slot.desc);
  release_slot(slot);
  return CallPath::kSwitchless;
}

void ZcAsyncBackend::abandon(FutureHandle h) noexcept {
  Slot& slot = *slots_[h.slot];
  // The call must still execute (submission promised its side effects to
  // the handler); only result collection is dropped.  Whoever finishes
  // last — the worker or this abandoner — releases the slot; the CAS on
  // kDone decides, so the release happens exactly once.
  //
  // All abandoned-slot bookkeeping is serialised by the slot mutex, and
  // the generation check comes first: a delayed abandoner whose call the
  // worker already reclaimed (and submit() has possibly reused) must not
  // mark — let alone release — the slot's next occupant (ABA).  Inside
  // the mutex the generation cannot advance under us, because every
  // release an abandon can race (the worker's abandoned-slot paths) also
  // takes this mutex; collect() never races abandon — both belong to the
  // single future owner.
  std::lock_guard lock(slot.mu);
  if (slot.generation.load(std::memory_order_seq_cst) != h.generation) {
    return;  // already completed and released; the slot is no longer ours
  }
  slot.abandoned.store(true, std::memory_order_seq_cst);
  SlotState expected = SlotState::kDone;
  if (slot.state.compare_exchange_strong(expected, SlotState::kReclaiming,
                                         std::memory_order_seq_cst)) {
    release_slot(slot);
  }
}

ZcAsyncBackend::Slot* ZcAsyncBackend::sweep_claim() {
  for (auto& s : slots_) {
    if (s->state.load(std::memory_order_seq_cst) != SlotState::kQueued) {
      continue;
    }
    SlotState expected = SlotState::kQueued;
    if (s->state.compare_exchange_strong(expected, SlotState::kExecuting,
                                         std::memory_order_seq_cst)) {
      return s.get();
    }
  }
  return nullptr;
}

bool ZcAsyncBackend::any_queued() const {
  for (const auto& s : slots_) {
    if (s->state.load(std::memory_order_seq_cst) == SlotState::kQueued) {
      return true;
    }
  }
  return false;
}

void ZcAsyncBackend::execute_slot(Slot& slot) {
  // The generation of the occupancy we are executing.  It cannot advance
  // during execution (release requires kDone, or this worker's own
  // abandoned path below), so it identifies "our" call in the post-kDone
  // re-check — a stale flag read can never make us release a successor.
  const std::uint64_t occupancy =
      slot.generation.load(std::memory_order_seq_cst);
  const OcallTable& table = cfg_.direction == CallDirection::kOcall
                                ? enclave_.ocalls()
                                : enclave_.ecalls();
  auto* header = static_cast<FrameHeader*>(slot.frame);
  MarshalledCall call = frame_view(slot.frame);
  table.dispatch(header->fn_id, call);
  stats_.switchless_calls.add();

  if (slot.abandoned.load(std::memory_order_seq_cst)) {
    // Abandoned before completion was published: nobody will collect, and
    // the abandoner's kDone CAS cannot fire on a non-kDone state — this
    // worker is the sole releaser.  The mutex orders the release after
    // the abandoner's critical section (see abandon()).
    std::lock_guard lock(slot.mu);
    release_slot(slot);
    return;
  }
  slot.state.store(SlotState::kDone, std::memory_order_seq_cst);
  slot.gate.notify(slot.state);
  // Abandon may have raced the kDone publish; under the mutex the
  // generation check plus the CAS decide who releases.  If the abandoner
  // already released (generation moved — possibly with the slot reused by
  // a live successor), this worker must not touch the slot again.
  if (slot.abandoned.load(std::memory_order_seq_cst)) {
    std::lock_guard lock(slot.mu);
    if (slot.generation.load(std::memory_order_seq_cst) == occupancy) {
      SlotState expected = SlotState::kDone;
      if (slot.state.compare_exchange_strong(expected, SlotState::kReclaiming,
                                             std::memory_order_seq_cst)) {
        release_slot(slot);
      }
    }
  }
}

void ZcAsyncBackend::worker_main(Worker& w) {
  const SimConfig& sim = enclave_.config();
  if (sim.pin_threads) {
    pin_current_thread_to_window(sim.pin_base_cpu, sim.logical_cpus);
  }
  std::size_t meter_slot = 0;
  if (cfg_.meter != nullptr) {
    meter_slot = cfg_.meter->register_current_thread();
  }

  std::uint64_t iterations = 0;
  for (;;) {
    const WorkerCmd cmd = w.cmd.load(std::memory_order_acquire);

    if (Slot* job = sweep_claim(); job != nullptr) {
      execute_slot(*job);
      continue;
    }

    if (cmd == WorkerCmd::kExit) break;  // table drained: safe to leave
    if (cmd == WorkerCmd::kPause) {
      std::unique_lock lock(w.mu);
      w.parked.store(true, std::memory_order_seq_cst);
      stats_.worker_sleeps.add();
      if (cfg_.meter != nullptr) cfg_.meter->checkpoint(meter_slot);
      w.cv.wait(lock, [&] {
        // Paused workers still wake to drain queued slots, so a future
        // submitted just before the pause command is never stranded.
        return w.cmd.load(std::memory_order_acquire) != WorkerCmd::kPause ||
               any_queued();
      });
      w.parked.store(false, std::memory_order_seq_cst);
      stats_.worker_wakeups.add();
      continue;
    }

    cpu_pause();
    // Narrow-host courtesy: an idle worker yields periodically so the
    // submitters (and the other workers) can actually run.
    if ((++iterations & 0x3FF) == 0) std::this_thread::yield();
    if (cfg_.meter != nullptr && (iterations & 0x3FFF) == 0) {
      cfg_.meter->checkpoint(meter_slot);
    }
  }

  if (cfg_.meter != nullptr) cfg_.meter->unregister_current_thread(meter_slot);
}

std::unique_ptr<ZcAsyncBackend> make_zc_async_backend(Enclave& enclave,
                                                      ZcAsyncConfig cfg) {
  return std::make_unique<ZcAsyncBackend>(enclave, std::move(cfg));
}

}  // namespace zc
