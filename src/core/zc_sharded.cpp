#include "core/zc_sharded.hpp"

#include <functional>
#include <thread>

namespace zc {

const char* to_string(ShardPolicy policy) noexcept {
  switch (policy) {
    case ShardPolicy::kRoundRobin:
      return "round_robin";
    case ShardPolicy::kCallerAffinity:
      return "caller_affinity";
    case ShardPolicy::kLeastLoaded:
      return "least_loaded";
    case ShardPolicy::kAffinityLoad:
      return "affinity_load";
  }
  return "?";
}

const char* to_string(ShardSteal steal) noexcept {
  switch (steal) {
    case ShardSteal::kOff:
      return "off";
    case ShardSteal::kScan:
      return "scan";
    case ShardSteal::kMaxLoad:
      return "max_load";
  }
  return "?";
}

ZcShardedBackend::ZcShardedBackend(Enclave& enclave, ZcShardedConfig cfg)
    : enclave_(enclave), cfg_(std::move(cfg)) {
  if (!cfg_.make_shard) {
    // Default inner=(zc): one plain ZcBackend per shard from cfg_.shard —
    // byte-for-byte the pre-composition sharded backend, including the
    // direction the per-shard config carries.
    cfg_.direction = cfg_.shard.direction;
    cfg_.inner_key = "zc";
    // By-value capture: a ZcShardedConfig copied out of config() must not
    // tie its factory to this backend's lifetime.
    cfg_.make_shard = [shard = cfg_.shard](Enclave& e) {
      return std::make_unique<ZcBackend>(e, shard);
    };
    // A frame the per-shard pool cannot hold would be refused by every
    // shard for the same reason — and a ZC refusal on an exhausted pool
    // is not free (reservation + reset transition), so oversized frames
    // must not be probed at all.
    steal_probe_max_bytes_ = cfg_.shard.worker_pool_bytes;
  }
  name_ = "zc_sharded";
  if (cfg_.inner_key != "zc") name_ += "[" + cfg_.inner_key + "]";
  if (cfg_.direction == CallDirection::kEcall) name_ += "-ecall";
  shards_.reserve(cfg_.shards);
  for (unsigned i = 0; i < cfg_.shards; ++i) {
    shards_.push_back(cfg_.make_shard(enclave_));
  }
}

ZcShardedBackend::~ZcShardedBackend() { stop(); }

void ZcShardedBackend::start() {
  for (auto& s : shards_) s->start();
}

void ZcShardedBackend::stop() {
  for (auto& s : shards_) s->stop();
}

unsigned ZcShardedBackend::active_workers() const noexcept {
  unsigned total = 0;
  for (const auto& s : shards_) total += s->active_workers();
  return total;
}

void ZcShardedBackend::set_active_workers(unsigned m) {
  for (auto& s : shards_) s->set_active_workers(m);
}

BackendStatsSnapshot ZcShardedBackend::stats_snapshot() const {
  BackendStatsSnapshot rolled;
  // merge() carries every inner-plane counter — batch_flushes,
  // wake_batches, worker_wakeups — so a composed router exposes its
  // inner planes' ring/coalesce behaviour without knowing about it.
  for (const auto& s : shards_) rolled.merge(s->stats_snapshot());
  // Router-only counters.  Everything else in the router's live stats()
  // block mirrors calls the shards already counted once.
  rolled.steals += stats_.steals.load();
  return rolled;
}

std::vector<std::uint64_t> ZcShardedBackend::per_shard_served() const {
  std::vector<std::uint64_t> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_) {
    out.push_back(s->stats().switchless_calls.load());
  }
  return out;
}

unsigned ZcShardedBackend::least_loaded_shard() const noexcept {
  // One relaxed load per shard; the gauge is approximate by design (two
  // callers can pick the same minimum) — the cheapness is the point, and
  // the next call sees the corrected level.
  const auto n = static_cast<unsigned>(shards_.size());
  unsigned best = 0;
  std::uint64_t best_load = shards_[0]->stats().in_flight.load();
  for (unsigned i = 1; i < n && best_load > 0; ++i) {
    const std::uint64_t load = shards_[i]->stats().in_flight.load();
    if (load < best_load) {
      best = i;
      best_load = load;
    }
  }
  return best;
}

unsigned ZcShardedBackend::select_shard() noexcept {
  const auto n = static_cast<unsigned>(shards_.size());
  switch (cfg_.policy) {
    case ShardPolicy::kCallerAffinity:
      return static_cast<unsigned>(
          std::hash<std::thread::id>{}(std::this_thread::get_id()) % n);
    case ShardPolicy::kLeastLoaded:
      return least_loaded_shard();
    case ShardPolicy::kAffinityLoad: {
      // Affinity with a load escape hatch: warm-pool locality while the
      // home shard keeps up, least_loaded rerouting only beyond the
      // threshold (home keeps the call if it is still the minimum).
      const auto home = static_cast<unsigned>(
          std::hash<std::thread::id>{}(std::this_thread::get_id()) % n);
      if (shards_[home]->stats().in_flight.load() <= cfg_.load_threshold) {
        return home;
      }
      return least_loaded_shard();
    }
    case ShardPolicy::kRoundRobin:
      break;
  }
  return ticket_.fetch_add(1, std::memory_order_relaxed) % n;
}

// Mirrors a call-path outcome into the live stats() block (callers cache
// the reference and read deltas mid-run, so lazy aggregation is not an
// option).  One relaxed add on a padded line per call — the same
// shared-stats cost every other backend pays; the *handoff* path
// (reservation, request buffer, completion wait) stays shard-private.
CallPath ZcShardedBackend::record(CallPath path) noexcept {
  switch (path) {
    case CallPath::kRegular:
      stats_.regular_calls.add();
      break;
    case CallPath::kSwitchless:
      stats_.switchless_calls.add();
      break;
    case CallPath::kFallback:
      stats_.fallback_calls.add();
      break;
  }
  return path;
}

// The probe half of routing: try the primary shard, then steal per the
// configured victim policy.  Never falls back; a true return means some
// shard served the call switchlessly (counted in steals when it was not
// the primary).
bool ZcShardedBackend::try_route_switchless(unsigned primary,
                                            const CallDesc& desc) {
  if (shards_[primary]->try_invoke_switchless(desc)) return true;
  if (cfg_.steal == ShardSteal::kOff) return false;
  // Bounded steal: probe every other shard once.  A frame no shard could
  // take (default zc inner: larger than the per-shard pool) is not
  // probed at all — each refusal would cost a reservation and a
  // reset-transition in every shard.
  if (frame_bytes(desc) > steal_probe_max_bytes_) return false;
  const auto n = static_cast<unsigned>(shards_.size());
  if (n < 2) return false;  // no victims: nothing to probe twice
  unsigned first_victim = 1;  // scan-order offset from the primary
  if (cfg_.steal == ShardSteal::kMaxLoad) {
    // Busiest victim first — the shard whose workers are provably awake
    // (an idle-looking shard may be parked by its scheduler, where the
    // probe fails anyway); the rest follow in scan order.  One relaxed
    // gauge load per shard, no allocation on the contention path; ties
    // resolve to scan order so an idle backend stays deterministic.
    std::uint64_t best_load = 0;
    for (unsigned i = 1; i < n; ++i) {
      const std::uint64_t load =
          shards_[(primary + i) % n]->stats().in_flight.load();
      if (load > best_load) {
        best_load = load;
        first_victim = i;
      }
    }
    if (shards_[(primary + first_victim) % n]->try_invoke_switchless(desc)) {
      stats_.steals.add();
      return true;
    }
  }
  for (unsigned i = 1; i < n; ++i) {
    if (cfg_.steal == ShardSteal::kMaxLoad && i == first_victim) continue;
    if (shards_[(primary + i) % n]->try_invoke_switchless(desc)) {
      stats_.steals.add();
      return true;
    }
  }
  return false;
}

CallPath ZcShardedBackend::invoke(const CallDesc& desc) {
  const unsigned primary = select_shard();
  // The router's own gauge (what an outer router's selectors read) spans
  // the whole routed call — including fallback execution, which the
  // router cannot rule out up front and which still occupies the shard.
  stats_.in_flight.add();
  CallPath path;
  if (cfg_.steal == ShardSteal::kOff) {
    // Strict isolation: the shard's own invoke decides switchless vs
    // fallback, so its scheduler sees refusals as unmet demand (F_i).
    path = shards_[primary]->invoke(desc);
  } else if (try_route_switchless(primary, desc)) {
    path = CallPath::kSwitchless;
  } else {
    // No shard accepted: fall back through the primary shard so its
    // feedback scheduler still observes the unmet demand as F_i.
    path = shards_[primary]->invoke(desc);
  }
  stats_.in_flight.sub();
  return record(path);
}

bool ZcShardedBackend::try_invoke_switchless(const CallDesc& desc) {
  stats_.in_flight.add();
  const bool served = try_route_switchless(select_shard(), desc);
  stats_.in_flight.sub();
  if (served) stats_.switchless_calls.add();
  return served;
}

std::unique_ptr<ZcShardedBackend> make_zc_sharded_backend(Enclave& enclave,
                                                          ZcShardedConfig cfg) {
  return std::make_unique<ZcShardedBackend>(enclave, std::move(cfg));
}

}  // namespace zc
