#include "core/zc_sharded.hpp"

#include <functional>
#include <thread>

namespace zc {

const char* to_string(ShardPolicy policy) noexcept {
  switch (policy) {
    case ShardPolicy::kRoundRobin:
      return "round_robin";
    case ShardPolicy::kCallerAffinity:
      return "caller_affinity";
  }
  return "?";
}

ZcShardedBackend::ZcShardedBackend(Enclave& enclave, ZcShardedConfig cfg)
    : enclave_(enclave), cfg_(std::move(cfg)) {
  shards_.reserve(cfg_.shards);
  for (unsigned i = 0; i < cfg_.shards; ++i) {
    shards_.push_back(std::make_unique<ZcBackend>(enclave_, cfg_.shard));
  }
}

ZcShardedBackend::~ZcShardedBackend() { stop(); }

void ZcShardedBackend::start() {
  for (auto& s : shards_) s->start();
}

void ZcShardedBackend::stop() {
  for (auto& s : shards_) s->stop();
}

unsigned ZcShardedBackend::active_workers() const noexcept {
  unsigned total = 0;
  for (const auto& s : shards_) total += s->active_workers();
  return total;
}

void ZcShardedBackend::set_active_workers(unsigned m) {
  for (auto& s : shards_) s->set_active_workers(m);
}

std::vector<std::uint64_t> ZcShardedBackend::per_shard_served() const {
  std::vector<std::uint64_t> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_) {
    std::uint64_t served = 0;
    for (const std::uint64_t w : s->per_worker_served()) served += w;
    out.push_back(served);
  }
  return out;
}

unsigned ZcShardedBackend::select_shard() noexcept {
  const auto n = static_cast<unsigned>(shards_.size());
  if (cfg_.policy == ShardPolicy::kCallerAffinity) {
    return static_cast<unsigned>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()) % n);
  }
  return ticket_.fetch_add(1, std::memory_order_relaxed) % n;
}

CallPath ZcShardedBackend::invoke(const CallDesc& desc) {
  const CallPath path = shards_[select_shard()]->invoke(desc);
  // Mirror the call-path counters into the live stats() block (callers
  // cache the reference and read deltas mid-run, so lazy aggregation is
  // not an option).  One relaxed add on a padded line per call — the same
  // shared-stats cost every other backend pays; the *handoff* path
  // (reservation, request buffer, completion spin) stays shard-private.
  switch (path) {
    case CallPath::kRegular:
      stats_.regular_calls.add();
      break;
    case CallPath::kSwitchless:
      stats_.switchless_calls.add();
      break;
    case CallPath::kFallback:
      stats_.fallback_calls.add();
      break;
  }
  return path;
}

std::unique_ptr<ZcShardedBackend> make_zc_sharded_backend(Enclave& enclave,
                                                          ZcShardedConfig cfg) {
  return std::make_unique<ZcShardedBackend>(enclave, std::move(cfg));
}

}  // namespace zc
