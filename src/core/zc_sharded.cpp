#include "core/zc_sharded.hpp"

#include <functional>
#include <thread>

namespace zc {

const char* to_string(ShardPolicy policy) noexcept {
  switch (policy) {
    case ShardPolicy::kRoundRobin:
      return "round_robin";
    case ShardPolicy::kCallerAffinity:
      return "caller_affinity";
    case ShardPolicy::kLeastLoaded:
      return "least_loaded";
  }
  return "?";
}

ZcShardedBackend::ZcShardedBackend(Enclave& enclave, ZcShardedConfig cfg)
    : enclave_(enclave), cfg_(std::move(cfg)) {
  shards_.reserve(cfg_.shards);
  for (unsigned i = 0; i < cfg_.shards; ++i) {
    shards_.push_back(std::make_unique<ZcBackend>(enclave_, cfg_.shard));
  }
}

ZcShardedBackend::~ZcShardedBackend() { stop(); }

void ZcShardedBackend::start() {
  for (auto& s : shards_) s->start();
}

void ZcShardedBackend::stop() {
  for (auto& s : shards_) s->stop();
}

unsigned ZcShardedBackend::active_workers() const noexcept {
  unsigned total = 0;
  for (const auto& s : shards_) total += s->active_workers();
  return total;
}

void ZcShardedBackend::set_active_workers(unsigned m) {
  for (auto& s : shards_) s->set_active_workers(m);
}

std::vector<std::uint64_t> ZcShardedBackend::per_shard_served() const {
  std::vector<std::uint64_t> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_) {
    std::uint64_t served = 0;
    for (const std::uint64_t w : s->per_worker_served()) served += w;
    out.push_back(served);
  }
  return out;
}

unsigned ZcShardedBackend::select_shard() noexcept {
  const auto n = static_cast<unsigned>(shards_.size());
  switch (cfg_.policy) {
    case ShardPolicy::kCallerAffinity:
      return static_cast<unsigned>(
          std::hash<std::thread::id>{}(std::this_thread::get_id()) % n);
    case ShardPolicy::kLeastLoaded: {
      // One relaxed load per shard; the gauge is approximate by design
      // (two callers can pick the same minimum) — the cheapness is the
      // point, and the next call sees the corrected level.
      unsigned best = 0;
      std::uint64_t best_load = shards_[0]->stats().in_flight.load();
      for (unsigned i = 1; i < n && best_load > 0; ++i) {
        const std::uint64_t load = shards_[i]->stats().in_flight.load();
        if (load < best_load) {
          best = i;
          best_load = load;
        }
      }
      return best;
    }
    case ShardPolicy::kRoundRobin:
      break;
  }
  return ticket_.fetch_add(1, std::memory_order_relaxed) % n;
}

// Mirrors a call-path outcome into the live stats() block (callers cache
// the reference and read deltas mid-run, so lazy aggregation is not an
// option).  One relaxed add on a padded line per call — the same
// shared-stats cost every other backend pays; the *handoff* path
// (reservation, request buffer, completion spin) stays shard-private.
CallPath ZcShardedBackend::record(CallPath path) noexcept {
  switch (path) {
    case CallPath::kRegular:
      stats_.regular_calls.add();
      break;
    case CallPath::kSwitchless:
      stats_.switchless_calls.add();
      break;
    case CallPath::kFallback:
      stats_.fallback_calls.add();
      break;
  }
  return path;
}

CallPath ZcShardedBackend::invoke(const CallDesc& desc) {
  const unsigned primary = select_shard();
  if (!cfg_.steal) return record(shards_[primary]->invoke(desc));

  if (shards_[primary]->try_invoke_switchless(desc)) {
    return record(CallPath::kSwitchless);
  }
  // Bounded steal: probe every other shard once for an idle worker.  An
  // oversized frame would be refused by every shard for the same reason,
  // so skip the probe loop outright.
  const auto n = static_cast<unsigned>(shards_.size());
  if (frame_bytes(desc) <= cfg_.shard.worker_pool_bytes) {
    for (unsigned i = 1; i < n; ++i) {
      if (shards_[(primary + i) % n]->try_invoke_switchless(desc)) {
        stats_.steals.add();
        return record(CallPath::kSwitchless);
      }
    }
  }
  // No idle worker anywhere: fall back through the primary shard so its
  // feedback scheduler still observes the unmet demand as F_i.
  return record(shards_[primary]->invoke(desc));
}

std::unique_ptr<ZcShardedBackend> make_zc_sharded_backend(Enclave& enclave,
                                                          ZcShardedConfig cfg) {
  return std::make_unique<ZcShardedBackend>(enclave, std::move(cfg));
}

}  // namespace zc
