// Trace-recording call-backend decorator: the live tap behind the
// `record:` registry family.
//
// A RecordingBackend wraps any CallBackend (built from a nested `inner=`
// spec, default no_sl) and forwards every call unchanged while appending
// one workload::TraceRecord per invoke: call name (resolved against the
// enclave's ocall/ecall table), direction, caller id (dense, first-seen
// thread order), virtual timestamp (wall time since the recorder started)
// and the observed invoke duration as the work hint.  Because it is a
// registry family, every bench/example/test can record its traffic by
// wrapping its spec:
//
//   record:file=/tmp/run.trace;inner=(zc:workers=2)
//
// and replay it later against any other spec (workload/replay.hpp).  The
// trace is written to `file` (binary) and/or `jsonl` (text export) when
// the backend stops; with neither option the trace stays in memory,
// reachable through trace_snapshot().
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sgx/backend.hpp"
#include "workload/trace.hpp"

namespace zc {

class Enclave;

class RecordingBackend final : public CallBackend {
 public:
  struct Options {
    std::string file;   ///< binary trace path written at stop() ("" = none)
    std::string jsonl;  ///< JSONL export path written at stop() ("" = none)
  };

  RecordingBackend(Enclave& enclave, std::unique_ptr<CallBackend> inner,
                   CallDirection direction, Options options);
  ~RecordingBackend() override;

  void start() override;
  void stop() override;
  CallPath invoke(const CallDesc& desc) override;
  bool try_invoke_switchless(const CallDesc& desc) override;
  const char* name() const noexcept override { return name_.c_str(); }
  BackendStatsSnapshot stats_snapshot() const override {
    return inner_->stats_snapshot();
  }
  unsigned active_workers() const noexcept override {
    return inner_->active_workers();
  }
  void set_active_workers(unsigned m) override {
    inner_->set_active_workers(m);
  }

  /// The wrapped backend (tests; routing layers never need it).
  CallBackend& inner() noexcept { return *inner_; }

  /// Point-in-time copy of the trace captured so far.
  workload::Trace trace_snapshot() const;

 private:
  void record(const CallDesc& desc, CallPath path, std::uint64_t t0_ns,
              std::uint64_t t1_ns);
  void write_outputs() noexcept;

  Enclave& enclave_;
  std::unique_ptr<CallBackend> inner_;
  CallDirection direction_;
  Options options_;
  std::string name_;
  std::uint64_t epoch_ns_ = 0;  ///< vtime origin (set at construction)

  mutable std::mutex mu_;
  workload::Trace trace_;
  /// fn_id -> interned name index, filled lazily (ids are table-dense).
  std::vector<std::uint32_t> name_idx_by_fn_;
  std::unordered_map<std::thread::id, std::uint32_t> caller_ids_;
  bool written_ = false;
};

std::unique_ptr<CallBackend> make_recording_backend(
    Enclave& enclave, std::unique_ptr<CallBackend> inner,
    CallDirection direction, RecordingBackend::Options options);

}  // namespace zc
