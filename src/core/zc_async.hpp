// Asynchronous ZC-Switchless call backend: futures instead of spinning.
//
// Every other switchless backend in the registry makes the caller busy-wait
// for its worker (bounded spin + yield at best).  This backend splits the
// call path into `submit()` — claim a slot in a fixed completion table,
// marshal, publish, return a CallFuture — and `wait()`/`poll()` on that
// future, with workers signalling completion through a per-slot seq_cst
// state word plus a per-slot CompletionGate (condvar by default, futex
// with `wait=futex`), so a waiting caller sleeps instead of spinning.  That opens the pipelined workload class (D in-flight calls
// per caller) that no synchronous backend can express, while the plain
// `CallBackend::call()` contract is preserved as submit()+wait(), so the
// backend slots into the registry, `install_backend_spec`, the
// `direction=ecall` plane and the equivalence suite unchanged.
//
// Completion-table slot life cycle:
//
//   FREE -> CLAIMED -> QUEUED -> EXECUTING -> DONE -> FREE
//     submitter: FREE->CLAIMED (CAS), CLAIMED->QUEUED (publish)
//     worker:    QUEUED->EXECUTING (CAS), EXECUTING->DONE (+ cv notify)
//     waiter:    DONE->FREE (collect: unmarshal, generation++)
//
// A CallFuture is {slot index, generation}: the generation counter is
// bumped every time a slot is released, so a stale handle (the slot has
// been reused) can never be confused with the live call occupying the same
// slot (ABA protection).  Dropping a future without waiting abandons the
// call: it still executes (side effects are preserved — submission is a
// promise to the handler), but nobody collects results and the slot is
// released by whoever finishes last (worker or abandoner).
//
// Backpressure: when the completion table is full (or no worker is
// active), submit() executes the call inline as a regular fallback and
// returns an already-completed future — no call is ever queued without a
// slot, lost, or spun for.
//
// Two hot-path variants are spec-selectable (`ring=`/`coalesce=`, see
// ZcAsyncConfig): per-worker lock-free MPSC submit rings in place of the
// table CAS-scan, and coalesced completion wakes (one notify_batch() per
// worker drain run in place of per-call notifies).  Both default off, so
// the legacy path stays A/B-able spec-for-spec.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/completion_gate.hpp"
#include "common/cpu_meter.hpp"
#include "common/mpsc_ring.hpp"
#include "common/pool.hpp"
#include "sgx/enclave.hpp"

namespace zc {

struct ZcAsyncConfig {
  unsigned workers = 2;  ///< completion workers (> 0)
  unsigned queue = 32;   ///< completion-table slots == max in-flight (> 0)
  /// Per-slot preallocated untrusted frame pool; oversized requests fall
  /// back to a regular call.
  std::size_t slot_pool_bytes = 64 * 1024;
  /// pool=slab: frames come from a shared size-classed SlabPool instead of
  /// the per-slot bump pools, so no request is ever "oversized".
  FramePoolKind pool = FramePoolKind::kBump;
  /// copy=single advertises the in-place payload path (see marshal.hpp).
  CopyMode copy = CopyMode::kDouble;
  /// How wait() blocks once the short collect grace spin expires
  /// (CompletionGate): condvar (the historical per-slot wait) or futex.
  /// The async plane never busy-waits, so spin/yield are rejected at the
  /// spec layer.
  GateWaitPolicy wait = GateWaitPolicy::kCondvar;
  /// Lock-free MPSC submit ring per worker instead of the shared
  /// completion-table CAS-scan: a submit is one CAS on its worker's ring
  /// tail, and the worker pops published entries in O(1) instead of
  /// sweeping the whole table.  `queue` slots are split evenly across the
  /// workers (each share rounded up to a power of two); FutureHandle then
  /// encodes {worker index, ring ticket} instead of {table index,
  /// generation} — the seqlock ABA protection carries over because a ring
  /// ticket is just as unrepeatable as a bumped generation.
  bool ring = false;
  /// One coalesced wake broadcast per worker drain run instead of one
  /// notify per completed call: collectors sleep on the backend's shared
  /// gate (await_coalesced) and a single notify_batch() releases the whole
  /// run's waiters (BackendStats::wake_batches counts the broadcasts).
  bool coalesce = false;
  CpuUsageMeter* meter = nullptr;
  CallDirection direction = CallDirection::kOcall;
};

/// The raw identity of an in-flight call: slot index + the generation the
/// slot had when the call was submitted (under `ring=on`: worker index +
/// the ring ticket, which plays the generation's ABA-protection role).
/// Copyable; used by tests to probe ABA protection.  `slot == kInline`
/// marks a call that completed inside submit() (fallback/regular) and
/// never occupied a table slot.
struct FutureHandle {
  static constexpr std::uint32_t kInline = ~std::uint32_t{0};
  std::uint32_t slot = kInline;
  std::uint64_t generation = 0;
};

class ZcAsyncBackend;

/// Move-only handle to one submitted call.  `wait()` blocks (condvar, no
/// spinning) until the worker completes the call, copies results back into
/// the caller's CallDesc memory and releases the slot; it is idempotent —
/// a second wait() returns the same CallPath immediately.  `poll()` is the
/// non-blocking completion probe.  Destroying a future that was never
/// waited abandons the call (it still executes; results are dropped).
/// Futures must not outlive their backend.
class CallFuture {
 public:
  CallFuture() = default;
  CallFuture(CallFuture&& other) noexcept { steal(other); }
  CallFuture& operator=(CallFuture&& other) noexcept {
    if (this != &other) {
      drop();
      steal(other);
    }
    return *this;
  }
  CallFuture(const CallFuture&) = delete;
  CallFuture& operator=(const CallFuture&) = delete;
  ~CallFuture() { drop(); }

  /// True for any future returned by submit(); false when default
  /// constructed or moved from.
  bool valid() const noexcept { return engaged_; }

  /// Non-blocking: has the call completed?  (Always true once collected
  /// or for inline-completed futures; false for invalid futures.)
  bool poll() const noexcept;

  /// Blocks until completion, collects results, releases the slot.
  /// Idempotent: later calls return the first result immediately.
  CallPath wait();

  /// The raw slot/generation identity (kInline slot for inline futures).
  FutureHandle handle() const noexcept { return handle_; }

 private:
  friend class ZcAsyncBackend;
  CallFuture(ZcAsyncBackend* backend, FutureHandle h) noexcept
      : backend_(backend), handle_(h), engaged_(true), pending_(true) {}
  explicit CallFuture(CallPath completed) noexcept
      : path_(completed), engaged_(true) {}

  void steal(CallFuture& other) noexcept {
    backend_ = other.backend_;
    handle_ = other.handle_;
    path_ = other.path_;
    engaged_ = other.engaged_;
    pending_ = other.pending_;
    other.backend_ = nullptr;
    other.engaged_ = false;
    other.pending_ = false;
  }
  void drop() noexcept;

  ZcAsyncBackend* backend_ = nullptr;  ///< only set while pending_
  FutureHandle handle_;
  CallPath path_ = CallPath::kRegular;
  bool engaged_ = false;
  bool pending_ = false;  ///< slot-backed and not yet collected
};

class ZcAsyncBackend final : public CallBackend {
 public:
  ZcAsyncBackend(Enclave& enclave, ZcAsyncConfig cfg);
  ~ZcAsyncBackend() override;

  void start() override;
  void stop() override;

  /// Synchronous contract, implemented as submit()+wait() — this is what
  /// keeps the backend registry/equivalence-suite compatible.
  CallPath invoke(const CallDesc& desc) override;

  /// Claims a completion-table slot, publishes `desc` and waits for it;
  /// false without side effects when the table is full, no worker is
  /// active, or the frame exceeds the slot pool — the routing probe used
  /// by the sharded router's steal path.  stats().in_flight is raised
  /// while a call occupies a slot.
  bool try_invoke_switchless(const CallDesc& desc) override;

  const char* name() const noexcept override {
    return cfg_.direction == CallDirection::kOcall ? "zc_async"
                                                   : "zc_async-ecall";
  }

  unsigned active_workers() const noexcept override {
    return active_count_.load(std::memory_order_acquire);
  }

  unsigned max_workers() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Completion-table capacity (the `queue=` spec option).  Under ring=on
  /// this is the summed ring capacity (each worker's share of `queue`,
  /// rounded up to a power of two).
  unsigned queue_depth() const noexcept;

  /// Test hook: plants the rotating-claim counter (wraparound regression
  /// tests start it just below the old 32-bit boundary).
  void set_claim_rotation_for_test(std::uint64_t v) noexcept {
    ticket_.store(v, std::memory_order_relaxed);
  }

  // --- the async call plane ------------------------------------------------

  /// Submits one call.  The caller's `desc` memory (args struct and
  /// payloads) must stay alive and untouched until wait() returns on the
  /// returned future.  Never blocks on capacity: with the table full, no
  /// active worker, an oversized request, or a stopped backend the call
  /// executes inline and the future comes back already completed.
  CallFuture submit(const CallDesc& desc);

  /// Non-blocking handle-level completion probe.  Stale handles (their
  /// generation has passed — the call completed and its slot was reused)
  /// report true; the live call occupying the same slot is unaffected.
  bool handle_completed(FutureHandle h) const noexcept;

  /// Pauses workers [m, max) and runs [0, m).  Paused workers still drain
  /// queued slots they are woken for, so no in-flight future is stranded.
  void set_active_workers(unsigned m) override;

  const ZcAsyncConfig& config() const noexcept { return cfg_; }

  CopyMode copy_mode() const noexcept override { return cfg_.copy; }

  /// The shared frame slab when built with pool=slab (tests/diagnostics).
  SlabPool* slab() noexcept { return slab_.get(); }

 private:
  friend class CallFuture;

  enum class SlotState : std::uint32_t {
    kFree = 0,    ///< claimable by submitters
    kClaimed,     ///< a submitter is marshalling into the slot
    kQueued,      ///< published, awaiting a worker
    kExecuting,   ///< a worker runs the call
    kDone,        ///< results ready, awaiting collection
    kReclaiming,  ///< transient: winner of the done-vs-abandon release race
  };

  struct alignas(64) Slot {
    explicit Slot(std::size_t pool_bytes) : pool(pool_bytes) {}
    std::atomic<SlotState> state{SlotState::kFree};
    std::atomic<std::uint64_t> generation{0};
    std::atomic<bool> abandoned{false};
    CallDesc desc;          ///< caller-side descriptor; ordered by `state`
    void* frame = nullptr;  ///< marshalled request; ordered by `state`
    /// Ring mode: the current occupancy's ticket and owning worker —
    /// release_slot() needs them to recycle the cell.  Written at claim
    /// (exclusive ownership), read only by the releasing party.
    std::uint64_t ring_ticket = 0;
    std::uint32_t ring_owner = 0;
    BumpPool pool;
    std::mutex mu;        ///< abandon/release serialisation
    CompletionGate gate;  ///< the waiter's sleep on `state` (kDone)
  };

  enum class WorkerCmd : std::uint32_t { kRun = 0, kPause, kExit };

  struct Worker {
    /// Ring mode: this worker's lock-free submit ring (null otherwise).
    std::unique_ptr<MpscSlotRing<Slot>> ring;
    std::atomic<WorkerCmd> cmd{WorkerCmd::kRun};
    std::atomic<bool> parked{false};
    std::mutex mu;
    std::condition_variable cv;
    std::jthread thread;
  };

  static void wake(Worker& w);
  void wake_a_worker();
  void worker_main(Worker& w);
  Slot* sweep_claim();
  /// Dispatches one claimed (kExecuting) slot and publishes kDone; true
  /// when completion was published (false: abandoned, released in place).
  /// defer_notify suppresses the per-slot gate notify — the coalescing
  /// drain broadcasts once for the whole run instead.
  bool execute_slot(Slot& slot, bool defer_notify);
  void release_slot(Slot& slot);
  /// The slot a live handle refers to (table slot, or ring cell by the
  /// handle's worker/ticket pair under ring mode).
  Slot& handle_slot(FutureHandle h) const noexcept;
  bool try_submit_ring(const CallDesc& desc, unsigned m, FutureHandle& out);
  /// Serves published ring entries out of claim order (pause/exit drains
  /// and publish-order gaps); returns completions published.
  unsigned drain_ring_stragglers(Worker& w);
  bool any_queued() const;
  void execute_regular(const CallDesc& desc);
  CallFuture inline_fallback(const CallDesc& desc);
  /// Claim + publish without any fallback; false when the table/frame/
  /// worker situation refuses the call (no side effects then).
  bool try_submit(const CallDesc& desc, FutureHandle& out);

  // CallFuture plumbing.
  CallPath collect(FutureHandle h);
  void abandon(FutureHandle h) noexcept;

  Enclave& enclave_;
  ZcAsyncConfig cfg_;
  std::unique_ptr<SlabPool> slab_;  ///< frame slabs when pool=slab
  std::vector<std::unique_ptr<Slot>> slots_;  ///< table mode (empty: ring)
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<unsigned> active_count_{0};
  /// Rotating claim start.  64-bit on purpose (satellite of the ticket-
  /// wraparound fix): the old 32-bit counter overflowed mid-scan at 2^32,
  /// and a 32-bit rotation seed folded into slot reuse patterns that a
  /// stale CallFuture could alias; the force-wrap regression test starts
  /// the counter just below the boundary.
  std::atomic<std::uint64_t> ticket_{0};
  std::atomic<bool> running_{false};
  /// coalesce=on: the one gate every collector sleeps on; workers issue
  /// one notify_batch() per drain run instead of per-slot notifies.
  CompletionGate coalesce_gate_;
};

std::unique_ptr<ZcAsyncBackend> make_zc_async_backend(Enclave& enclave,
                                                      ZcAsyncConfig cfg = {});

}  // namespace zc
