#include "core/backend_registry.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <chrono>
#include <limits>

#include "common/completion_gate.hpp"
#include "core/recording_backend.hpp"
#include "core/zc_async.hpp"
#include "core/zc_backend.hpp"
#include "core/zc_batched.hpp"
#include "core/zc_sharded.hpp"
#include "hotcalls/hotcalls.hpp"
#include "intel_sl/intel_backend.hpp"
#include "sgx/enclave.hpp"

namespace zc {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool valid_ident(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
           c == '-';
  });
}

bool all_digits(std::string_view s) {
  return !s.empty() && std::all_of(s.begin(), s.end(), [](char c) {
    return c >= '0' && c <= '9';
  });
}

[[noreturn]] void bad_value(std::string_view name, std::string_view value,
                            std::string_view want) {
  throw BackendSpecError("option '" + std::string(name) + "': bad value '" +
                         std::string(value) + "' (expected " +
                         std::string(want) + ")");
}

std::uint64_t parse_u64(std::string_view name, std::string_view value) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    bad_value(name, value, "a non-negative integer");
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += sep;
    out += p;
  }
  return out;
}

// First ';' or ',' of `s` at parenthesis depth 0 (npos when none) — how a
// nested `inner=(zc_batched:batch=8;flush=feedback)` value carries the
// separators of a whole spec.  Throws on unbalanced parentheses.
std::size_t find_separator(std::string_view s, std::string_view whole) {
  int depth = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '(') {
      ++depth;
    } else if (c == ')') {
      if (depth == 0) {
        throw BackendSpecError("spec '" + std::string(whole) +
                               "': unbalanced ')'");
      }
      --depth;
    } else if ((c == ';' || c == ',') && depth == 0) {
      return i;
    }
  }
  if (depth != 0) {
    throw BackendSpecError("spec '" + std::string(whole) +
                           "': unbalanced '(' (missing ')')");
  }
  return std::string_view::npos;
}

// Strips one level of parentheses off a value that starts with '(' — the
// quoting mechanism for values containing separators.  The parentheses
// must span the whole value; the payload must be non-empty.
std::string_view unwrap_parens(std::string_view value, std::string_view name,
                               std::string_view whole) {
  int depth = 0;
  std::size_t close = std::string_view::npos;
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (value[i] == '(') {
      ++depth;
    } else if (value[i] == ')') {
      if (--depth == 0) {
        close = i;
        break;
      }
    }
  }
  if (close == std::string_view::npos) {
    throw BackendSpecError("spec '" + std::string(whole) +
                           "': unbalanced '(' in option '" +
                           std::string(name) + "'");
  }
  if (close != value.size() - 1) {
    throw BackendSpecError("spec '" + std::string(whole) + "': option '" +
                           std::string(name) +
                           "' has text after the closing ')'");
  }
  const std::string_view inner = trim(value.substr(1, close - 1));
  if (inner.empty()) {
    throw BackendSpecError("spec '" + std::string(whole) + "': option '" +
                           std::string(name) +
                           "' has an empty parenthesised value");
  }
  return inner;
}

}  // namespace

// --- BackendSpec -----------------------------------------------------------

BackendSpec BackendSpec::parse(std::string_view text) {
  BackendSpec spec;
  const std::string_view whole = trim(text);
  if (whole.empty()) throw BackendSpecError("empty backend spec");

  const std::size_t colon = whole.find(':');
  const std::string_view key = trim(whole.substr(0, colon));
  if (!valid_ident(key)) {
    throw BackendSpecError("bad backend key '" + std::string(key) +
                           "' in spec '" + std::string(whole) + "'");
  }
  spec.key = std::string(key);
  if (colon == std::string_view::npos) return spec;

  std::string_view rest = whole.substr(colon + 1);
  if (trim(rest).empty()) {
    throw BackendSpecError("spec '" + std::string(whole) +
                           "': expected options after ':'");
  }
  char prev_sep = ':';
  while (!rest.empty()) {
    const std::size_t sep = find_separator(rest, whole);
    const std::string_view segment = trim(rest.substr(0, sep));
    const char next_sep = sep == std::string_view::npos ? '\0' : rest[sep];
    rest = sep == std::string_view::npos ? std::string_view{}
                                         : rest.substr(sep + 1);
    if (segment.empty()) {
      throw BackendSpecError("spec '" + std::string(whole) +
                             "': empty option segment");
    }
    // The name/value split, like the separator scan, ignores '=' inside
    // parens — a parenthesised bare continuation may carry a whole spec.
    std::size_t eq = std::string_view::npos;
    for (std::size_t i = 0, depth = 0; i < segment.size(); ++i) {
      if (segment[i] == '(') {
        ++depth;
      } else if (segment[i] == ')') {
        --depth;
      } else if (segment[i] == '=' && depth == 0) {
        eq = i;
        break;
      }
    }
    if (eq == std::string_view::npos) {
      // Bare value: extends the previous option's value list, which is how
      // `sl=read,write` carries a list through the ',' separator.  Only a
      // ','-joined segment continues a list; after ';' a bare value is a
      // typo'd option, not a continuation.
      if (spec.options.empty() || prev_sep != ',') {
        throw BackendSpecError(
            "spec '" + std::string(whole) + "': bare value '" +
            std::string(segment) +
            "' (expected name=value; only ',' continues a value list)");
      }
      // List continuations unwrap parens like named values do, so
      // to_string()'s re-wrapping round-trips every value uniformly.
      std::string_view continuation = segment;
      if (continuation.front() == '(') {
        continuation =
            unwrap_parens(continuation, spec.options.back().name, whole);
      }
      spec.options.back().values.emplace_back(continuation);
      prev_sep = next_sep;
      continue;
    }
    prev_sep = next_sep;
    const std::string_view name = trim(segment.substr(0, eq));
    std::string_view value = trim(segment.substr(eq + 1));
    if (!valid_ident(name)) {
      throw BackendSpecError("spec '" + std::string(whole) +
                             "': bad option name '" + std::string(name) + "'");
    }
    if (value.empty()) {
      throw BackendSpecError("spec '" + std::string(whole) + "': option '" +
                             std::string(name) + "' has an empty value");
    }
    if (value.front() == '(') {
      // Parenthesised value: the payload may itself be a whole spec (the
      // `inner=` composition mechanism) with separators and nested parens.
      value = unwrap_parens(value, name, whole);
    }
    if (spec.find(name) != nullptr) {
      throw BackendSpecError("spec '" + std::string(whole) +
                             "': duplicate option '" + std::string(name) +
                             "'");
    }
    spec.options.push_back(
        Option{std::string(name), {std::string(value)}});
  }
  return spec;
}

std::string BackendSpec::to_string() const {
  // Values carrying spec syntax (a nested inner= spec) are re-wrapped in
  // parentheses so parse(to_string()) round-trips.
  const auto quote = [](const std::string& v) {
    return v.find_first_of(":;,=()") == std::string::npos ? v
                                                          : "(" + v + ")";
  };
  std::string out = key;
  for (std::size_t i = 0; i < options.size(); ++i) {
    out += i == 0 ? ':' : ';';
    out += options[i].name;
    out += '=';
    for (std::size_t v = 0; v < options[i].values.size(); ++v) {
      if (v > 0) out += ',';
      out += quote(options[i].values[v]);
    }
  }
  return out;
}

const BackendSpec::Option* BackendSpec::find(
    std::string_view name) const noexcept {
  for (const auto& opt : options) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

namespace {

const std::string& single_value(const BackendSpec::Option& opt) {
  if (opt.values.size() != 1) {
    throw BackendSpecError("option '" + opt.name +
                           "' expects a single value, got a list of " +
                           std::to_string(opt.values.size()));
  }
  return opt.values.front();
}

}  // namespace

std::string BackendSpec::get_string(std::string_view name,
                                    std::string fallback) const {
  const Option* opt = find(name);
  return opt == nullptr ? fallback : single_value(*opt);
}

std::uint64_t BackendSpec::get_u64(std::string_view name,
                                   std::uint64_t fallback) const {
  const Option* opt = find(name);
  if (opt == nullptr) return fallback;
  return parse_u64(name, single_value(*opt));
}

unsigned BackendSpec::get_unsigned(std::string_view name,
                                   unsigned fallback) const {
  const Option* opt = find(name);
  if (opt == nullptr) return fallback;
  const std::uint64_t v = parse_u64(name, single_value(*opt));
  if (v > std::numeric_limits<unsigned>::max()) {
    bad_value(name, single_value(*opt), "an unsigned 32-bit integer");
  }
  return static_cast<unsigned>(v);
}

double BackendSpec::get_double(std::string_view name, double fallback) const {
  const Option* opt = find(name);
  if (opt == nullptr) return fallback;
  const std::string& value = single_value(*opt);
  double out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    bad_value(name, value, "a floating-point number");
  }
  return out;
}

bool BackendSpec::get_bool(std::string_view name, bool fallback) const {
  const Option* opt = find(name);
  if (opt == nullptr) return fallback;
  const std::string& value = single_value(*opt);
  if (value == "on" || value == "true" || value == "yes" || value == "1") {
    return true;
  }
  if (value == "off" || value == "false" || value == "no" || value == "0") {
    return false;
  }
  bad_value(name, value, "on/off");
}

std::vector<std::string> BackendSpec::get_list(std::string_view name) const {
  const Option* opt = find(name);
  return opt == nullptr ? std::vector<std::string>{} : opt->values;
}

// --- Built-in builders -----------------------------------------------------

namespace {

CallDirection parse_direction(const BackendSpec& spec) {
  const std::string v = spec.get_string("direction", "ocall");
  if (v == "ocall") return CallDirection::kOcall;
  if (v == "ecall") return CallDirection::kEcall;
  bad_value("direction", v, "ocall/ecall");
}

// Shared `wait=` parsing (the CompletionGate policy of the ZC family).
GateWaitPolicy parse_wait(const BackendSpec& spec, GateWaitPolicy fallback) {
  const std::string v = spec.get_string("wait", "");
  if (v.empty()) return fallback;
  GateWaitPolicy policy;
  if (!gate_policy_from_string(v, policy)) {
    bad_value("wait", v, "spin/yield/futex/condvar");
  }
  return policy;
}

// Shared `pool=` parsing: which allocator backs the untrusted frames of
// the ZC family's switchless paths.
FramePoolKind parse_pool(const BackendSpec& spec, FramePoolKind fallback) {
  const std::string v = spec.get_string("pool", "");
  if (v.empty()) return fallback;
  if (v == "bump") return FramePoolKind::kBump;
  if (v == "slab") return FramePoolKind::kSlab;
  bad_value("pool", v, "bump/slab");
}

// Shared `copy=` parsing: the data-plane copy discipline the backend
// advertises via CallBackend::copy_mode().
CopyMode parse_copy(const BackendSpec& spec, CopyMode fallback) {
  const std::string v = spec.get_string("copy", "");
  if (v.empty()) return fallback;
  if (v == "double") return CopyMode::kDouble;
  if (v == "single") return CopyMode::kSingle;
  bad_value("copy", v, "double/single");
}

std::unique_ptr<CallBackend> build_no_sl(Enclave& enclave,
                                         const BackendSpec& spec,
                                         CpuUsageMeter* /*meter*/) {
  if (parse_direction(spec) == CallDirection::kEcall) {
    return std::make_unique<RegularEcallBackend>(enclave);
  }
  return std::make_unique<RegularBackend>(enclave);
}

// Shared option parsing for the ZC family (`zc` itself and the per-shard
// config of `zc_sharded`); `key` prefixes error messages.
ZcConfig zc_config_from_spec(Enclave& enclave, const BackendSpec& spec,
                             CpuUsageMeter* meter, const std::string& key) {
  ZcConfig cfg;
  cfg.meter = meter;
  cfg.direction = parse_direction(spec);
  const std::uint64_t quantum_us = spec.get_u64(
      "quantum_us", static_cast<std::uint64_t>(cfg.quantum.count()));
  if (quantum_us == 0) {
    throw BackendSpecError(key + ": quantum_us must be > 0");
  }
  cfg.quantum = std::chrono::microseconds(quantum_us);
  cfg.mu = spec.get_double("mu", cfg.mu);
  if (cfg.mu <= 0.0 || cfg.mu > 1.0) {
    throw BackendSpecError(key + ": mu must be in (0, 1]");
  }
  cfg.max_workers = spec.get_unsigned("max_workers", cfg.max_workers);
  cfg.worker_pool_bytes = spec.get_u64("pool_bytes", cfg.worker_pool_bytes);
  if (cfg.worker_pool_bytes == 0) {
    throw BackendSpecError(key + ": pool_bytes must be > 0");
  }
  cfg.scheduler_enabled = spec.get_bool("scheduler", cfg.scheduler_enabled);
  // Caller-side wait policy, uniform across the ZC family: bounded spin
  // budget before yielding between completion polls (0 = yield
  // immediately; a large budget restores the paper's pure spin).
  cfg.spin = std::chrono::microseconds(
      spec.get_u64("spin_us", static_cast<std::uint64_t>(cfg.spin.count())));
  // What the caller does once the spin budget expires: the historical
  // yield loop, a futex/condvar sleep, or hotcalls-style pure spinning.
  cfg.wait = parse_wait(spec, cfg.wait);
  cfg.pool = parse_pool(spec, cfg.pool);
  cfg.copy = parse_copy(spec, cfg.copy);
  if (spec.has("workers")) {
    const unsigned w = spec.get_unsigned("workers", 0);
    cfg.with_initial_workers(w);
    // Honour explicit counts beyond the default N/2 probe range.
    if (cfg.max_workers == 0 &&
        w > cfg.resolved_max_workers(enclave.config().logical_cpus)) {
      cfg.max_workers = w;
    }
  }
  return cfg;
}

std::unique_ptr<CallBackend> build_zc(Enclave& enclave,
                                      const BackendSpec& spec,
                                      CpuUsageMeter* meter) {
  return make_zc_backend(enclave,
                         zc_config_from_spec(enclave, spec, meter, "zc"));
}

// The `zc` worker-plane options, parsed by zc_config_from_spec.  One
// table feeds three places so they cannot drift: the `zc` registry
// entry, the `zc_sharded` entry (where they configure the default
// inner=(zc) per shard), and the flat-vs-explicit-inner conflict check
// in build_zc_sharded.
constexpr const char* kZcWorkerPlaneOptions[] = {
    "workers", "max_workers", "quantum_us", "mu",
    "pool_bytes", "scheduler", "spin_us", "wait", "pool", "copy"};

// Registry option list = the worker-plane table plus entry-specific names.
std::vector<std::string> with_zc_worker_plane_options(
    std::initializer_list<const char*> extra) {
  std::vector<std::string> out;
  for (const char* name : kZcWorkerPlaneOptions) out.emplace_back(name);
  for (const char* name : extra) out.emplace_back(name);
  return out;
}

std::unique_ptr<CallBackend> build_zc_sharded(Enclave& enclave,
                                              const BackendSpec& spec,
                                              CpuUsageMeter* meter) {
  ZcShardedConfig cfg;
  cfg.shards = spec.get_unsigned("shards", cfg.shards);
  if (cfg.shards == 0) {
    throw BackendSpecError("zc_sharded: shards must be > 0");
  }
  const std::string policy = spec.get_string("policy", "round_robin");
  if (policy == "round_robin") {
    cfg.policy = ShardPolicy::kRoundRobin;
  } else if (policy == "caller_affinity") {
    cfg.policy = ShardPolicy::kCallerAffinity;
  } else if (policy == "least_loaded") {
    cfg.policy = ShardPolicy::kLeastLoaded;
  } else if (policy == "affinity_load") {
    cfg.policy = ShardPolicy::kAffinityLoad;
  } else {
    bad_value("policy", policy,
              "round_robin/caller_affinity/least_loaded/affinity_load");
  }
  if (spec.has("load_threshold")) {
    if (cfg.policy != ShardPolicy::kAffinityLoad) {
      throw BackendSpecError(
          "zc_sharded: load_threshold is affinity_load's escape hatch; it "
          "needs policy=affinity_load");
    }
    cfg.load_threshold = spec.get_u64("load_threshold", cfg.load_threshold);
  }
  // steal: the on/off spellings (on = the documented alias for scan-order
  // victim selection), or an explicit victim policy.
  const std::string steal = spec.get_string("steal", "off");
  if (steal == "scan" || steal == "on" || steal == "true" || steal == "yes" ||
      steal == "1") {
    cfg.steal = ShardSteal::kScan;
  } else if (steal == "max_load") {
    cfg.steal = ShardSteal::kMaxLoad;
  } else if (steal == "off" || steal == "false" || steal == "no" ||
             steal == "0") {
    cfg.steal = ShardSteal::kOff;
  } else {
    bad_value("steal", steal, "on/off/scan/max_load");
  }
  const CallDirection direction = parse_direction(spec);
  cfg.direction = direction;
  if (spec.has("inner")) {
    // Composition: every shard is built from the nested spec through the
    // registry itself, so any registered family becomes shardable.
    for (const char* flat : kZcWorkerPlaneOptions) {
      if (spec.has(flat)) {
        throw BackendSpecError(
            std::string("zc_sharded: option '") + flat +
            "' configures the default inner=(zc); with an explicit inner= "
            "spec it belongs inside the parentheses");
      }
    }
    BackendSpec inner = BackendSpec::parse(spec.get_string("inner", ""));
    if (inner.has("direction")) {
      throw BackendSpecError(
          "zc_sharded: direction belongs to the outer spec; the inner "
          "backend inherits it");
    }
    if (direction == CallDirection::kEcall) {
      inner.options.push_back({"direction", {"ecall"}});
      try {
        // The inner spec as written has already been validated; only the
        // inherited direction can fail here.  Report that in the user's
        // terms instead of blaming an option they never wrote.
        BackendRegistry::instance().validate(inner.to_string());
      } catch (const BackendSpecError&) {
        throw BackendSpecError(
            "zc_sharded: direction=ecall needs an inner family with a "
            "trusted-worker plane; '" + inner.key +
            "' does not take direction");
      }
    }
    cfg.inner_key = inner.key;
    cfg.make_shard = [inner, meter](Enclave& e) {
      return BackendRegistry::instance().create(e, inner, meter);
    };
  } else {
    cfg.shard = zc_config_from_spec(enclave, spec, meter, "zc_sharded");
  }
  return make_zc_sharded_backend(enclave, std::move(cfg));
}

std::unique_ptr<CallBackend> build_zc_batched(Enclave& enclave,
                                              const BackendSpec& spec,
                                              CpuUsageMeter* meter) {
  ZcBatchedConfig cfg;
  cfg.meter = meter;
  cfg.direction = parse_direction(spec);
  cfg.workers = spec.get_unsigned("workers", cfg.workers);
  if (cfg.workers == 0) {
    throw BackendSpecError("zc_batched: workers must be > 0");
  }
  cfg.batch = spec.get_unsigned("batch", cfg.batch);
  if (cfg.batch == 0) {
    throw BackendSpecError("zc_batched: batch must be > 0");
  }
  // Partial-flush policy: a fixed timer window (default, tuned with
  // flush_us) or the feedback controller (flush=feedback, period tuned
  // with quantum_us).  The knobs are mutually exclusive per policy.
  const std::string flush_policy = spec.get_string("flush", "timer");
  if (flush_policy == "feedback") {
    cfg.flush_policy = BatchFlushPolicy::kFeedback;
  } else if (flush_policy != "timer") {
    bad_value("flush", flush_policy, "timer/feedback");
  }
  if (cfg.flush_policy == BatchFlushPolicy::kFeedback) {
    if (spec.has("flush_us")) {
      throw BackendSpecError(
          "zc_batched: flush_us fixes the timer window; flush=feedback "
          "replaces it with the adaptive controller (pick one)");
    }
    if (cfg.batch == 1) {
      throw BackendSpecError(
          "zc_batched: flush=feedback conflicts with batch=1 (every "
          "publish flushes immediately; no window to adapt)");
    }
    const std::uint64_t quantum_us = spec.get_u64(
        "quantum_us", static_cast<std::uint64_t>(cfg.quantum.count()));
    if (quantum_us == 0) {
      throw BackendSpecError("zc_batched: quantum_us must be > 0");
    }
    cfg.quantum = std::chrono::microseconds(quantum_us);
  } else if (spec.has("quantum_us")) {
    throw BackendSpecError(
        "zc_batched: quantum_us is the feedback controller's period; it "
        "needs flush=feedback");
  }
  const std::uint64_t flush_us = spec.get_u64(
      "flush_us", static_cast<std::uint64_t>(cfg.flush.count()));
  if (spec.has("flush_us")) {
    if (cfg.batch == 1) {
      throw BackendSpecError(
          "zc_batched: flush_us conflicts with batch=1 (every publish "
          "flushes immediately; the timer can never fire)");
    }
    if (flush_us == 0) {
      throw BackendSpecError(
          "zc_batched: flush_us must be > 0 (use batch=1 for unbatched "
          "behaviour instead of a zero timer)");
    }
  }
  cfg.flush = std::chrono::microseconds(flush_us);
  // Caller-side wait policy: bounded spin budget before yielding between
  // polls.  spin_us=0 is valid and means yield-immediately.
  cfg.spin = std::chrono::microseconds(
      spec.get_u64("spin_us", static_cast<std::uint64_t>(cfg.spin.count())));
  cfg.wait = parse_wait(spec, cfg.wait);
  cfg.slot_pool_bytes = spec.get_u64("pool_bytes", cfg.slot_pool_bytes);
  if (cfg.slot_pool_bytes == 0) {
    throw BackendSpecError("zc_batched: pool_bytes must be > 0");
  }
  cfg.pool = parse_pool(spec, cfg.pool);
  cfg.copy = parse_copy(spec, cfg.copy);
  cfg.ring = spec.get_bool("ring", cfg.ring);
  cfg.coalesce = spec.get_bool("coalesce", cfg.coalesce);
  if (cfg.coalesce && !gate_can_sleep(cfg.wait)) {
    throw BackendSpecError(
        "zc_batched: coalesce=on batches *sleeper* wake-ups; it needs "
        "wait=futex or wait=condvar (spin/yield callers never sleep, so "
        "there is nothing to coalesce)");
  }
  return make_zc_batched_backend(enclave, std::move(cfg));
}

std::unique_ptr<CallBackend> build_zc_async(Enclave& enclave,
                                            const BackendSpec& spec,
                                            CpuUsageMeter* meter) {
  ZcAsyncConfig cfg;
  cfg.meter = meter;
  cfg.direction = parse_direction(spec);
  cfg.workers = spec.get_unsigned("workers", cfg.workers);
  if (cfg.workers == 0) {
    throw BackendSpecError("zc_async: workers must be > 0");
  }
  cfg.queue = spec.get_unsigned("queue", cfg.queue);
  if (cfg.queue == 0) {
    throw BackendSpecError(
        "zc_async: queue must be > 0 (the completion table needs at least "
        "one slot)");
  }
  cfg.slot_pool_bytes = spec.get_u64("pool_bytes", cfg.slot_pool_bytes);
  if (cfg.slot_pool_bytes == 0) {
    throw BackendSpecError("zc_async: pool_bytes must be > 0");
  }
  cfg.wait = parse_wait(spec, cfg.wait);
  if (!gate_can_sleep(cfg.wait)) {
    throw BackendSpecError(
        "zc_async: wait must be futex or condvar — the async plane never "
        "spins (that is its point)");
  }
  cfg.pool = parse_pool(spec, cfg.pool);
  cfg.copy = parse_copy(spec, cfg.copy);
  cfg.ring = spec.get_bool("ring", cfg.ring);
  cfg.coalesce = spec.get_bool("coalesce", cfg.coalesce);
  return make_zc_async_backend(enclave, std::move(cfg));
}

std::unique_ptr<CallBackend> build_intel(Enclave& enclave,
                                         const BackendSpec& spec,
                                         CpuUsageMeter* meter) {
  intel::IntelSlConfig cfg;
  cfg.meter = meter;
  cfg.direction = parse_direction(spec);
  cfg.num_workers = spec.get_unsigned("workers", cfg.num_workers);
  const std::uint64_t rbf = spec.get_u64("rbf", cfg.retries_before_fallback);
  const std::uint64_t rbs = spec.get_u64("rbs", cfg.retries_before_sleep);
  if (rbf > std::numeric_limits<std::uint32_t>::max() ||
      rbs > std::numeric_limits<std::uint32_t>::max()) {
    throw BackendSpecError("intel: rbf/rbs must fit in 32 bits");
  }
  cfg.retries_before_fallback = static_cast<std::uint32_t>(rbf);
  cfg.retries_before_sleep = static_cast<std::uint32_t>(rbs);
  cfg.task_pool_slots = spec.get_unsigned("pool_slots", cfg.task_pool_slots);
  if (cfg.task_pool_slots == 0) {
    throw BackendSpecError("intel: pool_slots must be > 0");
  }
  cfg.slot_frame_bytes = spec.get_u64("frame_bytes", cfg.slot_frame_bytes);
  if (cfg.slot_frame_bytes == 0) {
    throw BackendSpecError("intel: frame_bytes must be > 0");
  }
  // The static switchless set: ocall names, numeric ids, or `all`.  Name
  // resolution happens here, against this enclave's table — which is why
  // registration must precede backend creation (as with edger8r tables).
  // With direction=ecall the set selects trusted functions instead.
  const OcallTable& table = cfg.direction == CallDirection::kOcall
                                ? enclave.ocalls()
                                : enclave.ecalls();
  for (const std::string& fn : spec.get_list("sl")) {
    if (fn == "all") {
      for (std::uint32_t id = 0; id < table.size(); ++id) {
        cfg.switchless_fns.insert(id);
      }
      continue;
    }
    if (all_digits(fn)) {
      const std::uint64_t id = parse_u64("sl", fn);
      if (id >= table.size()) {
        throw BackendSpecError("intel: sl id " + fn +
                               " is not a registered ocall (table has " +
                               std::to_string(table.size()) + " entries)");
      }
      cfg.switchless_fns.insert(static_cast<std::uint32_t>(id));
      continue;
    }
    const auto id = table.find(fn);
    if (!id.has_value()) {
      throw BackendSpecError("intel: sl name '" + fn +
                             "' is not a registered ocall");
    }
    cfg.switchless_fns.insert(*id);
  }
  return intel::make_intel_backend(enclave, cfg);
}

// The trace-recording tap: wraps the inner= backend (default no_sl) in a
// RecordingBackend so any run's boundary traffic can be captured for the
// replay plane (workload/replay.hpp).  Shares the sharded router's inner=
// composition rules: the nested spec inherits the outer direction and must
// not spell its own.
std::unique_ptr<CallBackend> build_record(Enclave& enclave,
                                          const BackendSpec& spec,
                                          CpuUsageMeter* meter) {
  const CallDirection direction = parse_direction(spec);
  BackendSpec inner = BackendSpec::parse(spec.get_string("inner", "no_sl"));
  if (inner.has("direction")) {
    throw BackendSpecError(
        "record: direction belongs to the outer spec; the inner backend "
        "inherits it");
  }
  if (direction == CallDirection::kEcall) {
    inner.options.push_back({"direction", {"ecall"}});
    try {
      BackendRegistry::instance().validate(inner.to_string());
    } catch (const BackendSpecError&) {
      throw BackendSpecError(
          "record: direction=ecall needs an inner family with a "
          "trusted-worker plane; '" + inner.key +
          "' does not take direction");
    }
  }
  RecordingBackend::Options options;
  options.file = spec.get_string("file", "");
  options.jsonl = spec.get_string("jsonl", "");
  auto wrapped = BackendRegistry::instance().create(enclave, inner, meter);
  return make_recording_backend(enclave, std::move(wrapped), direction,
                                std::move(options));
}

std::unique_ptr<CallBackend> build_hotcalls(Enclave& enclave,
                                            const BackendSpec& spec,
                                            CpuUsageMeter* meter) {
  hotcalls::HotCallsConfig cfg;
  cfg.meter = meter;
  cfg.num_workers = spec.get_unsigned("workers", cfg.num_workers);
  if (cfg.num_workers == 0) {
    throw BackendSpecError("hotcalls: workers must be > 0");
  }
  cfg.slot_frame_bytes = spec.get_u64("frame_bytes", cfg.slot_frame_bytes);
  if (cfg.slot_frame_bytes == 0) {
    throw BackendSpecError("hotcalls: frame_bytes must be > 0");
  }
  return hotcalls::make_hotcalls_backend(enclave, cfg);
}

}  // namespace

// --- BackendRegistry -------------------------------------------------------

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry* registry = [] {
    auto* r = new BackendRegistry();
    r->register_backend(
        {"no_sl", "every ocall pays a full enclave transition", {"direction"},
         build_no_sl});
    r->register_backend(
        {"intel",
         "Intel SDK switchless: static call set, fixed workers, rbf/rbs",
         {"sl", "workers", "rbf", "rbs", "pool_slots", "frame_bytes",
          "direction"},
         build_intel});
    r->register_backend(
        {"hotcalls", "always-hot responder threads (Weisse et al., ISCA'17)",
         {"workers", "frame_bytes"}, build_hotcalls});
    r->register_backend(
        {"zc", "ZC-Switchless: configless adaptive workers",
         with_zc_worker_plane_options({"direction"}), build_zc});
    r->register_backend(
        {"zc_sharded",
         "switchless router over N independent shards (any inner= backend; "
         "per-shard schedulers, load-aware routing, optional stealing)",
         with_zc_worker_plane_options({"shards", "policy", "load_threshold",
                                       "steal", "inner", "direction"}),
         build_zc_sharded});
    r->register_backend(
        {"zc_batched",
         "ZC with per-worker batch buffers flushed on batch=K, flush_us=T "
         "or the adaptive flush=feedback window",
         {"workers", "batch", "flush", "flush_us", "quantum_us", "spin_us",
          "wait", "pool_bytes", "pool", "copy", "ring", "coalesce",
          "direction"},
         build_zc_batched});
    r->register_backend(
        {"zc_async",
         "future-based ZC: submit()/wait() futures, futex/condvar "
         "completion, no caller spin",
         {"workers", "queue", "pool_bytes", "pool", "copy", "wait", "ring",
          "coalesce", "direction"},
         build_zc_async});
    r->register_backend(
        {"record",
         "trace-recording tap over any inner= backend (default no_sl); "
         "dumps the capture to file=/jsonl= on stop",
         {"inner", "file", "jsonl", "direction"}, build_record});
    return r;
  }();
  return *registry;
}

void BackendRegistry::register_backend(Entry entry) {
  if (!valid_ident(entry.key)) {
    throw BackendSpecError("bad backend key '" + entry.key + "'");
  }
  if (contains(entry.key)) {
    throw BackendSpecError("backend '" + entry.key + "' already registered");
  }
  if (!entry.builder) {
    throw BackendSpecError("backend '" + entry.key + "' has no builder");
  }
  entries_.push_back(std::move(entry));
}

bool BackendRegistry::contains(std::string_view key) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.key == key; });
}

std::vector<std::string> BackendRegistry::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.key);
  return out;
}

namespace {

// Levels of explicit `inner=` nesting below `spec` (0 for a leaf).  Bounds
// the composition lattice: depth 2 (a sharded-of-sharded over a leaf) is
// the deepest spec the registry accepts.
unsigned inner_depth(const BackendSpec& spec) {
  const BackendSpec::Option* inner = spec.find("inner");
  if (inner == nullptr) return 0;
  if (inner->values.size() != 1) {
    throw BackendSpecError(
        "option 'inner' expects a single parenthesised spec, got a list of " +
        std::to_string(inner->values.size()));
  }
  return 1 + inner_depth(BackendSpec::parse(inner->values.front()));
}

constexpr unsigned kMaxInnerDepth = 2;

}  // namespace

const BackendRegistry::Entry& BackendRegistry::entry_for(
    const BackendSpec& spec) const {
  for (const auto& entry : entries_) {
    if (entry.key == spec.key) {
      for (const auto& opt : spec.options) {
        if (std::find(entry.option_names.begin(), entry.option_names.end(),
                      opt.name) == entry.option_names.end()) {
          throw BackendSpecError(
              "backend '" + spec.key + "' has no option '" + opt.name +
              "' (accepted: " +
              (entry.option_names.empty() ? "none"
                                          : join(entry.option_names, ',')) +
              ")");
        }
        if (opt.name == "inner") {
          // A nested spec is validated like a top-level one (grammar, key,
          // option names, its own inner=), so bad compositions fail at
          // validate() time, not first at create().
          if (inner_depth(spec) > kMaxInnerDepth) {
            throw BackendSpecError(
                "spec '" + spec.to_string() + "': inner= specs nest at most " +
                std::to_string(kMaxInnerDepth) + " levels deep");
          }
          if (opt.values.size() != 1) {
            throw BackendSpecError(
                "option 'inner' expects a single parenthesised spec");
          }
          entry_for(BackendSpec::parse(opt.values.front()));
        }
      }
      return entry;
    }
  }
  throw BackendSpecError("unknown backend '" + spec.key +
                         "' (known: " + join(keys(), ',') + ")");
}

std::unique_ptr<CallBackend> BackendRegistry::create(
    Enclave& enclave, std::string_view spec_text, CpuUsageMeter* meter) const {
  return create(enclave, BackendSpec::parse(spec_text), meter);
}

std::unique_ptr<CallBackend> BackendRegistry::create(Enclave& enclave,
                                                     const BackendSpec& spec,
                                                     CpuUsageMeter* meter) const {
  return entry_for(spec).builder(enclave, spec, meter);
}

void BackendRegistry::validate(std::string_view spec_text) const {
  entry_for(BackendSpec::parse(spec_text));
}

std::string BackendRegistry::help() const {
  std::string out =
      "backend spec: key[:opt=value{,value}[;opt=value...]]\n"
      "  e.g. \"no_sl\", \"zc:workers=4,quantum_us=10000\",\n"
      "       \"intel:sl=read,write;workers=2;rbf=20000\",\n"
      "       \"hotcalls:workers=2\",\n"
      "       \"zc_sharded:shards=4;policy=least_loaded;steal=on\",\n"
      "       \"zc_sharded:shards=2;inner=(zc_batched:batch=8)\",\n"
      "       \"zc_batched:workers=2;batch=8;flush_us=100;spin_us=0\",\n"
      "       \"zc_batched:workers=2;batch=8;flush=feedback\",\n"
      "       \"zc_async:workers=2;queue=16\"\n"
      "  direction=ecall installs the backend on the trusted-function\n"
      "  (ecall) plane where supported.  inner=(...) nests a whole spec:\n"
      "  the sharded router builds every shard from it (2 levels max).\n"
      "  wait= picks the blocked-caller policy (spin/yield/futex/condvar)\n"
      "  once the spin_us budget expires.  pool=slab swaps the bump frame\n"
      "  pools for a shared size-classed slab; copy=single advertises the\n"
      "  in-place payload path (see docs/backend-specs.md).\n";
  for (const auto& entry : entries_) {
    out += "  " + entry.key + " — " + entry.summary + "\n";
    out += "      options: " +
           (entry.option_names.empty() ? "none"
                                       : join(entry.option_names, ',')) +
           "\n";
  }
  return out;
}

CallDirection spec_direction(const BackendSpec& spec) {
  return parse_direction(spec);
}

void install_backend_spec(Enclave& enclave, std::string_view spec_text,
                          CpuUsageMeter* meter) {
  const BackendSpec spec = BackendSpec::parse(spec_text);
  auto backend = BackendRegistry::instance().create(enclave, spec, meter);
  // direction=ecall backends serve the trusted-function plane; everything
  // else replaces the ocall backend.  create() has already rejected the
  // option on backends that cannot serve ecalls.
  if (spec_direction(spec) == CallDirection::kEcall) {
    enclave.set_ecall_backend(std::move(backend));
  } else {
    enclave.set_backend(std::move(backend));
  }
}

}  // namespace zc
