#include "core/worker.hpp"

#include "common/cycles.hpp"
#include "common/pin.hpp"
#include "sgx/marshal.hpp"

namespace zc {

const char* to_string(WorkerState s) noexcept {
  switch (s) {
    case WorkerState::kUnused:
      return "UNUSED";
    case WorkerState::kReserved:
      return "RESERVED";
    case WorkerState::kProcessing:
      return "PROCESSING";
    case WorkerState::kWaiting:
      return "WAITING";
    case WorkerState::kPaused:
      return "PAUSED";
    case WorkerState::kExit:
      return "EXIT";
  }
  return "?";
}

ZcWorker::ZcWorker(Enclave& enclave, const ZcConfig& cfg, BackendStats& stats,
                   unsigned index)
    : enclave_(enclave),
      cfg_(cfg),
      stats_(stats),
      index_(index),
      pool_(cfg.worker_pool_bytes) {}

ZcWorker::~ZcWorker() { shutdown(); }

void ZcWorker::start() {
  if (thread_.joinable()) return;
  thread_ = std::jthread([this] { main(); });
}

void ZcWorker::shutdown() {
  if (!thread_.joinable()) return;
  command(SchedCmd::kExit);
  thread_.join();
}

bool ZcWorker::try_reserve() noexcept {
  WorkerState expected = WorkerState::kUnused;
  return status_.compare_exchange_strong(expected, WorkerState::kReserved,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
}

void* ZcWorker::alloc_frame(std::size_t bytes) {
  void* mem = pool_.allocate(bytes, 64);
  if (mem == nullptr) {
    // Pool exhausted: free and re-allocate via an ocall (§IV-B). The
    // caller pays one full enclave transition; this is the source of the
    // latency spikes the paper observes in Fig. 8.
    enclave_.transitions().eexit();
    pool_.reset();
    enclave_.transitions().eenter();
    stats_.pool_resets.add();
    mem = pool_.allocate(bytes, 64);
  }
  return mem;
}

void ZcWorker::submit(void* frame) noexcept {
  request_ = frame;
  status_.store(WorkerState::kProcessing, std::memory_order_release);
}

void ZcWorker::wait_done() noexcept {
  // The gate runs the paper's pure completion spin while the budget lasts
  // — the budget only expires when the host cannot run the worker
  // concurrently, where yielding (or, under wait=futex/condvar, sleeping
  // until the worker's notify) is what lets the worker finish at all.
  done_gate_.await(
      status_, [](WorkerState s) { return s == WorkerState::kWaiting; },
      cfg_.wait, cfg_.spin,
      GateCounters{&stats_.caller_yields, &stats_.caller_sleeps,
                   &stats_.caller_wakeups});
}

void ZcWorker::release() noexcept {
  status_.store(WorkerState::kUnused, std::memory_order_release);
}

void ZcWorker::cancel_reservation() noexcept {
  status_.store(WorkerState::kUnused, std::memory_order_release);
}

void ZcWorker::command(SchedCmd cmd) noexcept {
  // Only an actual transition needs the notify: the scheduler re-issues
  // the full command vector every probe and every quantum, so an
  // unconditional notify turned a paused worker into a spurious-wake
  // target many times per second (the same storm the batched/async
  // set_active_workers fix removes).
  if (cmd_.exchange(cmd, std::memory_order_acq_rel) == cmd) return;
  // Publish under the mutex so a worker between predicate check and wait
  // cannot miss the notification.
  {
    std::lock_guard lock(mu_);
  }
  cv_.notify_one();
}

void ZcWorker::main() {
  const SimConfig& sim = enclave_.config();
  if (sim.pin_threads) {
    pin_current_thread_to_window(sim.pin_base_cpu, sim.logical_cpus);
  }
  std::size_t meter_slot = 0;
  if (cfg_.meter != nullptr) {
    meter_slot = cfg_.meter->register_current_thread();
  }

  std::uint64_t iterations = 0;
  for (;;) {
    const WorkerState s = status_.load(std::memory_order_acquire);

    if (s == WorkerState::kProcessing) {
      // Execute the published request without any enclave transition.
      auto* header = static_cast<FrameHeader*>(request_);
      MarshalledCall call = frame_view(request_);
      const OcallTable& table = cfg_.direction == CallDirection::kOcall
                                    ? enclave_.ocalls()
                                    : enclave_.ecalls();
      table.dispatch(header->fn_id, call);
      served_.fetch_add(1, std::memory_order_relaxed);
      status_.store(WorkerState::kWaiting, std::memory_order_release);
      // Sleeping wait policies need the hand-off notify; the default
      // yield/spin callers poll, so their hot path stays fence-free.
      if (gate_can_sleep(cfg_.wait)) done_gate_.notify(status_);
      continue;
    }

    if (s == WorkerState::kUnused) {
      const SchedCmd cmd = cmd_.load(std::memory_order_acquire);
      if (cmd == SchedCmd::kExit) {
        // Final cleanup (paper: workers free memory, then terminate).
        pool_.reset();
        status_.store(WorkerState::kExit, std::memory_order_release);
        break;
      }
      if (cmd == SchedCmd::kPause) {
        WorkerState expected = WorkerState::kUnused;
        if (status_.compare_exchange_strong(expected, WorkerState::kPaused,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
          stats_.worker_sleeps.add();
          if (cfg_.meter != nullptr) cfg_.meter->checkpoint(meter_slot);
          std::unique_lock lock(mu_);
          // Count every resume — spurious ones included — so wake storms
          // show up in worker_wakeups, not just in syscall profiles.
          while (cmd_.load(std::memory_order_acquire) == SchedCmd::kPause) {
            cv_.wait(lock);
            stats_.worker_wakeups.add();
          }
          status_.store(WorkerState::kUnused, std::memory_order_release);
        }
        continue;
      }
    }

    // Busy-wait for work: this (or the caller's completion spin) is the
    // "exactly one thread busy-waiting per active worker" of §IV-A.  The
    // periodic yield is the batched worker's narrow-host courtesy: on a
    // host without a core per worker it lets publishers actually run;
    // with one it costs a syscall every 1024 pauses.
    cpu_pause();
    ++iterations;
    if ((iterations & 0x3FF) == 0) std::this_thread::yield();
    if (cfg_.meter != nullptr && (iterations & 0x3FFF) == 0) {
      cfg_.meter->checkpoint(meter_slot);
    }
  }

  if (cfg_.meter != nullptr) cfg_.meter->unregister_current_thread(meter_slot);
}

}  // namespace zc
