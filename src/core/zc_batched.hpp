// Batched ZC-Switchless call backend.
//
// Short ocalls are switchless's worst case in the paper: the per-call
// synchronisation (reserve, publish, wake, collect) costs as much as the
// work itself.  This backend amortises that cost by batching: each worker
// owns a buffer of `batch` request slots; callers claim a slot, marshal
// their request into it and publish, then spin for their own slot's result.
// The worker sweeps its buffer and executes *all* published requests in one
// pass — one wakeup, one sweep, K calls — flushing when the buffer fills
// (`batch=K`) or when the oldest published request has waited out the
// flush window (so a lone caller is never stalled longer than the flush
// timeout).
//
// Two partial-flush policies pick that window:
//  - timer (`flush_us=T`): a fixed window, the original design;
//  - feedback (`flush=feedback`): a controller thread re-decides the
//    window every quantum from the observed mean batch fill — the
//    feedback scheduler's grow/shrink-by-quantum idea applied to the
//    flush grace instead of the worker count (rule: adapt_flush_window in
//    core/scheduler.hpp).  Mostly-empty timer flushes widen the window
//    (more amortisation under sparse load); buffers that fill on their
//    own narrow it (stragglers right after a burst flush promptly).  The
//    window is clamped to [flush/8 (>= 1us), flush*8], so no caller is
//    ever stranded longer than 8x the configured base window.
//
// Slot life cycle (per slot, lock-free on the hot path):
//
//   EMPTY -> CLAIMED -> PENDING -> DONE -> EMPTY
//     caller: EMPTY->CLAIMED (CAS), CLAIMED->PENDING (publish),
//             DONE->EMPTY (collect)
//     worker: PENDING->DONE (execute, during a flush)
//
// Like plain ZC, a caller that finds no free slot on any active worker
// falls back to a regular ocall immediately — no busy waiting for capacity.
// Workers can be paused/resumed (set_active_workers); a pausing worker
// drains its published slots before parking, and a caller that publishes
// into a parked worker's buffer wakes it, so no call is ever lost.
//
// Two hot-path variants are spec-selectable so the legacy path stays
// A/B-able (`ring=`/`coalesce=` in the backend spec):
//
//  - ring=on: each worker's slot buffer becomes a lock-free MPSC ring
//    (MpscSlotRing).  A claim is one CAS on the ring tail instead of a
//    CAS-scan over the whole buffer, and the worker reads the oldest
//    pending request in O(1) (ring front) instead of sweeping every slot
//    per loop.  The slot life cycle grows one state — a worker (or a
//    stop-racing caller serving its own slot) moves PENDING -> EXECUTING
//    by CAS before dispatching, which arbitrates who runs the call.
//  - coalesce=on (requires a sleeping wait= policy): callers sleep on
//    their worker's shared gate via await_coalesced(), and a flush issues
//    one notify_batch() — one futex wake / condvar broadcast per batch —
//    instead of one notify() per slot (BackendStats::wake_batches counts
//    the broadcasts; BM_GatePolicy priced the per-slot wake at ~2.2 µs).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/completion_gate.hpp"
#include "common/cpu_meter.hpp"
#include "common/mpsc_ring.hpp"
#include "common/pool.hpp"
#include "sgx/enclave.hpp"

namespace zc {

enum class BatchFlushPolicy : std::uint8_t {
  kTimer,     ///< fixed window: flush_us, never adapted
  kFeedback,  ///< window re-decided every quantum from observed batch fill
};

const char* to_string(BatchFlushPolicy policy) noexcept;

struct ZcBatchedConfig {
  unsigned workers = 2;  ///< batch workers, each owning one buffer (> 0)
  unsigned batch = 8;    ///< slots per worker buffer; flush when full (> 0)
  /// Max age of the oldest published request before a partial flush (the
  /// fixed window under kTimer; the initial window and the anchor of the
  /// [flush/8, flush*8] clamp under kFeedback).
  std::chrono::microseconds flush{100};
  BatchFlushPolicy flush_policy = BatchFlushPolicy::kTimer;
  /// Feedback controller period: how often the flush window is re-decided
  /// (kFeedback only; the paper's scheduler quantum default).
  std::chrono::microseconds quantum{10'000};
  /// Caller-side wait policy: spin (`pause`) for at most this budget, then
  /// yield between result polls.  0 = yield immediately (narrowest-host
  /// politeness); a large budget approximates hotcalls-style pure spinning.
  /// Every yield bumps BackendStats::caller_yields.
  std::chrono::microseconds spin{50};
  /// What a caller does after the spin budget (CompletionGate): the
  /// default keeps the yield loop; futex/condvar sleep on the slot's state
  /// word until the flushing worker notifies (caller_sleeps/caller_wakeups).
  GateWaitPolicy wait = GateWaitPolicy::kYield;
  /// Per-slot preallocated untrusted frame pool; oversized requests fall
  /// back to a regular ocall.
  std::size_t slot_pool_bytes = 64 * 1024;
  /// pool=slab: frames come from a shared size-classed SlabPool instead of
  /// the per-slot bump pools, so no request is ever "oversized".
  FramePoolKind pool = FramePoolKind::kBump;
  /// copy=single advertises the in-place payload path (see marshal.hpp).
  CopyMode copy = CopyMode::kDouble;
  /// Lock-free MPSC submit ring per worker instead of the slot-table
  /// CAS-scan (see the header comment); `batch` becomes the ring capacity
  /// (rounded up to a power of two).
  bool ring = false;
  /// One coalesced wake broadcast per flush instead of per-slot notifies.
  /// Only meaningful with a sleeping wait= policy (futex/condvar); the
  /// spec layer rejects other combinations.
  bool coalesce = false;
  CpuUsageMeter* meter = nullptr;
  CallDirection direction = CallDirection::kOcall;
};

class ZcBatchedBackend final : public CallBackend {
 public:
  ZcBatchedBackend(Enclave& enclave, ZcBatchedConfig cfg);
  ~ZcBatchedBackend() override;

  void start() override;
  void stop() override;
  CallPath invoke(const CallDesc& desc) override;
  /// Claims a slot on an active worker, publishes `desc` and waits for the
  /// flush that serves it; false without side effects when no slot is free
  /// (or the frame exceeds the slot pool).  The routing probe used by the
  /// sharded router's steal path; stats().in_flight is raised while the
  /// call occupies a slot.
  bool try_invoke_switchless(const CallDesc& desc) override;
  const char* name() const noexcept override {
    return cfg_.direction == CallDirection::kOcall ? "zc_batched"
                                                   : "zc_batched-ecall";
  }

  unsigned active_workers() const noexcept override {
    return active_count_.load(std::memory_order_acquire);
  }

  unsigned max_workers() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Pauses workers [m, max) and runs [0, m); callers only claim slots on
  /// active workers.  Pausing workers drain published requests first.
  void set_active_workers(unsigned m) override;

  /// Buffer flushes so far (== stats().batch_flushes); the mean batch size
  /// is switchless_calls / batch_flushes.
  std::uint64_t flushes() const noexcept {
    return stats_.batch_flushes.load();
  }

  /// The partial-flush window currently in force (fixed under the timer
  /// policy; live controller output under flush=feedback).
  std::uint64_t flush_window_ns() const noexcept {
    return flush_ns_.load(std::memory_order_relaxed);
  }

  /// Window re-decisions taken by the feedback controller so far (0 under
  /// the timer policy; counts quanta with traffic, not window changes).
  std::uint64_t flush_decisions() const noexcept {
    return flush_decisions_.load(std::memory_order_relaxed);
  }

  const ZcBatchedConfig& config() const noexcept { return cfg_; }

  CopyMode copy_mode() const noexcept override { return cfg_.copy; }

  /// The shared frame slab when built with pool=slab (tests/diagnostics).
  SlabPool* slab() noexcept { return slab_.get(); }

  /// Test hook: plants the rotating-claim counter (wraparound regression
  /// tests start it just below the old 32-bit boundary).
  void set_claim_rotation_for_test(std::uint64_t v) noexcept {
    ticket_.store(v, std::memory_order_relaxed);
  }

 private:
  enum class SlotState : std::uint32_t {
    kEmpty = 0,  ///< free, claimable by callers
    kClaimed,    ///< a caller is marshalling into the slot
    kPending,    ///< published, awaiting the next flush
    kDone,       ///< executed, awaiting collection by the caller
    kExecuting,  ///< ring mode only: dispatch in progress; the PENDING ->
                 ///< EXECUTING CAS arbitrates worker vs. stop-racing caller
  };

  struct alignas(64) Slot {
    explicit Slot(std::size_t pool_bytes) : pool(pool_bytes) {}
    std::atomic<SlotState> state{SlotState::kEmpty};
    std::atomic<std::uint64_t> publish_ns{0};  ///< flush-timer anchor
    void* frame = nullptr;  ///< marshalled request; ordered by `state`
    BumpPool pool;
    CompletionGate gate;  ///< the publisher's wait for its slot's kDone
  };

  enum class WorkerCmd : std::uint32_t { kRun = 0, kPause, kExit };

  struct Worker {
    Worker(unsigned batch, std::size_t pool_bytes, bool use_ring);
    /// Table mode: the classic CAS-scanned slot buffer (empty under ring=).
    std::vector<std::unique_ptr<Slot>> slots;
    /// Ring mode: the lock-free submit ring (null under the table mode).
    std::unique_ptr<MpscSlotRing<Slot>> ring;
    /// coalesce=on: the shared gate all of this worker's callers sleep on.
    CompletionGate gate;
    std::atomic<WorkerCmd> cmd{WorkerCmd::kRun};
    std::atomic<bool> parked{false};
    std::mutex mu;
    std::condition_variable cv;
    std::jthread thread;
  };

  static void wake(Worker& w);
  void worker_main(Worker& w);
  void flush(Worker& w);
  void dispatch_slot(Slot& slot);
  void await_done(Worker& w, Slot& slot);
  bool try_invoke_ring(const CallDesc& desc, unsigned m);
  void flush_ring(Worker& w);
  void flush_ring_stragglers(Worker& w);
  void controller_main(const std::stop_token& st);
  void execute_regular(const CallDesc& desc);
  CallPath fallback(const CallDesc& desc);

  Enclave& enclave_;
  ZcBatchedConfig cfg_;
  std::unique_ptr<SlabPool> slab_;  ///< frame slabs when pool=slab
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<unsigned> active_count_{0};
  /// Rotating claim start.  64-bit on purpose: the old 32-bit counter made
  /// the rotation index `(first + i) % m` jump at the 2^32 wraparound
  /// (where `first + i` overflowed mid-scan), skewing claim spreading; a
  /// 64-bit counter cannot wrap in any realistic run, and the force-wrap
  /// regression test pins the behaviour at the old boundary.
  std::atomic<std::uint64_t> ticket_{0};
  std::atomic<bool> running_{false};

  /// Live partial-flush window, read by every worker sweep.  Written only
  /// by the feedback controller (or fixed at cfg_.flush under kTimer).
  std::atomic<std::uint64_t> flush_ns_{0};
  std::atomic<std::uint64_t> flush_decisions_{0};
  std::mutex controller_mu_;
  std::condition_variable_any controller_cv_;
  std::jthread controller_;
};

std::unique_ptr<ZcBatchedBackend> make_zc_batched_backend(
    Enclave& enclave, ZcBatchedConfig cfg = {});

}  // namespace zc
