#include "core/recording_backend.hpp"

#include <cstdio>
#include <fstream>
#include <limits>

#include "common/cpu_meter.hpp"  // wall_ns
#include "sgx/enclave.hpp"

namespace zc {

RecordingBackend::RecordingBackend(Enclave& enclave,
                                   std::unique_ptr<CallBackend> inner,
                                   CallDirection direction, Options options)
    : enclave_(enclave),
      inner_(std::move(inner)),
      direction_(direction),
      options_(std::move(options)),
      epoch_ns_(wall_ns()) {
  name_ = std::string("record[") + inner_->name() + "]";
  if (direction_ == CallDirection::kEcall) name_ += "-ecall";
}

RecordingBackend::~RecordingBackend() { write_outputs(); }

void RecordingBackend::start() {
  // The vtime origin resets on (re)start so a stop/start cycle does not
  // leave a dead gap at the front of the schedule.
  epoch_ns_ = wall_ns();
  inner_->start();
}

void RecordingBackend::stop() {
  inner_->stop();
  write_outputs();
}

CallPath RecordingBackend::invoke(const CallDesc& desc) {
  stats_.in_flight.add();
  const std::uint64_t t0 = wall_ns();
  const CallPath path = inner_->invoke(desc);
  const std::uint64_t t1 = wall_ns();
  stats_.in_flight.sub();
  switch (path) {
    case CallPath::kRegular:
      stats_.regular_calls.add();
      break;
    case CallPath::kSwitchless:
      stats_.switchless_calls.add();
      break;
    case CallPath::kFallback:
      stats_.fallback_calls.add();
      break;
  }
  record(desc, path, t0, t1);
  return path;
}

bool RecordingBackend::try_invoke_switchless(const CallDesc& desc) {
  stats_.in_flight.add();
  const std::uint64_t t0 = wall_ns();
  const bool served = inner_->try_invoke_switchless(desc);
  const std::uint64_t t1 = wall_ns();
  stats_.in_flight.sub();
  if (served) {
    stats_.switchless_calls.add();
    record(desc, CallPath::kSwitchless, t0, t1);
  }
  return served;
}

void RecordingBackend::record(const CallDesc& desc, CallPath /*path*/,
                              std::uint64_t t0_ns, std::uint64_t t1_ns) {
  workload::TraceRecord r;
  r.vtime_ns = t0_ns >= epoch_ns_ ? t0_ns - epoch_ns_ : 0;
  r.work_ns = t1_ns - t0_ns;
  r.args_size = desc.args_size;
  const auto clamp32 = [](std::size_t v) {
    return v > std::numeric_limits<std::uint32_t>::max()
               ? std::numeric_limits<std::uint32_t>::max()
               : static_cast<std::uint32_t>(v);
  };
  r.in_size = clamp32(desc.in_size);
  r.out_size = clamp32(desc.out_size);
  r.direction = direction_;

  std::lock_guard lock(mu_);
  if (desc.fn_id >= name_idx_by_fn_.size()) {
    name_idx_by_fn_.resize(desc.fn_id + 1,
                           std::numeric_limits<std::uint32_t>::max());
  }
  if (name_idx_by_fn_[desc.fn_id] ==
      std::numeric_limits<std::uint32_t>::max()) {
    const OcallTable& table = direction_ == CallDirection::kOcall
                                  ? enclave_.ocalls()
                                  : enclave_.ecalls();
    name_idx_by_fn_[desc.fn_id] = trace_.intern(table.name(desc.fn_id));
  }
  r.name_idx = name_idx_by_fn_[desc.fn_id];
  const auto [it, inserted] = caller_ids_.try_emplace(
      std::this_thread::get_id(),
      static_cast<std::uint32_t>(caller_ids_.size()));
  r.caller = it->second;
  trace_.records.push_back(r);
  written_ = false;  // new traffic re-arms the stop()-time dump
}

workload::Trace RecordingBackend::trace_snapshot() const {
  std::lock_guard lock(mu_);
  return trace_;
}

void RecordingBackend::write_outputs() noexcept {
  workload::Trace snapshot;
  {
    std::lock_guard lock(mu_);
    if (written_ || (options_.file.empty() && options_.jsonl.empty())) return;
    written_ = true;
    snapshot = trace_;
  }
  try {
    if (!options_.file.empty()) snapshot.save(options_.file);
    if (!options_.jsonl.empty()) {
      std::ofstream out(options_.jsonl, std::ios::trunc);
      if (!out) {
        throw workload::TraceError("cannot open trace JSONL file '" +
                                   options_.jsonl + "'");
      }
      snapshot.export_jsonl(out);
    }
  } catch (const workload::TraceError& e) {
    // stop() and the destructor must not throw; a failed dump is loud on
    // stderr instead of fatal mid-teardown.
    std::fprintf(stderr, "record backend: %s\n", e.what());
  }
}

std::unique_ptr<CallBackend> make_recording_backend(
    Enclave& enclave, std::unique_ptr<CallBackend> inner,
    CallDirection direction, RecordingBackend::Options options) {
  return std::make_unique<RecordingBackend>(enclave, std::move(inner),
                                            direction, std::move(options));
}

}  // namespace zc
