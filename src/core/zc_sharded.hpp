// Sharded ZC-Switchless call backend.
//
// The plain ZcBackend keeps one flat worker array: every caller scans the
// same cache lines (worker status words) from index 0, so under many
// concurrent callers the low-indexed workers become a contention point —
// the single-queue bottleneck of the paper's design at scale.  The sharded
// backend splits the worker pool into N independent shards, each a complete
// ZcBackend with its own workers, request pools and feedback scheduler.  A
// caller is routed to exactly one shard per call; the handoff path
// (reservation CAS, request buffer, completion spin) touches only that
// shard's cache lines, and shards never synchronise with each other.  The
// only shared write per call is the lifetime stats() counter block — the
// same cost every backend pays.
//
// Shard selection policies:
//  - round_robin: a relaxed atomic ticket spreads calls evenly.  Best when
//    callers are homogeneous.
//  - caller_affinity: the calling thread hashes to a stable shard, so a
//    thread's requests always hit the same workers (warm pools, no
//    cross-shard cache-line bouncing).  Best when callers are long-lived.
//  - least_loaded: routes to the shard with the fewest calls currently
//    occupying its workers (each shard's stats().in_flight gauge, one
//    relaxed load per shard).  Count-blind policies route onto shards
//    whose workers are tied up in long calls; this one follows *observed*
//    load, the same principle the feedback scheduler applies to worker
//    counts.  Ties go to the lowest index, so an idle backend routes
//    deterministically.
//
// By default a call routed to a shard with no idle worker falls back to a
// regular ocall immediately — the paper's §IV-C no-busy-wait property is
// preserved per shard, and shards stay strictly isolated.  With steal=on
// the caller instead probes the remaining shards once (bounded, no
// retries, no spinning) and runs on the first idle worker it finds —
// cross-shard work stealing as a measurable ablation against the
// strict-isolation design: it trades the cross-shard cache-line scan this
// backend exists to eliminate for fewer fallback transitions under skewed
// load.  Stolen calls are counted in stats().steals; a call that finds no
// idle worker anywhere still falls back through its primary shard, so the
// primary's feedback scheduler observes the unmet demand.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "core/zc_backend.hpp"

namespace zc {

enum class ShardPolicy : std::uint8_t {
  kRoundRobin,      ///< relaxed atomic ticket, even spread
  kCallerAffinity,  ///< hash of the calling thread id, stable routing
  kLeastLoaded,     ///< fewest in-flight calls right now (load-aware)
};

const char* to_string(ShardPolicy policy) noexcept;

struct ZcShardedConfig {
  unsigned shards = 2;  ///< independent worker shards (> 0)
  ShardPolicy policy = ShardPolicy::kRoundRobin;
  /// Bounded cross-shard work stealing: a call whose primary shard has no
  /// idle worker probes the other shards once before falling back.
  bool steal = false;
  /// Per-shard worker-pool configuration (worker counts, quantum, pools,
  /// scheduler and direction all apply to each shard independently).
  ZcConfig shard;
};

class ZcShardedBackend final : public CallBackend {
 public:
  ZcShardedBackend(Enclave& enclave, ZcShardedConfig cfg);
  ~ZcShardedBackend() override;

  void start() override;
  void stop() override;
  CallPath invoke(const CallDesc& desc) override;
  const char* name() const noexcept override {
    return cfg_.shard.direction == CallDirection::kOcall ? "zc_sharded"
                                                         : "zc_sharded-ecall";
  }

  /// Sum of the shards' currently active worker counts.
  unsigned active_workers() const noexcept override;

  unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

  /// Direct access to one shard (diagnostics, churn tests).
  ZcBackend& shard(unsigned i) noexcept { return *shards_[i]; }
  const ZcBackend& shard(unsigned i) const noexcept { return *shards_[i]; }

  /// Applies `m` active workers to every shard (scheduler-off ablations).
  void set_active_workers(unsigned m);

  /// Lifetime calls served per shard (sums each shard's workers).
  std::vector<std::uint64_t> per_shard_served() const;

  const ZcShardedConfig& config() const noexcept { return cfg_; }

 private:
  unsigned select_shard() noexcept;
  CallPath record(CallPath path) noexcept;

  Enclave& enclave_;
  ZcShardedConfig cfg_;
  std::vector<std::unique_ptr<ZcBackend>> shards_;
  std::atomic<unsigned> ticket_{0};
};

std::unique_ptr<ZcShardedBackend> make_zc_sharded_backend(
    Enclave& enclave, ZcShardedConfig cfg = {});

}  // namespace zc
