// Sharded switchless call router.
//
// The plain ZcBackend keeps one flat worker array: every caller scans the
// same cache lines (worker status words) from index 0, so under many
// concurrent callers the low-indexed workers become a contention point —
// the single-queue bottleneck of the paper's design at scale.  The sharded
// backend splits capacity into N independent shards and routes each call
// to exactly one of them; the handoff path (reservation, request buffer,
// completion wait) touches only that shard's cache lines, and shards never
// synchronise with each other.  The only shared write per call is the
// lifetime stats() counter block — the same cost every backend pays.
//
// Since PR 5 the router is *generic*: a shard is any CallBackend, built by
// a factory, so the same routing/stealing policies compose over plain ZC
// workers (the default, byte-for-byte the old behaviour), batched buffers
// or the async completion table.  The spec plane spells composition as a
// nested spec — `zc_sharded:shards=4;inner=(zc_batched:batch=8)` — and the
// router's probe (CallBackend::try_invoke_switchless) plus the per-shard
// stats().in_flight gauge are the whole inner-backend contract.  Inner
// planes keep their full option surface, so the MPSC submit ring and
// coalesced wakes compose transparently: each shard of
// `inner=(zc_batched:ring=on;coalesce=on;wait=futex)` runs its own rings
// and its own batch-wake epoch, with no router involvement.
//
// Shard selection policies:
//  - round_robin: a relaxed atomic ticket spreads calls evenly.  Best when
//    callers are homogeneous.
//  - caller_affinity: the calling thread hashes to a stable shard, so a
//    thread's requests always hit the same workers (warm pools, no
//    cross-shard cache-line bouncing).  Best when callers are long-lived.
//  - least_loaded: routes to the shard with the fewest calls currently
//    occupying its capacity (each shard's stats().in_flight gauge, one
//    relaxed load per shard).  Count-blind policies route onto shards
//    whose workers are tied up in long calls; this one follows *observed*
//    load.  Ties go to the lowest index, so an idle backend routes
//    deterministically.
//  - affinity_load: caller_affinity with a load escape hatch — the call
//    stays on its home shard while the home's in_flight gauge is at most
//    `load_threshold`, and reroutes to the least-loaded shard only beyond
//    it.  Warm-pool locality by default, load-awareness under pressure.
//
// By default a call routed to a shard with no capacity falls back to a
// regular ocall immediately — the paper's §IV-C no-busy-wait property is
// preserved per shard, and shards stay strictly isolated.  With stealing
// enabled the caller instead probes the remaining shards once (bounded, no
// retries, no spinning) and runs on the first one that accepts — a
// measurable ablation against strict isolation.  Victim selection:
//  - steal=on (alias: scan): probe in scan order from the primary.
//  - steal=max_load: probe the busiest (max in_flight) shard first, the
//    remainder in scan order.  The busiest shard provably has awake
//    workers right now; an idle-looking shard's workers may all be
//    parked by its feedback scheduler, where a probe fails anyway
//    (§IV-C: no waiting for capacity).
// Stolen calls are counted in stats().steals; a call that no shard accepts
// still falls back through its *primary* shard, so the primary's feedback
// scheduler observes the unmet demand.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/zc_backend.hpp"

namespace zc {

enum class ShardPolicy : std::uint8_t {
  kRoundRobin,      ///< relaxed atomic ticket, even spread
  kCallerAffinity,  ///< hash of the calling thread id, stable routing
  kLeastLoaded,     ///< fewest in-flight calls right now (load-aware)
  kAffinityLoad,    ///< affinity until the home shard exceeds the threshold
};

enum class ShardSteal : std::uint8_t {
  kOff,      ///< strict isolation: refusal means immediate fallback
  kScan,     ///< probe the other shards once, in scan order
  kMaxLoad,  ///< probe the other shards once, busiest (max in_flight) first
};

const char* to_string(ShardPolicy policy) noexcept;
const char* to_string(ShardSteal steal) noexcept;

struct ZcShardedConfig {
  unsigned shards = 2;  ///< independent shards (> 0)
  ShardPolicy policy = ShardPolicy::kRoundRobin;
  ShardSteal steal = ShardSteal::kOff;
  /// affinity_load's escape hatch: route away from the home shard only
  /// when its in_flight gauge exceeds this.
  std::uint64_t load_threshold = 0;
  /// Boundary direction of the composed plane (for name()); with the
  /// default inner this is derived from `shard.direction`.
  CallDirection direction = CallDirection::kOcall;
  /// Per-shard configuration of the *default* inner=(zc) backend (worker
  /// counts, quantum, pools, scheduler and direction all apply to each
  /// shard independently).  Ignored when `make_shard` is set.
  ZcConfig shard;
  /// Builds one shard.  Unset = one ZcBackend per shard from `shard`
  /// (exactly the pre-composition behaviour); the registry wires nested
  /// `inner=(...)` specs through here.
  std::function<std::unique_ptr<CallBackend>(Enclave&)> make_shard;
  /// Registry key of the inner family ("zc", "zc_batched", ...), used for
  /// the composed name().
  std::string inner_key = "zc";
};

class ZcShardedBackend final : public CallBackend {
 public:
  ZcShardedBackend(Enclave& enclave, ZcShardedConfig cfg);
  ~ZcShardedBackend() override;

  void start() override;
  void stop() override;
  CallPath invoke(const CallDesc& desc) override;
  /// The router's own capacity probe, so a router can itself be an inner
  /// shard of another router (depth-2 composition): routes to the
  /// selected shard's probe, steals per the configured policy, never
  /// falls back.  The router also maintains its own stats().in_flight
  /// gauge across every in-flight call — the load signal an *outer*
  /// router's selectors read.  Unlike a leaf's gauge it includes calls
  /// that end up falling back (the router cannot know the path up front,
  /// and a fallback still occupies the routed shard's attention).
  bool try_invoke_switchless(const CallDesc& desc) override;
  /// "zc_sharded" for the default inner, "zc_sharded[<inner>]" for a
  /// composed plane, with "-ecall" appended on the trusted direction.
  const char* name() const noexcept override { return name_.c_str(); }

  /// Sum of the shards' currently active worker counts.
  unsigned active_workers() const noexcept override;

  /// Rolled-up view: the per-shard layers merged (so an inner zc_batched's
  /// batch_flushes surface here) plus the router-only counters (steals).
  /// The call-path counters come from the shards — each call is counted
  /// once by the shard that served it, never double-counted with the
  /// router's own live mirror.
  BackendStatsSnapshot stats_snapshot() const override;

  unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

  /// The composed plane's copy discipline is whatever the shards advertise
  /// (uniform by construction: every shard comes from the same spec).
  CopyMode copy_mode() const noexcept override {
    return shards_.empty() ? CopyMode::kDouble : shards_.front()->copy_mode();
  }

  /// Per-layer introspection: one layer per shard, so benches can emit a
  /// stats row for each routing target instead of only the rolled-up view.
  unsigned layer_count() const noexcept override { return shard_count(); }
  BackendStatsSnapshot layer_snapshot(unsigned i) const override {
    return i < shards_.size() ? shards_[i]->stats_snapshot()
                              : BackendStatsSnapshot{};
  }
  const char* layer_name(unsigned i) const noexcept override {
    return i < shards_.size() ? shards_[i]->name() : "";
  }

  /// Direct access to one shard layer (diagnostics, churn tests,
  /// per-layer stats via shard(i).stats_snapshot()).
  CallBackend& shard(unsigned i) noexcept { return *shards_[i]; }
  const CallBackend& shard(unsigned i) const noexcept { return *shards_[i]; }

  /// Applies `m` active workers to every shard (scheduler-off ablations).
  void set_active_workers(unsigned m) override;

  /// Lifetime switchless calls served per shard.
  std::vector<std::uint64_t> per_shard_served() const;

  const ZcShardedConfig& config() const noexcept { return cfg_; }

 private:
  unsigned select_shard() noexcept;
  unsigned least_loaded_shard() const noexcept;
  bool try_route_switchless(unsigned primary, const CallDesc& desc);
  CallPath record(CallPath path) noexcept;

  Enclave& enclave_;
  ZcShardedConfig cfg_;
  std::string name_;
  /// Steal probes are skipped outright for frames no shard could take
  /// (known for the default inner=(zc): the per-shard pool size; no such
  /// bound exists for a generic inner, whose probes refuse cheaply).
  std::size_t steal_probe_max_bytes_ = ~std::size_t{0};
  std::vector<std::unique_ptr<CallBackend>> shards_;
  std::atomic<unsigned> ticket_{0};
};

std::unique_ptr<ZcShardedBackend> make_zc_sharded_backend(
    Enclave& enclave, ZcShardedConfig cfg = {});

}  // namespace zc
