// Unified call-backend registry: the spec-string call plane.
//
// Every experiment in the paper is a matrix of call backends × workloads.
// The registry makes backend selection data, not code: a spec string names
// a backend key plus typed options, and the registry builds a started-ready
// CallBackend from it.  All benches, examples and the workload harness
// select backends exclusively through this seam, so new backends (sharded,
// batched, remote, ...) become reachable from every experiment by
// registering one builder.
//
// Spec grammar (see also BackendRegistry::help()):
//
//   spec    := key [ ":" option { ( ";" | "," ) option } ]
//   option  := name "=" value | value        // bare value extends the
//                                            // previous option's list
//   value   := "(" text ")" | text           // parens quote separators,
//                                            // how inner= nests a spec
//   key     := [a-z0-9_-]+
//
// Examples:
//   "no_sl"
//   "zc"
//   "zc:workers=4,quantum_us=10000"
//   "intel:sl=read,write;workers=2;rbf=20000"
//   "hotcalls:workers=2"
//   "zc_sharded:shards=4;policy=caller_affinity;workers=1"
//   "zc_sharded:shards=4;inner=(zc_batched:batch=8;flush=feedback)"
//   "zc_batched:workers=2;batch=8;flush_us=100;spin_us=0"
//   "zc:wait=futex;spin_us=0"           (blocked callers futex-sleep)
//   "zc_async:workers=2;queue=16"       (submit()/wait() futures, no spin)
//   "zc:direction=ecall;workers=2"      (trusted workers serving ecalls)
//
// `sl=read,write` parses as one option with the value list {read, write}:
// a comma-separated segment without '=' appends to the preceding option.
// A parenthesised value keeps its ';'/','/':' intact — that is how
// `zc_sharded:inner=(...)` carries a whole nested spec, which the sharded
// builder feeds back through the registry to build each shard (two levels
// of nesting at most; the parens round-trip through to_string()).
//
// Backends that can serve the trusted-function plane accept
// `direction=ecall`; install_backend_spec() then installs them via
// Enclave::set_ecall_backend instead of set_backend, making the call
// direction a first-class spec dimension.  A nested inner spec inherits
// the outer direction and must not spell its own.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/cpu_meter.hpp"
#include "sgx/backend.hpp"

namespace zc {

class Enclave;

/// Thrown for malformed spec strings, unknown keys/options and bad values.
class BackendSpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed spec string: backend key plus an ordered option list.
struct BackendSpec {
  struct Option {
    std::string name;
    std::vector<std::string> values;  ///< never empty
  };

  std::string key;
  std::vector<Option> options;

  /// Parses `text`; throws BackendSpecError on grammar violations.  Does
  /// not validate the key or option names — that happens at create() time
  /// against the registry entry.
  static BackendSpec parse(std::string_view text);

  /// Canonical spec string; parse(to_string()) round-trips.
  std::string to_string() const;

  const Option* find(std::string_view name) const noexcept;
  bool has(std::string_view name) const noexcept { return find(name) != nullptr; }

  // Typed accessors.  Scalar getters reject list values; all throw
  // BackendSpecError on malformed values, mentioning the option name.
  std::string get_string(std::string_view name, std::string fallback) const;
  std::uint64_t get_u64(std::string_view name, std::uint64_t fallback) const;
  unsigned get_unsigned(std::string_view name, unsigned fallback) const;
  double get_double(std::string_view name, double fallback) const;
  bool get_bool(std::string_view name, bool fallback) const;
  /// The full value list of `name` (empty when absent).
  std::vector<std::string> get_list(std::string_view name) const;
};

/// Maps backend keys to builders.  Process-wide; the four paper backends
/// (no_sl, intel, hotcalls, zc) are pre-registered on first use.
class BackendRegistry {
 public:
  /// Builds a configured (not yet started) backend.  `meter`, when given,
  /// must be wired into the backend's worker/scheduler threads.
  using Builder = std::function<std::unique_ptr<CallBackend>(
      Enclave& enclave, const BackendSpec& spec, CpuUsageMeter* meter)>;

  struct Entry {
    std::string key;
    std::string summary;  ///< one line for help()
    /// Accepted option names; anything else in a spec is rejected.
    std::vector<std::string> option_names;
    Builder builder;
  };

  /// The process-wide registry with the built-in backends registered.
  static BackendRegistry& instance();

  /// Registers a backend; throws BackendSpecError on a duplicate key.
  void register_backend(Entry entry);

  bool contains(std::string_view key) const;
  /// Registered keys, in registration order.
  std::vector<std::string> keys() const;

  /// Parses and builds.  Throws BackendSpecError for unknown keys, unknown
  /// option names, and option values the builder rejects.
  std::unique_ptr<CallBackend> create(Enclave& enclave,
                                      std::string_view spec_text,
                                      CpuUsageMeter* meter = nullptr) const;
  std::unique_ptr<CallBackend> create(Enclave& enclave,
                                      const BackendSpec& spec,
                                      CpuUsageMeter* meter = nullptr) const;

  /// Validates that `spec_text` parses and names a known backend and known
  /// options (no enclave needed; value errors surface at create()).
  void validate(std::string_view spec_text) const;

  /// Human-readable grammar + per-backend option reference.
  std::string help() const;

 private:
  BackendRegistry() = default;
  const Entry& entry_for(const BackendSpec& spec) const;

  std::vector<Entry> entries_;
};

/// The boundary direction a spec's backend will serve: kEcall iff the spec
/// carries `direction=ecall`.  Throws BackendSpecError on other values.
CallDirection spec_direction(const BackendSpec& spec);

/// Parses `spec_text`, builds the backend (wiring `meter`) and installs it
/// on `enclave` — the one-call path used by examples and tools.  Specs with
/// `direction=ecall` install as the enclave's *ecall* backend (trusted
/// workers); all others replace the ocall backend.
void install_backend_spec(Enclave& enclave, std::string_view spec_text,
                          CpuUsageMeter* meter = nullptr);

}  // namespace zc
