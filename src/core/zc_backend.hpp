// ZC-Switchless call backend (paper §IV, Fig. 4).
//
// Any ocall is a switchless candidate: the caller scans the active workers
// for an UNUSED one, reserves it, copies its request into the worker's
// buffer and busy-waits for the result.  If no worker is idle the call
// "immediately falls back to a regular ocall without any busy waiting"
// (§IV-C) — the property that shields ZC from the Intel rbf pathology in
// the OpenSSL experiment (Fig. 10).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "common/pool.hpp"
#include "core/scheduler.hpp"
#include "core/worker.hpp"
#include "core/zc_config.hpp"
#include "sgx/enclave.hpp"

namespace zc {

class ZcBackend final : public CallBackend {
 public:
  ZcBackend(Enclave& enclave, ZcConfig cfg);
  ~ZcBackend() override;

  void start() override;
  void stop() override;
  CallPath invoke(const CallDesc& desc) override;

  /// The switchless half of invoke(): reserves an idle active worker,
  /// runs `desc` through it and returns true, or returns false without
  /// side effects when nothing is idle (or the frame exceeds the pool).
  /// Never executes the regular fallback — the caller decides what a
  /// refusal means (plain invoke() falls back; the sharded router's
  /// steal path probes another shard first).  While the call is in
  /// flight, stats().in_flight is raised — the load signal the sharded
  /// load-aware selectors read.
  bool try_invoke_switchless(const CallDesc& desc) override;
  const char* name() const noexcept override {
    return cfg_.direction == CallDirection::kOcall ? "zc" : "zc-ecall";
  }

  unsigned active_workers() const noexcept override {
    return active_count_.load(std::memory_order_acquire);
  }

  unsigned max_workers() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Manually applies a worker count (tests / scheduler-off ablations).
  void set_active_workers(unsigned m) override;

  const ZcConfig& config() const noexcept { return cfg_; }

  CopyMode copy_mode() const noexcept override { return cfg_.copy; }

  /// The shared frame slab when built with pool=slab (tests/diagnostics).
  SlabPool* slab() noexcept { return slab_.get(); }

  /// The feedback scheduler (valid between start() and stop()).
  ZcScheduler* scheduler() noexcept { return scheduler_.get(); }
  const ZcScheduler* scheduler() const noexcept { return scheduler_.get(); }

  /// Lifetime calls served per worker index (diagnostics).
  std::vector<std::uint64_t> per_worker_served() const;

 private:
  void execute_regular(const CallDesc& desc);
  CallPath fallback(const CallDesc& desc);

  Enclave& enclave_;
  ZcConfig cfg_;
  std::unique_ptr<SlabPool> slab_;  ///< frame slabs when pool=slab
  std::vector<std::unique_ptr<ZcWorker>> workers_;
  std::unique_ptr<ZcScheduler> scheduler_;
  std::atomic<unsigned> active_count_{0};
  std::atomic<bool> running_{false};
};

std::unique_ptr<ZcBackend> make_zc_backend(Enclave& enclave,
                                           ZcConfig cfg = {});

}  // namespace zc
