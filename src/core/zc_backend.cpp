#include "core/zc_backend.hpp"

namespace zc {

ZcBackend::ZcBackend(Enclave& enclave, ZcConfig cfg)
    : enclave_(enclave), cfg_(std::move(cfg)) {
  if (cfg_.pool == FramePoolKind::kSlab) {
    slab_ = std::make_unique<SlabPool>();
    slab_->set_counters(SlabPool::Counters{
        &stats_.slab_hits, &stats_.slab_misses, &stats_.slab_grows});
  }
  const unsigned max =
      cfg_.resolved_max_workers(enclave_.config().logical_cpus);
  workers_.reserve(max);
  for (unsigned i = 0; i < max; ++i) {
    workers_.push_back(
        std::make_unique<ZcWorker>(enclave_, cfg_, stats_, i));
  }
  scheduler_ = std::make_unique<ZcScheduler>(enclave_, cfg_, workers_, stats_,
                                             active_count_);
}

ZcBackend::~ZcBackend() { stop(); }

void ZcBackend::start() {
  if (running_.exchange(true)) return;
  for (auto& w : workers_) w->start();
  scheduler_->set_active(
      cfg_.resolved_initial_workers(enclave_.config().logical_cpus));
  if (cfg_.scheduler_enabled) scheduler_->start();
}

void ZcBackend::stop() {
  if (!running_.exchange(false)) return;
  scheduler_->stop();
  // Program termination (§IV-B): the scheduler sets a value in the workers'
  // buffers; workers clean up and switch to EXIT.
  for (auto& w : workers_) w->shutdown();
  active_count_.store(0, std::memory_order_release);
}

void ZcBackend::set_active_workers(unsigned m) { scheduler_->set_active(m); }

std::vector<std::uint64_t> ZcBackend::per_worker_served() const {
  std::vector<std::uint64_t> out;
  out.reserve(workers_.size());
  for (const auto& w : workers_) out.push_back(w->calls_served());
  return out;
}

void ZcBackend::execute_regular(const CallDesc& desc) {
  if (cfg_.direction == CallDirection::kOcall) {
    execute_regular_ocall(enclave_, desc);
  } else {
    execute_regular_ecall(enclave_, desc);
  }
}

CallPath ZcBackend::fallback(const CallDesc& desc) {
  execute_regular(desc);
  const std::uint64_t elided = copies_elided_by(desc);
  if (elided != 0) stats_.copies_elided.add(elided);
  stats_.fallback_calls.add();
  return CallPath::kFallback;
}

bool ZcBackend::try_invoke_switchless(const CallDesc& desc) {
  if (!running_.load(std::memory_order_relaxed)) return false;

  // Switchless-call selection (§IV-C): run switchlessly iff an idle worker
  // exists right now; otherwise refuse immediately (no busy waiting for
  // capacity).
  const unsigned m = active_count_.load(std::memory_order_acquire);
  ZcWorker* worker = nullptr;
  for (unsigned i = 0; i < m && i < workers_.size(); ++i) {
    if (workers_[i]->try_reserve()) {
      worker = workers_[i].get();
      break;
    }
  }
  if (worker == nullptr) return false;

  // The gauge covers reservation through collection: it counts calls
  // occupying a worker right now, which is what least_loaded routing
  // wants to balance (fallbacks run on the caller's own thread and do
  // not occupy this backend, so they are deliberately not counted).
  stats_.in_flight.add();
  void* mem = slab_ != nullptr ? slab_->allocate(frame_bytes(desc))
                               : worker->alloc_frame(frame_bytes(desc));
  if (mem == nullptr) {
    // Request larger than the whole pool: cannot go switchless.  (The
    // slab never refuses — that is the large-payload cliff it removes.)
    worker->cancel_reservation();
    stats_.in_flight.sub();
    return false;
  }

  MarshalledCall call = marshal_into(mem, desc);
  worker->submit(mem);
  worker->wait_done();
  unmarshal_from(call, desc);
  worker->release();
  if (slab_ != nullptr) slab_->free(mem);
  const std::uint64_t elided = copies_elided_by(desc);
  if (elided != 0) stats_.copies_elided.add(elided);
  stats_.in_flight.sub();
  stats_.switchless_calls.add();
  return true;
}

CallPath ZcBackend::invoke(const CallDesc& desc) {
  if (!running_.load(std::memory_order_relaxed)) {
    execute_regular(desc);
    const std::uint64_t elided = copies_elided_by(desc);
    if (elided != 0) stats_.copies_elided.add(elided);
    stats_.regular_calls.add();
    return CallPath::kRegular;
  }
  if (try_invoke_switchless(desc)) return CallPath::kSwitchless;
  return fallback(desc);
}

std::unique_ptr<ZcBackend> make_zc_backend(Enclave& enclave, ZcConfig cfg) {
  return std::make_unique<ZcBackend>(enclave, std::move(cfg));
}

}  // namespace zc
