#include "core/zc_batched.hpp"

#include "common/cycles.hpp"
#include "common/pin.hpp"
#include "core/scheduler.hpp"
#include "sgx/marshal.hpp"

namespace zc {

const char* to_string(BatchFlushPolicy policy) noexcept {
  switch (policy) {
    case BatchFlushPolicy::kTimer:
      return "timer";
    case BatchFlushPolicy::kFeedback:
      return "feedback";
  }
  return "?";
}

ZcBatchedBackend::Worker::Worker(unsigned batch, std::size_t pool_bytes,
                                 bool use_ring) {
  if (use_ring) {
    ring = std::make_unique<MpscSlotRing<Slot>>(batch, 0, pool_bytes);
    return;
  }
  slots.reserve(batch);
  for (unsigned i = 0; i < batch; ++i) {
    slots.push_back(std::make_unique<Slot>(pool_bytes));
  }
}

// Wakes a possibly-parked worker.  The empty lock/unlock orders this
// notify after the worker's predicate evaluation: a worker between its
// predicate check and cv.wait() holds the mutex, so acquiring it here
// guarantees the notify lands after the wait began (no lost wakeup).
void ZcBatchedBackend::wake(Worker& w) {
  {
    std::lock_guard lock(w.mu);
  }
  w.cv.notify_one();
}

ZcBatchedBackend::ZcBatchedBackend(Enclave& enclave, ZcBatchedConfig cfg)
    : enclave_(enclave), cfg_(std::move(cfg)) {
  if (cfg_.pool == FramePoolKind::kSlab) {
    slab_ = std::make_unique<SlabPool>();
    slab_->set_counters(SlabPool::Counters{
        &stats_.slab_hits, &stats_.slab_misses, &stats_.slab_grows});
  }
  flush_ns_.store(static_cast<std::uint64_t>(cfg_.flush.count()) * 1'000,
                  std::memory_order_relaxed);
  workers_.reserve(cfg_.workers);
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    workers_.push_back(
        std::make_unique<Worker>(cfg_.batch, cfg_.slot_pool_bytes, cfg_.ring));
  }
}

ZcBatchedBackend::~ZcBatchedBackend() { stop(); }

void ZcBatchedBackend::start() {
  if (running_.exchange(true)) return;
  for (auto& w : workers_) {
    w->cmd.store(WorkerCmd::kRun, std::memory_order_release);
    w->thread = std::jthread([this, worker = w.get()] { worker_main(*worker); });
  }
  if (cfg_.flush_policy == BatchFlushPolicy::kFeedback) {
    controller_ =
        std::jthread([this](std::stop_token st) { controller_main(st); });
  }
  active_count_.store(static_cast<unsigned>(workers_.size()),
                      std::memory_order_release);
}

void ZcBatchedBackend::stop() {
  if (!running_.exchange(false)) return;
  active_count_.store(0, std::memory_order_release);
  if (controller_.joinable()) {
    controller_.request_stop();
    controller_cv_.notify_all();
    controller_.join();
  }
  for (auto& w : workers_) {
    w->cmd.store(WorkerCmd::kExit, std::memory_order_seq_cst);
    wake(*w);
    if (w->thread.joinable()) w->thread.join();
  }
}

// Re-decides the partial-flush window once per quantum from the flush and
// call deltas observed during it.  Workers pick up the new window on their
// next sweep; pause/resume is unaffected (a draining worker flushes
// regardless of the window), so no batch is ever stranded by adaptation.
void ZcBatchedBackend::controller_main(const std::stop_token& st) {
  const std::uint64_t base_ns =
      static_cast<std::uint64_t>(cfg_.flush.count()) * 1'000;
  const std::uint64_t min_ns = base_ns / 8 > 1'000 ? base_ns / 8 : 1'000;
  const std::uint64_t max_ns = base_ns * 8;
  std::uint64_t last_flushes = stats_.batch_flushes.load();
  std::uint64_t last_calls = stats_.switchless_calls.load();
  while (!st.stop_requested()) {
    {
      // Interruptible quantum sleep: wait_for returns early (without the
      // timeout) once stop is requested; the loop condition exits then.
      std::unique_lock lock(controller_mu_);
      controller_cv_.wait_for(lock, st, cfg_.quantum, [] { return false; });
    }
    if (st.stop_requested()) break;
    const std::uint64_t flushes = stats_.batch_flushes.load();
    const std::uint64_t calls = stats_.switchless_calls.load();
    const std::uint64_t window = flush_ns_.load(std::memory_order_relaxed);
    const std::uint64_t next =
        adapt_flush_window(window, flushes - last_flushes, calls - last_calls,
                           cfg_.batch, min_ns, max_ns);
    if (flushes != last_flushes) {
      flush_decisions_.fetch_add(1, std::memory_order_relaxed);
    }
    flush_ns_.store(next, std::memory_order_relaxed);
    last_flushes = flushes;
    last_calls = calls;
  }
}

void ZcBatchedBackend::set_active_workers(unsigned m) {
  if (!running_.load(std::memory_order_relaxed)) return;
  const auto max = static_cast<unsigned>(workers_.size());
  if (m > max) m = max;
  // Publish the claim bound first so no new requests land on a worker that
  // is about to pause; workers drain already-published slots before parking.
  active_count_.store(m, std::memory_order_release);
  for (unsigned i = 0; i < max; ++i) {
    Worker& w = *workers_[i];
    // kExit is terminal: a churn thread racing stop() must never overwrite
    // it, or the worker would park/run forever and stop()'s join would
    // hang.  CAS from any non-exit command only.
    const WorkerCmd desired = i < m ? WorkerCmd::kRun : WorkerCmd::kPause;
    WorkerCmd cur = w.cmd.load(std::memory_order_seq_cst);
    bool changed = false;
    while (cur != WorkerCmd::kExit && cur != desired) {
      if (w.cmd.compare_exchange_weak(cur, desired,
                                      std::memory_order_seq_cst)) {
        changed = true;
        break;
      }
    }
    // Only an actual command transition needs the worker's attention: a
    // no-change call (scheduler probes re-applying the same count) used to
    // notify every worker anyway, turning hot-swap churn into a
    // spurious-wake storm under wait=futex.  The churn stress test pins
    // this via worker_wakeups.
    if (changed) wake(w);
  }
}

void ZcBatchedBackend::execute_regular(const CallDesc& desc) {
  if (cfg_.direction == CallDirection::kOcall) {
    execute_regular_ocall(enclave_, desc);
  } else {
    execute_regular_ecall(enclave_, desc);
  }
}

CallPath ZcBatchedBackend::fallback(const CallDesc& desc) {
  execute_regular(desc);
  const std::uint64_t elided = copies_elided_by(desc);
  if (elided != 0) stats_.copies_elided.add(elided);
  stats_.fallback_calls.add();
  return CallPath::kFallback;
}

// The caller's wait for its slot's kDone: per-slot gate normally; the
// worker's shared gate via the coalesced path under coalesce=on (so one
// flush-side notify_batch() releases every sleeper of the batch).
void ZcBatchedBackend::await_done(Worker& w, Slot& slot) {
  // A batching caller is by definition willing to wait out the flush
  // window, so once the spin budget (`spin_us=`) expires it donates its
  // quantum (wait=yield, the default) or sleeps until the flushing
  // worker's notify (wait=futex/condvar) instead of starving the worker
  // on narrow hosts.  spin_us=0 leaves the spin phase immediately.
  const GateCounters counters{&stats_.caller_yields, &stats_.caller_sleeps,
                              &stats_.caller_wakeups};
  const auto done = [](SlotState s) { return s == SlotState::kDone; };
  if (cfg_.coalesce) {
    w.gate.await_coalesced(slot.state, done, cfg_.wait, cfg_.spin, counters);
  } else {
    slot.gate.await(slot.state, done, cfg_.wait, cfg_.spin, counters);
  }
}

bool ZcBatchedBackend::try_invoke_switchless(const CallDesc& desc) {
  if (!running_.load(std::memory_order_relaxed)) return false;

  const unsigned m = active_count_.load(std::memory_order_acquire);
  if (m == 0) return false;

  if (cfg_.ring) return try_invoke_ring(desc, m);

  // Claim a free slot on an active worker, starting from a rotating index
  // so concurrent callers spread across buffers.  No free slot anywhere:
  // immediate refusal, as in plain ZC (§IV-C) — the caller decides what a
  // refusal means (invoke() falls back; a steal probe tries elsewhere).
  Slot* slot = nullptr;
  Worker* worker = nullptr;
  const std::uint64_t first = ticket_.fetch_add(1, std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < m && slot == nullptr; ++i) {
    Worker& candidate = *workers_[(first + i) % m];
    for (auto& s : candidate.slots) {
      SlotState expected = SlotState::kEmpty;
      if (s->state.compare_exchange_strong(expected, SlotState::kClaimed,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
        slot = s.get();
        worker = &candidate;
        break;
      }
    }
  }
  if (slot == nullptr) return false;

  void* mem = nullptr;
  if (slab_ != nullptr) {
    // Shared slab: per-frame blocks, freed on collection — no per-claim
    // reset and no size cliff (the slab never refuses).
    mem = slab_->allocate(frame_bytes(desc));
  } else {
    slot->pool.reset();  // single-request pool: fresh for every claim
    mem = slot->pool.allocate(frame_bytes(desc), 64);
  }
  if (mem == nullptr) {
    // Request larger than the slot pool: cannot go switchless.
    slot->state.store(SlotState::kEmpty, std::memory_order_release);
    return false;
  }

  // The gauge covers publish through collection: the per-layer load
  // signal the sharded router's load-aware selectors read.
  stats_.in_flight.add();
  MarshalledCall call = marshal_into(mem, desc);
  slot->frame = mem;
  slot->publish_ns.store(wall_ns(), std::memory_order_relaxed);
  // seq_cst publish pairs with the worker's seq_cst park/sweep sequence:
  // either the caller observes parked==true and notifies, or the worker's
  // pre-sleep sweep observes this PENDING slot.  Plain release/acquire
  // would allow both sides to miss each other (sleep-with-pending).
  slot->state.store(SlotState::kPending, std::memory_order_seq_cst);
  if (worker->parked.load(std::memory_order_seq_cst)) wake(*worker);

  await_done(*worker, *slot);
  unmarshal_from(call, desc);
  slot->state.store(SlotState::kEmpty, std::memory_order_release);
  if (slab_ != nullptr) slab_->free(mem);
  const std::uint64_t elided = copies_elided_by(desc);
  if (elided != 0) stats_.copies_elided.add(elided);
  stats_.in_flight.sub();
  stats_.switchless_calls.add();
  return true;
}

// Ring-mode submit: one CAS on a ring tail claims a cell; no slot-table
// scan, no shared lock.  The claim order doubles as the flush order, so
// the worker's oldest-pending lookup is the ring front.
bool ZcBatchedBackend::try_invoke_ring(const CallDesc& desc, unsigned m) {
  Slot* slot = nullptr;
  Worker* worker = nullptr;
  std::uint64_t ticket = 0;
  const std::uint64_t first = ticket_.fetch_add(1, std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < m && slot == nullptr; ++i) {
    Worker& candidate = *workers_[(first + i) % m];
    slot = candidate.ring->try_claim(ticket);
    if (slot != nullptr) worker = &candidate;
  }
  if (slot == nullptr) return false;

  void* mem = nullptr;
  if (slab_ != nullptr) {
    mem = slab_->allocate(frame_bytes(desc));
  } else {
    slot->pool.reset();  // single-request pool: fresh for every claim
    mem = slot->pool.allocate(frame_bytes(desc), 64);
  }
  if (mem == nullptr) {
    // Request larger than the slot pool: cannot go switchless.  A claimed
    // ring cell cannot be un-claimed, so retire it empty: publish +
    // recycle moves the cell's seq past this ticket and the consumer
    // skips it without ever seeing a kPending state.
    slot->state.store(SlotState::kEmpty, std::memory_order_release);
    worker->ring->publish(ticket);
    worker->ring->recycle(ticket);
    return false;
  }

  stats_.in_flight.add();
  MarshalledCall call = marshal_into(mem, desc);
  slot->frame = mem;
  slot->publish_ns.store(wall_ns(), std::memory_order_relaxed);
  // State before seq: once publish() lands, the worker may act on the
  // slot, and the seq_cst publish pairs with the worker's seq_cst
  // park/sweep sequence exactly like the table path's kPending store.
  slot->state.store(SlotState::kPending, std::memory_order_seq_cst);
  worker->ring->publish(ticket);
  if (worker->parked.load(std::memory_order_seq_cst)) wake(*worker);

  // stop() race: if the backend stopped between our running_ check and
  // the publish, the exiting worker's final straggler drain may have
  // already passed this cell.  Serve our own slot; the PENDING ->
  // EXECUTING CAS arbitrates against the drain, so the call runs exactly
  // once either way.
  if (!running_.load(std::memory_order_seq_cst)) {
    SlotState expected = SlotState::kPending;
    if (slot->state.compare_exchange_strong(expected, SlotState::kExecuting,
                                            std::memory_order_seq_cst)) {
      dispatch_slot(*slot);
      slot->state.store(SlotState::kDone, std::memory_order_seq_cst);
    }
  }

  await_done(*worker, *slot);
  unmarshal_from(call, desc);
  slot->state.store(SlotState::kEmpty, std::memory_order_release);
  worker->ring->recycle(ticket);
  if (slab_ != nullptr) slab_->free(mem);
  const std::uint64_t elided = copies_elided_by(desc);
  if (elided != 0) stats_.copies_elided.add(elided);
  stats_.in_flight.sub();
  stats_.switchless_calls.add();
  return true;
}

CallPath ZcBatchedBackend::invoke(const CallDesc& desc) {
  if (!running_.load(std::memory_order_relaxed)) {
    execute_regular(desc);
    const std::uint64_t elided = copies_elided_by(desc);
    if (elided != 0) stats_.copies_elided.add(elided);
    stats_.regular_calls.add();
    return CallPath::kRegular;
  }
  if (try_invoke_switchless(desc)) return CallPath::kSwitchless;
  return fallback(desc);
}

void ZcBatchedBackend::dispatch_slot(Slot& slot) {
  const OcallTable& table = cfg_.direction == CallDirection::kOcall
                                ? enclave_.ocalls()
                                : enclave_.ecalls();
  auto* header = static_cast<FrameHeader*>(slot.frame);
  MarshalledCall call = frame_view(slot.frame);
  table.dispatch(header->fn_id, call);
}

void ZcBatchedBackend::flush(Worker& w) {
  unsigned completed = 0;
  for (auto& s : w.slots) {
    if (s->state.load(std::memory_order_acquire) != SlotState::kPending) {
      continue;
    }
    dispatch_slot(*s);
    s->state.store(SlotState::kDone, std::memory_order_release);
    ++completed;
    // Sleeping wait policies need the hand-off notify; yield/spin callers
    // poll, so the default flush path stays fence-free.  Under coalesce=
    // the per-slot notify is deferred to one broadcast below.
    if (!cfg_.coalesce && gate_can_sleep(cfg_.wait)) s->gate.notify(s->state);
  }
  if (cfg_.coalesce && completed > 0 && gate_can_sleep(cfg_.wait)) {
    w.gate.notify_batch();
    stats_.wake_batches.add();
  }
  stats_.batch_flushes.add();
}

// Ring-mode flush: serve the published run from the ring front.  The
// PENDING -> EXECUTING CAS arbitrates against stop-racing callers serving
// their own slot (its failure means the occupant is no longer ours: a
// self-served or retired-empty cell — drop it from the claim order).
void ZcBatchedBackend::flush_ring(Worker& w) {
  unsigned completed = 0;
  const std::size_t cap = w.ring->capacity();
  for (std::size_t n = 0; n < cap; ++n) {
    std::uint64_t ticket = 0;
    Slot* s = w.ring->front(ticket);
    if (s == nullptr) break;
    SlotState expected = SlotState::kPending;
    if (!s->state.compare_exchange_strong(expected, SlotState::kExecuting,
                                          std::memory_order_seq_cst)) {
      w.ring->pop();
      continue;
    }
    w.ring->pop();
    dispatch_slot(*s);
    s->state.store(SlotState::kDone, std::memory_order_release);
    ++completed;
    if (!cfg_.coalesce && gate_can_sleep(cfg_.wait)) s->gate.notify(s->state);
  }
  if (cfg_.coalesce && completed > 0 && gate_can_sleep(cfg_.wait)) {
    w.gate.notify_batch();
    stats_.wake_batches.add();
  }
  stats_.batch_flushes.add();
}

// Cold-path ring flush that serves publishes *out of claim order*: a gap
// at the ring front (a producer still marshalling) must not block a
// pausing/exiting worker from draining later published entries.  The gap
// cells themselves resolve through their producers (publish, then either
// a parked-wake or the stop-race self-serve).
void ZcBatchedBackend::flush_ring_stragglers(Worker& w) {
  unsigned completed = 0;
  for (std::size_t i = 0; i < w.ring->capacity(); ++i) {
    std::uint64_t ticket = 0;
    Slot* s = w.ring->published_at(i, ticket);
    if (s == nullptr) continue;
    SlotState expected = SlotState::kPending;
    if (!s->state.compare_exchange_strong(expected, SlotState::kExecuting,
                                          std::memory_order_seq_cst)) {
      continue;  // self-served or retired empty; front() will skip it
    }
    dispatch_slot(*s);
    s->state.store(SlotState::kDone, std::memory_order_release);
    ++completed;
    if (!cfg_.coalesce && gate_can_sleep(cfg_.wait)) s->gate.notify(s->state);
  }
  if (completed == 0) return;
  if (cfg_.coalesce && gate_can_sleep(cfg_.wait)) {
    w.gate.notify_batch();
    stats_.wake_batches.add();
  }
  stats_.batch_flushes.add();
}

void ZcBatchedBackend::worker_main(Worker& w) {
  const SimConfig& sim = enclave_.config();
  if (sim.pin_threads) {
    pin_current_thread_to_window(sim.pin_base_cpu, sim.logical_cpus);
  }
  std::size_t meter_slot = 0;
  if (cfg_.meter != nullptr) {
    meter_slot = cfg_.meter->register_current_thread();
  }

  // Parks under w.mu until `ready` holds.  Every resume — including one
  // that finds the predicate still false — counts a worker_wakeup, so a
  // spurious-wake storm (the set_active_workers bug this counts for the
  // churn stress test) is visible in the stats, not just in syscalls.
  const auto park = [&](auto&& ready) {
    std::unique_lock lock(w.mu);
    w.parked.store(true, std::memory_order_seq_cst);
    stats_.worker_sleeps.add();
    if (cfg_.meter != nullptr) cfg_.meter->checkpoint(meter_slot);
    while (!ready()) {
      w.cv.wait(lock);
      stats_.worker_wakeups.add();
    }
    w.parked.store(false, std::memory_order_seq_cst);
  };

  std::uint64_t iterations = 0;
  // A flush that just woke its whole batch (coalesced or not) left the
  // released callers runnable and the buffer empty; on a narrow host the
  // worker's poll loop would burn the rest of its timeslice racing the
  // very threads that must run before anything new can be published.
  // Donate the CPU once, immediately, instead of waiting for the 1024-
  // iteration courtesy yield below.
  bool just_flushed = false;
  for (;;) {
    const WorkerCmd cmd = w.cmd.load(std::memory_order_acquire);
    // Re-read per sweep: under flush=feedback the controller retunes the
    // window while workers run (fixed at cfg_.flush under the timer).
    const std::uint64_t flush_ns = flush_ns_.load(std::memory_order_relaxed);

    if (cfg_.ring) {
      std::uint64_t front_ticket = 0;
      Slot* front = w.ring->front(front_ticket);
      if (front == nullptr && just_flushed && cmd == WorkerCmd::kRun) {
        just_flushed = false;
        std::this_thread::yield();
        continue;
      }
      if (front != nullptr) {
        // Flush on a full published run, an expired flush timer, or any
        // pause/exit command (a leaving worker drains; it never strands a
        // caller).  O(1) oldest lookup: claim order is flush order.
        const std::uint64_t oldest =
            front->publish_ns.load(std::memory_order_relaxed);
        if (w.ring->published_run() >= cfg_.batch ||
            cmd != WorkerCmd::kRun || wall_ns() - oldest >= flush_ns) {
          flush_ring(w);
          just_flushed = true;
          continue;
        }
      } else if (cmd == WorkerCmd::kExit) {
        // The seq_cst flag read orders this final drain after every
        // publish whose producer still observed the backend running
        // (producers that observe the stop serve their own slot), so no
        // published entry can be stranded behind the exit.
        (void)running_.load(std::memory_order_seq_cst);
        flush_ring_stragglers(w);
        break;
      } else if (cmd == WorkerCmd::kPause) {
        if (w.ring->any_published()) {
          // Drain before parking — out of claim order, so a gap at the
          // ring front (a producer mid-marshal) cannot stall the pause.
          flush_ring_stragglers(w);
          continue;
        }
        park([&] {
          // Paused workers still wake to serve publishes, so a call
          // landing on a parked worker's ring is never stranded.
          return w.cmd.load(std::memory_order_acquire) != WorkerCmd::kPause ||
                 w.ring->any_published();
        });
        continue;
      } else if ((iterations & 0x3FF) == 0x3FF && w.ring->any_published()) {
        // Publish-order gap while running (front unpublished, later
        // entries published — a producer preempted mid-marshal): serve
        // the stragglers out of order occasionally so their callers are
        // never held hostage by an unrelated slow marshal.
        flush_ring_stragglers(w);
        continue;
      }
    } else {
      unsigned pending = 0;
      std::uint64_t oldest = ~std::uint64_t{0};
      for (const auto& s : w.slots) {
        if (s->state.load(std::memory_order_seq_cst) == SlotState::kPending) {
          ++pending;
          const std::uint64_t t =
              s->publish_ns.load(std::memory_order_relaxed);
          if (t < oldest) oldest = t;
        }
      }

      if (pending > 0) {
        // Flush on a full buffer, an expired flush timer, or any
        // pause/exit command (a leaving worker drains; it never strands a
        // caller).
        if (pending >= cfg_.batch || cmd != WorkerCmd::kRun ||
            wall_ns() - oldest >= flush_ns) {
          flush(w);
          just_flushed = true;
          continue;
        }
      } else {
        if (just_flushed && cmd == WorkerCmd::kRun) {
          just_flushed = false;
          std::this_thread::yield();
          continue;
        }
        if (cmd == WorkerCmd::kExit) break;
        if (cmd == WorkerCmd::kPause) {
          park([&] {
            if (w.cmd.load(std::memory_order_acquire) != WorkerCmd::kPause) {
              return true;
            }
            for (const auto& s : w.slots) {
              if (s->state.load(std::memory_order_seq_cst) ==
                  SlotState::kPending) {
                return true;
              }
            }
            return false;
          });
          continue;
        }
      }
    }

    cpu_pause();
    // Same narrow-host courtesy as the caller: an idle (or timer-waiting)
    // batch worker yields periodically so publishers can actually run.
    if ((++iterations & 0x3FF) == 0) std::this_thread::yield();
    if (cfg_.meter != nullptr && (iterations & 0x3FFF) == 0) {
      cfg_.meter->checkpoint(meter_slot);
    }
  }

  if (cfg_.meter != nullptr) cfg_.meter->unregister_current_thread(meter_slot);
}

std::unique_ptr<ZcBatchedBackend> make_zc_batched_backend(Enclave& enclave,
                                                          ZcBatchedConfig cfg) {
  return std::make_unique<ZcBatchedBackend>(enclave, std::move(cfg));
}

}  // namespace zc
