// Trusted-libc memory primitives.
//
// The Intel SGX SDK statically links its own libc subset (tlibc) into the
// enclave.  Its memcpy (BSD-derived) copies word-by-word only when `src` and
// `dst` are congruent modulo the word size, and falls back to a byte-by-byte
// loop otherwise — the paper measures up to 15x slowdown for unaligned
// buffers (§IV-F, Fig. 7).  ZC-Switchless replaces it with a `rep movsb`
// copy (Listing 1), fast for both cases on ERMS-capable CPUs.
//
// Both algorithms are reproduced here, plus a process-wide *active* memcpy
// switch: all cross-boundary marshalling in the simulated SGX substrate goes
// through `active_memcpy`, so the memcpy choice affects every ocall exactly
// as it does in the SDK.
#pragma once

#include <cstddef>

namespace zc::tlibc {

/// Faithful reimplementation of the Intel SGX SDK tlibc memcpy:
/// word-by-word when src ≡ dst (mod sizeof(word)), else byte-by-byte.
/// Handles overlap like BSD bcopy (copies backwards when dst > src).
void* intel_memcpy(void* dst, const void* src, std::size_t n) noexcept;

/// ZC-Switchless optimised memcpy (paper Listing 1): a single `rep movsb`.
/// On non-x86 builds this degrades to __builtin_memcpy.
void* zc_memcpy(void* dst, const void* src, std::size_t n) noexcept;

/// Non-temporal streaming copy for large payloads: 16-byte SSE2 loads +
/// `movntdq` stores bypass the cache hierarchy, so a 1 MB sector copy does
/// not evict the working set (then a trailing sfence orders the stores).
/// Falls back to zc_memcpy for overlapping buffers and on non-x86 builds.
void* zc_memcpy_nt(void* dst, const void* src, std::size_t n) noexcept;

/// tlibc memset / memcmp companions (byte-wise, as in the SDK subset).
void* tmemset(void* dst, int value, std::size_t n) noexcept;
int tmemcmp(const void* a, const void* b, std::size_t n) noexcept;

/// Which implementation the marshalling layer uses.
enum class MemcpyKind {
  kIntel,  ///< vanilla SDK algorithm (paper's baseline)
  kZc,     ///< rep-movsb optimised version (paper's contribution)
  kZcNt,   ///< always-streaming variant (non-temporal stores)
};

/// Selects the process-wide active memcpy. Thread-safe; takes effect for
/// subsequent copies.
void set_active_memcpy(MemcpyKind kind) noexcept;

/// Currently selected implementation.
MemcpyKind active_memcpy_kind() noexcept;

/// Copies through the active implementation.
void* active_memcpy(void* dst, const void* src, std::size_t n) noexcept;

/// Human-readable name ("intel" / "zc" / "zc_nt").
const char* to_string(MemcpyKind kind) noexcept;

/// Copies of at least this many bytes through the kZc active kind are
/// routed to the non-temporal variant automatically (large sectors should
/// not thrash the cache even when the caller selected plain "zc").
/// 0 disables auto-routing.  Thread-safe; takes effect for later copies.
void set_memcpy_nt_threshold(std::size_t bytes) noexcept;

/// Current auto-streaming threshold (default 256 KB; 0 = off).
std::size_t memcpy_nt_threshold() noexcept;

/// RAII guard that selects a memcpy kind and restores the previous one.
class ScopedMemcpy {
 public:
  explicit ScopedMemcpy(MemcpyKind kind) noexcept
      : previous_(active_memcpy_kind()) {
    set_active_memcpy(kind);
  }
  ~ScopedMemcpy() { set_active_memcpy(previous_); }
  ScopedMemcpy(const ScopedMemcpy&) = delete;
  ScopedMemcpy& operator=(const ScopedMemcpy&) = delete;

 private:
  MemcpyKind previous_;
};

}  // namespace zc::tlibc
