// Trusted-libc snprintf subset.
//
// §IV-F lists snprintf among the routines the SDK's tlibc re-implements for
// in-enclave use.  This is a self-contained formatter (no locale, no
// floating point — enclave code avoids FP formatting) supporting the
// conversions enclave systems code actually uses:
//   %s %c %d %i %u %x %X %p %% with optional width, '0'/'-' flags and
//   l / ll length modifiers.
// Semantics follow C snprintf: the output is always NUL-terminated when
// size > 0, and the return value is the length that *would* have been
// written given unlimited space.
#pragma once

#include <cstdarg>
#include <cstddef>

namespace zc::tlibc {

/// snprintf over the supported subset. Unknown conversions are emitted
/// verbatim (e.g. "%q" prints "%q"), matching the SDK's defensive style.
int tsnprintf(char* out, std::size_t size, const char* format, ...)
    __attribute__((format(printf, 3, 4)));

/// va_list variant.
int tvsnprintf(char* out, std::size_t size, const char* format, va_list ap);

}  // namespace zc::tlibc
