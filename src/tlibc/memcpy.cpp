#include "tlibc/memcpy.hpp"

#include <atomic>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>  // SSE2: _mm_stream_si128 / _mm_sfence
#endif

namespace zc::tlibc {
namespace {

using word = std::uintptr_t;
constexpr std::size_t kWordSize = sizeof(word);
constexpr std::size_t kWordMask = kWordSize - 1;

constexpr std::size_t kDefaultNtThreshold = 256 * 1024;

std::atomic<MemcpyKind> g_active{MemcpyKind::kIntel};
std::atomic<std::size_t> g_nt_threshold{kDefaultNtThreshold};

}  // namespace

// Port of the BSD memcpy the Intel SDK ships in tlibc
// (sgx_tstdc/.../memcpy.c): when the low bits of src and dst differ the
// whole copy is byte-by-byte; when they agree, leading bytes are copied
// until word alignment, then whole words, then the tail.
void* intel_memcpy(void* dst0, const void* src0, std::size_t length) noexcept {
  auto* dst = static_cast<unsigned char*>(dst0);
  const auto* src = static_cast<const unsigned char*>(src0);
  if (length == 0 || dst == src) return dst0;

  const auto dst_u = reinterpret_cast<std::uintptr_t>(dst);
  const auto src_u = reinterpret_cast<std::uintptr_t>(src);

  if (dst_u < src_u) {
    // Copy forward.
    std::size_t t = src_u;
    if ((t | dst_u) & kWordMask) {
      // Try to align both operands; only possible if they agree mod word.
      if (((t ^ dst_u) & kWordMask) || length < kWordSize) {
        t = length;  // unaligned: degrade to a full byte copy
      } else {
        t = kWordSize - (t & kWordMask);
      }
      length -= t;
      for (; t != 0; --t) *dst++ = *src++;
    }
    // Word copy, then trailing bytes.
    for (std::size_t t2 = length / kWordSize; t2 != 0; --t2) {
      *reinterpret_cast<word*>(dst) = *reinterpret_cast<const word*>(src);
      src += kWordSize;
      dst += kWordSize;
    }
    for (std::size_t t2 = length & kWordMask; t2 != 0; --t2) *dst++ = *src++;
  } else {
    // Copy backwards (overlapping dst > src).
    src += length;
    dst += length;
    std::size_t t = reinterpret_cast<std::uintptr_t>(src);
    if ((t | reinterpret_cast<std::uintptr_t>(dst)) & kWordMask) {
      if (((t ^ reinterpret_cast<std::uintptr_t>(dst)) & kWordMask) ||
          length <= kWordSize) {
        t = length;
      } else {
        t &= kWordMask;
      }
      length -= t;
      for (; t != 0; --t) *--dst = *--src;
    }
    for (std::size_t t2 = length / kWordSize; t2 != 0; --t2) {
      src -= kWordSize;
      dst -= kWordSize;
      *reinterpret_cast<word*>(dst) = *reinterpret_cast<const word*>(src);
    }
    for (std::size_t t2 = length & kWordMask; t2 != 0; --t2) *--dst = *--src;
  }
  return dst0;
}

void* zc_memcpy(void* dst0, const void* src0, std::size_t length) noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  void* dst = dst0;
  const void* src = src0;
  if (length == 0) return dst0;
  if (dst0 <= src0 ||
      static_cast<const char*>(src0) + length <= static_cast<char*>(dst0)) {
    // Paper Listing 1: forward copy with the hardware string instruction.
    __asm__ volatile("rep movsb"
                     : "=D"(dst), "=S"(src), "=c"(length)
                     : "0"(dst), "1"(src), "2"(length)
                     : "memory");
  } else {
    // Overlapping with dst inside [src, src+n): copy backwards (std flag).
    auto* d = static_cast<unsigned char*>(dst0) + length - 1;
    const auto* s = static_cast<const unsigned char*>(src0) + length - 1;
    __asm__ volatile(
        "std\n\t"
        "rep movsb\n\t"
        "cld"
        : "=D"(d), "=S"(s), "=c"(length)
        : "0"(d), "1"(s), "2"(length)
        : "memory");
  }
  return dst0;
#else
  return __builtin_memmove(dst0, src0, length);
#endif
}

// Streaming copy: byte head until dst is 16-aligned, then 64-byte strides
// of unaligned SSE2 loads + non-temporal stores, then a byte tail.  The
// stores bypass the caches, so marshalling a 1 MB sector does not evict the
// crypto working set; sfence publishes them before the function returns
// (workers read the frame after an acquire on the slot state, which the
// fence makes sufficient).
void* zc_memcpy_nt(void* dst0, const void* src0, std::size_t n) noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  auto* d = static_cast<unsigned char*>(dst0);
  const auto* s = static_cast<const unsigned char*>(src0);
  if (n == 0 || d == s) return dst0;
  // Overlap (either direction): the streaming loop reads ahead of its
  // stores, so delegate to the overlap-safe copy.
  const bool overlap = d < s ? (s < d + n) : (d < s + n);
  if (overlap || n < 64) return zc_memcpy(dst0, src0, n);

  while ((reinterpret_cast<std::uintptr_t>(d) & 15) != 0) {
    *d++ = *s++;
    --n;
  }
  while (n >= 64) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 16));
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 32));
    const __m128i e =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 48));
    _mm_stream_si128(reinterpret_cast<__m128i*>(d), a);
    _mm_stream_si128(reinterpret_cast<__m128i*>(d + 16), b);
    _mm_stream_si128(reinterpret_cast<__m128i*>(d + 32), c);
    _mm_stream_si128(reinterpret_cast<__m128i*>(d + 48), e);
    s += 64;
    d += 64;
    n -= 64;
  }
  _mm_sfence();
  while (n != 0) {
    *d++ = *s++;
    --n;
  }
  return dst0;
#else
  return zc_memcpy(dst0, src0, n);
#endif
}

void* tmemset(void* dst, int value, std::size_t n) noexcept {
  auto* d = static_cast<unsigned char*>(dst);
  const auto v = static_cast<unsigned char>(value);
  for (std::size_t i = 0; i < n; ++i) d[i] = v;
  return dst;
}

int tmemcmp(const void* a, const void* b, std::size_t n) noexcept {
  const auto* pa = static_cast<const unsigned char*>(a);
  const auto* pb = static_cast<const unsigned char*>(b);
  for (std::size_t i = 0; i < n; ++i) {
    if (pa[i] != pb[i]) return pa[i] < pb[i] ? -1 : 1;
  }
  return 0;
}

void set_active_memcpy(MemcpyKind kind) noexcept {
  g_active.store(kind, std::memory_order_relaxed);
}

MemcpyKind active_memcpy_kind() noexcept {
  return g_active.load(std::memory_order_relaxed);
}

void set_memcpy_nt_threshold(std::size_t bytes) noexcept {
  g_nt_threshold.store(bytes, std::memory_order_relaxed);
}

std::size_t memcpy_nt_threshold() noexcept {
  return g_nt_threshold.load(std::memory_order_relaxed);
}

void* active_memcpy(void* dst, const void* src, std::size_t n) noexcept {
  switch (active_memcpy_kind()) {
    case MemcpyKind::kZc: {
      const std::size_t threshold = memcpy_nt_threshold();
      if (threshold != 0 && n >= threshold) return zc_memcpy_nt(dst, src, n);
      return zc_memcpy(dst, src, n);
    }
    case MemcpyKind::kZcNt:
      return zc_memcpy_nt(dst, src, n);
    case MemcpyKind::kIntel:
    default:
      return intel_memcpy(dst, src, n);
  }
}

const char* to_string(MemcpyKind kind) noexcept {
  switch (kind) {
    case MemcpyKind::kIntel:
      return "intel";
    case MemcpyKind::kZc:
      return "zc";
    case MemcpyKind::kZcNt:
      return "zc_nt";
  }
  return "?";
}

}  // namespace zc::tlibc
