#include "tlibc/string.hpp"

#include "tlibc/memcpy.hpp"

namespace zc::tlibc {

std::size_t tstrlen(const char* s) noexcept {
  const char* p = s;
  while (*p != '\0') ++p;
  return static_cast<std::size_t>(p - s);
}

std::size_t tstrnlen(const char* s, std::size_t max) noexcept {
  std::size_t n = 0;
  while (n < max && s[n] != '\0') ++n;
  return n;
}

int tstrcmp(const char* a, const char* b) noexcept {
  while (*a != '\0' && *a == *b) {
    ++a;
    ++b;
  }
  const auto ua = static_cast<unsigned char>(*a);
  const auto ub = static_cast<unsigned char>(*b);
  return ua < ub ? -1 : (ua > ub ? 1 : 0);
}

int tstrncmp(const char* a, const char* b, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const auto ua = static_cast<unsigned char>(a[i]);
    const auto ub = static_cast<unsigned char>(b[i]);
    if (ua != ub) return ua < ub ? -1 : 1;
    if (ua == '\0') return 0;
  }
  return 0;
}

char* tstrncpy(char* dst, const char* src, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i < n && src[i] != '\0'; ++i) dst[i] = src[i];
  for (; i < n; ++i) dst[i] = '\0';
  return dst;
}

const void* tmemchr(const void* s, int c, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(s);
  const auto target = static_cast<unsigned char>(c);
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] == target) return p + i;
  }
  return nullptr;
}

void* tmemmove(void* dst, const void* src, std::size_t n) noexcept {
  // intel_memcpy already handles overlap in both directions (BSD bcopy).
  return intel_memcpy(dst, src, n);
}

}  // namespace zc::tlibc
