// Trusted-libc string subset.
//
// The SDK's tlibc re-implements the libc string routines that need no
// syscalls (§II).  The paper's future work flags them for the same scrutiny
// as memcpy ("we speculate similar issues might exist in other routines of
// the tlibc"); these ports are byte-accurate references the test suite
// checks against the host libc.
#pragma once

#include <cstddef>

namespace zc::tlibc {

/// strlen: length of a NUL-terminated string.
std::size_t tstrlen(const char* s) noexcept;

/// strnlen: like strlen but never reads past `max` bytes.
std::size_t tstrnlen(const char* s, std::size_t max) noexcept;

/// strcmp with libc ordering semantics (sign of the first difference).
int tstrcmp(const char* a, const char* b) noexcept;

/// strncmp over at most `n` bytes.
int tstrncmp(const char* a, const char* b, std::size_t n) noexcept;

/// strncpy with libc semantics: pads with NULs up to `n`, does not
/// terminate when src is longer than n.
char* tstrncpy(char* dst, const char* src, std::size_t n) noexcept;

/// memchr: first occurrence of byte `c` in the first `n` bytes, or nullptr.
const void* tmemchr(const void* s, int c, std::size_t n) noexcept;

/// memmove via the (overlap-safe) intel tlibc copy.
void* tmemmove(void* dst, const void* src, std::size_t n) noexcept;

}  // namespace zc::tlibc
