#include "tlibc/printf.hpp"

#include <cstdint>

#include "tlibc/string.hpp"

namespace zc::tlibc {
namespace {

// Accumulates output with truncation; tracks the untruncated length.
struct Sink {
  char* out;
  std::size_t cap;   // bytes usable for characters (cap = size - 1)
  std::size_t used = 0;  // characters stored
  std::size_t total = 0;  // characters that would have been written

  void put(char c) noexcept {
    if (used < cap) out[used++] = c;
    ++total;
  }
  void fill(char c, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) put(c);
  }
};

struct Spec {
  bool left = false;       // '-'
  bool zero = false;       // '0'
  std::size_t width = 0;
  int length = 0;          // 0 = int, 1 = long, 2 = long long
};

void emit_padded(Sink& sink, const char* digits, std::size_t len,
                 const Spec& spec, bool negative) noexcept {
  const std::size_t body = len + (negative ? 1 : 0);
  const std::size_t pad = spec.width > body ? spec.width - body : 0;
  if (!spec.left && !spec.zero) sink.fill(' ', pad);
  if (negative) sink.put('-');
  if (!spec.left && spec.zero) sink.fill('0', pad);
  for (std::size_t i = 0; i < len; ++i) sink.put(digits[i]);
  if (spec.left) sink.fill(' ', pad);
}

void emit_unsigned(Sink& sink, std::uint64_t value, unsigned base,
                   bool upper, const Spec& spec, bool negative) noexcept {
  char buf[24];
  std::size_t n = 0;
  const char* alphabet = upper ? "0123456789ABCDEF" : "0123456789abcdef";
  do {
    buf[n++] = alphabet[value % base];
    value /= base;
  } while (value != 0);
  char digits[24];
  for (std::size_t i = 0; i < n; ++i) digits[i] = buf[n - 1 - i];
  emit_padded(sink, digits, n, spec, negative);
}

void emit_string(Sink& sink, const char* s, const Spec& spec) noexcept {
  if (s == nullptr) s = "(null)";
  const std::size_t len = tstrlen(s);
  const std::size_t pad = spec.width > len ? spec.width - len : 0;
  if (!spec.left) sink.fill(' ', pad);
  for (std::size_t i = 0; i < len; ++i) sink.put(s[i]);
  if (spec.left) sink.fill(' ', pad);
}

std::int64_t signed_arg(va_list ap, int length) noexcept {
  switch (length) {
    case 2:
      return va_arg(ap, long long);
    case 1:
      return va_arg(ap, long);
    default:
      return va_arg(ap, int);
  }
}

std::uint64_t unsigned_arg(va_list ap, int length) noexcept {
  switch (length) {
    case 2:
      return va_arg(ap, unsigned long long);
    case 1:
      return va_arg(ap, unsigned long);
    default:
      return va_arg(ap, unsigned int);
  }
}

}  // namespace

int tvsnprintf(char* out, std::size_t size, const char* format, va_list ap) {
  Sink sink{out, size > 0 ? size - 1 : 0};

  for (const char* p = format; *p != '\0'; ++p) {
    if (*p != '%') {
      sink.put(*p);
      continue;
    }
    const char* start = p;
    ++p;  // skip '%'
    Spec spec;
    // Flags.
    for (;; ++p) {
      if (*p == '-') {
        spec.left = true;
      } else if (*p == '0') {
        spec.zero = true;
      } else {
        break;
      }
    }
    // Width.
    while (*p >= '0' && *p <= '9') {
      spec.width = spec.width * 10 + static_cast<std::size_t>(*p - '0');
      ++p;
    }
    // Length modifiers.
    while (*p == 'l') {
      ++spec.length;
      ++p;
    }
    if (spec.length > 2) spec.length = 2;

    switch (*p) {
      case '%':
        sink.put('%');
        break;
      case 'c':
        sink.put(static_cast<char>(va_arg(ap, int)));
        break;
      case 's':
        emit_string(sink, va_arg(ap, const char*), spec);
        break;
      case 'd':
      case 'i': {
        const std::int64_t v = signed_arg(ap, spec.length);
        const bool neg = v < 0;
        const std::uint64_t mag =
            neg ? ~static_cast<std::uint64_t>(v) + 1
                : static_cast<std::uint64_t>(v);
        emit_unsigned(sink, mag, 10, false, spec, neg);
        break;
      }
      case 'u':
        emit_unsigned(sink, unsigned_arg(ap, spec.length), 10, false, spec,
                      false);
        break;
      case 'x':
        emit_unsigned(sink, unsigned_arg(ap, spec.length), 16, false, spec,
                      false);
        break;
      case 'X':
        emit_unsigned(sink, unsigned_arg(ap, spec.length), 16, true, spec,
                      false);
        break;
      case 'p': {
        const auto v =
            reinterpret_cast<std::uintptr_t>(va_arg(ap, void*));
        sink.put('0');
        sink.put('x');
        Spec pspec;  // pointers print unpadded, like glibc's %p core
        emit_unsigned(sink, v, 16, false, pspec, false);
        break;
      }
      case '\0':
        // Trailing lone '%': emit it and stop.
        sink.put('%');
        --p;  // let the loop's ++p land on the NUL
        break;
      default:
        // Unknown conversion: emit the raw specifier text.
        for (const char* q = start; q <= p; ++q) sink.put(*q);
        break;
    }
  }

  if (size > 0) out[sink.used] = '\0';
  return static_cast<int>(sink.total);
}

int tsnprintf(char* out, std::size_t size, const char* format, ...) {
  va_list ap;
  va_start(ap, format);
  const int n = tvsnprintf(out, size, format, ap);
  va_end(ap);
  return n;
}

}  // namespace zc::tlibc
