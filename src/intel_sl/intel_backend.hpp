// Reimplementation of the Intel SGX SDK switchless-call library (v2.14
// semantics), used as the paper's baseline in every experiment.
//
// Call path (caller = simulated enclave thread):
//   1. If the ocall id is not in the static switchless set, or no workers
//      are configured/running: regular ocall.
//   2. Claim a task-pool slot; pool full -> immediate fallback.
//   3. Marshal into the slot, submit, wake a sleeping worker if any.
//   4. Busy-wait up to `retries_before_fallback` pauses for a worker to
//      accept. On expiry, try to cancel: success -> fallback to a regular
//      ocall; failure means a worker grabbed it concurrently -> proceed.
//   5. Spin (unbounded, as the SDK does) until the worker marks the task
//      done, then unmarshal and free the slot.
//
// Worker loop: scan for submitted tasks; after `retries_before_sleep` idle
// pauses go to sleep on a condition variable; submissions wake sleepers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "intel_sl/intel_config.hpp"
#include "intel_sl/task_pool.hpp"
#include "sgx/enclave.hpp"

namespace zc::intel {

class IntelSwitchlessBackend final : public CallBackend {
 public:
  IntelSwitchlessBackend(Enclave& enclave, IntelSlConfig cfg);
  ~IntelSwitchlessBackend() override;

  void start() override;
  void stop() override;
  CallPath invoke(const CallDesc& desc) override;
  const char* name() const noexcept override {
    return cfg_.direction == CallDirection::kOcall ? "intel_sl"
                                                   : "intel_sl-ecall";
  }

  unsigned active_workers() const noexcept override {
    return running_.load(std::memory_order_relaxed) ? cfg_.num_workers : 0;
  }

  const IntelSlConfig& config() const noexcept { return cfg_; }

  /// Number of workers currently asleep (rbs expired); used by tests.
  unsigned sleeping_workers() const noexcept {
    return sleeping_.load(std::memory_order_relaxed);
  }

 private:
  void worker_main(unsigned index);
  void wake_one_worker();
  CallPath regular_path(const CallDesc& desc, bool is_fallback);

  Enclave& enclave_;
  IntelSlConfig cfg_;
  TaskPool pool_;

  std::atomic<bool> running_{false};
  std::atomic<unsigned> started_{0};
  std::atomic<unsigned> sleeping_{0};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::vector<std::jthread> workers_;
};

/// Convenience factory matching the paper's `i-<fns>-<workers>` notation.
std::unique_ptr<IntelSwitchlessBackend> make_intel_backend(
    Enclave& enclave, IntelSlConfig cfg);

}  // namespace zc::intel
