// Configuration of the Intel-SDK-style switchless backend.
//
// Mirrors `sgx_uswitchless_config_t` of SDK v2.14: a fixed number of
// untrusted worker threads, fixed retry budgets, and a *static* set of
// routines declared switchless at build time (the `transition_using_threads`
// EDL attribute).  The paper's §III criticises precisely these knobs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>

#include "common/cpu_meter.hpp"
#include "sgx/backend.hpp"

namespace zc::intel {

/// The SDK's default retry budget, shared by rbf and rbs
/// (SL_DEFAULT_MAX_RETRIES in sgx_uswitchless.h).  The single source of
/// truth for every layer that needs "the SDK default": this config, the
/// backend registry, the workload harness and the rbf/rbs ablation bench.
inline constexpr std::uint32_t kSdkDefaultRetries = 20'000;

struct IntelSlConfig {
  /// Untrusted worker threads serving switchless ocalls
  /// (SDK: num_uworkers). The paper evaluates 2 and 4.
  unsigned num_workers = 2;

  /// Busy-wait retries (one `pause` each) a caller performs waiting for a
  /// worker to *start* its pending task before falling back to a regular
  /// ocall. §III-C calls the SDK default "abnormal".
  std::uint32_t retries_before_fallback = kSdkDefaultRetries;

  /// Idle `pause` retries a worker performs before going to sleep.
  std::uint32_t retries_before_sleep = kSdkDefaultRetries;

  /// Task-pool slots (pending switchless requests). When the pool is full
  /// the call falls back immediately (SDK behaviour).
  unsigned task_pool_slots = 8;

  /// Untrusted bytes preallocated per task slot for the marshalled frame.
  /// Calls that do not fit fall back to the regular path.
  std::size_t slot_frame_bytes = 512 * 1024;

  /// The build-time switchless set: ocall ids allowed to run switchlessly.
  /// Everything else takes the regular path. (This is the knob the paper
  /// makes configless.)
  std::unordered_set<std::uint32_t> switchless_fns;

  /// Optional CPU accounting for worker threads.
  CpuUsageMeter* meter = nullptr;

  /// Boundary direction: num_workers models num_uworkers (ocalls) or
  /// num_tworkers (ecalls) of sgx_uswitchless_config_t.
  CallDirection direction = CallDirection::kOcall;
};

}  // namespace zc::intel
