#include "intel_sl/task_pool.hpp"

#include <stdexcept>

namespace zc::intel {

TaskPool::TaskPool(unsigned slots, std::size_t frame_bytes) : slots_(slots) {
  if (slots == 0) throw std::invalid_argument("task pool needs >= 1 slot");
  for (auto& s : slots_) {
    s.frame = std::make_unique<std::byte[]>(frame_bytes);
    s.frame_capacity = frame_bytes;
  }
}

TaskSlot* TaskPool::claim() {
  for (auto& s : slots_) {
    TaskStatus expected = TaskStatus::kFree;
    if (s.status.compare_exchange_strong(expected, TaskStatus::kClaimed,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      return &s;
    }
  }
  return nullptr;
}

TaskSlot* TaskPool::accept() {
  for (auto& s : slots_) {
    TaskStatus expected = TaskStatus::kSubmitted;
    if (s.status.compare_exchange_strong(expected, TaskStatus::kAccepted,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      return &s;
    }
  }
  return nullptr;
}

unsigned TaskPool::pending() const noexcept {
  unsigned n = 0;
  for (const auto& s : slots_) {
    if (s.status.load(std::memory_order_relaxed) == TaskStatus::kSubmitted) {
      ++n;
    }
  }
  return n;
}

}  // namespace zc::intel
