// Untrusted task pool shared by enclave callers and switchless workers
// (Fig. 1 of the paper): callers claim a free slot, marshal their request
// into it and submit; workers scan for submitted tasks and execute them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace zc::intel {

/// Lifecycle of one pool slot. Transitions:
///   Free -claim-> Claimed -submit-> Submitted -worker-> Accepted -> Done -> Free
/// plus the cancellation edge Submitted -caller-> Free (rbf expiry).
enum class TaskStatus : std::uint32_t {
  kFree = 0,
  kClaimed,    ///< caller is marshalling into the slot
  kSubmitted,  ///< waiting for a worker to accept
  kAccepted,   ///< a worker is executing the call
  kDone,       ///< results ready; caller unmarshals then frees
};

struct alignas(64) TaskSlot {
  std::atomic<TaskStatus> status{TaskStatus::kFree};
  std::unique_ptr<std::byte[]> frame;  ///< preallocated untrusted frame
  std::size_t frame_capacity = 0;
};

/// Fixed-size pool of task slots. All synchronisation is via the per-slot
/// status words (the SDK uses the same single-word protocol).
class TaskPool {
 public:
  TaskPool(unsigned slots, std::size_t frame_bytes);

  /// Claims a free slot for marshalling; returns nullptr when the pool is
  /// full (callers then fall back immediately).
  TaskSlot* claim();

  /// Finds a submitted task and accepts it. Returns nullptr when no task
  /// is pending.
  TaskSlot* accept();

  std::size_t size() const noexcept { return slots_.size(); }
  TaskSlot& slot(std::size_t i) noexcept { return slots_[i]; }

  /// Number of tasks currently pending (submitted, not yet accepted).
  unsigned pending() const noexcept;

 private:
  std::vector<TaskSlot> slots_;
};

}  // namespace zc::intel
