#include "intel_sl/intel_backend.hpp"

#include "common/cycles.hpp"
#include "common/pin.hpp"

namespace zc::intel {

IntelSwitchlessBackend::IntelSwitchlessBackend(Enclave& enclave,
                                               IntelSlConfig cfg)
    : enclave_(enclave),
      cfg_(std::move(cfg)),
      pool_(cfg_.task_pool_slots, cfg_.slot_frame_bytes) {}

IntelSwitchlessBackend::~IntelSwitchlessBackend() { stop(); }

void IntelSwitchlessBackend::start() {
  if (running_.exchange(true)) return;
  workers_.reserve(cfg_.num_workers);
  for (unsigned i = 0; i < cfg_.num_workers; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
  // The SDK spawns its workers when the switchless system initialises;
  // don't let the first switchless call race worker startup and fall back
  // spuriously.
  while (started_.load(std::memory_order_acquire) < cfg_.num_workers) {
    std::this_thread::yield();
  }
}

void IntelSwitchlessBackend::stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard lock(sleep_mu_);
  }
  sleep_cv_.notify_all();
  workers_.clear();  // jthread joins
  started_.store(0, std::memory_order_release);
}

void IntelSwitchlessBackend::wake_one_worker() {
  if (sleeping_.load(std::memory_order_acquire) > 0) {
    sleep_cv_.notify_one();
    stats_.worker_wakeups.add();
  }
}

CallPath IntelSwitchlessBackend::regular_path(const CallDesc& desc,
                                              bool is_fallback) {
  if (cfg_.direction == CallDirection::kOcall) {
    execute_regular_ocall(enclave_, desc);
  } else {
    execute_regular_ecall(enclave_, desc);
  }
  if (is_fallback) {
    stats_.fallback_calls.add();
    return CallPath::kFallback;
  }
  stats_.regular_calls.add();
  return CallPath::kRegular;
}

CallPath IntelSwitchlessBackend::invoke(const CallDesc& desc) {
  // Static build-time selection: only configured ids may go switchless.
  if (!running_.load(std::memory_order_relaxed) || cfg_.num_workers == 0 ||
      !cfg_.switchless_fns.contains(desc.fn_id)) {
    return regular_path(desc, /*is_fallback=*/false);
  }

  TaskSlot* slot = pool_.claim();
  if (slot == nullptr) {
    // Pool full: the SDK falls back without waiting.
    return regular_path(desc, /*is_fallback=*/true);
  }
  if (frame_bytes(desc) > slot->frame_capacity) {
    slot->status.store(TaskStatus::kFree, std::memory_order_release);
    return regular_path(desc, /*is_fallback=*/true);
  }

  MarshalledCall call = marshal_into(slot->frame.get(), desc);
  slot->status.store(TaskStatus::kSubmitted, std::memory_order_release);
  wake_one_worker();

  // Busy-wait (one `pause` per retry) for a worker to *start* the task.
  std::uint32_t retries = 0;
  while (slot->status.load(std::memory_order_acquire) ==
         TaskStatus::kSubmitted) {
    if (retries++ >= cfg_.retries_before_fallback) {
      TaskStatus expected = TaskStatus::kSubmitted;
      if (slot->status.compare_exchange_strong(expected, TaskStatus::kFree,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
        // Cancelled in time: pay the transition after all.
        return regular_path(desc, /*is_fallback=*/true);
      }
      break;  // a worker won the race; it will complete the task
    }
    cpu_pause();
  }

  // Accepted: spin until completion (the SDK spins unboundedly here; the
  // caller thread is the "exactly one thread busy-waiting" of §IV-A).
  while (slot->status.load(std::memory_order_acquire) != TaskStatus::kDone) {
    cpu_pause();
  }

  unmarshal_from(call, desc);
  slot->status.store(TaskStatus::kFree, std::memory_order_release);
  stats_.switchless_calls.add();
  return CallPath::kSwitchless;
}

void IntelSwitchlessBackend::worker_main(unsigned index) {
  const SimConfig& sim = enclave_.config();
  if (sim.pin_threads) {
    pin_current_thread_to_window(sim.pin_base_cpu, sim.logical_cpus);
  }
  std::size_t meter_slot = 0;
  if (cfg_.meter != nullptr) {
    meter_slot = cfg_.meter->register_current_thread();
  }
  (void)index;
  started_.fetch_add(1, std::memory_order_release);

  std::uint32_t idle_retries = 0;
  std::uint64_t iterations = 0;
  while (running_.load(std::memory_order_relaxed)) {
    TaskSlot* slot = pool_.accept();
    if (slot != nullptr) {
      idle_retries = 0;
      MarshalledCall call = frame_view(slot->frame.get());
      FrameHeader* header = reinterpret_cast<FrameHeader*>(slot->frame.get());
      const OcallTable& table = cfg_.direction == CallDirection::kOcall
                                    ? enclave_.ocalls()
                                    : enclave_.ecalls();
      table.dispatch(header->fn_id, call);
      slot->status.store(TaskStatus::kDone, std::memory_order_release);
    } else {
      cpu_pause();
      if (++idle_retries >= cfg_.retries_before_sleep) {
        // Go to sleep until a submission (or stop) wakes us.
        stats_.worker_sleeps.add();
        if (cfg_.meter != nullptr) cfg_.meter->checkpoint(meter_slot);
        std::unique_lock lock(sleep_mu_);
        sleeping_.fetch_add(1, std::memory_order_release);
        sleep_cv_.wait(lock, [this] {
          return !running_.load(std::memory_order_relaxed) ||
                 pool_.pending() > 0;
        });
        sleeping_.fetch_sub(1, std::memory_order_release);
        idle_retries = 0;
      }
    }
    if (cfg_.meter != nullptr && (++iterations & 0x3FFF) == 0) {
      cfg_.meter->checkpoint(meter_slot);
    }
  }
  if (cfg_.meter != nullptr) cfg_.meter->unregister_current_thread(meter_slot);
}

std::unique_ptr<IntelSwitchlessBackend> make_intel_backend(Enclave& enclave,
                                                           IntelSlConfig cfg) {
  return std::make_unique<IntelSwitchlessBackend>(enclave, std::move(cfg));
}

}  // namespace zc::intel
