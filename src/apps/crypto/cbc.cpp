#include "apps/crypto/cbc.hpp"

#include <cassert>
#include <cstring>

namespace zc::app {

CbcEncryptor::CbcEncryptor(const std::uint8_t key[Aes256::kKeySize],
                           const std::uint8_t iv[Aes256::kBlockSize]) noexcept
    : aes_(key) {
  std::memcpy(iv_, iv, sizeof(iv_));
}

void CbcEncryptor::update(const std::uint8_t* in, std::size_t n,
                          std::uint8_t* out) {
  assert(n % Aes256::kBlockSize == 0);
  for (std::size_t off = 0; off < n; off += Aes256::kBlockSize) {
    std::uint8_t block[Aes256::kBlockSize];
    for (std::size_t i = 0; i < Aes256::kBlockSize; ++i) {
      block[i] = static_cast<std::uint8_t>(in[off + i] ^ iv_[i]);
    }
    aes_.encrypt_block(block, out + off);
    std::memcpy(iv_, out + off, Aes256::kBlockSize);
  }
}

void CbcEncryptor::final(const std::uint8_t* in, std::size_t n,
                         std::uint8_t out[Aes256::kBlockSize]) {
  assert(n < Aes256::kBlockSize);
  std::uint8_t block[Aes256::kBlockSize];
  const auto pad =
      static_cast<std::uint8_t>(Aes256::kBlockSize - n);
  for (std::size_t i = 0; i < n; ++i) block[i] = in[i];
  for (std::size_t i = n; i < Aes256::kBlockSize; ++i) block[i] = pad;
  update(block, Aes256::kBlockSize, out);
}

CbcDecryptor::CbcDecryptor(const std::uint8_t key[Aes256::kKeySize],
                           const std::uint8_t iv[Aes256::kBlockSize]) noexcept
    : aes_(key) {
  std::memcpy(iv_, iv, sizeof(iv_));
}

void CbcDecryptor::update(const std::uint8_t* in, std::size_t n,
                          std::uint8_t* out) {
  assert(n % Aes256::kBlockSize == 0);
  for (std::size_t off = 0; off < n; off += Aes256::kBlockSize) {
    std::uint8_t cipher[Aes256::kBlockSize];
    std::memcpy(cipher, in + off, Aes256::kBlockSize);  // in may alias out
    std::uint8_t block[Aes256::kBlockSize];
    aes_.decrypt_block(cipher, block);
    for (std::size_t i = 0; i < Aes256::kBlockSize; ++i) {
      out[off + i] = static_cast<std::uint8_t>(block[i] ^ iv_[i]);
    }
    std::memcpy(iv_, cipher, Aes256::kBlockSize);
  }
}

int CbcDecryptor::unpad(const std::uint8_t block[Aes256::kBlockSize]) noexcept {
  const std::uint8_t pad = block[Aes256::kBlockSize - 1];
  if (pad == 0 || pad > Aes256::kBlockSize) return -1;
  for (std::size_t i = Aes256::kBlockSize - pad; i < Aes256::kBlockSize; ++i) {
    if (block[i] != pad) return -1;
  }
  return static_cast<int>(Aes256::kBlockSize - pad);
}

std::vector<std::uint8_t> cbc_encrypt(const std::uint8_t key[32],
                                      const std::uint8_t iv[16],
                                      const std::uint8_t* data,
                                      std::size_t n) {
  CbcEncryptor enc(key, iv);
  const std::size_t full = n / Aes256::kBlockSize * Aes256::kBlockSize;
  std::vector<std::uint8_t> out(full + Aes256::kBlockSize);
  enc.update(data, full, out.data());
  enc.final(data + full, n - full, out.data() + full);
  return out;
}

std::vector<std::uint8_t> cbc_decrypt(const std::uint8_t key[32],
                                      const std::uint8_t iv[16],
                                      const std::uint8_t* data,
                                      std::size_t n) {
  if (n == 0 || n % Aes256::kBlockSize != 0) return {};
  CbcDecryptor dec(key, iv);
  std::vector<std::uint8_t> out(n);
  dec.update(data, n, out.data());
  const int tail = CbcDecryptor::unpad(out.data() + n - Aes256::kBlockSize);
  if (tail < 0) return {};
  out.resize(n - Aes256::kBlockSize + static_cast<std::size_t>(tail));
  return out;
}

}  // namespace zc::app
