#include "apps/crypto/aes.hpp"

#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <wmmintrin.h>
#define ZC_AES_X86 1
#endif

namespace zc::app {
namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e,
    0x81, 0xf3, 0xd7, 0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32,
    0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50,
    0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05,
    0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41,
    0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8,
    0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59,
    0x27, 0x80, 0xec, 0x5f, 0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0, 0xe0, 0x3b, 0x4d,
    0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63,
    0x55, 0x21, 0x0c, 0x7d};

constexpr std::uint8_t kRcon[15] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36,
                                    0x6c, 0xd8, 0xab, 0x4d, 0x9a};

inline std::uint8_t xtime(std::uint8_t x) noexcept {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

constexpr std::uint8_t gmul_const(std::uint8_t a, std::uint8_t b) noexcept {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = static_cast<std::uint8_t>((a << 1) ^ ((a >> 7) * 0x1b));
    b >>= 1;
  }
  return p;
}

// Precomputed GF(2^8) multiplication tables for InvMixColumns — the
// pipeline benchmarks decrypt megabytes, so decryption must not be orders
// of magnitude slower than encryption (OpenSSL's certainly is not).
struct GmulTables {
  std::uint8_t by9[256];
  std::uint8_t by11[256];
  std::uint8_t by13[256];
  std::uint8_t by14[256];
};

constexpr GmulTables make_gmul_tables() noexcept {
  GmulTables t{};
  for (int i = 0; i < 256; ++i) {
    const auto b = static_cast<std::uint8_t>(i);
    t.by9[i] = gmul_const(b, 0x09);
    t.by11[i] = gmul_const(b, 0x0b);
    t.by13[i] = gmul_const(b, 0x0d);
    t.by14[i] = gmul_const(b, 0x0e);
  }
  return t;
}

constexpr GmulTables kGmul = make_gmul_tables();

}  // namespace

#ifdef ZC_AES_X86

namespace {

__attribute__((target("aes,sse2"))) inline void aesni_encrypt(
    const std::uint8_t* rk, const std::uint8_t* in, std::uint8_t* out) {
  const auto* keys = reinterpret_cast<const __m128i*>(rk);
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  s = _mm_xor_si128(s, _mm_loadu_si128(keys + 0));
  for (unsigned r = 1; r < Aes256::kRounds; ++r) {
    s = _mm_aesenc_si128(s, _mm_loadu_si128(keys + r));
  }
  s = _mm_aesenclast_si128(s, _mm_loadu_si128(keys + Aes256::kRounds));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), s);
}

__attribute__((target("aes,sse2"))) inline void aesni_decrypt(
    const std::uint8_t* dk, const std::uint8_t* in, std::uint8_t* out) {
  const auto* keys = reinterpret_cast<const __m128i*>(dk);
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  s = _mm_xor_si128(s, _mm_loadu_si128(keys + Aes256::kRounds));
  for (unsigned r = Aes256::kRounds - 1; r > 0; --r) {
    s = _mm_aesdec_si128(s, _mm_loadu_si128(keys + r));
  }
  s = _mm_aesdeclast_si128(s, _mm_loadu_si128(keys + 0));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), s);
}

__attribute__((target("aes,sse2"))) inline void aesni_make_dec_keys(
    const std::uint8_t* rk, std::uint8_t* dk) {
  const auto* enc = reinterpret_cast<const __m128i*>(rk);
  auto* dec = reinterpret_cast<__m128i*>(dk);
  _mm_storeu_si128(dec + 0, _mm_loadu_si128(enc + 0));
  for (unsigned r = 1; r < Aes256::kRounds; ++r) {
    _mm_storeu_si128(dec + r, _mm_aesimc_si128(_mm_loadu_si128(enc + r)));
  }
  _mm_storeu_si128(dec + Aes256::kRounds,
                   _mm_loadu_si128(enc + Aes256::kRounds));
}

}  // namespace

#endif  // ZC_AES_X86 helpers

Aes256::Aes256(const std::uint8_t key[kKeySize]) noexcept {
  // Key expansion (FIPS-197 §5.2) for Nk = 8, Nr = 14.
  constexpr unsigned kNk = 8;
  constexpr unsigned kNw = 4 * (kRounds + 1);  // words in the schedule
  std::uint8_t w[kNw][4];
  std::memcpy(w, key, kKeySize);
  for (unsigned i = kNk; i < kNw; ++i) {
    std::uint8_t temp[4] = {w[i - 1][0], w[i - 1][1], w[i - 1][2], w[i - 1][3]};
    if (i % kNk == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ kRcon[i / kNk - 1]);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
    } else if (i % kNk == 4) {
      // AES-256 extra SubWord.
      for (auto& t : temp) t = kSbox[t];
    }
    for (int b = 0; b < 4; ++b) {
      w[i][b] = static_cast<std::uint8_t>(w[i - kNk][b] ^ temp[b]);
    }
  }
  std::memcpy(round_keys_.data(), w, round_keys_.size());
#ifdef ZC_AES_X86
  if (has_aesni()) {
    aesni_make_dec_keys(round_keys_.data(), dec_keys_.data());
  }
#endif
}

void Aes256::encrypt_block_sw(const std::uint8_t in[kBlockSize],
                              std::uint8_t out[kBlockSize]) const noexcept {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  auto add_round_key = [&](unsigned round) {
    const std::uint8_t* rk = round_keys_.data() + round * 16;
    for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
  };
  auto sub_shift = [&] {
    std::uint8_t t[16];
    // SubBytes + ShiftRows fused: t[col*4+row] = S(s[((col+row)%4)*4+row])
    for (int col = 0; col < 4; ++col) {
      for (int row = 0; row < 4; ++row) {
        t[col * 4 + row] = kSbox[s[((col + row) % 4) * 4 + row]];
      }
    }
    std::memcpy(s, t, 16);
  };
  auto mix_columns = [&] {
    for (int col = 0; col < 4; ++col) {
      std::uint8_t* c = s + col * 4;
      const std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
      c[0] = static_cast<std::uint8_t>(xtime(a0) ^ xtime(a1) ^ a1 ^ a2 ^ a3);
      c[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ xtime(a2) ^ a2 ^ a3);
      c[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ xtime(a3) ^ a3);
      c[3] = static_cast<std::uint8_t>(xtime(a0) ^ a0 ^ a1 ^ a2 ^ xtime(a3));
    }
  };

  add_round_key(0);
  for (unsigned round = 1; round < kRounds; ++round) {
    sub_shift();
    mix_columns();
    add_round_key(round);
  }
  sub_shift();
  add_round_key(kRounds);
  std::memcpy(out, s, 16);
}

void Aes256::decrypt_block_sw(const std::uint8_t in[kBlockSize],
                              std::uint8_t out[kBlockSize]) const noexcept {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  auto add_round_key = [&](unsigned round) {
    const std::uint8_t* rk = round_keys_.data() + round * 16;
    for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
  };
  auto inv_sub_shift = [&] {
    std::uint8_t t[16];
    // InvShiftRows + InvSubBytes fused.
    for (int col = 0; col < 4; ++col) {
      for (int row = 0; row < 4; ++row) {
        t[((col + row) % 4) * 4 + row] = kInvSbox[s[col * 4 + row]];
      }
    }
    std::memcpy(s, t, 16);
  };
  auto inv_mix_columns = [&] {
    for (int col = 0; col < 4; ++col) {
      std::uint8_t* c = s + col * 4;
      const std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
      c[0] = static_cast<std::uint8_t>(kGmul.by14[a0] ^ kGmul.by11[a1] ^
                                       kGmul.by13[a2] ^ kGmul.by9[a3]);
      c[1] = static_cast<std::uint8_t>(kGmul.by9[a0] ^ kGmul.by14[a1] ^
                                       kGmul.by11[a2] ^ kGmul.by13[a3]);
      c[2] = static_cast<std::uint8_t>(kGmul.by13[a0] ^ kGmul.by9[a1] ^
                                       kGmul.by14[a2] ^ kGmul.by11[a3]);
      c[3] = static_cast<std::uint8_t>(kGmul.by11[a0] ^ kGmul.by13[a1] ^
                                       kGmul.by9[a2] ^ kGmul.by14[a3]);
    }
  };

  add_round_key(kRounds);
  for (unsigned round = kRounds - 1; round > 0; --round) {
    inv_sub_shift();
    add_round_key(round);
    inv_mix_columns();
  }
  inv_sub_shift();
  add_round_key(0);
  std::memcpy(out, s, 16);
}


#ifdef ZC_AES_X86

bool Aes256::has_aesni() noexcept {
  static const bool supported = __builtin_cpu_supports("aes") != 0;
  return supported;
}

#else

bool Aes256::has_aesni() noexcept { return false; }

#endif  // ZC_AES_X86

void Aes256::encrypt_block(const std::uint8_t in[kBlockSize],
                           std::uint8_t out[kBlockSize]) const noexcept {
#ifdef ZC_AES_X86
  if (has_aesni()) {
    aesni_encrypt(round_keys_.data(), in, out);
    return;
  }
#endif
  encrypt_block_sw(in, out);
}

void Aes256::decrypt_block(const std::uint8_t in[kBlockSize],
                           std::uint8_t out[kBlockSize]) const noexcept {
#ifdef ZC_AES_X86
  if (has_aesni()) {
    aesni_decrypt(dec_keys_.data(), in, out);
    return;
  }
#endif
  decrypt_block_sw(in, out);
}

}  // namespace zc::app
