// Enclave file encryption/decryption pipeline (paper §V-B).
//
// One enclave thread reads plaintext chunks via fread ocalls, encrypts them
// inside the enclave with AES-256-CBC, and writes ciphertext via fwrite
// ocalls; a second thread reads ciphertext and decrypts in-enclave.  The
// ocall mix is fread/fwrite (bulk, long duration) plus fopen/fclose (rare),
// which is exactly the regime where Intel's default rbf makes switchless
// lose to ZC (Take-away 7).
#pragma once

#include <cstdint>
#include <string>

#include "sgx/tlibc_stdio.hpp"

namespace zc::app {

struct FileCryptoStats {
  std::uint64_t bytes_in = 0;   ///< plaintext/ciphertext bytes consumed
  std::uint64_t bytes_out = 0;  ///< bytes written (0 when discarding)
  std::uint64_t chunks = 0;     ///< fread ocalls issued
  bool ok = false;
};

/// Encrypts `in_path` into `out_path` chunk-by-chunk.
/// `chunk_bytes` must be a non-zero multiple of 16.
FileCryptoStats encrypt_file(EnclaveLibc& libc, const std::string& in_path,
                             const std::string& out_path,
                             const std::uint8_t key[32],
                             const std::uint8_t iv[16],
                             std::size_t chunk_bytes = 4096);

/// Decrypts `in_path`; when `out_path` is empty the plaintext is discarded
/// in-enclave (the paper's decryptor thread does not write output).
FileCryptoStats decrypt_file(EnclaveLibc& libc, const std::string& in_path,
                             const std::string& out_path,
                             const std::uint8_t key[32],
                             const std::uint8_t iv[16],
                             std::size_t chunk_bytes = 4096);

}  // namespace zc::app
