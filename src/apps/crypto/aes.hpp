// AES-256 block cipher (FIPS-197), implemented from scratch as the
// substitute for the paper's SGX port of OpenSSL (§V-B).  Used only as
// in-enclave compute between file ocalls; correctness is pinned by the
// FIPS-197 / NIST SP 800-38A known-answer tests in the test suite.
#pragma once

#include <array>
#include <cstdint>

namespace zc::app {

class Aes256 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 32;
  static constexpr unsigned kRounds = 14;

  /// Expands the 256-bit key into the round-key schedule.
  explicit Aes256(const std::uint8_t key[kKeySize]) noexcept;

  /// Encrypts one 16-byte block (in-place safe: out may alias in).
  /// Dispatches to AES-NI when the CPU supports it (the paper's OpenSSL
  /// baseline is AES-NI-backed; matching it keeps the file pipeline
  /// I/O-bound as in §V-B), else to the portable implementation.
  void encrypt_block(const std::uint8_t in[kBlockSize],
                     std::uint8_t out[kBlockSize]) const noexcept;

  /// Decrypts one 16-byte block.
  void decrypt_block(const std::uint8_t in[kBlockSize],
                     std::uint8_t out[kBlockSize]) const noexcept;

  /// Portable (software) paths; exposed so tests can cross-check the
  /// hardware path against them.
  void encrypt_block_sw(const std::uint8_t in[kBlockSize],
                        std::uint8_t out[kBlockSize]) const noexcept;
  void decrypt_block_sw(const std::uint8_t in[kBlockSize],
                        std::uint8_t out[kBlockSize]) const noexcept;

  /// True when this build/CPU uses the AES-NI path.
  static bool has_aesni() noexcept;

 private:
  // Round keys as bytes: (kRounds + 1) * 16. The second schedule holds the
  // InvMixColumns-transformed keys the AES-NI decrypt path needs (unused
  // without AES-NI).
  std::array<std::uint8_t, (kRounds + 1) * kBlockSize> round_keys_{};
  std::array<std::uint8_t, (kRounds + 1) * kBlockSize> dec_keys_{};
};

}  // namespace zc::app
