#include "apps/crypto/sector_store.hpp"

#include <cstring>

#include "apps/crypto/cbc.hpp"
#include "sgx/marshal.hpp"

namespace zc::app {

namespace {

// Per-sector IV: the sector index in both halves, the upper half whitened
// so consecutive sectors never share an IV prefix.  Deterministic, so a
// read pass re-derives the write pass's IVs from the index alone.
void sector_iv(std::uint64_t index, std::uint8_t iv[16]) {
  const std::uint64_t lo = index;
  const std::uint64_t hi = index ^ 0x5EC7'0B1D'5EC7'0B1DULL;
  std::memcpy(iv, &lo, 8);
  std::memcpy(iv + 8, &hi, 8);
}

// Single-copy callbacks: plain C function pointers (the marshalling layer
// takes no closures), with the cipher state threaded through inplace_ctx.

struct ProduceCtx {
  CbcEncryptor* enc;
  const std::uint8_t* plain;
};

void encrypt_into_frame(void* dst, std::size_t n, void* ctx) {
  auto* c = static_cast<ProduceCtx*>(ctx);
  c->enc->update(c->plain, n, static_cast<std::uint8_t*>(dst));
}

struct ConsumeCtx {
  CbcDecryptor* dec;
  std::uint8_t* plain;
};

void decrypt_from_frame(const void* src, std::size_t n, void* ctx) {
  auto* c = static_cast<ConsumeCtx*>(ctx);
  c->dec->update(static_cast<const std::uint8_t*>(src), n, c->plain);
}

}  // namespace

SectorStore::SectorStore(EnclaveLibc& libc, std::string path,
                         std::size_t sector_bytes, const std::uint8_t key[32])
    : libc_(&libc), path_(std::move(path)), sector_bytes_(sector_bytes) {
  if (sector_bytes_ == 0 || sector_bytes_ % Aes256::kBlockSize != 0) {
    sector_bytes_ = 0;  // invalid; every operation refuses
    return;
  }
  std::memcpy(key_, key, sizeof(key_));
  staging_.resize(sector_bytes_);
}

bool SectorStore::open_for_write() {
  if (!valid()) return false;
  file_ = libc_->fopen(path_.c_str(), "wb");
  return static_cast<bool>(file_);
}

bool SectorStore::open_for_read() {
  if (!valid()) return false;
  file_ = libc_->fopen(path_.c_str(), "rb");
  return static_cast<bool>(file_);
}

void SectorStore::close() { file_.close(); }

bool SectorStore::write_sector(std::uint64_t index, const std::uint8_t* plain,
                               CopyMode mode) {
  if (!valid() || !file_) return false;
  std::uint8_t iv[16];
  sector_iv(index, iv);
  CbcEncryptor enc(key_, iv);

  if (mode == CopyMode::kDouble) {
    enc.update(plain, sector_bytes_, staging_.data());
    return file_.write(staging_.data(), sector_bytes_) == sector_bytes_;
  }

  // Single copy: the producer CBC-encrypts straight into the untrusted
  // frame — ciphertext never exists in trusted memory.
  ProduceCtx ctx{&enc, plain};
  FwriteArgs args;
  args.handle = file_.native_handle();
  args.size = sector_bytes_;
  CallDesc desc;
  desc.fn_id = libc_->ids().fwrite;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.in_size = sector_bytes_;
  desc.produce_in = &encrypt_into_frame;
  desc.inplace_ctx = &ctx;
  libc_->enclave().ocall(desc);
  return args.ret == sector_bytes_;
}

bool SectorStore::read_sector(std::uint64_t index, std::uint8_t* plain,
                              CopyMode mode) {
  if (!valid() || !file_) return false;
  std::uint8_t iv[16];
  sector_iv(index, iv);
  CbcDecryptor dec(key_, iv);

  if (mode == CopyMode::kDouble) {
    if (file_.read(staging_.data(), sector_bytes_) != sector_bytes_) {
      return false;
    }
    dec.update(staging_.data(), sector_bytes_, plain);
    return true;
  }

  // Single copy: the consumer decrypts straight out of the untrusted frame.
  ConsumeCtx ctx{&dec, plain};
  FreadArgs args;
  args.handle = file_.native_handle();
  args.size = sector_bytes_;
  CallDesc desc;
  desc.fn_id = libc_->ids().fread;
  desc.args = &args;
  desc.args_size = sizeof(args);
  desc.out_size = sector_bytes_;
  desc.consume_out = &decrypt_from_frame;
  desc.inplace_ctx = &ctx;
  libc_->enclave().ocall(desc);
  return args.ret == sector_bytes_;
}

}  // namespace zc::app
