// Encrypted sector store: the fig14 large-payload workload.
//
// A sector store encrypts fixed-size sectors with AES-256-CBC (per-sector
// IV derived from the sector index, sector sizes a multiple of the AES
// block so no padding is ever written) and moves the ciphertext across the
// enclave boundary with one fwrite/fread ocall per sector.  The marshalled
// payload *is* the sector, so sector size sweeps stress exactly the copy
// regime of Figs. 7/13: at large sectors the boundary copies dominate the
// round trip.
//
// Each transfer runs in one of two data-plane disciplines:
//
//  * CopyMode::kDouble — the classic edger8r shape.  Writes encrypt into a
//    trusted staging buffer and hand it to the marshalling layer, which
//    copies it again into the untrusted frame (two passes over the
//    sector).  Reads mirror it: frame -> staging -> decrypt.
//  * CopyMode::kSingle — the zero-copy shape.  Writes attach a
//    PayloadProducer that CBC-encrypts *directly into the untrusted
//    frame*; reads attach a PayloadConsumer that decrypts directly from
//    it.  The trusted staging pass disappears (the backend's
//    copies_elided counter records each one), which is the win the
//    fig14 bench quantifies.
//
// Both disciplines produce byte-identical files and plaintext — pinned by
// the unit tests and the cross-backend equivalence suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sgx/tlibc_stdio.hpp"

namespace zc::app {

class SectorStore {
 public:
  /// `sector_bytes` must be a non-zero multiple of 16 (the AES block).
  /// The key is copied; the store derives one IV per sector from `index`.
  SectorStore(EnclaveLibc& libc, std::string path, std::size_t sector_bytes,
              const std::uint8_t key[32]);

  /// True when the constructor arguments were valid.
  bool valid() const noexcept { return sector_bytes_ != 0; }
  std::size_t sector_bytes() const noexcept { return sector_bytes_; }

  /// (Re)opens the backing file for a sequential write / read pass.
  bool open_for_write();
  bool open_for_read();
  void close();

  /// Encrypts `plain` (sector_bytes) and appends it as sector `index`
  /// (sectors are written in index order on a write pass; `index` feeds
  /// the IV derivation).  False on I/O failure.
  bool write_sector(std::uint64_t index, const std::uint8_t* plain,
                    CopyMode mode);

  /// Reads the next sector of a sequential read pass and decrypts it into
  /// `plain` (sector_bytes); `index` must match the write-time index.
  bool read_sector(std::uint64_t index, std::uint8_t* plain, CopyMode mode);

 private:
  EnclaveLibc* libc_;
  std::string path_;
  std::size_t sector_bytes_;
  std::uint8_t key_[32];
  TFile file_;
  /// Trusted ciphertext bounce buffer — the copy kDouble pays and kSingle
  /// elides.  Kept across sectors so its allocation is not on the hot path.
  std::vector<std::uint8_t> staging_;
};

}  // namespace zc::app
