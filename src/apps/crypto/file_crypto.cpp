#include "apps/crypto/file_crypto.hpp"

#include <cstring>
#include <vector>

#include "apps/crypto/cbc.hpp"

namespace zc::app {

FileCryptoStats encrypt_file(EnclaveLibc& libc, const std::string& in_path,
                             const std::string& out_path,
                             const std::uint8_t key[32],
                             const std::uint8_t iv[16],
                             std::size_t chunk_bytes) {
  FileCryptoStats stats;
  if (chunk_bytes == 0 || chunk_bytes % Aes256::kBlockSize != 0) return stats;

  TFile in = libc.fopen(in_path.c_str(), "rb");
  if (!in) return stats;
  TFile out = libc.fopen(out_path.c_str(), "wb");
  if (!out) return stats;

  CbcEncryptor enc(key, iv);
  std::vector<std::uint8_t> plain(chunk_bytes);
  std::vector<std::uint8_t> cipher(chunk_bytes + Aes256::kBlockSize);

  for (;;) {
    const std::size_t got = in.read(plain.data(), chunk_bytes);
    ++stats.chunks;
    stats.bytes_in += got;
    const std::size_t full = got / Aes256::kBlockSize * Aes256::kBlockSize;
    if (full != 0) {
      enc.update(plain.data(), full, cipher.data());
      if (out.write(cipher.data(), full) != full) return stats;
      stats.bytes_out += full;
    }
    if (got < chunk_bytes) {
      // Trailing partial block (possibly empty) -> final padded block.
      enc.final(plain.data() + full, got - full, cipher.data());
      if (out.write(cipher.data(), Aes256::kBlockSize) != Aes256::kBlockSize) {
        return stats;
      }
      stats.bytes_out += Aes256::kBlockSize;
      break;
    }
  }
  stats.ok = true;
  return stats;
}

FileCryptoStats decrypt_file(EnclaveLibc& libc, const std::string& in_path,
                             const std::string& out_path,
                             const std::uint8_t key[32],
                             const std::uint8_t iv[16],
                             std::size_t chunk_bytes) {
  FileCryptoStats stats;
  if (chunk_bytes == 0 || chunk_bytes % Aes256::kBlockSize != 0) return stats;

  TFile in = libc.fopen(in_path.c_str(), "rb");
  if (!in) return stats;
  TFile out;
  const bool writing = !out_path.empty();
  if (writing) {
    out = libc.fopen(out_path.c_str(), "wb");
    if (!out) return stats;
  }

  CbcDecryptor dec(key, iv);
  std::vector<std::uint8_t> cipher(chunk_bytes);
  std::vector<std::uint8_t> plain(chunk_bytes);
  // The final block is held back until EOF so its padding can be stripped.
  std::uint8_t held[Aes256::kBlockSize];
  bool have_held = false;

  for (;;) {
    const std::size_t got = in.read(cipher.data(), chunk_bytes);
    ++stats.chunks;
    if (got % Aes256::kBlockSize != 0) return stats;  // corrupt stream
    stats.bytes_in += got;
    if (got != 0) {
      if (have_held) {
        if (writing &&
            out.write(held, Aes256::kBlockSize) != Aes256::kBlockSize) {
          return stats;
        }
        if (writing) stats.bytes_out += Aes256::kBlockSize;
        have_held = false;
      }
      dec.update(cipher.data(), got, plain.data());
      const std::size_t body = got - Aes256::kBlockSize;
      if (body != 0 && writing) {
        if (out.write(plain.data(), body) != body) return stats;
        stats.bytes_out += body;
      }
      std::memcpy(held, plain.data() + body, Aes256::kBlockSize);
      have_held = true;
    }
    if (got < chunk_bytes) break;
  }

  if (!have_held) return stats;  // empty or truncated ciphertext
  const int tail = CbcDecryptor::unpad(held);
  if (tail < 0) return stats;
  if (writing && tail > 0) {
    if (out.write(held, static_cast<std::size_t>(tail)) !=
        static_cast<std::size_t>(tail)) {
      return stats;
    }
    stats.bytes_out += static_cast<std::size_t>(tail);
  }
  stats.ok = true;
  return stats;
}

}  // namespace zc::app
