// AES-256-CBC mode with PKCS#7 padding (the algorithm the paper's OpenSSL
// benchmark uses: EVP_aes_256_cbc).  Streaming interface so the file
// pipeline can process chunk-by-chunk between fread/fwrite ocalls.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/crypto/aes.hpp"

namespace zc::app {

class CbcEncryptor {
 public:
  CbcEncryptor(const std::uint8_t key[Aes256::kKeySize],
               const std::uint8_t iv[Aes256::kBlockSize]) noexcept;

  /// Encrypts `n` bytes (must be a multiple of 16) from `in` to `out`
  /// (same size). Chunks chain across calls via the running IV.
  void update(const std::uint8_t* in, std::size_t n, std::uint8_t* out);

  /// Emits the final padded block for `n` trailing bytes (n < 16 allowed,
  /// including 0).  Always writes exactly 16 bytes (PKCS#7).
  void final(const std::uint8_t* in, std::size_t n,
             std::uint8_t out[Aes256::kBlockSize]);

 private:
  Aes256 aes_;
  std::uint8_t iv_[Aes256::kBlockSize];
};

class CbcDecryptor {
 public:
  CbcDecryptor(const std::uint8_t key[Aes256::kKeySize],
               const std::uint8_t iv[Aes256::kBlockSize]) noexcept;

  /// Decrypts `n` bytes (multiple of 16) from `in` to `out`.
  void update(const std::uint8_t* in, std::size_t n, std::uint8_t* out);

  /// Strips PKCS#7 padding from the final decrypted block `block` (16
  /// bytes, already produced by update). Returns the payload length 0..15,
  /// or -1 if the padding is malformed.
  static int unpad(const std::uint8_t block[Aes256::kBlockSize]) noexcept;

 private:
  Aes256 aes_;
  std::uint8_t iv_[Aes256::kBlockSize];
};

/// One-shot helpers (used by tests and the quickstart example).
std::vector<std::uint8_t> cbc_encrypt(const std::uint8_t key[32],
                                      const std::uint8_t iv[16],
                                      const std::uint8_t* data,
                                      std::size_t n);
/// Returns empty vector on padding failure of non-empty input.
std::vector<std::uint8_t> cbc_decrypt(const std::uint8_t key[32],
                                      const std::uint8_t iv[16],
                                      const std::uint8_t* data,
                                      std::size_t n);

}  // namespace zc::app
