// lmbench-style syscall microbenchmarks and the dynamic workload driver
// (paper §V-C).
//
// The read benchmark reads one word from /dev/zero, the write benchmark
// writes one word to /dev/null — each op is one ocall.  The dynamic driver
// runs one reader and one writer enclave thread against a PhasedPlan
// (increase / steady / decrease) and samples per-period throughput, CPU
// usage and the ZC scheduler's worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/cpu_meter.hpp"
#include "sgx/tlibc_stdio.hpp"
#include "workload/phased.hpp"

namespace zc::app {

/// Issues `ops` one-word reads from `fd` (e.g. /dev/zero). Returns ops
/// actually completed (a short read stops the loop).
std::uint64_t read_words(EnclaveLibc& libc, int fd, std::uint64_t ops);

/// Issues `ops` one-word writes to `fd` (e.g. /dev/null).
std::uint64_t write_words(EnclaveLibc& libc, int fd, std::uint64_t ops);

/// One sample per τ period of the dynamic run.
struct PeriodSample {
  double t_seconds = 0;       ///< period end, relative to run start
  double read_kops = 0;       ///< reader throughput in KOPs/s
  double write_kops = 0;      ///< writer throughput in KOPs/s
  double cpu_percent = 0;     ///< simulated-machine CPU usage this period
  unsigned workers = 0;       ///< backend's active workers at sample time
};

struct DynamicResult {
  std::vector<PeriodSample> samples;
  std::uint64_t total_reads = 0;
  std::uint64_t total_writes = 0;
};

/// Runs the 3-phase dynamic benchmark against the enclave's installed
/// backend.  `meter` must be the meter wired into the backend so worker
/// CPU time is included.
DynamicResult run_dynamic_syscall_bench(EnclaveLibc& libc,
                                        const workload::PhasedPlan& plan,
                                        CpuUsageMeter& meter);

}  // namespace zc::app
