#include "apps/lmbench/lat_syscall.hpp"

#include <fcntl.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <thread>

#include "workload/harness.hpp"

namespace zc::app {

std::uint64_t read_words(EnclaveLibc& libc, int fd, std::uint64_t ops) {
  std::uint64_t word = 0;
  std::uint64_t done = 0;
  for (; done < ops; ++done) {
    if (libc.read(fd, &word, sizeof(word)) !=
        static_cast<std::int64_t>(sizeof(word))) {
      break;
    }
  }
  return done;
}

std::uint64_t write_words(EnclaveLibc& libc, int fd, std::uint64_t ops) {
  const std::uint64_t word = 0x5a5a5a5a5a5a5a5aULL;
  std::uint64_t done = 0;
  for (; done < ops; ++done) {
    if (libc.write(fd, &word, sizeof(word)) !=
        static_cast<std::int64_t>(sizeof(word))) {
      break;
    }
  }
  return done;
}

DynamicResult run_dynamic_syscall_bench(EnclaveLibc& libc,
                                        const workload::PhasedPlan& plan,
                                        CpuUsageMeter& meter) {
  using clock = std::chrono::steady_clock;
  Enclave& enclave = libc.enclave();
  const std::uint64_t periods = plan.periods();
  const auto tau =
      std::chrono::duration<double>(plan.tau_seconds);

  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> writes{0};
  std::barrier sync(3);

  auto runner = [&](bool is_reader, std::atomic<std::uint64_t>& counter) {
    workload::SimThreadScope scope(enclave, &meter);
    const int fd = is_reader ? libc.open("/dev/zero", O_RDONLY)
                             : libc.open("/dev/null", O_WRONLY);
    sync.arrive_and_wait();
    const auto start = clock::now();
    enclave.ecall([&] {
      for (std::uint64_t p = 0; p < periods; ++p) {
        const std::uint64_t target = plan.ops_for_period(p);
        std::uint64_t done = 0;
        // Issue in small batches, publishing progress incrementally so the
        // sampling thread sees a smooth series, and honour the period
        // deadline even when the target exceeds capacity.
        const auto deadline = start + (p + 1) * tau;
        while (done < target && clock::now() < deadline) {
          const std::uint64_t batch = std::min<std::uint64_t>(
              256, target - done);
          const std::uint64_t completed =
              is_reader ? read_words(libc, fd, batch)
                        : write_words(libc, fd, batch);
          done += completed;
          counter.fetch_add(completed, std::memory_order_relaxed);
          scope.checkpoint();
        }
        std::this_thread::sleep_until(deadline);
      }
      return 0;
    });
    libc.close(fd);
    sync.arrive_and_wait();
  };

  std::jthread reader([&] { runner(true, reads); });
  std::jthread writer([&] { runner(false, writes); });

  DynamicResult result;
  meter.begin_window();
  sync.arrive_and_wait();  // start line
  const auto start = clock::now();

  std::uint64_t prev_reads = 0;
  std::uint64_t prev_writes = 0;
  std::uint64_t prev_cpu_ns = 0;
  for (std::uint64_t p = 0; p < periods; ++p) {
    std::this_thread::sleep_until(start + (p + 1) * tau);
    const std::uint64_t r = reads.load(std::memory_order_relaxed);
    const std::uint64_t w = writes.load(std::memory_order_relaxed);
    const std::uint64_t cpu_ns = meter.window_cpu_ns();

    PeriodSample s;
    s.t_seconds = (p + 1) * plan.tau_seconds;
    s.read_kops = static_cast<double>(r - prev_reads) / plan.tau_seconds / 1e3;
    s.write_kops =
        static_cast<double>(w - prev_writes) / plan.tau_seconds / 1e3;
    s.cpu_percent = 100.0 * static_cast<double>(cpu_ns - prev_cpu_ns) /
                    (plan.tau_seconds * 1e9 *
                     static_cast<double>(meter.logical_cpus()));
    s.workers = enclave.backend().active_workers();
    result.samples.push_back(s);

    prev_reads = r;
    prev_writes = w;
    prev_cpu_ns = cpu_ns;
  }

  sync.arrive_and_wait();  // finish line
  reader.join();
  writer.join();
  result.total_reads = reads.load();
  result.total_writes = writes.load();
  return result;
}

}  // namespace zc::app
