#include "apps/kissdb/kissdb.hpp"

#include <cstdio>
#include <cstring>

namespace zc::app {
namespace {

constexpr char kMagic[4] = {'K', 'd', 'B', '2'};

struct Header {
  char magic[4];
  std::uint32_t pad = 0;
  std::uint64_t hash_table_size = 0;
  std::uint64_t key_size = 0;
  std::uint64_t value_size = 0;
};
static_assert(sizeof(Header) == 32);

}  // namespace

std::uint64_t KissDB::hash(const void* bytes, std::size_t len) noexcept {
  // The original kissdb hash: djb2 variant over the key bytes.
  const auto* b = static_cast<const unsigned char*>(bytes);
  std::uint64_t h = 5381;
  for (std::size_t i = 0; i < len; ++i) {
    h = ((h << 5) + h) + b[i];
  }
  return h;
}

int KissDB::open(EnclaveLibc& libc, const std::string& path,
                 const Options& opts) {
  if (is_open()) return kErrorInvalid;
  if (opts.hash_table_size == 0 || opts.key_size == 0 || opts.value_size == 0) {
    return kErrorInvalid;
  }
  libc_ = &libc;
  opts_ = opts;
  tables_.clear();

  // r+b first (existing db), else create with w+b.
  file_ = libc.fopen(path.c_str(), "r+b");
  if (!file_) {
    file_ = libc.fopen(path.c_str(), "w+b");
    if (!file_) return kErrorIo;
    const int rc = write_header();
    if (rc != kOk) {
      close();
      return rc;
    }
    return kOk;
  }
  int rc = read_header();
  if (rc == kOk) rc = load_tables();
  if (rc != kOk) close();
  return rc;
}

void KissDB::close() {
  if (file_) {
    file_.flush();
    file_.close();
  }
  tables_.clear();
  libc_ = nullptr;
}

int KissDB::write_header() {
  Header h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.hash_table_size = opts_.hash_table_size;
  h.key_size = opts_.key_size;
  h.value_size = opts_.value_size;
  if (file_.seek(0, SEEK_SET) != 0) return kErrorIo;
  if (file_.write(&h, sizeof(h)) != sizeof(h)) return kErrorIo;
  return kOk;
}

int KissDB::read_header() {
  Header h{};
  if (file_.seek(0, SEEK_SET) != 0) return kErrorIo;
  if (file_.read(&h, sizeof(h)) != sizeof(h)) return kErrorMalformed;
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) return kErrorMalformed;
  if (h.hash_table_size != opts_.hash_table_size ||
      h.key_size != opts_.key_size || h.value_size != opts_.value_size) {
    return kErrorInvalid;
  }
  return kOk;
}

int KissDB::load_tables() {
  std::uint64_t offset = sizeof(Header);
  for (;;) {
    if (file_.seek(static_cast<std::int64_t>(offset), SEEK_SET) != 0) {
      return kErrorIo;
    }
    TablePage page;
    page.file_offset = offset;
    page.slots.resize(opts_.hash_table_size + 1);
    const std::size_t want = page_bytes();
    const std::size_t got = file_.read(page.slots.data(), want);
    if (got == 0 && tables_.empty()) return kOk;  // fresh db: no pages yet
    if (got != want) return kErrorMalformed;
    const std::uint64_t next = page.slots[opts_.hash_table_size];
    tables_.push_back(std::move(page));
    if (next == 0) return kOk;
    offset = next;
  }
}

int KissDB::append_table_with(std::uint64_t slot_index, const void* key,
                              const void* value) {
  // New page at EOF; its record follows immediately after the page.
  if (file_.seek(0, SEEK_END) != 0) return kErrorIo;
  const std::int64_t end = file_.tell();
  if (end < 0) return kErrorIo;
  const auto table_offset = static_cast<std::uint64_t>(end);
  const std::uint64_t record_offset = table_offset + page_bytes();

  TablePage page;
  page.file_offset = table_offset;
  page.slots.assign(opts_.hash_table_size + 1, 0);
  page.slots[slot_index] = record_offset;

  if (file_.write(page.slots.data(), page_bytes()) != page_bytes()) {
    return kErrorIo;
  }
  if (file_.write(key, opts_.key_size) != opts_.key_size) return kErrorIo;
  if (file_.write(value, opts_.value_size) != opts_.value_size) {
    return kErrorIo;
  }

  if (!tables_.empty()) {
    // Link the previous page's chain slot to the new page.
    TablePage& prev = tables_.back();
    const std::uint64_t link_pos =
        prev.file_offset + opts_.hash_table_size * sizeof(std::uint64_t);
    if (file_.seek(static_cast<std::int64_t>(link_pos), SEEK_SET) != 0) {
      return kErrorIo;
    }
    if (file_.write(&table_offset, sizeof(table_offset)) !=
        sizeof(table_offset)) {
      return kErrorIo;
    }
    prev.slots[opts_.hash_table_size] = table_offset;
  }
  tables_.push_back(std::move(page));
  return kOk;
}

int KissDB::put(const void* key, const void* value) {
  if (!is_open()) return kErrorInvalid;
  const std::uint64_t slot = hash(key, opts_.key_size) % opts_.hash_table_size;
  std::vector<std::uint8_t> stored(opts_.key_size);

  for (TablePage& page : tables_) {
    const std::uint64_t offset = page.slots[slot];
    if (offset == 0) {
      // Free slot in this page: append the record at EOF and point the
      // slot at it (on disk and in the cache).
      if (file_.seek(0, SEEK_END) != 0) return kErrorIo;
      const std::int64_t end = file_.tell();
      if (end < 0) return kErrorIo;
      const auto record_offset = static_cast<std::uint64_t>(end);
      if (file_.write(key, opts_.key_size) != opts_.key_size) return kErrorIo;
      if (file_.write(value, opts_.value_size) != opts_.value_size) {
        return kErrorIo;
      }
      const std::uint64_t slot_pos =
          page.file_offset + slot * sizeof(std::uint64_t);
      if (file_.seek(static_cast<std::int64_t>(slot_pos), SEEK_SET) != 0) {
        return kErrorIo;
      }
      if (file_.write(&record_offset, sizeof(record_offset)) !=
          sizeof(record_offset)) {
        return kErrorIo;
      }
      page.slots[slot] = record_offset;
      return kOk;
    }
    // Occupied: compare the stored key (fseeko + fread, the hot ocalls).
    if (file_.seek(static_cast<std::int64_t>(offset), SEEK_SET) != 0) {
      return kErrorIo;
    }
    if (file_.read(stored.data(), opts_.key_size) != opts_.key_size) {
      return kErrorMalformed;
    }
    if (std::memcmp(stored.data(), key, opts_.key_size) == 0) {
      // Same key: overwrite the value in place. C stdio requires a file
      // positioning call between input and output on update streams, and
      // the original kissdb issues the same fseeko here.
      if (file_.seek(static_cast<std::int64_t>(offset + opts_.key_size),
                     SEEK_SET) != 0) {
        return kErrorIo;
      }
      if (file_.write(value, opts_.value_size) != opts_.value_size) {
        return kErrorIo;
      }
      return kOk;
    }
  }
  // Collision in every page: chain a new hash-table page.
  return append_table_with(slot, key, value);
}

int KissDB::get(const void* key, void* value_out) {
  if (!is_open()) return kErrorInvalid;
  const std::uint64_t slot = hash(key, opts_.key_size) % opts_.hash_table_size;
  std::vector<std::uint8_t> stored(opts_.key_size);

  for (TablePage& page : tables_) {
    const std::uint64_t offset = page.slots[slot];
    if (offset == 0) return kNotFound;
    if (file_.seek(static_cast<std::int64_t>(offset), SEEK_SET) != 0) {
      return kErrorIo;
    }
    if (file_.read(stored.data(), opts_.key_size) != opts_.key_size) {
      return kErrorMalformed;
    }
    if (std::memcmp(stored.data(), key, opts_.key_size) == 0) {
      if (file_.read(value_out, opts_.value_size) != opts_.value_size) {
        return kErrorMalformed;
      }
      return kOk;
    }
  }
  return kNotFound;
}

}  // namespace zc::app
