// C++ port of kissdb ("keep it simple stupid database") running inside the
// simulated enclave — the paper's first static macro-benchmark (§V-A).
//
// kissdb is a fixed-key/fixed-value on-disk hash table: the file holds a
// header, then alternating hash-table pages and records.  A hash-table page
// is (hash_table_size + 1) 64-bit file offsets — slot i points at a record
// whose key hashes to i, the extra last slot links to the next page.  All
// file accesses go through the trusted stdio facade, so every database
// operation issues the fseeko/fread/fwrite ocalls whose mix drives Figs. 8
// and 9 (fseeko being the most frequent and shortest of the three).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sgx/tlibc_stdio.hpp"

namespace zc::app {

class KissDB {
 public:
  struct Options {
    std::uint64_t hash_table_size = 1024;  ///< buckets per page (original default)
    std::uint64_t key_size = 8;            ///< paper: 8-byte keys
    std::uint64_t value_size = 8;          ///< paper: 8-byte values
  };

  /// Return codes, mirroring the original C API.
  enum : int {
    kOk = 0,
    kNotFound = 1,
    kErrorIo = -1,
    kErrorMalformed = -2,
    kErrorInvalid = -3,
  };

  KissDB() = default;
  ~KissDB() { close(); }
  KissDB(const KissDB&) = delete;
  KissDB& operator=(const KissDB&) = delete;

  /// Opens (creating if necessary) the database at `path`.  Existing files
  /// must match `opts` exactly.  Returns kOk or an error code.
  int open(EnclaveLibc& libc, const std::string& path, const Options& opts);

  /// Flushes and closes. Idempotent.
  void close();

  bool is_open() const noexcept { return static_cast<bool>(file_); }

  /// Inserts or overwrites. `key`/`value` must be key_size/value_size bytes.
  int put(const void* key, const void* value);

  /// Looks `key` up; on kOk copies value_size bytes into `value_out`.
  int get(const void* key, void* value_out);

  const Options& options() const noexcept { return opts_; }

  /// Hash-table pages currently chained in the file.
  std::uint64_t pages() const noexcept { return tables_.size(); }

  /// djb2-style hash used by the original kissdb.
  static std::uint64_t hash(const void* bytes, std::size_t len) noexcept;

 private:
  struct TablePage {
    std::uint64_t file_offset = 0;          ///< where the page lives on disk
    std::vector<std::uint64_t> slots;       ///< hash_table_size + 1 entries
  };

  int read_header();
  int write_header();
  int load_tables();
  int append_table_with(std::uint64_t slot_index, const void* key,
                        const void* value);
  std::size_t page_bytes() const noexcept {
    return static_cast<std::size_t>(opts_.hash_table_size + 1) *
           sizeof(std::uint64_t);
  }

  EnclaveLibc* libc_ = nullptr;
  TFile file_;
  Options opts_;
  std::vector<TablePage> tables_;
};

}  // namespace zc::app
