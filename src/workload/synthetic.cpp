#include "workload/synthetic.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <numeric>
#include <random>
#include <thread>

#include "common/cpu_meter.hpp"
#include "common/cycles.hpp"
#include "common/pin.hpp"
#include "core/zc_async.hpp"
#include "workload/harness.hpp"

namespace zc::workload {
namespace {

void f_handler(MarshalledCall&) {
  // void f(void) {}
}

void g_handler(MarshalledCall& call) {
  const auto* args = static_cast<const GArgs*>(call.args);
  pause_n(args->pauses);
}

}  // namespace

SyntheticOcalls register_synthetic_ocalls(OcallTable& table) {
  SyntheticOcalls ids;
  ids.f_a = table.register_fn("f", f_handler);
  ids.f_b = table.register_fn("f#alias", f_handler);
  ids.g_a = table.register_fn("g", g_handler);
  ids.g_b = table.register_fn("g#alias", g_handler);
  return ids;
}

const char* to_string(CallerSkew skew) noexcept {
  switch (skew) {
    case CallerSkew::kUniform:
      return "uniform";
    case CallerSkew::kZipf:
      return "zipf";
  }
  return "?";
}

std::uint64_t zipf_g_pauses(std::uint64_t g_pauses, unsigned thread,
                            unsigned threads) noexcept {
  if (threads == 0) return g_pauses;
  return g_pauses * threads / (thread + 1);
}

std::vector<unsigned> zipf_rank_permutation(unsigned threads,
                                            std::uint64_t seed) {
  std::vector<unsigned> ranks(threads);
  std::iota(ranks.begin(), ranks.end(), 0u);
  std::mt19937_64 rng(seed);
  std::shuffle(ranks.begin(), ranks.end(), rng);
  return ranks;
}

const char* to_string(SynthConfig c) noexcept {
  switch (c) {
    case SynthConfig::kC1:
      return "C1";
    case SynthConfig::kC2:
      return "C2";
    case SynthConfig::kC3:
      return "C3";
    case SynthConfig::kC4:
      return "C4";
    case SynthConfig::kC5:
      return "C5";
  }
  return "?";
}

std::vector<std::uint32_t> intel_switchless_set(SynthConfig config,
                                                const SyntheticOcalls& ids) {
  switch (config) {
    case SynthConfig::kC1:
      return {ids.f_a, ids.f_b};
    case SynthConfig::kC2:
      return {ids.g_a, ids.g_b};
    case SynthConfig::kC3:
      return {ids.f_a, ids.g_a};  // the alias ids stay regular
    case SynthConfig::kC4:
      return {ids.f_a, ids.f_b, ids.g_a, ids.g_b};
    case SynthConfig::kC5:
      return {};
  }
  return {};
}

std::string intel_mode_spec(SynthConfig config, unsigned workers) {
  std::string sl;
  switch (config) {
    case SynthConfig::kC1:
      sl = "f,f#alias";
      break;
    case SynthConfig::kC2:
      sl = "g,g#alias";
      break;
    case SynthConfig::kC3:
      sl = "f,g";  // the alias ids stay regular
      break;
    case SynthConfig::kC4:
      sl = "all";
      break;
    case SynthConfig::kC5:
      break;  // everything regular
  }
  std::string spec = "intel:";
  if (!sl.empty()) spec += "sl=" + sl + ";";
  return spec + "workers=" + std::to_string(workers);
}

SyntheticResult run_synthetic(Enclave& enclave, const SyntheticOcalls& ids,
                              const SyntheticRunConfig& run) {
  const unsigned threads = run.enclave_threads == 0 ? 1 : run.enclave_threads;
  const std::uint64_t per_thread = run.total_calls / threads;

  // Resolve the run's effective seed: an explicit --seed pins every
  // randomized choice; the default draws fresh entropy, and the resolved
  // value is reported so any run can be replayed exactly.
  std::uint64_t seed = run.seed;
  if (seed == 0) {
    std::random_device rd;
    seed = (static_cast<std::uint64_t>(rd()) << 32 | rd()) | 1;
  }
  const std::vector<unsigned> zipf_ranks =
      run.skew == CallerSkew::kZipf ? zipf_rank_permutation(threads, seed)
                                    : std::vector<unsigned>();

  const BackendStats& stats = enclave.backend().stats();
  const std::uint64_t sl0 = stats.switchless_calls.load();
  const std::uint64_t fb0 = stats.fallback_calls.load();
  const std::uint64_t rg0 = stats.regular_calls.load();

  std::atomic<std::uint64_t> f_calls{0};
  std::atomic<std::uint64_t> g_calls{0};
  std::barrier sync(static_cast<std::ptrdiff_t>(threads) + 1);

  std::vector<std::jthread> callers;
  callers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    callers.emplace_back([&, t] {
      const SimConfig& sim = enclave.config();
      if (sim.pin_threads) {
        pin_current_thread_to_window(sim.pin_base_cpu, sim.logical_cpus);
      }
      // Per-caller g duration: uniform, or zipf-ranked through the seeded
      // permutation (which thread is heavy is a per-seed choice).
      const std::uint64_t g_pauses =
          run.skew == CallerSkew::kZipf
              ? zipf_g_pauses(run.g_pauses, zipf_ranks[t], threads)
              : run.g_pauses;
      sync.arrive_and_wait();  // start line
      // One ecall to "enter the enclave", then issue the ocall mix.
      enclave.ecall([&] {
        std::uint64_t local_f = 0;
        std::uint64_t local_g = 0;
        // Pipelined mode: keep up to `pipeline` submitted futures in
        // flight, collecting the oldest before reusing its args slot.
        ZcAsyncBackend* async =
            run.pipeline > 1 ? async_plane(enclave) : nullptr;
        const unsigned depth = async != nullptr ? run.pipeline : 1;
        struct InFlight {
          FArgs f;
          GArgs g;
          CallFuture future;
        };
        std::vector<InFlight> window(depth);
        for (std::uint64_t k = 0; k < per_thread; ++k) {
          const bool is_g = (k % 4) == 3;  // pattern f,f,f,g  (α = 3β)
          const bool alias = run.config == SynthConfig::kC3 && (k & 4) != 0;
          if (async == nullptr) {
            if (is_g) {
              GArgs args;
              args.pauses = g_pauses;
              enclave.ocall(alias ? ids.g_b : ids.g_a, args);
              ++local_g;
            } else {
              FArgs args;
              enclave.ocall(alias ? ids.f_b : ids.f_a, args);
              ++local_f;
            }
            continue;
          }
          InFlight& ring = window[k % depth];
          ring.future.wait();  // no-op on an invalid (fresh) future
          CallDesc desc;
          if (is_g) {
            ring.g.pauses = g_pauses;
            desc.fn_id = alias ? ids.g_b : ids.g_a;
            desc.args = &ring.g;
            desc.args_size = sizeof(ring.g);
            ++local_g;
          } else {
            desc.fn_id = alias ? ids.f_b : ids.f_a;
            desc.args = &ring.f;
            desc.args_size = sizeof(ring.f);
            ++local_f;
          }
          ring.future = async->submit(desc);
        }
        for (InFlight& ring : window) ring.future.wait();
        f_calls.fetch_add(local_f, std::memory_order_relaxed);
        g_calls.fetch_add(local_g, std::memory_order_relaxed);
        return 0;
      });
      sync.arrive_and_wait();  // finish line
      (void)t;
    });
  }

  sync.arrive_and_wait();
  const std::uint64_t t0 = wall_ns();
  sync.arrive_and_wait();
  const std::uint64_t t1 = wall_ns();
  callers.clear();

  SyntheticResult result;
  result.seconds = static_cast<double>(t1 - t0) * 1e-9;
  result.f_calls = f_calls.load();
  result.g_calls = g_calls.load();
  result.switchless = stats.switchless_calls.load() - sl0;
  result.fallbacks = stats.fallback_calls.load() - fb0;
  result.regular = stats.regular_calls.load() - rg0;
  result.seed = seed;
  return result;
}

}  // namespace zc::workload
