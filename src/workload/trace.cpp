#include "workload/trace.hpp"

#include <fstream>
#include <ostream>
#include <set>

namespace zc::workload {

namespace {

// Little-endian primitive writers/readers.  The codec never memcpy's whole
// structs, so padding and host endianness can't leak into the format.
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint32_t u32(const char* what) {
    need(4, what);
    const std::uint8_t* p = data_ + pos_;
    pos_ += 4;
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
  }

  std::uint64_t u64(const char* what) {
    const std::uint64_t lo = u32(what);
    const std::uint64_t hi = u32(what);
    return lo | hi << 32;
  }

  std::string bytes(std::size_t n, const char* what) {
    need(n, what);
    std::string out(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return out;
  }

  std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  void need(std::size_t n, const char* what) {
    if (size_ - pos_ < n) {
      throw TraceError(std::string("trace file truncated while reading ") +
                       what + " (need " + std::to_string(n) + " bytes, " +
                       std::to_string(size_ - pos_) + " left)");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

std::uint64_t trace_fnv1a(const void* data, std::size_t n,
                          std::uint64_t seed) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint32_t Trace::intern(std::string_view name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<std::uint32_t>(i);
  }
  names.emplace_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

std::uint64_t Trace::duration_ns() const noexcept {
  return records.empty() ? 0 : records.back().vtime_ns;
}

unsigned Trace::caller_count() const {
  std::set<std::uint32_t> callers;
  for (const TraceRecord& r : records) callers.insert(r.caller);
  return static_cast<unsigned>(callers.size());
}

std::uint64_t Trace::digest() const noexcept {
  // Digesting the canonical encoding makes "same digest" and "same bytes
  // on disk" the same statement — what the golden-trace suite pins.
  const std::vector<std::uint8_t> bytes = encode();
  return trace_fnv1a(bytes.data(), bytes.size());
}

// Layout (all little-endian):
//   header (32 bytes): magic u32, version u32, name_count u32, reserved u32,
//                      record_count u64, seed u64
//   name table: per name u32 length + raw bytes
//   records (40 bytes each): vtime_ns u64, work_ns u64, caller u32,
//                            name_idx u32, args_size u32, in_size u32,
//                            out_size u32, direction u8, pad u8[3]
std::vector<std::uint8_t> Trace::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(kTraceHeaderBytes + records.size() * kTraceRecordBytes);
  put_u32(out, kTraceMagic);
  put_u32(out, kTraceVersion);
  put_u32(out, static_cast<std::uint32_t>(names.size()));
  put_u32(out, 0);
  put_u64(out, records.size());
  put_u64(out, seed);
  for (const std::string& name : names) {
    put_u32(out, static_cast<std::uint32_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
  }
  for (const TraceRecord& r : records) {
    put_u64(out, r.vtime_ns);
    put_u64(out, r.work_ns);
    put_u32(out, r.caller);
    put_u32(out, r.name_idx);
    put_u32(out, r.args_size);
    put_u32(out, r.in_size);
    put_u32(out, r.out_size);
    out.push_back(r.direction == CallDirection::kEcall ? 1 : 0);
    out.push_back(0);
    out.push_back(0);
    out.push_back(0);
  }
  return out;
}

Trace Trace::decode(const void* data, std::size_t size) {
  Reader in(static_cast<const std::uint8_t*>(data), size);
  const std::uint32_t magic = in.u32("the header magic");
  if (magic != kTraceMagic) {
    throw TraceError("not a ZC trace file (bad magic)");
  }
  const std::uint32_t version = in.u32("the format version");
  if (version == 0 || version > kTraceVersion) {
    throw TraceError("trace format version " + std::to_string(version) +
                     " is not supported by this build (it reads versions 1.." +
                     std::to_string(kTraceVersion) +
                     "); re-record the trace or upgrade");
  }
  const std::uint32_t name_count = in.u32("the name count");
  in.u32("the reserved header field");
  const std::uint64_t record_count = in.u64("the record count");
  Trace trace;
  trace.seed = in.u64("the synthesizer seed");
  trace.names.reserve(name_count);
  for (std::uint32_t i = 0; i < name_count; ++i) {
    const std::uint32_t len = in.u32("a name length");
    trace.names.push_back(in.bytes(len, "a call name"));
  }
  if (record_count > in.remaining() / kTraceRecordBytes) {
    throw TraceError("trace file truncated: header promises " +
                     std::to_string(record_count) + " records but only " +
                     std::to_string(in.remaining() / kTraceRecordBytes) +
                     " fit in the remaining bytes");
  }
  trace.records.reserve(record_count);
  for (std::uint64_t i = 0; i < record_count; ++i) {
    TraceRecord r;
    r.vtime_ns = in.u64("a record");
    r.work_ns = in.u64("a record");
    r.caller = in.u32("a record");
    r.name_idx = in.u32("a record");
    if (r.name_idx >= trace.names.size()) {
      throw TraceError("trace record " + std::to_string(i) +
                       " names call #" + std::to_string(r.name_idx) +
                       " but the name table has only " +
                       std::to_string(trace.names.size()) + " entries");
    }
    r.args_size = in.u32("a record");
    r.in_size = in.u32("a record");
    r.out_size = in.u32("a record");
    const std::string dir = in.bytes(4, "a record");
    const auto d = static_cast<unsigned char>(dir[0]);
    if (d > 1) {
      throw TraceError("trace record " + std::to_string(i) +
                       " has an unknown call direction");
    }
    r.direction = d == 1 ? CallDirection::kEcall : CallDirection::kOcall;
    trace.records.push_back(r);
  }
  return trace;
}

void Trace::save(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = encode();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw TraceError("cannot open trace file '" + path + "' to write");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw TraceError("short write to trace file '" + path + "'");
}

Trace Trace::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceError("cannot open trace file '" + path + "'");
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  return decode(bytes.data(), bytes.size());
}

void Trace::export_jsonl(std::ostream& out) const {
  out << "{\"trace\":\"header\",\"version\":" << kTraceVersion
      << ",\"seed\":" << seed << ",\"records\":" << records.size()
      << ",\"callers\":" << caller_count() << ",\"duration_ns\":"
      << duration_ns() << ",\"digest\":" << digest() << "}\n";
  for (const TraceRecord& r : records) {
    out << "{\"name\":\"" << names[r.name_idx] << "\",\"direction\":\""
        << to_string(r.direction) << "\",\"caller\":" << r.caller
        << ",\"vtime_ns\":" << r.vtime_ns << ",\"work_ns\":" << r.work_ns
        << ",\"args_size\":" << r.args_size << ",\"in_size\":" << r.in_size
        << ",\"out_size\":" << r.out_size << "}\n";
  }
}

}  // namespace zc::workload
