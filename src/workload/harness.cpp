#include "workload/harness.hpp"

#include "common/pin.hpp"
#include "core/zc_async.hpp"

namespace zc::workload {

ModeSpec ModeSpec::parse(std::string spec_text, std::string label) {
  BackendRegistry::instance().validate(spec_text);
  ModeSpec mode;
  mode.label = label.empty() ? spec_text : std::move(label);
  mode.spec = std::move(spec_text);
  return mode;
}

ModeSpec ModeSpec::intel(std::string label,
                         const std::vector<std::string>& switchless,
                         unsigned workers) {
  std::string spec = "intel:";
  if (!switchless.empty()) {
    spec += "sl=";
    for (std::size_t i = 0; i < switchless.size(); ++i) {
      if (i != 0) spec += ',';
      spec += switchless[i];
    }
    spec += ';';
  }
  spec += "workers=" + std::to_string(workers);
  ModeSpec mode;
  mode.label = std::move(label);
  mode.spec = std::move(spec);
  return mode;
}

ModeSpec ModeSpec::zc_mode(std::string options) {
  ModeSpec mode;
  mode.label = "zc";
  mode.spec = options.empty() ? "zc" : "zc:" + std::move(options);
  return mode;
}

ModeSpec ModeSpec::hotcalls(unsigned workers) {
  ModeSpec mode;
  mode.label = "hotcalls-" + std::to_string(workers);
  mode.spec = "hotcalls:workers=" + std::to_string(workers);
  return mode;
}

void install_backend(Enclave& enclave, const ModeSpec& spec,
                     CpuUsageMeter* meter) {
  // Shares the registry's direction-aware routing: direction=ecall modes
  // install on the trusted-function plane.
  install_backend_spec(enclave, spec.spec, meter);
}

ZcAsyncBackend* async_plane(Enclave& enclave, CallDirection direction) {
  CallBackend& backend = direction == CallDirection::kOcall
                             ? enclave.backend()
                             : enclave.ecall_backend();
  return dynamic_cast<ZcAsyncBackend*>(&backend);
}

SimThreadScope::SimThreadScope(const Enclave& enclave, CpuUsageMeter* meter)
    : meter_(meter) {
  const SimConfig& sim = enclave.config();
  if (sim.pin_threads) {
    pin_current_thread_to_window(sim.pin_base_cpu, sim.logical_cpus);
  }
  if (meter_ != nullptr) slot_ = meter_->register_current_thread();
}

SimThreadScope::~SimThreadScope() {
  if (meter_ != nullptr) meter_->unregister_current_thread(slot_);
}

void SimThreadScope::checkpoint() noexcept {
  if (meter_ != nullptr) meter_->checkpoint(slot_);
}

}  // namespace zc::workload
