#include "workload/harness.hpp"

#include "common/pin.hpp"

namespace zc::workload {

void install_backend(Enclave& enclave, const ModeSpec& spec,
                     CpuUsageMeter* meter) {
  switch (spec.mode) {
    case Mode::kNoSl: {
      enclave.set_backend(std::make_unique<RegularBackend>(enclave));
      break;
    }
    case Mode::kIntel: {
      intel::IntelSlConfig cfg;
      cfg.num_workers = spec.intel_workers;
      cfg.retries_before_fallback = spec.intel_rbf;
      cfg.retries_before_sleep = spec.intel_rbs;
      cfg.switchless_fns.insert(spec.intel_switchless.begin(),
                                spec.intel_switchless.end());
      cfg.meter = meter;
      enclave.set_backend(intel::make_intel_backend(enclave, cfg));
      break;
    }
    case Mode::kZc: {
      ZcConfig cfg = spec.zc;
      cfg.meter = meter;
      enclave.set_backend(make_zc_backend(enclave, cfg));
      break;
    }
  }
}

SimThreadScope::SimThreadScope(const Enclave& enclave, CpuUsageMeter* meter)
    : meter_(meter) {
  const SimConfig& sim = enclave.config();
  if (sim.pin_threads) {
    pin_current_thread_to_window(sim.pin_base_cpu, sim.logical_cpus);
  }
  if (meter_ != nullptr) slot_ = meter_->register_current_thread();
}

SimThreadScope::~SimThreadScope() {
  if (meter_ != nullptr) meter_->unregister_current_thread(slot_);
}

void SimThreadScope::checkpoint() noexcept {
  if (meter_ != nullptr) meter_->checkpoint(slot_);
}

}  // namespace zc::workload
