// Call-trace capture: the record half of the record/replay plane.
//
// A Trace is a compact, versioned, byte-stable description of one run's
// boundary traffic: for every ocall/ecall the call name, direction, caller
// id, virtual arrival timestamp, payload sizes and an in-call duration
// hint.  Traces come from two sources — a TraceRecorder tapping a live
// CallBackend (see core/recording_backend.hpp and the `record:` registry
// family) or the phased synthesizers (workload/phased.hpp) — and feed the
// ReplayDriver (workload/replay.hpp), which turns identical captured
// traffic into a deterministic differential-testing primitive over every
// `--backend=SPEC` in the registry.
//
// The binary format is explicit little-endian (portable across the gcc and
// clang CI hosts), starts with a magic/version header so foreign or future
// files are rejected in the user's terms, and round-trips byte-for-byte
// through encode()/decode().  A JSONL export keeps traces greppable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sgx/backend.hpp"

namespace zc::workload {

/// Thrown for unreadable trace files: wrong magic, newer format version,
/// truncation, or out-of-range indices.  The message says which.
class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One captured boundary call.  `name_idx` points into Trace::names — call
/// names are interned so a million-record trace stores each name once.
struct TraceRecord {
  std::uint64_t vtime_ns = 0;  ///< virtual arrival time since trace start
  std::uint64_t work_ns = 0;   ///< in-call duration hint (g-duration)
  std::uint32_t caller = 0;    ///< dense caller id (thread / simulated user)
  std::uint32_t name_idx = 0;  ///< into Trace::names
  std::uint32_t args_size = 0;
  std::uint32_t in_size = 0;   ///< [in] payload bytes (trusted -> untrusted)
  std::uint32_t out_size = 0;  ///< [out] payload bytes (untrusted -> trusted)
  CallDirection direction = CallDirection::kOcall;

  bool operator==(const TraceRecord&) const = default;
};

/// A full captured or synthesized workload.
struct Trace {
  /// Synthesizer seed (0 for traces recorded from a live run).  Carried in
  /// the header so a synthesized trace documents its own provenance.
  std::uint64_t seed = 0;
  std::vector<std::string> names;
  std::vector<TraceRecord> records;

  /// Index of `name` in `names`, interning it on first use.
  std::uint32_t intern(std::string_view name);

  /// Virtual span of the trace: the last record's arrival time (records
  /// are kept in arrival order by both the recorder and the synthesizers).
  std::uint64_t duration_ns() const noexcept;

  /// Number of distinct caller ids.
  unsigned caller_count() const;

  /// Deterministic content digest (names + seed + every record field).
  /// Two traces with equal digests carry the same workload; the golden
  /// trace's digest is pinned by the replay-equivalence suite.
  std::uint64_t digest() const noexcept;

  // --- Versioned binary codec ----------------------------------------------

  /// Serializes to the explicit little-endian format (see trace.cpp for
  /// the layout).  decode(encode()) round-trips to an equal Trace, and
  /// encode(decode(bytes)) reproduces `bytes` exactly.
  std::vector<std::uint8_t> encode() const;

  /// Parses an encoded trace; throws TraceError on bad magic, a version
  /// newer than kTraceVersion, truncation, or dangling name indices.
  static Trace decode(const void* data, std::size_t size);

  /// File convenience wrappers around encode()/decode(); TraceError on IO.
  void save(const std::string& path) const;
  static Trace load(const std::string& path);

  /// One JSON object per record (plus a header line), for offline tooling.
  void export_jsonl(std::ostream& out) const;

  bool operator==(const Trace&) const = default;
};

/// Format constants, exposed for the codec tests.
inline constexpr std::uint32_t kTraceMagic = 0x52544353u;  ///< "SCTR" LE
inline constexpr std::uint32_t kTraceVersion = 1;
inline constexpr std::size_t kTraceHeaderBytes = 32;
inline constexpr std::size_t kTraceRecordBytes = 40;

/// FNV-1a over `n` bytes — the digest primitive shared by the trace
/// content digest and the replay result digest.
std::uint64_t trace_fnv1a(const void* data, std::size_t n,
                          std::uint64_t seed = 1469598103934665603ull) noexcept;

}  // namespace zc::workload
