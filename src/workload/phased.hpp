// Dynamic-workload generator (paper §V-C) and production-shaped trace
// synthesizers.
//
// The lmbench dynamic benchmark divides its runtime into three equal phases:
//   (1) increasing frequency — the number of operations per period τ doubles
//       every τ;
//   (2) constant frequency — held at the phase-1 peak;
//   (3) decreasing frequency — halved every τ.
// This models the load the ZC scheduler must adapt to.
//
// The synthesize_* functions below turn shaped arrival-rate curves into
// workload::Trace objects (non-homogeneous Poisson arrivals, sampled by
// thinning from a seeded mt19937_64), so the replay driver can subject any
// backend spec to diurnal load, burst storms, caller churn or the paper's
// phased curve without a live recording.  Same seed → same trace, byte for
// byte — which is how the golden trace under tests/data/ was made.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/trace.hpp"

namespace zc::workload {

struct PhasedPlan {
  /// Period τ between frequency changes (paper: 0.5 s).
  double tau_seconds = 0.5;
  /// Total run time (paper: 60 s — 20 s per phase).
  double total_seconds = 60.0;
  /// Operations in the first period of phase 1.
  std::uint64_t initial_ops = 1'000;

  /// Number of τ periods in the whole plan (rounded to the nearest period).
  std::uint64_t periods() const noexcept {
    return periods_impl(total_seconds, tau_seconds);
  }

  static std::uint64_t periods_impl(double total, double tau) noexcept;

  /// Target operation count for period `p` (0-based), following the
  /// increase/steady/decrease schedule.
  std::uint64_t ops_for_period(std::uint64_t p) const noexcept;

  /// Peak per-period operation count (end of phase 1).
  std::uint64_t peak_ops() const noexcept;

  /// Full schedule as a vector (one entry per period).
  std::vector<std::uint64_t> schedule() const;
};

/// Shared knobs for the trace synthesizers.  Every derived quantity —
/// arrival times, caller assignment, per-call work/size jitter — comes from
/// one mt19937_64 seeded with `seed`, so a config fully determines the
/// trace (the seed is stored in the trace header as provenance).
struct SynthesizerConfig {
  std::uint64_t seed = 1;
  /// Virtual length of the trace, in milliseconds of trace time (replay
  /// compresses or stretches it via ReplayConfig::time_scale).
  double duration_ms = 50.0;
  /// Mean arrival rate of the *baseline* (calls per virtual second); the
  /// shape functions modulate around it.
  double base_rate_hz = 20'000.0;
  /// Concurrent simulated callers arrivals are spread over.
  unsigned callers = 8;
  /// Mean per-call work hint; jittered ±50% per record.
  std::uint32_t work_ns = 2'000;
  /// Payload sizes; ~5% of calls are 8× "large" transfers.
  std::uint32_t in_size = 64;
  std::uint32_t out_size = 64;
  /// Call names, interned into the trace and assigned uniformly.
  std::vector<std::string> names = {"synthetic_g"};
};

/// Sinusoidal day curve: the rate rises from `trough_fraction` × base to
/// base at mid-trace and back.  One virtual "day" per trace.
Trace synthesize_diurnal(const SynthesizerConfig& cfg,
                         double trough_fraction = 0.2);

/// Baseline traffic with `bursts` evenly spaced storm windows during which
/// the rate is `burst_multiplier` × base; each window spans `duty` of its
/// slot.  The open-loop collapse regression replays this against a plane
/// sized below the storm rate.
Trace synthesize_burst_storm(const SynthesizerConfig& cfg,
                             unsigned bursts = 4,
                             double burst_multiplier = 20.0,
                             double duty = 0.1);

/// Constant rate, churning caller population: the caller set is replaced
/// `generations` times over the trace (ids never reuse), so affinity-keyed
/// policies see arrivals from callers they have never met.
Trace synthesize_caller_churn(const SynthesizerConfig& cfg,
                              unsigned generations = 4);

/// The paper's §V-C double/hold/halve curve as a trace: period p of `plan`
/// contributes ops_for_period(p) expected arrivals, mapped onto
/// cfg.duration_ms.  cfg.base_rate_hz is ignored (the plan sets the rate).
Trace synthesize_phased(const PhasedPlan& plan, const SynthesizerConfig& cfg);

}  // namespace zc::workload
