// Dynamic-workload generator (paper §V-C).
//
// The lmbench dynamic benchmark divides its runtime into three equal phases:
//   (1) increasing frequency — the number of operations per period τ doubles
//       every τ;
//   (2) constant frequency — held at the phase-1 peak;
//   (3) decreasing frequency — halved every τ.
// This models the load the ZC scheduler must adapt to.
#pragma once

#include <cstdint>
#include <vector>

namespace zc::workload {

struct PhasedPlan {
  /// Period τ between frequency changes (paper: 0.5 s).
  double tau_seconds = 0.5;
  /// Total run time (paper: 60 s — 20 s per phase).
  double total_seconds = 60.0;
  /// Operations in the first period of phase 1.
  std::uint64_t initial_ops = 1'000;

  /// Number of τ periods in the whole plan (rounded to the nearest period).
  std::uint64_t periods() const noexcept {
    return periods_impl(total_seconds, tau_seconds);
  }

  static std::uint64_t periods_impl(double total, double tau) noexcept;

  /// Target operation count for period `p` (0-based), following the
  /// increase/steady/decrease schedule.
  std::uint64_t ops_for_period(std::uint64_t p) const noexcept;

  /// Peak per-period operation count (end of phase 1).
  std::uint64_t peak_ops() const noexcept;

  /// Full schedule as a vector (one entry per period).
  std::vector<std::uint64_t> schedule() const;
};

}  // namespace zc::workload
