#include "workload/replay.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cpu_meter.hpp"  // wall_ns
#include "common/cycles.hpp"
#include "common/stats.hpp"
#include "core/backend_registry.hpp"
#include "sgx/enclave.hpp"

namespace zc::workload {

namespace {

// Argument block carried by every replayed call.  The recorded args_size is
// not reproduced — replay needs its own slots for the deterministic
// transform — but payload sizes, work hints and caller structure are.
struct ReplayArgs {
  std::uint64_t seq = 0;          ///< record index (provenance)
  std::uint64_t value = 0;        ///< per-record stream seed
  std::uint64_t work_pauses = 0;  ///< in-call work for the handler
  std::uint64_t in_size = 0;      ///< valid [in] bytes in the payload
  std::uint64_t echoed = 0;       ///< handler: value * K + 1
  std::uint64_t in_sum = 0;       ///< handler: FNV over the [in] bytes
};
static_assert(std::is_standard_layout_v<ReplayArgs>);

constexpr std::uint64_t kInSalt = 0x1c5f'0d1e'5eed'0001ull;
constexpr std::uint64_t kOutSalt = 0x1c5f'0d1e'5eed'0002ull;

/// Bounds per-call in-handler work so a corrupt work_ns field (or an
/// extreme work_scale) degrades into a slow run, not a wedged test.
constexpr std::uint64_t kMaxWorkPausesPerCall = 1'000'000;

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Fills `n` bytes from the splitmix64 stream seeded with `seed`.  Content
/// depends only on the seed, so both sides of a call can predict it.
void fill_stream(void* dst, std::size_t n, std::uint64_t seed) noexcept {
  auto* out = static_cast<std::uint8_t*>(dst);
  std::uint64_t state = seed;
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t word = splitmix64(state);
    for (unsigned b = 0; b < 8 && i < n; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
}

/// The one untrusted/trusted handler every trace name maps to.  Pure in
/// (args, [in] payload): reads the valid [in] bytes, burns the work hint,
/// then overwrites the whole payload from a stream keyed by args->value —
/// so the [out] bytes the caller gets back are deterministic even though
/// the frame's tail bytes (between in_size and capacity) are garbage.
void replay_handler(MarshalledCall& call) {
  auto* args = static_cast<ReplayArgs*>(call.args);
  const std::size_t in_n =
      std::min<std::size_t>(args->in_size, call.payload_size);
  args->in_sum = trace_fnv1a(call.payload, in_n);
  args->echoed = args->value * 2654435761ull + 1;
  if (args->work_pauses != 0) pause_n(args->work_pauses);
  fill_stream(call.payload, call.payload_size, args->value ^ kOutSalt);
}

/// Issues record `idx` and returns its digest contribution.  The scratch
/// buffers are caller-owned so a replay thread reuses one pair across its
/// whole schedule.
std::uint64_t issue_record(Enclave& enclave, CallDirection direction,
                           std::uint32_t fn_id, const TraceRecord& rec,
                           std::uint64_t seed, std::uint64_t idx,
                           std::uint64_t work_pauses,
                           std::vector<std::uint8_t>& in_buf,
                           std::vector<std::uint8_t>& out_buf) {
  ReplayArgs args;
  args.seq = idx;
  std::uint64_t state = seed ^ (idx + 1) * 0xA076'1D64'78BD'642Full;
  args.value = splitmix64(state);
  args.in_size = rec.in_size;
  args.work_pauses = work_pauses;

  in_buf.resize(rec.in_size);
  if (rec.in_size != 0) {
    fill_stream(in_buf.data(), in_buf.size(), args.value ^ kInSalt);
  }
  out_buf.assign(rec.out_size, 0);

  CallDesc desc;
  desc.fn_id = fn_id;
  desc.args = &args;
  desc.args_size = sizeof(args);
  if (rec.in_size != 0) {
    desc.in_payload = in_buf.data();
    desc.in_size = rec.in_size;
  }
  if (rec.out_size != 0) {
    desc.out_payload = out_buf.data();
    desc.out_size = rec.out_size;
  }
  if (direction == CallDirection::kEcall) {
    enclave.ecall_fn(desc);
  } else {
    enclave.ocall(desc);
  }

  // Order-independent: each record's chain is summed, never chained across
  // records, so any thread interleaving yields the same total.
  std::uint64_t h = trace_fnv1a(&args.echoed, sizeof(args.echoed));
  h = trace_fnv1a(&args.in_sum, sizeof(args.in_sum), h);
  h = trace_fnv1a(out_buf.data(), out_buf.size(), h);
  return h;
}

void append_u64(std::string& out, const char* key, std::uint64_t v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_double(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += ",\"";
  out += key;
  out += "\":";
  out += buf;
}

}  // namespace

const char* to_string(ReplayMode mode) noexcept {
  return mode == ReplayMode::kOpenLoop ? "open_loop" : "closed_loop";
}

std::string ReplayResult::deterministic_json() const {
  std::string out = "{\"figure\":\"replay\",\"backend\":\"" + spec +
                    "\",\"mode\":\"" + mode + "\"";
  append_u64(out, "seed", seed);
  append_double(out, "work_scale", work_scale);
  append_double(out, "time_scale", time_scale);
  append_u64(out, "callers", callers);
  append_u64(out, "threads", threads);
  append_u64(out, "calls", calls);
  append_u64(out, "bytes_in", bytes_in);
  append_u64(out, "bytes_out", bytes_out);
  append_u64(out, "trace_digest", trace_digest);
  append_u64(out, "result_digest", result_digest);
  out += "}";
  return out;
}

std::string ReplayResult::json() const {
  std::string out = deterministic_json();
  out.pop_back();  // strip the closing brace, append the wall-clock fields
  append_double(out, "seconds", seconds);
  append_double(out, "p50_us", p50_us);
  append_double(out, "p99_us", p99_us);
  append_double(out, "p999_us", p999_us);
  append_u64(out, "late_calls", late_calls);
  append_double(out, "max_late_us", max_late_us);
  append_u64(out, "switchless", switchless);
  append_u64(out, "fallbacks", fallbacks);
  append_u64(out, "regular", regular);
  append_u64(out, "steals", steals);
  append_u64(out, "wake_batches", wake_batches);
  out += "}";
  return out;
}

ReplayResult replay_trace(const Trace& trace, const ReplayConfig& cfg) {
  if (trace.records.empty()) {
    throw TraceError("cannot replay an empty trace (no records)");
  }
  const BackendSpec spec = BackendSpec::parse(cfg.backend_spec);
  BackendRegistry::instance().validate(cfg.backend_spec);
  const CallDirection direction = spec_direction(spec);

  std::unique_ptr<Enclave> enclave = Enclave::create(cfg.sim);
  OcallTable& table = direction == CallDirection::kOcall ? enclave->ocalls()
                                                         : enclave->ecalls();
  std::vector<std::uint32_t> fn_ids;
  fn_ids.reserve(trace.names.size());
  for (const std::string& name : trace.names) {
    fn_ids.push_back(table.register_fn(name, replay_handler));
  }
  // Register before installing: name-resolving specs (intel sl=...) look
  // the functions up at build time.
  install_backend_spec(*enclave, cfg.backend_spec);
  CallBackend& backend = direction == CallDirection::kOcall
                             ? enclave->backend()
                             : enclave->ecall_backend();

  const std::size_t n = trace.records.size();

  // Dense caller ranks in first-appearance order (recorder ids are already
  // dense, but synthesized/hand-built traces need not be).
  std::unordered_map<std::uint32_t, std::uint32_t> caller_rank;
  caller_rank.reserve(64);
  std::vector<std::uint32_t> rank_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto [it, inserted] = caller_rank.try_emplace(
        trace.records[i].caller, static_cast<std::uint32_t>(caller_rank.size()));
    rank_of[i] = it->second;
  }
  const unsigned callers = static_cast<unsigned>(caller_rank.size());

  unsigned threads = cfg.threads;
  if (threads == 0) {
    threads = cfg.mode == ReplayMode::kOpenLoop
                  ? std::min(8u, std::max(2u, callers))
                  : std::min(8u, callers);
  }
  threads = std::clamp(threads, 1u, 256u);

  // Per-record in-call work, converted from the recorded wall hint to the
  // paper's pause-instruction unit once up front.
  const double pause_ns =
      std::max(1.0, cycles_to_ns(measured_pause_cycles()));
  std::vector<std::uint64_t> work_pauses(n, 0);
  if (cfg.work_scale > 0) {
    for (std::size_t i = 0; i < n; ++i) {
      const double p = static_cast<double>(trace.records[i].work_ns) *
                       cfg.work_scale / pause_ns;
      work_pauses[i] = p >= static_cast<double>(kMaxWorkPausesPerCall)
                           ? kMaxWorkPausesPerCall
                           : static_cast<std::uint64_t>(p);
    }
  }

  // Schedule: record indices sorted by (vtime, index).  Closed loop
  // partitions it by caller rank; open loop consumes it as one shared
  // arrival queue.
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return trace.records[a].vtime_ns <
                            trace.records[b].vtime_ns;
                   });

  ReplayResult result;
  result.spec = spec.to_string();
  result.mode = to_string(cfg.mode);
  result.seed = cfg.seed;
  result.work_scale = cfg.work_scale;
  result.time_scale = cfg.time_scale;
  result.callers = callers;
  result.threads = threads;
  result.calls = n;
  result.trace_digest = trace.digest();
  for (const TraceRecord& r : trace.records) {
    result.bytes_in += r.in_size;
    result.bytes_out += r.out_size;
  }

  const BackendStatsSnapshot before = backend.stats_snapshot();

  std::atomic<std::uint64_t> digest{0};
  std::atomic<std::uint64_t> late_calls{0};
  std::atomic<std::uint64_t> max_late_ns{0};
  std::vector<std::vector<double>> sojourn_us(threads);

  // Release gate: workers spin-wait for the epoch so thread spawn cost
  // doesn't show up as open-loop lateness.
  std::promise<std::uint64_t> epoch_promise;
  std::shared_future<std::uint64_t> epoch = epoch_promise.get_future().share();

  std::atomic<std::size_t> next{0};  // open-loop shared claim index
  std::vector<std::thread> pool;
  pool.reserve(threads);
  if (cfg.mode == ReplayMode::kClosedLoop) {
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        std::vector<std::uint8_t> in_buf, out_buf;
        std::vector<double>& samples = sojourn_us[t];
        std::uint64_t local_digest = 0;
        epoch.wait();
        for (const std::uint32_t idx : order) {
          const TraceRecord& rec = trace.records[idx];
          if (rank_of[idx] % threads != t) continue;
          const std::uint64_t t0 = wall_ns();
          local_digest += issue_record(*enclave, direction,
                                       fn_ids[rec.name_idx], rec, cfg.seed,
                                       idx, work_pauses[idx], in_buf, out_buf);
          samples.push_back(static_cast<double>(wall_ns() - t0) * 1e-3);
        }
        digest.fetch_add(local_digest, std::memory_order_relaxed);
      });
    }
  } else {
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        std::vector<std::uint8_t> in_buf, out_buf;
        std::vector<double>& samples = sojourn_us[t];
        std::uint64_t local_digest = 0;
        std::uint64_t local_late = 0;
        std::uint64_t local_max_late = 0;
        const std::uint64_t t_base = epoch.get();
        while (true) {
          const std::size_t slot =
              next.fetch_add(1, std::memory_order_relaxed);
          if (slot >= n) break;
          const std::uint32_t idx = order[slot];
          const TraceRecord& rec = trace.records[idx];
          const std::uint64_t target =
              t_base + static_cast<std::uint64_t>(
                           static_cast<double>(rec.vtime_ns) * cfg.time_scale);
          // Sleep to within timer-slack distance of the release time, then
          // spin the rest: lateness must measure backend backlog, not the
          // kernel's ~50 us sleep overshoot.
          constexpr std::uint64_t kSpinWindowNs = 50'000;
          std::uint64_t now = wall_ns();
          if (now + kSpinWindowNs < target) {
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(target - now - kSpinWindowNs));
            now = wall_ns();
          }
          while (now < target) {
            cpu_pause();
            now = wall_ns();
          }
          const std::uint64_t late = now > target ? now - target : 0;
          if (late > 100'000) ++local_late;  // >100 us past schedule
          local_max_late = std::max(local_max_late, late);
          local_digest += issue_record(*enclave, direction,
                                       fn_ids[rec.name_idx], rec, cfg.seed,
                                       idx, work_pauses[idx], in_buf, out_buf);
          // Sojourn is anchored at the *scheduled* arrival: queueing delay
          // (including a backed-up dispatcher pool) counts against the
          // backend, which is the point of the open loop.
          samples.push_back(static_cast<double>(wall_ns() - target) * 1e-3);
        }
        digest.fetch_add(local_digest, std::memory_order_relaxed);
        late_calls.fetch_add(local_late, std::memory_order_relaxed);
        std::uint64_t seen = max_late_ns.load(std::memory_order_relaxed);
        while (seen < local_max_late &&
               !max_late_ns.compare_exchange_weak(seen, local_max_late,
                                                  std::memory_order_relaxed)) {
        }
      });
    }
  }

  const std::uint64_t t_start = wall_ns();
  epoch_promise.set_value(t_start);
  for (std::thread& th : pool) th.join();
  result.seconds = static_cast<double>(wall_ns() - t_start) * 1e-9;

  result.result_digest = digest.load();
  result.late_calls = late_calls.load();
  result.max_late_us = static_cast<double>(max_late_ns.load()) * 1e-3;

  SampleSeries merged;
  for (const std::vector<double>& s : sojourn_us) {
    for (const double v : s) merged.add(v);
  }
  if (!merged.empty()) {
    result.p50_us = merged.percentile(50.0);
    result.p99_us = merged.percentile(99.0);
    result.p999_us = merged.percentile(99.9);
  }

  const BackendStatsSnapshot after = backend.stats_snapshot();
  result.switchless = after.switchless_calls - before.switchless_calls;
  result.fallbacks = after.fallback_calls - before.fallback_calls;
  result.regular = after.regular_calls - before.regular_calls;
  result.steals = after.steals - before.steals;
  result.wake_batches = after.wake_batches - before.wake_batches;
  return result;
}

}  // namespace zc::workload
