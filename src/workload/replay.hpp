// Trace replay: the Simulator-run-loop half of the record/replay plane.
//
// A ReplayDriver takes a Trace (recorded live via the `record:` registry
// family or synthesized by workload/phased.hpp) and re-issues the same
// calls — same names, same payload sizes, same per-call work hints, same
// caller structure — against *any* backend spec in the registry, in one of
// two load shapes:
//
//   closed loop — each replay thread walks its callers' records
//     back-to-back: a call is issued only after the previous one returned.
//     This is the shape every existing bench/harness has, and it hides
//     queueing collapse by construction (offered load can never exceed
//     completion rate).
//   open loop — calls are released on the trace's *virtual-time* arrival
//     schedule (scaled by time_scale), whether or not earlier calls have
//     finished.  Sojourn = completion minus *scheduled* arrival, so a
//     backend that cannot keep up shows unbounded sojourn growth and
//     late-arrival counts instead of a flattering throughput number.
//     Because arrivals are multiplexed over a bounded dispatcher pool,
//     a 10k-caller trace replays on a 1-CPU host.
//
// Replay is deterministic where it matters: every call's argument block
// and [in] payload are derived from (config seed, record index) alone, the
// handler transform is pure, and the result digest is an order-independent
// sum — so the same (trace, seed) replayed against every backend spec, in
// either mode, with any thread count, must produce the same digest.  That
// turns timing-shaped workloads into the same differential-testing
// primitive the randomized equivalence suite already is.
#pragma once

#include <cstdint>
#include <string>

#include "sgx/sim_config.hpp"
#include "workload/trace.hpp"

namespace zc::workload {

enum class ReplayMode : std::uint8_t {
  kClosedLoop,
  kOpenLoop,
};

const char* to_string(ReplayMode mode) noexcept;

struct ReplayConfig {
  /// Registry spec to replay against.  Specs with direction=ecall replay
  /// the whole trace through the trusted-function plane — the recorded
  /// direction field is provenance, not a routing constraint, so one
  /// golden trace can exercise both planes.
  std::string backend_spec = "no_sl";
  ReplayMode mode = ReplayMode::kClosedLoop;
  /// Open loop: wall nanoseconds per virtual nanosecond.  0.5 replays the
  /// trace at twice its recorded rate; closed loop ignores it.
  double time_scale = 1.0;
  /// Replay threads.  0 = one per trace caller, capped at 8 (closed loop)
  /// or an 8-dispatcher pool (open loop).  Simulated callers beyond the
  /// thread count are multiplexed.
  unsigned threads = 0;
  /// Seed for the deterministic payload/args content streams.  Part of
  /// the workload identity: two replays agree on the digest iff they
  /// agree on (trace, seed).
  std::uint64_t seed = 0x5EEDull;
  /// Scales the per-record work hint (work_ns) before it is converted to
  /// in-call pause instructions; 0 replays the call mix without the
  /// in-call work.
  double work_scale = 1.0;
  /// Simulated machine for the replay enclave.
  SimConfig sim;
};

struct ReplayResult {
  // --- Deterministic fields: identical across reruns, modes, thread
  // counts and (digest/calls) across backend specs ------------------------
  std::string spec;           ///< canonical backend spec
  std::string mode;           ///< closed_loop / open_loop
  std::uint64_t seed = 0;
  double work_scale = 1.0;
  double time_scale = 1.0;
  unsigned callers = 0;       ///< distinct caller ids in the trace
  unsigned threads = 0;       ///< replay threads actually used
  std::uint64_t calls = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t trace_digest = 0;
  std::uint64_t result_digest = 0;

  // --- Wall-clock-shaped fields: vary run to run --------------------------
  double seconds = 0;
  double p50_us = 0;          ///< sojourn percentiles (see header comment)
  double p99_us = 0;
  double p999_us = 0;
  /// Open loop: calls released >100 us past their scheduled arrival, and
  /// the worst lag.  A saturated backend drives both up without bound as
  /// the dispatcher pool itself backs up.
  std::uint64_t late_calls = 0;
  double max_late_us = 0;
  /// Backend counter deltas over the replay window.
  std::uint64_t switchless = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t regular = 0;
  std::uint64_t steals = 0;
  std::uint64_t wake_batches = 0;

  /// JSONL row with only the deterministic fields — byte-identical across
  /// replays of the same (trace, config), which is what the equivalence
  /// suite asserts.
  std::string deterministic_json() const;
  /// Full JSONL row: the deterministic fields plus the wall-clock ones.
  std::string json() const;
};

/// Replays `trace` against `cfg.backend_spec` on a fresh enclave.  Throws
/// BackendSpecError for bad specs and TraceError for an empty trace.
ReplayResult replay_trace(const Trace& trace, const ReplayConfig& cfg);

}  // namespace zc::workload
