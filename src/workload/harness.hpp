// Benchmark-mode harness shared by every macro experiment.
//
// The paper runs every application in three modes: `no_sl` (regular ocalls),
// `i-<fns>-<workers>` (Intel switchless with a static call set and worker
// count), and `zc` (ZC-Switchless).  A ModeSpec captures one such mode, and
// `install_backend` applies it to an enclave, wiring the CPU meter into the
// backend's threads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/cpu_meter.hpp"
#include "core/zc_backend.hpp"
#include "intel_sl/intel_backend.hpp"
#include "sgx/enclave.hpp"

namespace zc::workload {

enum class Mode { kNoSl, kIntel, kZc };

struct ModeSpec {
  std::string label = "no_sl";
  Mode mode = Mode::kNoSl;

  /// Intel mode: static switchless ids and worker count.
  std::vector<std::uint32_t> intel_switchless;
  unsigned intel_workers = 2;
  std::uint32_t intel_rbf = 20'000;  ///< paper keeps the SDK defaults
  std::uint32_t intel_rbs = 20'000;

  /// ZC mode configuration (meter is filled in by install_backend).
  ZcConfig zc;

  static ModeSpec no_sl() { return ModeSpec{}; }

  static ModeSpec intel(std::string label,
                        std::vector<std::uint32_t> switchless,
                        unsigned workers) {
    ModeSpec spec;
    spec.label = std::move(label);
    spec.mode = Mode::kIntel;
    spec.intel_switchless = std::move(switchless);
    spec.intel_workers = workers;
    return spec;
  }

  static ModeSpec zc_mode(ZcConfig cfg = {}) {
    ModeSpec spec;
    spec.label = "zc";
    spec.mode = Mode::kZc;
    spec.zc = cfg;
    return spec;
  }
};

/// Installs (and starts) the backend described by `spec` on `enclave`.
/// `meter`, when given, receives the backend's worker/scheduler threads.
void install_backend(Enclave& enclave, const ModeSpec& spec,
                     CpuUsageMeter* meter = nullptr);

/// RAII helper for simulated-machine caller threads: pins to the machine's
/// CPU window and registers with the meter; checkpoints on destruction.
class SimThreadScope {
 public:
  SimThreadScope(const Enclave& enclave, CpuUsageMeter* meter);
  ~SimThreadScope();
  SimThreadScope(const SimThreadScope&) = delete;
  SimThreadScope& operator=(const SimThreadScope&) = delete;

  /// Publishes the thread's CPU time (call periodically in long loops).
  void checkpoint() noexcept;

 private:
  CpuUsageMeter* meter_;
  std::size_t slot_ = 0;
};

/// One measured run: wall seconds plus simulated-machine CPU usage.
struct Measured {
  double seconds = 0;
  double cpu_percent = 0;
};

/// Runs `body` between meter-window boundaries and reports wall + CPU.
template <typename Fn>
Measured measure(CpuUsageMeter& meter, Fn&& body) {
  meter.begin_window();
  const std::uint64_t t0 = wall_ns();
  body();
  const std::uint64_t t1 = wall_ns();
  Measured m;
  m.seconds = static_cast<double>(t1 - t0) * 1e-9;
  m.cpu_percent = meter.window_usage_percent();
  return m;
}

}  // namespace zc::workload
