// Benchmark-mode harness shared by every macro experiment.
//
// The paper runs every application as a matrix of call backends ×
// workloads: `no_sl` (regular ocalls), `i-<fns>-<workers>` (Intel
// switchless with a static call set and worker count), `hotcalls`
// (always-hot responders) and `zc` (ZC-Switchless).  A ModeSpec is one
// mode: a display label plus a registry spec string (see
// core/backend_registry.hpp for the grammar), and `install_backend`
// applies it to an enclave, wiring the CPU meter into the backend's
// threads.  Any backend registered with the BackendRegistry — including
// ones added by later experiments — is reachable through a ModeSpec, so
// every bench accepts backend selection from the command line.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/cpu_meter.hpp"
#include "common/cycles.hpp"
#include "core/backend_registry.hpp"
#include "sgx/enclave.hpp"

namespace zc {
class ZcAsyncBackend;
}

namespace zc::workload {

struct ModeSpec {
  std::string label = "no_sl";  ///< table-header name, defaults to the spec
  std::string spec = "no_sl";   ///< registry spec string

  /// Wraps a raw registry spec string, validating it against the registry
  /// (throws BackendSpecError early rather than deep inside a run).  The
  /// label defaults to the spec text itself.
  static ModeSpec parse(std::string spec_text, std::string label = "");

  static ModeSpec no_sl() { return ModeSpec{}; }

  /// Paper notation `i-<fns>-<workers>`: a static switchless set given as
  /// ocall names (or numeric ids / "all") and a fixed worker count.  The
  /// SDK rbf/rbs defaults apply; use parse() to override them.
  static ModeSpec intel(std::string label,
                        const std::vector<std::string>& switchless,
                        unsigned workers);

  static ModeSpec zc_mode(std::string options = {});

  static ModeSpec hotcalls(unsigned workers = 2);
};

/// Installs (and starts) the backend described by `spec` on `enclave`.
/// `meter`, when given, receives the backend's worker/scheduler threads.
void install_backend(Enclave& enclave, const ModeSpec& spec,
                     CpuUsageMeter* meter = nullptr);

/// The installed backend's asynchronous call plane (submit()/wait()
/// futures), or nullptr when the backend on that direction does not
/// support futures.  Pipelined drivers (`--pipeline=D`) require a
/// non-null plane — today that means a `zc_async:` spec.
ZcAsyncBackend* async_plane(Enclave& enclave,
                            CallDirection direction = CallDirection::kOcall);

/// RAII helper for simulated-machine caller threads: pins to the machine's
/// CPU window and registers with the meter; checkpoints on destruction.
class SimThreadScope {
 public:
  SimThreadScope(const Enclave& enclave, CpuUsageMeter* meter);
  ~SimThreadScope();
  SimThreadScope(const SimThreadScope&) = delete;
  SimThreadScope& operator=(const SimThreadScope&) = delete;

  /// Publishes the thread's CPU time (call periodically in long loops).
  void checkpoint() noexcept;

 private:
  CpuUsageMeter* meter_;
  std::size_t slot_ = 0;
};

/// One measured run: wall seconds plus simulated-machine CPU usage.
struct Measured {
  double seconds = 0;
  double cpu_percent = 0;
};

/// Runs `body` between meter-window boundaries and reports wall + CPU.
template <typename Fn>
Measured measure(CpuUsageMeter& meter, Fn&& body) {
  meter.begin_window();
  const std::uint64_t t0 = wall_ns();
  body();
  const std::uint64_t t1 = wall_ns();
  Measured m;
  m.seconds = static_cast<double>(t1 - t0) * 1e-9;
  m.cpu_percent = meter.window_usage_percent();
  return m;
}

}  // namespace zc::workload
