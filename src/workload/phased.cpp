#include "workload/phased.hpp"

#include <cmath>
#include <functional>
#include <random>

namespace zc::workload {

namespace {

/// Sanity bound: a synthesizer config whose rate × duration explodes past
/// this is a mistake (the encoded trace would be GBs), so fail loudly.
constexpr std::uint64_t kMaxSynthRecords = 5'000'000;

/// Samples a non-homogeneous Poisson process on [0, duration_ns) by
/// thinning: candidates arrive at `rate_max`, and a candidate at t survives
/// with probability rate(t)/rate_max.  `rate(t)` takes virtual seconds and
/// returns calls/second; `assign_caller(t, rng)` picks the caller id.
Trace synthesize(const SynthesizerConfig& cfg, double rate_max,
                 const std::function<double(double)>& rate,
                 const std::function<std::uint32_t(double, std::mt19937_64&)>&
                     assign_caller) {
  if (cfg.duration_ms <= 0 || rate_max <= 0 || cfg.names.empty() ||
      cfg.callers == 0) {
    throw TraceError(
        "synthesizer config needs positive duration/rate, at least one call "
        "name and at least one caller");
  }
  const double duration_s = cfg.duration_ms * 1e-3;
  const double expected = rate_max * duration_s;
  if (expected > static_cast<double>(kMaxSynthRecords)) {
    throw TraceError("synthesizer config would generate ~" +
                     std::to_string(static_cast<std::uint64_t>(expected)) +
                     " records (cap " + std::to_string(kMaxSynthRecords) +
                     "); lower base_rate_hz or duration_ms");
  }

  Trace trace;
  trace.seed = cfg.seed;
  std::vector<std::uint32_t> name_idx;
  name_idx.reserve(cfg.names.size());
  for (const std::string& n : cfg.names) {
    name_idx.push_back(trace.intern(n));
  }

  std::mt19937_64 rng(cfg.seed);
  std::exponential_distribution<double> gap(rate_max);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick_name(0,
                                                       cfg.names.size() - 1);

  double t = 0;
  while (true) {
    t += gap(rng);
    if (t >= duration_s) break;
    const double keep = rate(t) / rate_max;
    if (unit(rng) >= keep) continue;
    TraceRecord r;
    r.vtime_ns = static_cast<std::uint64_t>(t * 1e9);
    r.caller = assign_caller(t, rng);
    r.name_idx = name_idx[pick_name(rng)];
    // Work jitter ±50%; ~5% of calls carry 8× payloads (the long-tail
    // transfers that stress frame pools and batched planes).
    r.work_ns = static_cast<std::uint64_t>(
        static_cast<double>(cfg.work_ns) * (0.5 + unit(rng)));
    const bool large = unit(rng) < 0.05;
    r.in_size = cfg.in_size * (large ? 8 : 1);
    r.out_size = cfg.out_size * (large ? 8 : 1);
    r.args_size = 48;  // sizeof the replay args block, informational
    r.direction = CallDirection::kOcall;
    trace.records.push_back(r);
  }
  return trace;
}

std::uint32_t uniform_caller(const SynthesizerConfig& cfg,
                             std::mt19937_64& rng) {
  return std::uniform_int_distribution<std::uint32_t>(0, cfg.callers - 1)(rng);
}

}  // namespace

std::uint64_t PhasedPlan::periods_impl(double total, double tau) noexcept {
  if (tau <= 0 || total <= 0) return 0;
  // Round to the nearest period: 1.2 / 0.1 must be 12, not 11.999... -> 11.
  return static_cast<std::uint64_t>(total / tau + 0.5);
}

std::uint64_t PhasedPlan::ops_for_period(std::uint64_t p) const noexcept {
  const std::uint64_t n = periods();
  if (n == 0) return 0;
  const std::uint64_t phase_len = n / 3;
  if (phase_len == 0) return initial_ops;

  auto doubled = [this](std::uint64_t steps) {
    // Saturating doubling to avoid overflow on long plans.
    std::uint64_t ops = initial_ops;
    for (std::uint64_t i = 0; i < steps; ++i) {
      if (ops > (std::uint64_t{1} << 62)) break;
      ops *= 2;
    }
    return ops;
  };

  if (p < phase_len) {
    // Phase 1: double every period.
    return doubled(p);
  }
  const std::uint64_t peak = doubled(phase_len - 1);
  if (p < 2 * phase_len) {
    // Phase 2: constant at the peak.
    return peak;
  }
  // Phase 3: halve every period (floor at 1).
  std::uint64_t ops = peak;
  const std::uint64_t steps = p - 2 * phase_len + 1;
  for (std::uint64_t i = 0; i < steps && ops > 1; ++i) ops /= 2;
  return ops;
}

std::uint64_t PhasedPlan::peak_ops() const noexcept {
  const std::uint64_t phase_len = periods() / 3;
  if (phase_len == 0) return initial_ops;
  return ops_for_period(phase_len - 1);
}

std::vector<std::uint64_t> PhasedPlan::schedule() const {
  std::vector<std::uint64_t> out;
  const std::uint64_t n = periods();
  out.reserve(n);
  for (std::uint64_t p = 0; p < n; ++p) out.push_back(ops_for_period(p));
  return out;
}

Trace synthesize_diurnal(const SynthesizerConfig& cfg,
                         double trough_fraction) {
  if (trough_fraction < 0 || trough_fraction > 1) {
    throw TraceError("diurnal trough_fraction must be in [0, 1]");
  }
  const double duration_s = cfg.duration_ms * 1e-3;
  const double base = cfg.base_rate_hz;
  const double trough = trough_fraction;
  return synthesize(
      cfg, base,
      [=](double t) {
        // sin² day curve: trough at both ends, peak (= base) mid-trace.
        const double s = std::sin(3.14159265358979323846 * t / duration_s);
        return base * (trough + (1.0 - trough) * s * s);
      },
      [&cfg](double, std::mt19937_64& rng) {
        return uniform_caller(cfg, rng);
      });
}

Trace synthesize_burst_storm(const SynthesizerConfig& cfg, unsigned bursts,
                             double burst_multiplier, double duty) {
  if (bursts == 0 || burst_multiplier < 1.0 || duty <= 0 || duty > 1) {
    throw TraceError(
        "burst storm needs bursts >= 1, burst_multiplier >= 1 and duty in "
        "(0, 1]");
  }
  const double duration_s = cfg.duration_ms * 1e-3;
  const double slot = duration_s / bursts;   // one storm per slot
  const double width = slot * duty;          // centred storm window
  const double base = cfg.base_rate_hz;
  return synthesize(
      cfg, base * burst_multiplier,
      [=](double t) {
        const double in_slot = std::fmod(t, slot);
        const double lo = (slot - width) / 2;
        const bool storming = in_slot >= lo && in_slot < lo + width;
        return storming ? base * burst_multiplier : base;
      },
      [&cfg](double, std::mt19937_64& rng) {
        return uniform_caller(cfg, rng);
      });
}

Trace synthesize_caller_churn(const SynthesizerConfig& cfg,
                              unsigned generations) {
  if (generations == 0) {
    throw TraceError("caller churn needs at least one generation");
  }
  const double duration_s = cfg.duration_ms * 1e-3;
  const double gen_len = duration_s / generations;
  return synthesize(
      cfg, cfg.base_rate_hz,
      [&cfg](double) { return cfg.base_rate_hz; },
      [&cfg, gen_len, generations](double t, std::mt19937_64& rng) {
        // Ids are gen*callers + slot, so a new generation is a wholly new
        // caller population — ids never come back.
        auto gen = static_cast<std::uint32_t>(t / gen_len);
        if (gen >= generations) gen = generations - 1;
        return gen * cfg.callers + uniform_caller(cfg, rng);
      });
}

Trace synthesize_phased(const PhasedPlan& plan, const SynthesizerConfig& cfg) {
  const std::vector<std::uint64_t> sched = plan.schedule();
  if (sched.empty()) {
    throw TraceError("phased plan has no periods to synthesize from");
  }
  const double duration_s = cfg.duration_ms * 1e-3;
  const double period_len = duration_s / static_cast<double>(sched.size());
  const std::uint64_t peak = plan.peak_ops();
  const double rate_max =
      static_cast<double>(peak) / period_len;  // calls/s at the plateau
  return synthesize(
      cfg, rate_max,
      [&sched, period_len](double t) {
        auto p = static_cast<std::size_t>(t / period_len);
        if (p >= sched.size()) p = sched.size() - 1;
        return static_cast<double>(sched[p]) / period_len;
      },
      [&cfg](double, std::mt19937_64& rng) {
        return uniform_caller(cfg, rng);
      });
}

}  // namespace zc::workload
