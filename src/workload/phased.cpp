#include "workload/phased.hpp"

namespace zc::workload {

std::uint64_t PhasedPlan::periods_impl(double total, double tau) noexcept {
  if (tau <= 0 || total <= 0) return 0;
  // Round to the nearest period: 1.2 / 0.1 must be 12, not 11.999... -> 11.
  return static_cast<std::uint64_t>(total / tau + 0.5);
}

std::uint64_t PhasedPlan::ops_for_period(std::uint64_t p) const noexcept {
  const std::uint64_t n = periods();
  if (n == 0) return 0;
  const std::uint64_t phase_len = n / 3;
  if (phase_len == 0) return initial_ops;

  auto doubled = [this](std::uint64_t steps) {
    // Saturating doubling to avoid overflow on long plans.
    std::uint64_t ops = initial_ops;
    for (std::uint64_t i = 0; i < steps; ++i) {
      if (ops > (std::uint64_t{1} << 62)) break;
      ops *= 2;
    }
    return ops;
  };

  if (p < phase_len) {
    // Phase 1: double every period.
    return doubled(p);
  }
  const std::uint64_t peak = doubled(phase_len - 1);
  if (p < 2 * phase_len) {
    // Phase 2: constant at the peak.
    return peak;
  }
  // Phase 3: halve every period (floor at 1).
  std::uint64_t ops = peak;
  const std::uint64_t steps = p - 2 * phase_len + 1;
  for (std::uint64_t i = 0; i < steps && ops > 1; ++i) ops /= 2;
  return ops;
}

std::uint64_t PhasedPlan::peak_ops() const noexcept {
  const std::uint64_t phase_len = periods() / 3;
  if (phase_len == 0) return initial_ops;
  return ops_for_period(phase_len - 1);
}

std::vector<std::uint64_t> PhasedPlan::schedule() const {
  std::vector<std::uint64_t> out;
  const std::uint64_t n = periods();
  out.reserve(n);
  for (std::uint64_t p = 0; p < n; ++p) out.push_back(ops_for_period(p));
  return out;
}

}  // namespace zc::workload
