// Synthetic micro-workload of §III-A (used by Figs. 2 and 3).
//
// Two ocall routines:
//   f — empty function (`void f(void){}`), the ideal switchless candidate;
//   g — busy-wait loop of k `asm("pause")` instructions, the routine that
//       should run as a regular ocall.
// The benchmark issues n ocalls with α calls to f and β to g, α = 3β.
//
// Each routine is registered under *two* ids mapping to the same handler so
// that configuration C3 ("half of the f and g calls switchless") can be
// expressed with Intel's static per-id selection: the driver routes half of
// the calls to the id inside the switchless set and half to the id outside.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sgx/enclave.hpp"
#include "sgx/ocall_table.hpp"

namespace zc::workload {

struct SyntheticOcalls {
  std::uint32_t f_a = 0;  ///< f, primary id
  std::uint32_t f_b = 0;  ///< f, alias id (outside the switchless set in C3)
  std::uint32_t g_a = 0;  ///< g, primary id
  std::uint32_t g_b = 0;  ///< g, alias id
};

struct FArgs {
  std::uint32_t unused = 0;
};

struct GArgs {
  std::uint64_t pauses = 0;  ///< busy-wait length in pause instructions
};

/// Registers f and g (each twice) into `table`.
SyntheticOcalls register_synthetic_ocalls(OcallTable& table);

/// The five build-time configurations evaluated in §III-A.
enum class SynthConfig {
  kC1,  ///< f switchless, g regular (expected best)
  kC2,  ///< f regular, g switchless (expected worst)
  kC3,  ///< half of f and half of g switchless
  kC4,  ///< everything switchless
  kC5,  ///< everything regular
};

const char* to_string(SynthConfig c) noexcept;

/// Ids an Intel backend must declare switchless to realise `config`.
std::vector<std::uint32_t> intel_switchless_set(SynthConfig config,
                                                const SyntheticOcalls& ids);

/// Registry spec string for an Intel backend realising `config` with
/// `workers` worker threads, e.g. "intel:sl=f,f#alias;workers=2" for C1
/// (the switchless set carried by registration name; see
/// core/backend_registry.hpp).
std::string intel_mode_spec(SynthConfig config, unsigned workers);

/// How g-call durations are distributed across the caller threads.
/// kUniform is the paper's homogeneous mix; kZipf gives caller t a
/// zipf-ranked duration weight (thread 0 heaviest), producing the skewed,
/// bursty many-caller mix that count-blind shard routing handles worst —
/// the workload `zc_sharded:policy=least_loaded` exists for.
enum class CallerSkew : std::uint8_t {
  kUniform,
  kZipf,
};

const char* to_string(CallerSkew skew) noexcept;

/// The zipf duration weight applied to caller `thread` of `threads` under
/// CallerSkew::kZipf: g_pauses is scaled by threads/(thread+1), so thread
/// 0 busy-waits `threads`x longer than the base and the tail approaches
/// the uniform duration.  Exposed for tests and JSONL row documentation.
std::uint64_t zipf_g_pauses(std::uint64_t g_pauses, unsigned thread,
                            unsigned threads) noexcept;

/// The rank each caller thread holds under CallerSkew::kZipf: a
/// Fisher–Yates permutation of 0..threads-1 drawn from mt19937_64(seed),
/// so *which* thread is the heavy caller is a seeded choice instead of
/// always thread 0 (affinity-keyed shard policies would otherwise see the
/// same lopsided placement every run).  `seed` is the resolved, nonzero
/// effective seed; the same seed always yields the same placement.
std::vector<unsigned> zipf_rank_permutation(unsigned threads,
                                            std::uint64_t seed);

struct SyntheticRunConfig {
  std::uint64_t total_calls = 100'000;  ///< n = α + β with α = 3β
  unsigned enclave_threads = 8;         ///< paper: 8 in-enclave threads
  std::uint64_t g_pauses = 10;          ///< duration of g in pauses
  CallerSkew skew = CallerSkew::kUniform;  ///< per-caller duration skew
  SynthConfig config = SynthConfig::kC1;
  /// In-flight calls per caller thread.  > 1 drives the installed
  /// backend's async plane (submit + windowed wait); requires an
  /// async-capable backend (`zc_async:`), otherwise the run degrades to
  /// the synchronous path — drivers check workload::async_plane() first.
  unsigned pipeline = 1;
  /// Seed for the run's randomized choices (today: the zipf rank
  /// permutation).  0 — the default — draws a fresh seed per run; the
  /// effective value lands in SyntheticResult::seed either way, so a
  /// skewed run can always be reproduced from its JSONL row.
  std::uint64_t seed = 0;
};

struct SyntheticResult {
  double seconds = 0;              ///< wall time for all calls
  std::uint64_t f_calls = 0;
  std::uint64_t g_calls = 0;
  std::uint64_t switchless = 0;    ///< backend counter delta
  std::uint64_t fallbacks = 0;
  std::uint64_t regular = 0;
  std::uint64_t seed = 0;          ///< effective seed (never 0)
};

/// Runs the synthetic benchmark against the enclave's installed backend.
/// Threads issue calls in the repeating pattern f,f,f,g (α = 3β).  In C3,
/// odd-numbered f/g calls use the alias ids.
SyntheticResult run_synthetic(Enclave& enclave, const SyntheticOcalls& ids,
                              const SyntheticRunConfig& run);

}  // namespace zc::workload
