#include "sgx/marshal.hpp"

#include "tlibc/memcpy.hpp"

namespace zc {
namespace {

constexpr std::size_t kArgsAlign = 16;

std::size_t aligned_args_bytes(std::uint32_t args_size) noexcept {
  return (static_cast<std::size_t>(args_size) + kArgsAlign - 1) &
         ~(kArgsAlign - 1);
}

static_assert(sizeof(FrameHeader) % kArgsAlign == 0,
              "args area must stay 16-byte aligned");

}  // namespace

std::size_t frame_bytes(const CallDesc& desc) noexcept {
  return sizeof(FrameHeader) + aligned_args_bytes(desc.args_size) +
         desc.payload_capacity();
}

MarshalledCall marshal_into(void* mem, const CallDesc& desc) noexcept {
  auto* header = static_cast<FrameHeader*>(mem);
  header->fn_id = desc.fn_id;
  header->args_size = desc.args_size;
  header->payload_size = desc.payload_capacity();
  header->flags = desc.single_copy() ? MarshalledCall::kSingleCopy : 0;
  header->reserved0 = 0;
  header->reserved1 = 0;

  auto* base = static_cast<std::byte*>(mem) + sizeof(FrameHeader);
  MarshalledCall call;
  call.args = base;
  call.args_size = desc.args_size;
  call.payload = header->payload_size != 0
                     ? base + aligned_args_bytes(desc.args_size)
                     : nullptr;
  call.payload_size = header->payload_size;
  call.flags = header->flags;

  if (desc.args_size != 0) {
    tlibc::active_memcpy(call.args, desc.args, desc.args_size);
  }
  if (desc.produce_in != nullptr) {
    if (desc.in_size != 0) {
      desc.produce_in(call.payload, desc.in_size, desc.inplace_ctx);
    }
  } else if (desc.in_segs != nullptr) {
    auto* dst = static_cast<std::byte*>(call.payload);
    for (std::uint32_t i = 0; i < desc.in_seg_count; ++i) {
      if (desc.in_segs[i].size == 0) continue;
      tlibc::active_memcpy(dst, desc.in_segs[i].data, desc.in_segs[i].size);
      dst += desc.in_segs[i].size;
    }
  } else if (desc.in_size != 0) {
    tlibc::active_memcpy(call.payload, desc.in_payload, desc.in_size);
  }
  return call;
}

MarshalledCall frame_view(void* mem) noexcept {
  auto* header = static_cast<FrameHeader*>(mem);
  auto* base = static_cast<std::byte*>(mem) + sizeof(FrameHeader);
  MarshalledCall call;
  call.args = base;
  call.args_size = header->args_size;
  call.payload = header->payload_size != 0
                     ? base + aligned_args_bytes(header->args_size)
                     : nullptr;
  call.payload_size = header->payload_size;
  call.flags = header->flags;
  return call;
}

void unmarshal_from(const MarshalledCall& call, const CallDesc& desc) noexcept {
  if (desc.args_size != 0) {
    tlibc::active_memcpy(desc.args, call.args, desc.args_size);
  }
  if (desc.consume_out != nullptr) {
    if (desc.out_size != 0) {
      desc.consume_out(call.payload, desc.out_size, desc.inplace_ctx);
    }
  } else if (desc.out_segs != nullptr) {
    const auto* src = static_cast<const std::byte*>(call.payload);
    for (std::uint32_t i = 0; i < desc.out_seg_count; ++i) {
      if (desc.out_segs[i].size == 0) continue;
      tlibc::active_memcpy(desc.out_segs[i].data, src, desc.out_segs[i].size);
      src += desc.out_segs[i].size;
    }
  } else if (desc.out_size != 0) {
    tlibc::active_memcpy(desc.out_payload, call.payload, desc.out_size);
  }
}

}  // namespace zc
