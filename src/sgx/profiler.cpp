#include "sgx/profiler.hpp"

#include <algorithm>

namespace zc {

CallProfiler::CallProfiler() : slots_(kMaxFns + 1) {}

void CallProfiler::record(std::uint32_t fn_id, CallPath path,
                          std::uint64_t cycles) noexcept {
  Slot& s = slot_for(fn_id);
  s.calls.fetch_add(1, std::memory_order_relaxed);
  switch (path) {
    case CallPath::kSwitchless:
      s.switchless.fetch_add(1, std::memory_order_relaxed);
      break;
    case CallPath::kFallback:
      s.fallback.fetch_add(1, std::memory_order_relaxed);
      break;
    case CallPath::kRegular:
      s.regular.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  s.total_cycles.fetch_add(cycles, std::memory_order_relaxed);

  std::uint64_t seen = s.min_cycles.load(std::memory_order_relaxed);
  while (cycles < seen && !s.min_cycles.compare_exchange_weak(
                              seen, cycles, std::memory_order_relaxed)) {
  }
  seen = s.max_cycles.load(std::memory_order_relaxed);
  while (cycles > seen && !s.max_cycles.compare_exchange_weak(
                              seen, cycles, std::memory_order_relaxed)) {
  }
}

CallProfiler::FnStats CallProfiler::stats(std::uint32_t fn_id) const noexcept {
  const Slot& s = slot_for(fn_id);
  FnStats out;
  out.calls = s.calls.load(std::memory_order_relaxed);
  out.switchless = s.switchless.load(std::memory_order_relaxed);
  out.fallback = s.fallback.load(std::memory_order_relaxed);
  out.regular = s.regular.load(std::memory_order_relaxed);
  out.total_cycles = s.total_cycles.load(std::memory_order_relaxed);
  out.max_cycles = s.max_cycles.load(std::memory_order_relaxed);
  const std::uint64_t min = s.min_cycles.load(std::memory_order_relaxed);
  out.min_cycles = out.calls == 0 ? 0 : min;
  return out;
}

std::uint64_t CallProfiler::total_calls() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& s : slots_) {
    total += s.calls.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint32_t> CallProfiler::active_ids() const {
  std::vector<std::uint32_t> ids;
  for (std::uint32_t id = 0; id < kMaxFns; ++id) {
    if (slots_[id].calls.load(std::memory_order_relaxed) != 0) {
      ids.push_back(id);
    }
  }
  return ids;
}

Table CallProfiler::report(const OcallTable& names) const {
  Table table({"fn", "calls", "switchless", "fallback", "regular",
               "mean[cyc]", "min[cyc]", "max[cyc]"});
  auto ids = active_ids();
  std::sort(ids.begin(), ids.end(), [this](std::uint32_t a, std::uint32_t b) {
    return stats(a).total_cycles > stats(b).total_cycles;
  });
  for (const std::uint32_t id : ids) {
    const FnStats s = stats(id);
    const std::string name =
        id < names.size() ? names.name(id) : "#" + std::to_string(id);
    table.add_row({name, std::to_string(s.calls),
                   std::to_string(s.switchless), std::to_string(s.fallback),
                   std::to_string(s.regular), Table::num(s.mean_cycles(), 0),
                   std::to_string(s.min_cycles),
                   std::to_string(s.max_cycles)});
  }
  return table;
}

void CallProfiler::reset() noexcept {
  for (Slot& s : slots_) {
    s.calls.store(0, std::memory_order_relaxed);
    s.switchless.store(0, std::memory_order_relaxed);
    s.fallback.store(0, std::memory_order_relaxed);
    s.regular.store(0, std::memory_order_relaxed);
    s.total_cycles.store(0, std::memory_order_relaxed);
    s.min_cycles.store(~0ULL, std::memory_order_relaxed);
    s.max_cycles.store(0, std::memory_order_relaxed);
  }
}

}  // namespace zc
