#include "sgx/advisor.hpp"

#include <algorithm>
#include <cmath>

namespace zc {

AdvisorReport advise_switchless(const CallProfiler& profiler,
                                const OcallTable& names,
                                std::uint64_t tes_cycles,
                                const AdvisorPolicy& policy) {
  AdvisorReport report;
  const std::uint64_t total = profiler.total_calls();
  if (total == 0) return report;
  const double short_bar =
      policy.short_call_tes_ratio * static_cast<double>(tes_cycles);

  double switchless_call_share = 0;
  for (const std::uint32_t id : profiler.active_ids()) {
    const auto s = profiler.stats(id);
    Advice advice;
    advice.fn_id = id;
    advice.name = id < names.size() ? names.name(id) : "#" + std::to_string(id);
    advice.mean_cycles = s.mean_cycles();
    advice.call_share =
        static_cast<double>(s.calls) / static_cast<double>(total);

    // The profiler sees the *executed* cost including any transition the
    // call paid; estimate the body cost by subtracting T_es from calls
    // that transitioned.
    const double transition_share =
        static_cast<double>(s.regular + s.fallback) /
        static_cast<double>(s.calls);
    const double body_cycles = std::max(
        0.0, advice.mean_cycles -
                 transition_share * static_cast<double>(tes_cycles));

    const bool is_short = body_cycles < short_bar;
    const bool is_frequent = advice.call_share >= policy.min_call_share;
    advice.make_switchless = is_short && is_frequent;
    if (advice.make_switchless) {
      advice.reason = "short body (" + Table::num(body_cycles, 0) +
                      " cyc < " + Table::num(short_bar, 0) +
                      ") and frequent (" +
                      Table::num(100.0 * advice.call_share, 1) + "% of calls)";
      report.switchless_set.push_back(id);
      switchless_call_share += advice.call_share;
    } else if (!is_short) {
      advice.reason = "body too long (" + Table::num(body_cycles, 0) +
                      " cyc >= " + Table::num(short_bar, 0) + ")";
    } else {
      advice.reason = "too rare (" +
                      Table::num(100.0 * advice.call_share, 2) +
                      "% of calls)";
    }
    report.per_fn.push_back(std::move(advice));
  }

  // Worker hint: enough workers to absorb the switchless share of an
  // assumed-saturated caller population, capped by policy (§III-B: over-
  // provisioning wastes CPU).
  if (!report.switchless_set.empty()) {
    report.workers_hint = std::clamp<unsigned>(
        static_cast<unsigned>(
            std::ceil(switchless_call_share * policy.max_workers_hint)),
        1, policy.max_workers_hint);
  }
  return report;
}

}  // namespace zc
