// Standard ocall set: the untrusted syscall shims every benchmark in the
// paper exercises (read/write for lmbench, f* stdio for kissdb and the
// OpenSSL-style pipeline), with edger8r-style argument structs.
//
// FILE* handles never cross into the enclave as pointers; they are opaque
// integer handles, as in hardened SGX ports.
#pragma once

#include <cstdint>

#include "sgx/ocall_table.hpp"

namespace zc {

/// Ids of the standard ocalls within one enclave's OcallTable.
struct StdOcallIds {
  std::uint32_t read = 0;    ///< read(fd, [out] buf, count) -> ssize_t
  std::uint32_t write = 0;   ///< write(fd, [in] buf, count) -> ssize_t
  std::uint32_t open = 0;    ///< open(path, flags, mode) -> fd
  std::uint32_t close = 0;   ///< close(fd) -> int
  std::uint32_t fopen = 0;   ///< fopen(path, mode) -> handle
  std::uint32_t fclose = 0;  ///< fclose(handle) -> int
  std::uint32_t fread = 0;   ///< fread([out] buf, 1, size, handle) -> size_t
  std::uint32_t fwrite = 0;  ///< fwrite([in] buf, 1, size, handle) -> size_t
  std::uint32_t fseeko = 0;  ///< fseeko(handle, off, whence) -> int
  std::uint32_t ftello = 0;  ///< ftello(handle) -> off_t
  std::uint32_t fflush = 0;  ///< fflush(handle) -> int
  std::uint32_t usleep = 0;  ///< usleep(usec)
};

// Argument structs (standard layout; return slots included).

struct ReadArgs {
  std::int32_t fd = -1;
  std::uint64_t count = 0;
  std::int64_t ret = -1;
};

struct WriteArgs {
  std::int32_t fd = -1;
  std::uint64_t count = 0;
  std::int64_t ret = -1;
};

struct OpenArgs {
  char path[256] = {};
  std::int32_t flags = 0;
  std::uint32_t mode = 0;
  std::int32_t ret = -1;
};

struct CloseArgs {
  std::int32_t fd = -1;
  std::int32_t ret = -1;
};

struct FopenArgs {
  char path[256] = {};
  char mode[8] = {};
  std::uint64_t handle = 0;  ///< 0 on failure
};

struct FcloseArgs {
  std::uint64_t handle = 0;
  std::int32_t ret = -1;
};

struct FreadArgs {
  std::uint64_t handle = 0;
  std::uint64_t size = 0;
  std::uint64_t ret = 0;  ///< bytes read
};

struct FwriteArgs {
  std::uint64_t handle = 0;
  std::uint64_t size = 0;
  std::uint64_t ret = 0;  ///< bytes written
};

struct FseekoArgs {
  std::uint64_t handle = 0;
  std::int64_t offset = 0;
  std::int32_t whence = 0;
  std::int32_t ret = -1;
};

struct FtelloArgs {
  std::uint64_t handle = 0;
  std::int64_t ret = -1;
};

struct FflushArgs {
  std::uint64_t handle = 0;
  std::int32_t ret = -1;
};

struct UsleepArgs {
  std::uint64_t usec = 0;
};

/// Which untrusted world serves the standard ocalls.
enum class IoMode {
  kReal,       ///< the host OS (functional tests, real deployments)
  kSimulated,  ///< SimFs in-memory substrate with paper-calibrated syscall
               ///< costs (the figure benches; see sim_fs.hpp for why)
};

/// Registers all standard ocalls into `table` and returns their ids.
StdOcallIds register_std_ocalls(OcallTable& table,
                                IoMode mode = IoMode::kReal);

}  // namespace zc
