// Per-routine call profiler.
//
// The paper's future work proposes integrating ZC-Switchless "with
// profiling tools, to offer deployers an additional monitoring knob over
// SGX-enabled systems" (§VII).  CallProfiler records, per ocall/ecall id,
// how many invocations took each path (switchless / fallback / regular) and
// their cycle costs — exactly the duration+frequency data §III-A says
// developers lack when forced to configure switchless sets by hand.
//
// Recording is wait-free (padded atomics per function id); attach with
// Enclave::set_profiler and it observes every call routed through the
// enclave's backends.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "sgx/backend.hpp"
#include "sgx/ocall_table.hpp"

namespace zc {

class CallProfiler {
 public:
  /// Function ids >= kMaxFns are counted in an overflow bucket.
  static constexpr std::uint32_t kMaxFns = 256;

  /// Aggregated view of one routine.
  struct FnStats {
    std::uint64_t calls = 0;
    std::uint64_t switchless = 0;
    std::uint64_t fallback = 0;
    std::uint64_t regular = 0;
    std::uint64_t total_cycles = 0;
    std::uint64_t min_cycles = 0;  ///< 0 when calls == 0
    std::uint64_t max_cycles = 0;

    double mean_cycles() const noexcept {
      return calls == 0 ? 0.0
                        : static_cast<double>(total_cycles) /
                              static_cast<double>(calls);
    }
    /// Fraction of invocations that avoided a transition.
    double switchless_ratio() const noexcept {
      return calls == 0 ? 0.0
                        : static_cast<double>(switchless) /
                              static_cast<double>(calls);
    }
  };

  CallProfiler();

  /// Records one completed call. Wait-free; safe from any thread.
  void record(std::uint32_t fn_id, CallPath path,
              std::uint64_t cycles) noexcept;

  /// Snapshot of one routine's stats.
  FnStats stats(std::uint32_t fn_id) const noexcept;

  /// Total calls recorded across all routines.
  std::uint64_t total_calls() const noexcept;

  /// Ids with at least one recorded call, ascending.
  std::vector<std::uint32_t> active_ids() const;

  /// Renders a per-routine report (sorted by total cycles, descending),
  /// resolving names from `names` where possible.
  Table report(const OcallTable& names) const;

  /// Clears all recorded data (not linearizable w.r.t. concurrent record).
  void reset() noexcept;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> switchless{0};
    std::atomic<std::uint64_t> fallback{0};
    std::atomic<std::uint64_t> regular{0};
    std::atomic<std::uint64_t> total_cycles{0};
    std::atomic<std::uint64_t> min_cycles{~0ULL};
    std::atomic<std::uint64_t> max_cycles{0};
  };

  Slot& slot_for(std::uint32_t fn_id) noexcept {
    return slots_[fn_id < kMaxFns ? fn_id : kMaxFns];
  }
  const Slot& slot_for(std::uint32_t fn_id) const noexcept {
    return slots_[fn_id < kMaxFns ? fn_id : kMaxFns];
  }

  // +1 overflow bucket for ids beyond kMaxFns.
  std::vector<Slot> slots_;
};

}  // namespace zc
