#include "sgx/transition.hpp"

#include <algorithm>

#include "common/cycles.hpp"

namespace zc {

TransitionModel::TransitionModel(const SimConfig& cfg) noexcept
    : tes_cycles_(cfg.tes_cycles) {
  const double f = std::clamp(cfg.eexit_fraction, 0.0, 1.0);
  eexit_cycles_ = static_cast<std::uint64_t>(static_cast<double>(tes_cycles_) * f);
  eenter_cycles_ = tes_cycles_ - eexit_cycles_;
}

void TransitionModel::eexit() noexcept {
  burn_cycles(eexit_cycles_);
  eexits_.add();
  burned_.add(eexit_cycles_);
}

void TransitionModel::eenter() noexcept {
  burn_cycles(eenter_cycles_);
  eenters_.add();
  burned_.add(eenter_cycles_);
}

void TransitionModel::ecall_roundtrip() noexcept {
  burn_cycles(tes_cycles_);
  ecalls_.add();
  burned_.add(tes_cycles_);
}

}  // namespace zc
