#include "sgx/ocall_table.hpp"

#include <stdexcept>

namespace zc {

std::uint32_t OcallTable::register_fn(std::string name, OcallHandler handler) {
  if (!handler) throw std::invalid_argument("null ocall handler: " + name);
  entries_.push_back(Entry{std::move(name), std::move(handler)});
  return static_cast<std::uint32_t>(entries_.size() - 1);
}

void OcallTable::dispatch(std::uint32_t id, MarshalledCall& call) const {
  if (id >= entries_.size()) {
    throw std::out_of_range("ocall id out of range: " + std::to_string(id));
  }
  entries_[id].handler(call);
}

const std::string& OcallTable::name(std::uint32_t id) const {
  if (id >= entries_.size()) {
    throw std::out_of_range("ocall id out of range: " + std::to_string(id));
  }
  return entries_[id].name;
}

}  // namespace zc
