#include "sgx/ocall_table.hpp"

#include <stdexcept>

namespace zc {

std::uint32_t OcallTable::register_fn(std::string name, OcallHandler handler) {
  return register_fn(std::move(name), std::move(handler), HandlerTraits{});
}

std::uint32_t OcallTable::register_fn(std::string name, OcallHandler handler,
                                      HandlerTraits traits) {
  if (!handler) throw std::invalid_argument("null ocall handler: " + name);
  entries_.push_back(Entry{std::move(name), std::move(handler), traits});
  return static_cast<std::uint32_t>(entries_.size() - 1);
}

bool OcallTable::in_place_capable(std::uint32_t id) const noexcept {
  return id < entries_.size() && entries_[id].traits.in_place_capable;
}

void OcallTable::dispatch(std::uint32_t id, MarshalledCall& call) const {
  if (id >= entries_.size()) {
    throw std::out_of_range("ocall id out of range: " + std::to_string(id));
  }
  entries_[id].handler(call);
}

std::optional<std::uint32_t> OcallTable::find(
    std::string_view name) const noexcept {
  for (std::size_t id = 0; id < entries_.size(); ++id) {
    if (entries_[id].name == name) return static_cast<std::uint32_t>(id);
  }
  return std::nullopt;
}

const std::string& OcallTable::name(std::uint32_t id) const {
  if (id >= entries_.size()) {
    throw std::out_of_range("ocall id out of range: " + std::to_string(id));
  }
  return entries_[id].name;
}

}  // namespace zc
