#include "sgx/enclave.hpp"

#include <algorithm>
#include <new>

#include "common/cycles.hpp"
#include "sgx/arena.hpp"

namespace zc {

Enclave::Enclave(const SimConfig& cfg) : cfg_(cfg), transitions_(cfg) {
  backend_ = std::make_unique<RegularBackend>(*this);
  ecall_backend_ = std::make_unique<RegularEcallBackend>(*this);
}

std::unique_ptr<Enclave> Enclave::create(const SimConfig& cfg) {
  return std::unique_ptr<Enclave>(new Enclave(cfg));
}

Enclave::~Enclave() {
  if (backend_) backend_->stop();
  if (ecall_backend_) ecall_backend_->stop();
}

void Enclave::set_backend(std::unique_ptr<CallBackend> backend) {
  if (!backend) {
    backend = std::make_unique<RegularBackend>(*this);
  }
  if (backend_) backend_->stop();
  backend_ = std::move(backend);
  backend_->start();
}

void Enclave::set_ecall_backend(std::unique_ptr<CallBackend> backend) {
  if (!backend) {
    backend = std::make_unique<RegularEcallBackend>(*this);
  }
  if (ecall_backend_) ecall_backend_->stop();
  ecall_backend_ = std::move(backend);
  ecall_backend_->start();
}

void Enclave::trusted_alloc(std::size_t bytes) {
  std::uint64_t fault_pages = 0;
  {
    std::lock_guard lock(heap_mu_);
    if (heap_used_ + bytes > cfg_.enclave_heap_bytes) throw std::bad_alloc();
    const std::size_t before = heap_used_;
    heap_used_ += bytes;
    heap_peak_ = std::max(heap_peak_, heap_used_);
    if (heap_used_ > cfg_.epc_usable_bytes) {
      const std::size_t over_before =
          before > cfg_.epc_usable_bytes ? before - cfg_.epc_usable_bytes : 0;
      const std::size_t over_after = heap_used_ - cfg_.epc_usable_bytes;
      fault_pages = (over_after + 4095) / 4096 - (over_before + 4095) / 4096;
      epc_faults_ += fault_pages;
    }
  }
  if (fault_pages != 0) {
    burn_cycles(fault_pages * cfg_.epc_page_fault_cycles);
  }
}

void Enclave::trusted_free(std::size_t bytes) noexcept {
  std::lock_guard lock(heap_mu_);
  heap_used_ = bytes > heap_used_ ? 0 : heap_used_ - bytes;
}

std::size_t Enclave::trusted_heap_used() const noexcept {
  std::lock_guard lock(heap_mu_);
  return heap_used_;
}

std::size_t Enclave::trusted_heap_peak() const noexcept {
  std::lock_guard lock(heap_mu_);
  return heap_peak_;
}

std::uint64_t Enclave::epc_faults() const noexcept {
  std::lock_guard lock(heap_mu_);
  return epc_faults_;
}

void execute_regular_ocall(Enclave& enclave, const CallDesc& desc) {
  void* mem = ScratchArena::for_current_thread().acquire(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem, desc);
  enclave.transitions().eexit();
  enclave.ocalls().dispatch(desc.fn_id, call);
  enclave.transitions().eenter();
  unmarshal_from(call, desc);
}

void execute_regular_ecall(Enclave& enclave, const CallDesc& desc) {
  void* mem = ScratchArena::for_current_thread().acquire(frame_bytes(desc));
  MarshalledCall call = marshal_into(mem, desc);
  // One full transition pair: EENTER, trusted processing, EEXIT.
  enclave.transitions().ecall_roundtrip();
  enclave.ecalls().dispatch(desc.fn_id, call);
  unmarshal_from(call, desc);
}

}  // namespace zc
