// Simulated SGX enclave.
//
// The Enclave object stands in for a loaded SGX enclave: it owns the ocall
// table, the transition cost model, a trusted-heap/EPC accountant, and the
// call backend that decides how ocalls execute (regular, Intel switchless,
// or ZC-Switchless).  "Enclave threads" are ordinary threads that enter via
// `ecall` and then issue `ocall`s; confidentiality is not enforced (this is
// a performance-model substrate), but the *costs* of crossing the boundary
// are.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <type_traits>

#include "common/cycles.hpp"
#include "sgx/backend.hpp"
#include "sgx/marshal.hpp"
#include "sgx/ocall_table.hpp"
#include "sgx/profiler.hpp"
#include "sgx/sim_config.hpp"
#include "sgx/transition.hpp"

namespace zc {

class Enclave {
 public:
  /// Loads a simulated enclave. The returned object must outlive every
  /// thread that calls into it.
  static std::unique_ptr<Enclave> create(const SimConfig& cfg);

  ~Enclave();
  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  const SimConfig& config() const noexcept { return cfg_; }
  OcallTable& ocalls() noexcept { return table_; }
  const OcallTable& ocalls() const noexcept { return table_; }

  /// Table of *trusted* functions callable from outside (ecalls by id).
  /// §II: the switchless techniques "can equally be used for ecalls".
  OcallTable& ecalls() noexcept { return ecall_table_; }
  const OcallTable& ecalls() const noexcept { return ecall_table_; }
  TransitionModel& transitions() noexcept { return transitions_; }
  const TransitionModel& transitions() const noexcept { return transitions_; }

  /// Installs the call backend (stops a previously installed one first,
  /// then starts the new one).  Must not race with in-flight ocalls.
  void set_backend(std::unique_ptr<CallBackend> backend);

  /// The installed backend. A RegularBackend is installed by default.
  CallBackend& backend() noexcept { return *backend_; }
  const CallBackend& backend() const noexcept { return *backend_; }

  /// Runs `body` "inside" the enclave: charges one ecall round trip.
  template <typename Fn>
  auto ecall(Fn&& body) {
    transitions_.ecall_roundtrip();
    return body();
  }

  /// Installs the backend serving registered ecalls (nullptr restores the
  /// regular transition-paying path).
  void set_ecall_backend(std::unique_ptr<CallBackend> backend);
  CallBackend& ecall_backend() noexcept { return *ecall_backend_; }

  /// Attaches a call profiler observing every ocall/ecall routed through
  /// the backends (nullptr detaches). The profiler must outlive its
  /// attachment.
  void set_profiler(CallProfiler* profiler) noexcept {
    profiler_.store(profiler, std::memory_order_release);
  }
  CallProfiler* profiler() const noexcept {
    return profiler_.load(std::memory_order_acquire);
  }

  /// Invokes a registered trusted function through the ecall backend.
  CallPath ecall_fn(const CallDesc& desc) {
    CallProfiler* prof = profiler_.load(std::memory_order_acquire);
    if (prof == nullptr) return ecall_backend_->invoke(desc);
    const std::uint64_t t0 = rdtsc();
    const CallPath path = ecall_backend_->invoke(desc);
    prof->record(desc.fn_id, path, rdtsc() - t0);
    return path;
  }

  /// Typed registered-ecall convenience (mirrors ocall()).
  template <typename Args>
  CallPath ecall_fn(std::uint32_t fn_id, Args& args) {
    static_assert(std::is_standard_layout_v<Args>);
    CallDesc desc;
    desc.fn_id = fn_id;
    desc.args = &args;
    desc.args_size = sizeof(Args);
    return ecall_fn(desc);
  }

  /// Issues one ocall through the installed backend.
  CallPath ocall(const CallDesc& desc) {
    CallProfiler* prof = profiler_.load(std::memory_order_acquire);
    if (prof == nullptr) return backend_->invoke(desc);
    const std::uint64_t t0 = rdtsc();
    const CallPath path = backend_->invoke(desc);
    prof->record(desc.fn_id, path, rdtsc() - t0);
    return path;
  }

  /// Typed convenience: `Args` is a standard-layout struct holding inputs
  /// and return slots.
  template <typename Args>
  CallPath ocall(std::uint32_t fn_id, Args& args) {
    static_assert(std::is_standard_layout_v<Args>);
    CallDesc desc;
    desc.fn_id = fn_id;
    desc.args = &args;
    desc.args_size = sizeof(Args);
    return ocall(desc);
  }

  /// Typed ocall with an [in] payload (e.g. write()).
  template <typename Args>
  CallPath ocall_in(std::uint32_t fn_id, Args& args, const void* payload,
                    std::size_t size) {
    static_assert(std::is_standard_layout_v<Args>);
    CallDesc desc;
    desc.fn_id = fn_id;
    desc.args = &args;
    desc.args_size = sizeof(Args);
    desc.in_payload = payload;
    desc.in_size = size;
    return ocall(desc);
  }

  /// Typed ocall with an [out] payload (e.g. read()).
  template <typename Args>
  CallPath ocall_out(std::uint32_t fn_id, Args& args, void* payload,
                     std::size_t size) {
    static_assert(std::is_standard_layout_v<Args>);
    CallDesc desc;
    desc.fn_id = fn_id;
    desc.args = &args;
    desc.args_size = sizeof(Args);
    desc.out_payload = payload;
    desc.out_size = size;
    return ocall(desc);
  }

  // --- Trusted heap / EPC accounting -------------------------------------

  /// Records a trusted-heap allocation of `bytes`. Charges an EPC paging
  /// penalty for every 4 KiB page that pushes usage beyond the usable EPC.
  /// Throws std::bad_alloc when the enclave heap budget is exhausted
  /// (mirrors enclave OOM).
  void trusted_alloc(std::size_t bytes);

  /// Records a trusted-heap free.
  void trusted_free(std::size_t bytes) noexcept;

  std::size_t trusted_heap_used() const noexcept;
  std::size_t trusted_heap_peak() const noexcept;
  std::uint64_t epc_faults() const noexcept;

 private:
  explicit Enclave(const SimConfig& cfg);

  SimConfig cfg_;
  OcallTable table_;
  OcallTable ecall_table_;
  TransitionModel transitions_;
  std::unique_ptr<CallBackend> backend_;
  std::unique_ptr<CallBackend> ecall_backend_;
  std::atomic<CallProfiler*> profiler_{nullptr};

  mutable std::mutex heap_mu_;
  std::size_t heap_used_ = 0;
  std::size_t heap_peak_ = 0;
  std::uint64_t epc_faults_ = 0;
};

/// Executes `desc` as a plain (transition-paying) ocall against `enclave`:
/// marshal into the caller's scratch arena, EEXIT, dispatch, EENTER,
/// unmarshal.  This is both the RegularBackend implementation and the
/// fallback path shared by the switchless backends.
void execute_regular_ocall(Enclave& enclave, const CallDesc& desc);

/// Executes `desc` as a plain registered ecall: marshal into the bridge
/// buffer, EENTER + trusted dispatch + EEXIT, unmarshal.
void execute_regular_ecall(Enclave& enclave, const CallDesc& desc);

/// Backend that runs every ocall with a full enclave transition (`no_sl`).
class RegularBackend final : public CallBackend {
 public:
  explicit RegularBackend(Enclave& enclave) noexcept : enclave_(enclave) {}

  CallPath invoke(const CallDesc& desc) override {
    execute_regular_ocall(enclave_, desc);
    const std::uint64_t elided = copies_elided_by(desc);
    if (elided != 0) stats_.copies_elided.add(elided);
    stats_.regular_calls.add();
    return CallPath::kRegular;
  }

  const char* name() const noexcept override { return "no_sl"; }

 private:
  Enclave& enclave_;
};

/// Backend that runs every registered ecall with a full transition.
class RegularEcallBackend final : public CallBackend {
 public:
  explicit RegularEcallBackend(Enclave& enclave) noexcept
      : enclave_(enclave) {}

  CallPath invoke(const CallDesc& desc) override {
    execute_regular_ecall(enclave_, desc);
    const std::uint64_t elided = copies_elided_by(desc);
    if (elided != 0) stats_.copies_elided.add(elided);
    stats_.regular_calls.add();
    return CallPath::kRegular;
  }

  const char* name() const noexcept override { return "no_sl-ecall"; }

 private:
  Enclave& enclave_;
};

}  // namespace zc
