// Simulated untrusted I/O substrate.
//
// The reproduction host routes syscalls through a sandboxed kernel where a
// one-word read costs ~8 µs — 40x the ~250 cycles the paper quotes for a
// regular syscall on its testbed (§I).  Running the macro benchmarks
// against that kernel would invert the paper's central cost ratio
// (T_es >> syscall).  This in-memory filesystem and device layer restores
// the testbed economics: each operation performs the real data movement
// plus a calibrated `host_syscall_cycles` burn (default 250 cycles).
//
// Functional tests use the real OS; the figure benches use this substrate
// (see EnclaveLibc's IoMode).  Everything here is "untrusted world" code:
// it runs on whatever thread executes the ocall handler.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace zc {

class SimFs {
 public:
  /// Process-wide instance (one "untrusted world" per process).
  static SimFs& instance();

  /// Cycles burned per operation, modelling the host syscall cost
  /// (paper: "regular system calls ... 250 cycles").
  void set_syscall_cycles(std::uint64_t cycles) noexcept;
  std::uint64_t syscall_cycles() const noexcept;

  /// Failure injection: the next `count` data operations (fread/fwrite/
  /// read/write) fail — short read/0 items written/-1 — as a flaky host
  /// would. Tests use this to exercise application error paths.
  void fail_next_ops(std::uint64_t count) noexcept;
  std::uint64_t pending_failures() const noexcept;

  // --- stdio-style API (handles are opaque non-zero ids) ------------------

  /// Supports modes rb / wb / ab / r+b / w+b (binary-only, like the
  /// benchmarks). Returns 0 on failure (e.g. rb on a missing path).
  std::uint64_t fopen(const std::string& path, const std::string& mode);
  int fclose(std::uint64_t handle);
  std::size_t fread(void* dst, std::size_t n, std::uint64_t handle);
  std::size_t fwrite(const void* src, std::size_t n, std::uint64_t handle);
  int fseeko(std::uint64_t handle, std::int64_t offset, int whence);
  std::int64_t ftello(std::uint64_t handle);
  int fflush(std::uint64_t handle);

  // --- fd-style API (recognises /dev/zero and /dev/null) ------------------

  int open(const std::string& path, int flags);
  int close(int fd);
  std::int64_t read(int fd, void* buf, std::size_t n);
  std::int64_t write(int fd, const void* buf, std::size_t n);

  // --- maintenance ---------------------------------------------------------

  bool exists(const std::string& path) const;
  std::size_t file_size(const std::string& path) const;
  void remove(const std::string& path);
  /// Drops all files and open handles (benchmark teardown).
  void clear();

 private:
  struct File {
    std::vector<std::uint8_t> data;
    std::mutex mu;  // per-file: concurrent streams on distinct files scale
  };
  enum class DevKind { kFile, kZero, kNull };
  struct Stream {
    std::shared_ptr<File> file;
    std::size_t pos = 0;
    bool readable = false;
    bool writable = false;
    bool append = false;
    DevKind dev = DevKind::kFile;
  };

  SimFs() = default;
  void charge() const noexcept;
  bool take_failure() noexcept;
  std::shared_ptr<Stream> find_stream(std::uint64_t handle) const;

  mutable std::mutex mu_;  // registry only (paths + handle tables)
  std::unordered_map<std::string, std::shared_ptr<File>> files_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Stream>> streams_;
  std::unordered_map<int, std::shared_ptr<Stream>> fds_;
  std::uint64_t next_handle_ = 1;
  int next_fd_ = 1'000;
  std::uint64_t syscall_cycles_ = 250;
  std::atomic<std::uint64_t> failures_left_{0};
};

}  // namespace zc
