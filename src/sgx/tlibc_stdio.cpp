#include "sgx/tlibc_stdio.hpp"

#include <cstring>

namespace zc {

int EnclaveLibc::open(const char* path, int flags, unsigned mode) {
  OpenArgs args;
  std::strncpy(args.path, path, sizeof(args.path) - 1);
  args.flags = flags;
  args.mode = mode;
  enclave_->ocall(ids_.open, args);
  return args.ret;
}

int EnclaveLibc::close(int fd) {
  CloseArgs args;
  args.fd = fd;
  enclave_->ocall(ids_.close, args);
  return args.ret;
}

std::int64_t EnclaveLibc::read(int fd, void* buf, std::size_t count) {
  ReadArgs args;
  args.fd = fd;
  args.count = count;
  enclave_->ocall_out(ids_.read, args, buf, count);
  return args.ret;
}

std::int64_t EnclaveLibc::write(int fd, const void* buf, std::size_t count) {
  WriteArgs args;
  args.fd = fd;
  args.count = count;
  enclave_->ocall_in(ids_.write, args, buf, count);
  return args.ret;
}

void EnclaveLibc::usleep(std::uint64_t usec) {
  UsleepArgs args;
  args.usec = usec;
  enclave_->ocall(ids_.usleep, args);
}

TFile EnclaveLibc::fopen(const char* path, const char* mode) {
  FopenArgs args;
  std::strncpy(args.path, path, sizeof(args.path) - 1);
  std::strncpy(args.mode, mode, sizeof(args.mode) - 1);
  enclave_->ocall(ids_.fopen, args);
  return TFile(this, args.handle);
}

TFile& TFile::operator=(TFile&& other) noexcept {
  if (this != &other) {
    if (handle_ != 0) close();
    libc_ = other.libc_;
    handle_ = other.handle_;
    other.libc_ = nullptr;
    other.handle_ = 0;
  }
  return *this;
}

TFile::~TFile() {
  if (handle_ != 0) close();
}

std::size_t TFile::read(void* buf, std::size_t size) {
  FreadArgs args;
  args.handle = handle_;
  args.size = size;
  libc_->enclave_->ocall_out(libc_->ids_.fread, args, buf, size);
  return args.ret;
}

std::size_t TFile::write(const void* buf, std::size_t size) {
  FwriteArgs args;
  args.handle = handle_;
  args.size = size;
  libc_->enclave_->ocall_in(libc_->ids_.fwrite, args, buf, size);
  return args.ret;
}

int TFile::seek(std::int64_t offset, int whence) {
  FseekoArgs args;
  args.handle = handle_;
  args.offset = offset;
  args.whence = whence;
  libc_->enclave_->ocall(libc_->ids_.fseeko, args);
  return args.ret;
}

std::int64_t TFile::tell() {
  FtelloArgs args;
  args.handle = handle_;
  libc_->enclave_->ocall(libc_->ids_.ftello, args);
  return args.ret;
}

int TFile::flush() {
  FflushArgs args;
  args.handle = handle_;
  libc_->enclave_->ocall(libc_->ids_.fflush, args);
  return args.ret;
}

int TFile::close() {
  if (handle_ == 0) return 0;
  FcloseArgs args;
  args.handle = handle_;
  libc_->enclave_->ocall(libc_->ids_.fclose, args);
  handle_ = 0;
  return args.ret;
}

}  // namespace zc
