#include "sgx/sim_fs.hpp"

#include <fcntl.h>

#include <cstdio>
#include <cstring>

#include "common/cycles.hpp"

namespace zc {

SimFs& SimFs::instance() {
  static SimFs fs;
  return fs;
}

void SimFs::set_syscall_cycles(std::uint64_t cycles) noexcept {
  std::lock_guard lock(mu_);
  syscall_cycles_ = cycles;
}

std::uint64_t SimFs::syscall_cycles() const noexcept {
  std::lock_guard lock(mu_);
  return syscall_cycles_;
}

void SimFs::fail_next_ops(std::uint64_t count) noexcept {
  failures_left_.store(count, std::memory_order_relaxed);
}

std::uint64_t SimFs::pending_failures() const noexcept {
  return failures_left_.load(std::memory_order_relaxed);
}

bool SimFs::take_failure() noexcept {
  std::uint64_t left = failures_left_.load(std::memory_order_relaxed);
  while (left != 0) {
    if (failures_left_.compare_exchange_weak(left, left - 1,
                                             std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void SimFs::charge() const noexcept {
  std::uint64_t cycles;
  {
    std::lock_guard lock(mu_);
    cycles = syscall_cycles_;
  }
  burn_cycles(cycles);
}

std::uint64_t SimFs::fopen(const std::string& path, const std::string& mode) {
  charge();
  const bool plus = mode.find('+') != std::string::npos;
  const char kind = mode.empty() ? '\0' : mode[0];
  auto stream = std::make_shared<Stream>();
  stream->readable = kind == 'r' || plus;
  stream->writable = kind == 'w' || kind == 'a' || plus;
  stream->append = kind == 'a';

  std::lock_guard lock(mu_);
  auto it = files_.find(path);
  if (kind == 'r') {
    if (it == files_.end()) return 0;  // rb/r+b require the file to exist
    stream->file = it->second;
  } else if (kind == 'w') {
    if (it == files_.end()) {
      it = files_.emplace(path, std::make_shared<File>()).first;
    } else {
      std::lock_guard file_lock(it->second->mu);
      it->second->data.clear();  // truncate
    }
    stream->file = it->second;
  } else if (kind == 'a') {
    if (it == files_.end()) {
      it = files_.emplace(path, std::make_shared<File>()).first;
    }
    stream->file = it->second;
  } else {
    return 0;  // unsupported mode
  }
  const std::uint64_t handle = next_handle_++;
  streams_[handle] = std::move(stream);
  return handle;
}

std::shared_ptr<SimFs::Stream> SimFs::find_stream(std::uint64_t handle) const {
  std::lock_guard lock(mu_);
  const auto it = streams_.find(handle);
  return it == streams_.end() ? nullptr : it->second;
}

int SimFs::fclose(std::uint64_t handle) {
  charge();
  std::lock_guard lock(mu_);
  return streams_.erase(handle) != 0 ? 0 : EOF;
}

std::size_t SimFs::fread(void* dst, std::size_t n, std::uint64_t handle) {
  charge();
  if (take_failure()) return 0;
  auto stream = find_stream(handle);
  if (!stream || !stream->readable) return 0;
  std::lock_guard file_lock(stream->file->mu);
  const auto& data = stream->file->data;
  if (stream->pos >= data.size()) return 0;
  const std::size_t available = data.size() - stream->pos;
  const std::size_t take = n < available ? n : available;
  std::memcpy(dst, data.data() + stream->pos, take);
  stream->pos += take;
  return take;
}

std::size_t SimFs::fwrite(const void* src, std::size_t n,
                          std::uint64_t handle) {
  charge();
  if (take_failure()) return 0;
  auto stream = find_stream(handle);
  if (!stream || !stream->writable) return 0;
  std::lock_guard file_lock(stream->file->mu);
  auto& data = stream->file->data;
  if (stream->append) stream->pos = data.size();
  if (stream->pos + n > data.size()) data.resize(stream->pos + n);
  std::memcpy(data.data() + stream->pos, src, n);
  stream->pos += n;
  return n;
}

int SimFs::fseeko(std::uint64_t handle, std::int64_t offset, int whence) {
  charge();
  auto stream = find_stream(handle);
  if (!stream) return -1;
  std::lock_guard file_lock(stream->file->mu);
  std::int64_t base = 0;
  switch (whence) {
    case SEEK_SET:
      base = 0;
      break;
    case SEEK_CUR:
      base = static_cast<std::int64_t>(stream->pos);
      break;
    case SEEK_END:
      base = static_cast<std::int64_t>(stream->file->data.size());
      break;
    default:
      return -1;
  }
  const std::int64_t target = base + offset;
  if (target < 0) return -1;
  stream->pos = static_cast<std::size_t>(target);
  return 0;
}

std::int64_t SimFs::ftello(std::uint64_t handle) {
  charge();
  auto stream = find_stream(handle);
  if (!stream) return -1;
  return static_cast<std::int64_t>(stream->pos);
}

int SimFs::fflush(std::uint64_t handle) {
  charge();
  return find_stream(handle) ? 0 : EOF;
}

int SimFs::open(const std::string& path, int flags) {
  charge();
  auto stream = std::make_shared<Stream>();
  const int access = flags & O_ACCMODE;
  stream->readable = access == O_RDONLY || access == O_RDWR;
  stream->writable = access == O_WRONLY || access == O_RDWR;

  std::lock_guard lock(mu_);
  if (path == "/dev/zero") {
    stream->dev = DevKind::kZero;
  } else if (path == "/dev/null") {
    stream->dev = DevKind::kNull;
  } else {
    auto it = files_.find(path);
    if (it == files_.end()) {
      if ((flags & O_CREAT) == 0) return -1;
      it = files_.emplace(path, std::make_shared<File>()).first;
    }
    stream->file = it->second;
    if ((flags & O_TRUNC) != 0 && stream->writable) {
      std::lock_guard file_lock(stream->file->mu);
      stream->file->data.clear();
    }
  }
  const int fd = next_fd_++;
  fds_[fd] = std::move(stream);
  return fd;
}

int SimFs::close(int fd) {
  charge();
  std::lock_guard lock(mu_);
  return fds_.erase(fd) != 0 ? 0 : -1;
}

std::int64_t SimFs::read(int fd, void* buf, std::size_t n) {
  charge();
  if (take_failure()) return -1;
  std::shared_ptr<Stream> stream;
  {
    std::lock_guard lock(mu_);
    const auto it = fds_.find(fd);
    if (it == fds_.end()) return -1;
    stream = it->second;
  }
  if (!stream->readable) return -1;
  switch (stream->dev) {
    case DevKind::kZero:
      std::memset(buf, 0, n);
      return static_cast<std::int64_t>(n);
    case DevKind::kNull:
      return 0;  // EOF
    case DevKind::kFile: {
      std::lock_guard file_lock(stream->file->mu);
      const auto& data = stream->file->data;
      if (stream->pos >= data.size()) return 0;
      const std::size_t take = std::min(n, data.size() - stream->pos);
      std::memcpy(buf, data.data() + stream->pos, take);
      stream->pos += take;
      return static_cast<std::int64_t>(take);
    }
  }
  return -1;
}

std::int64_t SimFs::write(int fd, const void* buf, std::size_t n) {
  charge();
  if (take_failure()) return -1;
  std::shared_ptr<Stream> stream;
  {
    std::lock_guard lock(mu_);
    const auto it = fds_.find(fd);
    if (it == fds_.end()) return -1;
    stream = it->second;
  }
  if (!stream->writable) return -1;
  switch (stream->dev) {
    case DevKind::kZero:
      return static_cast<std::int64_t>(n);
    case DevKind::kNull:
      return static_cast<std::int64_t>(n);  // discard
    case DevKind::kFile: {
      std::lock_guard file_lock(stream->file->mu);
      auto& data = stream->file->data;
      if (stream->pos + n > data.size()) data.resize(stream->pos + n);
      std::memcpy(data.data() + stream->pos, buf, n);
      stream->pos += n;
      return static_cast<std::int64_t>(n);
    }
  }
  return -1;
}

bool SimFs::exists(const std::string& path) const {
  std::lock_guard lock(mu_);
  return files_.contains(path);
}

std::size_t SimFs::file_size(const std::string& path) const {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) return 0;
  std::lock_guard file_lock(it->second->mu);
  return it->second->data.size();
}

void SimFs::remove(const std::string& path) {
  std::lock_guard lock(mu_);
  files_.erase(path);
}

void SimFs::clear() {
  failures_left_.store(0, std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  files_.clear();
  streams_.clear();
  fds_.clear();
}

}  // namespace zc
