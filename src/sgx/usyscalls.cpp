#include "sgx/usyscalls.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

#include "sgx/sim_fs.hpp"

namespace zc {
namespace {

template <typename Args>
Args* args_of(MarshalledCall& call) {
  return static_cast<Args*>(call.args);
}

FILE* file_of(std::uint64_t handle) {
  return reinterpret_cast<FILE*>(static_cast<std::uintptr_t>(handle));
}

}  // namespace

StdOcallIds register_std_ocalls(OcallTable& table, IoMode mode) {
  StdOcallIds ids;
  const bool sim = mode == IoMode::kSimulated;

  // The payload-carrying I/O handlers operate directly on call.payload (the
  // untrusted frame), so they are safe under the single-copy data plane —
  // declared via HandlerTraits so apps can assert eligibility.
  const HandlerTraits in_place{/*in_place_capable=*/true};

  ids.read = table.register_fn(
      "read",
      [sim](MarshalledCall& call) {
        auto* a = args_of<ReadArgs>(call);
        a->ret = sim ? SimFs::instance().read(a->fd, call.payload, a->count)
                     : ::read(a->fd, call.payload, a->count);
      },
      in_place);

  ids.write = table.register_fn(
      "write",
      [sim](MarshalledCall& call) {
        auto* a = args_of<WriteArgs>(call);
        a->ret = sim ? SimFs::instance().write(a->fd, call.payload, a->count)
                     : ::write(a->fd, call.payload, a->count);
      },
      in_place);

  ids.open = table.register_fn("open", [sim](MarshalledCall& call) {
    auto* a = args_of<OpenArgs>(call);
    a->ret = sim ? SimFs::instance().open(a->path, a->flags)
                 : ::open(a->path, a->flags, a->mode);
  });

  ids.close = table.register_fn("close", [sim](MarshalledCall& call) {
    auto* a = args_of<CloseArgs>(call);
    a->ret = sim ? SimFs::instance().close(a->fd) : ::close(a->fd);
  });

  ids.fopen = table.register_fn("fopen", [sim](MarshalledCall& call) {
    auto* a = args_of<FopenArgs>(call);
    if (sim) {
      a->handle = SimFs::instance().fopen(a->path, a->mode);
    } else {
      FILE* f = std::fopen(a->path, a->mode);
      a->handle =
          static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(f));
    }
  });

  ids.fclose = table.register_fn("fclose", [sim](MarshalledCall& call) {
    auto* a = args_of<FcloseArgs>(call);
    if (a->handle == 0) {
      a->ret = -1;
    } else {
      a->ret = sim ? SimFs::instance().fclose(a->handle)
                   : std::fclose(file_of(a->handle));
    }
  });

  ids.fread = table.register_fn(
      "fread",
      [sim](MarshalledCall& call) {
        auto* a = args_of<FreadArgs>(call);
        a->ret = sim ? SimFs::instance().fread(call.payload, a->size, a->handle)
                     : std::fread(call.payload, 1, a->size, file_of(a->handle));
      },
      in_place);

  ids.fwrite = table.register_fn(
      "fwrite",
      [sim](MarshalledCall& call) {
        auto* a = args_of<FwriteArgs>(call);
        a->ret = sim
                     ? SimFs::instance().fwrite(call.payload, a->size, a->handle)
                     : std::fwrite(call.payload, 1, a->size, file_of(a->handle));
      },
      in_place);

  ids.fseeko = table.register_fn("fseeko", [sim](MarshalledCall& call) {
    auto* a = args_of<FseekoArgs>(call);
    a->ret = sim ? SimFs::instance().fseeko(a->handle, a->offset, a->whence)
                 : ::fseeko(file_of(a->handle), a->offset, a->whence);
  });

  ids.ftello = table.register_fn("ftello", [sim](MarshalledCall& call) {
    auto* a = args_of<FtelloArgs>(call);
    a->ret = sim ? SimFs::instance().ftello(a->handle)
                 : ::ftello(file_of(a->handle));
  });

  ids.fflush = table.register_fn("fflush", [sim](MarshalledCall& call) {
    auto* a = args_of<FflushArgs>(call);
    a->ret = sim ? SimFs::instance().fflush(a->handle)
                 : std::fflush(file_of(a->handle));
  });

  ids.usleep = table.register_fn("usleep", [](MarshalledCall& call) {
    auto* a = args_of<UsleepArgs>(call);
    ::usleep(static_cast<useconds_t>(a->usec));
  });

  return ids;
}

}  // namespace zc
