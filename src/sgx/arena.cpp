#include "sgx/arena.hpp"

namespace zc {

ScratchArena::ScratchArena(std::size_t initial_capacity)
    : buffer_(std::make_unique<std::byte[]>(initial_capacity)),
      capacity_(initial_capacity) {}

void* ScratchArena::acquire(std::size_t size) {
  if (size > capacity_) {
    std::size_t grown = capacity_ == 0 ? 4096 : capacity_;
    while (grown < size) grown *= 2;
    buffer_ = std::make_unique<std::byte[]>(grown);
    capacity_ = grown;
  }
  return buffer_.get();
}

ScratchArena& ScratchArena::for_current_thread() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace zc
