#include "sgx/arena.hpp"

#include <new>

namespace zc {

namespace {
constexpr std::size_t kArenaAlign = 64;
}

void ScratchArena::Deleter::operator()(std::byte* p) const noexcept {
  ::operator delete(p, std::align_val_t(kArenaAlign));
}

std::byte* ScratchArena::allocate_aligned(std::size_t bytes) {
  return static_cast<std::byte*>(
      ::operator new(bytes, std::align_val_t(kArenaAlign)));
}

ScratchArena::ScratchArena(std::size_t initial_capacity)
    : buffer_(allocate_aligned(initial_capacity)),
      capacity_(initial_capacity) {}

void* ScratchArena::acquire(std::size_t size) {
  if (size > capacity_) {
    std::size_t grown = capacity_ == 0 ? 4096 : capacity_;
    while (grown < size) grown *= 2;
    buffer_.reset(allocate_aligned(grown));
    capacity_ = grown;
    ++grows_;
  }
  return buffer_.get();
}

ScratchArena& ScratchArena::for_current_thread() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace zc
