// Configuration of the simulated SGX machine.
//
// Defaults mirror the paper's testbed (§III "Setup" / §V "Experimental
// setup"): a 4-core / 8-hyper-thread Xeon E3-1275 v6, Intel SDK v2.14,
// measured ocall transition overhead ~13,500 cycles, 1 GB enclave heap,
// 93.5 MB of usable EPC.
#pragma once

#include <cstddef>
#include <cstdint>

namespace zc {

struct SimConfig {
  /// Full ocall round-trip transition overhead (EEXIT + host dispatch
  /// entry + EENTER), in cycles.  §IV-A: "~13,500 CPU cycles for our
  /// experimental setup".
  std::uint64_t tes_cycles = 13'500;

  /// Logical CPUs of the *simulated* machine (paper: 8 hyper-threads).
  /// Drives the scheduler's probe range (0..N/2 workers) and CPU-usage
  /// normalisation.
  unsigned logical_cpus = 8;

  /// Enclave heap budget (paper: "maximum heap sizes of 1 GB").
  std::size_t enclave_heap_bytes = std::size_t{1} << 30;

  /// EPC usable by enclaves (paper: 93.5 MB of the 128 MB EPC). Trusted
  /// allocations beyond this point pay a per-page paging penalty.
  std::size_t epc_usable_bytes = std::size_t{981'467'136} / 10;  // 93.5 MiB-ish

  /// Cycles charged per 4 KiB page that spills out of the EPC (models
  /// SGX1 EPC paging; ~zero-cost for the paper's workloads, but the
  /// accounting is observable in tests).
  std::uint64_t epc_page_fault_cycles = 40'000;

  /// Confine all simulated-machine threads to a host-CPU window of
  /// `logical_cpus` CPUs starting at `pin_base_cpu` (benches enable this).
  bool pin_threads = false;
  unsigned pin_base_cpu = 0;

  /// Fraction of tes_cycles charged on EEXIT (the rest on EENTER).
  /// The split is not observable in the paper; 50/50 by default.
  double eexit_fraction = 0.5;
};

}  // namespace zc
