#include "sgx/backend.hpp"

namespace zc {

const char* to_string(CallPath path) noexcept {
  switch (path) {
    case CallPath::kRegular:
      return "regular";
    case CallPath::kSwitchless:
      return "switchless";
    case CallPath::kFallback:
      return "fallback";
  }
  return "?";
}

const char* to_string(CallDirection direction) noexcept {
  switch (direction) {
    case CallDirection::kOcall:
      return "ocall";
    case CallDirection::kEcall:
      return "ecall";
  }
  return "?";
}

}  // namespace zc
