#include "sgx/backend.hpp"

namespace zc {

const char* to_string(CallPath path) noexcept {
  switch (path) {
    case CallPath::kRegular:
      return "regular";
    case CallPath::kSwitchless:
      return "switchless";
    case CallPath::kFallback:
      return "fallback";
  }
  return "?";
}

const char* to_string(CallDirection direction) noexcept {
  switch (direction) {
    case CallDirection::kOcall:
      return "ocall";
    case CallDirection::kEcall:
      return "ecall";
  }
  return "?";
}

const char* to_string(FramePoolKind pool) noexcept {
  switch (pool) {
    case FramePoolKind::kBump:
      return "bump";
    case FramePoolKind::kSlab:
      return "slab";
  }
  return "?";
}

const char* to_string(CopyMode mode) noexcept {
  switch (mode) {
    case CopyMode::kDouble:
      return "double";
    case CopyMode::kSingle:
      return "single";
  }
  return "?";
}

BackendStatsSnapshot BackendStats::snapshot() const noexcept {
  BackendStatsSnapshot s;
  s.regular_calls = regular_calls.load();
  s.switchless_calls = switchless_calls.load();
  s.fallback_calls = fallback_calls.load();
  s.pool_resets = pool_resets.load();
  s.worker_sleeps = worker_sleeps.load();
  s.worker_wakeups = worker_wakeups.load();
  s.batch_flushes = batch_flushes.load();
  s.caller_yields = caller_yields.load();
  s.caller_sleeps = caller_sleeps.load();
  s.caller_wakeups = caller_wakeups.load();
  s.steals = steals.load();
  s.wake_batches = wake_batches.load();
  s.slab_hits = slab_hits.load();
  s.slab_misses = slab_misses.load();
  s.slab_grows = slab_grows.load();
  s.copies_elided = copies_elided.load();
  s.in_flight = in_flight.load();
  return s;
}

BackendStatsSnapshot& BackendStatsSnapshot::merge(
    const BackendStatsSnapshot& other) noexcept {
  regular_calls += other.regular_calls;
  switchless_calls += other.switchless_calls;
  fallback_calls += other.fallback_calls;
  pool_resets += other.pool_resets;
  worker_sleeps += other.worker_sleeps;
  worker_wakeups += other.worker_wakeups;
  batch_flushes += other.batch_flushes;
  caller_yields += other.caller_yields;
  caller_sleeps += other.caller_sleeps;
  caller_wakeups += other.caller_wakeups;
  steals += other.steals;
  wake_batches += other.wake_batches;
  slab_hits += other.slab_hits;
  slab_misses += other.slab_misses;
  slab_grows += other.slab_grows;
  copies_elided += other.copies_elided;
  in_flight += other.in_flight;
  return *this;
}

}  // namespace zc
