// Cross-boundary argument marshalling.
//
// As in edger8r-generated stubs, every ocall copies its argument struct and
// any [in] buffer from trusted to untrusted memory, and copies the argument
// struct (return values) and any [out] buffer back after the call.  All of
// these copies go through tlibc's *active* memcpy, so the memcpy
// implementation choice (intel vs zc) affects ocall throughput exactly as
// in the paper (Figs. 7 and 13).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sgx/ocall_table.hpp"

namespace zc {

/// Trusted-side description of one ocall. The pointed-to memory is
/// "enclave" memory; the marshalling layer never hands these pointers to
/// untrusted code, only copies of their contents.
struct CallDesc {
  std::uint32_t fn_id = 0;
  void* args = nullptr;          ///< in/out args struct (includes returns)
  std::uint32_t args_size = 0;
  const void* in_payload = nullptr;  ///< [in] buffer, copied t→u
  std::size_t in_size = 0;
  void* out_payload = nullptr;  ///< [out] buffer, copied u→t after the call
  std::size_t out_size = 0;

  /// Untrusted payload capacity needed (single area serves both ways).
  std::size_t payload_capacity() const noexcept {
    return in_size > out_size ? in_size : out_size;
  }
};

/// Untrusted frame layout: FrameHeader | args bytes | payload bytes.
struct FrameHeader {
  std::uint32_t fn_id = 0;
  std::uint32_t args_size = 0;
  std::uint64_t payload_size = 0;
};

/// Bytes of untrusted memory needed to marshal `desc`.
std::size_t frame_bytes(const CallDesc& desc) noexcept;

/// Marshals `desc` into the untrusted block `mem` (>= frame_bytes(desc)).
/// Copies args and the [in] payload via the active memcpy.  Returns the
/// untrusted view handed to handlers/workers.
MarshalledCall marshal_into(void* mem, const CallDesc& desc) noexcept;

/// Re-creates the untrusted view of a previously marshalled frame.
MarshalledCall frame_view(void* mem) noexcept;

/// Copies results (args struct and [out] payload) back into trusted memory.
void unmarshal_from(const MarshalledCall& call, const CallDesc& desc) noexcept;

}  // namespace zc
