// Cross-boundary argument marshalling.
//
// As in edger8r-generated stubs, every ocall copies its argument struct and
// any [in] buffer from trusted to untrusted memory, and copies the argument
// struct (return values) and any [out] buffer back after the call.  All of
// these copies go through tlibc's *active* memcpy, so the memcpy
// implementation choice (intel vs zc vs zc_nt) affects ocall throughput
// exactly as in the paper (Figs. 7 and 13).
//
// Two data-plane generalizations layer on top of the classic double-copy
// scheme:
//
//  * Scatter-gather: a CallDesc may describe its [in]/[out] payload as
//    iovec-style segment lists instead of one contiguous buffer.  The
//    frame payload stays contiguous (handlers are oblivious); marshalling
//    gathers the [in] segments on entry and scatters the [out] bytes back
//    on exit.
//
//  * Single-copy: a CallDesc may carry an in-place producer/consumer pair
//    instead of materialized trusted buffers.  The producer writes the
//    [in] bytes directly into the untrusted frame (the paper's zero-copy
//    request building) and the consumer reads the [out] bytes directly
//    from it, eliminating the trusted staging copy on each side.  Only
//    valid against handlers registered in_place_capable; backends built
//    with `copy=single` advertise the mode via CallBackend::copy_mode().
#pragma once

#include <cstddef>
#include <cstdint>

#include "sgx/ocall_table.hpp"

namespace zc {

/// One gather segment of an [in] payload (iovec-style).
struct IoVec {
  const void* data = nullptr;
  std::size_t size = 0;
};

/// One scatter segment of an [out] payload.
struct IoVecMut {
  void* data = nullptr;
  std::size_t size = 0;
};

/// Writes exactly `n` [in] payload bytes into untrusted `dst` (single-copy
/// producers).  `ctx` is CallDesc::inplace_ctx.
using PayloadProducer = void (*)(void* dst, std::size_t n, void* ctx);
/// Reads exactly `n` [out] payload bytes from untrusted `src`.
using PayloadConsumer = void (*)(const void* src, std::size_t n, void* ctx);

/// Trusted-side description of one ocall. The pointed-to memory is
/// "enclave" memory; the marshalling layer never hands these pointers to
/// untrusted code, only copies of their contents.
///
/// Payload forms, in precedence order per direction:
///   1. in-place producer/consumer (`produce_in`/`consume_out` non-null;
///      `in_size`/`out_size` give the byte counts) — no trusted buffer;
///   2. segment list (`in_segs`/`out_segs` non-null) — gathered/scattered;
///   3. legacy single buffer (`in_payload`/`out_payload`).
struct CallDesc {
  std::uint32_t fn_id = 0;
  void* args = nullptr;          ///< in/out args struct (includes returns)
  std::uint32_t args_size = 0;
  const void* in_payload = nullptr;  ///< [in] buffer, copied t→u
  std::size_t in_size = 0;
  void* out_payload = nullptr;  ///< [out] buffer, copied u→t after the call
  std::size_t out_size = 0;

  const IoVec* in_segs = nullptr;  ///< optional [in] gather list
  std::uint32_t in_seg_count = 0;
  const IoVecMut* out_segs = nullptr;  ///< optional [out] scatter list
  std::uint32_t out_seg_count = 0;

  PayloadProducer produce_in = nullptr;   ///< single-copy [in] builder
  PayloadConsumer consume_out = nullptr;  ///< single-copy [out] reader
  void* inplace_ctx = nullptr;

  /// Total [in] bytes across whichever payload form is in use.
  std::size_t total_in_size() const noexcept {
    if (produce_in != nullptr || in_segs == nullptr) return in_size;
    std::size_t n = 0;
    for (std::uint32_t i = 0; i < in_seg_count; ++i) n += in_segs[i].size;
    return n;
  }

  /// Total [out] bytes across whichever payload form is in use.
  std::size_t total_out_size() const noexcept {
    if (consume_out != nullptr || out_segs == nullptr) return out_size;
    std::size_t n = 0;
    for (std::uint32_t i = 0; i < out_seg_count; ++i) n += out_segs[i].size;
    return n;
  }

  /// Untrusted payload capacity needed (single area serves both ways).
  std::size_t payload_capacity() const noexcept {
    const std::size_t in = total_in_size();
    const std::size_t out = total_out_size();
    return in > out ? in : out;
  }

  /// True when this descriptor uses the single-copy in-place path for at
  /// least one direction.
  bool single_copy() const noexcept {
    return produce_in != nullptr || consume_out != nullptr;
  }
};

/// Untrusted frame layout: FrameHeader | args bytes | payload bytes.
/// 32 bytes so the args area keeps its 16-byte alignment.
struct FrameHeader {
  std::uint32_t fn_id = 0;
  std::uint32_t args_size = 0;
  std::uint64_t payload_size = 0;
  std::uint32_t flags = 0;  ///< MarshalledCall::kSingleCopy etc.
  std::uint32_t reserved0 = 0;
  std::uint64_t reserved1 = 0;
};

/// Bytes of untrusted memory needed to marshal `desc`.
std::size_t frame_bytes(const CallDesc& desc) noexcept;

/// Marshals `desc` into the untrusted block `mem` (>= frame_bytes(desc)).
/// Copies args and gathers the [in] payload via the active memcpy — or,
/// on the single-copy path, lets desc.produce_in build it in place.
/// Returns the untrusted view handed to handlers/workers.
MarshalledCall marshal_into(void* mem, const CallDesc& desc) noexcept;

/// Re-creates the untrusted view of a previously marshalled frame.
MarshalledCall frame_view(void* mem) noexcept;

/// Copies results (args struct and [out] payload) back into trusted
/// memory, scattering across desc.out_segs when present — or, on the
/// single-copy path, lets desc.consume_out read them in place.
void unmarshal_from(const MarshalledCall& call, const CallDesc& desc) noexcept;

/// Trusted staging copies this descriptor avoids per round trip (0-2):
/// one per in-place producer/consumer present.  Backends add this to
/// their copies_elided counter as calls complete.
inline std::uint64_t copies_elided_by(const CallDesc& desc) noexcept {
  return (desc.produce_in != nullptr ? 1u : 0u) +
         (desc.consume_out != nullptr ? 1u : 0u);
}

}  // namespace zc
