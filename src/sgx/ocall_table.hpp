// Registry of untrusted functions callable from the enclave.
//
// Mirrors the edger8r-generated ocall table of the Intel SDK: each ocall is
// an id into a table of untrusted handlers; the handler receives the
// marshalled call frame living in untrusted memory.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace zc {

/// Untrusted view of a marshalled call (see marshal.hpp for the layout).
struct MarshalledCall {
  /// Bit set in `flags` when the frame was built on the single-copy path
  /// (the caller produced/consumes the payload in place; see CallDesc).
  static constexpr std::uint32_t kSingleCopy = 1u << 0;

  void* args = nullptr;         ///< args struct, includes return slots
  std::uint32_t args_size = 0;  ///< bytes of the args struct
  void* payload = nullptr;      ///< optional data buffer ([in]/[out])
  std::size_t payload_size = 0;
  std::uint32_t flags = 0;      ///< kSingleCopy et al., persisted in frame
};

/// An untrusted handler. Runs outside the (simulated) enclave — on the
/// caller thread for regular ocalls, on a worker thread for switchless ones.
using OcallHandler = std::function<void(MarshalledCall&)>;

/// Static properties a handler declares at registration time.
struct HandlerTraits {
  /// The handler reads its [in] bytes from and writes its [out] bytes to
  /// `call.payload` directly (no private aliasing assumptions), so callers
  /// may build/consume that payload in place under `copy=single` instead
  /// of staging through a trusted bounce buffer.
  bool in_place_capable = false;
};

class OcallTable {
 public:
  /// Registers a handler and returns its id. Not thread-safe: all
  /// registration happens before threads start (as with edger8r tables).
  std::uint32_t register_fn(std::string name, OcallHandler handler);

  /// As above, with explicit traits (in-place capability etc).
  std::uint32_t register_fn(std::string name, OcallHandler handler,
                            HandlerTraits traits);

  /// True when handler `id` was registered in-place-capable. False for
  /// out-of-range ids (conservative: unknown handlers get the copy path).
  bool in_place_capable(std::uint32_t id) const noexcept;

  /// Invokes handler `id` on `call`. Throws std::out_of_range for bad ids.
  void dispatch(std::uint32_t id, MarshalledCall& call) const;

  const std::string& name(std::uint32_t id) const;

  /// Id of the first handler registered under `name`, if any.  Names need
  /// not be unique (see the synthetic f/f#alias pair); the earliest
  /// registration wins, matching the primary-id convention.
  std::optional<std::uint32_t> find(std::string_view name) const noexcept;

  std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    OcallHandler handler;
    HandlerTraits traits;
  };
  std::vector<Entry> entries_;
};

}  // namespace zc
