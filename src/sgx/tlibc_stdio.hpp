// Trusted-side libc facade: the in-enclave API applications program
// against.  Every operation relays to the corresponding untrusted shim via
// an ocall through the enclave's installed backend, exactly like the
// tlibc-unsupported routines of §II ("unsupported routines not implemented
// by the tlibc must be relayed to the untrusted part via ocalls").
#pragma once

#include <cstdint>
#include <string>

#include "sgx/enclave.hpp"
#include "sgx/usyscalls.hpp"

namespace zc {

class TFile;

/// Per-enclave trusted libc instance.  Registers the standard ocalls on
/// construction; cheap to copy references around (apps take EnclaveLibc&).
class EnclaveLibc {
 public:
  /// Registers the standard ocall set into `enclave`'s table.  Create one
  /// per enclave, before threads start issuing calls.  `io` selects the
  /// untrusted world: the host OS or the SimFs benchmark substrate.
  explicit EnclaveLibc(Enclave& enclave, IoMode io = IoMode::kReal)
      : enclave_(&enclave),
        ids_(register_std_ocalls(enclave.ocalls(), io)),
        io_(io) {}

  IoMode io_mode() const noexcept { return io_; }

  Enclave& enclave() const noexcept { return *enclave_; }
  const StdOcallIds& ids() const noexcept { return ids_; }

  // POSIX fd API ----------------------------------------------------------

  /// open(2) via ocall. Returns the untrusted fd (or -1).
  int open(const char* path, int flags, unsigned mode = 0644);
  int close(int fd);
  /// read(2) into trusted buffer `buf` ([out] payload copy included).
  std::int64_t read(int fd, void* buf, std::size_t count);
  /// write(2) from trusted buffer `buf` ([in] payload copy included).
  std::int64_t write(int fd, const void* buf, std::size_t count);
  void usleep(std::uint64_t usec);

  // stdio API ---------------------------------------------------------------

  /// fopen via ocall; returned TFile is bound to this libc instance.
  TFile fopen(const char* path, const char* mode);

 private:
  friend class TFile;
  Enclave* enclave_;
  StdOcallIds ids_;
  IoMode io_ = IoMode::kReal;
};

/// Trusted handle to an untrusted FILE. Move-only RAII: closes on destroy.
class TFile {
 public:
  TFile() = default;
  TFile(TFile&& other) noexcept { *this = std::move(other); }
  TFile& operator=(TFile&& other) noexcept;
  ~TFile();

  TFile(const TFile&) = delete;
  TFile& operator=(const TFile&) = delete;

  /// True when the file was opened successfully.
  explicit operator bool() const noexcept { return handle_ != 0; }

  /// fread into trusted memory; returns bytes read.
  std::size_t read(void* buf, std::size_t size);
  /// fwrite from trusted memory; returns bytes written.
  std::size_t write(const void* buf, std::size_t size);
  /// fseeko; whence is SEEK_SET/SEEK_CUR/SEEK_END. Returns 0 on success.
  int seek(std::int64_t offset, int whence);
  /// ftello; returns -1 on error.
  std::int64_t tell();
  /// fflush; returns 0 on success.
  int flush();
  /// fclose; idempotent. Returns the fclose result (0 if already closed).
  int close();

  /// The opaque untrusted FILE handle, for callers that build their own
  /// CallDesc against the fread/fwrite ocalls (e.g. the single-copy data
  /// plane, which attaches an in-place producer/consumer instead of going
  /// through read()/write()'s trusted staging buffers).  0 when closed.
  std::uint64_t native_handle() const noexcept { return handle_; }

 private:
  friend class EnclaveLibc;
  TFile(EnclaveLibc* libc, std::uint64_t handle) noexcept
      : libc_(libc), handle_(handle) {}

  EnclaveLibc* libc_ = nullptr;
  std::uint64_t handle_ = 0;
};

}  // namespace zc
