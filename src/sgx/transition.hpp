// Enclave transition cost model.
//
// A regular ocall is: EEXIT + untrusted host processing + EENTER (§II).
// The hardware costs (cache/TLB flushes, core synchronisation) are simulated
// by burning a calibrated number of TSC cycles on the calling thread, so the
// cost lands exactly where it does on real SGX: on the caller, while it
// occupies a hardware thread.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "sgx/sim_config.hpp"

namespace zc {

class TransitionModel {
 public:
  explicit TransitionModel(const SimConfig& cfg) noexcept;

  /// Charges the EEXIT half of an ocall on the calling thread.
  void eexit() noexcept;

  /// Charges the EENTER half of an ocall on the calling thread.
  void eenter() noexcept;

  /// Charges one full ecall round trip (enter + exit on return).
  void ecall_roundtrip() noexcept;

  /// Full ocall round-trip overhead in cycles (the paper's T_es).
  std::uint64_t tes_cycles() const noexcept { return tes_cycles_; }

  std::uint64_t eexit_count() const noexcept { return eexits_.load(); }
  std::uint64_t eenter_count() const noexcept { return eenters_.load(); }
  std::uint64_t ecall_count() const noexcept { return ecalls_.load(); }

  /// Total cycles burned in transitions so far (all threads).
  std::uint64_t burned_cycles() const noexcept { return burned_.load(); }

 private:
  std::uint64_t tes_cycles_;
  std::uint64_t eexit_cycles_;
  std::uint64_t eenter_cycles_;
  PaddedCounter eexits_;
  PaddedCounter eenters_;
  PaddedCounter ecalls_;
  PaddedCounter burned_;
};

}  // namespace zc
