// Call-backend abstraction.
//
// Every evaluation in the paper compares three ways of executing the same
// ocalls: regular transitions (`no_sl`), Intel's static switchless library
// (`i-*`), and ZC-Switchless (`zc`).  A CallBackend encapsulates one of
// these policies behind a single `invoke` entry point so applications and
// benches are mode-agnostic.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "sgx/marshal.hpp"

namespace zc {

class Enclave;

/// Which way a switchless backend crosses the enclave boundary: serving
/// ocalls with untrusted workers, or ecalls with trusted in-enclave
/// workers (§II: the technique applies symmetrically).
enum class CallDirection : std::uint8_t {
  kOcall,  ///< enclave caller -> untrusted worker
  kEcall,  ///< untrusted caller -> trusted worker
};

/// How one specific call ended up being executed.
enum class CallPath : std::uint8_t {
  kRegular,     ///< normal ocall: paid a full enclave transition
  kSwitchless,  ///< served by a worker thread, no transition
  kFallback,    ///< wanted switchless, fell back to a regular ocall
};

/// Which allocator backs a switchless backend's untrusted call frames
/// (`pool=` spec option).
enum class FramePoolKind : std::uint8_t {
  kBump,  ///< per-worker/per-slot bump pools, whole-pool reset on full
  kSlab,  ///< shared size-classed SlabPool, per-frame free, no size cliff
};

/// How payload bytes cross the trusted staging boundary (`copy=` option).
enum class CopyMode : std::uint8_t {
  kDouble,  ///< classic edger8r scheme: stage through trusted buffers
  kSingle,  ///< callers produce/consume payloads in the untrusted frame
};

const char* to_string(CallPath path) noexcept;
const char* to_string(CallDirection direction) noexcept;
const char* to_string(FramePoolKind pool) noexcept;
const char* to_string(CopyMode mode) noexcept;

struct BackendStatsSnapshot;

/// Counters shared by all backends (padded; updated from many threads).
struct BackendStats {
  PaddedCounter regular_calls;     ///< calls that took the regular path
  PaddedCounter switchless_calls;  ///< calls served by a worker
  PaddedCounter fallback_calls;    ///< switchless attempts that fell back
  PaddedCounter pool_resets;       ///< worker request-pool reallocations
  PaddedCounter worker_sleeps;     ///< workers that went to sleep (rbs)
  PaddedCounter worker_wakeups;    ///< sleeping workers woken by a caller
  PaddedCounter batch_flushes;     ///< batched-backend buffer flushes
  PaddedCounter caller_yields;     ///< yields by callers whose spin expired
                                   ///< (one per yield, not one per call)
  PaddedCounter caller_sleeps;     ///< blocked callers that went to sleep
                                   ///< (CompletionGate futex/condvar wait)
  PaddedCounter caller_wakeups;    ///< sleeping callers woken by a worker
  PaddedCounter steals;            ///< calls served by a non-primary shard
                                   ///< (sharded backend, steal=on)
  PaddedCounter wake_batches;      ///< coalesced wake broadcasts: one per
                                   ///< notify_batch() a worker issued in
                                   ///< place of per-slot caller wakeups
  PaddedCounter slab_hits;         ///< slab-pool frame allocs served from a
                                   ///< thread-local magazine or central list
  PaddedCounter slab_misses;       ///< slab-pool allocs that had to carve a
                                   ///< fresh block (cold class)
  PaddedCounter slab_grows;        ///< slab-pool slab extensions (one per
                                   ///< multi-block growth of a size class)
  PaddedCounter copies_elided;     ///< payload copies skipped by copy=single
                                   ///< (handler consumed/produced in place)
  /// Calls currently occupying one of this backend's workers (claimed
  /// through collected).  This is the cheap per-shard load signal the
  /// sharded backend's load-aware selectors read: a level, not a total.
  PaddedGauge in_flight;

  std::uint64_t total_calls() const noexcept {
    return regular_calls.load() + switchless_calls.load() +
           fallback_calls.load();
  }

  /// Point-in-time copy of every counter (plain integers, mergeable).
  BackendStatsSnapshot snapshot() const noexcept;
};

/// A plain-integer copy of BackendStats, taken at one instant.  Composed
/// backends merge the snapshots of their layers into one rolled-up view
/// (e.g. a sharded router sums its shards and adds its own router-only
/// counters), while each layer's own snapshot stays available per shard.
struct BackendStatsSnapshot {
  std::uint64_t regular_calls = 0;
  std::uint64_t switchless_calls = 0;
  std::uint64_t fallback_calls = 0;
  std::uint64_t pool_resets = 0;
  std::uint64_t worker_sleeps = 0;
  std::uint64_t worker_wakeups = 0;
  std::uint64_t batch_flushes = 0;
  std::uint64_t caller_yields = 0;
  std::uint64_t caller_sleeps = 0;
  std::uint64_t caller_wakeups = 0;
  std::uint64_t steals = 0;
  std::uint64_t wake_batches = 0;
  std::uint64_t slab_hits = 0;
  std::uint64_t slab_misses = 0;
  std::uint64_t slab_grows = 0;
  std::uint64_t copies_elided = 0;
  std::uint64_t in_flight = 0;

  std::uint64_t total_calls() const noexcept {
    return regular_calls + switchless_calls + fallback_calls;
  }

  /// Field-wise sum; returns *this for chaining.
  BackendStatsSnapshot& merge(const BackendStatsSnapshot& other) noexcept;
};

class CallBackend {
 public:
  virtual ~CallBackend() = default;

  /// Starts worker/scheduler threads (idempotent for workerless backends).
  virtual void start() {}

  /// Stops and joins all threads owned by the backend.
  virtual void stop() {}

  /// Executes one ocall described by `desc` on behalf of the calling
  /// (simulated) enclave thread.  Blocking; returns after results have been
  /// unmarshalled back into trusted memory.
  virtual CallPath invoke(const CallDesc& desc) = 0;

  /// The switchless half of invoke(): runs `desc` on a worker and returns
  /// true, or returns false *without side effects* when the backend has no
  /// capacity right now (no idle worker/slot, oversized frame, stopped).
  /// Never executes a regular fallback — the caller decides what a refusal
  /// means.  Routing layers (the sharded router's steal probe) use this to
  /// try a backend without committing to its fallback path; the default
  /// refuses, so composition over a backend without the hook degrades to
  /// plain invoke() routing.
  virtual bool try_invoke_switchless(const CallDesc& desc) {
    (void)desc;
    return false;
  }

  virtual const char* name() const noexcept = 0;

  /// Lifetime counters.  Live: callers may cache the reference and read
  /// deltas across a run, so implementations must update these counters as
  /// calls complete (not lazily on read).
  const BackendStats& stats() const noexcept { return stats_; }

  /// Point-in-time counter copy.  Plain backends snapshot stats();
  /// composed backends (the sharded router) roll the layers up so e.g. a
  /// zc_batched inner's batch_flushes surface at the top.
  virtual BackendStatsSnapshot stats_snapshot() const {
    return stats_.snapshot();
  }

  /// The payload copy discipline this backend was built with (`copy=`).
  /// Apps and benches query it to pick the staging (kDouble) or in-place
  /// (kSingle) CallDesc form; see marshal.hpp.
  virtual CopyMode copy_mode() const noexcept { return CopyMode::kDouble; }

  /// Composed backends expose their constituent layers so benches can emit
  /// one stats row per layer (a sharded router's shards plotted
  /// individually, not just the rolled-up sum).  Plain backends have no
  /// sub-layers: layer_count() == 0.
  virtual unsigned layer_count() const noexcept { return 0; }

  /// Snapshot of layer `i` (i < layer_count()).  Out-of-range indices
  /// return an empty snapshot.
  virtual BackendStatsSnapshot layer_snapshot(unsigned i) const {
    (void)i;
    return {};
  }

  /// Human-readable name of layer `i` ("shard0", ...); "" out of range.
  virtual const char* layer_name(unsigned i) const noexcept {
    (void)i;
    return "";
  }

  /// Number of workers currently allowed to serve calls (0 for regular).
  virtual unsigned active_workers() const noexcept { return 0; }

  /// Applies a worker count (tests / scheduler-off ablations).  No-op for
  /// workerless backends; composed backends forward to every layer.
  virtual void set_active_workers(unsigned m) { (void)m; }

 protected:
  BackendStats stats_;
};

}  // namespace zc
