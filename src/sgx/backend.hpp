// Call-backend abstraction.
//
// Every evaluation in the paper compares three ways of executing the same
// ocalls: regular transitions (`no_sl`), Intel's static switchless library
// (`i-*`), and ZC-Switchless (`zc`).  A CallBackend encapsulates one of
// these policies behind a single `invoke` entry point so applications and
// benches are mode-agnostic.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "sgx/marshal.hpp"

namespace zc {

class Enclave;

/// Which way a switchless backend crosses the enclave boundary: serving
/// ocalls with untrusted workers, or ecalls with trusted in-enclave
/// workers (§II: the technique applies symmetrically).
enum class CallDirection : std::uint8_t {
  kOcall,  ///< enclave caller -> untrusted worker
  kEcall,  ///< untrusted caller -> trusted worker
};

/// How one specific call ended up being executed.
enum class CallPath : std::uint8_t {
  kRegular,     ///< normal ocall: paid a full enclave transition
  kSwitchless,  ///< served by a worker thread, no transition
  kFallback,    ///< wanted switchless, fell back to a regular ocall
};

const char* to_string(CallPath path) noexcept;
const char* to_string(CallDirection direction) noexcept;

/// Counters shared by all backends (padded; updated from many threads).
struct BackendStats {
  PaddedCounter regular_calls;     ///< calls that took the regular path
  PaddedCounter switchless_calls;  ///< calls served by a worker
  PaddedCounter fallback_calls;    ///< switchless attempts that fell back
  PaddedCounter pool_resets;       ///< worker request-pool reallocations
  PaddedCounter worker_sleeps;     ///< workers that went to sleep (rbs)
  PaddedCounter worker_wakeups;    ///< sleeping workers woken by a caller
  PaddedCounter batch_flushes;     ///< batched-backend buffer flushes
  PaddedCounter caller_yields;     ///< yields by callers whose spin expired
                                   ///< (one per yield, not one per call)
  PaddedCounter steals;            ///< calls served by a non-primary shard
                                   ///< (sharded backend, steal=on)
  /// Calls currently occupying one of this backend's workers (claimed
  /// through collected).  This is the cheap per-shard load signal the
  /// sharded backend's least_loaded selector reads: a level, not a total.
  PaddedGauge in_flight;

  std::uint64_t total_calls() const noexcept {
    return regular_calls.load() + switchless_calls.load() +
           fallback_calls.load();
  }
};

class CallBackend {
 public:
  virtual ~CallBackend() = default;

  /// Starts worker/scheduler threads (idempotent for workerless backends).
  virtual void start() {}

  /// Stops and joins all threads owned by the backend.
  virtual void stop() {}

  /// Executes one ocall described by `desc` on behalf of the calling
  /// (simulated) enclave thread.  Blocking; returns after results have been
  /// unmarshalled back into trusted memory.
  virtual CallPath invoke(const CallDesc& desc) = 0;

  virtual const char* name() const noexcept = 0;

  /// Lifetime counters.  Live: callers may cache the reference and read
  /// deltas across a run, so implementations must update these counters as
  /// calls complete (not lazily on read).
  const BackendStats& stats() const noexcept { return stats_; }

  /// Number of workers currently allowed to serve calls (0 for regular).
  virtual unsigned active_workers() const noexcept { return 0; }

 protected:
  BackendStats stats_;
};

}  // namespace zc
