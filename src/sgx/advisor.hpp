// Static-configuration advisor.
//
// The Intel SGX reference tells developers to "configure a routine as
// switchless if it has short duration and is frequently called" — §III-A's
// point is that developers have neither number at build time.  The advisor
// closes that loop for deployments stuck with the static SDK: feed it a
// CallProfiler from a representative run and it emits the switchless set
// (and worker-count hint) the SDK rule implies.  ZC itself needs none of
// this — which is the paper's thesis — but the advisor makes the baseline
// configurable from measurements instead of guesses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sgx/profiler.hpp"

namespace zc {

struct AdvisorPolicy {
  /// "Short duration": mean call cost below this multiple of T_es.
  /// A switchless call only pays off when its body is cheaper than the
  /// transition it avoids; 1.0 is the break-even default.
  double short_call_tes_ratio = 1.0;

  /// "Frequently called": at least this share of all recorded calls.
  double min_call_share = 0.01;

  /// Workers-hint cap (the SDK wastes CPU beyond ~cores/2, §III-B).
  unsigned max_workers_hint = 4;
};

struct Advice {
  std::uint32_t fn_id = 0;
  std::string name;
  bool make_switchless = false;
  double mean_cycles = 0;
  double call_share = 0;
  std::string reason;
};

struct AdvisorReport {
  std::vector<Advice> per_fn;           ///< one entry per observed routine
  std::vector<std::uint32_t> switchless_set;  ///< recommended ids
  unsigned workers_hint = 0;            ///< suggested worker count
};

/// Derives a static switchless configuration from profiled data.
/// `tes_cycles` is the machine's transition cost (TransitionModel).
AdvisorReport advise_switchless(const CallProfiler& profiler,
                                const OcallTable& names,
                                std::uint64_t tes_cycles,
                                const AdvisorPolicy& policy = {});

}  // namespace zc
