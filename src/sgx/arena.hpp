// Per-thread untrusted scratch arena for regular-ocall frames.
//
// A regular ocall in the SDK marshals into untrusted stack/heap memory that
// lives only for the duration of the call; we model that with a per-thread
// arena that is reset after each call.  Growing beyond the initial
// reservation is allowed (large write() payloads), mirroring edger8r's
// malloc fallback.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace zc {

class ScratchArena {
 public:
  explicit ScratchArena(std::size_t initial_capacity = 64 * 1024);

  /// Returns a block of at least `size` bytes (64-byte aligned, matching
  /// the switchless frame pools), valid until the next acquire().  Grows
  /// geometrically when needed and keeps the high-water capacity across
  /// calls, so a steady stream of large frames reallocates only while the
  /// watermark still rises; each reallocation is counted in grow_count().
  void* acquire(std::size_t size);

  std::size_t capacity() const noexcept { return capacity_; }

  /// Number of reallocations acquire() has performed (growth events).
  std::uint64_t grow_count() const noexcept { return grows_; }

  /// The calling thread's arena (created on first use).
  static ScratchArena& for_current_thread();

 private:
  struct Deleter {
    void operator()(std::byte* p) const noexcept;
  };

  static std::byte* allocate_aligned(std::size_t bytes);

  std::unique_ptr<std::byte[], Deleter> buffer_;
  std::size_t capacity_;
  std::uint64_t grows_ = 0;
};

}  // namespace zc
