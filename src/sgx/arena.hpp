// Per-thread untrusted scratch arena for regular-ocall frames.
//
// A regular ocall in the SDK marshals into untrusted stack/heap memory that
// lives only for the duration of the call; we model that with a per-thread
// arena that is reset after each call.  Growing beyond the initial
// reservation is allowed (large write() payloads), mirroring edger8r's
// malloc fallback.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace zc {

class ScratchArena {
 public:
  explicit ScratchArena(std::size_t initial_capacity = 64 * 1024);

  /// Returns a block of at least `size` bytes (16-byte aligned), valid
  /// until the next acquire(). Grows the arena if needed.
  void* acquire(std::size_t size);

  std::size_t capacity() const noexcept { return capacity_; }

  /// The calling thread's arena (created on first use).
  static ScratchArena& for_current_thread();

 private:
  std::unique_ptr<std::byte[]> buffer_;
  std::size_t capacity_;
};

}  // namespace zc
