#include "hotcalls/hotcalls.hpp"

#include "common/cycles.hpp"
#include "common/pin.hpp"

namespace zc::hotcalls {

HotCallsBackend::HotCallsBackend(Enclave& enclave, HotCallsConfig cfg)
    : enclave_(enclave),
      cfg_(std::move(cfg)),
      slots_(cfg_.num_workers == 0 ? 1 : cfg_.num_workers) {
  for (auto& slot : slots_) {
    slot.frame = std::make_unique<std::byte[]>(cfg_.slot_frame_bytes);
    slot.frame_capacity = cfg_.slot_frame_bytes;
  }
}

HotCallsBackend::~HotCallsBackend() { stop(); }

void HotCallsBackend::start() {
  if (cfg_.num_workers == 0) return;
  if (running_.exchange(true)) return;
  responders_.reserve(cfg_.num_workers);
  for (unsigned i = 0; i < cfg_.num_workers; ++i) {
    responders_.emplace_back([this, i] { responder_main(i); });
  }
  while (started_.load(std::memory_order_acquire) < cfg_.num_workers) {
    std::this_thread::yield();
  }
}

void HotCallsBackend::stop() {
  if (!running_.exchange(false)) return;
  responders_.clear();  // jthread joins; responders exit on !running_
  started_.store(0, std::memory_order_release);
}

CallPath HotCallsBackend::invoke(const CallDesc& desc) {
  if (!running_.load(std::memory_order_relaxed)) {
    execute_regular_ocall(enclave_, desc);
    stats_.regular_calls.add();
    return CallPath::kRegular;
  }
  if (frame_bytes(desc) > slots_.front().frame_capacity) {
    execute_regular_ocall(enclave_, desc);
    stats_.fallback_calls.add();
    return CallPath::kFallback;
  }

  // Spin-acquire any slot (HotCalls never falls back on contention; the
  // caller keeps spinning — part of the design's CPU bill).
  Slot* slot = nullptr;
  for (;;) {
    for (auto& s : slots_) {
      bool expected = false;
      if (s.locked.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
        slot = &s;
        break;
      }
    }
    if (slot != nullptr) break;
    cpu_pause();
  }

  MarshalledCall call = marshal_into(slot->frame.get(), desc);
  slot->done.store(false, std::memory_order_relaxed);
  slot->go.store(true, std::memory_order_release);

  while (!slot->done.load(std::memory_order_acquire)) {
    cpu_pause();
  }
  unmarshal_from(call, desc);
  slot->locked.store(false, std::memory_order_release);
  stats_.switchless_calls.add();
  return CallPath::kSwitchless;
}

void HotCallsBackend::responder_main(unsigned index) {
  const SimConfig& sim = enclave_.config();
  if (sim.pin_threads) {
    pin_current_thread_to_window(sim.pin_base_cpu, sim.logical_cpus);
  }
  std::size_t meter_slot = 0;
  if (cfg_.meter != nullptr) {
    meter_slot = cfg_.meter->register_current_thread();
  }
  started_.fetch_add(1, std::memory_order_release);

  Slot& slot = slots_[index];
  std::uint64_t iterations = 0;
  while (running_.load(std::memory_order_relaxed)) {
    if (slot.go.load(std::memory_order_acquire)) {
      auto* header = reinterpret_cast<FrameHeader*>(slot.frame.get());
      MarshalledCall call = frame_view(slot.frame.get());
      enclave_.ocalls().dispatch(header->fn_id, call);
      slot.go.store(false, std::memory_order_relaxed);
      slot.done.store(true, std::memory_order_release);
    } else {
      cpu_pause();  // always hot: never sleeps (unlike the SDK's rbs)
    }
    if (cfg_.meter != nullptr && (++iterations & 0x3FFF) == 0) {
      cfg_.meter->checkpoint(meter_slot);
    }
  }
  if (cfg_.meter != nullptr) cfg_.meter->unregister_current_thread(meter_slot);
}

std::unique_ptr<HotCallsBackend> make_hotcalls_backend(Enclave& enclave,
                                                       HotCallsConfig cfg) {
  return std::make_unique<HotCallsBackend>(enclave, cfg);
}

}  // namespace zc::hotcalls
