// HotCalls baseline (Weisse, Bertacco, Austin — ISCA'17), the third
// switchless design the paper positions ZC against (§VI: "previous work
// circumvents expensive SGX context switches by leveraging threads in and
// out of the enclave which communicate via shared memory").
//
// HotCalls dedicates always-hot responder threads, one per call slot: the
// caller spin-acquires a slot, publishes the request, and both sides
// busy-wait across the hand-off.  There is no fallback and no sleeping —
// maximal speedup, maximal CPU waste; exactly the trade-off ZC's scheduler
// is designed to avoid.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/cpu_meter.hpp"
#include "sgx/enclave.hpp"

namespace zc::hotcalls {

struct HotCallsConfig {
  unsigned num_workers = 2;             ///< responder threads (always hot)
  std::size_t slot_frame_bytes = 512 * 1024;
  CpuUsageMeter* meter = nullptr;
};

class HotCallsBackend final : public CallBackend {
 public:
  HotCallsBackend(Enclave& enclave, HotCallsConfig cfg);
  ~HotCallsBackend() override;

  void start() override;
  void stop() override;
  CallPath invoke(const CallDesc& desc) override;
  const char* name() const noexcept override { return "hotcalls"; }

  unsigned active_workers() const noexcept override {
    return running_.load(std::memory_order_relaxed) ? cfg_.num_workers : 0;
  }

 private:
  // One shared "hot call" cell per responder thread.
  struct alignas(64) Slot {
    std::atomic<bool> locked{false};  ///< caller ownership (spin lock)
    std::atomic<bool> go{false};      ///< request published
    std::atomic<bool> done{false};    ///< response ready
    std::unique_ptr<std::byte[]> frame;
    std::size_t frame_capacity = 0;
  };

  void responder_main(unsigned index);

  Enclave& enclave_;
  HotCallsConfig cfg_;
  std::vector<Slot> slots_;
  std::atomic<bool> running_{false};
  std::atomic<unsigned> started_{0};
  std::vector<std::jthread> responders_;
};

std::unique_ptr<HotCallsBackend> make_hotcalls_backend(
    Enclave& enclave, HotCallsConfig cfg = {});

}  // namespace zc::hotcalls
