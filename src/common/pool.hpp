// Fixed-capacity bump allocator backing ZC worker buffers.
//
// §IV-B: "an untrusted memory pool (preallocated) used by callers to
// allocate switchless requests ... memory pools of worker buffers are freed
// and re-allocated when full via an ocall."  The pool is single-owner at any
// point in time (a worker buffer is RESERVED by exactly one caller), so no
// internal locking is needed; exhaustion is reported to the caller, which
// triggers the reset-via-ocall path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace zc {

class BumpPool {
 public:
  /// Creates a pool of `capacity` bytes. Capacity must be non-zero.
  explicit BumpPool(std::size_t capacity);

  BumpPool(const BumpPool&) = delete;
  BumpPool& operator=(const BumpPool&) = delete;

  /// Allocates `size` bytes aligned to `align` (power of two).
  /// Returns nullptr when the pool cannot satisfy the request.
  void* allocate(std::size_t size, std::size_t align = alignof(std::max_align_t)) noexcept;

  /// Drops all allocations. Models the "free and re-allocate via ocall"
  /// event; the caller is responsible for charging the ocall.
  void reset() noexcept;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t used() const noexcept { return offset_; }
  std::size_t remaining() const noexcept { return capacity_ - offset_; }

  /// Number of times reset() has been called (pool "reallocations").
  std::uint64_t reset_count() const noexcept { return resets_; }

  /// Number of failed allocations since construction.
  std::uint64_t failed_allocs() const noexcept { return failures_; }

  /// True if `p` points inside this pool's buffer.
  bool owns(const void* p) const noexcept;

 private:
  std::size_t capacity_;
  std::unique_ptr<std::byte[]> buffer_;
  std::size_t offset_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace zc
