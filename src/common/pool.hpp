// Fixed-capacity bump allocator backing ZC worker buffers.
//
// §IV-B: "an untrusted memory pool (preallocated) used by callers to
// allocate switchless requests ... memory pools of worker buffers are freed
// and re-allocated when full via an ocall."  The pool is single-owner at any
// point in time (a worker buffer is RESERVED by exactly one caller), so no
// internal locking is needed; exhaustion is reported to the caller, which
// triggers the reset-via-ocall path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/stats.hpp"

namespace zc {

class BumpPool {
 public:
  /// Creates a pool of `capacity` bytes. Capacity must be non-zero.
  explicit BumpPool(std::size_t capacity);

  BumpPool(const BumpPool&) = delete;
  BumpPool& operator=(const BumpPool&) = delete;

  /// Allocates `size` bytes aligned to `align` (power of two).
  /// Returns nullptr when the pool cannot satisfy the request.
  void* allocate(std::size_t size, std::size_t align = alignof(std::max_align_t)) noexcept;

  /// Drops all allocations. Models the "free and re-allocate via ocall"
  /// event; the caller is responsible for charging the ocall.
  void reset() noexcept;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t used() const noexcept { return offset_; }
  std::size_t remaining() const noexcept { return capacity_ - offset_; }

  /// Number of times reset() has been called (pool "reallocations").
  std::uint64_t reset_count() const noexcept { return resets_; }

  /// Number of failed allocations since construction.
  std::uint64_t failed_allocs() const noexcept { return failures_; }

  /// True if `p` points inside this pool's buffer.
  bool owns(const void* p) const noexcept;

 private:
  std::size_t capacity_;
  std::unique_ptr<std::byte[]> buffer_;
  std::size_t offset_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t failures_ = 0;
};

/// Size-classed slab allocator for untrusted call frames (`pool=slab`).
///
/// The bump pools above cap a frame at the worker/slot budget, so large
/// payloads (>= 64 KB sectors) always fall back to regular transitions.
/// SlabPool removes that cliff: blocks come in power-of-two size classes
/// (kMinBlock up to `max_block`), each class backed by multi-block slabs
/// that grow on demand and are reused forever after.  Frames are returned
/// with free() instead of a whole-pool reset, so concurrent callers never
/// contend on one bump cursor.
///
/// Concurrency: allocate()/free() are thread-safe.  The hot path is a
/// thread-local magazine (a small per-class stack of blocks, no locking);
/// magazine over/underflow falls through to per-pool central free lists
/// under one mutex, and only an empty class allocates a new slab.
///
/// Counters: hits = blocks served from a magazine or central list,
/// misses = allocations that forced a slab growth, grows = slabs
/// allocated.  Mirrored into external PaddedCounters (BackendStats) when
/// wired via set_counters().
class SlabPool {
 public:
  static constexpr std::size_t kMinBlock = 256;
  static constexpr std::size_t kDefaultMaxBlock = std::size_t{2} << 20;
  static constexpr std::size_t kBlockAlign = 64;

  /// External counter mirrors (e.g. &stats.slab_hits); any may be null.
  struct Counters {
    PaddedCounter* hits = nullptr;
    PaddedCounter* misses = nullptr;
    PaddedCounter* grows = nullptr;
  };

  /// `max_block`: largest size-classed block; bigger requests get a
  /// dedicated allocation (still 64-aligned, freed on free()).
  explicit SlabPool(std::size_t max_block = kDefaultMaxBlock);
  ~SlabPool();

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// Returns a 64-byte-aligned block of at least `size` bytes (never
  /// nullptr short of bad_alloc).  size == 0 is served from the smallest
  /// class.
  void* allocate(std::size_t size);

  /// Returns `p` (from allocate()) for reuse.  Safe from any thread.
  void free(void* p) noexcept;

  /// Mirrors hit/miss/grow increments into the given counters.
  void set_counters(const Counters& c) noexcept { external_ = c; }

  std::uint64_t hit_count() const noexcept { return hits_.load(); }
  std::uint64_t miss_count() const noexcept { return misses_.load(); }
  std::uint64_t grow_count() const noexcept { return grows_.load(); }

  unsigned class_count() const noexcept { return classes_; }
  std::size_t class_size(unsigned i) const noexcept {
    return kMinBlock << i;
  }
  std::size_t max_block() const noexcept { return max_block_; }

  /// True if `p` lies inside one of this pool's slabs (not oversize
  /// dedicated blocks).  Takes the pool lock; for tests.
  bool owns(const void* p) const;

 private:
  struct BlockHeader;
  struct SlabDeleter {
    void operator()(std::byte* p) const noexcept;
  };
  using SlabPtr = std::unique_ptr<std::byte[], SlabDeleter>;

  static BlockHeader* header_of(void* payload) noexcept;
  void* carve_locked(unsigned cls);
  void count_hit() noexcept;
  void count_miss_grow() noexcept;

  const std::size_t max_block_;
  unsigned classes_ = 0;
  const std::uint64_t id_;

  mutable std::mutex mu_;
  std::vector<std::vector<void*>> central_;  // per-class free lists
  std::vector<SlabPtr> slabs_;
  std::vector<std::size_t> slab_bytes_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> grows_{0};
  Counters external_;

  friend struct SlabTlsCache;
};

}  // namespace zc
