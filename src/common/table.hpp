// Minimal fixed-width table printer for the figure-reproduction benches.
// Each bench prints the same rows/series its paper figure plots.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace zc {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double v, int precision = 3);

  void print(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t cols() const noexcept { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace zc
