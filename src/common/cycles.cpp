#include "common/cycles.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <thread>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define ZC_HAVE_X86 1
#endif

namespace zc {
namespace {

std::uint64_t calibrate_tsc_hz() {
  using clock = std::chrono::steady_clock;
  // Two short windows; keep the faster estimate to reduce the impact of
  // preemption during calibration.
  std::uint64_t best = 0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto t0 = clock::now();
    const std::uint64_t c0 = rdtsc();
    // ~5 ms window: long enough for <0.1% error, short enough for startup.
    while (clock::now() - t0 < std::chrono::milliseconds(5)) {
      cpu_pause();
    }
    const std::uint64_t c1 = rdtsc();
    const auto dt = std::chrono::duration<double>(clock::now() - t0).count();
    const auto hz = static_cast<std::uint64_t>(static_cast<double>(c1 - c0) / dt);
    best = std::max(best, hz);
  }
  return best == 0 ? 3'000'000'000ULL : best;
}

}  // namespace

std::uint64_t rdtsc() noexcept {
#ifdef ZC_HAVE_X86
  unsigned aux = 0;
  return __rdtscp(&aux);
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

void cpu_pause() noexcept {
#ifdef ZC_HAVE_X86
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

std::uint64_t tsc_hz() noexcept {
  static const std::uint64_t hz = calibrate_tsc_hz();
  return hz;
}

double cycles_to_ns(std::uint64_t cycles) noexcept {
  return static_cast<double>(cycles) * 1e9 / static_cast<double>(tsc_hz());
}

std::uint64_t ns_to_cycles(double ns) noexcept {
  if (ns <= 0) return 0;
  return static_cast<std::uint64_t>(ns * static_cast<double>(tsc_hz()) / 1e9);
}

void burn_cycles(std::uint64_t cycles) noexcept {
  if (cycles == 0) return;
  const std::uint64_t start = rdtsc();
  while (rdtsc() - start < cycles) {
    cpu_pause();
  }
}

void pause_n(std::uint64_t n) noexcept {
  for (std::uint64_t i = 0; i < n; ++i) {
    cpu_pause();
  }
}

std::uint64_t measured_pause_cycles() noexcept {
  static const std::uint64_t cost = [] {
    constexpr int kReps = 5;
    constexpr std::uint64_t kIters = 20'000;
    std::array<std::uint64_t, kReps> samples{};
    for (auto& s : samples) {
      const std::uint64_t c0 = rdtsc();
      pause_n(kIters);
      s = (rdtsc() - c0) / kIters;
    }
    std::sort(samples.begin(), samples.end());
    return std::max<std::uint64_t>(1, samples[kReps / 2]);
  }();
  return cost;
}

}  // namespace zc
