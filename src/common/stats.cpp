#include "common/stats.hpp"

#include <numeric>
#include <stdexcept>

namespace zc {

double SampleSeries::percentile(double p) const {
  if (samples_.empty()) throw std::logic_error("percentile of empty series");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of range");
  std::vector<double> sorted(samples_);
  std::sort(sorted.begin(), sorted.end());
  if (p == 0.0) return sorted.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(rank, sorted.size()) - 1];
}

double SampleSeries::mean() const {
  if (samples_.empty()) return 0.0;
  return sum() / static_cast<double>(samples_.size());
}

double SampleSeries::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

}  // namespace zc
