#include "common/cpu_meter.hpp"

#include <ctime>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace zc {

ProcStatTimes ProcStatSampler::sample() {
  std::ifstream in("/proc/stat");
  std::string line;
  if (!in || !std::getline(in, line)) {
    throw std::runtime_error("cannot read /proc/stat");
  }
  return parse_cpu_line(line);
}

ProcStatTimes ProcStatSampler::parse_cpu_line(const std::string& line) {
  std::istringstream is(line);
  std::string tag;
  ProcStatTimes t;
  is >> tag >> t.user >> t.nice >> t.system >> t.idle;
  if (tag.rfind("cpu", 0) != 0 || !is) {
    throw std::runtime_error("malformed /proc/stat cpu line: " + line);
  }
  return t;
}

double ProcStatSampler::usage_percent(const ProcStatTimes& before,
                                      const ProcStatTimes& after) noexcept {
  const std::uint64_t busy = after.busy() - before.busy();
  const std::uint64_t total = after.total() - before.total();
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(busy) / static_cast<double>(total);
}

namespace {
std::uint64_t clock_ns(clockid_t id) noexcept {
  timespec ts{};
  if (clock_gettime(id, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}
}  // namespace

std::uint64_t thread_cpu_ns() noexcept {
  return clock_ns(CLOCK_THREAD_CPUTIME_ID);
}

std::uint64_t process_cpu_ns() noexcept {
  return clock_ns(CLOCK_PROCESS_CPUTIME_ID);
}

std::uint64_t wall_ns() noexcept { return clock_ns(CLOCK_MONOTONIC); }

CpuUsageMeter::CpuUsageMeter(unsigned logical_cpus)
    : logical_cpus_(logical_cpus == 0 ? 1 : logical_cpus) {}

std::size_t CpuUsageMeter::register_current_thread() {
  const std::uint64_t now = thread_cpu_ns();
  std::lock_guard lock(mu_);
  slots_.push_back(Slot{now});
  // A freshly registered thread starts with zero *window* contribution:
  // raise the base by its pre-existing CPU time.
  window_base_ns_ += now;
  return slots_.size() - 1;
}

void CpuUsageMeter::checkpoint(std::size_t slot) noexcept {
  const std::uint64_t now = thread_cpu_ns();
  std::lock_guard lock(mu_);
  if (slot < slots_.size()) slots_[slot].published_ns = now;
}

void CpuUsageMeter::unregister_current_thread(std::size_t slot) noexcept {
  checkpoint(slot);
}

void CpuUsageMeter::begin_window() {
  std::lock_guard lock(mu_);
  window_base_ns_ = sum_published_locked();
  window_start_wall_ns_ = wall_ns();
}

std::uint64_t CpuUsageMeter::sum_published_locked() const noexcept {
  std::uint64_t sum = 0;
  for (const Slot& s : slots_) sum += s.published_ns;
  return sum;
}

std::uint64_t CpuUsageMeter::window_cpu_ns() const {
  std::lock_guard lock(mu_);
  const std::uint64_t sum = sum_published_locked();
  return sum >= window_base_ns_ ? sum - window_base_ns_ : 0;
}

double CpuUsageMeter::window_usage_percent() const {
  std::uint64_t cpu = 0;
  std::uint64_t start = 0;
  {
    std::lock_guard lock(mu_);
    const std::uint64_t sum = sum_published_locked();
    cpu = sum >= window_base_ns_ ? sum - window_base_ns_ : 0;
    start = window_start_wall_ns_;
  }
  const std::uint64_t wall = wall_ns() - start;
  if (wall == 0) return 0.0;
  return 100.0 * static_cast<double>(cpu) /
         (static_cast<double>(wall) * static_cast<double>(logical_cpus_));
}

}  // namespace zc
