// CPU-usage accounting.
//
// The paper (§V-A2) computes machine-wide CPU usage from /proc/stat:
//   %cpu = (user + nice + system) / (user + nice + system + idle) * 100
// We provide (a) that exact sampler and (b) a per-thread accounting meter
// that sums CLOCK_THREAD_CPUTIME_ID over the threads of the *simulated*
// machine and normalises by `logical_cpus * wall`.  On a host wider than the
// paper's 8-thread Xeon the per-thread meter is the faithful one: it is
// blind to unrelated host load and to cores outside the simulated machine.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace zc {

/// One /proc/stat "cpu" line, in USER_HZ ticks.
struct ProcStatTimes {
  std::uint64_t user = 0;
  std::uint64_t nice = 0;
  std::uint64_t system = 0;
  std::uint64_t idle = 0;

  std::uint64_t busy() const noexcept { return user + nice + system; }
  std::uint64_t total() const noexcept { return busy() + idle; }
};

/// Samples the aggregate "cpu" line of /proc/stat (paper's method).
class ProcStatSampler {
 public:
  /// Reads /proc/stat. Throws std::runtime_error if unreadable.
  static ProcStatTimes sample();

  /// Parses a "cpu  u n s i ..." line; exposed for testing.
  static ProcStatTimes parse_cpu_line(const std::string& line);

  /// Percentage of CPU busy between two samples, per the paper's formula.
  static double usage_percent(const ProcStatTimes& before,
                              const ProcStatTimes& after) noexcept;
};

/// CPU time consumed so far by the calling thread, in nanoseconds.
std::uint64_t thread_cpu_ns() noexcept;

/// CPU time consumed so far by the whole process, in nanoseconds.
std::uint64_t process_cpu_ns() noexcept;

/// Aggregates the CPU time of an explicit set of threads (callers, workers,
/// scheduler) and reports utilisation of a simulated machine of
/// `logical_cpus` hardware threads.
///
/// Threads register themselves on start and publish their consumed CPU time
/// on every `checkpoint()`/`unregister` so the meter survives thread exit.
class CpuUsageMeter {
 public:
  explicit CpuUsageMeter(unsigned logical_cpus);

  /// Registers the calling thread; returns a stable slot id.
  std::size_t register_current_thread();

  /// Publishes the calling thread's CPU time into its slot.
  void checkpoint(std::size_t slot) noexcept;

  /// Final publish for a thread that is about to exit.
  void unregister_current_thread(std::size_t slot) noexcept;

  /// Marks the start of a measurement window (wall clock + zero of sums).
  void begin_window();

  /// Total CPU-nanoseconds accumulated by registered threads since
  /// begin_window().  Live threads must have checkpointed recently for the
  /// value to be fresh; `sample_live` is handled by callers checkpointing.
  std::uint64_t window_cpu_ns() const;

  /// Utilisation in percent of the simulated machine since begin_window().
  double window_usage_percent() const;

  unsigned logical_cpus() const noexcept { return logical_cpus_; }

 private:
  struct Slot {
    std::uint64_t published_ns = 0;  // absolute thread CPU time
  };

  unsigned logical_cpus_;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  std::uint64_t window_base_ns_ = 0;   // sum of published at window start
  std::uint64_t exited_extra_ns_ = 0;  // unused; kept simple via slots
  std::uint64_t window_start_wall_ns_ = 0;

  std::uint64_t sum_published_locked() const noexcept;
};

/// Monotonic wall clock in nanoseconds.
std::uint64_t wall_ns() noexcept;

}  // namespace zc
