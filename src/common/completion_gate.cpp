#include "common/completion_gate.hpp"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <climits>
#endif

namespace zc {

const char* to_string(GateWaitPolicy policy) noexcept {
  switch (policy) {
    case GateWaitPolicy::kSpin:
      return "spin";
    case GateWaitPolicy::kYield:
      return "yield";
    case GateWaitPolicy::kFutex:
      return "futex";
    case GateWaitPolicy::kCondvar:
      return "condvar";
  }
  return "?";
}

bool gate_policy_from_string(std::string_view text,
                             GateWaitPolicy& out) noexcept {
  if (text == "spin") {
    out = GateWaitPolicy::kSpin;
  } else if (text == "yield") {
    out = GateWaitPolicy::kYield;
  } else if (text == "futex") {
    out = GateWaitPolicy::kFutex;
  } else if (text == "condvar") {
    out = GateWaitPolicy::kCondvar;
  } else {
    return false;
  }
  return true;
}

#if defined(__linux__)

bool CompletionGate::futex_available() noexcept { return true; }

void CompletionGate::futex_block(const void* addr,
                                 std::uint32_t observed) noexcept {
  // The kernel atomically re-checks *addr == observed before sleeping, so
  // a wake between the caller's load and this syscall returns EAGAIN
  // instead of being lost.  EINTR/spurious returns are handled by the
  // caller's predicate loop.
  syscall(SYS_futex, addr, FUTEX_WAIT_PRIVATE, observed, nullptr, nullptr, 0);
}

void CompletionGate::wake_sleepers(const void* addr) noexcept {
  syscall(SYS_futex, addr, FUTEX_WAKE_PRIVATE, INT_MAX, nullptr, nullptr, 0);
  // The empty lock/unlock orders this notify after a condvar waiter's
  // predicate evaluation (a waiter between its check and cv_.wait holds
  // the mutex), so the broadcast cannot land in that window and be lost.
  {
    std::lock_guard lock(mu_);
  }
  cv_.notify_all();
}

#else  // !__linux__

bool CompletionGate::futex_available() noexcept { return false; }

void CompletionGate::futex_block(const void*, std::uint32_t) noexcept {}

void CompletionGate::wake_sleepers(const void* /*addr*/) noexcept {
  {
    std::lock_guard lock(mu_);
  }
  cv_.notify_all();
}

#endif

}  // namespace zc
