// CompletionGate: the one caller-wait primitive of the switchless planes.
//
// Every switchless backend ends with the same shape of wait: a caller has
// handed its request to a worker (a reserved ZC worker buffer, a batch
// slot, an async completion-table slot) and must now wait for a 32-bit
// state word to reach a completion value.  Before this class existed that
// wait was implemented three times (zc's wait_done, zc_batched's slot
// poll, zc_async's per-slot condvar), each with its own spin budget and
// sleep mechanism — which is why "futex waits on Linux hosts" stayed an
// open ROADMAP item: there was no single place to put them.
//
// The gate runs the wait in two phases:
//
//   1. spin:  poll the word with `pause` for at most `spin` microseconds
//             (clock read every 64 polls, so the budget check stays off
//             the poll loop's critical path).  This is the paper's pure
//             completion spin while the budget lasts; kSpin never leaves
//             this phase (the hotcalls baseline).
//   2. block: policy-dependent.
//        kYield   — yield between polls (one BackendStats::caller_yields
//                   per yield): the narrow-host default, unchanged from
//                   the pre-gate backends.
//        kFutex   — sleep in the kernel on the word itself
//                   (FUTEX_WAIT_PRIVATE); one syscall to sleep, one
//                   (by the waker) to wake.  Falls back to kCondvar on
//                   non-Linux hosts behind the same API.
//        kCondvar — sleep on the gate's mutex+condition_variable (the
//                   portable fallback, and zc_async's historical wait).
//             Sleeps/wakes are counted in BackendStats::caller_sleeps /
//             caller_wakeups.
//
// Waker contract: update the state word first, then call notify(word).
// notify() starts with a seq_cst fence so a release-ordered word store
// still pairs with a sleeping waiter's seq_cst registration (the classic
// store-buffer pairing), and it elides all syscalls/locks while nobody is
// sleeping — with a non-sleeping policy the waker side can skip notify()
// entirely (gate_can_sleep()).  Predicates are re-evaluated after every
// wake-up, so spurious futex returns and condvar wake-ups are harmless.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <thread>

#include "common/cpu_meter.hpp"  // wall_ns
#include "common/cycles.hpp"     // cpu_pause
#include "common/stats.hpp"      // PaddedCounter

namespace zc {

enum class GateWaitPolicy : std::uint8_t {
  kSpin,     ///< pure spin, never yields or sleeps (hotcalls-style)
  kYield,    ///< spin budget, then yield between polls (the default)
  kFutex,    ///< spin budget, then futex sleep (condvar off Linux)
  kCondvar,  ///< spin budget, then mutex+condvar sleep
};

const char* to_string(GateWaitPolicy policy) noexcept;

/// Parses "spin"/"yield"/"futex"/"condvar"; false on anything else.
bool gate_policy_from_string(std::string_view text,
                             GateWaitPolicy& out) noexcept;

/// True for policies whose blocked waiters need a notify() to make
/// progress; spinning/yielding waiters poll and never require one.
constexpr bool gate_can_sleep(GateWaitPolicy policy) noexcept {
  return policy == GateWaitPolicy::kFutex ||
         policy == GateWaitPolicy::kCondvar;
}

/// Where the gate accounts its waiting: all pointers optional (benches and
/// tests pass {}).  Backends wire these to their BackendStats counters.
struct GateCounters {
  PaddedCounter* yields = nullptr;   ///< one per yield in the kYield phase
  PaddedCounter* sleeps = nullptr;   ///< one per wait that actually blocked
  PaddedCounter* wakeups = nullptr;  ///< one per blocked wait that returned
};

class CompletionGate {
 public:
  CompletionGate() = default;
  CompletionGate(const CompletionGate&) = delete;
  CompletionGate& operator=(const CompletionGate&) = delete;

  /// True when the kFutex policy really uses futexes on this platform
  /// (otherwise it silently behaves as kCondvar).
  static bool futex_available() noexcept;

  /// Blocks until `pred(word.load())` holds.  T must be a 32-bit word
  /// (the ZC-family state enums and plain uint32_t both qualify); the
  /// futex sleeps on the word's own address, so no shadow state can drift.
  template <typename T, typename Pred>
  void await(const std::atomic<T>& word, Pred&& pred, GateWaitPolicy policy,
             std::chrono::microseconds spin, const GateCounters& counters) {
    static_assert(sizeof(std::atomic<T>) == sizeof(std::uint32_t),
                  "CompletionGate waits on 32-bit state words");
    if (pred(word.load(std::memory_order_acquire))) return;

    if (policy == GateWaitPolicy::kSpin) {
      while (!pred(word.load(std::memory_order_acquire))) cpu_pause();
      return;
    }

    // Phase 1: bounded spin, identical across policies.
    const std::uint64_t spin_ns =
        static_cast<std::uint64_t>(spin.count()) * 1'000;
    if (spin_ns > 0) {
      const std::uint64_t t0 = wall_ns();
      std::uint32_t polls = 0;
      for (;;) {
        cpu_pause();
        if (pred(word.load(std::memory_order_acquire))) return;
        if ((++polls & 0x3F) == 0 && wall_ns() - t0 >= spin_ns) break;
      }
    }

    // Phase 2: the budget expired with the predicate still false.
    if (policy == GateWaitPolicy::kYield) {
      for (;;) {
        if (counters.yields != nullptr) counters.yields->add();
        std::this_thread::yield();
        if (pred(word.load(std::memory_order_acquire))) return;
      }
    }

    // caller_sleeps counts waits that *actually block* (reach the futex
    // syscall / condvar wait), not every wait that merely entered this
    // phase — a completion racing the phase transition stays uncounted.
    bool slept = false;
    if (policy == GateWaitPolicy::kFutex && futex_available()) {
      // The seq_cst registration/load pair is the waiter's half of the
      // store-buffer pairing with notify()'s fence (see class comment);
      // futex_block itself re-checks the word in the kernel, so a wake
      // between the load and the syscall is never lost.
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      for (;;) {
        const T value = word.load(std::memory_order_seq_cst);
        if (pred(value)) break;
        if (!slept) {
          slept = true;
          if (counters.sleeps != nullptr) counters.sleeps->add();
        }
        futex_block(&word, static_cast<std::uint32_t>(value));
      }
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    } else {
      std::unique_lock lock(mu_);
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      cv_.wait(lock, [&] {
        if (pred(word.load(std::memory_order_seq_cst))) return true;
        if (!slept) {
          slept = true;
          if (counters.sleeps != nullptr) counters.sleeps->add();
        }
        return false;
      });
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (slept && counters.wakeups != nullptr) counters.wakeups->add();
  }

  /// Waker side: call after storing the new word value.  No-ops (one fence
  /// + one relaxed load) while nobody is sleeping.
  template <typename T>
  void notify(const std::atomic<T>& word) noexcept {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (sleepers_.load(std::memory_order_relaxed) == 0) return;
    wake_sleepers(&word);
  }

 private:
  /// One FUTEX_WAIT_PRIVATE on `addr` while it still reads `observed`.
  static void futex_block(const void* addr, std::uint32_t observed) noexcept;
  /// Broadcast: futex-wakes the word and notifies the condvar (a gate may
  /// host either kind of sleeper; both paths are cheap when empty).
  void wake_sleepers(const void* addr) noexcept;

  std::atomic<std::uint32_t> sleepers_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace zc
