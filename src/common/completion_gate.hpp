// CompletionGate: the one caller-wait primitive of the switchless planes.
//
// Every switchless backend ends with the same shape of wait: a caller has
// handed its request to a worker (a reserved ZC worker buffer, a batch
// slot, an async completion-table slot) and must now wait for a 32-bit
// state word to reach a completion value.  Before this class existed that
// wait was implemented three times (zc's wait_done, zc_batched's slot
// poll, zc_async's per-slot condvar), each with its own spin budget and
// sleep mechanism — which is why "futex waits on Linux hosts" stayed an
// open ROADMAP item: there was no single place to put them.
//
// The gate runs the wait in two phases:
//
//   1. spin:  poll the word with `pause` for at most `spin` microseconds.
//             The clock is read on a 1,2,4,...,64-poll ramp and every 64
//             polls thereafter (gate_spin_next_check), so the budget check
//             stays off the poll loop's critical path once warmed up while
//             a tiny budget (1-5 µs) still expires within a poll or two
//             instead of overshooting by a whole 64-poll block on a loaded
//             host.  This is the paper's pure completion spin while the
//             budget lasts; kSpin never leaves this phase (the hotcalls
//             baseline).
//   2. block: policy-dependent.
//        kYield   — yield between polls (one BackendStats::caller_yields
//                   per yield): the narrow-host default, unchanged from
//                   the pre-gate backends.
//        kFutex   — sleep in the kernel on the word itself
//                   (FUTEX_WAIT_PRIVATE); one syscall to sleep, one
//                   (by the waker) to wake.  Falls back to kCondvar on
//                   non-Linux hosts behind the same API.
//        kCondvar — sleep on the gate's mutex+condition_variable (the
//                   portable fallback, and zc_async's historical wait).
//             Sleeps/wakes are counted in BackendStats::caller_sleeps /
//             caller_wakeups.
//
// Waker contract: update the state word first, then call notify(word).
// notify() starts with a seq_cst fence so a release-ordered word store
// still pairs with a sleeping waiter's seq_cst registration (the classic
// store-buffer pairing), and it elides all syscalls/locks while nobody is
// sleeping — with a non-sleeping policy the waker side can skip notify()
// entirely (gate_can_sleep()).  Predicates are re-evaluated after every
// wake-up, so spurious futex returns and condvar wake-ups are harmless.
//
// Wake coalescing: a worker that completes a whole batch at once (the
// batched flush, the async drain run) would pay one futex wake — ~2.2 µs
// measured by BM_GatePolicy — per slot under notify().  When several
// waiters share one gate via await_coalesced(), they sleep on the gate's
// own epoch word instead of their private state words, so a single
// notify_batch() (one futex wake / one condvar broadcast) releases every
// current sleeper; each re-checks its own predicate and the ones whose
// slots completed return while any others go back to sleep on the new
// epoch.  notify() and notify_batch() target disjoint sleeper sets (the
// futex address differs), so a gate must be used in one style at a time.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <thread>

#include "common/cpu_meter.hpp"  // wall_ns
#include "common/cycles.hpp"     // cpu_pause
#include "common/stats.hpp"      // PaddedCounter

namespace zc {

enum class GateWaitPolicy : std::uint8_t {
  kSpin,     ///< pure spin, never yields or sleeps (hotcalls-style)
  kYield,    ///< spin budget, then yield between polls (the default)
  kFutex,    ///< spin budget, then futex sleep (condvar off Linux)
  kCondvar,  ///< spin budget, then mutex+condvar sleep
};

const char* to_string(GateWaitPolicy policy) noexcept;

/// Parses "spin"/"yield"/"futex"/"condvar"; false on anything else.
bool gate_policy_from_string(std::string_view text,
                             GateWaitPolicy& out) noexcept;

/// True for policies whose blocked waiters need a notify() to make
/// progress; spinning/yielding waiters poll and never require one.
constexpr bool gate_can_sleep(GateWaitPolicy policy) noexcept {
  return policy == GateWaitPolicy::kFutex ||
         policy == GateWaitPolicy::kCondvar;
}

/// The spin phase's clock-read schedule: given that the check at poll
/// index `polls` (>= 1) found budget remaining, the poll index of the next
/// check.  Doubles from 1 up to 64, then stays at every-64 — so a 1 µs
/// budget is noticed within the first polls while the steady state keeps
/// the clock read off the hot loop.  Pure; unit-tested directly.
constexpr std::uint32_t gate_spin_next_check(std::uint32_t polls) noexcept {
  return polls < 64 ? polls * 2 : polls + 64;
}

/// Where the gate accounts its waiting: all pointers optional (benches and
/// tests pass {}).  Backends wire these to their BackendStats counters.
struct GateCounters {
  PaddedCounter* yields = nullptr;   ///< one per yield in the kYield phase
  PaddedCounter* sleeps = nullptr;   ///< one per wait that actually blocked
  PaddedCounter* wakeups = nullptr;  ///< one per blocked wait that returned
};

class CompletionGate {
 public:
  CompletionGate() = default;
  CompletionGate(const CompletionGate&) = delete;
  CompletionGate& operator=(const CompletionGate&) = delete;

  /// True when the kFutex policy really uses futexes on this platform
  /// (otherwise it silently behaves as kCondvar).
  static bool futex_available() noexcept;

  /// Blocks until `pred(word.load())` holds.  T must be a 32-bit word
  /// (the ZC-family state enums and plain uint32_t both qualify); the
  /// futex sleeps on the word's own address, so no shadow state can drift.
  template <typename T, typename Pred>
  void await(const std::atomic<T>& word, Pred&& pred, GateWaitPolicy policy,
             std::chrono::microseconds spin, const GateCounters& counters) {
    static_assert(sizeof(std::atomic<T>) == sizeof(std::uint32_t),
                  "CompletionGate waits on 32-bit state words");
    if (spin_phase(word, pred, policy, spin)) return;

    if (policy == GateWaitPolicy::kYield) {
      yield_phase(word, pred, counters);
      return;
    }

    // caller_sleeps counts waits that *actually block* (reach the futex
    // syscall / condvar wait), not every wait that merely entered this
    // phase — a completion racing the phase transition stays uncounted.
    bool slept = false;
    if (policy == GateWaitPolicy::kFutex && futex_available()) {
      // The seq_cst registration/load pair is the waiter's half of the
      // store-buffer pairing with notify()'s fence (see class comment);
      // futex_block itself re-checks the word in the kernel, so a wake
      // between the load and the syscall is never lost.
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      for (;;) {
        const T value = word.load(std::memory_order_seq_cst);
        if (pred(value)) break;
        if (!slept) {
          slept = true;
          if (counters.sleeps != nullptr) counters.sleeps->add();
        }
        futex_block(&word, static_cast<std::uint32_t>(value));
      }
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    } else {
      condvar_sleep(word, pred, counters, slept);
    }
    if (slept && counters.wakeups != nullptr) counters.wakeups->add();
  }

  /// Coalesced-wake variant of await(): identical spin/yield behaviour,
  /// but a sleeping waiter parks on the *gate's* epoch word instead of
  /// `word`, so several waiters (each with their own state word and
  /// predicate) can share one gate and be released together by a single
  /// notify_batch().  Pair exclusively with notify_batch(): a plain
  /// notify(word) will not find these sleepers on the futex path.
  template <typename T, typename Pred>
  void await_coalesced(const std::atomic<T>& word, Pred&& pred,
                       GateWaitPolicy policy, std::chrono::microseconds spin,
                       const GateCounters& counters) {
    static_assert(sizeof(std::atomic<T>) == sizeof(std::uint32_t),
                  "CompletionGate waits on 32-bit state words");
    if (spin_phase(word, pred, policy, spin)) return;

    if (policy == GateWaitPolicy::kYield) {
      yield_phase(word, pred, counters);
      return;
    }

    bool slept = false;
    if (policy == GateWaitPolicy::kFutex && futex_available()) {
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      for (;;) {
        // Epoch before predicate: if the batch completes (word store, then
        // epoch bump) between these two loads, the kernel's atomic
        // epoch != observed re-check turns the sleep into an immediate
        // EAGAIN instead of a lost wakeup.
        const std::uint32_t observed =
            epoch_.load(std::memory_order_seq_cst);
        if (pred(word.load(std::memory_order_seq_cst))) break;
        if (!slept) {
          slept = true;
          if (counters.sleeps != nullptr) counters.sleeps->add();
        }
        futex_block(&epoch_, observed);
      }
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    } else {
      // The condvar path is already coalesced by construction: every
      // sharer sleeps on this gate's one mutex+cv, and notify_batch()'s
      // broadcast is a single notify_all.
      condvar_sleep(word, pred, counters, slept);
    }
    if (slept && counters.wakeups != nullptr) counters.wakeups->add();
  }

  /// Waker side: call after storing the new word value.  No-ops (one fence
  /// + one relaxed load) while nobody is sleeping.
  template <typename T>
  void notify(const std::atomic<T>& word) noexcept {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (sleepers_.load(std::memory_order_relaxed) == 0) return;
    wake_sleepers(&word);
  }

  /// Coalesced waker side: call once after storing *all* the word values
  /// of a completed batch.  One futex wake (or one condvar broadcast)
  /// releases every sleeper currently parked via await_coalesced(); the
  /// epoch bump (a seq_cst RMW, doubling as the notify fence) guarantees a
  /// waiter racing into its sleep observes either its completed word or
  /// the moved epoch.  Cheap when nobody sleeps: one RMW + one load.
  void notify_batch() noexcept {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (sleepers_.load(std::memory_order_relaxed) == 0) return;
    wake_sleepers(&epoch_);
  }

 private:
  /// Phase 1: bounded spin, identical across policies; true when the
  /// predicate held before the budget expired.  kSpin never returns false.
  template <typename T, typename Pred>
  bool spin_phase(const std::atomic<T>& word, Pred& pred,
                  GateWaitPolicy policy, std::chrono::microseconds spin) {
    if (pred(word.load(std::memory_order_acquire))) return true;

    if (policy == GateWaitPolicy::kSpin) {
      while (!pred(word.load(std::memory_order_acquire))) cpu_pause();
      return true;
    }

    const std::uint64_t spin_ns =
        static_cast<std::uint64_t>(spin.count()) * 1'000;
    if (spin_ns == 0) return false;
    const std::uint64_t t0 = wall_ns();
    std::uint32_t polls = 0;
    std::uint32_t next_check = 1;
    for (;;) {
      cpu_pause();
      if (pred(word.load(std::memory_order_acquire))) return true;
      if (++polls >= next_check) {
        if (wall_ns() - t0 >= spin_ns) return false;
        next_check = gate_spin_next_check(polls);
      }
    }
  }

  /// Phase 2 for kYield: yield between polls, forever.
  template <typename T, typename Pred>
  void yield_phase(const std::atomic<T>& word, Pred& pred,
                   const GateCounters& counters) {
    for (;;) {
      if (counters.yields != nullptr) counters.yields->add();
      std::this_thread::yield();
      if (pred(word.load(std::memory_order_acquire))) return;
    }
  }

  /// Phase 2 for kCondvar (and the non-Linux kFutex fallback).
  template <typename T, typename Pred>
  void condvar_sleep(const std::atomic<T>& word, Pred& pred,
                     const GateCounters& counters, bool& slept) {
    std::unique_lock lock(mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    cv_.wait(lock, [&] {
      if (pred(word.load(std::memory_order_seq_cst))) return true;
      if (!slept) {
        slept = true;
        if (counters.sleeps != nullptr) counters.sleeps->add();
      }
      return false;
    });
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// One FUTEX_WAIT_PRIVATE on `addr` while it still reads `observed`.
  static void futex_block(const void* addr, std::uint32_t observed) noexcept;
  /// Broadcast: futex-wakes the word and notifies the condvar (a gate may
  /// host either kind of sleeper; both paths are cheap when empty).
  void wake_sleepers(const void* addr) noexcept;

  std::atomic<std::uint32_t> sleepers_{0};
  /// The shared sleep word of the coalesced path: await_coalesced waiters
  /// futex-sleep here, notify_batch() bumps it.  Monotonic; wrap is
  /// harmless (only equality against the observed value matters).
  std::atomic<std::uint32_t> epoch_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace zc
