// Thread-affinity helpers.  The paper's machine exposes 8 logical CPUs; to
// keep worker/caller interference realistic on wider hosts, benches pin the
// simulated machine's threads onto a contiguous window of host CPUs.
#pragma once

#include <optional>
#include <thread>

namespace zc {

/// Number of logical CPUs the host OS exposes.
unsigned host_logical_cpus() noexcept;

/// Pins the calling thread to host CPU `cpu` (modulo the host CPU count).
/// Returns false if the affinity syscall failed (e.g. restricted cpuset).
bool pin_current_thread(unsigned cpu) noexcept;

/// Returns the host CPU the calling thread currently runs on, if known.
std::optional<unsigned> current_cpu() noexcept;

/// Pins the calling thread to the window of host CPUs
/// [base, base+width) (modulo the host CPU count).  The simulated machine
/// confines all of its threads (callers, workers, scheduler) to one such
/// window so that oversubscription effects match the paper's 8-thread Xeon
/// even on wider hosts.
bool pin_current_thread_to_window(unsigned base, unsigned width) noexcept;

}  // namespace zc
