#include "common/pin.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace zc {

unsigned host_logical_cpus() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

bool pin_current_thread(unsigned cpu) noexcept {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % host_logical_cpus(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

bool pin_current_thread_to_window(unsigned base, unsigned width) noexcept {
#ifdef __linux__
  if (width == 0) return false;
  const unsigned n = host_logical_cpus();
  cpu_set_t set;
  CPU_ZERO(&set);
  for (unsigned i = 0; i < width && i < n; ++i) {
    CPU_SET((base + i) % n, &set);
  }
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)base;
  (void)width;
  return false;
#endif
}

std::optional<unsigned> current_cpu() noexcept {
#ifdef __linux__
  const int cpu = sched_getcpu();
  if (cpu < 0) return std::nullopt;
  return static_cast<unsigned>(cpu);
#else
  return std::nullopt;
#endif
}

}  // namespace zc
