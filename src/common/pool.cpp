#include "common/pool.hpp"

#include <stdexcept>

namespace zc {

BumpPool::BumpPool(std::size_t capacity)
    : capacity_(capacity), buffer_(std::make_unique<std::byte[]>(capacity)) {
  if (capacity == 0) throw std::invalid_argument("BumpPool capacity == 0");
}

void* BumpPool::allocate(std::size_t size, std::size_t align) noexcept {
  if (size == 0 || align == 0 || (align & (align - 1)) != 0) {
    ++failures_;
    return nullptr;
  }
  const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(buffer_.get());
  const std::uintptr_t cur = base + offset_;
  const std::uintptr_t aligned = (cur + align - 1) & ~(align - 1);
  const std::size_t new_offset = (aligned - base) + size;
  if (new_offset > capacity_) {
    ++failures_;
    return nullptr;
  }
  offset_ = new_offset;
  return reinterpret_cast<void*>(aligned);
}

void BumpPool::reset() noexcept {
  offset_ = 0;
  ++resets_;
}

bool BumpPool::owns(const void* p) const noexcept {
  const auto* b = static_cast<const std::byte*>(p);
  return b >= buffer_.get() && b < buffer_.get() + capacity_;
}

}  // namespace zc
