#include "common/pool.hpp"

#include <cstring>
#include <new>
#include <stdexcept>
#include <unordered_map>

namespace zc {

BumpPool::BumpPool(std::size_t capacity)
    : capacity_(capacity), buffer_(std::make_unique<std::byte[]>(capacity)) {
  if (capacity == 0) throw std::invalid_argument("BumpPool capacity == 0");
}

void* BumpPool::allocate(std::size_t size, std::size_t align) noexcept {
  if (size == 0 || align == 0 || (align & (align - 1)) != 0) {
    ++failures_;
    return nullptr;
  }
  const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(buffer_.get());
  const std::uintptr_t cur = base + offset_;
  const std::uintptr_t aligned = (cur + align - 1) & ~(align - 1);
  const std::size_t new_offset = (aligned - base) + size;
  if (new_offset > capacity_) {
    ++failures_;
    return nullptr;
  }
  offset_ = new_offset;
  return reinterpret_cast<void*>(aligned);
}

void BumpPool::reset() noexcept {
  offset_ = 0;
  ++resets_;
}

bool BumpPool::owns(const void* p) const noexcept {
  const auto* b = static_cast<const std::byte*>(p);
  return b >= buffer_.get() && b < buffer_.get() + capacity_;
}

// --- SlabPool ---------------------------------------------------------------

namespace {

constexpr std::uint32_t kSlabMagic = 0x51AB51ABu;
constexpr std::uint32_t kOversizeClass = 0xFFFFFFFFu;
constexpr unsigned kMaxClasses = 24;
constexpr std::size_t kMagazineCap = 8;

// Live-pool registry so thread-local magazines can safely return blocks to
// a pool they are no longer bound to (or drop them if the pool died —
// slab memory is owned by the pool, so dropping a stale pointer is a
// bounded reuse loss, never a leak or a dangling dereference).
std::mutex g_slab_registry_mu;
std::uint64_t g_slab_next_id = 1;

std::unordered_map<std::uint64_t, SlabPool*>& slab_registry() {
  static auto* m = new std::unordered_map<std::uint64_t, SlabPool*>();
  return *m;
}

std::uint64_t register_slab_pool(SlabPool* p) {
  std::lock_guard<std::mutex> lk(g_slab_registry_mu);
  const std::uint64_t id = g_slab_next_id++;
  slab_registry()[id] = p;
  return id;
}

}  // namespace

struct SlabPool::BlockHeader {
  std::uint64_t pool_id;
  std::uint32_t cls;
  std::uint32_t magic;
};

void SlabPool::SlabDeleter::operator()(std::byte* p) const noexcept {
  ::operator delete(p, std::align_val_t(kBlockAlign));
}

SlabPool::BlockHeader* SlabPool::header_of(void* payload) noexcept {
  return reinterpret_cast<BlockHeader*>(static_cast<std::byte*>(payload) -
                                        kBlockAlign);
}

/// Per-thread magazine cache.  Bound to one pool at a time (pool_id);
/// rebinding — and thread exit — flushes cached blocks back to the owning
/// pool's central lists when that pool is still alive.
struct SlabTlsCache {
  std::uint64_t pool_id = 0;
  std::vector<void*> mags[kMaxClasses];

  void flush() noexcept {
    if (pool_id == 0) return;
    std::lock_guard<std::mutex> reg(g_slab_registry_mu);
    auto it = slab_registry().find(pool_id);
    if (it != slab_registry().end()) {
      SlabPool* pool = it->second;
      std::lock_guard<std::mutex> lk(pool->mu_);
      for (unsigned c = 0; c < kMaxClasses; ++c) {
        for (void* p : mags[c]) pool->central_[c].push_back(p);
        mags[c].clear();
      }
    } else {
      for (auto& m : mags) m.clear();  // pool died; memory went with it
    }
    pool_id = 0;
  }

  ~SlabTlsCache() { flush(); }
};

namespace {

SlabTlsCache& slab_tls() {
  static thread_local SlabTlsCache cache;
  return cache;
}

}  // namespace

SlabPool::SlabPool(std::size_t max_block)
    : max_block_(max_block < kMinBlock ? kMinBlock : max_block),
      id_(register_slab_pool(this)) {
  std::size_t sz = kMinBlock;
  classes_ = 1;
  while (sz < max_block_ && classes_ < kMaxClasses) {
    sz <<= 1;
    ++classes_;
  }
  central_.resize(kMaxClasses);
}

SlabPool::~SlabPool() {
  // Unregister first so no magazine flush can target us mid-destruction.
  std::lock_guard<std::mutex> reg(g_slab_registry_mu);
  slab_registry().erase(id_);
}

void SlabPool::count_hit() noexcept {
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (external_.hits) external_.hits->add();
}

void SlabPool::count_miss_grow() noexcept {
  misses_.fetch_add(1, std::memory_order_relaxed);
  grows_.fetch_add(1, std::memory_order_relaxed);
  if (external_.misses) external_.misses->add();
  if (external_.grows) external_.grows->add();
}

void* SlabPool::carve_locked(unsigned cls) {
  const std::size_t csize = class_size(cls);
  const std::size_t stride = kBlockAlign + csize;
  // Target ~1 MB slabs, at least 1 and at most 16 blocks per growth.
  std::size_t blocks = (std::size_t{1} << 20) / stride;
  if (blocks < 1) blocks = 1;
  if (blocks > 16) blocks = 16;
  const std::size_t bytes = stride * blocks;
  auto* raw = static_cast<std::byte*>(
      ::operator new(bytes, std::align_val_t(kBlockAlign)));
  slabs_.emplace_back(raw);
  slab_bytes_.push_back(bytes);
  for (std::size_t i = 0; i < blocks; ++i) {
    std::byte* payload = raw + i * stride + kBlockAlign;
    BlockHeader* h = header_of(payload);
    h->pool_id = id_;
    h->cls = cls;
    h->magic = kSlabMagic;
    if (i != 0) central_[cls].push_back(payload);
  }
  return raw + kBlockAlign;  // block 0 goes straight to the caller
}

void* SlabPool::allocate(std::size_t size) {
  // Pick the smallest class that fits.
  unsigned cls = 0;
  {
    std::size_t csize = kMinBlock;
    while (csize < size && cls + 1 < classes_) {
      csize <<= 1;
      ++cls;
    }
    if (csize < size) {
      // Oversize: dedicated allocation, freed (not cached) on free().
      auto* raw = static_cast<std::byte*>(
          ::operator new(kBlockAlign + size, std::align_val_t(kBlockAlign)));
      std::byte* payload = raw + kBlockAlign;
      BlockHeader* h = header_of(payload);
      h->pool_id = id_;
      h->cls = kOversizeClass;
      h->magic = kSlabMagic;
      count_miss_grow();
      return payload;
    }
  }

  SlabTlsCache& tls = slab_tls();
  if (tls.pool_id != id_) {
    tls.flush();
    tls.pool_id = id_;
  }
  auto& mag = tls.mags[cls];
  if (!mag.empty()) {
    void* p = mag.back();
    mag.pop_back();
    count_hit();
    return p;
  }

  std::lock_guard<std::mutex> lk(mu_);
  auto& freelist = central_[cls];
  if (freelist.empty()) {
    void* p = carve_locked(cls);
    count_miss_grow();
    return p;
  }
  void* p = freelist.back();
  freelist.pop_back();
  // Refill half a magazine while we hold the lock anyway.
  while (!freelist.empty() && mag.size() < kMagazineCap / 2) {
    mag.push_back(freelist.back());
    freelist.pop_back();
  }
  count_hit();
  return p;
}

void SlabPool::free(void* p) noexcept {
  if (p == nullptr) return;
  BlockHeader* h = header_of(p);
  if (h->magic != kSlabMagic) return;  // not ours; refuse to corrupt
  if (h->cls == kOversizeClass) {
    ::operator delete(static_cast<std::byte*>(p) - kBlockAlign,
                      std::align_val_t(kBlockAlign));
    return;
  }
  SlabTlsCache& tls = slab_tls();
  if (tls.pool_id == id_ && tls.mags[h->cls].size() < kMagazineCap) {
    tls.mags[h->cls].push_back(p);
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  central_[h->cls].push_back(p);
}

bool SlabPool::owns(const void* p) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto* b = static_cast<const std::byte*>(p);
  for (std::size_t i = 0; i < slabs_.size(); ++i) {
    if (b >= slabs_[i].get() && b < slabs_[i].get() + slab_bytes_[i]) {
      return true;
    }
  }
  return false;
}

}  // namespace zc
