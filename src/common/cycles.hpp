// Cycle-level timing primitives used by the simulated SGX substrate.
//
// The whole reproduction hinges on being able to (a) read a fast, monotonic
// cycle counter, (b) burn a precise number of cycles to stand in for an
// enclave transition, and (c) execute the x86 `pause` instruction the way the
// Intel SDK busy-wait loops do.  Everything here is wait-free and safe to
// call from any thread.
#pragma once

#include <cstdint>

namespace zc {

/// Reads the time-stamp counter (serialised with `rdtscp` where available).
/// Monotonic per-core; we calibrate it against `steady_clock` at startup.
std::uint64_t rdtsc() noexcept;

/// Executes one x86 `pause` (spin-loop hint).  This is the exact instruction
/// the Intel SDK uses between switchless-call retries; the paper charges it
/// at up to 140 cycles on Skylake-class parts.
void cpu_pause() noexcept;

/// Measured TSC frequency in Hz.  Calibrated once (thread-safe) on first use
/// against std::chrono::steady_clock over a few milliseconds.
std::uint64_t tsc_hz() noexcept;

/// Converts cycles to nanoseconds using the calibrated TSC frequency.
double cycles_to_ns(std::uint64_t cycles) noexcept;

/// Converts a duration in nanoseconds to TSC cycles.
std::uint64_t ns_to_cycles(double ns) noexcept;

/// Busy-spins until at least `cycles` TSC cycles have elapsed.  Used to
/// model the cost of EENTER/EEXIT and of synthetic in-call work.  The loop
/// issues `pause` so a burning thread behaves like a real busy-waiter with
/// respect to its hyper-twin.
void burn_cycles(std::uint64_t cycles) noexcept;

/// Executes exactly `n` `pause` instructions (the paper's unit for the
/// duration of the synthetic `g` function).
void pause_n(std::uint64_t n) noexcept;

/// Measured cost of a single `pause` in cycles (median of a short
/// calibration run; memoised).  The paper quotes ~140 cycles on Skylake.
std::uint64_t measured_pause_cycles() noexcept;

}  // namespace zc
