// MpscSlotRing: the lock-free submit ring of the switchless call planes.
//
// Shape of the problem: many application threads (producers) hand request
// slots to one worker thread (the consumer), which is also the only
// completion-side writer.  The table-scan claim paths of zc_batched /
// zc_async are O(slots) per claim and serialize contended claims through
// CAS retries over the whole table; this ring makes a claim one CAS on a
// tail counter, and gives the worker an O(1) "oldest pending" lookup
// instead of a sweep.
//
// The design is the bounded-MPMC sequence-number queue (Vyukov),
// specialised to one consumer and adapted to *slot* hand-off: a producer
// does not enqueue a value, it claims a cell's embedded SlotT in place,
// marshals into it, and publishes; the consumer peeks the slot in place
// and the party that ultimately finishes with the slot (usually the
// caller collecting its result) recycles the cell for reuse.  That split
// — pop (consume the ticket order) and recycle (free the cell) as
// separate steps — is what lets completion run out of order while claims
// stay FIFO.
//
// Per cell, a 64-bit `seq` encodes the cell's lifecycle against the
// monotonically increasing ticket t of its current occupant:
//
//     seq == t              free: claimable by the producer holding t
//     seq == t + 1          published: visible to the consumer
//     seq == t + capacity   recycled: free for ticket t + capacity
//
// (between claim and publish, seq stays at t — the consumer treats the
// cell as not-ready, which is what makes a crash-free claim/publish gap
// safe).  All comparisons are signed 64-bit differences, so the ring is
// wraparound-correct even if tickets are started near 2^32 or 2^64 (the
// force-wrap regression tests do exactly that).
//
// Concurrency contract:
//   * try_claim / publish / recycle / at / peek_published — any thread.
//   * front / pop / published_run — the single consumer only.  The
//     consumer *role* may migrate (worker thread, then the stopping
//     thread's final drain) but must never be concurrent.
//   * Entries can be consumed out of band (a stopping producer
//     self-serving its own slot after arbitration): the consumer detects
//     the cell's seq having moved past t+1 and skips it; see front().
//
// publish() is seq_cst on purpose: backends pair it with a seq_cst read
// of a parked/running flag so "publish, then check flag" and "set flag,
// then scan ring" cannot both miss each other (the same store-buffer
// pairing CompletionGate::notify documents).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace zc {

template <typename SlotT>
class MpscSlotRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).  start_ticket
  /// sets the first ticket value handed out — production code uses 0;
  /// wrap regression tests start just below 2^32 / 2^64.  Trailing
  /// arguments are passed (by const reference, once per cell) to every
  /// embedded SlotT's constructor — the call planes hand their slot pool
  /// size through here.
  template <typename... SlotArgs>
  explicit MpscSlotRing(std::size_t capacity, std::uint64_t start_ticket = 0,
                        const SlotArgs&... slot_args)
      : mask_(round_up_pow2(capacity) - 1),
        head_(start_ticket),
        tail_(start_ticket) {
    cells_.reserve(mask_ + 1);
    for (std::size_t i = 0; i <= mask_; ++i) {
      cells_.push_back(std::make_unique<Cell>(slot_args...));
    }
    // Cell at index i starts free for the first ticket >= start_ticket
    // that maps to it: seq == that ticket (the "free" encoding above).
    for (std::size_t i = 0; i <= mask_; ++i) {
      const std::uint64_t first =
          start_ticket + ((i - start_ticket) & mask_);
      cells_[i]->seq.store(first, std::memory_order_relaxed);
    }
  }

  MpscSlotRing(const MpscSlotRing&) = delete;
  MpscSlotRing& operator=(const MpscSlotRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer: claims the next free cell.  On success `ticket` holds the
  /// claim's position and the returned slot is exclusively owned until
  /// publish(); returns nullptr when the ring is full (a cell whose
  /// previous occupant has not been recycled yet).
  SlotT* try_claim(std::uint64_t& ticket) noexcept {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = *cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int64_t dif = static_cast<std::int64_t>(seq - pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          ticket = pos;
          return &cell.slot;
        }
        // CAS failure reloaded pos; retry against the new cell.
      } else if (dif < 0) {
        return nullptr;  // previous occupant still live: ring full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Producer: makes a claimed cell visible to the consumer.  Call after
  /// the slot's own state word is stored (the consumer may act on the
  /// slot the instant this lands).
  void publish(std::uint64_t ticket) noexcept {
    cells_[ticket & mask_]->seq.store(ticket + 1, std::memory_order_seq_cst);
  }

  /// Consumer: the oldest published entry, or nullptr when the entry at
  /// the head is absent or not yet published.  Cells whose occupant was
  /// consumed out of band (seq moved past ticket+1: recycled, or already
  /// re-claimed by a later ticket) are skipped by advancing the head —
  /// callers never see them.
  SlotT* front(std::uint64_t& ticket) noexcept {
    for (;;) {
      const std::uint64_t pos = head_.load(std::memory_order_relaxed);
      Cell& cell = *cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int64_t dif = static_cast<std::int64_t>(seq - (pos + 1));
      if (dif == 0) {
        ticket = pos;
        return &cell.slot;
      }
      if (dif < 0) return nullptr;  // free, or claimed but unpublished
      head_.store(pos + 1, std::memory_order_relaxed);  // consumed elsewhere
    }
  }

  /// Consumer: retires the current front() entry from the claim order.
  /// The cell itself stays live until recycle().
  void pop() noexcept {
    head_.store(head_.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  }

  /// Whoever finishes with the slot (caller collecting, worker releasing
  /// an abandoned entry): frees the cell for ticket + capacity.
  void recycle(std::uint64_t ticket) noexcept {
    cells_[ticket & mask_]->seq.store(ticket + capacity(),
                                      std::memory_order_release);
  }

  /// The slot a ticket maps to, independent of lifecycle state (const:
  /// probing a slot's own atomics is legal from any thread).
  SlotT& at(std::uint64_t ticket) const noexcept {
    return cells_[ticket & mask_]->slot;
  }

  /// Any thread: the slot at `ticket` iff that exact ticket is currently
  /// published (stop-path drain sweeps use this to serve entries out of
  /// order after arbitrating via the slot's state word).
  SlotT* peek_published(std::uint64_t ticket) noexcept {
    Cell& cell = *cells_[ticket & mask_];
    if (cell.seq.load(std::memory_order_acquire) != ticket + 1) {
      return nullptr;
    }
    return &cell.slot;
  }

  /// Any thread (cold paths — park predicates, exit drains): the slot at
  /// cell index `index` iff that cell currently holds a published entry,
  /// with `ticket` receiving its ticket.  Unlike front() this sees
  /// publishes *out of claim order* (a gap at the head — some producer
  /// still marshalling — does not hide later published entries), which is
  /// what lets a draining worker serve stragglers without blocking on the
  /// gap.  seq_cst loads: paired with the producers' seq_cst publish and
  /// running-flag re-check, a drain that runs after the stop flag flips is
  /// guaranteed to observe every publish whose producer saw the backend
  /// still running.
  SlotT* published_at(std::size_t index, std::uint64_t& ticket) noexcept {
    const std::uint64_t seq =
        cells_[index]->seq.load(std::memory_order_seq_cst);
    // Published cells are the only ones with seq ≡ index+1 (mod capacity):
    // free and claimed cells sit at seq ≡ index, recycled ones too.
    if (((seq - 1 - index) & mask_) != 0) return nullptr;
    ticket = seq - 1;
    return &cells_[index]->slot;
  }

  /// Any thread: true when any cell currently holds a published entry
  /// (the parked-worker wake predicate).
  bool any_published() const noexcept {
    for (std::size_t i = 0; i <= mask_; ++i) {
      const std::uint64_t seq =
          cells_[i]->seq.load(std::memory_order_seq_cst);
      if (((seq - 1 - i) & mask_) == 0) return true;
    }
    return false;
  }

  /// Consumer: how many entries starting at the head are published and
  /// contiguous — the batched worker's "is the batch full" signal.
  std::size_t published_run() const noexcept {
    const std::uint64_t pos = head_.load(std::memory_order_relaxed);
    std::size_t run = 0;
    while (run <= mask_) {
      const std::uint64_t t = pos + run;
      if (cells_[t & mask_]->seq.load(std::memory_order_acquire) != t + 1) {
        break;
      }
      ++run;
    }
    return run;
  }

  /// Snapshot of the claim-order cursors (drain sweeps walk
  /// [head(), tail()) with peek_published()).
  std::uint64_t head() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  std::uint64_t tail() const noexcept {
    return tail_.load(std::memory_order_acquire);
  }

 private:
  struct Cell {
    template <typename... SlotArgs>
    explicit Cell(const SlotArgs&... slot_args) : slot(slot_args...) {}
    std::atomic<std::uint64_t> seq{0};
    SlotT slot;
  };

  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  std::size_t mask_;
  // Heap-allocated cells: SlotT in the call planes embeds atomics, pools
  // and gates, none of which are movable, and each cell gets its own
  // cache-line neighbourhood for free.
  std::vector<std::unique_ptr<Cell>> cells_;
  alignas(64) std::atomic<std::uint64_t> head_;  // consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_;  // producer cursor
};

}  // namespace zc
