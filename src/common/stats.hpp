// Lightweight statistics used across the call backends and the benches.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace zc {

/// Cache-line padded monotonically increasing counter (avoids false sharing
/// between caller/worker/scheduler threads).
struct alignas(64) PaddedCounter {
  std::atomic<std::uint64_t> value{0};

  void add(std::uint64_t n = 1) noexcept {
    value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t load() const noexcept {
    return value.load(std::memory_order_relaxed);
  }
  void store(std::uint64_t v) noexcept {
    value.store(v, std::memory_order_relaxed);
  }
};

/// Cache-line padded gauge: like PaddedCounter but decrementable, for
/// levels rather than totals (e.g. calls currently inside a backend).
/// Relaxed ordering throughout — readers want a cheap, approximately
/// current level, not a synchronisation point.
struct alignas(64) PaddedGauge {
  std::atomic<std::uint64_t> value{0};

  void add(std::uint64_t n = 1) noexcept {
    value.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::uint64_t n = 1) noexcept {
    value.fetch_sub(n, std::memory_order_relaxed);
  }
  std::uint64_t load() const noexcept {
    return value.load(std::memory_order_relaxed);
  }
};

/// Welford online mean/variance with min/max. Single-writer.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept {
    return n_ ? min_ : 0.0;
  }
  double max() const noexcept {
    return n_ ? max_ : 0.0;
  }

  void reset() noexcept { *this = RunningStat{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Reservoir of samples with percentile queries; used for latency series.
class SampleSeries {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  /// p in [0,100]; nearest-rank on a sorted copy.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double mean() const;
  double sum() const;

  const std::vector<double>& raw() const noexcept { return samples_; }
  void clear() noexcept { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

}  // namespace zc
