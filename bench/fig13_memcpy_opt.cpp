// Fig. 13 — Throughput of `write`-syscall ocalls with the vanilla Intel
// memcpy vs the ZC `rep movsb` memcpy, aligned and unaligned.
//
// Paper shape: zc-memcpy speeds large buffers up by up to ~3.6x (aligned)
// and ~15.1x (unaligned); unaligned zc throughput ≈ aligned zc throughput.
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench/memcpy_bench_shared.hpp"
#include "common/table.hpp"

using namespace zc;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::reject_pipeline_flag(args);
  bench::reject_skew_flag(args);
  bench::JsonRows json(args);
  const std::uint64_t base_ops =
      args.scaled<std::uint64_t>(100'000, 20'000, 5'000);
  if (!args.backends.empty()) {
    std::cerr << "this bench sweeps its own backend configurations;"
              << " --backend is not supported here\n";
    return 2;
  }

  bench::print_header("Fig. 13",
                      "write-ocall throughput, vanilla vs zc memcpy", args);

  auto enclave = Enclave::create(bench::paper_machine(args));
  EnclaveLibc libc(*enclave, IoMode::kSimulated);  // paper-cost /dev/null

  const std::vector<std::size_t> sizes = {512, 4096, 16'384, 32'768};
  Table table({"buffer", "intel-al[GB/s]", "intel-un[GB/s]", "zc-al[GB/s]",
               "zc-un[GB/s]", "speedup-al", "speedup-un"});
  for (const std::size_t size : sizes) {
    const std::uint64_t ops =
        std::max<std::uint64_t>(1'000, base_ops * 512 / size);
    const double i_al = bench::write_ocall_throughput(
        libc, size, true, ops, tlibc::MemcpyKind::kIntel);
    const double i_un = bench::write_ocall_throughput(
        libc, size, false, ops, tlibc::MemcpyKind::kIntel);
    const double z_al = bench::write_ocall_throughput(
        libc, size, true, ops, tlibc::MemcpyKind::kZc);
    const double z_un = bench::write_ocall_throughput(
        libc, size, false, ops, tlibc::MemcpyKind::kZc);
    table.add_row({size >= 1024 ? std::to_string(size / 1024) + "kB"
                                : "0.5kB",
                   Table::num(i_al, 3), Table::num(i_un, 3),
                   Table::num(z_al, 3), Table::num(z_un, 3),
                   Table::num(i_al > 0 ? z_al / i_al : 0, 2),
                   Table::num(i_un > 0 ? z_un / i_un : 0, 2)});
    json.add(bench::JsonRow()
                 .set("figure", "fig13")
                 .set("buffer_bytes", static_cast<std::uint64_t>(size))
                 .set("ops", ops)
                 .set("intel_aligned_gbps", i_al)
                 .set("intel_unaligned_gbps", i_un)
                 .set("zc_aligned_gbps", z_al)
                 .set("zc_unaligned_gbps", z_un));
  }
  table.print(std::cout);
  return 0;
}
