// Fig. 3 — Runtime for 100,000 ocalls with 8 in-enclave threads for
// different durations of the g function (0..500 pause instructions) and
// 1..5 Intel worker threads, configurations C1/C2/C4/C5 (C3 omitted as in
// the paper).
//
// Paper shape: C5 is worst for 0-pause g but competitive/best for long g;
// C1 wins once g exceeds ~200 pauses; C4 is good for short g and scales
// with workers.
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "common/table.hpp"
#include "workload/harness.hpp"
#include "workload/synthetic.hpp"

using namespace zc;
using namespace zc::workload;

int main(int argc, char** argv) try {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::uint64_t total_calls = args.full ? 100'000 : 10'000;
  if (!args.backends.empty()) {
    std::cerr << "this bench sweeps its own backend configurations;"
              << " --backend is not supported here\n";
    return 2;
  }

  bench::print_header("Fig. 3",
                      "runtime vs g duration (pauses) and worker count",
                      args);
  std::cout << "# " << total_calls << " ocalls, 8 enclave threads\n";

  const std::vector<SynthConfig> configs = {SynthConfig::kC1, SynthConfig::kC2,
                                            SynthConfig::kC4,
                                            SynthConfig::kC5};
  const std::vector<std::uint64_t> durations = {0, 100, 200, 300, 400, 500};

  Table table(
      {"g_pauses", "workers", "C1[s]", "C2[s]", "C4[s]", "C5[s]"});
  for (const std::uint64_t pauses : durations) {
    for (unsigned workers = 1; workers <= 5; ++workers) {
      std::vector<std::string> row{std::to_string(pauses),
                                   std::to_string(workers)};
      for (const SynthConfig config : configs) {
        auto enclave = Enclave::create(bench::paper_machine(args));
        const auto ids = register_synthetic_ocalls(enclave->ocalls());
        install_backend(*enclave,
                        ModeSpec::parse(intel_mode_spec(config, workers)));

        SyntheticRunConfig run;
        run.total_calls = total_calls;
        run.enclave_threads = 8;
        run.g_pauses = pauses;
        run.config = config;
        row.push_back(Table::num(run_synthetic(*enclave, ids, run).seconds, 3));
      }
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);
  return 0;
} catch (const zc::BackendSpecError& e) {
  // A --backend value or sl name that only fails when the backend
  // is built against the run's enclave.
  return zc::bench::backend_spec_exit(e);
}

