// Fig. 3 — Runtime for 100,000 ocalls with 8 in-enclave threads for
// different durations of the g function (0..500 pause instructions) and
// 1..5 Intel worker threads, configurations C1/C2/C4/C5 (C3 omitted as in
// the paper).
//
// Paper shape: C5 is worst for 0-pause g but competitive/best for long g;
// C1 wins once g exceeds ~200 pauses; C4 is good for short g and scales
// with workers.
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "common/table.hpp"
#include "workload/harness.hpp"
#include "workload/synthetic.hpp"

using namespace zc;
using namespace zc::workload;

int main(int argc, char** argv) try {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::reject_pipeline_flag(args);
  bench::reject_skew_flag(args);
  const std::uint64_t total_calls =
      args.scaled<std::uint64_t>(100'000, 10'000, 2'000);
  if (!args.backends.empty()) {
    std::cerr << "this bench sweeps its own backend configurations;"
              << " --backend is not supported here\n";
    return 2;
  }
  bench::JsonRows json(args);

  bench::print_header("Fig. 3",
                      "runtime vs g duration (pauses) and worker count",
                      args);
  std::cout << "# " << total_calls << " ocalls, 8 enclave threads\n";

  const std::vector<SynthConfig> configs = {SynthConfig::kC1, SynthConfig::kC2,
                                            SynthConfig::kC4,
                                            SynthConfig::kC5};
  const std::vector<std::uint64_t> durations =
      args.smoke ? std::vector<std::uint64_t>{0, 500}
                 : std::vector<std::uint64_t>{0, 100, 200, 300, 400, 500};
  const std::vector<unsigned> worker_counts =
      args.smoke ? std::vector<unsigned>{1, 5}
                 : std::vector<unsigned>{1, 2, 3, 4, 5};

  Table table(
      {"g_pauses", "workers", "C1[s]", "C2[s]", "C4[s]", "C5[s]"});
  for (const std::uint64_t pauses : durations) {
    for (const unsigned workers : worker_counts) {
      std::vector<std::string> row{std::to_string(pauses),
                                   std::to_string(workers)};
      for (const SynthConfig config : configs) {
        auto enclave = Enclave::create(bench::paper_machine(args));
        const auto ids = register_synthetic_ocalls(enclave->ocalls());
        const std::string spec = intel_mode_spec(config, workers);
        install_backend(*enclave, ModeSpec::parse(spec));

        SyntheticRunConfig run;
        run.total_calls = total_calls;
        run.enclave_threads = 8;
        run.g_pauses = pauses;
        run.config = config;
        const double seconds = run_synthetic(*enclave, ids, run).seconds;
        row.push_back(Table::num(seconds, 3));
        json.add(bench::JsonRow()
                     .set("figure", "fig3")
                     .set("backend", bench::canonical_spec(spec))
                     .set("config", to_string(config))
                     .set("workers", static_cast<std::uint64_t>(workers))
                     .set("g_pauses", pauses)
                     .set("total_calls", total_calls)
                     .set("seconds", seconds));
      }
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);
  return 0;
} catch (const zc::BackendSpecError& e) {
  // A --backend value or sl name that only fails when the backend
  // is built against the run's enclave.
  return zc::bench::backend_spec_exit(e);
}

