// Fig. 7 — Throughput of `write`-syscall ocalls to /dev/null (100,000
// operations) with the *Intel SDK* tlibc memcpy, for aligned and unaligned
// buffers of 0.5 kB to 32 kB.
//
// Paper shape: unaligned throughput is consistently lower and plateaus
// around 0.4 GB/s while aligned scales with the buffer size (~1.4 GB/s at
// 32 kB on the paper's machine).
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench/memcpy_bench_shared.hpp"
#include "common/table.hpp"

using namespace zc;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::reject_pipeline_flag(args);
  bench::reject_skew_flag(args);
  bench::JsonRows json(args);
  const std::uint64_t base_ops =
      args.scaled<std::uint64_t>(100'000, 20'000, 5'000);
  if (!args.backends.empty()) {
    std::cerr << "this bench sweeps its own backend configurations;"
              << " --backend is not supported here\n";
    return 2;
  }

  bench::print_header(
      "Fig. 7", "write-ocall throughput, Intel SDK memcpy, by alignment",
      args);

  auto enclave = Enclave::create(bench::paper_machine(args));
  EnclaveLibc libc(*enclave, IoMode::kSimulated);  // paper-cost /dev/null

  const std::vector<std::size_t> sizes = {512, 4096, 16'384, 32'768};
  Table table({"buffer", "aligned[GB/s]", "unaligned[GB/s]", "ratio"});
  for (const std::size_t size : sizes) {
    // Keep total bytes roughly constant so large buffers don't dominate.
    const std::uint64_t ops =
        std::max<std::uint64_t>(1'000, base_ops * 512 / size);
    const double al = bench::write_ocall_throughput(
        libc, size, true, ops, tlibc::MemcpyKind::kIntel);
    const double un = bench::write_ocall_throughput(
        libc, size, false, ops, tlibc::MemcpyKind::kIntel);
    table.add_row({size >= 1024 ? std::to_string(size / 1024) + "kB"
                                : "0.5kB",
                   Table::num(al, 3), Table::num(un, 3),
                   Table::num(un > 0 ? al / un : 0, 2)});
    json.add(bench::JsonRow()
                 .set("figure", "fig7")
                 .set("memcpy", "intel")
                 .set("buffer_bytes", static_cast<std::uint64_t>(size))
                 .set("ops", ops)
                 .set("aligned_gbps", al)
                 .set("unaligned_gbps", un));
  }
  table.print(std::cout);
  return 0;
}
