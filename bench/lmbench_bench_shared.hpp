// Shared workload for Figs. 11 and 12: the lmbench-based dynamic benchmark
// (1 reader on /dev/zero + 1 writer on /dev/null, 3-phase load).
#pragma once

#include <string>
#include <vector>

#include "apps/lmbench/lat_syscall.hpp"
#include "bench/bench_common.hpp"
#include "workload/harness.hpp"

namespace zc::bench {

inline std::vector<workload::ModeSpec> lmbench_modes(unsigned intel_workers) {
  using workload::ModeSpec;
  const std::string w = std::to_string(intel_workers);
  std::vector<ModeSpec> modes;
  modes.push_back(ModeSpec::no_sl());
  modes.push_back(ModeSpec::zc_mode());
  modes.push_back(ModeSpec::intel("i-read-" + w, {"read"}, intel_workers));
  modes.push_back(ModeSpec::intel("i-write-" + w, {"write"}, intel_workers));
  modes.push_back(
      ModeSpec::intel("i-all-" + w, {"read", "write"}, intel_workers));
  return modes;
}

inline workload::PhasedPlan lmbench_plan(const BenchArgs& args) {
  workload::PhasedPlan plan;
  if (args.full) {
    plan.tau_seconds = 0.5;   // paper values
    plan.total_seconds = 60.0;
  } else if (args.smoke) {
    plan.tau_seconds = 0.1;
    plan.total_seconds = 1.0;
  } else {
    plan.tau_seconds = 0.25;
    plan.total_seconds = 6.0;
  }
  plan.initial_ops = 1'000;
  return plan;
}

inline app::DynamicResult run_lmbench(const BenchArgs& args,
                                      const workload::ModeSpec& mode) {
  auto enclave = Enclave::create(paper_machine(args));
  // SimFs devices: one-word reads/writes cost the paper's ~250-cycle
  // syscall instead of this sandbox's ~8 µs (see sim_fs.hpp).
  EnclaveLibc libc(*enclave, IoMode::kSimulated);
  CpuUsageMeter meter(enclave->config().logical_cpus);
  workload::install_backend(*enclave, mode, &meter);
  auto result = app::run_dynamic_syscall_bench(libc, lmbench_plan(args), meter);
  workload::install_backend(*enclave, workload::ModeSpec::no_sl());
  return result;
}

}  // namespace zc::bench
